// Semantics tests for the reference executor: every operator of the Big
// Data Algebra exercised against hand-computed expectations.
#include <gtest/gtest.h>

#include "core/schema_inference.h"
#include "exec/reference_executor.h"
#include "expr/builder.h"
#include "tests/test_util.h"

namespace nexus {
namespace {

using namespace nexus::exprs;  // NOLINT
using testing::B;
using testing::F;
using testing::I;
using testing::MakeSchema;
using testing::MakeTable;
using testing::N;
using testing::S;

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SchemaPtr emp = MakeSchema({Field::Attr("id", DataType::kInt64),
                                Field::Attr("name", DataType::kString),
                                Field::Attr("dept", DataType::kInt64),
                                Field::Attr("salary", DataType::kFloat64)});
    ASSERT_OK(catalog_.Put(
        "emp", Dataset(MakeTable(emp, {{I(1), S("ann"), I(10), F(90.0)},
                                       {I(2), S("bob"), I(10), F(70.0)},
                                       {I(3), S("cat"), I(20), F(80.0)},
                                       {I(4), S("dan"), I(30), F(60.0)},
                                       {I(5), S("eve"), N(), F(75.0)}}))));
    SchemaPtr dept = MakeSchema({Field::Attr("did", DataType::kInt64),
                                 Field::Attr("dname", DataType::kString)});
    ASSERT_OK(catalog_.Put(
        "dept", Dataset(MakeTable(dept, {{I(10), S("eng")},
                                         {I(20), S("ops")},
                                         {I(40), S("hr")}}))));
    SchemaPtr grid = MakeSchema({Field::Dim("i"), Field::Dim("j"),
                                 Field::Attr("v", DataType::kFloat64)});
    ASSERT_OK(catalog_.Put(
        "grid", Dataset(MakeTable(grid, {{I(0), I(0), F(1.0)},
                                         {I(0), I(1), F(2.0)},
                                         {I(1), I(0), F(3.0)},
                                         {I(1), I(1), F(4.0)},
                                         {I(2), I(2), F(5.0)},
                                         {I(3), I(3), F(6.0)}}))));
  }

  TablePtr Run(const PlanPtr& plan) {
    // Every plan must type-check before execution.
    auto schema = InferSchema(*plan, catalog_);
    EXPECT_TRUE(schema.ok()) << schema.status() << "\n" << plan->ToString();
    ReferenceExecutor exec(&catalog_);
    auto result = exec.Execute(*plan);
    EXPECT_TRUE(result.ok()) << result.status() << "\n" << plan->ToString();
    auto table = result.ValueOrDie().AsTable();
    EXPECT_TRUE(table.ok()) << table.status();
    // The runtime schema must match the inferred schema (soundness).
    EXPECT_TRUE(table.ValueOrDie()->schema()->Equals(*schema.ValueOrDie()))
        << "inferred " << schema.ValueOrDie()->ToString() << " but got "
        << table.ValueOrDie()->schema()->ToString();
    return table.ValueOrDie();
  }

  InMemoryCatalog catalog_;
};

TEST_F(ExecutorTest, ScanReturnsStoredTable) {
  TablePtr t = Run(Plan::Scan("emp"));
  EXPECT_EQ(t->num_rows(), 5);
  ReferenceExecutor exec(&catalog_);
  EXPECT_FALSE(exec.Execute(*Plan::Scan("nope")).ok());
}

TEST_F(ExecutorTest, SelectFiltersAndDropsNullPredicateRows) {
  TablePtr t = Run(Plan::Select(Plan::Scan("emp"), Ge(Col("salary"), Lit(75.0))));
  EXPECT_EQ(t->num_rows(), 3);  // ann, cat, eve
  t = Run(Plan::Select(Plan::Scan("emp"), Eq(Col("dept"), Lit(10))));
  EXPECT_EQ(t->num_rows(), 2);  // eve's null dept doesn't match
}

TEST_F(ExecutorTest, ProjectReordersColumns) {
  TablePtr t = Run(Plan::Project(Plan::Scan("emp"), {"name", "id"}));
  EXPECT_EQ(t->schema()->ToString(), "{name:string, id:int64}");
  EXPECT_EQ(t->At(0, 0), S("ann"));
  EXPECT_EQ(t->At(0, 1), I(1));
}

TEST_F(ExecutorTest, ExtendComputesAndChains) {
  TablePtr t = Run(Plan::Extend(
      Plan::Scan("emp"),
      {{"bonus", Mul(Col("salary"), Lit(0.1))}, {"total", Add(Col("salary"), Col("bonus"))}}));
  EXPECT_EQ(t->At(0, 4), F(9.0));
  EXPECT_EQ(t->At(0, 5), F(99.0));
}

TEST_F(ExecutorTest, InnerJoinDropsRightKeys) {
  TablePtr t = Run(Plan::Join(Plan::Scan("emp"), Plan::Scan("dept"),
                              JoinType::kInner, {"dept"}, {"did"}));
  EXPECT_EQ(t->num_rows(), 3);  // ann, bob, cat; dan's 30 and eve's null drop
  EXPECT_EQ(t->schema()->FindField("did"), -1);
  EXPECT_EQ(t->At(0, t->schema()->FindField("dname")), S("eng"));
}

TEST_F(ExecutorTest, LeftJoinNullExtends) {
  TablePtr t = Run(Plan::Join(Plan::Scan("emp"), Plan::Scan("dept"),
                              JoinType::kLeft, {"dept"}, {"did"}));
  EXPECT_EQ(t->num_rows(), 5);
  int dname = t->schema()->FindField("dname");
  // dan (dept 30) has no match.
  EXPECT_TRUE(t->At(3, dname).is_null());
  EXPECT_TRUE(t->At(4, dname).is_null());
}

TEST_F(ExecutorTest, SemiAndAntiJoin) {
  TablePtr semi = Run(Plan::Join(Plan::Scan("emp"), Plan::Scan("dept"),
                                 JoinType::kSemi, {"dept"}, {"did"}));
  EXPECT_EQ(semi->num_rows(), 3);
  EXPECT_TRUE(semi->schema()->Equals(
      *Run(Plan::Scan("emp"))->schema()));  // left schema preserved
  TablePtr anti = Run(Plan::Join(Plan::Scan("emp"), Plan::Scan("dept"),
                                 JoinType::kAnti, {"dept"}, {"did"}));
  EXPECT_EQ(anti->num_rows(), 2);  // dan + eve (null key never matches)
}

TEST_F(ExecutorTest, JoinResidualFilters) {
  TablePtr t = Run(Plan::Join(Plan::Scan("emp"), Plan::Scan("dept"),
                              JoinType::kInner, {"dept"}, {"did"},
                              Gt(Col("salary"), Lit(75.0))));
  EXPECT_EQ(t->num_rows(), 2);  // ann 90 @eng, cat 80 @ops
}

TEST_F(ExecutorTest, AggregateGlobalAndGrouped) {
  TablePtr global = Run(Plan::Aggregate(
      Plan::Scan("emp"), {},
      {AggSpec{AggFunc::kCount, nullptr, "n"},
       AggSpec{AggFunc::kSum, Col("salary"), "total"},
       AggSpec{AggFunc::kAvg, Col("salary"), "mean"},
       AggSpec{AggFunc::kMin, Col("name"), "first_name"},
       AggSpec{AggFunc::kMax, Col("salary"), "top"}}));
  EXPECT_EQ(global->num_rows(), 1);
  EXPECT_EQ(global->At(0, 0), I(5));
  EXPECT_EQ(global->At(0, 1), F(375.0));
  EXPECT_EQ(global->At(0, 2), F(75.0));
  EXPECT_EQ(global->At(0, 3), S("ann"));
  EXPECT_EQ(global->At(0, 4), F(90.0));

  TablePtr grouped = Run(Plan::Aggregate(
      Plan::Scan("emp"), {"dept"},
      {AggSpec{AggFunc::kCount, nullptr, "n"},
       AggSpec{AggFunc::kSum, Col("salary"), "total"}}));
  EXPECT_EQ(grouped->num_rows(), 4);  // 10, 20, 30, null
  // First-seen group order: dept 10 first.
  EXPECT_EQ(grouped->At(0, 0), I(10));
  EXPECT_EQ(grouped->At(0, 1), I(2));
  EXPECT_EQ(grouped->At(0, 2), F(160.0));
}

TEST_F(ExecutorTest, AggregateNullHandling) {
  // count(expr) skips nulls; count(*) does not; sum of all-null is null.
  SchemaPtr s = MakeSchema({Field::Attr("x", DataType::kInt64)});
  PlanPtr vals = Plan::Values(Dataset(MakeTable(s, {{I(1)}, {N()}, {I(3)}})));
  TablePtr t = Run(Plan::Aggregate(
      vals, {},
      {AggSpec{AggFunc::kCount, Col("x"), "nx"},
       AggSpec{AggFunc::kCount, nullptr, "n"},
       AggSpec{AggFunc::kSum, Col("x"), "sum"}}));
  EXPECT_EQ(t->At(0, 0), I(2));
  EXPECT_EQ(t->At(0, 1), I(3));
  EXPECT_EQ(t->At(0, 2), I(4));
  PlanPtr all_null = Plan::Values(Dataset(MakeTable(s, {{N()}, {N()}})));
  TablePtr tn = Run(Plan::Aggregate(
      all_null, {}, {AggSpec{AggFunc::kSum, Col("x"), "sum"}}));
  EXPECT_TRUE(tn->At(0, 0).is_null());
}

TEST_F(ExecutorTest, IntegerSumStaysExactAndTyped) {
  SchemaPtr s = MakeSchema({Field::Attr("x", DataType::kInt64)});
  PlanPtr vals = Plan::Values(
      Dataset(MakeTable(s, {{I(1'000'000'000'000'000'000)}, {I(3)}})));
  TablePtr t = Run(Plan::Aggregate(vals, {},
                                   {AggSpec{AggFunc::kSum, Col("x"), "sum"}}));
  EXPECT_EQ(t->At(0, 0), I(1'000'000'000'000'000'003));
}

TEST_F(ExecutorTest, SortMultiKeyWithDirectionAndNulls) {
  TablePtr t = Run(Plan::Sort(Plan::Scan("emp"),
                              {{"dept", true}, {"salary", false}}));
  // Nulls sort first.
  EXPECT_TRUE(t->At(0, 2).is_null());
  EXPECT_EQ(t->At(1, 1), S("ann"));  // dept 10, salary 90 before 70
  EXPECT_EQ(t->At(2, 1), S("bob"));
}

TEST_F(ExecutorTest, LimitAndOffset) {
  PlanPtr sorted = Plan::Sort(Plan::Scan("emp"), {{"id", true}});
  TablePtr t = Run(Plan::Limit(sorted, 2, 1));
  EXPECT_EQ(t->num_rows(), 2);
  EXPECT_EQ(t->At(0, 0), I(2));
  EXPECT_EQ(Run(Plan::Limit(sorted, 100, 0))->num_rows(), 5);
  EXPECT_EQ(Run(Plan::Limit(sorted, 2, 10))->num_rows(), 0);
}

TEST_F(ExecutorTest, DistinctKeepsFirstOccurrence) {
  TablePtr t = Run(Plan::Distinct(Plan::Project(Plan::Scan("emp"), {"dept"})));
  EXPECT_EQ(t->num_rows(), 4);  // 10, 20, 30, null
  EXPECT_EQ(t->At(0, 0), I(10));
}

TEST_F(ExecutorTest, UnionConcatenates) {
  PlanPtr p = Plan::Project(Plan::Scan("emp"), {"id"});
  TablePtr t = Run(Plan::Union(p, p));
  EXPECT_EQ(t->num_rows(), 10);
}

TEST_F(ExecutorTest, RenameChangesSchemaOnly) {
  TablePtr t = Run(Plan::Rename(Plan::Scan("emp"), {{"name", "employee"}}));
  EXPECT_GE(t->schema()->FindField("employee"), 0);
  EXPECT_EQ(t->schema()->FindField("name"), -1);
  EXPECT_EQ(t->num_rows(), 5);
}

TEST_F(ExecutorTest, ReboxTagsAndUnboxClears) {
  TablePtr t = Run(Plan::Rebox(Plan::Project(Plan::Scan("emp"), {"id", "salary"}),
                               {"id"}, 16));
  EXPECT_TRUE(t->schema()->field(0).is_dimension);
  TablePtr u = Run(Plan::Unbox(Plan::Scan("grid")));
  EXPECT_TRUE(u->schema()->DimensionIndices().empty());
}

TEST_F(ExecutorTest, SliceFiltersByCoordinates) {
  TablePtr t = Run(Plan::Slice(Plan::Scan("grid"), {{"i", 0, 2}, {"j", 0, 2}}));
  EXPECT_EQ(t->num_rows(), 4);
  TablePtr t2 = Run(Plan::Slice(Plan::Scan("grid"), {{"i", 2, 4}}));
  EXPECT_EQ(t2->num_rows(), 2);
}

TEST_F(ExecutorTest, ShiftTranslatesCoordinates) {
  TablePtr t = Run(Plan::Shift(Plan::Scan("grid"), {{"i", 10}, {"j", -1}}));
  EXPECT_EQ(t->At(0, 0), I(10));
  EXPECT_EQ(t->At(0, 1), I(-1));
  EXPECT_EQ(t->num_rows(), 6);
}

TEST_F(ExecutorTest, RegridAggregatesBlocks) {
  TablePtr t = Run(Plan::Regrid(Plan::Scan("grid"), {{"i", 2}, {"j", 2}},
                                AggFunc::kAvg));
  // Blocks: (0,0) holds cells (0..1, 0..1) avg 2.5; (1,1) holds (2,2) avg 5;
  // (1,1) also... (3,3) is block (1,1) too: cells v=5 (2,2) and v=6 (3,3).
  EXPECT_EQ(t->num_rows(), 2);
  ASSERT_OK_AND_ASSIGN(const Column* v, t->ColumnByName("v"));
  EXPECT_EQ(v->GetValue(0), F(2.5));
  EXPECT_EQ(v->GetValue(1), F(5.5));
}

TEST_F(ExecutorTest, RegridSumKeepsIntType) {
  SchemaPtr s = MakeSchema({Field::Dim("i"), Field::Attr("c", DataType::kInt64)});
  PlanPtr vals = Plan::Values(
      Dataset(MakeTable(s, {{I(0), I(1)}, {I(1), I(2)}, {I(2), I(4)}})));
  TablePtr t = Run(Plan::Regrid(vals, {{"i", 2}}, AggFunc::kSum));
  EXPECT_EQ(t->At(0, 1), I(3));
  EXPECT_EQ(t->At(1, 1), I(4));
  EXPECT_EQ(t->schema()->field(1).type, DataType::kInt64);
}

TEST_F(ExecutorTest, RegridBinsNegativeCoordinatesByFloor) {
  SchemaPtr s = MakeSchema({Field::Dim("i"), Field::Attr("v", DataType::kFloat64)});
  PlanPtr vals = Plan::Values(
      Dataset(MakeTable(s, {{I(-3), F(1.0)}, {I(-1), F(2.0)}, {I(0), F(3.0)}})));
  TablePtr t = Run(Plan::Regrid(vals, {{"i", 2}}, AggFunc::kSum));
  // floor(-3/2) = -2, floor(-1/2) = -1, floor(0/2) = 0: three bins.
  EXPECT_EQ(t->num_rows(), 3);
}

TEST_F(ExecutorTest, TransposeReordersDimensions) {
  TablePtr t = Run(Plan::Transpose(Plan::Scan("grid"), {"j", "i"}));
  EXPECT_EQ(t->schema()->field(0).name, "j");
  EXPECT_EQ(t->schema()->field(1).name, "i");
  EXPECT_EQ(t->At(1, 0), I(1));  // was (0, 1, 2.0)
  EXPECT_EQ(t->At(1, 1), I(0));
}

TEST_F(ExecutorTest, WindowAveragesNeighborhood) {
  TablePtr t = Run(Plan::Window(Plan::Scan("grid"), {{"i", 1}, {"j", 1}},
                                AggFunc::kAvg));
  EXPECT_EQ(t->num_rows(), 6);  // one output cell per occupied input cell
  // Cell (0,0): neighbors present are (0,0)=1, (0,1)=2, (1,0)=3, (1,1)=4.
  ASSERT_OK_AND_ASSIGN(const Column* v, t->ColumnByName("v"));
  EXPECT_EQ(v->GetValue(0), F(2.5));
  // Cell (3,3): neighbors present are (2,2)=5 and (3,3)=6.
  EXPECT_EQ(v->GetValue(5), F(5.5));
}

TEST_F(ExecutorTest, ElemWiseIntersectsOccupancy) {
  SchemaPtr s = MakeSchema({Field::Dim("i"), Field::Attr("v", DataType::kFloat64)});
  PlanPtr a = Plan::Values(
      Dataset(MakeTable(s, {{I(0), F(1.0)}, {I(1), F(2.0)}, {I(2), F(3.0)}})));
  PlanPtr b = Plan::Values(
      Dataset(MakeTable(s, {{I(1), F(10.0)}, {I(2), F(20.0)}, {I(3), F(30.0)}})));
  TablePtr t = Run(Plan::ElemWise(a, b, BinaryOp::kAdd));
  EXPECT_EQ(t->num_rows(), 2);
  EXPECT_EQ(t->At(0, 1), F(12.0));
  EXPECT_EQ(t->At(1, 1), F(23.0));
  TablePtr m = Run(Plan::ElemWise(a, b, BinaryOp::kMul));
  EXPECT_EQ(m->At(0, 1), F(20.0));
}

TEST_F(ExecutorTest, MatMulMatchesHandComputation) {
  // A = [[1, 2], [3, 4]], B = [[5, 6], [7, 8]]; AB = [[19, 22], [43, 50]].
  SchemaPtr ms = MakeSchema({Field::Dim("r"), Field::Dim("c"),
                             Field::Attr("v", DataType::kFloat64)});
  PlanPtr a = Plan::Values(Dataset(MakeTable(
      ms, {{I(0), I(0), F(1)}, {I(0), I(1), F(2)}, {I(1), I(0), F(3)}, {I(1), I(1), F(4)}})));
  PlanPtr b = Plan::Values(Dataset(MakeTable(
      ms, {{I(0), I(0), F(5)}, {I(0), I(1), F(6)}, {I(1), I(0), F(7)}, {I(1), I(1), F(8)}})));
  TablePtr t = Run(Plan::MatMul(a, b, "prod"));
  EXPECT_EQ(t->num_rows(), 4);
  EXPECT_EQ(t->schema()->field(2).name, "prod");
  // Output dims: r (left row) and c_2 (right col renamed on clash... here
  // left row dim is "r", right col dim is "c": no clash).
  EXPECT_EQ(t->schema()->field(0).name, "r");
  EXPECT_EQ(t->schema()->field(1).name, "c");
  auto get = [&](int64_t r, int64_t c) {
    for (int64_t row = 0; row < t->num_rows(); ++row) {
      if (t->At(row, 0) == I(r) && t->At(row, 1) == I(c)) return t->At(row, 2);
    }
    return N();
  };
  EXPECT_EQ(get(0, 0), F(19.0));
  EXPECT_EQ(get(0, 1), F(22.0));
  EXPECT_EQ(get(1, 0), F(43.0));
  EXPECT_EQ(get(1, 1), F(50.0));
}

TEST_F(ExecutorTest, MatMulSparseSkipsMissing) {
  SchemaPtr ms = MakeSchema({Field::Dim("r"), Field::Dim("c"),
                             Field::Attr("v", DataType::kFloat64)});
  PlanPtr a = Plan::Values(Dataset(MakeTable(ms, {{I(0), I(0), F(2)}})));
  PlanPtr b = Plan::Values(Dataset(MakeTable(ms, {{I(1), I(0), F(3)}})));
  // A's only k is 0; B's only k is 1: empty product.
  TablePtr t = Run(Plan::MatMul(a, b));
  EXPECT_EQ(t->num_rows(), 0);
}

TEST_F(ExecutorTest, PageRankConvergesOnSmallGraph) {
  SchemaPtr es = MakeSchema({Field::Attr("src", DataType::kInt64),
                             Field::Attr("dst", DataType::kInt64)});
  // Cycle 0 -> 1 -> 2 -> 0 plus a dangling node 3 reachable from 0.
  PlanPtr edges = Plan::Values(Dataset(MakeTable(
      es, {{I(0), I(1)}, {I(1), I(2)}, {I(2), I(0)}, {I(0), I(3)}})));
  PageRankOp op;
  op.max_iters = 100;
  op.epsilon = 1e-12;
  TablePtr t = Run(Plan::PageRank(edges, op));
  EXPECT_EQ(t->num_rows(), 4);
  double total = 0;
  for (int64_t r = 0; r < 4; ++r) total += t->At(r, 1).AsDouble();
  EXPECT_NEAR(total, 1.0, 1e-9);  // ranks form a distribution
  // Node 2 receives all of node 1's rank; node 1 only half of node 0's.
  auto rank = [&](int64_t node) {
    for (int64_t r = 0; r < t->num_rows(); ++r) {
      if (t->At(r, 0) == I(node)) return t->At(r, 1).AsDouble();
    }
    return -1.0;
  };
  EXPECT_GT(rank(2), rank(1));
  EXPECT_GT(rank(0), rank(3));
}

TEST_F(ExecutorTest, IterateFixedCount) {
  SchemaPtr s = MakeSchema({Field::Attr("v", DataType::kFloat64)});
  PlanPtr init = Plan::Values(Dataset(MakeTable(s, {{F(1.0)}})));
  IterateOp op;
  op.body = Plan::Project(
      Plan::Extend(Plan::LoopVar(), {{"v2", Mul(Col("v"), Lit(2.0))}}),
      {"v2"});
  // Body must preserve schema: rename v2 back to v.
  op.body = Plan::Rename(op.body, {{"v2", "v"}});
  op.max_iters = 5;
  TablePtr t = Run(Plan::Iterate(init, op));
  EXPECT_EQ(t->At(0, 0), F(32.0));
}

TEST_F(ExecutorTest, IterateConvergesByMeasure) {
  // x <- x/2 until |x_prev - x_curr| < 0.1, starting at 8: 8,4,2,1,0.5 stops
  // when delta 0.0625... let's check: deltas 4,2,1,0.5,0.25,0.125,0.0625.
  SchemaPtr s = MakeSchema({Field::Attr("v", DataType::kFloat64)});
  PlanPtr init = Plan::Values(Dataset(MakeTable(s, {{F(8.0)}})));
  IterateOp op;
  op.body = Plan::Rename(
      Plan::Project(Plan::Extend(Plan::LoopVar(),
                                 {{"h", Div(Col("v"), Lit(2.0))}}),
                    {"h"}),
      {{"h", "v"}});
  // measure = |sum(prev.v) - sum(curr.v)|
  PlanPtr prev_sum = Plan::Aggregate(Plan::LoopVar(true), {},
                                     {AggSpec{AggFunc::kSum, Col("v"), "s"}});
  PlanPtr curr_sum = Plan::Aggregate(Plan::LoopVar(false), {},
                                     {AggSpec{AggFunc::kSum, Col("v"), "s"}});
  op.measure = Plan::Project(
      Plan::Extend(Plan::Join(Plan::Rename(prev_sum, {{"s", "ps"}}), curr_sum,
                              JoinType::kInner, {}, {}, Lit(true)),
                   {{"delta", Func("abs", {Sub(Col("ps"), Col("s"))})}}),
      {"delta"});
  op.epsilon = 0.1;
  op.max_iters = 100;
  ReferenceExecutor exec(&catalog_);
  InferContext ctx;
  ctx.catalog = &catalog_;
  PlanPtr plan = Plan::Iterate(init, op);
  ASSERT_OK(InferSchema(*plan, &ctx).status());
  ASSERT_OK_AND_ASSIGN(Dataset result, exec.Execute(*plan));
  ASSERT_OK_AND_ASSIGN(TablePtr t, result.AsTable());
  // Stops after delta drops below 0.1: deltas 4,2,1,.5,.25,.125,.0625 → 7
  // iterations, x = 8 / 2^7.
  EXPECT_EQ(exec.iterations_run(), 7);
  EXPECT_EQ(t->At(0, 0), F(0.0625));
}

TEST_F(ExecutorTest, IterateMaxItersBoundsLoop) {
  SchemaPtr s = MakeSchema({Field::Attr("v", DataType::kFloat64)});
  PlanPtr init = Plan::Values(Dataset(MakeTable(s, {{F(1.0)}})));
  IterateOp op;
  op.body = Plan::LoopVar();  // identity: never converges by value
  op.max_iters = 3;
  ReferenceExecutor exec(&catalog_);
  ASSERT_OK(exec.Execute(*Plan::Iterate(init, op)).status());
  EXPECT_EQ(exec.iterations_run(), 3);
}

TEST_F(ExecutorTest, ExchangeIsDataIdentity) {
  TablePtr base = Run(Plan::Scan("emp"));
  TablePtr t = Run(Plan::Exchange(Plan::Scan("emp"), "other", TransferMode::kDirect));
  EXPECT_TRUE(t->Equals(*base));
}

TEST_F(ExecutorTest, CrossRepresentationPipeline) {
  // Array-tagged data flows through relational ops and back.
  PlanPtr p = Plan::Scan("grid");
  p = Plan::Select(p, Gt(Col("v"), Lit(2.0)));
  p = Plan::Extend(p, {{"v2", Mul(Col("v"), Col("v"))}});
  p = Plan::Aggregate(p, {"i"}, {AggSpec{AggFunc::kSum, Col("v2"), "s"}});
  TablePtr t = Run(p);
  EXPECT_EQ(t->num_rows(), 3);  // i = 1, 2, 3
}

TEST_F(ExecutorTest, SchemaInferenceRejectsBadPlans) {
  InferContext ctx;
  ctx.catalog = &catalog_;
  EXPECT_FALSE(InferSchema(*Plan::Select(Plan::Scan("emp"), Add(Col("id"), Lit(1))),
                           &ctx)
                   .ok());  // non-bool predicate
  EXPECT_FALSE(InferSchema(*Plan::Project(Plan::Scan("emp"), {"zz"}), &ctx).ok());
  EXPECT_FALSE(
      InferSchema(*Plan::Join(Plan::Scan("emp"), Plan::Scan("dept"),
                              JoinType::kInner, {"name"}, {"did"}),
                  &ctx)
          .ok());  // key type mismatch
  EXPECT_FALSE(InferSchema(*Plan::Slice(Plan::Scan("emp"), {{"id", 0, 5}}), &ctx)
                   .ok());  // id is not a dimension
  EXPECT_FALSE(InferSchema(*Plan::LoopVar(), &ctx).ok());  // free loopvar
  EXPECT_FALSE(InferSchema(*Plan::Union(Plan::Scan("emp"), Plan::Scan("dept")),
                           &ctx)
                   .ok());
  EXPECT_FALSE(
      InferSchema(*Plan::Transpose(Plan::Scan("grid"), {"i"}), &ctx).ok());
  EXPECT_FALSE(
      InferSchema(*Plan::MatMul(Plan::Scan("emp"), Plan::Scan("emp")), &ctx).ok());
}

}  // namespace
}  // namespace nexus
