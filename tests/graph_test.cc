// Tests for the graph analytics engine: CSR construction, PageRank, BFS,
// shortest paths, connected components, triangles.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "graph/graph.h"
#include "tests/test_util.h"

namespace nexus {
namespace {

using graph::CsrGraph;
using testing::I;
using testing::MakeSchema;
using testing::MakeTable;

TEST(CsrTest, CompactsSparseIds) {
  CsrGraph g = CsrGraph::FromEdges({100, 7, 100}, {7, 42, 42});
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  // Compact order is sorted original ids: 7, 42, 100.
  EXPECT_EQ(g.original_id(0), 7);
  EXPECT_EQ(g.original_id(2), 100);
  EXPECT_EQ(g.out_degree(2), 2);  // node 100
  EXPECT_EQ(g.out_degree(1), 0);  // node 42
}

TEST(CsrTest, FromTableValidates) {
  SchemaPtr s = MakeSchema({Field::Attr("src", DataType::kInt64),
                            Field::Attr("dst", DataType::kInt64)});
  TablePtr t = MakeTable(s, {{I(0), I(1)}, {I(1), I(2)}});
  ASSERT_OK_AND_ASSIGN(CsrGraph g, CsrGraph::FromTable(*t, "src", "dst"));
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_FALSE(CsrGraph::FromTable(*t, "zz", "dst").ok());
  TablePtr with_null = MakeTable(s, {{I(0), testing::N()}});
  EXPECT_FALSE(CsrGraph::FromTable(*with_null, "src", "dst").ok());
}

TEST(PageRankTest, UniformOnSymmetricCycle) {
  CsrGraph g = CsrGraph::FromEdges({0, 1, 2}, {1, 2, 0});
  graph::PageRankOptions opts;
  opts.epsilon = 1e-14;
  opts.max_iters = 200;
  graph::PageRankResult r = graph::PageRank(g, opts);
  for (double v : r.rank) EXPECT_NEAR(v, 1.0 / 3.0, 1e-10);
  EXPECT_LT(r.iterations, 200);
}

TEST(PageRankTest, SumsToOneWithDanglingNodes) {
  CsrGraph g = CsrGraph::FromEdges({0, 0, 1}, {1, 2, 3});  // 2, 3 dangle
  graph::PageRankOptions opts;
  opts.max_iters = 100;
  opts.epsilon = 1e-12;
  graph::PageRankResult r = graph::PageRank(g, opts);
  double total = 0;
  for (double v : r.rank) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PageRankTest, StarCenterDominates) {
  // Many nodes all pointing at node 0.
  std::vector<int64_t> src, dst;
  for (int64_t i = 1; i <= 20; ++i) {
    src.push_back(i);
    dst.push_back(0);
  }
  CsrGraph g = CsrGraph::FromEdges(src, dst);
  graph::PageRankResult r = graph::PageRank(g, {});
  for (int64_t i = 1; i <= 20; ++i) EXPECT_GT(r.rank[0], r.rank[static_cast<size_t>(i)]);
}

TEST(PageRankTest, ConvergenceMonotoneInEpsilon) {
  Rng rng(5);
  std::vector<int64_t> src, dst;
  for (int i = 0; i < 400; ++i) {
    src.push_back(rng.NextInt(0, 99));
    dst.push_back(rng.NextInt(0, 99));
  }
  CsrGraph g = CsrGraph::FromEdges(src, dst);
  graph::PageRankOptions loose, tight;
  loose.epsilon = 1e-3;
  tight.epsilon = 1e-10;
  loose.max_iters = tight.max_iters = 500;
  EXPECT_LE(graph::PageRank(g, loose).iterations,
            graph::PageRank(g, tight).iterations);
}

TEST(BfsTest, LevelsAndUnreachable) {
  // 0 -> 1 -> 2, 3 isolated (via self-loop to exist as a node).
  CsrGraph g = CsrGraph::FromEdges({0, 1, 3}, {1, 2, 3});
  std::vector<int64_t> levels = graph::Bfs(g, 0);
  EXPECT_EQ(levels[0], 0);
  EXPECT_EQ(levels[1], 1);
  EXPECT_EQ(levels[2], 2);
  EXPECT_EQ(levels[3], -1);
}

TEST(BfsTest, EmptyGraph) {
  CsrGraph g = CsrGraph::FromEdges({}, {});
  EXPECT_TRUE(graph::Bfs(g, 0).empty());
}

TEST(BfsTest, SingleSelfLoop) {
  CsrGraph g = CsrGraph::FromEdges({5}, {5});
  ASSERT_EQ(g.num_nodes(), 1);
  std::vector<int64_t> levels = graph::Bfs(g, 0);
  ASSERT_EQ(levels.size(), 1u);
  EXPECT_EQ(levels[0], 0);  // the self-loop must not re-level the source
  // Out-of-range sources leave every node unreached.
  for (int64_t lvl : graph::Bfs(g, 7)) EXPECT_EQ(lvl, -1);
  for (int64_t lvl : graph::Bfs(g, -1)) EXPECT_EQ(lvl, -1);
}

TEST(BfsTest, DisconnectedComponentStaysMinusOne) {
  // Two components: {0,1} and {2,3}; no path crosses.
  CsrGraph g = CsrGraph::FromEdges({0, 2}, {1, 3});
  std::vector<int64_t> from0 = graph::Bfs(g, 0);
  EXPECT_EQ(from0[0], 0);
  EXPECT_EQ(from0[1], 1);
  EXPECT_EQ(from0[2], -1);
  EXPECT_EQ(from0[3], -1);
  std::vector<int64_t> from2 = graph::Bfs(g, 2);
  EXPECT_EQ(from2[0], -1);
  EXPECT_EQ(from2[1], -1);
  EXPECT_EQ(from2[2], 0);
  EXPECT_EQ(from2[3], 1);
}

TEST(PageRankTest, DanglingChainConverges) {
  // 0 -> 1 -> 2 with 2 dangling: every step pours rank into the dangling
  // tail, the classic slow-convergence shape. Must still converge under
  // max_iters and keep a proper distribution.
  CsrGraph g = CsrGraph::FromEdges({0, 1}, {1, 2});
  graph::PageRankOptions opts;
  opts.epsilon = 1e-12;
  opts.max_iters = 300;
  graph::PageRankResult r = graph::PageRank(g, opts);
  EXPECT_LT(r.iterations, 300);
  double total = 0;
  for (double v : r.rank) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Rank accumulates down the chain.
  EXPECT_LT(r.rank[0], r.rank[1]);
  EXPECT_LT(r.rank[1], r.rank[2]);
}

TEST(ShortestPathsTest, DijkstraPicksCheaperLongerPath) {
  // 0->1 (cost 10), 0->2 (1), 2->1 (2): best 0->1 is 3 via 2.
  CsrGraph g = CsrGraph::FromEdges({0, 0, 2}, {1, 2, 1});
  // CSR adjacency order: node 0's edges in insertion order (1, then 2),
  // node 2's edge to 1.
  std::vector<double> weights = {10.0, 1.0, 2.0};
  ASSERT_OK_AND_ASSIGN(std::vector<double> dist, graph::ShortestPaths(g, 0, weights));
  EXPECT_EQ(dist[0], 0.0);
  EXPECT_EQ(dist[1], 3.0);
  EXPECT_EQ(dist[2], 1.0);
  EXPECT_FALSE(graph::ShortestPaths(g, 0, {1.0}).ok());
  EXPECT_FALSE(graph::ShortestPaths(g, 0, {1.0, -1.0, 1.0}).ok());
}

TEST(ShortestPathsTest, BfsEquivalenceOnUnitWeights) {
  Rng rng(11);
  std::vector<int64_t> src, dst;
  for (int i = 0; i < 300; ++i) {
    src.push_back(rng.NextInt(0, 49));
    dst.push_back(rng.NextInt(0, 49));
  }
  CsrGraph g = CsrGraph::FromEdges(src, dst);
  std::vector<double> unit(static_cast<size_t>(g.num_edges()), 1.0);
  ASSERT_OK_AND_ASSIGN(std::vector<double> dist, graph::ShortestPaths(g, 0, unit));
  std::vector<int64_t> levels = graph::Bfs(g, 0);
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    if (levels[static_cast<size_t>(v)] < 0) {
      EXPECT_TRUE(std::isinf(dist[static_cast<size_t>(v)]));
    } else {
      EXPECT_EQ(dist[static_cast<size_t>(v)],
                static_cast<double>(levels[static_cast<size_t>(v)]));
    }
  }
}

TEST(ComponentsTest, LabelsByComponent) {
  // Two components: {0,1,2} and {3,4}.
  CsrGraph g = CsrGraph::FromEdges({0, 1, 3}, {1, 2, 4});
  std::vector<int64_t> label = graph::ConnectedComponents(g);
  EXPECT_EQ(label[0], label[1]);
  EXPECT_EQ(label[1], label[2]);
  EXPECT_EQ(label[3], label[4]);
  EXPECT_NE(label[0], label[3]);
  EXPECT_EQ(label[0], 0);  // smallest id labels the component
  EXPECT_EQ(label[3], 3);
}

TEST(TrianglesTest, CountsEachOnce) {
  // Triangle 0-1-2 plus a pendant edge 2-3.
  CsrGraph g = CsrGraph::FromEdges({0, 1, 2, 2}, {1, 2, 0, 3});
  EXPECT_EQ(graph::CountTriangles(g), 1);
  // Complete graph K4 (directed one way) has C(4,3) = 4 triangles.
  CsrGraph k4 = CsrGraph::FromEdges({0, 0, 0, 1, 1, 2}, {1, 2, 3, 2, 3, 3});
  EXPECT_EQ(graph::CountTriangles(k4), 4);
  // Self-loops and duplicate edges don't create phantom triangles.
  CsrGraph messy = CsrGraph::FromEdges({0, 0, 1, 2, 0, 0}, {1, 1, 2, 0, 0, 2});
  EXPECT_EQ(graph::CountTriangles(messy), 1);
}

TEST(PageRankTest, EmptyGraph) {
  CsrGraph g = CsrGraph::FromEdges({}, {});
  graph::PageRankResult r = graph::PageRank(g, {});
  EXPECT_TRUE(r.rank.empty());
  EXPECT_EQ(r.iterations, 0);
}

}  // namespace
}  // namespace nexus
