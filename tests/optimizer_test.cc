// Optimizer tests: constant folding, selection pushdown, column pruning,
// intent recognition — plus semantics-preservation property tests (optimized
// and unoptimized plans agree on every workload).
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>

#include "common/hash.h"
#include "common/random.h"
#include "common/str_util.h"
#include "core/expansion.h"
#include "core/schema_inference.h"
#include "exec/reference_executor.h"
#include "expr/builder.h"
#include "optimizer/cardinality.h"
#include "optimizer/fold.h"
#include "optimizer/join_order.h"
#include "optimizer/optimizer.h"
#include "optimizer/stats.h"
#include "tests/test_util.h"

namespace nexus {
namespace {

using namespace nexus::exprs;  // NOLINT
using testing::F;
using testing::I;
using testing::MakeSchema;
using testing::MakeTable;
using testing::N;
using testing::S;

TEST(FoldTest, ArithmeticAndBooleans) {
  EXPECT_EQ(FoldConstants(Add(Lit(2), Lit(3)))->ToString(), "5");
  EXPECT_EQ(FoldConstants(Mul(Add(Lit(1), Lit(1)), Col("x")))->ToString(),
            "(2 * x)");
  EXPECT_EQ(FoldConstants(And(Lit(true), Gt(Col("x"), Lit(1))))->ToString(),
            "(x > 1)");
  EXPECT_EQ(FoldConstants(And(Lit(false), Gt(Col("x"), Lit(1))))->ToString(),
            "false");
  EXPECT_EQ(FoldConstants(Or(Lit(false), Col("b")))->ToString(), "b");
  EXPECT_EQ(FoldConstants(Or(Col("b"), Lit(true)))->ToString(), "true");
  EXPECT_EQ(FoldConstants(Not(Not(Col("b"))))->ToString(), "b");
  EXPECT_EQ(FoldConstants(Func("sqrt", {Lit(16.0)}))->ToString(), "4");
  EXPECT_EQ(FoldConstants(Div(Lit(1), Lit(0)))->ToString(), "null");
}

TEST(FoldTest, LeavesNonConstantsAlone) {
  ExprPtr e = Gt(Add(Col("a"), Col("b")), Lit(3));
  EXPECT_TRUE(FoldConstants(e)->Equals(*e));
}

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SchemaPtr orders = MakeSchema({Field::Attr("oid", DataType::kInt64),
                                   Field::Attr("cid", DataType::kInt64),
                                   Field::Attr("amount", DataType::kFloat64),
                                   Field::Attr("region", DataType::kString)});
    TableBuilder b(orders);
    Rng rng(1);
    for (int64_t i = 0; i < 300; ++i) {
      ASSERT_OK(b.AppendRow(
          {I(i), I(rng.NextInt(0, 40)), F(rng.NextDouble(0, 100)),
           S(std::string(1, static_cast<char>('a' + rng.NextBounded(3))))}));
    }
    ASSERT_OK(catalog_.Put("orders", Dataset(b.Finish().ValueOrDie())));

    SchemaPtr cust = MakeSchema({Field::Attr("id", DataType::kInt64),
                                 Field::Attr("tier", DataType::kInt64)});
    TableBuilder cb(cust);
    for (int64_t i = 0; i < 40; ++i) {
      ASSERT_OK(cb.AppendRow({I(i), I(rng.NextInt(1, 3))}));
    }
    ASSERT_OK(catalog_.Put("cust", Dataset(cb.Finish().ValueOrDie())));

    SchemaPtr mat = MakeSchema({Field::Dim("i"), Field::Dim("k"),
                                Field::Attr("a", DataType::kFloat64)});
    SchemaPtr mat2 = MakeSchema({Field::Dim("k"), Field::Dim("j"),
                                 Field::Attr("b", DataType::kFloat64)});
    TableBuilder ma(mat), mb(mat2);
    for (int64_t i = 0; i < 6; ++i) {
      for (int64_t k = 0; k < 6; ++k) {
        ASSERT_OK(ma.AppendRow({I(i), I(k), F(static_cast<double>(rng.NextInt(1, 5)))}));
        ASSERT_OK(mb.AppendRow({I(i), I(k), F(static_cast<double>(rng.NextInt(1, 5)))}));
      }
    }
    ASSERT_OK(catalog_.Put("A", Dataset(ma.Finish().ValueOrDie())));
    ASSERT_OK(catalog_.Put("B", Dataset(mb.Finish().ValueOrDie())));
  }

  // Optimized and raw plans must be schema- and value-equivalent.
  void CheckPreserves(const PlanPtr& plan, const OptimizerOptions& opts = {}) {
    OptimizerStats stats;
    ASSERT_OK_AND_ASSIGN(PlanPtr optimized, Optimize(plan, catalog_, opts, &stats));
    ASSERT_OK_AND_ASSIGN(SchemaPtr s1, InferSchema(*plan, catalog_));
    ASSERT_OK_AND_ASSIGN(SchemaPtr s2, InferSchema(*optimized, catalog_));
    EXPECT_TRUE(s1->Equals(*s2))
        << s1->ToString() << " vs " << s2->ToString() << "\n"
        << optimized->ToString();
    ReferenceExecutor exec(&catalog_);
    ASSERT_OK_AND_ASSIGN(Dataset want, exec.Execute(*plan));
    ASSERT_OK_AND_ASSIGN(Dataset got, exec.Execute(*optimized));
    EXPECT_TRUE(got.LogicallyEquals(want)) << optimized->ToString();
  }

  InMemoryCatalog catalog_;
};

TEST_F(OptimizerTest, PushesSelectBelowProjectAndExtend) {
  PlanPtr p = Plan::Scan("orders");
  p = Plan::Extend(p, {{"taxed", Mul(Col("amount"), Lit(1.1))}});
  p = Plan::Project(p, {"cid", "taxed"});
  p = Plan::Select(p, Gt(Col("taxed"), Lit(50.0)));
  OptimizerStats stats;
  ASSERT_OK_AND_ASSIGN(PlanPtr optimized, Optimize(p, catalog_, {}, &stats));
  EXPECT_GE(stats.selections_pushed, 2);
  // The selection now sits below the extend (deeper in the tree rendering).
  std::string tree = optimized->ToString();
  EXPECT_GT(tree.find("select"), tree.find("extend")) << tree;
  EXPECT_NE(tree.find("select"), std::string::npos);
  CheckPreserves(p);
}

TEST_F(OptimizerTest, SplitsConjunctsAcrossJoin) {
  PlanPtr join = Plan::Join(Plan::Scan("orders"), Plan::Scan("cust"),
                            JoinType::kInner, {"cid"}, {"id"});
  PlanPtr p = Plan::Select(
      join, And(Gt(Col("amount"), Lit(10.0)), Eq(Col("tier"), Lit(2))));
  OptimizerStats stats;
  ASSERT_OK_AND_ASSIGN(PlanPtr optimized, Optimize(p, catalog_, {}, &stats));
  EXPECT_EQ(stats.selections_pushed, 2);
  EXPECT_EQ(optimized->kind(), OpKind::kJoin);  // no residual select left
  CheckPreserves(p);
}

TEST_F(OptimizerTest, DoesNotPushBelowLeftJoinRightSide) {
  PlanPtr join = Plan::Join(Plan::Scan("orders"), Plan::Scan("cust"),
                            JoinType::kLeft, {"cid"}, {"id"});
  PlanPtr p = Plan::Select(join, Eq(Col("tier"), Lit(2)));
  ASSERT_OK_AND_ASSIGN(PlanPtr optimized, Optimize(p, catalog_, {}));
  // tier references the null-extended right side: the select must stay above.
  EXPECT_EQ(optimized->kind(), OpKind::kSelect);
  CheckPreserves(p);
}

TEST_F(OptimizerTest, PushesThroughRenameAndUnion) {
  PlanPtr u = Plan::Union(Plan::Scan("orders"), Plan::Scan("orders"));
  PlanPtr p = Plan::Select(Plan::Rename(u, {{"amount", "amt"}}),
                           Gt(Col("amt"), Lit(90.0)));
  OptimizerStats stats;
  ASSERT_OK_AND_ASSIGN(PlanPtr optimized, Optimize(p, catalog_, {}, &stats));
  EXPECT_GE(stats.selections_pushed, 2);  // through rename, then into the union
  // Both union branches end up with their own selection.
  std::string tree = optimized->ToString();
  size_t first = tree.find("select");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(tree.find("select", first + 1), std::string::npos) << tree;
  CheckPreserves(p);
}

TEST_F(OptimizerTest, PrunesScanColumns) {
  PlanPtr p = Plan::Aggregate(
      Plan::Select(Plan::Scan("orders"), Gt(Col("amount"), Lit(20.0))), {"cid"},
      {AggSpec{AggFunc::kSum, Col("amount"), "total"}});
  OptimizerStats stats;
  ASSERT_OK_AND_ASSIGN(PlanPtr optimized, Optimize(p, catalog_, {}, &stats));
  EXPECT_EQ(stats.projects_inserted, 1);
  EXPECT_NE(optimized->ToString().find("project[cid, amount]"), std::string::npos)
      << optimized->ToString();
  CheckPreserves(p);
}

TEST_F(OptimizerTest, PruningKeepsRootSchema) {
  PlanPtr p = Plan::Join(Plan::Scan("orders"), Plan::Scan("cust"),
                         JoinType::kInner, {"cid"}, {"id"});
  CheckPreserves(p);  // all columns needed at the root: no visible change
}

TEST_F(OptimizerTest, RecognizesMatMulPipeline) {
  // Hand-written matrix multiply as join + multiply + sum.
  PlanPtr right = Plan::Rename(Plan::Scan("B"),
                               {{"k", "k2"}, {"j", "j2"}, {"b", "bv"}});
  PlanPtr joined = Plan::Join(Plan::Scan("A"), right, JoinType::kInner, {"k"},
                              {"k2"});
  PlanPtr prod = Plan::Extend(joined, {{"p", Mul(Col("a"), Col("bv"))}});
  PlanPtr agg = Plan::Aggregate(prod, {"i", "j2"},
                                {AggSpec{AggFunc::kSum, Col("p"), "c"}});
  PlanPtr p = Plan::Select(agg, Ne(Col("c"), Lit(0)));
  OptimizerStats stats;
  ASSERT_OK_AND_ASSIGN(PlanPtr optimized, Optimize(p, catalog_, {}, &stats));
  EXPECT_EQ(stats.intents_recognized, 1);
  EXPECT_NE(optimized->ToString().find("matmul"), std::string::npos)
      << optimized->ToString();
  CheckPreserves(p);
}

TEST_F(OptimizerTest, RecognitionInvertsExpansion) {
  ASSERT_OK_AND_ASSIGN(SchemaPtr ls, catalog_.GetSchema("A"));
  ASSERT_OK_AND_ASSIGN(SchemaPtr rs, catalog_.GetSchema("B"));
  ASSERT_OK_AND_ASSIGN(
      PlanPtr expanded,
      ExpandMatMul(Plan::Scan("A"), Plan::Scan("B"), MatMulOp{"c"}, *ls, *rs));
  OptimizerStats stats;
  ASSERT_OK_AND_ASSIGN(PlanPtr optimized, Optimize(expanded, catalog_, {}, &stats));
  EXPECT_EQ(stats.intents_recognized, 1);
  CheckPreserves(expanded);
}

TEST_F(OptimizerTest, RecognitionDisabledLeavesPlanAlone) {
  PlanPtr right = Plan::Rename(Plan::Scan("B"),
                               {{"k", "k2"}, {"j", "j2"}, {"b", "bv"}});
  PlanPtr joined = Plan::Join(Plan::Scan("A"), right, JoinType::kInner, {"k"},
                              {"k2"});
  PlanPtr prod = Plan::Extend(joined, {{"p", Mul(Col("a"), Col("bv"))}});
  PlanPtr agg = Plan::Aggregate(prod, {"i", "j2"},
                                {AggSpec{AggFunc::kSum, Col("p"), "c"}});
  PlanPtr p = Plan::Select(agg, Ne(Col("c"), Lit(0)));
  OptimizerOptions opts;
  opts.recognize_intent = false;
  OptimizerStats stats;
  ASSERT_OK_AND_ASSIGN(PlanPtr optimized, Optimize(p, catalog_, opts, &stats));
  EXPECT_EQ(stats.intents_recognized, 0);
  EXPECT_EQ(optimized->ToString().find("matmul"), std::string::npos);
}

TEST_F(OptimizerTest, NoFalsePositiveRecognition) {
  // Same shape but aggregate uses avg, not sum: not a matrix multiply.
  PlanPtr right = Plan::Rename(Plan::Scan("B"),
                               {{"k", "k2"}, {"j", "j2"}, {"b", "bv"}});
  PlanPtr joined = Plan::Join(Plan::Scan("A"), right, JoinType::kInner, {"k"},
                              {"k2"});
  PlanPtr prod = Plan::Extend(joined, {{"p", Mul(Col("a"), Col("bv"))}});
  PlanPtr agg = Plan::Aggregate(prod, {"i", "j2"},
                                {AggSpec{AggFunc::kAvg, Col("p"), "c"}});
  PlanPtr p = Plan::Select(agg, Ne(Col("c"), Lit(0)));
  OptimizerStats stats;
  ASSERT_OK_AND_ASSIGN(PlanPtr optimized, Optimize(p, catalog_, {}, &stats));
  EXPECT_EQ(stats.intents_recognized, 0);
  CheckPreserves(p);
}

TEST_F(OptimizerTest, FoldsInsidePlans) {
  PlanPtr p = Plan::Select(Plan::Scan("orders"),
                           And(Lit(true), Gt(Col("amount"), Add(Lit(10.0), Lit(5.0)))));
  OptimizerStats stats;
  ASSERT_OK_AND_ASSIGN(PlanPtr optimized, Optimize(p, catalog_, {}, &stats));
  EXPECT_GE(stats.expressions_folded, 1);
  CheckPreserves(p);
}

TEST_F(OptimizerTest, AblationFlagsIsolatePasses) {
  PlanPtr p = Plan::Select(
      Plan::Project(Plan::Scan("orders"), {"cid", "amount"}),
      Gt(Col("amount"), Lit(50.0)));
  OptimizerOptions off;
  off.fold_constants = off.push_selections = off.recognize_intent =
      off.prune_columns = false;
  ASSERT_OK_AND_ASSIGN(PlanPtr untouched, Optimize(p, catalog_, off));
  EXPECT_TRUE(untouched->Equals(*p));
}

TEST_F(OptimizerTest, RandomizedEquivalenceSweep) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    PlanPtr p = Plan::Scan("orders");
    // Random pipeline of pushdown-relevant operators.
    int steps = static_cast<int>(rng.NextBounded(4)) + 2;
    for (int s = 0; s < steps; ++s) {
      switch (rng.NextBounded(5)) {
        case 0:
          p = Plan::Select(p, Gt(Col("amount"), Lit(rng.NextDouble(0, 100))));
          break;
        case 1:
          p = Plan::Extend(
              p, {{StrCat("e", trial, "_", s), Add(Col("amount"), Lit(1.0))}});
          break;
        case 2:
          p = Plan::Sort(p, {{"oid", rng.NextBool()}});
          break;
        case 3:
          p = Plan::Distinct(p);
          break;
        default:
          p = Plan::Select(p, Ne(Col("region"), Lit("b")));
          break;
      }
    }
    CheckPreserves(p);
  }
}

TEST_F(OptimizerTest, PushesLimitBelowRowPreservingOps) {
  PlanPtr p = Plan::Limit(
      Plan::Rename(
          Plan::Extend(Plan::Scan("orders"), {{"t", Mul(Col("amount"), Lit(2.0))}}),
          {{"t", "taxed"}}),
      7, 2);
  ASSERT_OK_AND_ASSIGN(PlanPtr optimized, Optimize(p, catalog_, {}));
  // The limit should sink below rename and extend, directly onto the scan
  // side (deepest position in the rendering).
  std::string tree = optimized->ToString();
  EXPECT_GT(tree.find("limit"), tree.find("extend")) << tree;
  CheckPreserves(p);
}

TEST_F(OptimizerTest, ComposesAdjacentLimits) {
  PlanPtr p = Plan::Limit(Plan::Limit(Plan::Scan("orders"), 20, 5), 10, 3);
  ASSERT_OK_AND_ASSIGN(PlanPtr optimized, Optimize(p, catalog_, {}));
  ASSERT_EQ(optimized->kind(), OpKind::kLimit);
  EXPECT_EQ(optimized->As<LimitOp>().offset, 8);
  EXPECT_EQ(optimized->As<LimitOp>().limit, 10);
  EXPECT_EQ(optimized->child(0)->kind(), OpKind::kScan);
  CheckPreserves(p);
  // Outer window larger than the inner remainder.
  PlanPtr clipped = Plan::Limit(Plan::Limit(Plan::Scan("orders"), 10, 0), 50, 8);
  ASSERT_OK_AND_ASSIGN(PlanPtr opt2, Optimize(clipped, catalog_, {}));
  EXPECT_EQ(opt2->As<LimitOp>().limit, 2);
  CheckPreserves(clipped);
}

TEST_F(OptimizerTest, LimitDoesNotCrossFilteringOps) {
  // Pushing a limit below select/sort/distinct would change results.
  PlanPtr p = Plan::Limit(
      Plan::Select(Plan::Scan("orders"), Gt(Col("amount"), Lit(50.0))), 5, 0);
  ASSERT_OK_AND_ASSIGN(PlanPtr optimized, Optimize(p, catalog_, {}));
  EXPECT_EQ(optimized->kind(), OpKind::kLimit);
  EXPECT_EQ(optimized->child(0)->kind(), OpKind::kSelect);
  CheckPreserves(p);
}

TEST_F(OptimizerTest, OptimizesInsideIterateBody) {
  SchemaPtr s = MakeSchema({Field::Attr("v", DataType::kFloat64)});
  ASSERT_OK(catalog_.Put("st", Dataset(MakeTable(s, {{F(8.0)}}))));
  IterateOp op;
  op.body = Plan::Rename(
      Plan::Project(
          Plan::Select(
              Plan::Extend(Plan::LoopVar(), {{"h", Div(Col("v"), Lit(2.0))}}),
              And(Lit(true), Gt(Col("h"), Lit(-1.0)))),
          {"h"}),
      {{"h", "v"}});
  op.max_iters = 3;
  PlanPtr p = Plan::Iterate(Plan::Scan("st"), op);
  CheckPreserves(p);
}

// ---------------------------------------------------------------------------
// E14: statistics, cardinality estimation, and join reordering.
// ---------------------------------------------------------------------------

TEST(StatsTest, ComputesColumnStatistics) {
  SchemaPtr s = Schema::Make({Field::Attr("k", DataType::kInt64),
                              Field::Attr("name", DataType::kString)})
                    .ValueOrDie();
  TableBuilder b(s);
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_OK(b.AppendRow({Value::Int64(i % 50), Value::String("row")}));
  }
  ASSERT_OK(b.AppendRow({Value::Null(), Value::Null()}));
  TableStats stats = ComputeStats(Dataset(b.Finish().ValueOrDie()));
  EXPECT_EQ(stats.row_count, 1001);
  const ColumnStats& k = stats.columns.at("k");
  EXPECT_TRUE(k.has_minmax);
  EXPECT_EQ(k.min, 0.0);
  EXPECT_EQ(k.max, 49.0);
  EXPECT_EQ(k.null_count, 1);
  // Small column: the KMV sketch is exact.
  EXPECT_NEAR(k.distinct, 50.0, 1.0);
  const ColumnStats& name = stats.columns.at("name");
  EXPECT_FALSE(name.has_minmax);
  // "row" is 3 bytes + 4 offset bytes on the NXB1 wire.
  EXPECT_NEAR(name.avg_width, 7.0, 0.5);
}

TEST(StatsTest, CatalogComputesRefreshesAndOverrides) {
  InMemoryCatalog catalog;
  SchemaPtr s = Schema::Make({Field::Attr("v", DataType::kInt64)}).ValueOrDie();
  TableBuilder b(s);
  for (int64_t i = 0; i < 10; ++i) ASSERT_OK(b.AppendRow({Value::Int64(i)}));
  ASSERT_OK(catalog.Put("t", Dataset(b.Finish().ValueOrDie())));

  ASSERT_OK_AND_ASSIGN(TableStats stats, catalog.GetStats("t"));
  EXPECT_EQ(stats.row_count, 10);
  EXPECT_FALSE(catalog.GetStats("missing").ok());

  stats.row_count = 777;
  ASSERT_OK(catalog.OverrideStats("t", stats));
  ASSERT_OK_AND_ASSIGN(TableStats forged, catalog.GetStats("t"));
  EXPECT_EQ(forged.row_count, 777);
  ASSERT_OK(catalog.RefreshStats("t"));
  ASSERT_OK_AND_ASSIGN(TableStats fresh, catalog.GetStats("t"));
  EXPECT_EQ(fresh.row_count, 10);

  ASSERT_OK(catalog.Drop("t"));
  EXPECT_FALSE(catalog.GetStats("t").ok());
}

TEST(StatsTest, KmvMergeOfSamplesEqualsSketchOfUnion) {
  // The mergeability contract at k = 256: Merge(sketch(A), sketch(B)) must
  // be indistinguishable from sketch(A ∪ B) — same kept set, same estimate.
  // That identity is what makes O(|Δ|) append-time stats sound.
  Rng rng(42);
  KmvSketch a, b, of_union;
  for (int i = 0; i < 30000; ++i) {
    // Hash the draw: the estimator assumes uniform 64-bit hashes.
    uint64_t h = HashInt64(static_cast<uint64_t>(rng.NextInt(1, 1 << 30)) |
                           (static_cast<uint64_t>(i) << 32));
    // Overlapping streams: ~half the hashes land in both.
    bool in_a = rng.NextBool(0.7);
    bool in_b = !in_a || rng.NextBool(0.4);
    if (in_a) a.Add(h);
    if (in_b) b.Add(h);
    of_union.Add(h);
  }
  KmvSketch merged = a;
  merged.Merge(b);
  EXPECT_EQ(merged.kept(), KmvSketch::kK);
  EXPECT_EQ(merged.kept(), of_union.kept());
  EXPECT_EQ(merged.Estimate(), of_union.Estimate());
  // And the estimate itself is in the right ballpark for ~30k distinct.
  EXPECT_NEAR(merged.Estimate(), 30000.0, 30000.0 * 0.15);

  // Below k the sketch is exact, and merging with an empty sketch is a
  // no-op in both directions.
  KmvSketch small, empty;
  for (uint64_t h = 1; h <= 100; ++h) small.Add(h * 7919);
  small.Merge(empty);
  EXPECT_EQ(small.Estimate(), 100.0);
  empty.Merge(small);
  EXPECT_EQ(empty.Estimate(), 100.0);
}

TEST(StatsTest, AccumulatorMatchesBatchComputeOverAppends) {
  // Feeding a table batch-by-batch through TableStatsAccumulator must agree
  // with a one-shot ComputeStats over the concatenation (full scan, no
  // sampling: the table is far under kStatsSampleLimit).
  SchemaPtr s = Schema::Make({Field::Attr("k", DataType::kInt64),
                              Field::Attr("name", DataType::kString)})
                    .ValueOrDie();
  Rng rng(9);
  TableStatsAccumulator acc(s);
  TableBuilder whole(s);
  for (int batch = 0; batch < 5; ++batch) {
    TableBuilder b(s);
    for (int i = 0; i < 300; ++i) {
      Value k = rng.NextBounded(30) == 0 ? Value::Null()
                                         : Value::Int64(rng.NextInt(-50, 400));
      Value n = Value::String(std::string(1 + rng.NextBounded(6), 'x'));
      ASSERT_OK(b.AppendRow({k, n}));
      ASSERT_OK(whole.AppendRow({k, n}));
    }
    acc.AddTable(*b.Finish().ValueOrDie());
  }
  TableStats inc = acc.Snapshot();
  TableStats full = ComputeStats(Dataset(whole.Finish().ValueOrDie()));
  EXPECT_EQ(inc.row_count, full.row_count);
  for (const std::string& col : {std::string("k"), std::string("name")}) {
    const ColumnStats& i = inc.columns.at(col);
    const ColumnStats& f = full.columns.at(col);
    EXPECT_EQ(i.null_count, f.null_count) << col;
    EXPECT_EQ(i.has_minmax, f.has_minmax) << col;
    EXPECT_EQ(i.min, f.min) << col;
    EXPECT_EQ(i.max, f.max) << col;
    EXPECT_EQ(i.distinct, f.distinct) << col;
    EXPECT_NEAR(i.avg_width, f.avg_width, 1e-9) << col;
  }
}

// Single-predicate filters over uniform data must estimate within a q-error
// of 2 (the issue's acceptance bar; uniform data is the model's home turf).
TEST(CardinalityTest, FilterQErrorWithinTwoOnUniformData) {
  InMemoryCatalog catalog;
  SchemaPtr s = Schema::Make({Field::Attr("u", DataType::kInt64),
                              Field::Attr("w", DataType::kFloat64)})
                    .ValueOrDie();
  TableBuilder b(s);
  Rng rng(5);
  const int64_t kRows = 10000;
  for (int64_t i = 0; i < kRows; ++i) {
    ASSERT_OK(b.AppendRow(
        {Value::Int64(rng.NextInt(0, 999)), Value::Float64(rng.NextDouble(0, 1))}));
  }
  ASSERT_OK(catalog.Put("t", Dataset(b.Finish().ValueOrDie())));
  ReferenceExecutor exec(&catalog);

  std::vector<ExprPtr> preds = {
      Eq(Col("u"), Lit(int64_t{123})),  Lt(Col("u"), Lit(int64_t{100})),
      Ge(Col("u"), Lit(int64_t{900})),  Lt(Col("w"), Lit(0.25)),
      Gt(Col("w"), Lit(0.9)),           Ne(Col("u"), Lit(int64_t{4})),
  };
  for (const ExprPtr& pred : preds) {
    PlanPtr p = Plan::Select(Plan::Scan("t"), pred);
    ASSERT_OK_AND_ASSIGN(double est, EstimateCardinality(*p, catalog));
    ASSERT_OK_AND_ASSIGN(Dataset actual, exec.Execute(*p));
    double act = std::max<double>(1.0, static_cast<double>(actual.num_rows()));
    double e = std::max(1.0, est);
    double q = std::max(e / act, act / e);
    EXPECT_LE(q, 2.0) << "pred " << pred->ToString() << ": est " << est
                      << " actual " << actual.num_rows();
  }
}

TEST(CardinalityTest, JoinUsesContainmentAssumption) {
  InMemoryCatalog catalog;
  SchemaPtr ls = Schema::Make({Field::Attr("k", DataType::kInt64)}).ValueOrDie();
  SchemaPtr rs = Schema::Make({Field::Attr("k", DataType::kInt64),
                               Field::Attr("p", DataType::kInt64)})
                     .ValueOrDie();
  TableBuilder lb(ls), rb(rs);
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_OK(lb.AppendRow({Value::Int64(i % 100)}));  // 100 distinct keys
  }
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_OK(rb.AppendRow({Value::Int64(i), Value::Int64(i)}));  // pk side
  }
  ASSERT_OK(catalog.Put("l", Dataset(lb.Finish().ValueOrDie())));
  ASSERT_OK(catalog.Put("r", Dataset(rb.Finish().ValueOrDie())));
  PlanPtr p = Plan::Join(Plan::Scan("l"), Plan::Scan("r"), JoinType::kInner,
                         {"k"}, {"k"});
  // |L ⋈ R| = 1000·100 / max(100, 100) = 1000 (every fact row survives).
  ASSERT_OK_AND_ASSIGN(double est, EstimateCardinality(*p, catalog));
  EXPECT_NEAR(est, 1000.0, 150.0);
}

class JoinOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(13);
    // Skewed pair: a ⋈ b on x explodes (10 distinct x), b ⋈ c on y is
    // selective (1000 distinct y, c holds 5 of them).
    SchemaPtr sa = MakeSchema({Field::Attr("x", DataType::kInt64),
                               Field::Attr("a_val", DataType::kFloat64)});
    TableBuilder ab(sa);
    for (int64_t i = 0; i < 400; ++i) {
      ASSERT_OK(ab.AppendRow({I(rng.NextInt(0, 9)), F(rng.NextDouble(0, 1))}));
    }
    ASSERT_OK(catalog_.Put("a", Dataset(ab.Finish().ValueOrDie())));
    SchemaPtr sb = MakeSchema({Field::Attr("x", DataType::kInt64),
                               Field::Attr("y", DataType::kInt64)});
    TableBuilder bb(sb);
    for (int64_t i = 0; i < 400; ++i) {
      ASSERT_OK(bb.AppendRow({I(rng.NextInt(0, 9)), I(rng.NextInt(0, 999))}));
    }
    ASSERT_OK(catalog_.Put("b", Dataset(bb.Finish().ValueOrDie())));
    SchemaPtr sc = MakeSchema({Field::Attr("y", DataType::kInt64),
                               Field::Attr("label", DataType::kString)});
    TableBuilder cb(sc);
    for (int64_t i = 0; i < 5; ++i) {
      ASSERT_OK(cb.AppendRow({I(i), S(StrCat("c", i))}));
    }
    ASSERT_OK(catalog_.Put("c", Dataset(cb.Finish().ValueOrDie())));
  }

  PlanPtr WrittenOrder() {
    PlanPtr p = Plan::Join(Plan::Scan("a"), Plan::Scan("b"), JoinType::kInner,
                           {"x"}, {"x"});
    return Plan::Join(p, Plan::Scan("c"), JoinType::kInner, {"y"}, {"y"});
  }

  InMemoryCatalog catalog_;
};

TEST_F(JoinOrderTest, ReordersSkewedJoinAndPreservesResults) {
  PlanPtr p = WrittenOrder();
  int64_t reordered = 0;
  ASSERT_OK_AND_ASSIGN(PlanPtr better, ReorderJoins(p, catalog_, &reordered));
  EXPECT_GE(reordered, 1);
  // Same schema, same rows.
  ASSERT_OK_AND_ASSIGN(SchemaPtr s1, InferSchema(*p, catalog_));
  ASSERT_OK_AND_ASSIGN(SchemaPtr s2, InferSchema(*better, catalog_));
  EXPECT_TRUE(s1->Equals(*s2)) << s1->ToString() << " vs " << s2->ToString();
  ReferenceExecutor exec(&catalog_);
  ASSERT_OK_AND_ASSIGN(Dataset want, exec.Execute(*p));
  ASSERT_OK_AND_ASSIGN(Dataset got, exec.Execute(*better));
  EXPECT_TRUE(got.LogicallyEquals(want)) << better->ToString();
  // The selective pair must sit at the bottom now: some join of two bare
  // scans over exactly {b, c}.
  bool bc_at_bottom = false;
  std::function<void(const Plan&)> walk = [&](const Plan& node) {
    if (node.kind() == OpKind::kJoin && node.child(0)->kind() == OpKind::kScan &&
        node.child(1)->kind() == OpKind::kScan) {
      std::set<std::string> tables = {node.child(0)->As<ScanOp>().table,
                                      node.child(1)->As<ScanOp>().table};
      if (tables == std::set<std::string>{"b", "c"}) bc_at_bottom = true;
    }
    for (const PlanPtr& c : node.children()) walk(*c);
  };
  walk(*better);
  EXPECT_TRUE(bc_at_bottom) << better->ToString();
}

TEST_F(JoinOrderTest, DisabledPassLeavesWrittenOrder) {
  PlanPtr p = WrittenOrder();
  OptimizerOptions off;
  off.reorder_joins = false;
  OptimizerStats stats;
  ASSERT_OK_AND_ASSIGN(PlanPtr untouched, Optimize(p, catalog_, off, &stats));
  EXPECT_EQ(stats.joins_reordered, 0);
  // Both joins still in written nesting: a ⋈ b below, c on top.
  ASSERT_EQ(untouched->kind(), OpKind::kJoin);
  EXPECT_EQ(untouched->child(0)->kind(), OpKind::kJoin);

  OptimizerStats on_stats;
  ASSERT_OK_AND_ASSIGN(PlanPtr reordered, Optimize(p, catalog_, {}, &on_stats));
  EXPECT_GE(on_stats.joins_reordered, 1);
  EXPECT_GT(on_stats.estimated_rows_root, 0);
}

TEST_F(JoinOrderTest, OuterJoinsAreNotReordered) {
  PlanPtr p = Plan::Join(Plan::Scan("a"), Plan::Scan("b"), JoinType::kLeft,
                         {"x"}, {"x"});
  p = Plan::Join(p, Plan::Scan("c"), JoinType::kLeft, {"y"}, {"y"});
  int64_t reordered = 0;
  ASSERT_OK_AND_ASSIGN(PlanPtr out, ReorderJoins(p, catalog_, &reordered));
  EXPECT_EQ(reordered, 0);
  EXPECT_TRUE(out->Equals(*p));
}

}  // namespace
}  // namespace nexus
