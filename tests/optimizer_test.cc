// Optimizer tests: constant folding, selection pushdown, column pruning,
// intent recognition — plus semantics-preservation property tests (optimized
// and unoptimized plans agree on every workload).
#include <gtest/gtest.h>

#include "common/random.h"
#include "common/str_util.h"
#include "core/expansion.h"
#include "core/schema_inference.h"
#include "exec/reference_executor.h"
#include "expr/builder.h"
#include "optimizer/fold.h"
#include "optimizer/optimizer.h"
#include "tests/test_util.h"

namespace nexus {
namespace {

using namespace nexus::exprs;  // NOLINT
using testing::F;
using testing::I;
using testing::MakeSchema;
using testing::MakeTable;
using testing::N;
using testing::S;

TEST(FoldTest, ArithmeticAndBooleans) {
  EXPECT_EQ(FoldConstants(Add(Lit(2), Lit(3)))->ToString(), "5");
  EXPECT_EQ(FoldConstants(Mul(Add(Lit(1), Lit(1)), Col("x")))->ToString(),
            "(2 * x)");
  EXPECT_EQ(FoldConstants(And(Lit(true), Gt(Col("x"), Lit(1))))->ToString(),
            "(x > 1)");
  EXPECT_EQ(FoldConstants(And(Lit(false), Gt(Col("x"), Lit(1))))->ToString(),
            "false");
  EXPECT_EQ(FoldConstants(Or(Lit(false), Col("b")))->ToString(), "b");
  EXPECT_EQ(FoldConstants(Or(Col("b"), Lit(true)))->ToString(), "true");
  EXPECT_EQ(FoldConstants(Not(Not(Col("b"))))->ToString(), "b");
  EXPECT_EQ(FoldConstants(Func("sqrt", {Lit(16.0)}))->ToString(), "4");
  EXPECT_EQ(FoldConstants(Div(Lit(1), Lit(0)))->ToString(), "null");
}

TEST(FoldTest, LeavesNonConstantsAlone) {
  ExprPtr e = Gt(Add(Col("a"), Col("b")), Lit(3));
  EXPECT_TRUE(FoldConstants(e)->Equals(*e));
}

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SchemaPtr orders = MakeSchema({Field::Attr("oid", DataType::kInt64),
                                   Field::Attr("cid", DataType::kInt64),
                                   Field::Attr("amount", DataType::kFloat64),
                                   Field::Attr("region", DataType::kString)});
    TableBuilder b(orders);
    Rng rng(1);
    for (int64_t i = 0; i < 300; ++i) {
      ASSERT_OK(b.AppendRow(
          {I(i), I(rng.NextInt(0, 40)), F(rng.NextDouble(0, 100)),
           S(std::string(1, static_cast<char>('a' + rng.NextBounded(3))))}));
    }
    ASSERT_OK(catalog_.Put("orders", Dataset(b.Finish().ValueOrDie())));

    SchemaPtr cust = MakeSchema({Field::Attr("id", DataType::kInt64),
                                 Field::Attr("tier", DataType::kInt64)});
    TableBuilder cb(cust);
    for (int64_t i = 0; i < 40; ++i) {
      ASSERT_OK(cb.AppendRow({I(i), I(rng.NextInt(1, 3))}));
    }
    ASSERT_OK(catalog_.Put("cust", Dataset(cb.Finish().ValueOrDie())));

    SchemaPtr mat = MakeSchema({Field::Dim("i"), Field::Dim("k"),
                                Field::Attr("a", DataType::kFloat64)});
    SchemaPtr mat2 = MakeSchema({Field::Dim("k"), Field::Dim("j"),
                                 Field::Attr("b", DataType::kFloat64)});
    TableBuilder ma(mat), mb(mat2);
    for (int64_t i = 0; i < 6; ++i) {
      for (int64_t k = 0; k < 6; ++k) {
        ASSERT_OK(ma.AppendRow({I(i), I(k), F(static_cast<double>(rng.NextInt(1, 5)))}));
        ASSERT_OK(mb.AppendRow({I(i), I(k), F(static_cast<double>(rng.NextInt(1, 5)))}));
      }
    }
    ASSERT_OK(catalog_.Put("A", Dataset(ma.Finish().ValueOrDie())));
    ASSERT_OK(catalog_.Put("B", Dataset(mb.Finish().ValueOrDie())));
  }

  // Optimized and raw plans must be schema- and value-equivalent.
  void CheckPreserves(const PlanPtr& plan, const OptimizerOptions& opts = {}) {
    OptimizerStats stats;
    ASSERT_OK_AND_ASSIGN(PlanPtr optimized, Optimize(plan, catalog_, opts, &stats));
    ASSERT_OK_AND_ASSIGN(SchemaPtr s1, InferSchema(*plan, catalog_));
    ASSERT_OK_AND_ASSIGN(SchemaPtr s2, InferSchema(*optimized, catalog_));
    EXPECT_TRUE(s1->Equals(*s2))
        << s1->ToString() << " vs " << s2->ToString() << "\n"
        << optimized->ToString();
    ReferenceExecutor exec(&catalog_);
    ASSERT_OK_AND_ASSIGN(Dataset want, exec.Execute(*plan));
    ASSERT_OK_AND_ASSIGN(Dataset got, exec.Execute(*optimized));
    EXPECT_TRUE(got.LogicallyEquals(want)) << optimized->ToString();
  }

  InMemoryCatalog catalog_;
};

TEST_F(OptimizerTest, PushesSelectBelowProjectAndExtend) {
  PlanPtr p = Plan::Scan("orders");
  p = Plan::Extend(p, {{"taxed", Mul(Col("amount"), Lit(1.1))}});
  p = Plan::Project(p, {"cid", "taxed"});
  p = Plan::Select(p, Gt(Col("taxed"), Lit(50.0)));
  OptimizerStats stats;
  ASSERT_OK_AND_ASSIGN(PlanPtr optimized, Optimize(p, catalog_, {}, &stats));
  EXPECT_GE(stats.selections_pushed, 2);
  // The selection now sits below the extend (deeper in the tree rendering).
  std::string tree = optimized->ToString();
  EXPECT_GT(tree.find("select"), tree.find("extend")) << tree;
  EXPECT_NE(tree.find("select"), std::string::npos);
  CheckPreserves(p);
}

TEST_F(OptimizerTest, SplitsConjunctsAcrossJoin) {
  PlanPtr join = Plan::Join(Plan::Scan("orders"), Plan::Scan("cust"),
                            JoinType::kInner, {"cid"}, {"id"});
  PlanPtr p = Plan::Select(
      join, And(Gt(Col("amount"), Lit(10.0)), Eq(Col("tier"), Lit(2))));
  OptimizerStats stats;
  ASSERT_OK_AND_ASSIGN(PlanPtr optimized, Optimize(p, catalog_, {}, &stats));
  EXPECT_EQ(stats.selections_pushed, 2);
  EXPECT_EQ(optimized->kind(), OpKind::kJoin);  // no residual select left
  CheckPreserves(p);
}

TEST_F(OptimizerTest, DoesNotPushBelowLeftJoinRightSide) {
  PlanPtr join = Plan::Join(Plan::Scan("orders"), Plan::Scan("cust"),
                            JoinType::kLeft, {"cid"}, {"id"});
  PlanPtr p = Plan::Select(join, Eq(Col("tier"), Lit(2)));
  ASSERT_OK_AND_ASSIGN(PlanPtr optimized, Optimize(p, catalog_, {}));
  // tier references the null-extended right side: the select must stay above.
  EXPECT_EQ(optimized->kind(), OpKind::kSelect);
  CheckPreserves(p);
}

TEST_F(OptimizerTest, PushesThroughRenameAndUnion) {
  PlanPtr u = Plan::Union(Plan::Scan("orders"), Plan::Scan("orders"));
  PlanPtr p = Plan::Select(Plan::Rename(u, {{"amount", "amt"}}),
                           Gt(Col("amt"), Lit(90.0)));
  OptimizerStats stats;
  ASSERT_OK_AND_ASSIGN(PlanPtr optimized, Optimize(p, catalog_, {}, &stats));
  EXPECT_GE(stats.selections_pushed, 2);  // through rename, then into the union
  // Both union branches end up with their own selection.
  std::string tree = optimized->ToString();
  size_t first = tree.find("select");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(tree.find("select", first + 1), std::string::npos) << tree;
  CheckPreserves(p);
}

TEST_F(OptimizerTest, PrunesScanColumns) {
  PlanPtr p = Plan::Aggregate(
      Plan::Select(Plan::Scan("orders"), Gt(Col("amount"), Lit(20.0))), {"cid"},
      {AggSpec{AggFunc::kSum, Col("amount"), "total"}});
  OptimizerStats stats;
  ASSERT_OK_AND_ASSIGN(PlanPtr optimized, Optimize(p, catalog_, {}, &stats));
  EXPECT_EQ(stats.projects_inserted, 1);
  EXPECT_NE(optimized->ToString().find("project[cid, amount]"), std::string::npos)
      << optimized->ToString();
  CheckPreserves(p);
}

TEST_F(OptimizerTest, PruningKeepsRootSchema) {
  PlanPtr p = Plan::Join(Plan::Scan("orders"), Plan::Scan("cust"),
                         JoinType::kInner, {"cid"}, {"id"});
  CheckPreserves(p);  // all columns needed at the root: no visible change
}

TEST_F(OptimizerTest, RecognizesMatMulPipeline) {
  // Hand-written matrix multiply as join + multiply + sum.
  PlanPtr right = Plan::Rename(Plan::Scan("B"),
                               {{"k", "k2"}, {"j", "j2"}, {"b", "bv"}});
  PlanPtr joined = Plan::Join(Plan::Scan("A"), right, JoinType::kInner, {"k"},
                              {"k2"});
  PlanPtr prod = Plan::Extend(joined, {{"p", Mul(Col("a"), Col("bv"))}});
  PlanPtr agg = Plan::Aggregate(prod, {"i", "j2"},
                                {AggSpec{AggFunc::kSum, Col("p"), "c"}});
  PlanPtr p = Plan::Select(agg, Ne(Col("c"), Lit(0)));
  OptimizerStats stats;
  ASSERT_OK_AND_ASSIGN(PlanPtr optimized, Optimize(p, catalog_, {}, &stats));
  EXPECT_EQ(stats.intents_recognized, 1);
  EXPECT_NE(optimized->ToString().find("matmul"), std::string::npos)
      << optimized->ToString();
  CheckPreserves(p);
}

TEST_F(OptimizerTest, RecognitionInvertsExpansion) {
  ASSERT_OK_AND_ASSIGN(SchemaPtr ls, catalog_.GetSchema("A"));
  ASSERT_OK_AND_ASSIGN(SchemaPtr rs, catalog_.GetSchema("B"));
  ASSERT_OK_AND_ASSIGN(
      PlanPtr expanded,
      ExpandMatMul(Plan::Scan("A"), Plan::Scan("B"), MatMulOp{"c"}, *ls, *rs));
  OptimizerStats stats;
  ASSERT_OK_AND_ASSIGN(PlanPtr optimized, Optimize(expanded, catalog_, {}, &stats));
  EXPECT_EQ(stats.intents_recognized, 1);
  CheckPreserves(expanded);
}

TEST_F(OptimizerTest, RecognitionDisabledLeavesPlanAlone) {
  PlanPtr right = Plan::Rename(Plan::Scan("B"),
                               {{"k", "k2"}, {"j", "j2"}, {"b", "bv"}});
  PlanPtr joined = Plan::Join(Plan::Scan("A"), right, JoinType::kInner, {"k"},
                              {"k2"});
  PlanPtr prod = Plan::Extend(joined, {{"p", Mul(Col("a"), Col("bv"))}});
  PlanPtr agg = Plan::Aggregate(prod, {"i", "j2"},
                                {AggSpec{AggFunc::kSum, Col("p"), "c"}});
  PlanPtr p = Plan::Select(agg, Ne(Col("c"), Lit(0)));
  OptimizerOptions opts;
  opts.recognize_intent = false;
  OptimizerStats stats;
  ASSERT_OK_AND_ASSIGN(PlanPtr optimized, Optimize(p, catalog_, opts, &stats));
  EXPECT_EQ(stats.intents_recognized, 0);
  EXPECT_EQ(optimized->ToString().find("matmul"), std::string::npos);
}

TEST_F(OptimizerTest, NoFalsePositiveRecognition) {
  // Same shape but aggregate uses avg, not sum: not a matrix multiply.
  PlanPtr right = Plan::Rename(Plan::Scan("B"),
                               {{"k", "k2"}, {"j", "j2"}, {"b", "bv"}});
  PlanPtr joined = Plan::Join(Plan::Scan("A"), right, JoinType::kInner, {"k"},
                              {"k2"});
  PlanPtr prod = Plan::Extend(joined, {{"p", Mul(Col("a"), Col("bv"))}});
  PlanPtr agg = Plan::Aggregate(prod, {"i", "j2"},
                                {AggSpec{AggFunc::kAvg, Col("p"), "c"}});
  PlanPtr p = Plan::Select(agg, Ne(Col("c"), Lit(0)));
  OptimizerStats stats;
  ASSERT_OK_AND_ASSIGN(PlanPtr optimized, Optimize(p, catalog_, {}, &stats));
  EXPECT_EQ(stats.intents_recognized, 0);
  CheckPreserves(p);
}

TEST_F(OptimizerTest, FoldsInsidePlans) {
  PlanPtr p = Plan::Select(Plan::Scan("orders"),
                           And(Lit(true), Gt(Col("amount"), Add(Lit(10.0), Lit(5.0)))));
  OptimizerStats stats;
  ASSERT_OK_AND_ASSIGN(PlanPtr optimized, Optimize(p, catalog_, {}, &stats));
  EXPECT_GE(stats.expressions_folded, 1);
  CheckPreserves(p);
}

TEST_F(OptimizerTest, AblationFlagsIsolatePasses) {
  PlanPtr p = Plan::Select(
      Plan::Project(Plan::Scan("orders"), {"cid", "amount"}),
      Gt(Col("amount"), Lit(50.0)));
  OptimizerOptions off;
  off.fold_constants = off.push_selections = off.recognize_intent =
      off.prune_columns = false;
  ASSERT_OK_AND_ASSIGN(PlanPtr untouched, Optimize(p, catalog_, off));
  EXPECT_TRUE(untouched->Equals(*p));
}

TEST_F(OptimizerTest, RandomizedEquivalenceSweep) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    PlanPtr p = Plan::Scan("orders");
    // Random pipeline of pushdown-relevant operators.
    int steps = static_cast<int>(rng.NextBounded(4)) + 2;
    for (int s = 0; s < steps; ++s) {
      switch (rng.NextBounded(5)) {
        case 0:
          p = Plan::Select(p, Gt(Col("amount"), Lit(rng.NextDouble(0, 100))));
          break;
        case 1:
          p = Plan::Extend(
              p, {{StrCat("e", trial, "_", s), Add(Col("amount"), Lit(1.0))}});
          break;
        case 2:
          p = Plan::Sort(p, {{"oid", rng.NextBool()}});
          break;
        case 3:
          p = Plan::Distinct(p);
          break;
        default:
          p = Plan::Select(p, Ne(Col("region"), Lit("b")));
          break;
      }
    }
    CheckPreserves(p);
  }
}

TEST_F(OptimizerTest, PushesLimitBelowRowPreservingOps) {
  PlanPtr p = Plan::Limit(
      Plan::Rename(
          Plan::Extend(Plan::Scan("orders"), {{"t", Mul(Col("amount"), Lit(2.0))}}),
          {{"t", "taxed"}}),
      7, 2);
  ASSERT_OK_AND_ASSIGN(PlanPtr optimized, Optimize(p, catalog_, {}));
  // The limit should sink below rename and extend, directly onto the scan
  // side (deepest position in the rendering).
  std::string tree = optimized->ToString();
  EXPECT_GT(tree.find("limit"), tree.find("extend")) << tree;
  CheckPreserves(p);
}

TEST_F(OptimizerTest, ComposesAdjacentLimits) {
  PlanPtr p = Plan::Limit(Plan::Limit(Plan::Scan("orders"), 20, 5), 10, 3);
  ASSERT_OK_AND_ASSIGN(PlanPtr optimized, Optimize(p, catalog_, {}));
  ASSERT_EQ(optimized->kind(), OpKind::kLimit);
  EXPECT_EQ(optimized->As<LimitOp>().offset, 8);
  EXPECT_EQ(optimized->As<LimitOp>().limit, 10);
  EXPECT_EQ(optimized->child(0)->kind(), OpKind::kScan);
  CheckPreserves(p);
  // Outer window larger than the inner remainder.
  PlanPtr clipped = Plan::Limit(Plan::Limit(Plan::Scan("orders"), 10, 0), 50, 8);
  ASSERT_OK_AND_ASSIGN(PlanPtr opt2, Optimize(clipped, catalog_, {}));
  EXPECT_EQ(opt2->As<LimitOp>().limit, 2);
  CheckPreserves(clipped);
}

TEST_F(OptimizerTest, LimitDoesNotCrossFilteringOps) {
  // Pushing a limit below select/sort/distinct would change results.
  PlanPtr p = Plan::Limit(
      Plan::Select(Plan::Scan("orders"), Gt(Col("amount"), Lit(50.0))), 5, 0);
  ASSERT_OK_AND_ASSIGN(PlanPtr optimized, Optimize(p, catalog_, {}));
  EXPECT_EQ(optimized->kind(), OpKind::kLimit);
  EXPECT_EQ(optimized->child(0)->kind(), OpKind::kSelect);
  CheckPreserves(p);
}

TEST_F(OptimizerTest, OptimizesInsideIterateBody) {
  SchemaPtr s = MakeSchema({Field::Attr("v", DataType::kFloat64)});
  ASSERT_OK(catalog_.Put("st", Dataset(MakeTable(s, {{F(8.0)}}))));
  IterateOp op;
  op.body = Plan::Rename(
      Plan::Project(
          Plan::Select(
              Plan::Extend(Plan::LoopVar(), {{"h", Div(Col("v"), Lit(2.0))}}),
              And(Lit(true), Gt(Col("h"), Lit(-1.0)))),
          {"h"}),
      {{"h", "v"}});
  op.max_iters = 3;
  PlanPtr p = Plan::Iterate(Plan::Scan("st"), op);
  CheckPreserves(p);
}

}  // namespace
}  // namespace nexus
