// End-to-end integration tests: BDL text in → optimizer → federated
// placement → multi-engine execution → collection out, plus full-stack
// scenarios mirroring the examples.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/expansion.h"
#include "core/serialize.h"
#include "exec/reference_executor.h"
#include "federation/coordinator.h"
#include "frontend/bdl.h"
#include "frontend/query.h"
#include "tests/test_util.h"

namespace nexus {
namespace {

using namespace nexus::exprs;  // NOLINT
using testing::F;
using testing::I;
using testing::MakeSchema;
using testing::MakeTable;
using testing::S;

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>();
    ASSERT_OK(cluster_->AddServer("relstore", MakeRelationalProvider()));
    ASSERT_OK(cluster_->AddServer("arraydb", MakeArrayProvider()));
    ASSERT_OK(cluster_->AddServer("linalg", MakeLinalgProvider()));
    ASSERT_OK(cluster_->AddServer("graphd", MakeGraphProvider()));
    ASSERT_OK(cluster_->AddServer("reference", MakeReferenceProvider()));

    Rng rng(555);
    // Sensor grid on the array server.
    SchemaPtr grid = MakeSchema({Field::Dim("t"), Field::Dim("s"),
                                 Field::Attr("temp", DataType::kFloat64)});
    TableBuilder gb(grid);
    for (int64_t t = 0; t < 32; ++t) {
      for (int64_t s = 0; s < 16; ++s) {
        ASSERT_OK(gb.AppendRow(
            {I(t), I(s), F(static_cast<double>(rng.NextInt(10, 30)))}));
      }
    }
    grid_table_ = gb.Finish().ValueOrDie();
    ASSERT_OK(cluster_->PutData("arraydb", "readings", Dataset(grid_table_)));

    // Metadata on the relational server.
    SchemaPtr meta = MakeSchema({Field::Attr("sid", DataType::kInt64),
                                 Field::Attr("zone", DataType::kString)});
    TableBuilder mb(meta);
    for (int64_t s = 0; s < 16; ++s) {
      ASSERT_OK(mb.AppendRow({I(s), S(s % 2 == 0 ? "east" : "west")}));
    }
    meta_table_ = mb.Finish().ValueOrDie();
    ASSERT_OK(cluster_->PutData("relstore", "sensors", Dataset(meta_table_)));
  }

  Dataset ReferenceResult(const PlanPtr& plan) {
    InMemoryCatalog cat;
    EXPECT_OK(cat.Put("readings", Dataset(grid_table_)));
    EXPECT_OK(cat.Put("sensors", Dataset(meta_table_)));
    ReferenceExecutor exec(&cat);
    auto r = exec.Execute(*plan);
    EXPECT_OK(r.status());
    return r.ValueOrDie();
  }

  std::unique_ptr<Cluster> cluster_;
  TablePtr grid_table_, meta_table_;
};

TEST_F(IntegrationTest, BdlToFederatedExecution) {
  // Text in, multi-engine execution, collection out.
  ASSERT_OK_AND_ASSIGN(PlanPtr plan, ParseBdl(R"(
      from readings
      window t 1 using avg
      regrid t/8 using avg
      unbox
      join sensors on s = sid
      group by zone, t aggregate avg(temp) as z
      sort by zone, t
  )"));
  Coordinator coord(cluster_.get());
  ExecutionMetrics m;
  ASSERT_OK_AND_ASSIGN(Dataset got, coord.Execute(plan, &m));
  // Same pipeline on a single local catalog must agree.
  Dataset want = ReferenceResult(plan);
  EXPECT_TRUE(got.LogicallyEquals(want));
  // The work genuinely spanned both engines.
  EXPECT_GE(m.nodes_per_server["arraydb"], 2);
  EXPECT_GE(m.nodes_per_server["relstore"], 2);
}

TEST_F(IntegrationTest, OptimizedFederatedAgreesWithUnoptimized) {
  ASSERT_OK_AND_ASSIGN(PlanPtr plan, ParseBdl(R"(
      from readings
      unbox
      join sensors on s = sid
      where temp > 15.0 and zone == "east"
      group by s aggregate count(*) as n, max(temp) as peak
  )"));
  CoordinatorOptions with_opt;
  Coordinator c1(cluster_.get(), with_opt);
  CoordinatorOptions no_opt;
  no_opt.optimize = false;
  Coordinator c2(cluster_.get(), no_opt);
  ASSERT_OK_AND_ASSIGN(Dataset a, c1.Execute(plan));
  ASSERT_OK_AND_ASSIGN(Dataset b, c2.Execute(plan));
  EXPECT_TRUE(a.LogicallyEquals(b));
}

TEST_F(IntegrationTest, RecognizedIntentRunsOnSpecialistEndToEnd) {
  // Matrices stored on relstore; hand-written matmul pipeline; with
  // recognition the planner must route the core to linalg.
  Rng rng(77);
  SchemaPtr ms = MakeSchema({Field::Dim("i"), Field::Dim("k"),
                             Field::Attr("a", DataType::kFloat64)});
  SchemaPtr ms2 = MakeSchema({Field::Dim("k"), Field::Dim("j"),
                              Field::Attr("b", DataType::kFloat64)});
  TableBuilder ab(ms), bb(ms2);
  for (int64_t i = 0; i < 10; ++i) {
    for (int64_t k = 0; k < 10; ++k) {
      ASSERT_OK(ab.AppendRow({I(i), I(k), F(static_cast<double>(rng.NextInt(1, 5)))}));
      ASSERT_OK(bb.AppendRow({I(i), I(k), F(static_cast<double>(rng.NextInt(1, 5)))}));
    }
  }
  ASSERT_OK(cluster_->PutData("relstore", "MA", Dataset(ab.Finish().ValueOrDie())));
  ASSERT_OK(cluster_->PutData("relstore", "MB", Dataset(bb.Finish().ValueOrDie())));

  PlanPtr right = Plan::Rename(Plan::Scan("MB"),
                               {{"k", "k2"}, {"j", "j2"}, {"b", "bv"}});
  PlanPtr pipeline = Plan::Select(
      Plan::Aggregate(
          Plan::Extend(Plan::Join(Plan::Scan("MA"), right, JoinType::kInner,
                                  {"k"}, {"k2"}),
                       {{"p", Mul(Col("a"), Col("bv"))}}),
          {"i", "j2"}, {AggSpec{AggFunc::kSum, Col("p"), "c"}}),
      Ne(Col("c"), Lit(0)));

  Coordinator coord(cluster_.get());
  ASSERT_OK_AND_ASSIGN(std::string explain, coord.ExplainPlacement(pipeline));
  EXPECT_NE(explain.find("matmul"), std::string::npos) << explain;
  EXPECT_NE(explain.find("@linalg"), std::string::npos) << explain;

  ExecutionMetrics m;
  ASSERT_OK_AND_ASSIGN(Dataset got, coord.Execute(pipeline, &m));
  // Compare against the unrecognized relational execution.
  CoordinatorOptions off;
  off.optimizer.recognize_intent = false;
  Coordinator plain(cluster_.get(), off);
  ASSERT_OK_AND_ASSIGN(Dataset want, plain.Execute(pipeline));
  EXPECT_TRUE(got.LogicallyEquals(want));
  EXPECT_GE(m.nodes_per_server["linalg"], 1);
}

TEST_F(IntegrationTest, WireFormatCarriesWholeFederatedPlan) {
  // Serialize a mixed plan, parse it back, run both: identical results.
  ASSERT_OK_AND_ASSIGN(PlanPtr plan, ParseBdl(R"(
      from readings
      slice t 0 16
      regrid t/4, s/4 using max
      unbox
  )"));
  ASSERT_OK_AND_ASSIGN(PlanPtr reparsed, ParsePlan(SerializePlan(*plan)));
  Coordinator coord(cluster_.get());
  ASSERT_OK_AND_ASSIGN(Dataset a, coord.Execute(plan));
  ASSERT_OK_AND_ASSIGN(Dataset b, coord.Execute(reparsed));
  EXPECT_TRUE(a.LogicallyEquals(b));
}

TEST_F(IntegrationTest, FluentIterateFederatedConvergence) {
  // Heat diffusion: state halves toward the mean each step; run the loop
  // provider-side via the fluent API.
  SchemaPtr s = MakeSchema({Field::Dim("i"), Field::Attr("v", DataType::kFloat64)});
  TablePtr state0 = MakeTable(
      s, {{I(0), F(100.0)}, {I(1), F(0.0)}, {I(2), F(50.0)}, {I(3), F(10.0)}});
  ASSERT_OK(cluster_->PutData("relstore", "heat0", Dataset(state0)));

  Query body = Query::Loop()
                   .Let("nv", Mul(Col("v"), Lit(0.5)))
                   .SelectCols({"i", "nv"})
                   .Rename({{"nv", "v"}})
                   .AsArray({"i"});
  Query measure = Query::Loop()
                      .Aggregate({Sum(Col("v"), "total")})
                      .Let("d", Col("total"))
                      .SelectCols({"d"});
  Query loop = Query::From("heat0").IterateUntil(body, 50, &measure, 1.0);
  Coordinator coord(cluster_.get());
  ExecutionMetrics m;
  ASSERT_OK_AND_ASSIGN(Dataset result, coord.Execute(loop.plan(), &m));
  ASSERT_OK_AND_ASSIGN(TablePtr t, result.AsTable());
  double total = 0;
  for (int64_t r = 0; r < t->num_rows(); ++r) total += t->At(r, 1).AsDouble();
  EXPECT_LT(total, 1.0);        // converged below epsilon
  EXPECT_EQ(m.messages, 2);     // provider-side: one plan, one result
}

TEST_F(IntegrationTest, PageRankEndToEndViaBdl) {
  Rng rng(31);
  SchemaPtr es = MakeSchema({Field::Attr("u", DataType::kInt64),
                             Field::Attr("w", DataType::kInt64)});
  TableBuilder eb(es);
  for (int64_t e = 0; e < 80; ++e) {
    ASSERT_OK(eb.AppendRow({I(rng.NextInt(0, 19)), I(rng.NextInt(0, 19))}));
  }
  ASSERT_OK(cluster_->PutData("graphd", "links", Dataset(eb.Finish().ValueOrDie())));
  ASSERT_OK_AND_ASSIGN(PlanPtr plan, ParseBdl(
      "from links | pagerank u w iters 80 eps 1e-12"));
  Coordinator coord(cluster_.get());
  ASSERT_OK_AND_ASSIGN(Dataset ranks, coord.Execute(plan));
  ASSERT_OK_AND_ASSIGN(TablePtr t, ranks.AsTable());
  double total = 0;
  for (int64_t r = 0; r < t->num_rows(); ++r) total += t->At(r, 1).AsDouble();
  EXPECT_NEAR(total, 1.0, 1e-9);
}

}  // namespace
}  // namespace nexus
