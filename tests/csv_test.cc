// Tests for CSV import/export: dialect handling, type inference, explicit
// schemas, and write/read round trips.
#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "types/csv.h"

namespace nexus {
namespace {

using testing::B;
using testing::F;
using testing::I;
using testing::MakeSchema;
using testing::MakeTable;
using testing::N;
using testing::S;

TEST(CsvReadTest, InfersTypes) {
  ASSERT_OK_AND_ASSIGN(TablePtr t, ReadCsv("id,score,name,ok\n"
                                           "1,2.5,ann,true\n"
                                           "2,3,bob,false\n"));
  EXPECT_EQ(t->schema()->ToString(),
            "{id:int64, score:float64, name:string, ok:bool}");
  EXPECT_EQ(t->num_rows(), 2);
  EXPECT_EQ(t->At(0, 0), I(1));
  EXPECT_EQ(t->At(0, 1), F(2.5));
  EXPECT_EQ(t->At(1, 2), S("bob"));
  EXPECT_EQ(t->At(1, 3), B(false));
}

TEST(CsvReadTest, WidensMixedColumns) {
  // int then float → float; number then word → string; bool+int → string.
  ASSERT_OK_AND_ASSIGN(TablePtr t, ReadCsv("a,b,c\n1,7,true\n2.5,x,1\n"));
  EXPECT_EQ(t->schema()->field(0).type, DataType::kFloat64);
  EXPECT_EQ(t->schema()->field(1).type, DataType::kString);
  EXPECT_EQ(t->schema()->field(2).type, DataType::kString);
  EXPECT_EQ(t->At(0, 1), S("7"));
}

TEST(CsvReadTest, EmptyFieldsAreNull) {
  ASSERT_OK_AND_ASSIGN(TablePtr t, ReadCsv("a,b\n1,\n,2\n"));
  EXPECT_TRUE(t->At(0, 1).is_null());
  EXPECT_TRUE(t->At(1, 0).is_null());
  EXPECT_EQ(t->At(1, 1), I(2));
}

TEST(CsvReadTest, CustomNullToken) {
  CsvReadOptions opts;
  opts.null_token = "NA";
  ASSERT_OK_AND_ASSIGN(TablePtr t, ReadCsv("a\n1\nNA\n3\n", opts));
  EXPECT_TRUE(t->At(1, 0).is_null());
  EXPECT_EQ(t->column(0).type(), DataType::kInt64);
}

TEST(CsvReadTest, QuotingAndEscapes) {
  ASSERT_OK_AND_ASSIGN(TablePtr t,
                       ReadCsv("name,note\n"
                               "\"smith, ann\",\"said \"\"hi\"\"\"\n"
                               "bob,\"line1\nline2\"\n"));
  EXPECT_EQ(t->At(0, 0), S("smith, ann"));
  EXPECT_EQ(t->At(0, 1), S("said \"hi\""));
  EXPECT_EQ(t->At(1, 1), S("line1\nline2"));
}

TEST(CsvReadTest, ExplicitSchemaCoerces) {
  CsvReadOptions opts;
  opts.schema = MakeSchema({Field::Attr("a", DataType::kFloat64),
                            Field::Attr("b", DataType::kString)});
  ASSERT_OK_AND_ASSIGN(TablePtr t, ReadCsv("a,b\n1,2\n", opts));
  EXPECT_EQ(t->At(0, 0), F(1.0));
  EXPECT_EQ(t->At(0, 1), S("2"));
  // Header/field mismatches are rejected.
  EXPECT_FALSE(ReadCsv("x,b\n1,2\n", opts).ok());
  EXPECT_FALSE(ReadCsv("a\n1\n", opts).ok());
}

TEST(CsvReadTest, Errors) {
  EXPECT_FALSE(ReadCsv("").ok());
  EXPECT_FALSE(ReadCsv("a,b\n1\n").ok());       // ragged row
  EXPECT_FALSE(ReadCsv("a\n\"oops\n").ok());    // unterminated quote
  CsvReadOptions opts;
  opts.schema = MakeSchema({Field::Attr("a", DataType::kInt64)});
  EXPECT_FALSE(ReadCsv("a\nxyz\n", opts).ok());  // unparsable under schema
}

TEST(CsvReadTest, CustomDelimiter) {
  CsvReadOptions opts;
  opts.delimiter = ';';
  ASSERT_OK_AND_ASSIGN(TablePtr t, ReadCsv("a;b\n1;2\n", opts));
  EXPECT_EQ(t->num_columns(), 2);
  EXPECT_EQ(t->At(0, 1), I(2));
}

TEST(CsvWriteTest, RoundTripsAllTypes) {
  SchemaPtr s = MakeSchema({Field::Attr("i", DataType::kInt64),
                            Field::Attr("f", DataType::kFloat64),
                            Field::Attr("s", DataType::kString),
                            Field::Attr("b", DataType::kBool)});
  TablePtr t = MakeTable(s, {{I(1), F(0.125), S("plain"), B(true)},
                             {I(-7), F(1e-9), S("with,comma"), B(false)},
                             {N(), N(), S("q\"uote"), N()}});
  std::string csv = WriteCsv(*t);
  CsvReadOptions opts;
  opts.schema = s;
  ASSERT_OK_AND_ASSIGN(TablePtr back, ReadCsv(csv, opts));
  EXPECT_TRUE(back->Equals(*t)) << csv;
}

TEST(CsvWriteTest, FloatPrecisionSurvives) {
  SchemaPtr s = MakeSchema({Field::Attr("f", DataType::kFloat64)});
  double tricky = 0.1 + 0.2;
  TablePtr t = MakeTable(s, {{F(tricky)}});
  CsvReadOptions opts;
  opts.schema = s;
  ASSERT_OK_AND_ASSIGN(TablePtr back, ReadCsv(WriteCsv(*t), opts));
  EXPECT_EQ(back->At(0, 0).AsFloat64(), tricky);
}

TEST(CsvWriteTest, NullTokenUsed) {
  SchemaPtr s = MakeSchema({Field::Attr("a", DataType::kInt64)});
  TablePtr t = MakeTable(s, {{N()}});
  CsvWriteOptions w;
  w.null_token = "NA";
  EXPECT_EQ(WriteCsv(*t, w), "a\nNA\n");
}

}  // namespace
}  // namespace nexus
