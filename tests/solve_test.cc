// Tests for the dense linear solvers: LU factorization, solve, determinant,
// inverse — verified against reconstruction identities on random systems.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "linalg/solve.h"
#include "tests/test_util.h"

namespace nexus {
namespace {

using linalg::DenseMatrix;

DenseMatrix RandomWellConditioned(Rng* rng, int64_t n) {
  DenseMatrix a(n, n);
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < n; ++c) a.Set(r, c, rng->NextDouble(-1, 1));
    a.Set(r, r, a.At(r, r) + static_cast<double>(n));  // diagonal dominance
  }
  return a;
}

TEST(LuTest, SolvesHandComputedSystem) {
  // 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
  DenseMatrix a(2, 2);
  a.Set(0, 0, 2);
  a.Set(0, 1, 1);
  a.Set(1, 0, 1);
  a.Set(1, 1, 3);
  ASSERT_OK_AND_ASSIGN(auto x, linalg::SolveLinearSystem(a, {5.0, 10.0}));
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LuTest, RequiresSquare) {
  EXPECT_FALSE(linalg::LuFactor(DenseMatrix(2, 3)).ok());
}

TEST(LuTest, DetectsSingular) {
  DenseMatrix a(2, 2);
  a.Set(0, 0, 1);
  a.Set(0, 1, 2);
  a.Set(1, 0, 2);
  a.Set(1, 1, 4);  // rank 1
  EXPECT_FALSE(linalg::LuFactor(a).ok());
  EXPECT_FALSE(linalg::LuFactor(DenseMatrix(3, 3)).ok());  // all-zero
}

TEST(LuTest, PivotingHandlesZeroDiagonal) {
  // Leading zero forces a row swap.
  DenseMatrix a(2, 2);
  a.Set(0, 0, 0);
  a.Set(0, 1, 1);
  a.Set(1, 0, 1);
  a.Set(1, 1, 0);
  ASSERT_OK_AND_ASSIGN(auto x, linalg::SolveLinearSystem(a, {3.0, 7.0}));
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  ASSERT_OK_AND_ASSIGN(auto lu, linalg::LuFactor(a));
  EXPECT_NEAR(lu.Determinant(), -1.0, 1e-12);  // swap flips the sign
}

TEST(LuTest, DeterminantOfDiagonal) {
  DenseMatrix a(3, 3);
  a.Set(0, 0, 2);
  a.Set(1, 1, 3);
  a.Set(2, 2, 4);
  ASSERT_OK_AND_ASSIGN(auto lu, linalg::LuFactor(a));
  EXPECT_NEAR(lu.Determinant(), 24.0, 1e-12);
}

class LuPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LuPropertyTest, SolveSatisfiesSystem) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 89 + 7);
  for (int64_t n : {1, 2, 5, 12, 30}) {
    DenseMatrix a = RandomWellConditioned(&rng, n);
    std::vector<double> b(static_cast<size_t>(n));
    for (double& v : b) v = rng.NextDouble(-10, 10);
    ASSERT_OK_AND_ASSIGN(auto x, linalg::SolveLinearSystem(a, b));
    ASSERT_OK_AND_ASSIGN(auto ax, linalg::MatVec(a, x));
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_NEAR(ax[static_cast<size_t>(i)], b[static_cast<size_t>(i)], 1e-9)
          << "n=" << n;
    }
  }
}

TEST_P(LuPropertyTest, InverseReconstructsIdentity) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 97 + 11);
  for (int64_t n : {2, 6, 15}) {
    DenseMatrix a = RandomWellConditioned(&rng, n);
    ASSERT_OK_AND_ASSIGN(DenseMatrix inv, linalg::Invert(a));
    ASSERT_OK_AND_ASSIGN(DenseMatrix prod, linalg::MatMulNaive(a, inv));
    for (int64_t r = 0; r < n; ++r) {
      for (int64_t c = 0; c < n; ++c) {
        EXPECT_NEAR(prod.At(r, c), r == c ? 1.0 : 0.0, 1e-9);
      }
    }
  }
}

TEST_P(LuPropertyTest, DeterminantMatchesProductRule) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 53 + 29);
  DenseMatrix a = RandomWellConditioned(&rng, 8);
  DenseMatrix b = RandomWellConditioned(&rng, 8);
  ASSERT_OK_AND_ASSIGN(auto la, linalg::LuFactor(a));
  ASSERT_OK_AND_ASSIGN(auto lb, linalg::LuFactor(b));
  ASSERT_OK_AND_ASSIGN(DenseMatrix ab, linalg::MatMulNaive(a, b));
  ASSERT_OK_AND_ASSIGN(auto lab, linalg::LuFactor(ab));
  double expected = la.Determinant() * lb.Determinant();
  EXPECT_NEAR(lab.Determinant() / expected, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LuPropertyTest, ::testing::Range(0, 5));

}  // namespace
}  // namespace nexus
