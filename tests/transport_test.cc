// Unit tests for the metered transport and cluster plumbing — the
// measurement instrument behind E4/E5/E6 must itself be exact.
#include <gtest/gtest.h>

#include "federation/cluster.h"
#include "tests/test_util.h"

namespace nexus {
namespace {

TEST(TransportTest, CountsMessagesAndBytes) {
  Transport t;
  t.Send("client", "a", 100, MessageKind::kPlan);
  t.Send("a", "b", 1000, MessageKind::kData);
  t.Send("b", "client", 50, MessageKind::kData);
  EXPECT_EQ(t.total_messages(), 3);
  EXPECT_EQ(t.total_bytes(), 1150);
  EXPECT_EQ(t.messages_of(MessageKind::kPlan), 1);
  EXPECT_EQ(t.messages_of(MessageKind::kData), 2);
  EXPECT_EQ(t.bytes_of(MessageKind::kPlan), 100);
  EXPECT_EQ(t.bytes_of(MessageKind::kData), 1050);
}

TEST(TransportTest, ThroughNodeAccounting) {
  Transport t;
  t.Send("client", "a", 100, MessageKind::kPlan);
  t.Send("a", "b", 1000, MessageKind::kData);  // never touches the client
  t.Send("b", "client", 50, MessageKind::kData);
  EXPECT_EQ(t.bytes_through("client"), 150);
  EXPECT_EQ(t.bytes_through("a"), 1100);
  EXPECT_EQ(t.bytes_through("b"), 1050);
  EXPECT_EQ(t.messages_through("client"), 2);
}

TEST(TransportTest, SimulatedTimeIsLatencyPlusBandwidth) {
  TransportOptions opts;
  opts.latency_seconds = 0.010;
  opts.bandwidth_bytes_per_second = 1000.0;
  Transport t(opts);
  double s = t.Send("client", "a", 500, MessageKind::kData);
  EXPECT_DOUBLE_EQ(s, 0.010 + 0.5);
  t.Send("a", "client", 1000, MessageKind::kData);
  EXPECT_DOUBLE_EQ(t.simulated_seconds(), 0.010 + 0.5 + 0.010 + 1.0);
}

TEST(TransportTest, PerLinkBreakdownAndReset) {
  Transport t;
  t.Send("client", "a", 10, MessageKind::kPlan);
  t.Send("client", "a", 20, MessageKind::kPlan);
  t.Send("a", "client", 5, MessageKind::kData);
  auto links = t.PerLink();
  EXPECT_EQ((links[{"client", "a"}].messages), 2);
  EXPECT_EQ((links[{"client", "a"}].bytes), 30);
  EXPECT_EQ((links[{"a", "client"}].messages), 1);
  t.Reset();
  EXPECT_EQ(t.total_messages(), 0);
  EXPECT_EQ(t.simulated_seconds(), 0.0);
}

TEST(ClusterTest, ServerRegistrationRules) {
  Cluster c;
  EXPECT_OK(c.AddServer("a", MakeReferenceProvider()));
  EXPECT_FALSE(c.AddServer("a", MakeReferenceProvider()).ok());  // duplicate
  EXPECT_FALSE(c.AddServer("client", MakeReferenceProvider()).ok());
  EXPECT_FALSE(c.AddServer("", MakeReferenceProvider()).ok());
  EXPECT_FALSE(c.AddServer("b", nullptr).ok());
  EXPECT_EQ(c.ServerNames(), (std::vector<std::string>{"a"}));
  EXPECT_NE(c.provider("a"), nullptr);
  EXPECT_EQ(c.provider("zz"), nullptr);
}

TEST(ClusterTest, HoldersReflectCatalogs) {
  Cluster c;
  ASSERT_OK(c.AddServer("a", MakeReferenceProvider()));
  ASSERT_OK(c.AddServer("b", MakeReferenceProvider()));
  SchemaPtr s = testing::MakeSchema({Field::Attr("x", DataType::kInt64)});
  ASSERT_OK(c.PutData("a", "t", Dataset(Table::Empty(s))));
  ASSERT_OK(c.PutData("b", "t", Dataset(Table::Empty(s))));
  ASSERT_OK(c.PutData("b", "u", Dataset(Table::Empty(s))));
  EXPECT_EQ(c.HoldersOf("t"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(c.HoldersOf("u"), (std::vector<std::string>{"b"}));
  EXPECT_TRUE(c.HoldersOf("nope").empty());
  EXPECT_FALSE(c.PutData("zz", "t", Dataset(Table::Empty(s))).ok());
}

TEST(TransportTest, WireFormatNegotiationRequiresBothEndsBinary) {
  Transport t;
  t.SetNodeBinaryCapable("modern", true);
  t.SetNodeBinaryCapable("legacy", false);
  // Both ends binary-capable (the client is never registered and is always
  // capable) -> binary.
  EXPECT_EQ(t.NegotiatedFormat("modern", kClientNode), WireFormat::kBinary);
  EXPECT_EQ(t.NegotiatedFormat(kClientNode, "modern"), WireFormat::kBinary);
  // Unregistered endpoints are assumed capable: absence means "no objection".
  EXPECT_EQ(t.NegotiatedFormat("modern", "never-registered"),
            WireFormat::kBinary);
  // A text-only end drags any pairing down to text.
  EXPECT_EQ(t.NegotiatedFormat("modern", "legacy"), WireFormat::kText);
  EXPECT_EQ(t.NegotiatedFormat("legacy", kClientNode), WireFormat::kText);
  EXPECT_EQ(t.NegotiatedFormat("legacy", "legacy"), WireFormat::kText);
}

TEST(TransportTest, ProcessWideTextPinOverridesNegotiation) {
  Transport t;
  t.SetNodeBinaryCapable("modern", true);
  SetWireFormatOverride(WireFormat::kText);
  EXPECT_EQ(t.NegotiatedFormat("modern", kClientNode), WireFormat::kText);
  ClearWireFormatOverride();
  EXPECT_EQ(t.NegotiatedFormat("modern", kClientNode), WireFormat::kBinary);
}

TEST(ClusterTest, AddServerRegistersBinaryCapability) {
  Cluster c;
  ASSERT_OK(c.AddServer("modern", MakeReferenceProvider()));
  ASSERT_OK(c.AddServer("legacy", MakeReferenceProvider(/*text_only=*/true)));
  EXPECT_EQ(c.transport()->NegotiatedFormat("modern", kClientNode),
            WireFormat::kBinary);
  EXPECT_EQ(c.transport()->NegotiatedFormat("legacy", kClientNode),
            WireFormat::kText);
  EXPECT_EQ(c.transport()->NegotiatedFormat("modern", "legacy"),
            WireFormat::kText);
}


}  // namespace
}  // namespace nexus
