// Fault-model tests: the transport's deterministic fault injection
// (drops, partitions, scripted down windows, latency spikes) and the
// seeded-chaos property the recovery machinery is verified against —
// same seed ⇒ same retry/failover trace.
#include <gtest/gtest.h>

#include "common/random.h"
#include "expr/builder.h"
#include "federation/coordinator.h"
#include "tests/test_util.h"

namespace nexus {
namespace {

using namespace nexus::exprs;  // NOLINT
using testing::F;
using testing::I;
using testing::MakeSchema;

TEST(StatusRetryabilityTest, OnlyTransientCodesAreRetryable) {
  EXPECT_TRUE(IsRetryable(Status::Unavailable("down")));
  EXPECT_TRUE(IsRetryable(Status::Timeout("lost")));
  EXPECT_FALSE(IsRetryable(Status::OK()));
  EXPECT_FALSE(IsRetryable(Status::NotFound("x")));
  EXPECT_FALSE(IsRetryable(Status::PlanError("x")));
  EXPECT_FALSE(IsRetryable(Status::Internal("x")));
  EXPECT_EQ(std::string(StatusCodeToString(StatusCode::kUnavailable)),
            "Unavailable");
  EXPECT_EQ(std::string(StatusCodeToString(StatusCode::kTimeout)), "Timeout");
}

TEST(FaultInjectionTest, TrySendIsSendWhenDisabled) {
  Transport plain, faulty;
  faulty.SetFaultOptions(FaultOptions{});  // enabled = false
  double s1 = plain.Send("client", "a", 1000, MessageKind::kData);
  double s2 = 0.0;
  ASSERT_OK(faulty.TrySend("client", "a", 1000, MessageKind::kData, &s2));
  EXPECT_DOUBLE_EQ(s1, s2);
  EXPECT_EQ(plain.total_bytes(), faulty.total_bytes());
  EXPECT_EQ(plain.total_messages(), faulty.total_messages());
  EXPECT_DOUBLE_EQ(plain.simulated_seconds(), faulty.simulated_seconds());
  EXPECT_EQ(faulty.faults_injected(), 0);
  EXPECT_EQ(faulty.failed_messages(), 0);
}

TEST(FaultInjectionTest, DropsAreDeterministicPerSeed) {
  auto trace = [](uint64_t seed) {
    Transport t;
    FaultOptions f;
    f.enabled = true;
    f.drop_probability = 0.3;
    f.seed = seed;
    t.SetFaultOptions(f);
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(t.TrySend("client", "a", 100, MessageKind::kData).ok());
    }
    return outcomes;
  };
  std::vector<bool> a = trace(1);
  EXPECT_EQ(a, trace(1));   // same seed, same fault pattern
  EXPECT_NE(a, trace(2));   // different seed, different pattern
  // Roughly 30% of 64 sends should be lost (sanity, not a tight bound).
  int64_t drops = 0;
  for (bool ok : a) drops += !ok;
  EXPECT_GT(drops, 5);
  EXPECT_LT(drops, 40);
}

TEST(FaultInjectionTest, DroppedMessageIsTimeoutAndMeteredAsWaste) {
  Transport t;
  FaultOptions f;
  f.enabled = true;
  f.drop_probability = 1.0;
  t.SetFaultOptions(f);
  Status st = t.TrySend("client", "a", 500, MessageKind::kPlan);
  EXPECT_TRUE(st.IsTimeout());
  EXPECT_TRUE(IsRetryable(st));
  EXPECT_EQ(t.failed_messages(), 1);
  EXPECT_EQ(t.failed_bytes(), 500);
  EXPECT_EQ(t.total_messages(), 1);  // the wasted attempt is in the log
  ASSERT_EQ(t.fault_log().size(), 1u);
  EXPECT_EQ(t.fault_log()[0].what, "drop");
}

TEST(FaultInjectionTest, PartitionedLinkIsUnavailableUntilHealed) {
  Transport t;
  FaultOptions f;
  f.enabled = true;
  f.partitioned_links = {{"a", "b"}};
  t.SetFaultOptions(f);
  EXPECT_TRUE(t.IsPartitioned("a", "b"));
  EXPECT_TRUE(t.IsPartitioned("b", "a"));  // unordered pair
  Status st = t.TrySend("a", "b", 10, MessageKind::kData);
  EXPECT_TRUE(st.IsUnavailable());
  ASSERT_OK(t.TrySend("a", "c", 10, MessageKind::kData));  // other links fine
  t.HealLink("b", "a");
  ASSERT_OK(t.TrySend("a", "b", 10, MessageKind::kData));
  t.PartitionLink("a", "c");
  EXPECT_TRUE(t.TrySend("c", "a", 10, MessageKind::kData).IsUnavailable());
}

TEST(FaultInjectionTest, DownWindowFollowsSimulatedTime) {
  Transport t;
  FaultOptions f;
  f.enabled = true;
  f.down_windows = {{"srv", 0.0, 1.0}};
  t.SetFaultOptions(f);
  EXPECT_TRUE(t.IsDown("srv"));
  Status st = t.TrySend("client", "srv", 10, MessageKind::kPlan);
  EXPECT_TRUE(st.IsUnavailable());
  EXPECT_EQ(t.fault_log().back().what, "down:srv");
  // The failed attempt charged one latency; waiting out the window works.
  t.AdvanceTime(1.5);
  EXPECT_FALSE(t.IsDown("srv"));
  ASSERT_OK(t.TrySend("client", "srv", 10, MessageKind::kPlan));
  // The client endpoint can never be down.
  EXPECT_FALSE(t.IsDown("client"));
}

TEST(FaultInjectionTest, LatencySpikeChargesExtraTime) {
  TransportOptions net;
  net.latency_seconds = 0.001;
  net.bandwidth_bytes_per_second = 1e9;
  Transport t(net);
  FaultOptions f;
  f.enabled = true;
  f.latency_spike_probability = 1.0;
  f.latency_spike_seconds = 0.25;
  t.SetFaultOptions(f);
  double s = 0.0;
  ASSERT_OK(t.TrySend("client", "a", 1000, MessageKind::kData, &s));
  EXPECT_GT(s, 0.25);
  EXPECT_GT(t.simulated_seconds(), 0.25);
  EXPECT_EQ(t.fault_log().back().what, "spike");
  EXPECT_EQ(t.failed_messages(), 0);  // spikes delay, they don't fail
}

TEST(FaultInjectionTest, ResetClearsTraceAndReseeds) {
  Transport t;
  FaultOptions f;
  f.enabled = true;
  f.drop_probability = 0.5;
  f.seed = 9;
  t.SetFaultOptions(f);
  std::vector<bool> first;
  for (int i = 0; i < 32; ++i) {
    first.push_back(t.TrySend("client", "a", 10, MessageKind::kData).ok());
  }
  t.Reset();
  EXPECT_EQ(t.faults_injected(), 0);
  EXPECT_EQ(t.total_messages(), 0);
  std::vector<bool> second;
  for (int i = 0; i < 32; ++i) {
    second.push_back(t.TrySend("client", "a", 10, MessageKind::kData).ok());
  }
  EXPECT_EQ(first, second);  // reseeded: the run replays identically
}

// ---------------------------------------------------------------------------
// Seeded chaos: end-to-end determinism of retries and failover.
// ---------------------------------------------------------------------------

struct ChaosRun {
  std::vector<std::string> fault_trace;
  std::string metrics;
  ExecutionMetrics m;
  bool ok = false;
};

// Builds a two-holder cluster, injects seeded faults, and runs the same
// pipeline query; everything downstream of the seed must be reproducible.
ChaosRun RunChaos(uint64_t fault_seed, uint64_t jitter_seed) {
  Cluster cluster;
  EXPECT_OK(cluster.AddServer("relstore", MakeRelationalProvider()));
  EXPECT_OK(cluster.AddServer("reference", MakeReferenceProvider()));
  Rng rng(11);
  SchemaPtr s = MakeSchema({Field::Attr("k", DataType::kInt64),
                            Field::Attr("v", DataType::kFloat64)});
  TableBuilder b(s);
  for (int64_t i = 0; i < 500; ++i) {
    EXPECT_OK(b.AppendRow({I(rng.NextInt(0, 9)), F(rng.NextDouble(0, 10))}));
  }
  EXPECT_OK(cluster.PutData("relstore", "events",
                            Dataset(b.Finish().ValueOrDie())));
  EXPECT_OK(cluster.Replicate("events", "reference"));

  FaultOptions f;
  f.enabled = true;
  f.drop_probability = 0.3;
  f.latency_spike_probability = 0.1;
  f.seed = fault_seed;
  cluster.transport()->SetFaultOptions(f);

  CoordinatorOptions opts;
  opts.retry.max_attempts = 6;
  opts.retry.jitter_seed = jitter_seed;
  Coordinator coord(&cluster, opts);

  PlanPtr p = Plan::Aggregate(
      Plan::Select(Plan::Scan("events"), Gt(Col("v"), Lit(3.0))), {"k"},
      {AggSpec{AggFunc::kSum, Col("v"), "sv"}});
  ChaosRun out;
  for (int q = 0; q < 4; ++q) {  // several executions share the fault stream
    ExecutionMetrics m;
    auto r = coord.Execute(p, &m);
    out.ok = r.ok();
    if (!r.ok()) break;
    out.m.retries += m.retries;
    out.m.failovers += m.failovers;
    m.wall_seconds = 0.0;  // the only nondeterministic field
    out.metrics += m.ToString() + "\n";
  }
  for (const FaultEvent& e : cluster.transport()->fault_log()) {
    out.fault_trace.push_back(e.ToString());
  }
  return out;
}

TEST(ChaosTest, SameSeedSameRetryAndFailoverTrace) {
  ChaosRun a = RunChaos(/*fault_seed=*/5, /*jitter_seed=*/17);
  ChaosRun b = RunChaos(/*fault_seed=*/5, /*jitter_seed=*/17);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_GT(a.fault_trace.size(), 0u) << "chaos run injected no faults";
  EXPECT_GT(a.m.retries, 0);
  EXPECT_EQ(a.fault_trace, b.fault_trace);
  EXPECT_EQ(a.metrics, b.metrics);
}

TEST(ChaosTest, DifferentSeedDifferentTrace) {
  ChaosRun a = RunChaos(/*fault_seed=*/5, /*jitter_seed=*/17);
  ChaosRun c = RunChaos(/*fault_seed=*/6, /*jitter_seed=*/17);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(c.ok);
  EXPECT_NE(a.fault_trace, c.fault_trace);
}

}  // namespace
}  // namespace nexus
