// Fault-model tests: the transport's deterministic fault injection
// (drops, partitions, scripted down windows, latency spikes) and the
// seeded-chaos property the recovery machinery is verified against —
// same seed ⇒ same retry/failover trace.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/parallel.h"
#include "common/random.h"
#include "common/str_util.h"
#include "exec/spill/spill.h"
#include "expr/builder.h"
#include "federation/coordinator.h"
#include "service/server.h"
#include "tests/test_util.h"

namespace nexus {
namespace {

using namespace nexus::exprs;  // NOLINT
using testing::F;
using testing::I;
using testing::MakeSchema;

TEST(StatusRetryabilityTest, OnlyTransientCodesAreRetryable) {
  EXPECT_TRUE(IsRetryable(Status::Unavailable("down")));
  EXPECT_TRUE(IsRetryable(Status::Timeout("lost")));
  EXPECT_TRUE(IsRetryable(Status::ResourceExhausted("overloaded")));
  EXPECT_FALSE(IsRetryable(Status::Cancelled("client asked")));
  EXPECT_FALSE(IsRetryable(Status::OK()));
  EXPECT_FALSE(IsRetryable(Status::NotFound("x")));
  EXPECT_FALSE(IsRetryable(Status::PlanError("x")));
  EXPECT_FALSE(IsRetryable(Status::Internal("x")));
  EXPECT_EQ(std::string(StatusCodeToString(StatusCode::kUnavailable)),
            "Unavailable");
  EXPECT_EQ(std::string(StatusCodeToString(StatusCode::kTimeout)), "Timeout");
}

TEST(FaultInjectionTest, TrySendIsSendWhenDisabled) {
  Transport plain, faulty;
  faulty.SetFaultOptions(FaultOptions{});  // enabled = false
  double s1 = plain.Send("client", "a", 1000, MessageKind::kData);
  double s2 = 0.0;
  ASSERT_OK(faulty.TrySend("client", "a", 1000, MessageKind::kData, &s2));
  EXPECT_DOUBLE_EQ(s1, s2);
  EXPECT_EQ(plain.total_bytes(), faulty.total_bytes());
  EXPECT_EQ(plain.total_messages(), faulty.total_messages());
  EXPECT_DOUBLE_EQ(plain.simulated_seconds(), faulty.simulated_seconds());
  EXPECT_EQ(faulty.faults_injected(), 0);
  EXPECT_EQ(faulty.failed_messages(), 0);
}

TEST(FaultInjectionTest, DropsAreDeterministicPerSeed) {
  auto trace = [](uint64_t seed) {
    Transport t;
    FaultOptions f;
    f.enabled = true;
    f.drop_probability = 0.3;
    f.seed = seed;
    t.SetFaultOptions(f);
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(t.TrySend("client", "a", 100, MessageKind::kData).ok());
    }
    return outcomes;
  };
  std::vector<bool> a = trace(1);
  EXPECT_EQ(a, trace(1));   // same seed, same fault pattern
  EXPECT_NE(a, trace(2));   // different seed, different pattern
  // Roughly 30% of 64 sends should be lost (sanity, not a tight bound).
  int64_t drops = 0;
  for (bool ok : a) drops += !ok;
  EXPECT_GT(drops, 5);
  EXPECT_LT(drops, 40);
}

TEST(FaultInjectionTest, DroppedMessageIsTimeoutAndMeteredAsWaste) {
  Transport t;
  FaultOptions f;
  f.enabled = true;
  f.drop_probability = 1.0;
  t.SetFaultOptions(f);
  Status st = t.TrySend("client", "a", 500, MessageKind::kPlan);
  EXPECT_TRUE(st.IsTimeout());
  EXPECT_TRUE(IsRetryable(st));
  EXPECT_EQ(t.failed_messages(), 1);
  EXPECT_EQ(t.failed_bytes(), 500);
  EXPECT_EQ(t.total_messages(), 1);  // the wasted attempt is in the log
  ASSERT_EQ(t.fault_log().size(), 1u);
  EXPECT_EQ(t.fault_log()[0].what, "drop");
}

TEST(FaultInjectionTest, PartitionedLinkIsUnavailableUntilHealed) {
  Transport t;
  FaultOptions f;
  f.enabled = true;
  f.partitioned_links = {{"a", "b"}};
  t.SetFaultOptions(f);
  EXPECT_TRUE(t.IsPartitioned("a", "b"));
  EXPECT_TRUE(t.IsPartitioned("b", "a"));  // unordered pair
  Status st = t.TrySend("a", "b", 10, MessageKind::kData);
  EXPECT_TRUE(st.IsUnavailable());
  ASSERT_OK(t.TrySend("a", "c", 10, MessageKind::kData));  // other links fine
  t.HealLink("b", "a");
  ASSERT_OK(t.TrySend("a", "b", 10, MessageKind::kData));
  t.PartitionLink("a", "c");
  EXPECT_TRUE(t.TrySend("c", "a", 10, MessageKind::kData).IsUnavailable());
}

TEST(FaultInjectionTest, DownWindowFollowsSimulatedTime) {
  Transport t;
  FaultOptions f;
  f.enabled = true;
  f.down_windows = {{"srv", 0.0, 1.0}};
  t.SetFaultOptions(f);
  EXPECT_TRUE(t.IsDown("srv"));
  Status st = t.TrySend("client", "srv", 10, MessageKind::kPlan);
  EXPECT_TRUE(st.IsUnavailable());
  EXPECT_EQ(t.fault_log().back().what, "down:srv");
  // The failed attempt charged one latency; waiting out the window works.
  t.AdvanceTime(1.5);
  EXPECT_FALSE(t.IsDown("srv"));
  ASSERT_OK(t.TrySend("client", "srv", 10, MessageKind::kPlan));
  // The client endpoint can never be down.
  EXPECT_FALSE(t.IsDown("client"));
}

TEST(FaultInjectionTest, LatencySpikeChargesExtraTime) {
  TransportOptions net;
  net.latency_seconds = 0.001;
  net.bandwidth_bytes_per_second = 1e9;
  Transport t(net);
  FaultOptions f;
  f.enabled = true;
  f.latency_spike_probability = 1.0;
  f.latency_spike_seconds = 0.25;
  t.SetFaultOptions(f);
  double s = 0.0;
  ASSERT_OK(t.TrySend("client", "a", 1000, MessageKind::kData, &s));
  EXPECT_GT(s, 0.25);
  EXPECT_GT(t.simulated_seconds(), 0.25);
  EXPECT_EQ(t.fault_log().back().what, "spike");
  EXPECT_EQ(t.failed_messages(), 0);  // spikes delay, they don't fail
}

TEST(FaultInjectionTest, ResetClearsTraceAndReseeds) {
  Transport t;
  FaultOptions f;
  f.enabled = true;
  f.drop_probability = 0.5;
  f.seed = 9;
  t.SetFaultOptions(f);
  std::vector<bool> first;
  for (int i = 0; i < 32; ++i) {
    first.push_back(t.TrySend("client", "a", 10, MessageKind::kData).ok());
  }
  t.Reset();
  EXPECT_EQ(t.faults_injected(), 0);
  EXPECT_EQ(t.total_messages(), 0);
  std::vector<bool> second;
  for (int i = 0; i < 32; ++i) {
    second.push_back(t.TrySend("client", "a", 10, MessageKind::kData).ok());
  }
  EXPECT_EQ(first, second);  // reseeded: the run replays identically
}

// ---------------------------------------------------------------------------
// Seeded chaos: end-to-end determinism of retries and failover.
// ---------------------------------------------------------------------------

struct ChaosRun {
  std::vector<std::string> fault_trace;
  std::string metrics;
  ExecutionMetrics m;
  bool ok = false;
};

// Builds a two-holder cluster, injects seeded faults, and runs the same
// pipeline query; everything downstream of the seed must be reproducible.
ChaosRun RunChaos(uint64_t fault_seed, uint64_t jitter_seed) {
  Cluster cluster;
  EXPECT_OK(cluster.AddServer("relstore", MakeRelationalProvider()));
  EXPECT_OK(cluster.AddServer("reference", MakeReferenceProvider()));
  Rng rng(11);
  SchemaPtr s = MakeSchema({Field::Attr("k", DataType::kInt64),
                            Field::Attr("v", DataType::kFloat64)});
  TableBuilder b(s);
  for (int64_t i = 0; i < 500; ++i) {
    EXPECT_OK(b.AppendRow({I(rng.NextInt(0, 9)), F(rng.NextDouble(0, 10))}));
  }
  EXPECT_OK(cluster.PutData("relstore", "events",
                            Dataset(b.Finish().ValueOrDie())));
  EXPECT_OK(cluster.Replicate("events", "reference"));

  FaultOptions f;
  f.enabled = true;
  f.drop_probability = 0.3;
  f.latency_spike_probability = 0.1;
  f.seed = fault_seed;
  cluster.transport()->SetFaultOptions(f);

  CoordinatorOptions opts;
  opts.retry.max_attempts = 6;
  opts.retry.jitter_seed = jitter_seed;
  // The same-seed ⇒ same-trace invariant is promised at sequential dispatch
  // only: concurrent siblings interleave their transport sends, so the fault
  // stream's consumption order depends on scheduling. Pinning thread_count
  // keeps this harness reproducible under any process-wide budget
  // (NEXUS_THREADS, TSan CI).
  opts.thread_count = 1;
  Coordinator coord(&cluster, opts);

  PlanPtr p = Plan::Aggregate(
      Plan::Select(Plan::Scan("events"), Gt(Col("v"), Lit(3.0))), {"k"},
      {AggSpec{AggFunc::kSum, Col("v"), "sv"}});
  ChaosRun out;
  for (int q = 0; q < 4; ++q) {  // several executions share the fault stream
    ExecutionMetrics m;
    auto r = coord.Execute(p, &m);
    out.ok = r.ok();
    if (!r.ok()) break;
    out.m.retries += m.retries;
    out.m.failovers += m.failovers;
    m.wall_seconds = 0.0;  // the only nondeterministic field
    out.metrics += m.ToString() + "\n";
  }
  for (const FaultEvent& e : cluster.transport()->fault_log()) {
    out.fault_trace.push_back(e.ToString());
  }
  return out;
}

TEST(ChaosTest, SameSeedSameRetryAndFailoverTrace) {
  ChaosRun a = RunChaos(/*fault_seed=*/5, /*jitter_seed=*/17);
  ChaosRun b = RunChaos(/*fault_seed=*/5, /*jitter_seed=*/17);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_GT(a.fault_trace.size(), 0u) << "chaos run injected no faults";
  EXPECT_GT(a.m.retries, 0);
  EXPECT_EQ(a.fault_trace, b.fault_trace);
  EXPECT_EQ(a.metrics, b.metrics);
}

TEST(ChaosTest, DifferentSeedDifferentTrace) {
  ChaosRun a = RunChaos(/*fault_seed=*/5, /*jitter_seed=*/17);
  ChaosRun c = RunChaos(/*fault_seed=*/6, /*jitter_seed=*/17);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(c.ok);
  EXPECT_NE(a.fault_trace, c.fault_trace);
}

TEST(ChaosTest, TraceInvariantHoldsUnderAnyProcessBudget) {
  // RunChaos pins CoordinatorOptions::thread_count = 1, which must shield
  // the trace from the process-wide budget (e.g. NEXUS_THREADS=4 in CI).
  struct Guard {
    int saved = GetThreadCount();
    ~Guard() { SetThreadCount(saved); }
  } guard;
  SetThreadCount(1);
  ChaosRun a = RunChaos(/*fault_seed=*/5, /*jitter_seed=*/17);
  SetThreadCount(4);
  ChaosRun b = RunChaos(/*fault_seed=*/5, /*jitter_seed=*/17);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.fault_trace, b.fault_trace);
  EXPECT_EQ(a.metrics, b.metrics);
}

// ---------------------------------------------------------------------------
// Concurrent sibling-fragment dispatch under faults: the retry ladder and
// failover replanning must hold when fragments execute in parallel.
// ---------------------------------------------------------------------------

// Two matrix holders plus a linalg specialist: MatMul lands on linalg and
// both scan children become remote sibling fragments, so they dispatch
// concurrently when the thread budget allows.
void FillMatMulCluster(Cluster* cluster, bool with_replicas) {
  EXPECT_OK(cluster->AddServer("relstore", MakeRelationalProvider()));
  EXPECT_OK(cluster->AddServer("relsmall", MakeRelationalProvider()));
  EXPECT_OK(cluster->AddServer("linalg", MakeLinalgProvider()));
  EXPECT_OK(cluster->AddServer("reference", MakeReferenceProvider()));
  auto matrix = [](uint64_t seed, const char* d0, const char* d1,
                   const char* attr) {
    Rng rng(seed);
    SchemaPtr s = MakeSchema({Field::Dim(d0), Field::Dim(d1),
                              Field::Attr(attr, DataType::kFloat64)});
    TableBuilder b(s);
    for (int64_t r = 0; r < 12; ++r) {
      for (int64_t c = 0; c < 12; ++c) {
        EXPECT_OK(b.AppendRow({I(r), I(c), F(rng.NextDouble(0.1, 1.0))}));
      }
    }
    return Dataset(b.Finish().ValueOrDie());
  };
  EXPECT_OK(cluster->PutData("relstore", "MA", matrix(31, "i", "k", "a")));
  EXPECT_OK(cluster->PutData("relsmall", "MB", matrix(32, "k", "j", "b")));
  if (with_replicas) {
    EXPECT_OK(cluster->Replicate("MA", "reference"));
    EXPECT_OK(cluster->Replicate("MB", "reference"));
  }
}

TEST(ParallelDispatchTest, ConcurrentSiblingsHonorRetryPolicy) {
  PlanPtr mm = Plan::MatMul(Plan::Scan("MA"), Plan::Scan("MB"), "c");

  // Fault-free sequential baseline.
  Cluster clean;
  FillMatMulCluster(&clean, /*with_replicas=*/false);
  CoordinatorOptions seq;
  seq.thread_count = 1;
  Dataset want = Coordinator(&clean, seq).Execute(mm).ValueOrDie();

  // Lossy transport, concurrent dispatch: completion via retries, and the
  // result must not change.
  Cluster faulty;
  FillMatMulCluster(&faulty, /*with_replicas=*/false);
  FaultOptions f;
  f.enabled = true;
  f.drop_probability = 0.25;
  f.seed = 7;
  faulty.transport()->SetFaultOptions(f);
  CoordinatorOptions par;
  par.retry.max_attempts = 8;
  par.thread_count = 4;
  Coordinator coord(&faulty, par);
  // Several executions share the fault stream; every one must complete and
  // agree with the clean baseline.
  int64_t retries = 0, parallel_fragments = 0;
  for (int q = 0; q < 4; ++q) {
    ExecutionMetrics m;
    Dataset got = coord.Execute(mm, &m).ValueOrDie();
    EXPECT_TRUE(got.LogicallyEquals(want)) << "query " << q;
    EXPECT_EQ(m.threads_used, 4);
    retries += m.retries;
    parallel_fragments += m.parallel_fragments;
  }
  EXPECT_GE(parallel_fragments, 2) << "siblings did not dispatch concurrently";
  EXPECT_GT(retries, 0) << "the lossy transport injected no retries";
}

TEST(ParallelDispatchTest, ConcurrentDispatchFailsOverDownServer) {
  PlanPtr mm = Plan::MatMul(Plan::Scan("MA"), Plan::Scan("MB"), "c");

  Cluster clean;
  FillMatMulCluster(&clean, /*with_replicas=*/true);
  CoordinatorOptions seq;
  seq.thread_count = 1;
  Dataset want = Coordinator(&clean, seq).Execute(mm).ValueOrDie();

  // relstore stays down long past the retry ladder; the replica on the
  // reference server is the only way through.
  Cluster faulty;
  FillMatMulCluster(&faulty, /*with_replicas=*/true);
  FaultOptions f;
  f.enabled = true;
  f.down_windows = {{"relstore", 0.0, 1000.0}};
  faulty.transport()->SetFaultOptions(f);
  CoordinatorOptions par;
  par.retry.max_attempts = 3;
  par.thread_count = 4;
  Coordinator coord(&faulty, par);
  ExecutionMetrics m;
  Dataset got = coord.Execute(mm, &m).ValueOrDie();
  EXPECT_TRUE(got.LogicallyEquals(want));
  EXPECT_GE(m.failovers, 1) << "the down server was never excluded";
  EXPECT_GE(m.replans, 1);
}

bool AnyTempLeft(Cluster* cluster) {
  for (const std::string& s : cluster->ServerNames()) {
    for (const std::string& name : cluster->provider(s)->catalog()->Names()) {
      if (name.rfind("__frag_", 0) == 0 || name.rfind("__svc_", 0) == 0) {
        return true;
      }
    }
  }
  return false;
}

TEST(ConcurrentCoordinatorTest, ManyCoordinatorsOneSharedCatalog) {
  // Thread-safety soak: several client threads, each with its own
  // Coordinator in its own temp namespace, hammer one shared cluster (one
  // transport, one set of InMemoryCatalogs). Every execution must agree
  // with the sequential baseline and no temp may leak — under TSan in CI
  // this is also the data-race check for the shared-transport locking.
  PlanPtr mm = Plan::MatMul(Plan::Scan("MA"), Plan::Scan("MB"), "c");
  Cluster shared;
  FillMatMulCluster(&shared, /*with_replicas=*/false);
  CoordinatorOptions seq;
  seq.thread_count = 1;
  Dataset want = Coordinator(&shared, seq).Execute(mm).ValueOrDie();

  constexpr int kClients = 6;
  constexpr int kQueriesEach = 4;
  std::atomic<int> disagreements{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      CoordinatorOptions o;
      o.thread_count = 1;  // concurrency comes from the client threads
      o.temp_namespace = StrCat("w", i);
      Coordinator coordinator(&shared, o);
      for (int q = 0; q < kQueriesEach; ++q) {
        auto r = coordinator.Execute(mm);
        if (!r.ok()) {
          failures.fetch_add(1);
        } else if (!r.ValueOrDie().LogicallyEquals(want)) {
          disagreements.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(disagreements.load(), 0);
  EXPECT_FALSE(AnyTempLeft(&shared));
}

TEST(ServiceFaultTest, CancelledWhileQueuedReleasesStagedTemps) {
  // Regression: a query admitted to the service queue — its bindings
  // already staged server-side — then cancelled before it ever executed
  // must release those temps. (The window used to be unguarded: cleanup
  // only ran on the execution path.)
  Cluster cluster;
  FillMatMulCluster(&cluster, /*with_replicas=*/false);
  service::ServerOptions options;
  options.max_concurrent = 1;
  options.queue_capacity = 2;
  service::Server server(&cluster, options);
  ASSERT_OK(server.RegisterTenant("held", service::TenantOptions{100, 1}));
  ASSERT_OK_AND_ASSIGN(int64_t session, server.OpenSession("held"));
  // Pin the tenant over budget so its query waits, ineligible, in queue.
  ASSERT_OK_AND_ASSIGN(auto pin, server.governor().StartQuery("held", nullptr));
  pin->Charge(1000);

  Rng rng(5);
  SchemaPtr s = MakeSchema({Field::Attr("x", DataType::kInt64),
                            Field::Attr("y", DataType::kFloat64)});
  TableBuilder b(s);
  for (int64_t i = 0; i < 64; ++i) {
    ASSERT_OK(b.AppendRow({I(i), F(rng.NextDouble(0, 1))}));
  }
  std::vector<std::pair<std::string, Dataset>> bindings;
  bindings.emplace_back("staged", Dataset(b.Finish().ValueOrDie()));
  ASSERT_OK_AND_ASSIGN(
      int64_t query,
      server.Submit(session, Plan::Scan("staged"), {}, std::move(bindings)));
  for (int i = 0; i < 20000 && server.admission().queued_now() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server.admission().queued_now(), 1);
  EXPECT_TRUE(AnyTempLeft(&cluster));  // the staged binding is live

  ASSERT_OK(server.Cancel(query));
  Status st = server.Wait(query).status();
  EXPECT_TRUE(st.IsCancelled());
  EXPECT_FALSE(AnyTempLeft(&cluster)) << "queued-cancel leaked staged temps";
  server.governor().FinishQuery(pin.get());
}

TEST(ServiceFaultTest, SpillScratchIsReapedOnEveryUnwindPath) {
  // Leak regression for out-of-core execution: scratch files are RAII
  // handles, so every unwind path — clean completion, deadline timeout,
  // budget kill, client cancel, retry/failover storms, and server
  // shutdown with queries still in flight — must leave zero live spill
  // files behind.
  struct Guard {
    ~Guard() {
      spill::ClearSpillOverride();
      spill::ClearSpillBudgetOverride();
    }
  } guard;
  spill::SetSpillOverride(true);
  spill::SetSpillBudgetOverride(1);  // every join/aggregate goes out of core
  auto& manager = spill::SpillManager::Global();
  const int64_t created_before = manager.files_created();

  Cluster cluster;
  ASSERT_OK(cluster.AddServer("relstore", MakeRelationalProvider()));
  Rng rng(11);
  SchemaPtr s = MakeSchema({Field::Attr("k", DataType::kInt64),
                            Field::Attr("v", DataType::kFloat64)});
  TableBuilder b(s);
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_OK(b.AppendRow({I(rng.NextInt(0, 9)), F(rng.NextDouble(0, 10))}));
  }
  ASSERT_OK(cluster.PutData("relstore", "events",
                            Dataset(b.Finish().ValueOrDie())));
  PlanPtr plan = Plan::Aggregate(
      Plan::Select(Plan::Scan("events"), Gt(Col("v"), Lit(3.0))), {"k"},
      {AggSpec{AggFunc::kSum, Col("v"), "sv"}});

  {
    service::Server server(&cluster);
    ASSERT_OK(server.RegisterTenant("acme", service::TenantOptions{}));
    ASSERT_OK(server.RegisterTenant("hog", service::TenantOptions{1, 1}));
    ASSERT_OK_AND_ASSIGN(int64_t session, server.OpenSession("acme"));
    ASSERT_OK_AND_ASSIGN(int64_t hog_session, server.OpenSession("hog"));

    // Clean completion: the query really spilled, and reaped its scratch.
    ASSERT_OK(server.Execute(session, plan).status());
    EXPECT_GT(manager.files_created(), created_before);
    EXPECT_EQ(manager.live_files(), 0);

    // Deadline exceeded mid-flight (deterministic under simulated time).
    service::QueryOptions dl;
    dl.deadline_seconds = 1e-4;
    EXPECT_TRUE(server.Execute(session, plan, dl).status().IsTimeout());
    EXPECT_EQ(manager.live_files(), 0);

    // Budget kill: even spilling can't fit a 1-byte tenant, so the query
    // unwinds through the kResourceExhausted path mid-spill.
    Status killed = server.Execute(hog_session, plan).status();
    EXPECT_TRUE(killed.IsResourceExhausted()) << killed;
    EXPECT_EQ(manager.live_files(), 0);

    // Client cancel racing the run: whichever side wins, nothing leaks.
    ASSERT_OK_AND_ASSIGN(int64_t q, server.Submit(session, plan));
    (void)server.Cancel(q);
    (void)server.Wait(q);
    EXPECT_EQ(manager.live_files(), 0);

    // Leave a query in flight for the shutdown path below.
    ASSERT_OK_AND_ASSIGN(int64_t in_flight, server.Submit(session, plan));
    (void)in_flight;
  }
  // ~Server cancelled and joined the in-flight query, then swept scratch.
  EXPECT_EQ(manager.live_files(), 0);
  EXPECT_EQ(manager.live_bytes(), 0);

  // Retry/failover storms under injected faults reap scratch too.
  ChaosRun chaos = RunChaos(/*fault_seed=*/7, /*jitter_seed=*/9);
  (void)chaos;
  EXPECT_EQ(manager.live_files(), 0);
}

}  // namespace
}  // namespace nexus
