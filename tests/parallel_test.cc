// Unit tests for the shared morsel scheduler (common/parallel.h): coverage,
// determinism of the decomposition, sequential fallback, nesting, and the
// engine-level byte-identity the determinism contract promises.
#include "common/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "common/random.h"
#include "expr/builder.h"
#include "linalg/dense.h"
#include "relational/engine.h"
#include "tests/test_util.h"

namespace nexus {
namespace {

using namespace nexus::exprs;  // NOLINT
using testing::F;
using testing::I;
using testing::MakeSchema;

// Restores the process-wide budget however the test exits.
struct ThreadCountGuard {
  ThreadCountGuard() : saved(GetThreadCount()) {}
  ~ThreadCountGuard() { SetThreadCount(saved); }
  int saved;
};

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  for (int threads : {1, 2, 4, 8}) {
    SetThreadCount(threads);
    const int64_t n = 100001;
    std::vector<int> hits(static_cast<size_t>(n), 0);
    ParallelFor(n, 1000, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) ++hits[static_cast<size_t>(i)];
    });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0LL), n)
        << "threads=" << threads;
    EXPECT_EQ(*std::min_element(hits.begin(), hits.end()), 1);
    EXPECT_EQ(*std::max_element(hits.begin(), hits.end()), 1);
  }
}

TEST(ParallelForTest, SequentialBudgetRunsInlineAsOneRange) {
  ThreadCountGuard guard;
  SetThreadCount(1);
  std::atomic<int> calls{0};
  int64_t seen_begin = -1, seen_end = -1;
  ParallelFor(100000, 1000, [&](int64_t begin, int64_t end) {
    ++calls;
    seen_begin = begin;
    seen_end = end;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen_begin, 0);
  EXPECT_EQ(seen_end, 100000);
}

TEST(ParallelForTest, MorselBoundariesIgnoreThreadCount) {
  ThreadCountGuard guard;
  // Slot-indexed writes (slot = begin / grain) must land identically at any
  // budget — this is what every engine's merge step leans on.
  const int64_t n = 10000, grain = 256;
  auto run = [&](int threads) {
    SetThreadCount(threads);
    std::vector<std::pair<int64_t, int64_t>> slots(
        static_cast<size_t>((n + grain - 1) / grain), {-1, -1});
    ParallelFor(n, grain, [&](int64_t begin, int64_t end) {
      slots[static_cast<size_t>(begin / grain)] = {begin, end};
    });
    return slots;
  };
  auto want = run(2);
  for (int threads : {3, 4, 8}) {
    EXPECT_EQ(run(threads), want) << "threads=" << threads;
  }
}

TEST(ParallelForTest, EmptyAndTinyJobs) {
  ThreadCountGuard guard;
  SetThreadCount(4);
  std::atomic<int64_t> sum{0};
  ParallelFor(0, 100, [&](int64_t begin, int64_t end) { sum += end - begin; });
  EXPECT_EQ(sum.load(), 0);
  ParallelFor(3, 100, [&](int64_t begin, int64_t end) { sum += end - begin; });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ParallelRunTest, RunsEveryTaskOnce) {
  ThreadCountGuard guard;
  for (int threads : {1, 4}) {
    SetThreadCount(threads);
    std::vector<std::atomic<int>> ran(17);
    std::vector<std::function<void()>> tasks;
    for (size_t i = 0; i < ran.size(); ++i) {
      tasks.push_back([&ran, i] { ++ran[i]; });
    }
    ParallelRun(tasks);
    for (size_t i = 0; i < ran.size(); ++i) {
      EXPECT_EQ(ran[i].load(), 1) << "task " << i << " threads=" << threads;
    }
  }
}

TEST(ParallelRunTest, SequentialBudgetPreservesIndexOrder) {
  ThreadCountGuard guard;
  SetThreadCount(1);
  std::vector<int> order;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 8; ++i) tasks.push_back([&order, i] { order.push_back(i); });
  ParallelRun(tasks);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(ParallelForTest, NestedRegionsDoNotDeadlock) {
  ThreadCountGuard guard;
  SetThreadCount(4);
  std::atomic<int64_t> total{0};
  ParallelFor(8, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      ParallelFor(1000, 100,
                  [&](int64_t b, int64_t e) { total += e - b; });
    }
  });
  EXPECT_EQ(total.load(), 8 * 1000);
}

TEST(ThreadCountTest, SetGetRoundTripAndClamping) {
  ThreadCountGuard guard;
  SetThreadCount(3);
  EXPECT_EQ(GetThreadCount(), 3);
  SetThreadCount(kMaxThreads + 100);
  EXPECT_EQ(GetThreadCount(), kMaxThreads);
  // 0 resets to the process default: NEXUS_THREADS when set, else the
  // hardware count — either way it's in [1, kMaxThreads].
  SetThreadCount(0);
  EXPECT_GE(GetThreadCount(), 1);
  EXPECT_LE(GetThreadCount(), kMaxThreads);
  if (std::getenv("NEXUS_THREADS") == nullptr) {
    EXPECT_EQ(GetThreadCount(), HardwareThreads());
  }
  EXPECT_GE(HardwareThreads(), 1);
  EXPECT_LE(HardwareThreads(), kMaxThreads);
}

TEST(ThreadCountTest, StatsCountMorselsAndRegions) {
  ThreadCountGuard guard;
  SetThreadCount(4);
  ParallelStats before = GetParallelStats();
  ParallelFor(10 * kMorselRows, kMorselRows, [](int64_t, int64_t) {});
  ParallelStats after = GetParallelStats();
  EXPECT_GE(after.morsels - before.morsels, 10);
}

// ---------------------------------------------------------------------------
// Engine-level byte-identity: the determinism contract applied to the two
// kernels with the trickiest merges (join pair order, aggregate group order).
// ---------------------------------------------------------------------------

TablePtr RandomFacts(int64_t rows, uint64_t seed) {
  Rng rng(seed);
  SchemaPtr s = MakeSchema({Field::Attr("k", DataType::kInt64),
                            Field::Attr("v", DataType::kFloat64)});
  TableBuilder b(s);
  for (int64_t i = 0; i < rows; ++i) {
    EXPECT_OK(b.AppendRow(
        {I(rng.NextInt(0, rows / 64 + 1)), F(rng.NextDouble(0, 100))}));
  }
  return b.Finish().ValueOrDie();
}

TEST(EngineParallelTest, HashJoinByteIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  TablePtr probe = RandomFacts(40000, 21);
  TablePtr build =
      relational::Rename(RandomFacts(5000, 22), {{"k", "bk"}, {"v", "bv"}})
          .ValueOrDie();
  JoinOp op;
  op.left_keys = {"k"};
  op.right_keys = {"bk"};
  SetThreadCount(1);
  TablePtr want = relational::HashJoin(probe, build, op).ValueOrDie();
  for (int threads : {2, 4, 8}) {
    SetThreadCount(threads);
    TablePtr got = relational::HashJoin(probe, build, op).ValueOrDie();
    EXPECT_TRUE(got->Equals(*want)) << "threads=" << threads;
  }
}

TEST(EngineParallelTest, HashAggregateByteIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  TablePtr t = RandomFacts(120000, 23);
  AggregateOp op;
  op.group_by = {"k"};
  op.aggs = {AggSpec{AggFunc::kSum, Col("v"), "sv"},
             AggSpec{AggFunc::kMin, Col("v"), "mn"},
             AggSpec{AggFunc::kCount, nullptr, "n"}};
  SetThreadCount(1);
  TablePtr want = relational::HashAggregate(t, op).ValueOrDie();
  for (int threads : {2, 4, 8}) {
    SetThreadCount(threads);
    TablePtr got = relational::HashAggregate(t, op).ValueOrDie();
    EXPECT_TRUE(got->Equals(*want)) << "threads=" << threads;
  }
}

TEST(EngineParallelTest, MatMulBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  Rng rng(29);
  const int64_t n = 96;
  linalg::DenseMatrix a(n, n), b(n, n);
  for (double& v : a.data()) v = rng.NextDouble(-1, 1);
  for (double& v : b.data()) v = rng.NextDouble(-1, 1);
  SetThreadCount(1);
  linalg::DenseMatrix want = linalg::MatMulBlocked(a, b, 32).ValueOrDie();
  for (int threads : {2, 4, 8}) {
    SetThreadCount(threads);
    linalg::DenseMatrix got = linalg::MatMulBlocked(a, b, 32).ValueOrDie();
    EXPECT_EQ(got.data(), want.data()) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace nexus
