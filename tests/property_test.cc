// Property tests over randomly generated plans: the heavy invariants of the
// framework, checked on hundreds of machine-built pipelines rather than
// hand-picked cases.
//
//   P1  wire round trip:       Parse(Serialize(p)) ≡ p  (structural)
//   P2  optimizer equivalence: Exec(Optimize(p)) ≡ Exec(p)  (schema + value)
//   P3  provider agreement:    every claiming provider ≡ reference
//   P4  federation agreement:  coordinator over a split cluster ≡ local
//   P5  parallel determinism:  Exec at threads ∈ {2,4,8} byte-identical to
//                              threads = 1 (morsel scheduler contract)
//   P6  cost-model soundness:  Optimize under arbitrary (even forged)
//                              statistics ≡ Exec(p) — stats steer join
//                              order, never results
//   P7  compile equivalence:   bytecode VM ≡ vectorized interpreter ≡ row
//                              interpreter on random expressions (nulls,
//                              3VL, conditionals, strings), byte-identical
//   P8  algebra equivalence:   random associative-array programs on the
//                              semi-ring kernels ≡ direct scalar folds, for
//                              every registered ring, at 1 and 4 threads
//   P9  out-of-core identity:  join / aggregate / semi-ring reduce with
//                              spilling forced under randomized budgets
//                              (including ones forcing recursive
//                              repartition) ≡ the in-memory result,
//                              byte-identical at 1 and 4 threads
//   P10 incremental identity:  registered views refreshed over random
//                              append batches ≡ full recompute of the same
//                              plan, byte-identical at 1 and 4 threads —
//                              including plans the delta rewrite refuses
//                              (refuse-and-fallback must also be identical)
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "algebra/kernels.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/str_util.h"
#include "core/schema_inference.h"
#include "core/serialize.h"
#include "exec/incremental/view.h"
#include "exec/reference_executor.h"
#include "exec/spill/spill.h"
#include "expr/builder.h"
#include "expr/bytecode.h"
#include "expr/eval.h"
#include "federation/coordinator.h"
#include "optimizer/optimizer.h"
#include "relational/engine.h"
#include "tests/test_util.h"

namespace nexus {
namespace {

using namespace nexus::exprs;  // NOLINT
using testing::F;
using testing::I;
using testing::MakeSchema;
using testing::MakeTable;
using testing::S;

// ---------------------------------------------------------------------------
// Random workload + plan generation.
// ---------------------------------------------------------------------------

TablePtr RandomBaseTable(Rng* rng, int64_t rows) {
  SchemaPtr s = MakeSchema({Field::Attr("k", DataType::kInt64),
                            Field::Attr("g", DataType::kInt64),
                            Field::Attr("v", DataType::kFloat64),
                            Field::Attr("tag", DataType::kString)});
  TableBuilder b(s);
  for (int64_t i = 0; i < rows; ++i) {
    // Integer-valued floats keep sums order-independent (exact comparison).
    EXPECT_OK(b.AppendRow(
        {I(rng->NextInt(0, 12)), I(rng->NextInt(0, 4)),
         F(static_cast<double>(rng->NextInt(-20, 20))),
         S(std::string(1, static_cast<char>('a' + rng->NextBounded(3))))}));
  }
  return b.Finish().ValueOrDie();
}

TablePtr RandomGridTable(Rng* rng, int64_t extent) {
  SchemaPtr s = MakeSchema({Field::Dim("x"), Field::Dim("y"),
                            Field::Attr("v", DataType::kFloat64)});
  TableBuilder b(s);
  for (int64_t x = 0; x < extent; ++x) {
    for (int64_t y = 0; y < extent; ++y) {
      if (rng->NextBool(0.3)) continue;
      EXPECT_OK(b.AppendRow(
          {I(x), I(y), F(static_cast<double>(rng->NextInt(-9, 9)))}));
    }
  }
  return b.Finish().ValueOrDie();
}

// Random scalar boolean predicate over {k, g, v}.
ExprPtr RandomPredicate(Rng* rng) {
  switch (rng->NextBounded(5)) {
    case 0:
      return Gt(Col("v"), Lit(static_cast<double>(rng->NextInt(-10, 10))));
    case 1:
      return Eq(Col("g"), Lit(rng->NextInt(0, 4)));
    case 2:
      return And(Ge(Col("k"), Lit(rng->NextInt(0, 6))),
                 Lt(Col("v"), Lit(static_cast<double>(rng->NextInt(0, 20)))));
    case 3:
      return Or(Eq(Col("tag"), Lit("a")), Gt(Col("v"), Lit(0.0)));
    default:
      return Ne(Mod(Col("k"), Lit(3)), Lit(0));
  }
}

// Builds a random relational pipeline over table "base" (+ join "side").
// The generator only produces well-typed stages, tracked via a live schema.
PlanPtr RandomRelationalPlan(Rng* rng, const Catalog& catalog, int steps) {
  PlanPtr p = Plan::Scan("base");
  int extend_id = 0;
  for (int s = 0; s < steps; ++s) {
    SchemaPtr schema = InferSchema(*p, catalog).ValueOrDie();
    bool has_v = schema->FindField("v") >= 0;
    bool has_k = schema->FindField("k") >= 0;
    switch (rng->NextBounded(7)) {
      case 0:
        if (has_v && has_k && schema->FindField("g") >= 0 &&
            schema->FindField("tag") >= 0) {
          p = Plan::Select(p, RandomPredicate(rng));
        }
        break;
      case 1:
        if (has_v) {
          p = Plan::Extend(
              p, {{StrCat("e", extend_id++), Add(Col("v"), Lit(1.0))}});
        }
        break;
      case 2: {
        SortKey key{schema->field(static_cast<int>(
                                      rng->NextBounded(static_cast<uint64_t>(
                                          schema->num_fields()))))
                        .name,
                    rng->NextBool()};
        p = Plan::Sort(p, {key});
        break;
      }
      case 3:
        p = Plan::Distinct(p);
        break;
      case 4:
        if (has_k && has_v && rng->NextBool(0.5)) {
          p = Plan::Aggregate(p, {"k"},
                              {AggSpec{AggFunc::kSum, Col("v"), StrCat("s", s)},
                               AggSpec{AggFunc::kCount, nullptr, StrCat("n", s)}});
        }
        break;
      case 5:
        // Joining "side" twice would duplicate its sv column.
        if (has_k && schema->FindField("sv") < 0 && rng->NextBool(0.5)) {
          p = Plan::Join(p, Plan::Scan("side"), JoinType::kInner, {"k"},
                         {"sk"});
        }
        break;
      default:
        p = Plan::Limit(p, rng->NextInt(5, 50), rng->NextInt(0, 3));
        break;
    }
  }
  return p;
}

// Random dimension-aware pipeline over "grid".
PlanPtr RandomArrayPlan(Rng* rng, int steps) {
  PlanPtr p = Plan::Scan("grid");
  for (int s = 0; s < steps; ++s) {
    switch (rng->NextBounded(5)) {
      case 0:
        p = Plan::Slice(p, {{"x", rng->NextInt(-2, 3), rng->NextInt(6, 12)}});
        break;
      case 1:
        p = Plan::Shift(p, {{"x", rng->NextInt(-4, 4)}, {"y", rng->NextInt(-4, 4)}});
        break;
      case 2:
        p = Plan::Regrid(p, {{"x", rng->NextInt(1, 3)}, {"y", rng->NextInt(1, 3)}},
                         rng->NextBool() ? AggFunc::kSum : AggFunc::kMax);
        break;
      case 3:
        p = Plan::Transpose(p, {"y", "x"});
        break;
      default:
        p = Plan::Select(p, Gt(Col("v"), Lit(static_cast<double>(rng->NextInt(-8, 4)))));
        break;
    }
  }
  return p;
}

class PlanFuzzTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<Rng>(static_cast<uint64_t>(GetParam()) * 6151 + 3);
    base_ = RandomBaseTable(rng_.get(), 150);
    SchemaPtr side_schema = MakeSchema({Field::Attr("sk", DataType::kInt64),
                                        Field::Attr("sv", DataType::kFloat64)});
    TableBuilder sb(side_schema);
    for (int64_t i = 0; i < 13; ++i) {
      ASSERT_OK(sb.AppendRow({I(i), F(static_cast<double>(i * 2))}));
    }
    side_ = sb.Finish().ValueOrDie();
    grid_ = RandomGridTable(rng_.get(), 10);
    ASSERT_OK(catalog_.Put("base", Dataset(base_)));
    ASSERT_OK(catalog_.Put("side", Dataset(side_)));
    ASSERT_OK(catalog_.Put("grid", Dataset(grid_)));
  }

  std::unique_ptr<Rng> rng_;
  TablePtr base_, side_, grid_;
  InMemoryCatalog catalog_;
};

TEST_P(PlanFuzzTest, WireRoundTripIsIdentity) {
  for (int trial = 0; trial < 8; ++trial) {
    PlanPtr p = trial % 2 == 0 ? RandomRelationalPlan(rng_.get(), catalog_, 5)
                               : RandomArrayPlan(rng_.get(), 5);
    std::string wire = SerializePlan(*p);
    ASSERT_OK_AND_ASSIGN(PlanPtr back, ParsePlan(wire));
    EXPECT_TRUE(p->Equals(*back)) << wire;
    EXPECT_EQ(SerializePlan(*back), wire);
  }
}

TEST_P(PlanFuzzTest, OptimizerPreservesSemantics) {
  ReferenceExecutor exec(&catalog_);
  for (int trial = 0; trial < 6; ++trial) {
    PlanPtr p = trial % 2 == 0 ? RandomRelationalPlan(rng_.get(), catalog_, 5)
                               : RandomArrayPlan(rng_.get(), 4);
    ASSERT_OK_AND_ASSIGN(PlanPtr optimized, Optimize(p, catalog_));
    ASSERT_OK_AND_ASSIGN(SchemaPtr s1, InferSchema(*p, catalog_));
    ASSERT_OK_AND_ASSIGN(SchemaPtr s2, InferSchema(*optimized, catalog_));
    ASSERT_TRUE(s1->Equals(*s2))
        << "schema changed:\n" << p->ToString() << "->\n" << optimized->ToString();
    ASSERT_OK_AND_ASSIGN(Dataset want, exec.Execute(*p));
    ASSERT_OK_AND_ASSIGN(Dataset got, exec.Execute(*optimized));
    EXPECT_TRUE(got.LogicallyEquals(want))
        << p->ToString() << "->\n" << optimized->ToString();
  }
}

TEST_P(PlanFuzzTest, CostBasedPlansAreValueEquivalentUnderAnyStats) {
  // P6: randomized chain joins × randomized statistics distortions. The
  // DP enumerator may pick any order the (possibly forged) stats favor;
  // the rows coming back must be exactly the written plan's rows.
  Rng& rng = *rng_;
  for (int trial = 0; trial < 4; ++trial) {
    InMemoryCatalog catalog;
    int n_rels = 3 + static_cast<int>(rng.NextBounded(2));
    for (int r = 0; r < n_rels; ++r) {
      // rel_r carries join keys c{r-1} (into the previous relation) and
      // c{r} (into the next), plus a payload column.
      std::vector<Field> fields;
      if (r > 0) fields.push_back(Field::Attr(StrCat("c", r - 1), DataType::kInt64));
      if (r + 1 < n_rels) fields.push_back(Field::Attr(StrCat("c", r), DataType::kInt64));
      fields.push_back(Field::Attr(StrCat("p", r), DataType::kInt64));
      TableBuilder b(MakeSchema(fields));
      int64_t rows = rng.NextInt(5, 120);
      int64_t domain = rng.NextInt(2, 40);
      for (int64_t i = 0; i < rows; ++i) {
        std::vector<Value> row;
        if (r > 0) row.push_back(I(rng.NextInt(0, domain - 1)));
        if (r + 1 < n_rels) row.push_back(I(rng.NextInt(0, domain - 1)));
        row.push_back(I(i));
        ASSERT_OK(b.AppendRow(row));
      }
      ASSERT_OK(catalog.Put(StrCat("rel", r), Dataset(b.Finish().ValueOrDie())));
    }
    // Written order: the plain left-deep chain.
    PlanPtr p = Plan::Scan("rel0");
    for (int r = 1; r < n_rels; ++r) {
      std::string key = StrCat("c", r - 1);
      p = Plan::Join(p, Plan::Scan(StrCat("rel", r)), JoinType::kInner, {key},
                     {key});
    }
    // Distort the statistics: scale cardinalities and NDVs by up to 100x
    // either way, sometimes drop ranges entirely.
    for (int r = 0; r < n_rels; ++r) {
      if (rng.NextBool()) continue;
      ASSERT_OK_AND_ASSIGN(TableStats stats, catalog.GetStats(StrCat("rel", r)));
      double factor = std::pow(10.0, rng.NextDouble(-2.0, 2.0));
      stats.row_count = std::max<int64_t>(
          1, static_cast<int64_t>(static_cast<double>(stats.row_count) * factor));
      for (auto& [name, cs] : stats.columns) {
        cs.distinct = std::max(1.0, cs.distinct * factor);
        if (rng.NextBool()) cs.has_minmax = false;
      }
      ASSERT_OK(catalog.OverrideStats(StrCat("rel", r), stats));
    }
    ASSERT_OK_AND_ASSIGN(PlanPtr optimized, Optimize(p, catalog));
    ASSERT_OK_AND_ASSIGN(SchemaPtr s1, InferSchema(*p, catalog));
    ASSERT_OK_AND_ASSIGN(SchemaPtr s2, InferSchema(*optimized, catalog));
    ASSERT_TRUE(s1->Equals(*s2))
        << "schema changed:\n" << p->ToString() << "->\n" << optimized->ToString();
    ReferenceExecutor exec(&catalog);
    ASSERT_OK_AND_ASSIGN(Dataset want, exec.Execute(*p));
    ASSERT_OK_AND_ASSIGN(Dataset got, exec.Execute(*optimized));
    EXPECT_TRUE(got.LogicallyEquals(want))
        << p->ToString() << "->\n" << optimized->ToString();
  }
}

TEST_P(PlanFuzzTest, ProvidersAgreeOnClaimedPlans) {
  std::vector<ProviderPtr> providers = {MakeReferenceProvider(),
                                        MakeRelationalProvider(),
                                        MakeArrayProvider()};
  for (const ProviderPtr& p : providers) {
    ASSERT_OK(p->catalog()->Put("base", Dataset(base_)));
    ASSERT_OK(p->catalog()->Put("side", Dataset(side_)));
    ASSERT_OK(p->catalog()->Put("grid", Dataset(grid_)));
  }
  for (int trial = 0; trial < 6; ++trial) {
    bool dimensioned = trial % 2 != 0;
    PlanPtr plan = dimensioned ? RandomArrayPlan(rng_.get(), 4)
                               : RandomRelationalPlan(rng_.get(), catalog_, 4);
    // Sort-sensitive plans may legally differ in row order across engines;
    // compare as multisets (LogicallyEquals is unordered).
    ASSERT_OK_AND_ASSIGN(Dataset want, providers[0]->Execute(*plan));
    for (size_t i = 1; i < providers.size(); ++i) {
      if (!providers[i]->ClaimsTree(*plan)) continue;
      // The array engine needs dimensioned inputs; the planner enforces
      // this via ServerSuits — mirror that here.
      if (providers[i]->name() == "arraydb" && !dimensioned) continue;
      ASSERT_OK_AND_ASSIGN(Dataset got, providers[i]->Execute(*plan));
      EXPECT_TRUE(got.LogicallyEquals(want))
          << providers[i]->name() << " diverged on\n" << plan->ToString();
    }
  }
}

TEST_P(PlanFuzzTest, FederatedExecutionMatchesLocal) {
  Cluster cluster;
  ASSERT_OK(cluster.AddServer("relstore", MakeRelationalProvider()));
  ASSERT_OK(cluster.AddServer("arraydb", MakeArrayProvider()));
  ASSERT_OK(cluster.AddServer("reference", MakeReferenceProvider()));
  // Split the data across servers.
  ASSERT_OK(cluster.PutData("relstore", "base", Dataset(base_)));
  ASSERT_OK(cluster.PutData("relstore", "side", Dataset(side_)));
  ASSERT_OK(cluster.PutData("arraydb", "grid", Dataset(grid_)));
  Coordinator coord(&cluster);
  ReferenceExecutor local(&catalog_);
  for (int trial = 0; trial < 5; ++trial) {
    PlanPtr plan = trial % 2 == 0
                       ? RandomRelationalPlan(rng_.get(), catalog_, 4)
                       : RandomArrayPlan(rng_.get(), 4);
    // Limit after an unordered boundary is representation-dependent; the
    // generator may emit Sort → Limit which is stable, but a bare Limit
    // over differently-ordered intermediates legitimately differs between
    // a federated plan (which cuts the tree into fragments) and local
    // execution. Skip plans whose result depends on physical order.
    if (plan->ToString().find("limit") != std::string::npos) continue;
    ASSERT_OK_AND_ASSIGN(Dataset want, local.Execute(*plan));
    ASSERT_OK_AND_ASSIGN(Dataset got, coord.Execute(plan));
    EXPECT_TRUE(got.LogicallyEquals(want)) << plan->ToString();
  }
}

TEST_P(PlanFuzzTest, ParallelExecutionIsByteIdentical) {
  // Stronger than LogicallyEquals: the morsel scheduler's determinism
  // contract promises byte-identical results (row order, chunk layout,
  // float sums) for any thread budget.
  struct Guard {
    int saved = GetThreadCount();
    ~Guard() { SetThreadCount(saved); }
  } guard;
  ReferenceExecutor exec(&catalog_);
  for (int trial = 0; trial < 5; ++trial) {
    PlanPtr plan = trial % 2 == 0
                       ? RandomRelationalPlan(rng_.get(), catalog_, 5)
                       : RandomArrayPlan(rng_.get(), 4);
    SetThreadCount(1);
    ASSERT_OK_AND_ASSIGN(Dataset want, exec.Execute(*plan));
    for (int threads : {2, 4, 8}) {
      SetThreadCount(threads);
      ASSERT_OK_AND_ASSIGN(Dataset got, exec.Execute(*plan));
      ASSERT_EQ(got.kind(), want.kind()) << plan->ToString();
      if (want.is_table()) {
        EXPECT_TRUE(got.table()->Equals(*want.table()))
            << "threads=" << threads << "\n" << plan->ToString();
      } else {
        EXPECT_TRUE(got.array()->Equals(*want.array()))
            << "threads=" << threads << "\n" << plan->ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanFuzzTest, ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Structural invariants of the fused model.
// ---------------------------------------------------------------------------

class ReboxPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ReboxPropertyTest, TableArrayRoundTripIsLossless) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7 + 1);
  TablePtr t = RandomGridTable(&rng, 6 + GetParam());
  for (int64_t chunk : {1, 3, 7, 64}) {
    ASSERT_OK_AND_ASSIGN(auto arr,
                         NDArray::FromTable(*t, {"x", "y"}, {chunk, chunk}));
    ASSERT_OK_AND_ASSIGN(TablePtr back, arr->ToTable());
    EXPECT_TRUE(Dataset(t).LogicallyEquals(Dataset(back)))
        << "chunk=" << chunk;
    EXPECT_EQ(arr->NumCellsOccupied(), t->num_rows());
  }
}

TEST_P(ReboxPropertyTest, SerializedArrayKeepsGeometryAndCells) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 2);
  TablePtr t = RandomGridTable(&rng, 7);
  if (t->num_rows() == 0) return;
  ASSERT_OK_AND_ASSIGN(NDArrayPtr arr, Dataset(t).AsArray(5));
  ASSERT_OK_AND_ASSIGN(Dataset back, ParseDataset(SerializeDataset(Dataset(arr))));
  ASSERT_TRUE(back.is_array());
  EXPECT_TRUE(back.array()->Equals(*arr));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReboxPropertyTest, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// P7: the bytecode VM is byte-identical to both interpreters on random
// typed expression trees over nullable data.
// ---------------------------------------------------------------------------

TablePtr RandomNullableTable(Rng* rng, int64_t rows) {
  SchemaPtr s = MakeSchema({Field::Attr("a", DataType::kInt64),
                            Field::Attr("b", DataType::kFloat64),
                            Field::Attr("s", DataType::kString),
                            Field::Attr("flag", DataType::kBool)});
  TableBuilder b(s);
  for (int64_t i = 0; i < rows; ++i) {
    std::vector<Value> row = {
        Value::Int64(rng->NextInt(-6, 6)),
        Value::Float64(static_cast<double>(rng->NextInt(-40, 40)) / 8.0),
        Value::String(std::string(rng->NextBounded(3) + 1,
                                  static_cast<char>('A' + rng->NextBounded(26)))),
        Value::Bool(rng->NextBool())};
    if (rng->NextBool(0.15)) row[rng->NextBounded(4)] = Value::Null();
    EXPECT_OK(b.AppendRow(row));
  }
  return b.Finish().ValueOrDie();
}

// Builds a random expression of the requested static type. Stays inside the
// NaN-free, non-overflowing envelope: what it generates exercises nulls,
// Kleene logic, conditionals, strings, casts, and math builtins.
ExprPtr RandomTypedExpr(Rng* rng, DataType want, int depth);

ExprPtr RandomIntExpr(Rng* rng, int depth) {
  if (depth <= 0 || rng->NextBool(0.3)) {
    return rng->NextBool() ? Col("a") : Lit(rng->NextInt(-4, 4));
  }
  switch (rng->NextBounded(7)) {
    case 0:
      return Add(RandomIntExpr(rng, depth - 1), RandomIntExpr(rng, depth - 1));
    case 1:
      return Sub(RandomIntExpr(rng, depth - 1), RandomIntExpr(rng, depth - 1));
    case 2:
      return Mod(RandomIntExpr(rng, depth - 1), RandomIntExpr(rng, depth - 1));
    case 3:
      return Neg(RandomIntExpr(rng, depth - 1));
    case 4:
      return Func("coalesce",
                  {RandomIntExpr(rng, depth - 1), RandomIntExpr(rng, depth - 1)});
    case 5:
      return Func("if", {RandomTypedExpr(rng, DataType::kBool, depth - 1),
                         RandomIntExpr(rng, depth - 1),
                         RandomIntExpr(rng, depth - 1)});
    default:
      return Func("length", {RandomTypedExpr(rng, DataType::kString, depth - 1)});
  }
}

ExprPtr RandomDoubleExpr(Rng* rng, int depth) {
  if (depth <= 0 || rng->NextBool(0.3)) {
    return rng->NextBool() ? Col("b") : Lit(rng->NextDouble(-3.0, 3.0));
  }
  switch (rng->NextBounded(7)) {
    case 0:
      return Add(RandomDoubleExpr(rng, depth - 1),
                 RandomDoubleExpr(rng, depth - 1));
    case 1:
      return Mul(RandomDoubleExpr(rng, depth - 1),
                 RandomDoubleExpr(rng, depth - 1));
    case 2:
      return Div(RandomDoubleExpr(rng, depth - 1),
                 RandomDoubleExpr(rng, depth - 1));  // /0 → null on all paths
    case 3:
      return Func("sqrt", {RandomDoubleExpr(rng, depth - 1)});  // <0 → null
    case 4:
      return Func("abs", {RandomDoubleExpr(rng, depth - 1)});
    case 5:
      return Func("min", {RandomDoubleExpr(rng, depth - 1),
                          RandomDoubleExpr(rng, depth - 1)});
    default:
      return Func("if", {RandomTypedExpr(rng, DataType::kBool, depth - 1),
                         RandomDoubleExpr(rng, depth - 1),
                         RandomDoubleExpr(rng, depth - 1)});
  }
}

ExprPtr RandomStringExpr(Rng* rng, int depth) {
  if (depth <= 0 || rng->NextBool(0.4)) {
    return rng->NextBool() ? Col("s") : Lit(std::string(1, static_cast<char>(
                                                'a' + rng->NextBounded(26))));
  }
  switch (rng->NextBounded(5)) {
    case 0:
      return Add(RandomStringExpr(rng, depth - 1),
                 RandomStringExpr(rng, depth - 1));
    case 1:
      return Func("lower", {RandomStringExpr(rng, depth - 1)});
    case 2:
      return Func("upper", {RandomStringExpr(rng, depth - 1)});
    case 3:
      return Func("substr", {RandomStringExpr(rng, depth - 1),
                             Lit(rng->NextInt(0, 2)), Lit(rng->NextInt(0, 3))});
    default:
      return Cast(DataType::kString, RandomIntExpr(rng, depth - 1));
  }
}

ExprPtr RandomBoolExpr(Rng* rng, int depth) {
  if (depth <= 0 || rng->NextBool(0.3)) {
    return rng->NextBool() ? Col("flag") : Lit(rng->NextBool());
  }
  switch (rng->NextBounded(7)) {
    case 0:
      return And(RandomBoolExpr(rng, depth - 1), RandomBoolExpr(rng, depth - 1));
    case 1:
      return Or(RandomBoolExpr(rng, depth - 1), RandomBoolExpr(rng, depth - 1));
    case 2:
      return Not(RandomBoolExpr(rng, depth - 1));
    case 3:
      return Lt(RandomIntExpr(rng, depth - 1), RandomIntExpr(rng, depth - 1));
    case 4:
      return Eq(RandomDoubleExpr(rng, depth - 1),
                RandomDoubleExpr(rng, depth - 1));
    case 5:
      return Ge(RandomStringExpr(rng, depth - 1),
                RandomStringExpr(rng, depth - 1));
    default:
      return Func("is_null", {RandomIntExpr(rng, depth - 1)});
  }
}

ExprPtr RandomTypedExpr(Rng* rng, DataType want, int depth) {
  switch (want) {
    case DataType::kInt64:
      return RandomIntExpr(rng, depth);
    case DataType::kFloat64:
      return RandomDoubleExpr(rng, depth);
    case DataType::kString:
      return RandomStringExpr(rng, depth);
    default:
      return RandomBoolExpr(rng, depth);
  }
}

class ExprCompileTest : public ::testing::TestWithParam<int> {};

TEST_P(ExprCompileTest, CompiledAndInterpretedAreByteIdentical) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 11);
  TablePtr t = RandomNullableTable(&rng, 160);
  const DataType kTypes[] = {DataType::kInt64, DataType::kFloat64,
                             DataType::kString, DataType::kBool};
  struct Guard {
    ~Guard() { ClearExprCompileOverride(); }
  } guard;
  for (int trial = 0; trial < 25; ++trial) {
    ExprPtr e = RandomTypedExpr(&rng, kTypes[trial % 4], 4);
    if (!InferExprType(*e, *t->schema()).ok()) continue;
    SetExprCompileOverride(false);
    ASSERT_OK_AND_ASSIGN(Column interp, EvalExprVector(*e, *t));
    SetExprCompileOverride(true);
    ASSERT_OK_AND_ASSIGN(Column compiled, EvalExprVector(*e, *t));
    EXPECT_TRUE(compiled.Equals(interp)) << e->ToString();
    // Spot-check both against the row interpreter (ground truth).
    ASSERT_OK_AND_ASSIGN(DataType out_t, InferExprType(*e, *t->schema()));
    for (int64_t r = 0; r < t->num_rows(); r += 17) {
      ASSERT_OK_AND_ASSIGN(Value row_v,
                           EvalExprRow(*e, *t->schema(), t->Row(r)));
      if (row_v.is_null()) {
        EXPECT_TRUE(compiled.GetValue(r).is_null())
            << e->ToString() << " row " << r;
      } else {
        ASSERT_OK_AND_ASSIGN(Value want_v, row_v.CastTo(out_t));
        EXPECT_EQ(compiled.GetValue(r), want_v) << e->ToString() << " row " << r;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprCompileTest, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// P8: random associative-array programs over every registered semi-ring —
// the generic Ext/Join/Union kernels versus direct scalar reference folds,
// byte-identical (Table::Equals) at 1 and 4 threads.
// ---------------------------------------------------------------------------

algebra::AssocArray RandomAssoc(Rng* rng, int n) {
  SchemaPtr s = MakeSchema({Field::Attr("k", DataType::kInt64),
                            Field::Attr("v", DataType::kFloat64)});
  TableBuilder b(s);
  for (int i = 0; i < n; ++i) {
    // Positive values: max_times is registered over the non-negative domain.
    EXPECT_OK(b.AppendRow({I(rng->NextInt(0, 12)),
                           F(rng->NextDouble(0.1, 2.0))}));
  }
  auto r = algebra::AssocArray::FromTable(b.Finish().ValueOrDie(), {"k"}, "v");
  EXPECT_TRUE(r.ok()) << r.status();
  return r.MoveValue();
}

/// One ⊕-step of the kernels' fold contract: `+`-folds accumulate from 0,
/// other monoids seed from the first value; lifted rings fold ring-one.
double RefFold(const algebra::Semiring& sr, bool seen, double acc, double v) {
  double x = sr.lift ? sr.one_f : v;
  if (sr.plus == algebra::MonoidOp::kAdd) return (seen ? acc : 0.0) + x;
  return seen ? algebra::ApplyF(sr.plus, acc, x) : x;
}

/// Direct ⊕-collapse of (key, value) entries in first-seen key order.
TablePtr RefNormalize(const std::vector<std::pair<int64_t, double>>& entries,
                      const SchemaPtr& schema, const algebra::Semiring& sr) {
  std::vector<int64_t> order;
  std::map<int64_t, size_t> pos;
  std::vector<double> acc;
  for (const auto& [k, v] : entries) {
    auto it = pos.find(k);
    if (it == pos.end()) {
      pos[k] = order.size();
      order.push_back(k);
      acc.push_back(RefFold(sr, false, 0.0, v));
    } else {
      acc[it->second] = RefFold(sr, true, acc[it->second], v);
    }
  }
  std::vector<std::vector<Value>> rows;
  for (size_t g = 0; g < order.size(); ++g) rows.push_back({I(order[g]), F(acc[g])});
  return MakeTable(schema, rows);
}

std::vector<std::pair<int64_t, double>> AssocEntries(
    const algebra::AssocArray& a) {
  std::vector<std::pair<int64_t, double>> out;
  for (int64_t r = 0; r < a.num_entries(); ++r) {
    out.emplace_back(a.key_column(0).ints()[static_cast<size_t>(r)],
                     a.value_column().doubles()[static_cast<size_t>(r)]);
  }
  return out;
}

class AssocProgramTest : public ::testing::TestWithParam<int> {};

TEST_P(AssocProgramTest, KernelProgramsMatchDirectFoldsAcrossRegistry) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 1);
  struct Guard {
    int saved = GetThreadCount();
    ~Guard() { SetThreadCount(saved); }
  } guard;
  algebra::AssocArray a = RandomAssoc(&rng, 200);
  algebra::AssocArray b = RandomAssoc(&rng, 150);
  const SchemaPtr schema = a.table()->schema();
  for (const algebra::Semiring& sr : algebra::SemiringRegistry()) {
    // Union⊕: concat a-then-b, ⊕-collapse in first-seen key order.
    std::vector<std::pair<int64_t, double>> both = AssocEntries(a);
    for (const auto& e : AssocEntries(b)) both.push_back(e);
    TablePtr want_union = RefNormalize(both, schema, sr);
    // Join⊗ then Reduce⊕: pairs in a-entry order with b-matches in b-entry
    // order, each value va ⊗ vb (ring one ⊗ one when lifted).
    std::vector<std::pair<int64_t, double>> pairs;
    for (const auto& [ka, va] : AssocEntries(a)) {
      for (const auto& [kb, vb] : AssocEntries(b)) {
        if (ka != kb) continue;
        double x = sr.lift ? algebra::ApplyF(sr.times, sr.one_f, sr.one_f)
                           : algebra::ApplyF(sr.times, va, vb);
        pairs.emplace_back(ka, x);
      }
    }
    TablePtr want_join = RefNormalize(pairs, schema, sr);
    for (int threads : {1, 4}) {
      SetThreadCount(threads);
      ASSERT_OK_AND_ASSIGN(algebra::AssocArray u, algebra::Union(a, b, sr));
      EXPECT_TRUE(u.table()->Equals(*want_union))
          << sr.name << " union, threads=" << threads;
      ASSERT_OK_AND_ASSIGN(algebra::AssocArray j, algebra::Join(a, b, sr));
      ASSERT_OK_AND_ASSIGN(algebra::AssocArray red,
                           algebra::Reduce(j, {"k"}, sr));
      EXPECT_TRUE(red.table()->Equals(*want_join))
          << sr.name << " join+reduce, threads=" << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssocProgramTest, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// P9: out-of-core identity. Joins, aggregations, and semi-ring reductions
// with spilling forced under a randomized budget — drawn log-uniformly from
// [1, 64 KiB], so most draws force partitioning and the smallest force
// recursive repartition — are byte-identical (Table::Equals) to the
// in-memory spill-off result at 1 and 4 threads.
// ---------------------------------------------------------------------------

class SpillIdentityPropTest : public ::testing::TestWithParam<int> {};

TEST_P(SpillIdentityPropTest, SpilledExecutionIsByteIdenticalUnderAnyBudget) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 13);
  struct Guard {
    int saved = GetThreadCount();
    ~Guard() {
      spill::ClearSpillOverride();
      spill::ClearSpillBudgetOverride();
      SetThreadCount(saved);
    }
  } guard;

  // Random co-keyed tables (dup keys, null keys, null payloads).
  const int64_t key_range = rng.NextInt(4, 64);
  TablePtr left = RandomBaseTable(&rng, rng.NextInt(100, 500));
  SchemaPtr right_schema = MakeSchema({Field::Attr("k", DataType::kInt64),
                                       Field::Attr("w", DataType::kFloat64)});
  TableBuilder rb(right_schema);
  const int64_t nright = rng.NextInt(80, 400);
  for (int64_t i = 0; i < nright; ++i) {
    ASSERT_OK(rb.AppendRow(
        {rng.NextBounded(20) == 0 ? testing::N() : I(rng.NextInt(0, key_range)),
         F(static_cast<double>(rng.NextInt(-100, 100)))}));
  }
  ASSERT_OK_AND_ASSIGN(TablePtr right, rb.Finish());

  JoinOp join;
  join.left_keys = {"k"};
  join.right_keys = {"k"};
  AggregateOp agg;
  agg.group_by = {"g", "tag"};
  agg.aggs = {AggSpec{AggFunc::kSum, Col("v"), "sv"},
              AggSpec{AggFunc::kCount, nullptr, "n"},
              AggSpec{AggFunc::kMin, Col("v"), "lo"},
              AggSpec{AggFunc::kAvg, Col("v"), "mean"}};
  const algebra::Semiring& ring =
      algebra::SemiringRegistry()[static_cast<size_t>(
          rng.NextInt(0, static_cast<int64_t>(
                             algebra::SemiringRegistry().size()) - 1))];
  ASSERT_OK_AND_ASSIGN(
      algebra::AssocArray arr,
      algebra::AssocArray::FromTable(left, {"k", "g"}, "v"));

  // In-memory baselines, sequential. Spill is pinned OFF (not merely
  // cleared) so a CI run that forces NEXUS_SPILL=1 process-wide still
  // compares a genuine in-memory arm against the spilled arm.
  spill::SetSpillOverride(false);
  SetThreadCount(1);
  ASSERT_OK_AND_ASSIGN(TablePtr join_want, relational::HashJoin(left, right, join));
  ASSERT_OK_AND_ASSIGN(TablePtr agg_want, relational::HashAggregate(left, agg));
  ASSERT_OK_AND_ASSIGN(algebra::AssocArray red_want,
                       algebra::Reduce(arr, {"g"}, ring));

  // Log-uniform budget: half the draws land under 256 bytes, forcing
  // recursive repartition; the rest spread up to 64 KiB.
  const int64_t budget = int64_t{1} << rng.NextInt(0, 16);
  spill::SetSpillOverride(true);
  spill::SetSpillBudgetOverride(budget);
  for (int threads : {1, 4}) {
    SetThreadCount(threads);
    ASSERT_OK_AND_ASSIGN(TablePtr join_got, relational::HashJoin(left, right, join));
    EXPECT_TRUE(join_got->Equals(*join_want))
        << "join, budget=" << budget << " threads=" << threads;
    ASSERT_OK_AND_ASSIGN(TablePtr agg_got, relational::HashAggregate(left, agg));
    EXPECT_TRUE(agg_got->Equals(*agg_want))
        << "aggregate, budget=" << budget << " threads=" << threads;
    ASSERT_OK_AND_ASSIGN(algebra::AssocArray red_got,
                         algebra::Reduce(arr, {"g"}, ring));
    EXPECT_TRUE(red_got.table()->Equals(*red_want.table()))
        << "reduce(" << ring.name << "), budget=" << budget
        << " threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpillIdentityPropTest, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// P10: incremental identity. Views registered over random relational plans,
// refreshed across random append batches to both base and join-side tables,
// must be byte-identical (Table::Equals) to a full recompute of the same
// plan against the grown catalog — at 1 and 4 threads. The generated plans
// deliberately include shapes the delta rewrite refuses (Sort, Distinct,
// Limit, nested aggregates): refuse-and-fallback is part of the contract.
// ---------------------------------------------------------------------------

class IncrementalIdentityPropTest : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalIdentityPropTest, RefreshMatchesFullRecomputeUnderAppends) {
  struct Guard {
    int saved = GetThreadCount();
    ~Guard() { SetThreadCount(saved); }
  } guard;
  SchemaPtr side_schema = MakeSchema({Field::Attr("sk", DataType::kInt64),
                                      Field::Attr("sv", DataType::kFloat64)});
  for (int threads : {1, 4}) {
    SetThreadCount(threads);
    // Same seed per thread count: the identical scenario replays, and each
    // refresh is checked against its own full recompute.
    Rng rng(static_cast<uint64_t>(GetParam()) * 31337 + 7);
    InMemoryCatalog catalog;
    ASSERT_OK(catalog.Put("base", Dataset(RandomBaseTable(&rng, 60))));
    TableBuilder sb(side_schema);
    for (int64_t i = 0; i < 13; ++i) {
      ASSERT_OK(sb.AppendRow({I(i), F(static_cast<double>(i * 2))}));
    }
    ASSERT_OK(catalog.Put("side", Dataset(sb.Finish().ValueOrDie())));

    incremental::ViewRegistry reg(&catalog);
    std::vector<std::pair<std::string, PlanPtr>> views;
    for (int i = 0; i < 4; ++i) {
      PlanPtr plan = RandomRelationalPlan(&rng, catalog, 4);
      std::string name = StrCat("v", i);
      ASSERT_OK(reg.Register(name, plan));
      views.emplace_back(std::move(name), std::move(plan));
    }

    for (int round = 0; round < 5; ++round) {
      // Random append batch: always some base rows, sometimes side rows.
      ASSERT_OK(catalog.Append(
          "base", Dataset(RandomBaseTable(&rng, rng.NextInt(1, 25)))));
      if (rng.NextBool(0.4)) {
        TableBuilder tb(side_schema);
        int64_t n = rng.NextInt(1, 6);
        for (int64_t i = 0; i < n; ++i) {
          ASSERT_OK(tb.AppendRow(
              {I(rng.NextInt(0, 12)),
               F(static_cast<double>(rng.NextInt(-20, 20)))}));
        }
        ASSERT_OK(catalog.Append("side", Dataset(tb.Finish().ValueOrDie())));
      }
      for (const auto& [name, plan] : views) {
        incremental::RefreshInfo info;
        ASSERT_OK_AND_ASSIGN(TablePtr got, reg.Refresh(name, &info));
        ASSERT_OK_AND_ASSIGN(TablePtr want,
                             incremental::ExecuteViewPlan(*plan, catalog));
        ASSERT_TRUE(got->Equals(*want))
            << "view " << name << " round " << round << " threads " << threads
            << (info.fell_back ? StrCat(" (fell back: ", info.refusal, ")")
                               : StrCat(" (incremental=", info.incremental,
                                        ", Δrows=", info.delta_rows, ")"))
            << "\nplan:\n"
            << plan->ToString() << "got:\n"
            << got->ToString() << "want:\n"
            << want->ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalIdentityPropTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace nexus
