// Federation tests: placement, fragmentation, direct vs relayed transfers,
// expression shipping vs per-op calls, and provider-side vs client-driven
// iteration — the executable form of desiderata 2 and 4.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/serialize.h"
#include "core/wire_format.h"
#include "exec/reference_executor.h"
#include "expr/builder.h"
#include "federation/coordinator.h"
#include "tests/test_util.h"

namespace nexus {
namespace {

using namespace nexus::exprs;  // NOLINT
using testing::F;
using testing::I;
using testing::MakeSchema;
using testing::MakeTable;
using testing::S;

class FederationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>();
    ASSERT_OK(cluster_->AddServer("relstore", MakeRelationalProvider()));
    ASSERT_OK(cluster_->AddServer("arraydb", MakeArrayProvider()));
    ASSERT_OK(cluster_->AddServer("linalg", MakeLinalgProvider()));
    ASSERT_OK(cluster_->AddServer("graphd", MakeGraphProvider()));
    ASSERT_OK(cluster_->AddServer("reference", MakeReferenceProvider()));

    Rng rng(7);
    // Relational data on relstore.
    SchemaPtr orders = MakeSchema({Field::Attr("oid", DataType::kInt64),
                                   Field::Attr("sensor", DataType::kInt64),
                                   Field::Attr("amount", DataType::kFloat64)});
    TableBuilder ob(orders);
    for (int64_t i = 0; i < 200; ++i) {
      ASSERT_OK(ob.AppendRow(
          {I(i), I(rng.NextInt(0, 19)), F(rng.NextDouble(0, 100))}));
    }
    ASSERT_OK(cluster_->PutData("relstore", "orders",
                                Dataset(ob.Finish().ValueOrDie())));

    // Array data on arraydb.
    SchemaPtr grid = MakeSchema({Field::Dim("i"), Field::Dim("k"),
                                 Field::Attr("v", DataType::kFloat64)});
    TableBuilder gb(grid);
    for (int64_t i = 0; i < 16; ++i) {
      for (int64_t k = 0; k < 16; ++k) {
        ASSERT_OK(gb.AppendRow(
            {I(i), I(k), F(static_cast<double>(rng.NextInt(1, 5)))}));
      }
    }
    matrix_ = gb.Finish().ValueOrDie();
    ASSERT_OK(cluster_->PutData("arraydb", "M", Dataset(matrix_)));
    // Second matrix, also on arraydb.
    SchemaPtr grid2 = MakeSchema({Field::Dim("k"), Field::Dim("j"),
                                  Field::Attr("w", DataType::kFloat64)});
    TableBuilder g2(grid2);
    for (int64_t k = 0; k < 16; ++k) {
      for (int64_t j = 0; j < 12; ++j) {
        ASSERT_OK(g2.AppendRow(
            {I(k), I(j), F(static_cast<double>(rng.NextInt(1, 5)))}));
      }
    }
    matrix2_ = g2.Finish().ValueOrDie();
    ASSERT_OK(cluster_->PutData("arraydb", "N", Dataset(matrix2_)));

    // Graph data on graphd.
    SchemaPtr edges = MakeSchema({Field::Attr("src", DataType::kInt64),
                                  Field::Attr("dst", DataType::kInt64)});
    TableBuilder eb(edges);
    for (int64_t e = 0; e < 150; ++e) {
      ASSERT_OK(eb.AppendRow({I(rng.NextInt(0, 29)), I(rng.NextInt(0, 29))}));
    }
    ASSERT_OK(cluster_->PutData("graphd", "edges",
                                Dataset(eb.Finish().ValueOrDie())));
  }

  // Reference result computed in one local catalog holding everything.
  Dataset ReferenceResult(const PlanPtr& plan) {
    InMemoryCatalog cat;
    EXPECT_OK(cat.Put("orders",
                      cluster_->provider("relstore")->catalog()->Get("orders").ValueOrDie()));
    EXPECT_OK(cat.Put("M", Dataset(matrix_)));
    EXPECT_OK(cat.Put("N", Dataset(matrix2_)));
    EXPECT_OK(cat.Put("edges",
                      cluster_->provider("graphd")->catalog()->Get("edges").ValueOrDie()));
    ReferenceExecutor exec(&cat);
    auto r = exec.Execute(*plan);
    EXPECT_OK(r.status());
    return r.ValueOrDie();
  }

  std::unique_ptr<Cluster> cluster_;
  TablePtr matrix_, matrix2_;
};

TEST_F(FederationTest, FederatedCatalogResolvesAcrossServers) {
  FederatedCatalog cat(cluster_.get());
  EXPECT_TRUE(cat.Contains("orders"));
  EXPECT_TRUE(cat.Contains("M"));
  EXPECT_FALSE(cat.Contains("nope"));
  ASSERT_OK_AND_ASSIGN(SchemaPtr s, cat.GetSchema("M"));
  EXPECT_EQ(s->num_dimensions(), 2);
}

TEST_F(FederationTest, SingleServerQueryShipsOneTree) {
  Coordinator coord(cluster_.get());
  PlanPtr p = Plan::Aggregate(
      Plan::Select(Plan::Scan("orders"), Gt(Col("amount"), Lit(50.0))),
      {"sensor"}, {AggSpec{AggFunc::kSum, Col("amount"), "total"}});
  ExecutionMetrics m;
  ASSERT_OK_AND_ASSIGN(Dataset got, coord.Execute(p, &m));
  EXPECT_TRUE(got.LogicallyEquals(ReferenceResult(p)));
  EXPECT_EQ(m.fragments, 1);
  EXPECT_EQ(m.plan_messages, 1);
  EXPECT_EQ(m.data_messages, 1);  // result back to the client
  EXPECT_GT(m.plan_bytes, 0);
}

TEST_F(FederationTest, PlacementSendsOpsToSpecialists) {
  Coordinator coord(cluster_.get());
  PlanPtr mm = Plan::MatMul(Plan::Scan("M"), Plan::Scan("N"), "prod");
  ASSERT_OK_AND_ASSIGN(std::string explain, coord.ExplainPlacement(mm));
  EXPECT_NE(explain.find("matmul[-> prod]  @linalg"), std::string::npos) << explain;
  EXPECT_NE(explain.find("scan[M]  @arraydb"), std::string::npos) << explain;

  PageRankOp pr;
  PlanPtr prp = Plan::PageRank(Plan::Scan("edges"), pr);
  ASSERT_OK_AND_ASSIGN(std::string explain2, coord.ExplainPlacement(prp));
  EXPECT_NE(explain2.find("@graphd"), std::string::npos) << explain2;
}

TEST_F(FederationTest, MultiServerMatMulIsCorrect) {
  Coordinator coord(cluster_.get());
  PlanPtr mm = Plan::MatMul(Plan::Scan("M"), Plan::Scan("N"), "prod");
  ExecutionMetrics m;
  ASSERT_OK_AND_ASSIGN(Dataset got, coord.Execute(mm, &m));
  EXPECT_TRUE(got.LogicallyEquals(ReferenceResult(mm)));
  // Two scan fragments at arraydb, one matmul fragment at linalg.
  EXPECT_EQ(m.fragments, 3);
  EXPECT_GE(m.nodes_per_server["linalg"], 1);
}

TEST_F(FederationTest, DirectTransferBypassesClient) {
  PlanPtr mm = Plan::MatMul(Plan::Scan("M"), Plan::Scan("N"), "prod");

  CoordinatorOptions direct;
  direct.transfer_mode = TransferMode::kDirect;
  Coordinator dcoord(cluster_.get(), direct);
  ExecutionMetrics dm;
  ASSERT_OK_AND_ASSIGN(Dataset d1, dcoord.Execute(mm, &dm));

  CoordinatorOptions relay;
  relay.transfer_mode = TransferMode::kRelay;
  Coordinator rcoord(cluster_.get(), relay);
  ExecutionMetrics rm;
  ASSERT_OK_AND_ASSIGN(Dataset d2, rcoord.Execute(mm, &rm));

  EXPECT_TRUE(d1.LogicallyEquals(d2));
  // Both intermediates (M and N, moved arraydb → linalg) pass through the
  // client only in relay mode; both modes pay the final result delivery.
  EXPECT_LT(dm.bytes_through_client, rm.bytes_through_client);
  EXPECT_GT(rm.data_messages, dm.data_messages);
  // Total intermediate bytes are identical; relay pays them twice. Data is
  // metered at its serialized wire size, so the result delivery (identical
  // in both modes) is isolated the same way.
  int64_t result_wire = static_cast<int64_t>(
      SerializeDatasetWire(d1, cluster_->transport()->NegotiatedFormat(
                                   "linalg", kClientNode))
          .size());
  int64_t intermediate_direct = dm.data_bytes - result_wire;
  int64_t intermediate_relay = rm.data_bytes - result_wire;
  EXPECT_GT(intermediate_direct, 0);
  EXPECT_EQ(intermediate_relay, 2 * intermediate_direct);
}

TEST_F(FederationTest, MixedRelationalArrayQuery) {
  // Regrid on arraydb, then join the result with orders on relstore.
  Coordinator coord(cluster_.get());
  PlanPtr agg_grid = Plan::Regrid(Plan::Scan("M"), {{"i", 4}, {"k", 16}},
                                  AggFunc::kSum);
  // Result: {i*, k*, v}: one row per (i/4); join i-bucket with orders.sensor.
  PlanPtr p = Plan::Join(Plan::Scan("orders"), Plan::Unbox(agg_grid),
                         JoinType::kInner, {"sensor"}, {"i"});
  ExecutionMetrics m;
  ASSERT_OK_AND_ASSIGN(Dataset got, coord.Execute(p, &m));
  EXPECT_TRUE(got.LogicallyEquals(ReferenceResult(p)));
  EXPECT_GE(m.fragments, 2);  // at least arraydb + relstore fragments
  EXPECT_GE(m.nodes_per_server["arraydb"], 1);
  EXPECT_GE(m.nodes_per_server["relstore"], 1);
}

TEST_F(FederationTest, TreeShippingBeatsPerOpCalls) {
  PlanPtr p = Plan::Scan("orders");
  p = Plan::Select(p, Gt(Col("amount"), Lit(10.0)));
  p = Plan::Extend(p, {{"tax", Mul(Col("amount"), Lit(0.2))}});
  p = Plan::Aggregate(p, {"sensor"}, {AggSpec{AggFunc::kSum, Col("tax"), "t"}});
  p = Plan::Sort(p, {{"t", false}});
  p = Plan::Limit(p, 5, 0);

  Coordinator coord(cluster_.get());
  ExecutionMetrics tree, perop;
  ASSERT_OK_AND_ASSIGN(Dataset r1, coord.Execute(p, &tree));
  CoordinatorOptions no_opt;
  no_opt.optimize = false;  // keep the operator count identical
  Coordinator coord2(cluster_.get(), no_opt);
  ASSERT_OK_AND_ASSIGN(Dataset r2, coord2.ExecutePerOp(p, &perop));
  EXPECT_TRUE(r1.LogicallyEquals(r2));
  EXPECT_LT(tree.messages, perop.messages);
  EXPECT_GE(perop.plan_messages, 6);  // one call per operator
  EXPECT_LT(tree.bytes_through_client, perop.bytes_through_client);
}

TEST_F(FederationTest, ProviderSideIterationSavesRoundTrips) {
  SchemaPtr s = MakeSchema({Field::Attr("v", DataType::kFloat64)});
  ASSERT_OK(cluster_->PutData("relstore", "state0",
                              Dataset(MakeTable(s, {{F(1024.0)}}))));
  IterateOp op;
  op.body = Plan::Rename(
      Plan::Project(
          Plan::Extend(Plan::LoopVar(), {{"h", Div(Col("v"), Lit(2.0))}}),
          {"h"}),
      {{"h", "v"}});
  op.max_iters = 8;
  PlanPtr it = Plan::Iterate(Plan::Scan("state0"), op);

  CoordinatorOptions server_side;
  server_side.provider_side_iteration = true;
  Coordinator sc(cluster_.get(), server_side);
  ExecutionMetrics sm;
  ASSERT_OK_AND_ASSIGN(Dataset r1, sc.Execute(it, &sm));

  CoordinatorOptions client_side;
  client_side.provider_side_iteration = false;
  Coordinator cc(cluster_.get(), client_side);
  ExecutionMetrics cm;
  ASSERT_OK_AND_ASSIGN(Dataset r2, cc.Execute(it, &cm));

  EXPECT_TRUE(r1.LogicallyEquals(r2));
  ASSERT_OK_AND_ASSIGN(TablePtr t, r1.AsTable());
  EXPECT_EQ(t->At(0, 0), F(4.0));  // 1024 / 2^8
  EXPECT_EQ(sm.client_loop_iterations, 0);
  EXPECT_EQ(cm.client_loop_iterations, 8);
  EXPECT_LT(sm.messages, cm.messages);
  // Client-driven: at least one plan + one data message per iteration.
  EXPECT_GE(cm.messages, 16);
}

TEST_F(FederationTest, FederatedPageRank) {
  PageRankOp op;
  op.max_iters = 50;
  op.epsilon = 1e-10;
  PlanPtr pr = Plan::PageRank(Plan::Scan("edges"), op);
  Coordinator coord(cluster_.get());
  ExecutionMetrics m;
  ASSERT_OK_AND_ASSIGN(Dataset got, coord.Execute(pr, &m));
  Dataset want = ReferenceResult(pr);
  ASSERT_OK_AND_ASSIGN(TablePtr gt, got.AsTable());
  ASSERT_OK_AND_ASSIGN(TablePtr wt, want.AsTable());
  ASSERT_EQ(gt->num_rows(), wt->num_rows());
  for (int64_t r = 0; r < gt->num_rows(); ++r) {
    EXPECT_EQ(gt->At(r, 0), wt->At(r, 0));
    EXPECT_NEAR(gt->At(r, 1).AsDouble(), wt->At(r, 1).AsDouble(), 1e-9);
  }
  EXPECT_GE(m.nodes_per_server["graphd"], 1);
}

TEST_F(FederationTest, JoinRunsWhereTheBulkierInputLives) {
  // Two relational servers; the fact table dwarfs the dimension table. The
  // size-aware tiebreak must host the join next to the fact data so only
  // the small side ships.
  Cluster two;
  ASSERT_OK(two.AddServer("rel_big", MakeRelationalProvider()));
  ASSERT_OK(two.AddServer("rel_small", MakeRelationalProvider()));
  Rng rng(3);
  SchemaPtr fact = MakeSchema({Field::Attr("k", DataType::kInt64),
                               Field::Attr("v", DataType::kFloat64)});
  TableBuilder fb(fact);
  for (int64_t i = 0; i < 5000; ++i) {
    ASSERT_OK(fb.AppendRow({I(rng.NextInt(0, 9)), F(rng.NextDouble(0, 1))}));
  }
  ASSERT_OK(two.PutData("rel_big", "fact", Dataset(fb.Finish().ValueOrDie())));
  SchemaPtr dim = MakeSchema({Field::Attr("id", DataType::kInt64),
                              Field::Attr("name", DataType::kString)});
  TableBuilder db(dim);
  for (int64_t i = 0; i < 10; ++i) ASSERT_OK(db.AppendRow({I(i), S("x")}));
  ASSERT_OK(two.PutData("rel_small", "dim", Dataset(db.Finish().ValueOrDie())));

  Coordinator coord(&two);
  PlanPtr join = Plan::Join(Plan::Scan("dim"), Plan::Scan("fact"),
                            JoinType::kInner, {"id"}, {"k"});
  ASSERT_OK_AND_ASSIGN(std::string explain, coord.ExplainPlacement(join));
  EXPECT_NE(explain.find("join[inner, id=k]  @rel_big"), std::string::npos)
      << explain;
  // And the execution ships only the small side + result through the wire.
  ExecutionMetrics m;
  ASSERT_OK_AND_ASSIGN(Dataset r, coord.Execute(join, &m));
  EXPECT_GT(r.num_rows(), 0);
  int64_t fact_bytes = two.provider("rel_big")->catalog()->Get("fact")
                           .ValueOrDie()
                           .ByteSize();
  // The dim-side transfer is far smaller than shipping the fact table.
  EXPECT_LT(m.data_bytes - r.ByteSize(), fact_bytes / 10);
}

TEST_F(FederationTest, MissingTableFailsCleanly) {
  Coordinator coord(cluster_.get());
  auto r = coord.Execute(Plan::Scan("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(FederationTest, TempsAreCleanedUp) {
  Coordinator coord(cluster_.get());
  PlanPtr mm = Plan::MatMul(Plan::Scan("M"), Plan::Scan("N"));
  ASSERT_OK(coord.Execute(mm).status());
  for (const std::string& s : cluster_->ServerNames()) {
    for (const std::string& name : cluster_->provider(s)->catalog()->Names()) {
      EXPECT_TRUE(name.find("__frag_") == std::string::npos)
          << "leftover temp " << name << " on " << s;
    }
  }
}

TEST_F(FederationTest, SimulatedTimeTracksBytesAndLatency) {
  TransportOptions slow;
  slow.latency_seconds = 0.05;
  slow.bandwidth_bytes_per_second = 1e6;
  Cluster slow_cluster(slow);
  ASSERT_OK(slow_cluster.AddServer("relstore", MakeRelationalProvider()));
  SchemaPtr s = MakeSchema({Field::Attr("x", DataType::kInt64)});
  TableBuilder b(s);
  for (int64_t i = 0; i < 1000; ++i) ASSERT_OK(b.AppendRow({I(i)}));
  ASSERT_OK(slow_cluster.PutData("relstore", "t", Dataset(b.Finish().ValueOrDie())));
  Coordinator coord(&slow_cluster);
  ExecutionMetrics m;
  ASSERT_OK(coord.Execute(Plan::Scan("t"), &m).status());
  // 2 messages (plan + data) at 50 ms latency plus 8 KB / 1 MB/s.
  EXPECT_GT(m.simulated_seconds, 0.1);
  EXPECT_LT(m.simulated_seconds, 0.2);
}

// ---------------------------------------------------------------------------
// Fault tolerance: retry/backoff, failover replanning, and checkpoints.
// ---------------------------------------------------------------------------

TEST_F(FederationTest, ZeroOverheadWhenFaultsAreOff) {
  // An aggressive retry policy must not change a single metric while the
  // transport injects no faults: the recovery machinery is pure bystander.
  PlanPtr p = Plan::MatMul(Plan::Scan("M"), Plan::Scan("N"), "prod");
  Coordinator plain(cluster_.get());
  ExecutionMetrics pm;
  ASSERT_OK_AND_ASSIGN(Dataset r1, plain.Execute(p, &pm));

  CoordinatorOptions armed;
  armed.retry.max_attempts = 16;
  armed.retry.fragment_timeout_seconds = 0.5;
  armed.retry.checkpoint_every = 1;
  Coordinator guarded(cluster_.get(), armed);
  ExecutionMetrics gm;
  ASSERT_OK_AND_ASSIGN(Dataset r2, guarded.Execute(p, &gm));

  EXPECT_TRUE(r1.LogicallyEquals(r2));
  pm.wall_seconds = gm.wall_seconds = 0.0;  // the only wall-clock field
  EXPECT_EQ(pm.ToString(), gm.ToString());
  EXPECT_EQ(gm.retries, 0);
  EXPECT_EQ(gm.failovers, 0);
  EXPECT_EQ(cluster_->transport()->faults_injected(), 0);
}

TEST_F(FederationTest, RetriesRideOutMessageDrops) {
  FaultOptions f;
  f.enabled = true;
  f.drop_probability = 0.05;
  f.seed = 9;  // a seed whose early draws do lose messages at p = 0.05
  cluster_->transport()->SetFaultOptions(f);

  CoordinatorOptions opts;
  opts.retry.max_attempts = 8;
  Coordinator coord(cluster_.get(), opts);

  // The fixture's representative queries, all under a lossy network.
  std::vector<PlanPtr> queries;
  queries.push_back(Plan::Aggregate(
      Plan::Select(Plan::Scan("orders"), Gt(Col("amount"), Lit(50.0))),
      {"sensor"}, {AggSpec{AggFunc::kSum, Col("amount"), "total"}}));
  queries.push_back(Plan::MatMul(Plan::Scan("M"), Plan::Scan("N"), "prod"));
  queries.push_back(Plan::Join(
      Plan::Scan("orders"),
      Plan::Unbox(Plan::Regrid(Plan::Scan("M"), {{"i", 4}, {"k", 16}},
                               AggFunc::kSum)),
      JoinType::kInner, {"sensor"}, {"i"}));

  int64_t total_retries = 0;
  for (const PlanPtr& q : queries) {
    ExecutionMetrics m;
    ASSERT_OK_AND_ASSIGN(Dataset got, coord.Execute(q, &m));
    EXPECT_TRUE(got.LogicallyEquals(ReferenceResult(q)));
    total_retries += m.retries;
  }
  EXPECT_GT(total_retries, 0);
  EXPECT_GT(cluster_->transport()->faults_injected(), 0);
  EXPECT_GT(cluster_->transport()->failed_messages(), 0);
}

TEST_F(FederationTest, FailoverReplansToReplicaHolder) {
  // orders lives on relstore; replicate it so a second holder exists, then
  // script relstore down for far longer than the retry budget.
  ASSERT_OK(cluster_->Replicate("orders", "reference"));
  FaultOptions f;
  f.enabled = true;
  f.down_windows = {{"relstore", 0.0, 30.0}};
  cluster_->transport()->SetFaultOptions(f);

  Coordinator coord(cluster_.get());
  PlanPtr p = Plan::Aggregate(
      Plan::Select(Plan::Scan("orders"), Gt(Col("amount"), Lit(50.0))),
      {"sensor"}, {AggSpec{AggFunc::kSum, Col("amount"), "total"}});
  ExecutionMetrics m;
  ASSERT_OK_AND_ASSIGN(Dataset got, coord.Execute(p, &m));
  EXPECT_TRUE(got.LogicallyEquals(ReferenceResult(p)));
  EXPECT_GT(m.retries, 0);       // the ship to relstore was retried first
  EXPECT_GE(m.failovers, 1);     // then relstore was written off
  EXPECT_GE(m.replans, 1);       // and the plan re-placed on the replica
  EXPECT_EQ(m.checkpoint_restores, 0);
}

TEST_F(FederationTest, FailoverImpossibleWithoutReplicaFailsRetryably) {
  // No replica: once relstore is excluded, no holder of orders remains.
  FaultOptions f;
  f.enabled = true;
  f.down_windows = {{"relstore", 0.0, 30.0}};
  cluster_->transport()->SetFaultOptions(f);
  Coordinator coord(cluster_.get());
  ExecutionMetrics m;
  auto r = coord.Execute(Plan::Scan("orders"), &m);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(IsRetryable(r.status())) << r.status();
  EXPECT_GT(m.retries, 0);
  // The failed execution must not leak temps anywhere (RAII guard).
  for (const std::string& s : cluster_->ServerNames()) {
    for (const std::string& name : cluster_->provider(s)->catalog()->Names()) {
      EXPECT_TRUE(name.find("__frag_") == std::string::npos)
          << "leftover temp " << name << " on " << s;
    }
  }
}

TEST_F(FederationTest, FragmentTimeoutBudgetCutsRetriesShort) {
  FaultOptions f;
  f.enabled = true;
  f.drop_probability = 1.0;  // nothing ever arrives
  cluster_->transport()->SetFaultOptions(f);
  CoordinatorOptions opts;
  opts.retry.max_attempts = 100;
  opts.retry.initial_backoff_seconds = 0.01;
  opts.retry.fragment_timeout_seconds = 0.05;  // budget < the retry ladder
  Coordinator coord(cluster_.get(), opts);
  ExecutionMetrics m;
  auto r = coord.Execute(Plan::Scan("orders"), &m);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(IsRetryable(r.status()));
  EXPECT_GE(m.timeouts, 1);
  EXPECT_LT(m.retries, 100);  // the budget fired long before max_attempts
}

TEST_F(FederationTest, ClientLoopResumesFromCheckpointAfterMidLoopFailure) {
  SchemaPtr s = MakeSchema({Field::Attr("v", DataType::kFloat64)});
  ASSERT_OK(cluster_->PutData("relstore", "state0",
                              Dataset(MakeTable(s, {{F(1024.0)}}))));
  IterateOp op;
  op.body = Plan::Rename(
      Plan::Project(
          Plan::Extend(Plan::LoopVar(), {{"h", Div(Col("v"), Lit(2.0))}}),
          {"h"}),
      {{"h", "v"}});
  op.max_iters = 8;
  PlanPtr it = Plan::Iterate(Plan::Scan("state0"), op);

  // relstore hosts the loop bodies until it dies mid-loop. Messages land at
  // ~1 ms spacing, so a window opening at 9 ms kills the loop a few
  // iterations in — mid-checkpoint-interval, since checkpoints are 6 apart.
  FaultOptions f;
  f.enabled = true;
  f.down_windows = {{"relstore", 0.009, 60.0}};
  cluster_->transport()->SetFaultOptions(f);

  CoordinatorOptions opts;
  opts.provider_side_iteration = false;  // force the client-driven loop
  opts.retry.checkpoint_every = 6;
  Coordinator coord(cluster_.get(), opts);
  ExecutionMetrics m;
  ASSERT_OK_AND_ASSIGN(Dataset got, coord.Execute(it, &m));
  ASSERT_OK_AND_ASSIGN(TablePtr t, got.AsTable());
  EXPECT_EQ(t->At(0, 0), F(4.0));  // 1024 / 2^8 despite the mid-loop death
  EXPECT_GE(m.checkpoint_restores, 1);
  EXPECT_GE(m.failovers, 1);
  // The rewind re-ran the iterations between the checkpoint and the death.
  EXPECT_GT(m.client_loop_iterations, 8);
}

TEST_F(FederationTest, DownWindowPlusDropsAcceptance) {
  // The acceptance scenario: 5% drops plus one scripted server-down window;
  // every query still completes with correct results and the metrics show
  // the machinery working.
  ASSERT_OK(cluster_->Replicate("orders", "reference"));
  FaultOptions f;
  f.enabled = true;
  f.drop_probability = 0.05;
  f.seed = 21;  // early draws include a drop at p = 0.05
  f.down_windows = {{"relstore", 0.0, 10.0}};
  cluster_->transport()->SetFaultOptions(f);

  CoordinatorOptions opts;
  opts.retry.max_attempts = 8;
  Coordinator coord(cluster_.get(), opts);

  std::vector<PlanPtr> queries;
  queries.push_back(Plan::Aggregate(
      Plan::Select(Plan::Scan("orders"), Gt(Col("amount"), Lit(50.0))),
      {"sensor"}, {AggSpec{AggFunc::kSum, Col("amount"), "total"}}));
  queries.push_back(Plan::MatMul(Plan::Scan("M"), Plan::Scan("N"), "prod"));
  PageRankOp pr;
  queries.push_back(Plan::PageRank(Plan::Scan("edges"), pr));

  int64_t retries = 0, failovers = 0;
  for (const PlanPtr& q : queries) {
    ExecutionMetrics m;
    ASSERT_OK_AND_ASSIGN(Dataset got, coord.Execute(q, &m));
    EXPECT_TRUE(got.LogicallyEquals(ReferenceResult(q)));
    retries += m.retries;
    failovers += m.failovers;
  }
  EXPECT_GT(retries, 0);
  EXPECT_GE(failovers, 1);
}

// --- Binary wire format + plan-fingerprint cache (E13) ---------------------

TEST_F(FederationTest, BinaryWireMatchesTextResultsAndMovesFewerBytes) {
  PlanPtr q = Plan::Join(
      Plan::Scan("orders"),
      Plan::Unbox(Plan::Regrid(Plan::Scan("M"), {{"i", 4}, {"k", 16}},
                               AggFunc::kSum)),
      JoinType::kInner, {"sensor"}, {"i"});

  SetWireFormatOverride(WireFormat::kText);
  Coordinator text_coord(cluster_.get());
  ExecutionMetrics text_m;
  Result<Dataset> text_r = text_coord.Execute(q, &text_m);
  ClearWireFormatOverride();
  ASSERT_OK(text_r.status());

  Coordinator bin_coord(cluster_.get());
  ExecutionMetrics bin_m;
  ASSERT_OK_AND_ASSIGN(Dataset bin_d, bin_coord.Execute(q, &bin_m));

  // Value identity across formats, against each other and the reference.
  EXPECT_TRUE(bin_d.LogicallyEquals(text_r.ValueOrDie()));
  EXPECT_TRUE(bin_d.LogicallyEquals(ReferenceResult(q)));
  // Same conversation shape, smaller payloads.
  EXPECT_EQ(bin_m.messages, text_m.messages);
  EXPECT_LT(bin_m.bytes_total, text_m.bytes_total);
}

TEST_F(FederationTest, TextOnlyPeerNegotiatesFallbackAndStillAnswers) {
  auto cluster = std::make_unique<Cluster>();
  ASSERT_OK(cluster->AddServer("modern", MakeRelationalProvider()));
  ASSERT_OK(cluster->AddServer(
      "legacy", MakeReferenceProvider(/*text_only=*/true)));
  SchemaPtr s = MakeSchema({Field::Attr("x", DataType::kInt64),
                            Field::Attr("y", DataType::kFloat64)});
  TablePtr t = MakeTable(s, {{I(1), F(2.0)}, {I(2), F(4.0)}, {I(3), F(8.0)}});
  ASSERT_OK(cluster->PutData("legacy", "t", Dataset(t)));

  EXPECT_EQ(cluster->transport()->NegotiatedFormat("legacy", kClientNode),
            WireFormat::kText);
  EXPECT_EQ(cluster->transport()->NegotiatedFormat("modern", kClientNode),
            WireFormat::kBinary);

  Coordinator coord(cluster.get());
  PlanPtr q = Plan::Aggregate(Plan::Scan("t"), {},
                              {AggSpec{AggFunc::kSum, Col("y"), "total"}});
  ASSERT_OK_AND_ASSIGN(Dataset d, coord.Execute(q));
  ASSERT_EQ(d.table()->num_rows(), 1);
  ASSERT_OK_AND_ASSIGN(const Column* total, d.table()->ColumnByName("total"));
  EXPECT_DOUBLE_EQ(total->GetValue(0).AsDouble(), 14.0);
}

TEST_F(FederationTest, RepeatedExecuteHitsProviderPlanCache) {
  PlanPtr q = Plan::Aggregate(
      Plan::Select(Plan::Scan("orders"), Gt(Col("amount"), Lit(50.0))),
      {"sensor"}, {AggSpec{AggFunc::kSum, Col("amount"), "total"}});

  Coordinator coord(cluster_.get());
  ExecutionMetrics m1, m2;
  ASSERT_OK_AND_ASSIGN(Dataset d1, coord.Execute(q, &m1));
  ASSERT_OK_AND_ASSIGN(Dataset d2, coord.Execute(q, &m2));
  EXPECT_TRUE(d1.LogicallyEquals(d2));

  // First execution ships the full plan (a cache miss on the provider);
  // the second sends a fixed-size fingerprint reference.
  EXPECT_EQ(m1.plan_cache_hits, 0);
  EXPECT_GE(m1.plan_cache_misses, 1);
  EXPECT_GE(m2.plan_cache_hits, 1);
  EXPECT_GT(m2.wire_bytes_saved, 0);
  EXPECT_LT(m2.plan_bytes, m1.plan_bytes);

  // With the cache off, repeat executions keep re-shipping the full plan.
  CoordinatorOptions off;
  off.plan_cache = false;
  Coordinator cold(cluster_.get(), off);
  ExecutionMetrics c1, c2;
  ASSERT_OK(cold.Execute(q, &c1).status());
  ASSERT_OK(cold.Execute(q, &c2).status());
  EXPECT_EQ(c1.plan_cache_hits, 0);
  EXPECT_EQ(c2.plan_cache_hits, 0);
  EXPECT_EQ(c2.plan_bytes, c1.plan_bytes);
}

TEST_F(FederationTest, ClientLoopShipsBodyOnceAndBindingsPerRound) {
  SchemaPtr s = MakeSchema({Field::Attr("v", DataType::kFloat64)});
  ASSERT_OK(cluster_->PutData("relstore", "state0",
                              Dataset(MakeTable(s, {{F(1024.0)}}))));
  IterateOp op;
  op.body = Plan::Rename(
      Plan::Project(
          Plan::Extend(Plan::LoopVar(), {{"h", Div(Col("v"), Lit(2.0))}}),
          {"h"}),
      {{"h", "v"}});
  op.max_iters = 8;
  PlanPtr it = Plan::Iterate(Plan::Scan("state0"), op);

  CoordinatorOptions cached;
  cached.provider_side_iteration = false;
  cached.plan_cache = true;
  Coordinator hot(cluster_.get(), cached);
  ExecutionMetrics hot_m;
  ASSERT_OK_AND_ASSIGN(Dataset hot_d, hot.Execute(it, &hot_m));

  CoordinatorOptions uncached = cached;
  uncached.plan_cache = false;
  Coordinator cold(cluster_.get(), uncached);
  ExecutionMetrics cold_m;
  ASSERT_OK_AND_ASSIGN(Dataset cold_d, cold.Execute(it, &cold_m));

  // Identical fixpoint either way: 1024 / 2^8 = 4.
  EXPECT_TRUE(hot_d.LogicallyEquals(cold_d));
  ASSERT_OK_AND_ASSIGN(const Column* vc, hot_d.table()->ColumnByName("v"));
  EXPECT_DOUBLE_EQ(vc->GetValue(0).AsDouble(), 4.0);

  // The body template travels once; rounds 2..8 hit the provider cache.
  EXPECT_GE(hot_m.plan_cache_hits, op.max_iters - 1);
  EXPECT_EQ(cold_m.plan_cache_hits, 0);
  EXPECT_LT(hot_m.plan_bytes, cold_m.plan_bytes);
  // Same loop, same conversation shape: only payload contents changed.
  EXPECT_EQ(hot_m.messages, cold_m.messages);

  // The cache shows up in the human-readable execution report.
  ASSERT_OK_AND_ASSIGN(std::string report, hot.ExplainAnalyze(it));
  EXPECT_NE(report.find("plan-cache"), std::string::npos) << report;
}

// Chaos determinism: the fault model draws once per message, so identical
// conversations must yield identical fault decisions regardless of wire
// format or plan caching. Each arm gets a fresh, identically seeded cluster
// because the fault RNG advances with every message ever sent through it.
class WireChaosTest : public ::testing::Test {
 protected:
  static std::unique_ptr<Cluster> BuildCluster() {
    auto cluster = std::make_unique<Cluster>();
    EXPECT_OK(cluster->AddServer("relstore", MakeRelationalProvider()));
    EXPECT_OK(cluster->AddServer("reference", MakeReferenceProvider()));
    Rng rng(3);
    SchemaPtr orders = MakeSchema({Field::Attr("sensor", DataType::kInt64),
                                   Field::Attr("amount", DataType::kFloat64)});
    TableBuilder ob(orders);
    for (int64_t i = 0; i < 120; ++i) {
      EXPECT_OK(
          ob.AppendRow({I(rng.NextInt(0, 9)), F(rng.NextDouble(0, 100))}));
    }
    EXPECT_OK(cluster->PutData("relstore", "orders",
                               Dataset(ob.Finish().ValueOrDie())));
    SchemaPtr s = MakeSchema({Field::Attr("v", DataType::kFloat64)});
    EXPECT_OK(cluster->PutData("relstore", "state0",
                               Dataset(MakeTable(s, {{F(512.0)}}))));
    return cluster;
  }

  // Runs the same lossy workload and returns the fault decision sequence:
  // (what, from, to) only — payload sizes legitimately differ across arms.
  static std::vector<std::string> RunArm(WireFormat format, bool plan_cache) {
    std::unique_ptr<Cluster> cluster = BuildCluster();
    if (format == WireFormat::kText) SetWireFormatOverride(WireFormat::kText);
    FaultOptions f;
    f.enabled = true;
    f.drop_probability = 0.08;
    f.latency_spike_probability = 0.1;
    f.seed = 11;
    cluster->transport()->SetFaultOptions(f);

    CoordinatorOptions opts;
    opts.thread_count = 1;  // sequential dispatch, reproducible trace
    opts.plan_cache = plan_cache;
    opts.provider_side_iteration = false;
    opts.retry.max_attempts = 10;
    Coordinator coord(cluster.get(), opts);

    PlanPtr agg = Plan::Aggregate(
        Plan::Select(Plan::Scan("orders"), Gt(Col("amount"), Lit(25.0))),
        {"sensor"}, {AggSpec{AggFunc::kSum, Col("amount"), "total"}});
    IterateOp op;
    op.body = Plan::Rename(
        Plan::Project(
            Plan::Extend(Plan::LoopVar(), {{"h", Div(Col("v"), Lit(2.0))}}),
            {"h"}),
        {{"h", "v"}});
    op.max_iters = 6;
    PlanPtr loop = Plan::Iterate(Plan::Scan("state0"), op);

    EXPECT_OK(coord.Execute(agg).status());
    EXPECT_OK(coord.Execute(agg).status());  // cached arm sends EXEC refs here
    EXPECT_OK(coord.Execute(loop).status());
    if (format == WireFormat::kText) ClearWireFormatOverride();

    std::vector<std::string> decisions;
    for (const FaultEvent& e : cluster->transport()->fault_log()) {
      decisions.push_back(e.what + " " + e.from + "->" + e.to);
    }
    return decisions;
  }
};

TEST_F(WireChaosTest, FaultDecisionsInvariantAcrossWireFormatAndCache) {
  std::vector<std::string> base = RunArm(WireFormat::kBinary, true);
  EXPECT_FALSE(base.empty());  // the arm must actually exercise faults
  EXPECT_EQ(RunArm(WireFormat::kText, true), base);
  EXPECT_EQ(RunArm(WireFormat::kBinary, false), base);
  EXPECT_EQ(RunArm(WireFormat::kText, false), base);
}

}  // namespace
}  // namespace nexus
