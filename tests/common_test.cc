// Unit tests for src/common: Status/Result, string utils, RNG, hashing.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/cancel.h"
#include "common/hash.h"
#include "common/memory.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/str_util.h"
#include "tests/test_util.h"

namespace nexus {
namespace {

TEST(StatusTest, OkIsDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad thing");
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::NotFound("x").WithContext("loading y");
  EXPECT_EQ(s.ToString(), "Not found: loading y: x");
  EXPECT_TRUE(Status::OK().WithContext("ignored").ok());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 16; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, ResourceExhaustedAndCancelled) {
  Status re = Status::ResourceExhausted("queue full");
  EXPECT_TRUE(re.IsResourceExhausted());
  EXPECT_EQ(re.ToString(), "Resource exhausted: queue full");
  Status c = Status::Cancelled("client gave up");
  EXPECT_TRUE(c.IsCancelled());
  EXPECT_EQ(c.ToString(), "Cancelled: client gave up");
}

TEST(StatusTest, RetryableCodes) {
  // Overload (kResourceExhausted) is transient — a client that backs off
  // may succeed. An explicit cancellation is final.
  EXPECT_TRUE(IsRetryable(Status::Unavailable("down")));
  EXPECT_TRUE(IsRetryable(Status::Timeout("slow")));
  EXPECT_TRUE(IsRetryable(Status::ResourceExhausted("busy")));
  EXPECT_FALSE(IsRetryable(Status::Cancelled("stop")));
  EXPECT_FALSE(IsRetryable(Status::Internal("bug")));
  EXPECT_FALSE(IsRetryable(Status::OK()));
}

TEST(StatusTest, CopyPreservesError) {
  Status a = Status::TypeError("t");
  Status b = a;
  EXPECT_TRUE(b.IsTypeError());
  EXPECT_EQ(b.message(), "t");
}

TEST(CancelTokenTest, FirstCancelWins) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_OK(token.status());
  token.Cancel(StatusCode::kResourceExhausted, "killed by governor");
  token.Cancel(StatusCode::kTimeout, "deadline too");  // ignored
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.status().IsResourceExhausted());
  EXPECT_EQ(token.status().message(), "killed by governor");
}

TEST(TaskContextTest, ScopedInstallAndMeter) {
  EXPECT_EQ(CurrentTaskContext(), nullptr);
  EXPECT_EQ(CurrentMemoryMeter(), nullptr);
  struct CountingMeter : MemoryMeter {
    int64_t total = 0;
    void Charge(int64_t bytes) override { total += bytes; }
  } meter;
  TaskContext ctx;
  ctx.weight = 4;
  ctx.meter = &meter;
  {
    ScopedTaskContext scoped(&ctx);
    ASSERT_NE(CurrentTaskContext(), nullptr);
    EXPECT_EQ(CurrentTaskContext()->weight, 4);
    EXPECT_EQ(CurrentMemoryMeter(), &meter);
    ChargeAllocation(128);
    ChargeAllocation(-5);  // ignored
  }
  EXPECT_EQ(meter.total, 128);
  EXPECT_EQ(CurrentTaskContext(), nullptr);
}

TEST(TaskContextTest, CancelDrainsParallelFor) {
  CancelToken token;
  TaskContext ctx;
  ctx.cancel = &token;
  ScopedTaskContext scoped(&ctx);
  token.Cancel(StatusCode::kCancelled, "stop before the region starts");
  std::atomic<int64_t> ran{0};
  // A cancelled region drains without running its body and without
  // deadlocking the pool — both the pooled and the inline path.
  ParallelFor(
      1000, 1, [&](int64_t, int64_t) { ran.fetch_add(1); }, /*threads=*/4);
  EXPECT_EQ(ran.load(), 0);
  ParallelFor(
      1000, 1, [&](int64_t, int64_t) { ran.fetch_add(1); }, /*threads=*/1);
  EXPECT_EQ(ran.load(), 0);
  std::vector<std::function<void()>> tasks(8, [&] { ran.fetch_add(1); });
  ParallelRun(tasks, /*threads=*/4);
  EXPECT_EQ(ran.load(), 0);
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Result<int> Doubled(int v) {
  NEXUS_ASSIGN_OR_RETURN(int x, ParsePositive(v));
  return x * 2;
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = ParsePositive(3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.ValueOrDie(), 3);
  EXPECT_EQ(*ok, 3);
  Result<int> err = ParsePositive(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsInvalidArgument());
  EXPECT_EQ(err.ValueOr(42), 42);
  EXPECT_EQ(ok.ValueOr(42), 3);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubled(5).ValueOrDie(), 10);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = r.MoveValue();
  EXPECT_EQ(*p, 7);
}

TEST(StrUtilTest, StrCat) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StrUtilTest, SplitAndJoin) {
  EXPECT_EQ(Split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Join({"x", "y", "z"}, "-"), "x-y-z");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StrUtilTest, Affixes) {
  EXPECT_TRUE(StartsWith("prefix_x", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
  EXPECT_TRUE(EndsWith("file.txt", ".txt"));
  EXPECT_FALSE(EndsWith("txt", "file.txt"));
}

TEST(StrUtilTest, TrimAndLower) {
  EXPECT_EQ(Trim("  a b \t\n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(ToLower("AbC9"), "abc9");
}

TEST(StrUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(0.125), "0.125");
  EXPECT_EQ(FormatDouble(-2.0), "-2");
}

TEST(StrUtilTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1536), "1.50 KiB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.00 MiB");
}

TEST(StrUtilTest, EscapeString) {
  EXPECT_EQ(EscapeString("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, StringHasRequestedLength) {
  Rng rng(1);
  EXPECT_EQ(rng.NextString(12).size(), 12u);
  for (char c : rng.NextString(100)) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(ZipfTest, InRangeAndSkewed) {
  ZipfGenerator zipf(1000, 0.99, 5);
  std::vector<int64_t> counts(1000, 0);
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = zipf.Next();
    ASSERT_LT(v, 1000u);
    counts[v]++;
  }
  // Head items should dominate the tail under theta ~= 1.
  int64_t head = counts[0] + counts[1] + counts[2];
  int64_t tail = counts[997] + counts[998] + counts[999];
  EXPECT_GT(head, 10 * std::max<int64_t>(tail, 1));
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfGenerator zipf(10, 0.0, 5);
  std::vector<int64_t> counts(10, 0);
  for (int i = 0; i < 10000; ++i) counts[zipf.Next()]++;
  for (int64_t c : counts) EXPECT_GT(c, 700);
}

TEST(HashTest, IntHashAvalanches) {
  EXPECT_NE(HashInt64(1), HashInt64(2));
  // fmix64 fixes 0; any nonzero input must move far from itself.
  EXPECT_EQ(HashInt64(0), 0u);
  EXPECT_NE(HashInt64(1), 1u);
}

TEST(HashTest, StringHashDiffers) {
  EXPECT_NE(HashString("a"), HashString("b"));
  EXPECT_EQ(HashString("abc"), HashString("abc"));
}

TEST(HashTest, CombineOrderSensitive) {
  EXPECT_NE(HashCombine(HashInt64(1), HashInt64(2)),
            HashCombine(HashInt64(2), HashInt64(1)));
}

}  // namespace
}  // namespace nexus
