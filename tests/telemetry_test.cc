// Telemetry subsystem tests: the metrics registry, span tracer, wire-header
// propagation, Chrome trace export, EXPLAIN ANALYZE, and the two contracts
// the rest of the repo depends on —
//   1. ExecutionMetrics is a per-call delta view over cumulative registry
//      counters (repeated Execute calls never double-count), and
//   2. with tracing disabled, execution is behaviorally identical (same
//      metered bytes, same fault traces) to a build without telemetry.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/random.h"
#include "expr/builder.h"
#include "federation/coordinator.h"
#include "telemetry/explain.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_export.h"
#include "tests/test_util.h"

namespace nexus {
namespace {

using namespace nexus::exprs;  // NOLINT
using testing::F;
using testing::I;
using testing::MakeSchema;

/// Restores a clean telemetry state around every test in this file.
struct TelemetryGuard {
  TelemetryGuard() {
    telemetry::SetEnabled(false);
    telemetry::ClearSpans();
  }
  ~TelemetryGuard() {
    telemetry::SetEnabled(false);
    telemetry::ClearSpans();
  }
};

// ---------------------------------------------------------------------------
// Minimal JSON syntax validator (objects/arrays/strings/numbers/literals).
// Enough to prove the Chrome trace export is loadable; Perfetto and Python's
// json module accept a superset.
// ---------------------------------------------------------------------------

struct JsonCursor {
  const std::string& s;
  size_t at = 0;

  void SkipWs() {
    while (at < s.size() && (s[at] == ' ' || s[at] == '\n' || s[at] == '\t' ||
                             s[at] == '\r')) {
      ++at;
    }
  }
  bool Eat(char c) {
    SkipWs();
    if (at < s.size() && s[at] == c) {
      ++at;
      return true;
    }
    return false;
  }
};

bool ParseJsonValue(JsonCursor* c);

bool ParseJsonString(JsonCursor* c) {
  if (!c->Eat('"')) return false;
  while (c->at < c->s.size() && c->s[c->at] != '"') {
    if (c->s[c->at] == '\\') ++c->at;
    ++c->at;
  }
  return c->at < c->s.size() && c->s[c->at++] == '"';
}

bool ParseJsonValue(JsonCursor* c) {
  c->SkipWs();
  if (c->at >= c->s.size()) return false;
  char ch = c->s[c->at];
  if (ch == '{') {
    ++c->at;
    if (c->Eat('}')) return true;
    do {
      if (!ParseJsonString(c)) return false;
      if (!c->Eat(':')) return false;
      if (!ParseJsonValue(c)) return false;
    } while (c->Eat(','));
    return c->Eat('}');
  }
  if (ch == '[') {
    ++c->at;
    if (c->Eat(']')) return true;
    do {
      if (!ParseJsonValue(c)) return false;
    } while (c->Eat(','));
    return c->Eat(']');
  }
  if (ch == '"') return ParseJsonString(c);
  if (c->s.compare(c->at, 4, "true") == 0) return c->at += 4, true;
  if (c->s.compare(c->at, 5, "false") == 0) return c->at += 5, true;
  if (c->s.compare(c->at, 4, "null") == 0) return c->at += 4, true;
  // Number.
  size_t start = c->at;
  if (ch == '-') ++c->at;
  while (c->at < c->s.size() &&
         (std::isdigit(static_cast<unsigned char>(c->s[c->at])) ||
          c->s[c->at] == '.' || c->s[c->at] == 'e' || c->s[c->at] == 'E' ||
          c->s[c->at] == '+' || c->s[c->at] == '-')) {
    ++c->at;
  }
  return c->at > start;
}

bool IsValidJson(const std::string& s) {
  JsonCursor c{s};
  if (!ParseJsonValue(&c)) return false;
  c.SkipWs();
  return c.at == s.size();
}

// ---------------------------------------------------------------------------
// Metrics registry.
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, InstrumentsAreLazyStableAndShared) {
  telemetry::MetricsRegistry reg;
  telemetry::Counter* a = reg.counter("test.hits");
  telemetry::Counter* b = reg.counter("test.hits");
  EXPECT_EQ(a, b);  // same name, same instrument, pointer stable
  a->Increment();
  a->Add(4);
  EXPECT_EQ(b->value(), 5);

  telemetry::Gauge* g = reg.gauge("test.level");
  g->Set(2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("test.level")->value(), 2.5);

  auto values = reg.CounterValues();
  EXPECT_EQ(values["test.hits"], 5);
  EXPECT_NE(reg.ToString().find("test.hits"), std::string::npos);

  reg.ResetForTest();
  EXPECT_EQ(a->value(), 0);  // zeroed in place; the pointer stays valid
}

TEST(MetricsRegistryTest, HistogramBucketsMeanAndQuantile) {
  telemetry::Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.ApproxQuantile(0.5), 0.0);
  for (int i = 0; i < 8; ++i) h.Record(10.0);
  h.Record(1000.0);
  EXPECT_EQ(h.count(), 9);
  EXPECT_NEAR(h.mean(), (8 * 10.0 + 1000.0) / 9.0, 1e-9);
  // The median lands in 10.0's bucket; its upper edge is 16.
  EXPECT_DOUBLE_EQ(h.ApproxQuantile(0.5), 16.0);
  // The max quantile covers the 1000.0 outlier's bucket (upper edge 1024).
  EXPECT_DOUBLE_EQ(h.ApproxQuantile(1.0), 1024.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

// ---------------------------------------------------------------------------
// Span tracer.
// ---------------------------------------------------------------------------

TEST(SpanTest, DisabledGuardIsInertAndRecordsNothing) {
  TelemetryGuard guard;
  int64_t before = telemetry::SpanCount();
  {
    telemetry::SpanGuard span(telemetry::kCategoryEngine, "noop");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.id(), 0u);
    span.AddCounter("rows", 1);  // must be a no-op, not a crash
  }
  EXPECT_EQ(telemetry::SpanCount(), before);
}

TEST(SpanTest, NestedGuardsParentAndIdsAreDeterministic) {
  TelemetryGuard guard;
  telemetry::SetEnabled(true);
  {
    telemetry::SpanGuard outer(telemetry::kCategoryCoordinator, "outer");
    EXPECT_TRUE(outer.active());
    EXPECT_EQ(outer.id(), 1u);
    EXPECT_EQ(outer.trace(), 1u);
    {
      telemetry::SpanGuard inner(telemetry::kCategoryOperator, "inner");
      EXPECT_EQ(inner.id(), 2u);
      EXPECT_EQ(inner.trace(), outer.trace());
      inner.AddCounter("rows", 42);
    }
  }
  std::vector<telemetry::SpanRecord> spans = telemetry::Spans();
  ASSERT_EQ(spans.size(), 2u);  // completion order: inner first
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].parent, 1u);
  EXPECT_EQ(spans[0].CounterOr("rows", -1), 42);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent, 0u);  // root
  EXPECT_GE(spans[1].wall_dur_us, spans[0].wall_dur_us);

  // ClearSpans resets the id counters: a rerun traces identically.
  telemetry::ClearSpans();
  telemetry::SpanGuard again(telemetry::kCategoryCoordinator, "outer");
  EXPECT_EQ(again.id(), 1u);
}

TEST(SpanTest, MorselSpansParentUnderTheSubmittingSpan) {
  TelemetryGuard guard;
  telemetry::SetEnabled(true);
  uint64_t region_parent = 0;
  {
    telemetry::SpanGuard op(telemetry::kCategoryOperator, "scan-like");
    region_parent = op.id();
    std::atomic<int64_t> sum{0};
    ParallelFor(
        8, 1, [&](int64_t b, int64_t e) { sum.fetch_add(e - b); },
        /*threads=*/2);
    EXPECT_EQ(sum.load(), 8);
  }
  int64_t morsels = 0;
  for (const telemetry::SpanRecord& s : telemetry::Spans()) {
    if (std::string(s.category) != telemetry::kCategoryMorsel) continue;
    ++morsels;
    EXPECT_EQ(s.parent, region_parent);
    EXPECT_GE(s.CounterOr("index", -1), 0);
  }
  EXPECT_EQ(morsels, 8);
}

TEST(WireHeaderTest, RoundTripsAndIgnoresHeaderlessWires) {
  std::string header = telemetry::WireHeader(7, 42, "relstore");
  std::string wire = header + "PAYLOAD";
  telemetry::TraceContext ctx;
  size_t offset = telemetry::StripWireHeader(wire, &ctx);
  ASSERT_NE(offset, 0u);
  EXPECT_EQ(wire.substr(offset), "PAYLOAD");
  EXPECT_EQ(ctx.trace, 7u);
  EXPECT_EQ(ctx.parent, 42u);
  EXPECT_EQ(ctx.server, "relstore");

  telemetry::TraceContext untouched;
  EXPECT_EQ(telemetry::StripWireHeader("PLAIN WIRE", &untouched), 0u);
  EXPECT_EQ(untouched.trace, 0u);
  // Short wires must not read out of bounds.
  EXPECT_EQ(telemetry::StripWireHeader("%", &untouched), 0u);
}

// ---------------------------------------------------------------------------
// Federated tracing end to end.
// ---------------------------------------------------------------------------

// Two matrix holders plus a linalg specialist: MatMul lands on linalg and
// both scans are remote fragments, so a single query touches three servers.
void FillMatMulCluster(Cluster* cluster) {
  ASSERT_OK(cluster->AddServer("relstore", MakeRelationalProvider()));
  ASSERT_OK(cluster->AddServer("relsmall", MakeRelationalProvider()));
  ASSERT_OK(cluster->AddServer("linalg", MakeLinalgProvider()));
  ASSERT_OK(cluster->AddServer("reference", MakeReferenceProvider()));
  auto matrix = [](uint64_t seed, const char* d0, const char* d1,
                   const char* attr) {
    Rng rng(seed);
    SchemaPtr s = MakeSchema({Field::Dim(d0), Field::Dim(d1),
                              Field::Attr(attr, DataType::kFloat64)});
    TableBuilder b(s);
    for (int64_t r = 0; r < 8; ++r) {
      for (int64_t c = 0; c < 8; ++c) {
        EXPECT_OK(b.AppendRow({I(r), I(c), F(rng.NextDouble(0.1, 1.0))}));
      }
    }
    return Dataset(b.Finish().ValueOrDie());
  };
  ASSERT_OK(cluster->PutData("relstore", "MA", matrix(31, "i", "k", "a")));
  ASSERT_OK(cluster->PutData("relsmall", "MB", matrix(32, "k", "j", "b")));
}

TEST(FederatedTraceTest, FaultyMultiServerQueryExportsOneStitchedTrace) {
  TelemetryGuard guard;
  Cluster cluster;
  FillMatMulCluster(&cluster);
  FaultOptions f;
  f.enabled = true;
  f.drop_probability = 0.25;
  f.seed = 7;
  cluster.transport()->SetFaultOptions(f);
  CoordinatorOptions opts;
  opts.retry.max_attempts = 8;
  opts.thread_count = 1;
  Coordinator coord(&cluster, opts);
  PlanPtr mm = Plan::MatMul(Plan::Scan("MA"), Plan::Scan("MB"), "c");

  telemetry::SetEnabled(true);
  // Several queries share the deterministic fault stream; at least one must
  // hit a drop and retry. That query's trace is the acceptance exhibit.
  uint64_t trace = 0;
  for (int q = 0; q < 4 && trace == 0; ++q) {
    ExecutionMetrics m;
    ASSERT_OK(coord.Execute(mm, &m).status());
    if (m.retries > 0) trace = coord.last_trace_id();
  }
  ASSERT_NE(trace, 0u) << "no query hit a fault + retry";

  // One stitched tree: every span of the chosen trace shares its id, and
  // the spans cover the client plus at least two distinct servers.
  std::set<std::string> servers;
  bool saw_retry_event = false, saw_server_span = false, saw_operator = false;
  for (const telemetry::SpanRecord& s : telemetry::Spans()) {
    if (s.trace != trace) continue;
    if (!s.server.empty()) servers.insert(s.server);
    if (s.name.compare(0, 5, "retry") == 0) saw_retry_event = true;
    if (std::string(s.category) == telemetry::kCategoryServer) {
      saw_server_span = true;
    }
    if (std::string(s.category) == telemetry::kCategoryOperator) {
      saw_operator = true;
    }
  }
  EXPECT_GE(servers.size(), 2u) << "trace does not span multiple servers";
  EXPECT_TRUE(saw_retry_event);
  EXPECT_TRUE(saw_server_span) << "no provider-side span was stitched in";
  EXPECT_TRUE(saw_operator);

  // The Chrome export of that one trace is valid JSON with one process per
  // server, and round-trips through WriteChromeTrace.
  std::string json = telemetry::ToChromeTraceJson(telemetry::Spans(), trace);
  EXPECT_TRUE(IsValidJson(json)) << json.substr(0, 400);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"linalg\""), std::string::npos);
  ASSERT_OK(telemetry::WriteChromeTrace("telemetry_test_trace.json",
                                        telemetry::Spans(), trace));
}

TEST(FederatedTraceTest, ExplainAnalyzeShowsFragmentsRowsAndServers) {
  TelemetryGuard guard;
  Cluster cluster;
  FillMatMulCluster(&cluster);
  CoordinatorOptions opts;
  opts.thread_count = 1;
  Coordinator coord(&cluster, opts);
  PlanPtr mm = Plan::MatMul(Plan::Scan("MA"), Plan::Scan("MB"), "c");

  ExecutionMetrics m;
  auto report = coord.ExplainAnalyze(mm, &m);
  ASSERT_OK(report.status());
  const std::string& text = report.ValueOrDie();
  EXPECT_NE(text.find("query"), std::string::npos);
  EXPECT_NE(text.find("fragment -> linalg"), std::string::npos);
  EXPECT_NE(text.find("@linalg"), std::string::npos);
  EXPECT_NE(text.find("rows="), std::string::npos);
  EXPECT_NE(text.find("bytes="), std::string::npos);
  EXPECT_NE(text.find("wall="), std::string::npos);
  EXPECT_NE(text.find("sim="), std::string::npos);
  EXPECT_GT(m.fragments, 0);  // metrics ride along
  // ExplainAnalyze restores the caller's tracing state (disabled here).
  EXPECT_FALSE(telemetry::Enabled());
}

// ---------------------------------------------------------------------------
// ExecutionMetrics = per-call delta view (no double-counting).
// ---------------------------------------------------------------------------

TEST(MetricsDeltaTest, RepeatedExecutesOnOneCoordinatorDoNotAccumulate) {
  TelemetryGuard guard;
  Cluster cluster;
  FillMatMulCluster(&cluster);
  CoordinatorOptions opts;
  opts.thread_count = 1;
  // This test pins identical per-call accounting across re-executions; the
  // plan cache would legitimately shrink later calls (fingerprint references
  // instead of full plans), so it is held off here.
  opts.plan_cache = false;
  Coordinator coord(&cluster, opts);
  PlanPtr mm = Plan::MatMul(Plan::Scan("MA"), Plan::Scan("MB"), "c");

  int64_t fragments0 = telemetry::MetricsRegistry::Global()
                           .counter("coordinator.fragments")
                           ->value();
  ExecutionMetrics first;
  ASSERT_OK(coord.Execute(mm, &first).status());
  ASSERT_GT(first.fragments, 0);
  ASSERT_GT(first.messages, 0);
  for (int q = 0; q < 3; ++q) {
    ExecutionMetrics again;
    ASSERT_OK(coord.Execute(mm, &again).status());
    // Identical query, identical per-call accounting — cumulative registry
    // counters must not leak into later calls.
    EXPECT_EQ(again.fragments, first.fragments) << "call " << q;
    EXPECT_EQ(again.messages, first.messages) << "call " << q;
    // Bytes may drift by a few: fragment temp names (__frag_N) embed a
    // monotonic counter that eventually gains a digit. Double-counting
    // would show up as a ~2x jump, not single bytes.
    EXPECT_NEAR(static_cast<double>(again.bytes_total),
                static_cast<double>(first.bytes_total), 8.0)
        << "call " << q;
    EXPECT_EQ(again.retries, 0) << "call " << q;
  }
  // Meanwhile the registry view is cumulative across all four calls.
  int64_t fragments_cum = telemetry::MetricsRegistry::Global()
                              .counter("coordinator.fragments")
                              ->value() -
                          fragments0;
  EXPECT_EQ(fragments_cum, 4 * first.fragments);
}

// ---------------------------------------------------------------------------
// Disabled telemetry is behaviorally invisible.
// ---------------------------------------------------------------------------

std::string MeteredRun(const PlanPtr& plan) {
  Cluster cluster;
  FillMatMulCluster(&cluster);
  FaultOptions f;
  f.enabled = true;
  f.drop_probability = 0.3;
  f.latency_spike_probability = 0.1;
  f.seed = 5;
  cluster.transport()->SetFaultOptions(f);
  CoordinatorOptions opts;
  opts.retry.max_attempts = 8;
  opts.thread_count = 1;
  Coordinator coord(&cluster, opts);
  std::string out;
  for (int q = 0; q < 3; ++q) {
    ExecutionMetrics m;
    EXPECT_OK(coord.Execute(plan, &m).status());
    m.wall_seconds = 0.0;  // the only nondeterministic field
    out += m.ToString() + "\n";
  }
  for (const FaultEvent& e : cluster.transport()->fault_log()) {
    out += e.ToString() + "\n";
  }
  return out;
}

TEST(DisabledTelemetryTest, TogglingTracingLeavesDisabledRunsByteIdentical) {
  TelemetryGuard guard;
  PlanPtr mm = Plan::MatMul(Plan::Scan("MA"), Plan::Scan("MB"), "c");

  std::string before = MeteredRun(mm);
  telemetry::SetEnabled(true);
  std::string traced = MeteredRun(mm);
  telemetry::SetEnabled(false);
  std::string after = MeteredRun(mm);

  // Tracing off: metered bytes and the seeded fault trace replay exactly —
  // enabling telemetry in between must leave no residue.
  EXPECT_EQ(before, after);
  // Tracing on is *visible* (wire headers cost bytes), proving the off path
  // really is the untraced byte stream rather than a lucky match.
  EXPECT_NE(before, traced);
}

// ---------------------------------------------------------------------------
// NEXUS_LOG_LEVEL.
// ---------------------------------------------------------------------------

TEST(LogLevelEnvTest, ParsesNamesAndIntegers) {
  auto with_env = [](const char* value) {
    if (value == nullptr) {
      unsetenv("NEXUS_LOG_LEVEL");
    } else {
      setenv("NEXUS_LOG_LEVEL", value, 1);
    }
    LogLevel level = internal::LogLevelFromEnv();
    unsetenv("NEXUS_LOG_LEVEL");
    return level;
  };
  EXPECT_EQ(with_env(nullptr), LogLevel::kWarning);  // default
  EXPECT_EQ(with_env("debug"), LogLevel::kDebug);
  EXPECT_EQ(with_env("INFO"), LogLevel::kInfo);
  EXPECT_EQ(with_env("Warn"), LogLevel::kWarning);
  EXPECT_EQ(with_env("error"), LogLevel::kError);
  EXPECT_EQ(with_env("fatal"), LogLevel::kFatal);
  EXPECT_EQ(with_env("0"), LogLevel::kDebug);
  EXPECT_EQ(with_env("3"), LogLevel::kError);
  EXPECT_EQ(with_env("99"), LogLevel::kWarning);      // out of range
  EXPECT_EQ(with_env("gibberish"), LogLevel::kWarning);
  // SetLogLevel still rules the live threshold.
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(saved);
}

}  // namespace
}  // namespace nexus
