// Tests for the chunk-native array engine, including differential tests
// against the reference executor's table-based array operators.
#include <gtest/gtest.h>

#include "arraydb/engine.h"
#include "common/random.h"
#include "exec/reference_executor.h"
#include "expr/builder.h"
#include "tests/test_util.h"

namespace nexus {
namespace {

using namespace nexus::exprs;  // NOLINT
using testing::F;
using testing::I;
using testing::MakeSchema;
using testing::MakeTable;

// A 2-d ramp array: v(i, j) = 10 * i + j over [0, rows) x [0, cols).
NDArrayPtr Ramp(int64_t rows, int64_t cols, int64_t chunk) {
  auto arr = NDArray::Make({DimensionSpec{"i", 0, rows, chunk},
                            DimensionSpec{"j", 0, cols, chunk}},
                           Schema::Make({Field::Attr("v", DataType::kFloat64)})
                               .ValueOrDie())
                 .ValueOrDie();
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      EXPECT_OK(arr->Set({i, j}, {F(static_cast<double>(10 * i + j))}));
    }
  }
  return arr;
}

TEST(ArraySliceTest, PrunesAndClips) {
  NDArrayPtr arr = Ramp(8, 8, 3);
  ASSERT_OK_AND_ASSIGN(NDArrayPtr out,
                       arraydb::Slice(*arr, {{"i", 2, 5}, {"j", 0, 2}}));
  EXPECT_EQ(out->NumCellsOccupied(), 6);
  EXPECT_EQ(out->dim(0).start, 2);
  EXPECT_EQ(out->dim(0).length, 3);
  ASSERT_OK_AND_ASSIGN(auto v, out->Get({4, 1}));
  EXPECT_EQ(v[0], F(41.0));
  EXPECT_FALSE(out->Has({1, 1}));
}

TEST(ArraySliceTest, EmptyIntersection) {
  NDArrayPtr arr = Ramp(4, 4, 2);
  ASSERT_OK_AND_ASSIGN(NDArrayPtr out, arraydb::Slice(*arr, {{"i", 100, 200}}));
  EXPECT_EQ(out->NumCellsOccupied(), 0);
}

TEST(ArraySliceTest, UnknownDimErrors) {
  NDArrayPtr arr = Ramp(4, 4, 2);
  EXPECT_FALSE(arraydb::Slice(*arr, {{"zz", 0, 2}}).ok());
}

TEST(ArrayShiftTest, MetadataOnlyTranslation) {
  NDArrayPtr arr = Ramp(4, 4, 2);
  ASSERT_OK_AND_ASSIGN(NDArrayPtr out,
                       arraydb::Shift(*arr, {{"i", 100}, {"j", -2}}));
  EXPECT_EQ(out->NumCellsOccupied(), 16);
  ASSERT_OK_AND_ASSIGN(auto v, out->Get({103, -1}));
  EXPECT_EQ(v[0], F(31.0));  // was (3, 1)
  EXPECT_FALSE(out->Has({0, 0}));
}

TEST(ArrayApplyTest, ComputesPerCellWithDims) {
  NDArrayPtr arr = Ramp(3, 3, 2);
  ASSERT_OK_AND_ASSIGN(
      NDArrayPtr out,
      arraydb::Apply(*arr, {{"iv", Add(Mul(Col("i"), Lit(100)), Col("j"))},
                            {"double_v", Mul(Col("v"), Lit(2.0))}}));
  EXPECT_EQ(out->attr_schema()->num_fields(), 3);
  ASSERT_OK_AND_ASSIGN(auto v, out->Get({2, 1}));
  EXPECT_EQ(v[0], F(21.0));
  EXPECT_EQ(v[1], I(201));
  EXPECT_EQ(v[2], F(42.0));
}

TEST(ArrayApplyTest, LaterDefsSeeEarlierOnes) {
  NDArrayPtr arr = Ramp(2, 2, 2);
  ASSERT_OK_AND_ASSIGN(NDArrayPtr out,
                       arraydb::Apply(*arr, {{"a", Add(Col("v"), Lit(1.0))},
                                             {"b", Mul(Col("a"), Lit(3.0))}}));
  ASSERT_OK_AND_ASSIGN(auto v, out->Get({1, 1}));
  EXPECT_EQ(v[2], F(36.0));  // (11 + 1) * 3
}

TEST(ArrayFilterTest, KeepsMatchingCells) {
  NDArrayPtr arr = Ramp(4, 4, 2);
  ASSERT_OK_AND_ASSIGN(NDArrayPtr out,
                       arraydb::FilterCells(*arr, *Gt(Col("v"), Lit(25.0))));
  // v = 10 i + j over a 4x4 grid; v > 25 holds exactly for row i = 3
  // (values 30..33).
  EXPECT_EQ(out->NumCellsOccupied(), 4);
  EXPECT_TRUE(out->Has({3, 0}));
  EXPECT_FALSE(out->Has({2, 3}));
}

TEST(ArrayProjectTest, DropsAttributes) {
  NDArrayPtr arr = Ramp(2, 2, 2);
  ASSERT_OK_AND_ASSIGN(NDArrayPtr applied,
                       arraydb::Apply(*arr, {{"w", Mul(Col("v"), Lit(2.0))}}));
  ASSERT_OK_AND_ASSIGN(NDArrayPtr out, arraydb::ProjectAttrs(*applied, {"w"}));
  EXPECT_EQ(out->attr_schema()->num_fields(), 1);
  ASSERT_OK_AND_ASSIGN(auto v, out->Get({1, 0}));
  EXPECT_EQ(v[0], F(20.0));
}

TEST(ArrayRegridTest, BlockAverage) {
  NDArrayPtr arr = Ramp(4, 4, 2);
  ASSERT_OK_AND_ASSIGN(NDArrayPtr out,
                       arraydb::Regrid(*arr, {{"i", 2}, {"j", 2}}, AggFunc::kAvg));
  EXPECT_EQ(out->NumCellsOccupied(), 4);
  // Block (0,0): cells v = 0, 1, 10, 11 → mean 5.5.
  ASSERT_OK_AND_ASSIGN(auto v, out->Get({0, 0}));
  EXPECT_EQ(v[0], F(5.5));
  ASSERT_OK_AND_ASSIGN(auto v2, out->Get({1, 1}));
  EXPECT_EQ(v2[0], F(27.5));  // 22, 23, 32, 33
}

TEST(ArrayRegridTest, PartialFactorsAndCount) {
  NDArrayPtr arr = Ramp(4, 2, 2);
  ASSERT_OK_AND_ASSIGN(NDArrayPtr out,
                       arraydb::Regrid(*arr, {{"i", 4}}, AggFunc::kCount));
  // i collapses 4→1, j untouched: 2 output cells, each counting 4.
  EXPECT_EQ(out->NumCellsOccupied(), 2);
  ASSERT_OK_AND_ASSIGN(auto v, out->Get({0, 1}));
  EXPECT_EQ(v[0], I(4));
}

TEST(ArrayWindowTest, NeighborhoodAverage) {
  NDArrayPtr arr = Ramp(3, 3, 2);
  ASSERT_OK_AND_ASSIGN(NDArrayPtr out,
                       arraydb::Window(*arr, {{"i", 1}, {"j", 1}}, AggFunc::kAvg));
  EXPECT_EQ(out->NumCellsOccupied(), 9);
  // Center cell (1,1) sees all 9 cells: mean of {0,1,2,10,11,12,20,21,22} = 11.
  ASSERT_OK_AND_ASSIGN(auto v, out->Get({1, 1}));
  EXPECT_EQ(v[0], F(11.0));
  // Corner (0,0) sees {0,1,10,11} = 5.5.
  ASSERT_OK_AND_ASSIGN(auto v2, out->Get({0, 0}));
  EXPECT_EQ(v2[0], F(5.5));
}

TEST(ArrayTransposeTest, PermutesCoordinates) {
  NDArrayPtr arr = Ramp(2, 3, 2);
  ASSERT_OK_AND_ASSIGN(NDArrayPtr out, arraydb::Transpose(*arr, {"j", "i"}));
  EXPECT_EQ(out->dim(0).name, "j");
  EXPECT_EQ(out->dim(0).length, 3);
  ASSERT_OK_AND_ASSIGN(auto v, out->Get({2, 1}));
  EXPECT_EQ(v[0], F(12.0));  // was (1, 2)
  EXPECT_FALSE(arraydb::Transpose(*arr, {"i"}).ok());
  EXPECT_FALSE(arraydb::Transpose(*arr, {"i", "i"}).ok());
}

TEST(ArrayElemWiseTest, IntersectionSemantics) {
  NDArrayPtr a = Ramp(2, 2, 2);
  auto b = NDArray::Make({DimensionSpec{"i", 0, 2, 2}, DimensionSpec{"j", 0, 2, 2}},
                         Schema::Make({Field::Attr("w", DataType::kFloat64)})
                             .ValueOrDie())
               .ValueOrDie();
  EXPECT_OK(b->Set({0, 0}, {F(2.0)}));
  EXPECT_OK(b->Set({1, 1}, {F(4.0)}));
  ASSERT_OK_AND_ASSIGN(NDArrayPtr out,
                       arraydb::ElemWise(*a, *NDArrayPtr(b), BinaryOp::kMul));
  EXPECT_EQ(out->NumCellsOccupied(), 2);
  ASSERT_OK_AND_ASSIGN(auto v, out->Get({1, 1}));
  EXPECT_EQ(v[0], F(44.0));
  ASSERT_OK_AND_ASSIGN(NDArrayPtr div,
                       arraydb::ElemWise(*a, *NDArrayPtr(b), BinaryOp::kDiv));
  ASSERT_OK_AND_ASSIGN(auto dv, div->Get({1, 1}));
  EXPECT_EQ(dv[0], F(2.75));
}

// ---------------------------------------------------------------------------
// Differential tests: the chunk-native engine must agree with the reference
// executor evaluating the same algebra operator on the tabular view.
// ---------------------------------------------------------------------------

class ArrayDifferentialTest : public ::testing::TestWithParam<int> {};

NDArrayPtr RandomSparseArray(Rng* rng, int64_t extent, int64_t chunk,
                             double density) {
  auto arr = NDArray::Make({DimensionSpec{"i", -extent / 2, extent, chunk},
                            DimensionSpec{"j", 0, extent, chunk}},
                           Schema::Make({Field::Attr("v", DataType::kFloat64)})
                               .ValueOrDie())
                 .ValueOrDie();
  for (int64_t i = -extent / 2; i < extent / 2; ++i) {
    for (int64_t j = 0; j < extent; ++j) {
      if (rng->NextBool(density)) {
        // Integer-valued doubles keep float sums order-independent, so the
        // differential comparison can be exact.
        EXPECT_OK(arr->Set({i, j}, {F(static_cast<double>(rng->NextInt(-10, 10)))}));
      }
    }
  }
  return arr;
}

TEST_P(ArrayDifferentialTest, AgreesWithReferenceExecutor) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2971 + 1);
  NDArrayPtr arr = RandomSparseArray(&rng, 16, 5, 0.4);
  InMemoryCatalog catalog;
  ASSERT_OK(catalog.Put("A", Dataset(arr)));
  ReferenceExecutor ref(&catalog);

  auto check = [&](const PlanPtr& plan, const NDArrayPtr& engine_result) {
    ASSERT_OK_AND_ASSIGN(Dataset want, ref.Execute(*plan));
    EXPECT_TRUE(Dataset(engine_result).LogicallyEquals(want)) << plan->ToString();
  };

  ASSERT_OK_AND_ASSIGN(NDArrayPtr sliced,
                       arraydb::Slice(*arr, {{"i", -3, 5}, {"j", 2, 11}}));
  check(Plan::Slice(Plan::Scan("A"), {{"i", -3, 5}, {"j", 2, 11}}), sliced);

  ASSERT_OK_AND_ASSIGN(NDArrayPtr shifted, arraydb::Shift(*arr, {{"i", 7}}));
  check(Plan::Shift(Plan::Scan("A"), {{"i", 7}}), shifted);

  ASSERT_OK_AND_ASSIGN(
      NDArrayPtr applied,
      arraydb::Apply(*arr, {{"w", Add(Mul(Col("v"), Lit(2.0)), Col("i"))}}));
  check(Plan::Extend(Plan::Scan("A"), {{"w", Add(Mul(Col("v"), Lit(2.0)), Col("i"))}}),
        applied);

  ASSERT_OK_AND_ASSIGN(NDArrayPtr filtered,
                       arraydb::FilterCells(*arr, *Gt(Col("v"), Lit(0.0))));
  check(Plan::Select(Plan::Scan("A"), Gt(Col("v"), Lit(0.0))), filtered);

  for (AggFunc func : {AggFunc::kSum, AggFunc::kMin, AggFunc::kMax, AggFunc::kCount}) {
    ASSERT_OK_AND_ASSIGN(NDArrayPtr regridded,
                         arraydb::Regrid(*arr, {{"i", 3}, {"j", 4}}, func));
    check(Plan::Regrid(Plan::Scan("A"), {{"i", 3}, {"j", 4}}, func), regridded);
  }

  ASSERT_OK_AND_ASSIGN(NDArrayPtr windowed,
                       arraydb::Window(*arr, {{"i", 1}, {"j", 1}}, AggFunc::kMax));
  check(Plan::Window(Plan::Scan("A"), {{"i", 1}, {"j", 1}}, AggFunc::kMax), windowed);

  ASSERT_OK_AND_ASSIGN(NDArrayPtr transposed, arraydb::Transpose(*arr, {"j", "i"}));
  check(Plan::Transpose(Plan::Scan("A"), {"j", "i"}), transposed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArrayDifferentialTest, ::testing::Range(0, 5));

}  // namespace
}  // namespace nexus
