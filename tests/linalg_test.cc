// Tests for the linear algebra package: dense kernels (naive vs blocked
// agreement), sparse CSR, and NDArray conversions.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "linalg/dense.h"
#include "linalg/sparse.h"
#include "tests/test_util.h"

namespace nexus {
namespace {

using linalg::DenseMatrix;
using linalg::SparseMatrixCSR;
using linalg::Triplet;
using testing::F;

DenseMatrix RandomMatrix(Rng* rng, int64_t rows, int64_t cols) {
  DenseMatrix m(rows, cols);
  for (double& v : m.data()) v = rng->NextDouble(-1.0, 1.0);
  return m;
}

TEST(DenseTest, NaiveMatchesHandComputed) {
  DenseMatrix a(2, 2), b(2, 2);
  a.Set(0, 0, 1);
  a.Set(0, 1, 2);
  a.Set(1, 0, 3);
  a.Set(1, 1, 4);
  b.Set(0, 0, 5);
  b.Set(0, 1, 6);
  b.Set(1, 0, 7);
  b.Set(1, 1, 8);
  ASSERT_OK_AND_ASSIGN(DenseMatrix c, linalg::MatMulNaive(a, b));
  EXPECT_EQ(c.At(0, 0), 19);
  EXPECT_EQ(c.At(0, 1), 22);
  EXPECT_EQ(c.At(1, 0), 43);
  EXPECT_EQ(c.At(1, 1), 50);
}

TEST(DenseTest, ShapeMismatchErrors) {
  DenseMatrix a(2, 3), b(2, 3);
  EXPECT_FALSE(linalg::MatMulNaive(a, b).ok());
  EXPECT_FALSE(linalg::MatMulBlocked(a, b).ok());
  EXPECT_FALSE(linalg::Add(a, DenseMatrix(3, 2)).ok());
  EXPECT_FALSE(linalg::MatVec(a, {1.0}).ok());
}

class GemmAgreementTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GemmAgreementTest, BlockedMatchesNaive) {
  auto [size, block] = GetParam();
  Rng rng(static_cast<uint64_t>(size * 31 + block));
  DenseMatrix a = RandomMatrix(&rng, size, size + 3);
  DenseMatrix b = RandomMatrix(&rng, size + 3, size - 1);
  ASSERT_OK_AND_ASSIGN(DenseMatrix naive, linalg::MatMulNaive(a, b));
  ASSERT_OK_AND_ASSIGN(DenseMatrix blocked, linalg::MatMulBlocked(a, b, block));
  EXPECT_LT(naive.MaxAbsDiff(blocked), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmAgreementTest,
    ::testing::Combine(::testing::Values(5, 17, 64, 100),
                       ::testing::Values(4, 16, 64)));

TEST(DenseTest, TransposeAddElemMulMatVec) {
  Rng rng(3);
  DenseMatrix a = RandomMatrix(&rng, 4, 6);
  DenseMatrix t = linalg::Transpose(a);
  EXPECT_EQ(t.rows(), 6);
  EXPECT_EQ(t.At(2, 3), a.At(3, 2));
  DenseMatrix tt = linalg::Transpose(t);
  EXPECT_LT(a.MaxAbsDiff(tt), 1e-15);

  ASSERT_OK_AND_ASSIGN(DenseMatrix sum, linalg::Add(a, a, 1.0, 2.0));
  EXPECT_NEAR(sum.At(1, 1), 3.0 * a.At(1, 1), 1e-12);

  ASSERT_OK_AND_ASSIGN(DenseMatrix had, linalg::ElemMul(a, a));
  EXPECT_NEAR(had.At(2, 2), a.At(2, 2) * a.At(2, 2), 1e-12);

  std::vector<double> x(6, 1.0);
  ASSERT_OK_AND_ASSIGN(std::vector<double> y, linalg::MatVec(a, x));
  double want = 0;
  for (int64_t c = 0; c < 6; ++c) want += a.At(0, c);
  EXPECT_NEAR(y[0], want, 1e-12);
}

TEST(DenseTest, NDArrayRoundTrip) {
  Rng rng(9);
  DenseMatrix m = RandomMatrix(&rng, 5, 7);
  ASSERT_OK_AND_ASSIGN(NDArrayPtr arr,
                       linalg::ToNDArray(m, "r", "c", "v", -2, 10, 4, false));
  EXPECT_EQ(arr->dim(0).start, -2);
  EXPECT_EQ(arr->dim(1).start, 10);
  EXPECT_EQ(arr->NumCellsOccupied(), 35);
  int64_t rs = 0, cs = 0;
  ASSERT_OK_AND_ASSIGN(DenseMatrix back, linalg::FromNDArray(*arr, &rs, &cs));
  EXPECT_EQ(rs, -2);
  EXPECT_EQ(cs, 10);
  EXPECT_LT(m.MaxAbsDiff(back), 1e-15);
}

TEST(DenseTest, FromNDArrayValidation) {
  auto arr1d = NDArray::Make({DimensionSpec{"i", 0, 3, 2}},
                             Schema::Make({Field::Attr("v", DataType::kFloat64)})
                                 .ValueOrDie())
                   .ValueOrDie();
  int64_t rs, cs;
  EXPECT_FALSE(linalg::FromNDArray(*arr1d, &rs, &cs).ok());
}

TEST(DenseTest, DropZerosSparsifies) {
  DenseMatrix m(2, 2);
  m.Set(0, 1, 5.0);
  ASSERT_OK_AND_ASSIGN(NDArrayPtr arr,
                       linalg::ToNDArray(m, "r", "c", "v", 0, 0, 2, true));
  EXPECT_EQ(arr->NumCellsOccupied(), 1);
}

TEST(SparseTest, FromTripletsSumsDuplicatesAndSorts) {
  ASSERT_OK_AND_ASSIGN(
      SparseMatrixCSR m,
      SparseMatrixCSR::FromTriplets(
          3, 3, {{2, 1, 1.0}, {0, 2, 3.0}, {2, 1, 2.0}, {0, 0, 1.0}}));
  EXPECT_EQ(m.nnz(), 3);
  DenseMatrix d = m.ToDense();
  EXPECT_EQ(d.At(2, 1), 3.0);
  EXPECT_EQ(d.At(0, 2), 3.0);
  EXPECT_EQ(d.At(0, 0), 1.0);
  EXPECT_FALSE(SparseMatrixCSR::FromTriplets(2, 2, {{2, 0, 1.0}}).ok());
}

TEST(SparseTest, SpMVMatchesDense) {
  Rng rng(17);
  std::vector<Triplet> trips;
  for (int i = 0; i < 40; ++i) {
    trips.push_back(Triplet{rng.NextInt(0, 9), rng.NextInt(0, 7),
                            rng.NextDouble(-1, 1)});
  }
  ASSERT_OK_AND_ASSIGN(SparseMatrixCSR m,
                       SparseMatrixCSR::FromTriplets(10, 8, trips));
  std::vector<double> x(8);
  for (double& v : x) v = rng.NextDouble(-1, 1);
  ASSERT_OK_AND_ASSIGN(std::vector<double> y, m.SpMV(x));
  ASSERT_OK_AND_ASSIGN(std::vector<double> want, linalg::MatVec(m.ToDense(), x));
  for (size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], want[i], 1e-12);
}

class SpGemmTest : public ::testing::TestWithParam<int> {};

TEST_P(SpGemmTest, MatchesDenseProduct) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 41 + 5);
  std::vector<Triplet> ta, tb;
  for (int i = 0; i < 60; ++i) {
    ta.push_back(Triplet{rng.NextInt(0, 11), rng.NextInt(0, 9),
                         rng.NextDouble(-1, 1)});
    tb.push_back(Triplet{rng.NextInt(0, 9), rng.NextInt(0, 13),
                         rng.NextDouble(-1, 1)});
  }
  ASSERT_OK_AND_ASSIGN(SparseMatrixCSR a, SparseMatrixCSR::FromTriplets(12, 10, ta));
  ASSERT_OK_AND_ASSIGN(SparseMatrixCSR b, SparseMatrixCSR::FromTriplets(10, 14, tb));
  ASSERT_OK_AND_ASSIGN(SparseMatrixCSR c, a.SpGEMM(b));
  ASSERT_OK_AND_ASSIGN(DenseMatrix want,
                       linalg::MatMulNaive(a.ToDense(), b.ToDense()));
  EXPECT_LT(c.ToDense().MaxAbsDiff(want), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpGemmTest, ::testing::Range(0, 6));

TEST(SparseTest, TripletRoundTrip) {
  ASSERT_OK_AND_ASSIGN(
      SparseMatrixCSR m,
      SparseMatrixCSR::FromTriplets(3, 3, {{0, 1, 2.0}, {2, 2, 4.0}}));
  std::vector<Triplet> back = m.ToTriplets();
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].row, 0);
  EXPECT_EQ(back[0].col, 1);
  EXPECT_EQ(back[1].value, 4.0);
}

TEST(SparseTest, EmptyMatrix) {
  ASSERT_OK_AND_ASSIGN(SparseMatrixCSR m, SparseMatrixCSR::FromTriplets(4, 4, {}));
  EXPECT_EQ(m.nnz(), 0);
  ASSERT_OK_AND_ASSIGN(auto y, m.SpMV(std::vector<double>(4, 1.0)));
  for (double v : y) EXPECT_EQ(v, 0.0);
  ASSERT_OK_AND_ASSIGN(SparseMatrixCSR c, m.SpGEMM(m));
  EXPECT_EQ(c.nnz(), 0);
}

TEST(SparseTest, ExplicitZerosAreStoredEntries) {
  // A 0-valued triplet (and duplicates summing to exactly 0) stays stored:
  // absent and explicit-zero entries agree numerically but not structurally.
  ASSERT_OK_AND_ASSIGN(
      SparseMatrixCSR m,
      SparseMatrixCSR::FromTriplets(
          2, 2, {{0, 0, 0.0}, {1, 1, 3.0}, {1, 0, 1.0}, {1, 0, -1.0}}));
  EXPECT_EQ(m.nnz(), 3);  // (0,0)=0.0, (1,0)=0.0, (1,1)=3.0 all stored
  ASSERT_OK_AND_ASSIGN(auto y, m.SpMV({5.0, 7.0}));
  EXPECT_EQ(y[0], 0.0);
  EXPECT_EQ(y[1], 21.0);
  // SpGEMM drops exact-zero *output* cells even when inputs store zeros.
  ASSERT_OK_AND_ASSIGN(SparseMatrixCSR c, m.SpGEMM(m));
  for (const Triplet& t : c.ToTriplets()) EXPECT_NE(t.value, 0.0);
}

TEST(SparseTest, AllZeroRowsStayZero) {
  // Rows 0 and 2 have no stored entries: SpMV must leave them exactly 0.0
  // and SpGEMM must emit nothing for them.
  ASSERT_OK_AND_ASSIGN(SparseMatrixCSR m,
                       SparseMatrixCSR::FromTriplets(3, 3, {{1, 0, 2.0}}));
  ASSERT_OK_AND_ASSIGN(auto y, m.SpMV({1.0, 1.0, 1.0}));
  EXPECT_EQ(y[0], 0.0);
  EXPECT_EQ(y[1], 2.0);
  EXPECT_EQ(y[2], 0.0);
  ASSERT_OK_AND_ASSIGN(SparseMatrixCSR c, m.SpGEMM(m));
  for (const Triplet& t : c.ToTriplets()) EXPECT_EQ(t.row, 1);
}

TEST(SparseTest, OneByNAndOuterProduct) {
  // 1xN row vector times N-vector: a single dot product.
  ASSERT_OK_AND_ASSIGN(
      SparseMatrixCSR row,
      SparseMatrixCSR::FromTriplets(1, 4, {{0, 1, 2.0}, {0, 3, -1.0}}));
  ASSERT_OK_AND_ASSIGN(auto y, row.SpMV({9.0, 4.0, 9.0, 6.0}));
  ASSERT_EQ(y.size(), 1u);
  EXPECT_EQ(y[0], 2.0);
  // Nx1 times 1xM: outer product hits every (i, j) pair.
  ASSERT_OK_AND_ASSIGN(
      SparseMatrixCSR col,
      SparseMatrixCSR::FromTriplets(3, 1, {{0, 0, 1.0}, {2, 0, 4.0}}));
  ASSERT_OK_AND_ASSIGN(
      SparseMatrixCSR wide,
      SparseMatrixCSR::FromTriplets(1, 2, {{0, 0, 3.0}, {0, 1, 5.0}}));
  ASSERT_OK_AND_ASSIGN(SparseMatrixCSR outer, col.SpGEMM(wide));
  DenseMatrix d = outer.ToDense();
  EXPECT_EQ(d.At(0, 0), 3.0);
  EXPECT_EQ(d.At(0, 1), 5.0);
  EXPECT_EQ(d.At(2, 0), 12.0);
  EXPECT_EQ(d.At(2, 1), 20.0);
  EXPECT_EQ(d.At(1, 0), 0.0);
}

}  // namespace
}  // namespace nexus
