// Crash-resistance fuzzing for every text interface: the BDL parser, the
// s-expression plan/expr/dataset parsers, and the CSV reader. Parsers face
// the network (plans arrive over the wire) and user input; on any garbage
// they must return a Status — never crash, hang, or throw.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/serialize.h"
#include "expr/builder.h"
#include "frontend/bdl.h"
#include "tests/test_util.h"
#include "types/csv.h"

namespace nexus {
namespace {

using namespace nexus::exprs;  // NOLINT

std::string RandomGarbage(Rng* rng, size_t max_len) {
  static const char kAlphabet[] =
      "abcxyz0123456789 \t\n()[]{}\"\\,.:;=<>+-*/%|_#'";
  size_t len = rng->NextBounded(max_len);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[rng->NextBounded(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

// Random single-point mutation of a valid input.
std::string Mutate(Rng* rng, std::string s) {
  if (s.empty()) return s;
  switch (rng->NextBounded(3)) {
    case 0:  // flip a character
      s[rng->NextBounded(s.size())] =
          static_cast<char>('!' + rng->NextBounded(90));
      break;
    case 1:  // delete a span
      s.erase(rng->NextBounded(s.size()),
              1 + rng->NextBounded(5));
      break;
    default:  // duplicate a span
      s.insert(rng->NextBounded(s.size()),
               s.substr(rng->NextBounded(s.size()), 1 + rng->NextBounded(6)));
      break;
  }
  return s;
}

class ParserFuzzTest : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<uint64_t>(GetParam()) * 48271 + 13};
};

TEST_P(ParserFuzzTest, GarbageNeverCrashesAnyParser) {
  for (int trial = 0; trial < 200; ++trial) {
    std::string input = RandomGarbage(&rng_, 120);
    (void)ParseBdl(input);
    (void)ParseBdlExpr(input);
    (void)ParsePlan(input);
    (void)ParseExpr(input);
    (void)ParseDataset(input);
    (void)ReadCsv(input);
  }
  SUCCEED();  // surviving without UB/abort is the assertion
}

TEST_P(ParserFuzzTest, MutatedWirePlansFailCleanlyOrStayValid) {
  // Start from real serialized plans and corrupt them.
  SchemaPtr s = Schema::Make({Field::Dim("i"), Field::Attr("v", DataType::kFloat64)})
                    .ValueOrDie();
  TableBuilder b(s);
  EXPECT_OK(b.AppendRow({Value::Int64(1), Value::Float64(2.5)}));
  PlanPtr samples[] = {
      Plan::Select(Plan::Scan("t"), Gt(Col("v"), Lit(1.5))),
      Plan::Aggregate(Plan::Scan("t"), {"i"},
                      {AggSpec{AggFunc::kSum, Col("v"), "s"}}),
      Plan::MatMul(Plan::Scan("a"), Plan::Scan("b"), "c"),
      Plan::Values(Dataset(b.Finish().ValueOrDie())),
  };
  for (const PlanPtr& p : samples) {
    std::string wire = SerializePlan(*p);
    for (int trial = 0; trial < 60; ++trial) {
      std::string corrupted = Mutate(&rng_, wire);
      auto parsed = ParsePlan(corrupted);
      if (!parsed.ok()) continue;  // clean rejection
      // If it still parses, it must re-serialize deterministically.
      std::string rewire = SerializePlan(*parsed.ValueOrDie());
      auto reparsed = ParsePlan(rewire);
      ASSERT_TRUE(reparsed.ok()) << rewire;
      EXPECT_TRUE(parsed.ValueOrDie()->Equals(*reparsed.ValueOrDie()));
    }
  }
}

TEST_P(ParserFuzzTest, MutatedBdlFailsCleanlyOrParses) {
  const char* valid =
      "from orders | where amount > 50 and region == \"a\" | "
      "group by cid aggregate sum(amount) as t | sort by t desc | limit 10";
  for (int trial = 0; trial < 150; ++trial) {
    std::string corrupted = Mutate(&rng_, valid);
    (void)ParseBdl(corrupted);  // either Status or a plan; never a crash
  }
  SUCCEED();
}

TEST_P(ParserFuzzTest, MutatedCsvFailsCleanlyOrParses) {
  const char* valid = "a,b,c\n1,2.5,\"x,y\"\n2,,z\n";
  for (int trial = 0; trial < 150; ++trial) {
    std::string corrupted = Mutate(&rng_, valid);
    auto t = ReadCsv(corrupted);
    if (t.ok()) {
      // Whatever parsed must be internally consistent.
      EXPECT_GE(t.ValueOrDie()->num_columns(), 1);
    }
  }
}

TEST_P(ParserFuzzTest, DeepNestingIsHandled) {
  // Deeply nested parens must not blow the stack unreasonably or crash.
  for (int depth : {10, 100, 1000}) {
    std::string deep(static_cast<size_t>(depth), '(');
    deep += "col \"x\"";
    deep += std::string(static_cast<size_t>(depth), ')');
    (void)ParseExpr(deep);
    std::string bdl_expr = std::string(static_cast<size_t>(depth), '(') + "x" +
                           std::string(static_cast<size_t>(depth), ')');
    (void)ParseBdlExpr(bdl_expr);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace nexus
