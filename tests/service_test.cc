// Service-layer tests: admission control, per-tenant memory budgets,
// deadline propagation, cooperative cancellation, and the multi-tenant
// Server facade — graceful degradation, never a crash.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/str_util.h"
#include "exec/spill/spill.h"
#include "expr/builder.h"
#include "federation/coordinator.h"
#include "service/server.h"
#include "telemetry/metrics.h"
#include "tests/test_util.h"

namespace nexus {
namespace {

using namespace nexus::exprs;  // NOLINT
using service::AdmissionController;
using service::AdmissionOptions;
using service::MemoryGovernor;
using service::QueryClass;
using service::QueryOptions;
using service::QueryReport;
using service::Server;
using service::ServerOptions;
using service::TenantOptions;
using testing::F;
using testing::I;
using testing::MakeSchema;

void SpinUntil(const std::function<bool()>& pred) {
  for (int i = 0; i < 20000 && !pred(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(pred()) << "condition not reached within 20s";
}

// ---------------------------------------------------------------------------
// AdmissionController unit tests.
// ---------------------------------------------------------------------------

TEST(AdmissionTest, GrantsUpToMaxConcurrent) {
  AdmissionController ac(AdmissionOptions{2, 4});
  ASSERT_OK(ac.Admit(QueryClass::kStandard, "t", nullptr, nullptr, nullptr));
  ASSERT_OK(ac.Admit(QueryClass::kStandard, "t", nullptr, nullptr, nullptr));
  EXPECT_EQ(ac.admitted(), 2);
  ac.Release(5.0);
  ac.Release(5.0);
}

TEST(AdmissionTest, RejectsWhenQueueFull) {
  // 1 slot, 0 queue: the second concurrent query is rejected outright.
  AdmissionController ac(AdmissionOptions{1, 0});
  ASSERT_OK(ac.Admit(QueryClass::kStandard, "t", nullptr, nullptr, nullptr));
  Status second = ac.Admit(QueryClass::kStandard, "t", nullptr, nullptr, nullptr);
  EXPECT_TRUE(second.IsResourceExhausted());
  EXPECT_TRUE(IsRetryable(second));
  EXPECT_NE(second.message().find("retry after"), std::string::npos);
  EXPECT_EQ(ac.rejected(), 1);
  ac.Release(5.0);
  EXPECT_GT(ac.RetryAfterMillis(), 0.0);
}

TEST(AdmissionTest, PriorityClassesDrainInOrder) {
  AdmissionController ac(AdmissionOptions{1, 8});
  ASSERT_OK(ac.Admit(QueryClass::kBatch, "t", nullptr, nullptr, nullptr));
  std::vector<int> order;
  std::mutex order_mu;
  auto waiter = [&](QueryClass cls, int id) {
    return std::thread([&, cls, id] {
      double wait_ms = 0.0;
      ASSERT_OK(ac.Admit(cls, "t", nullptr, nullptr, &wait_ms));
      {
        std::lock_guard<std::mutex> lock(order_mu);
        order.push_back(id);
      }
      ac.Release(1.0);
    });
  };
  // Enqueue batch first, then interactive, then standard — strictly after
  // one another so arrival order is fixed.
  std::thread b = waiter(QueryClass::kBatch, 3);
  SpinUntil([&] { return ac.queued_now() == 1; });
  std::thread i = waiter(QueryClass::kInteractive, 1);
  SpinUntil([&] { return ac.queued_now() == 2; });
  std::thread s = waiter(QueryClass::kStandard, 2);
  SpinUntil([&] { return ac.queued_now() == 3; });
  ac.Release(1.0);  // free the slot: the queue drains by (class, arrival)
  b.join();
  i.join();
  s.join();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(AdmissionTest, CancelledTicketWithdraws) {
  AdmissionController ac(AdmissionOptions{1, 4});
  ASSERT_OK(ac.Admit(QueryClass::kStandard, "t", nullptr, nullptr, nullptr));
  CancelToken token;
  std::thread waiter([&] {
    Status s = ac.Admit(QueryClass::kStandard, "t", &token, nullptr, nullptr);
    EXPECT_TRUE(s.IsCancelled());
  });
  SpinUntil([&] { return ac.queued_now() == 1; });
  token.Cancel(StatusCode::kCancelled, "client gave up");
  ac.Poke();
  waiter.join();
  EXPECT_EQ(ac.queued_now(), 0);
  ac.Release(1.0);
}

TEST(AdmissionTest, IneligibleTicketHeldBack) {
  AdmissionController ac(AdmissionOptions{2, 4});
  std::atomic<bool> eligible{false};
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    ASSERT_OK(ac.Admit(QueryClass::kInteractive, "t", nullptr,
                       [&] { return eligible.load(); }, nullptr));
    granted.store(true);
    ac.Release(1.0);
  });
  SpinUntil([&] { return ac.queued_now() == 1; });
  // Both slots are free, but the ticket is ineligible: it must wait.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(granted.load());
  eligible.store(true);
  ac.Poke();
  waiter.join();
  EXPECT_TRUE(granted.load());
}

// ---------------------------------------------------------------------------
// MemoryGovernor unit tests.
// ---------------------------------------------------------------------------

TEST(GovernorTest, ChargesAndReleases) {
  MemoryGovernor governor;
  ASSERT_OK(governor.RegisterTenant("acme", TenantOptions{1000, 1}));
  ASSERT_OK_AND_ASSIGN(auto meter, governor.StartQuery("acme", nullptr));
  meter->Charge(400);
  EXPECT_EQ(governor.Usage("acme"), 400);
  EXPECT_TRUE(governor.UnderBudget("acme"));
  governor.FinishQuery(meter.get());
  EXPECT_EQ(governor.Usage("acme"), 0);
  EXPECT_EQ(governor.kills(), 0);
}

TEST(GovernorTest, KillsCheapestSufficientVictim) {
  MemoryGovernor governor;
  ASSERT_OK(governor.RegisterTenant("acme", TenantOptions{1000, 1}));
  auto t1 = std::make_shared<CancelToken>();
  auto t2 = std::make_shared<CancelToken>();
  ASSERT_OK_AND_ASSIGN(auto big, governor.StartQuery("acme", t1));
  ASSERT_OK_AND_ASSIGN(auto small, governor.StartQuery("acme", t2));
  big->Charge(800);
  EXPECT_EQ(governor.kills(), 0);  // still under budget
  small->Charge(300);              // 1100 > 1000: someone must die
  EXPECT_EQ(governor.kills(), 1);
  // The small query (300 >= 100 over) is the cheapest sufficient victim.
  EXPECT_TRUE(t2->cancelled());
  EXPECT_FALSE(t1->cancelled());
  Status verdict = t2->status();
  EXPECT_TRUE(verdict.IsResourceExhausted());
  EXPECT_TRUE(IsRetryable(verdict));
  // Only one victim at a time: further charges don't pile on kills while
  // the first victim is still unwinding.
  big->Charge(500);
  EXPECT_EQ(governor.kills(), 1);
  governor.FinishQuery(small.get());
  governor.FinishQuery(big.get());
  EXPECT_EQ(governor.Usage("acme"), 0);
}

TEST(GovernorTest, TenantsAreIsolated) {
  MemoryGovernor governor;
  ASSERT_OK(governor.RegisterTenant("hog", TenantOptions{100, 1}));
  ASSERT_OK(governor.RegisterTenant("neighbor", TenantOptions{1000, 1}));
  auto hog_token = std::make_shared<CancelToken>();
  auto nb_token = std::make_shared<CancelToken>();
  ASSERT_OK_AND_ASSIGN(auto hog, governor.StartQuery("hog", hog_token));
  ASSERT_OK_AND_ASSIGN(auto nb, governor.StartQuery("neighbor", nb_token));
  nb->Charge(500);
  hog->Charge(1000);  // 10x over ITS budget
  EXPECT_TRUE(hog_token->cancelled());
  EXPECT_FALSE(nb_token->cancelled());
  EXPECT_FALSE(governor.UnderBudget("hog"));
  EXPECT_TRUE(governor.UnderBudget("neighbor"));
  governor.FinishQuery(hog.get());
  governor.FinishQuery(nb.get());
}

TEST(GovernorTest, AsksSpillCapableQueriesBeforeKilling) {
  // With out-of-core execution on, the first budget breach flips the
  // spill-requested flag on every live query instead of killing one, and
  // an asked tenant is tolerated up to 2x budget while it sheds. Only past
  // that slack does the kill path engage.
  spill::SetSpillOverride(true);
  struct Guard {
    ~Guard() { spill::ClearSpillOverride(); }
  } guard;
  MemoryGovernor governor;
  ASSERT_OK(governor.RegisterTenant("acme", TenantOptions{1000, 1}));
  auto t1 = std::make_shared<CancelToken>();
  auto t2 = std::make_shared<CancelToken>();
  ASSERT_OK_AND_ASSIGN(auto big, governor.StartQuery("acme", t1));
  ASSERT_OK_AND_ASSIGN(auto small, governor.StartQuery("acme", t2));
  EXPECT_FALSE(big->SpillRequested());
  big->Charge(800);
  small->Charge(300);  // 1100 > 1000: ask, don't kill
  EXPECT_EQ(governor.kills(), 0);
  EXPECT_EQ(governor.spill_requests(), 1);
  EXPECT_TRUE(big->SpillRequested());
  EXPECT_TRUE(small->SpillRequested());
  EXPECT_FALSE(t1->cancelled());
  EXPECT_FALSE(t2->cancelled());
  // A cooperating query parks data on disk and releases the bytes.
  big->Release(200);
  EXPECT_EQ(governor.Usage("acme"), 900);
  EXPECT_TRUE(governor.UnderBudget("acme"));
  // Already-asked tenants ride the 2x slack while shedding lands...
  big->Charge(1000);  // usage 1900 <= 2000
  EXPECT_EQ(governor.kills(), 0);
  // ...but past 2x the cheapest sufficient victim (by net charge) dies:
  // big's net is 1600, small's 600; only big can cover the 1200 overrun.
  small->Charge(300);  // usage 2200 > 2000
  EXPECT_EQ(governor.kills(), 1);
  EXPECT_TRUE(t1->cancelled());
  EXPECT_FALSE(t2->cancelled());
  governor.FinishQuery(big.get());
  governor.FinishQuery(small.get());
  EXPECT_EQ(governor.Usage("acme"), 0);
}

TEST(GovernorTest, VictimCostIsNetOfReleases) {
  // Regression: victim cost must be the *net* charge. q1 charged 900 but
  // released 850 back (e.g. by spilling) — killing it recovers only 50
  // bytes, not enough for the 100-byte overrun. Gross accounting would
  // pick q1 as the "cheapest sufficient" victim and leave the tenant
  // still over budget after the kill.
  MemoryGovernor governor;
  ASSERT_OK(governor.RegisterTenant("acme", TenantOptions{1000, 1}));
  auto t1 = std::make_shared<CancelToken>();
  auto t2 = std::make_shared<CancelToken>();
  ASSERT_OK_AND_ASSIGN(auto q1, governor.StartQuery("acme", t1));
  ASSERT_OK_AND_ASSIGN(auto q2, governor.StartQuery("acme", t2));
  q1->Charge(900);
  q1->Release(850);
  EXPECT_EQ(governor.Usage("acme"), 50);
  EXPECT_EQ(q1->net(), 50);
  q2->Charge(1050);  // usage 1100 > 1000
  EXPECT_EQ(governor.kills(), 1);
  EXPECT_TRUE(t2->cancelled());
  EXPECT_FALSE(t1->cancelled());
  // Over-release never drives a meter (or the tenant) negative.
  q2->Release(100000);
  EXPECT_GE(q2->net(), 0);
  governor.FinishQuery(q1.get());
  governor.FinishQuery(q2.get());
  EXPECT_EQ(governor.Usage("acme"), 0);
}

// ---------------------------------------------------------------------------
// Server facade tests against a real (small) federation.
// ---------------------------------------------------------------------------

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>();
    ASSERT_OK(cluster_->AddServer("relstore", MakeRelationalProvider()));
    ASSERT_OK(cluster_->AddServer("reference", MakeReferenceProvider()));
    SchemaPtr orders = MakeSchema({Field::Attr("oid", DataType::kInt64),
                                   Field::Attr("amount", DataType::kFloat64)});
    TableBuilder b(orders);
    Rng rng(11);
    for (int64_t i = 0; i < 500; ++i) {
      ASSERT_OK(b.AppendRow({I(i), F(rng.NextDouble(0, 100))}));
    }
    orders_ = b.Finish().ValueOrDie();
    ASSERT_OK(cluster_->PutData("relstore", "orders", Dataset(orders_)));
  }

  PlanPtr FilterPlan() {
    return Plan::Select(Plan::Scan("orders"), Gt(Col("amount"), Lit(50.0)));
  }

  /// True when any server's catalog still holds a name with this prefix.
  bool AnyTempWithPrefix(const std::string& prefix) {
    for (const std::string& s : cluster_->ServerNames()) {
      for (const std::string& name : cluster_->provider(s)->catalog()->Names()) {
        if (name.rfind(prefix, 0) == 0) return true;
      }
    }
    return false;
  }

  std::unique_ptr<Cluster> cluster_;
  TablePtr orders_;
};

TEST_F(ServiceTest, ExecuteMatchesDirectCoordinator) {
  Server server(cluster_.get());
  ASSERT_OK(server.RegisterTenant("acme", TenantOptions{}));
  ASSERT_OK_AND_ASSIGN(int64_t session, server.OpenSession("acme"));

  QueryReport report;
  ASSERT_OK_AND_ASSIGN(Dataset via_service,
                       server.Execute(session, FilterPlan(), {}, &report));
  Coordinator direct(cluster_.get());
  ASSERT_OK_AND_ASSIGN(Dataset baseline, direct.Execute(FilterPlan()));
  EXPECT_TRUE(via_service.LogicallyEquals(baseline));
  EXPECT_EQ(report.admission, "admitted");
  EXPECT_EQ(report.tenant, "acme");
  EXPECT_GT(report.reserved_bytes, 0);  // the meter saw the materialization
  EXPECT_FALSE(AnyTempWithPrefix("__frag_"));  // all temps released
  ASSERT_OK(server.CloseSession(session));
}

TEST_F(ServiceTest, PerTenantExprCompileMetrics) {
  Server server(cluster_.get());
  ASSERT_OK(server.RegisterTenant("acme", TenantOptions{}));
  ASSERT_OK_AND_ASSIGN(int64_t session, server.OpenSession("acme"));

  auto& reg = telemetry::MetricsRegistry::Global();
  const int64_t tenant_compiles0 =
      reg.counter("service.acme.expr_compiles")->value();
  const int64_t tenant_hits0 =
      reg.counter("service.acme.expr_cache_hits")->value();

  QueryReport first;
  ASSERT_OK(server.Execute(session, FilterPlan(), {}, &first).status());
  QueryReport second;
  ASSERT_OK(server.Execute(session, FilterPlan(), {}, &second).status());

  // The filter predicate compiles (or is served from the program cache) on
  // every run, and the per-tenant counters mirror the per-query reports.
  EXPECT_GT(first.expr_compiles + first.expr_cache_hits + second.expr_compiles +
                second.expr_cache_hits,
            0);
  EXPECT_EQ(
      reg.counter("service.acme.expr_compiles")->value() - tenant_compiles0,
      first.expr_compiles + second.expr_compiles);
  EXPECT_EQ(reg.counter("service.acme.expr_cache_hits")->value() - tenant_hits0,
            first.expr_cache_hits + second.expr_cache_hits);
  ASSERT_OK(server.CloseSession(session));
}

TEST_F(ServiceTest, UnknownTenantAndSessionAreErrors) {
  Server server(cluster_.get());
  EXPECT_TRUE(server.OpenSession("nobody").status().IsNotFound());
  EXPECT_TRUE(server.Execute(99, FilterPlan()).status().IsNotFound());
  EXPECT_TRUE(server.Cancel(42).IsNotFound());
}

TEST_F(ServiceTest, QueuedCancellationReleasesBindings) {
  // The leak-window regression, deterministic form: tenant "held" is pinned
  // over budget, so its submitted query (with staged bindings) waits in the
  // admission queue, ineligible. Cancelling it must withdraw the ticket and
  // release the staged bindings even though the query never executed.
  ServerOptions options;
  options.max_concurrent = 1;
  options.queue_capacity = 1;
  Server server(cluster_.get(), options);
  // Budget is roomy for a real query (~4KB materialized) so the post-unpin
  // Execute below succeeds; only the manual pin oversubscribes it.
  ASSERT_OK(server.RegisterTenant("held", TenantOptions{1 << 20, 1}));
  ASSERT_OK_AND_ASSIGN(int64_t session, server.OpenSession("held"));

  // Pin the tenant over budget with a manual meter (no token: unkillable).
  ASSERT_OK_AND_ASSIGN(auto pin, server.governor().StartQuery("held", nullptr));
  pin->Charge(2 << 20);
  ASSERT_FALSE(server.governor().UnderBudget("held"));

  std::vector<std::pair<std::string, Dataset>> bindings;
  bindings.emplace_back("bound_input", Dataset(orders_));
  PlanPtr plan = Plan::Select(Plan::Scan("bound_input"),
                              Gt(Col("amount"), Lit(50.0)));
  ASSERT_OK_AND_ASSIGN(int64_t query,
                       server.Submit(session, plan, {}, std::move(bindings)));
  SpinUntil([&] { return server.admission().queued_now() == 1; });
  // Its bindings are already staged server-side while it waits.
  EXPECT_TRUE(AnyTempWithPrefix("__svc_"));

  // A second query of the held tenant overflows the 1-deep queue: rejected
  // deterministically with a retryable status.
  Status overflow = server.Execute(session, FilterPlan()).status();
  EXPECT_TRUE(overflow.IsResourceExhausted());
  EXPECT_TRUE(IsRetryable(overflow));

  ASSERT_OK(server.Cancel(query));
  QueryReport report;
  Status cancelled = server.Wait(query, &report).status();
  EXPECT_TRUE(cancelled.IsCancelled());
  EXPECT_FALSE(IsRetryable(cancelled));
  // The never-executed query leaked nothing: bindings and temps are gone.
  EXPECT_FALSE(AnyTempWithPrefix("__svc_"));
  EXPECT_FALSE(AnyTempWithPrefix("__frag_"));

  // Un-pin the tenant: queries flow again.
  server.governor().FinishQuery(pin.get());
  EXPECT_OK(server.Execute(session, FilterPlan()).status());
}

TEST_F(ServiceTest, OverBudgetTenantIsKilledNotCrashed) {
  ServerOptions options;
  options.requeue_on_kill = false;
  Server server(cluster_.get(), options);
  // ~500 rows of (int64, float64) is ~8KB per materialization; a 1-byte
  // budget guarantees the first charge already oversubscribes 1000x.
  ASSERT_OK(server.RegisterTenant("hog", TenantOptions{1, 1}));
  ASSERT_OK(server.RegisterTenant("neighbor", TenantOptions{0, 1}));
  ASSERT_OK_AND_ASSIGN(int64_t hog_session, server.OpenSession("hog"));
  ASSERT_OK_AND_ASSIGN(int64_t nb_session, server.OpenSession("neighbor"));

  Coordinator direct(cluster_.get());
  ASSERT_OK_AND_ASSIGN(Dataset solo, direct.Execute(FilterPlan()));

  QueryReport hog_report;
  Status killed =
      server.Execute(hog_session, FilterPlan(), {}, &hog_report).status();
  EXPECT_TRUE(killed.IsResourceExhausted()) << killed;
  EXPECT_TRUE(IsRetryable(killed));
  EXPECT_EQ(hog_report.admission, "killed");
  EXPECT_GE(server.governor().kills(), 1);
  // The kill released everything; the hog's usage is back to zero.
  EXPECT_EQ(server.governor().Usage("hog"), 0);
  EXPECT_FALSE(AnyTempWithPrefix("__frag_"));

  // The neighbor's result is byte-identical to a solo run.
  ASSERT_OK_AND_ASSIGN(Dataset nb, server.Execute(nb_session, FilterPlan()));
  EXPECT_TRUE(nb.LogicallyEquals(solo));
}

TEST_F(ServiceTest, KilledQueryRequeuesOnce) {
  Server server(cluster_.get());  // requeue_on_kill defaults true
  ASSERT_OK(server.RegisterTenant("hog", TenantOptions{1, 1}));
  ASSERT_OK_AND_ASSIGN(int64_t session, server.OpenSession("hog"));
  QueryReport report;
  Status killed = server.Execute(session, FilterPlan(), {}, &report).status();
  // The budget is impossible (1 byte), so the requeued attempt dies too —
  // but it was made, and the final status is still retryable, not a crash.
  EXPECT_TRUE(killed.IsResourceExhausted());
  EXPECT_TRUE(IsRetryable(killed));
  EXPECT_EQ(report.requeues, 1);
  EXPECT_EQ(report.admission, "killed");
  EXPECT_FALSE(AnyTempWithPrefix("__frag_"));
}

TEST_F(ServiceTest, DeadlinePropagatesAsTimeout) {
  Server server(cluster_.get());
  ASSERT_OK(server.RegisterTenant("acme", TenantOptions{}));
  ASSERT_OK_AND_ASSIGN(int64_t session, server.OpenSession("acme"));
  QueryOptions options;
  // The first message alone charges ~1ms of simulated latency, so a 0.1ms
  // deadline is deterministically exceeded at the next cancellation check.
  options.deadline_seconds = 1e-4;
  Status timed_out = server.Execute(session, FilterPlan(), options).status();
  EXPECT_TRUE(timed_out.IsTimeout()) << timed_out;
  EXPECT_TRUE(IsRetryable(timed_out));
  EXPECT_FALSE(AnyTempWithPrefix("__frag_"));

  // Without the deadline the same query succeeds on the same server.
  EXPECT_OK(server.Execute(session, FilterPlan()).status());
}

TEST_F(ServiceTest, ExplainAnalyzeShowsAdmissionDecision) {
  Server server(cluster_.get());
  ASSERT_OK(server.RegisterTenant("acme", TenantOptions{}));
  ASSERT_OK_AND_ASSIGN(int64_t session, server.OpenSession("acme"));
  QueryOptions options;
  options.query_class = QueryClass::kInteractive;
  ASSERT_OK_AND_ASSIGN(std::string analyzed,
                       server.ExplainAnalyze(session, FilterPlan(), options));
  EXPECT_NE(analyzed.find("admission: queued="), std::string::npos) << analyzed;
  EXPECT_NE(analyzed.find("class=interactive"), std::string::npos);
  EXPECT_NE(analyzed.find("governor=admitted"), std::string::npos);
}

TEST_F(ServiceTest, SpillWorkIsMeteredPerTenantAndInExplain) {
  // An over-budget aggregate transparently spills instead of dying; the
  // out-of-core work is attributed to the tenant's counters, the query
  // report, and the EXPLAIN ANALYZE summary — and the answer is
  // byte-identical to the in-memory run.
  struct Guard {
    ~Guard() {
      spill::ClearSpillOverride();
      spill::ClearSpillBudgetOverride();
    }
  } guard;
  PlanPtr agg =
      Plan::Aggregate(Plan::Scan("orders"), {"oid"},
                      {AggSpec{AggFunc::kSum, Col("amount"), "total"}});
  Coordinator direct(cluster_.get());
  ASSERT_OK_AND_ASSIGN(Dataset want, direct.Execute(agg));  // spill off

  spill::SetSpillOverride(true);
  spill::SetSpillBudgetOverride(1);  // everything is over budget
  Server server(cluster_.get());
  ASSERT_OK(server.RegisterTenant("acme", TenantOptions{}));
  ASSERT_OK_AND_ASSIGN(int64_t session, server.OpenSession("acme"));
  QueryReport report;
  ASSERT_OK_AND_ASSIGN(Dataset got, server.Execute(session, agg, {}, &report));
  EXPECT_TRUE(got.LogicallyEquals(want));
  EXPECT_GT(report.spill_partitions, 0);
  EXPECT_GT(report.spill_bytes, 0);
  EXPECT_GT(report.released_bytes, 0);  // parked bytes came back to the tenant
  auto* bytes_counter =
      telemetry::MetricsRegistry::Global().counter("service.acme.spill_bytes");
  EXPECT_GT(bytes_counter->value(), 0);

  ASSERT_OK_AND_ASSIGN(std::string analyzed,
                       server.ExplainAnalyze(session, agg));
  EXPECT_NE(analyzed.find("spill: "), std::string::npos) << analyzed;
  // Every scratch file is reference-counted away once queries finish.
  EXPECT_EQ(spill::SpillManager::Global().live_files(), 0);
}

TEST_F(ServiceTest, CloseSessionCancelsOutstandingQueries) {
  ServerOptions options;
  options.max_concurrent = 1;
  options.queue_capacity = 4;
  Server server(cluster_.get(), options);
  ASSERT_OK(server.RegisterTenant("held", TenantOptions{1000, 1}));
  ASSERT_OK_AND_ASSIGN(int64_t session, server.OpenSession("held"));
  ASSERT_OK_AND_ASSIGN(auto pin, server.governor().StartQuery("held", nullptr));
  pin->Charge(5000);  // hold all of the session's queries in the queue
  ASSERT_OK_AND_ASSIGN(int64_t q1, server.Submit(session, FilterPlan()));
  ASSERT_OK_AND_ASSIGN(int64_t q2, server.Submit(session, FilterPlan()));
  SpinUntil([&] { return server.admission().queued_now() == 2; });
  ASSERT_OK(server.CloseSession(session));
  // Queries are gone (already waited on by CloseSession) and nothing leaked.
  EXPECT_TRUE(server.Wait(q1).status().IsNotFound());
  EXPECT_TRUE(server.Wait(q2).status().IsNotFound());
  EXPECT_FALSE(AnyTempWithPrefix("__svc_"));
  EXPECT_TRUE(server.Execute(session, FilterPlan()).status().IsNotFound());
  server.governor().FinishQuery(pin.get());
}

TEST_F(ServiceTest, ConcurrentTenantsMatchSoloRuns) {
  // The headline robustness claim, scaled for a unit test: several tenants
  // hammer the service concurrently; every query either completes with the
  // solo-run answer or fails with a retryable status — and at this budget
  // (none) and queue depth, all must complete.
  ServerOptions options;
  options.max_concurrent = 3;
  options.queue_capacity = 64;
  Server server(cluster_.get(), options);
  constexpr int kTenants = 4;
  constexpr int kQueriesEach = 6;
  std::vector<int64_t> sessions;
  for (int t = 0; t < kTenants; ++t) {
    std::string name = StrCat("tenant", t);
    ASSERT_OK(server.RegisterTenant(name, TenantOptions{}));
    ASSERT_OK_AND_ASSIGN(int64_t s, server.OpenSession(name));
    sessions.push_back(s);
  }
  Coordinator direct(cluster_.get());
  ASSERT_OK_AND_ASSIGN(Dataset solo, direct.Execute(FilterPlan()));

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    clients.emplace_back([&, t] {
      QueryOptions qo;
      qo.query_class = static_cast<QueryClass>(t % 3);
      for (int q = 0; q < kQueriesEach; ++q) {
        auto result = server.Execute(sessions[static_cast<size_t>(t)],
                                     FilterPlan(), qo);
        if (!result.ok()) {
          failures.fetch_add(1);
        } else if (!result.ValueOrDie().LogicallyEquals(solo)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(failures.load(), 0);
  EXPECT_FALSE(AnyTempWithPrefix("__frag_"));
  EXPECT_FALSE(AnyTempWithPrefix("__svc_"));
}

}  // namespace
}  // namespace nexus
