// Incremental view maintenance tests: catalog append tails, the delta-form
// rewrite, ViewRegistry byte-identity (incremental == full recompute),
// refuse-and-fallback, state accounting + shedding, and delta-Iterate wire
// shipping (%NXB1-DELTA bindings).
#include <gtest/gtest.h>

#include "common/memory.h"
#include "common/random.h"
#include "common/str_util.h"
#include "core/serialize.h"
#include "exec/incremental/policy.h"
#include "exec/incremental/view.h"
#include "expr/builder.h"
#include "federation/coordinator.h"
#include "optimizer/incremental.h"
#include "provider/provider.h"
#include "telemetry/metrics.h"
#include "tests/test_util.h"

namespace nexus {
namespace {

using namespace nexus::exprs;  // NOLINT
using incremental::RefreshInfo;
using incremental::RewriteToDelta;
using incremental::ViewRegistry;
using testing::F;
using testing::I;
using testing::MakeSchema;
using testing::MakeTable;
using testing::S;

SchemaPtr BaseSchema() {
  return MakeSchema({Field::Attr("k", DataType::kInt64),
                     Field::Attr("g", DataType::kInt64),
                     Field::Attr("v", DataType::kFloat64)});
}

TablePtr Rows(const SchemaPtr& s, std::vector<std::vector<Value>> rows) {
  return MakeTable(s, rows);
}

// ---------------------------------------------------------------------------
// Catalog tails.
// ---------------------------------------------------------------------------

TEST(CatalogTailTest, AppendAdvancesEpochAndDeltaSinceSlices) {
  InMemoryCatalog cat;
  SchemaPtr s = BaseSchema();
  ASSERT_OK(cat.Put("t", Dataset(Rows(s, {{I(1), I(0), F(1.0)}}))));
  ASSERT_OK_AND_ASSIGN(TableTail t0, cat.Tail("t"));
  EXPECT_EQ(t0.epoch, 0);
  EXPECT_EQ(t0.row_count, 1);

  ASSERT_OK(cat.Append("t", Dataset(Rows(s, {{I(2), I(1), F(2.0)},
                                             {I(3), I(0), F(3.0)}}))));
  ASSERT_OK(cat.Append("t", Dataset(Rows(s, {{I(4), I(1), F(4.0)}}))));
  ASSERT_OK_AND_ASSIGN(TableTail t2, cat.Tail("t"));
  EXPECT_EQ(t2.epoch, 2);
  EXPECT_EQ(t2.row_count, 4);
  EXPECT_EQ(t2.generation, t0.generation);

  ASSERT_OK_AND_ASSIGN(TablePtr d0, cat.DeltaSince("t", 0));
  EXPECT_EQ(d0->num_rows(), 3);
  ASSERT_OK_AND_ASSIGN(TablePtr d1, cat.DeltaSince("t", 1));
  EXPECT_EQ(d1->num_rows(), 1);
  EXPECT_EQ(d1->At(0, 0), I(4));
  ASSERT_OK_AND_ASSIGN(TablePtr d2, cat.DeltaSince("t", 2));
  EXPECT_EQ(d2->num_rows(), 0);
  EXPECT_FALSE(cat.DeltaSince("t", 3).ok());

  // Put replaces wholesale: new generation, epoch rewinds to 0.
  ASSERT_OK(cat.Put("t", Dataset(Rows(s, {{I(9), I(9), F(9.0)}}))));
  ASSERT_OK_AND_ASSIGN(TableTail t3, cat.Tail("t"));
  EXPECT_EQ(t3.epoch, 0);
  EXPECT_NE(t3.generation, t0.generation);
  ASSERT_OK(cat.Drop("t"));
  EXPECT_FALSE(cat.Tail("t").ok());
}

TEST(CatalogTailTest, AppendValidatesSchemaAndKind) {
  InMemoryCatalog cat;
  SchemaPtr s = BaseSchema();
  ASSERT_OK(cat.Put("t", Dataset(Rows(s, {{I(1), I(0), F(1.0)}}))));
  SchemaPtr other = MakeSchema({Field::Attr("x", DataType::kInt64)});
  EXPECT_FALSE(cat.Append("t", Dataset(Rows(other, {{I(1)}}))).ok());
  EXPECT_FALSE(cat.Append("missing", Dataset(Rows(s, {}))).ok());
}

TEST(CatalogTailTest, AppendKeepsStatsFresh) {
  // The stale-stats regression: est-rows must track the grown table, not
  // the Put-time snapshot.
  InMemoryCatalog cat;
  SchemaPtr s = BaseSchema();
  TableBuilder seed(s);
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_OK(seed.AppendRow({I(i), I(i % 4), F(static_cast<double>(i))}));
  }
  ASSERT_OK(cat.Put("t", Dataset(seed.Finish().ValueOrDie())));
  ASSERT_OK_AND_ASSIGN(TableStats before, cat.GetStats("t"));
  EXPECT_EQ(before.row_count, 50);

  for (int round = 0; round < 4; ++round) {
    TableBuilder b(s);
    for (int64_t i = 0; i < 100; ++i) {
      int64_t v = 50 + round * 100 + i;
      ASSERT_OK(b.AppendRow({I(v), I(v % 4), F(static_cast<double>(v))}));
    }
    ASSERT_OK(cat.Append("t", Dataset(b.Finish().ValueOrDie())));
  }
  ASSERT_OK_AND_ASSIGN(TableStats after, cat.GetStats("t"));
  EXPECT_EQ(after.row_count, 450);  // not 50
  // Distinct-count and min/max follow the appended data too.
  const ColumnStats& k = after.columns.at("k");
  EXPECT_GT(k.distinct, 300.0);
  ASSERT_TRUE(k.has_minmax);
  EXPECT_EQ(k.min, 0.0);
  EXPECT_EQ(k.max, 449.0);
}

// ---------------------------------------------------------------------------
// Delta-form rewrite.
// ---------------------------------------------------------------------------

PlanPtr FilterJoinAggPlan() {
  PlanPtr left = Plan::Select(Plan::Scan("base"), Gt(Col("v"), Lit(0.0)));
  PlanPtr join = Plan::Join(left, Plan::Scan("side"), JoinType::kInner, {"k"},
                            {"k"});
  AggSpec sum{AggFunc::kSum, Col("v"), "total"};
  AggSpec cnt{AggFunc::kCount, nullptr, "n"};
  return Plan::Aggregate(join, {"g"}, {sum, cnt});
}

TEST(DeltaFormTest, SupportsFilterJoinAggregateSpine) {
  auto form = RewriteToDelta(FilterJoinAggPlan());
  ASSERT_TRUE(form.supported()) << form.refusal;
  std::string desc = DescribeDeltaForm(form);
  EXPECT_NE(desc.find("Δreduce⊕"), std::string::npos);
  EXPECT_NE(desc.find("Δjoin"), std::string::npos);
  EXPECT_NE(desc.find("Δfilter"), std::string::npos);
}

TEST(DeltaFormTest, RefusalTable) {
  PlanPtr scan = Plan::Scan("base");
  // Sort: output is not append-only.
  auto sort = RewriteToDelta(Plan::Sort(scan, {{"k", true}}));
  EXPECT_FALSE(sort.supported());
  // Non-inner join needs retractions.
  auto outer = RewriteToDelta(Plan::Join(Plan::Scan("base"),
                                         Plan::Scan("side"), JoinType::kLeft,
                                         {"k"}, {"k"}));
  EXPECT_FALSE(outer.supported());
  EXPECT_NE(outer.refusal.find("retraction"), std::string::npos);
  // Keys-free (cross) join.
  auto cross = RewriteToDelta(Plan::Join(Plan::Scan("base"),
                                         Plan::Scan("side"), JoinType::kInner,
                                         {}, {}));
  EXPECT_FALSE(cross.supported());
  // AVG is not a single ⊕-fold.
  AggSpec avg{AggFunc::kAvg, Col("v"), "a"};
  auto with_avg = RewriteToDelta(Plan::Aggregate(scan, {}, {avg}));
  EXPECT_FALSE(with_avg.supported());
  EXPECT_NE(with_avg.refusal.find("AVG"), std::string::npos);
  // Aggregate below the root changes by update, not by append.
  AggSpec cnt{AggFunc::kCount, nullptr, "n"};
  auto nested = RewriteToDelta(
      Plan::Select(Plan::Aggregate(scan, {"g"}, {cnt}), Gt(Col("n"), Lit(1))));
  EXPECT_FALSE(nested.supported());
  EXPECT_NE(DescribeDeltaForm(nested).find("refused:"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ViewRegistry byte-identity.
// ---------------------------------------------------------------------------

/// Refreshes the view and asserts the result is byte-identical to a full
/// recompute of `plan` against the current catalog.
void ExpectRefreshMatchesFull(ViewRegistry* reg, const std::string& name,
                              const Plan& plan, const InMemoryCatalog& cat,
                              RefreshInfo* info = nullptr) {
  ASSERT_OK_AND_ASSIGN(TablePtr got, reg->Refresh(name, info));
  ASSERT_OK_AND_ASSIGN(TablePtr want, incremental::ExecuteViewPlan(plan, cat));
  EXPECT_TRUE(got->Equals(*want)) << "got:\n"
                                  << got->ToString() << "want:\n"
                                  << want->ToString();
}

TEST(ViewRegistryTest, FilterViewFoldsOnlyTheDelta) {
  InMemoryCatalog cat;
  SchemaPtr s = BaseSchema();
  ASSERT_OK(cat.Put("base", Dataset(Rows(s, {{I(1), I(0), F(5.0)},
                                             {I(2), I(1), F(-1.0)}}))));
  PlanPtr plan = Plan::Select(Plan::Scan("base"), Gt(Col("v"), Lit(0.0)));
  ViewRegistry reg(&cat);
  ASSERT_OK(reg.Register("hot", plan));
  ExpectRefreshMatchesFull(&reg, "hot", *plan, cat);

  ASSERT_OK(cat.Append("base", Dataset(Rows(s, {{I(3), I(0), F(2.0)},
                                                {I(4), I(1), F(-3.0)},
                                                {I(5), I(0), F(7.0)}}))));
  RefreshInfo info;
  ExpectRefreshMatchesFull(&reg, "hot", *plan, cat, &info);
  EXPECT_TRUE(info.incremental);
  EXPECT_FALSE(info.fell_back);
  EXPECT_EQ(info.delta_rows, 2);  // two of the three appended rows pass

  // No appends: an empty refresh is still the same bytes.
  ExpectRefreshMatchesFull(&reg, "hot", *plan, cat, &info);
  EXPECT_TRUE(info.incremental);
  EXPECT_EQ(info.delta_rows, 0);
}

TEST(ViewRegistryTest, JoinViewProbesOnlyTheDelta) {
  InMemoryCatalog cat;
  SchemaPtr s = BaseSchema();
  SchemaPtr side = MakeSchema({Field::Attr("k", DataType::kInt64),
                               Field::Attr("name", DataType::kString)});
  ASSERT_OK(cat.Put("base", Dataset(Rows(s, {{I(1), I(0), F(5.0)},
                                             {I(2), I(1), F(6.0)}}))));
  ASSERT_OK(cat.Put("side", Dataset(Rows(side, {{I(1), S("a")},
                                                {I(2), S("b")},
                                                {I(1), S("c")}}))));
  PlanPtr plan = Plan::Join(Plan::Scan("base"), Plan::Scan("side"),
                            JoinType::kInner, {"k"}, {"k"});
  ViewRegistry reg(&cat);
  ASSERT_OK(reg.Register("j", plan));
  ExpectRefreshMatchesFull(&reg, "j", *plan, cat);

  // Appends on both sides, interleaved over several refreshes: ΔR⋈S_old and
  // R_new⋈ΔS pairs must land exactly where a full recompute puts them.
  ASSERT_OK(cat.Append("base", Dataset(Rows(s, {{I(1), I(2), F(7.0)}}))));
  ExpectRefreshMatchesFull(&reg, "j", *plan, cat);
  ASSERT_OK(cat.Append("side", Dataset(Rows(side, {{I(2), S("d")},
                                                   {I(3), S("e")}}))));
  ASSERT_OK(cat.Append("base", Dataset(Rows(s, {{I(3), I(3), F(8.0)},
                                                {I(2), I(4), F(9.0)}}))));
  RefreshInfo info;
  ExpectRefreshMatchesFull(&reg, "j", *plan, cat, &info);
  EXPECT_TRUE(info.incremental);
  EXPECT_GT(info.state_bytes, 0);
}

TEST(ViewRegistryTest, AggregateViewFoldsIntoRetainedGroups) {
  InMemoryCatalog cat;
  SchemaPtr s = BaseSchema();
  ASSERT_OK(cat.Put("base", Dataset(Rows(s, {{I(1), I(0), F(5.0)},
                                             {I(2), I(1), F(6.0)}}))));
  AggSpec sum{AggFunc::kSum, Col("v"), "total"};
  AggSpec cnt{AggFunc::kCount, nullptr, "n"};
  AggSpec mx{AggFunc::kMax, Col("k"), "mk"};
  PlanPtr plan = Plan::Aggregate(
      Plan::Select(Plan::Scan("base"), Gt(Col("v"), Lit(0.0))), {"g"},
      {sum, cnt, mx});
  ViewRegistry reg(&cat);
  ASSERT_OK(reg.Register("agg", plan));
  ExpectRefreshMatchesFull(&reg, "agg", *plan, cat);

  // New rows into existing groups, a brand-new group, and filtered rows.
  ASSERT_OK(cat.Append("base", Dataset(Rows(s, {{I(7), I(1), F(1.0)},
                                                {I(9), I(2), F(3.0)},
                                                {I(8), I(0), F(-2.0)}}))));
  RefreshInfo info;
  ExpectRefreshMatchesFull(&reg, "agg", *plan, cat, &info);
  EXPECT_TRUE(info.incremental);
  ASSERT_OK(cat.Append("base", Dataset(Rows(s, {{I(4), I(2), F(2.5)}}))));
  ExpectRefreshMatchesFull(&reg, "agg", *plan, cat);
}

TEST(ViewRegistryTest, GlobalAggregateOverEmptyInputKeepsDefaultRow) {
  InMemoryCatalog cat;
  SchemaPtr s = BaseSchema();
  ASSERT_OK(cat.Put("base", Dataset(Table::Empty(s))));
  AggSpec cnt{AggFunc::kCount, nullptr, "n"};
  AggSpec sum{AggFunc::kSum, Col("k"), "sk"};
  PlanPtr plan = Plan::Aggregate(Plan::Scan("base"), {}, {cnt, sum});
  ViewRegistry reg(&cat);
  ASSERT_OK(reg.Register("g", plan));
  ExpectRefreshMatchesFull(&reg, "g", *plan, cat);
  ASSERT_OK(cat.Append("base", Dataset(Rows(s, {{I(1), I(0), F(1.0)}}))));
  ExpectRefreshMatchesFull(&reg, "g", *plan, cat);
}

TEST(ViewRegistryTest, StaticallyRefusedPlanFallsBackToFullRecompute) {
  InMemoryCatalog cat;
  SchemaPtr s = BaseSchema();
  ASSERT_OK(cat.Put("base", Dataset(Rows(s, {{I(2), I(0), F(5.0)},
                                             {I(1), I(1), F(6.0)}}))));
  PlanPtr plan = Plan::Sort(Plan::Scan("base"), {{"k", true}});
  ViewRegistry reg(&cat);
  ASSERT_OK(reg.Register("sorted", plan));
  ASSERT_OK_AND_ASSIGN(std::string desc, reg.Describe("sorted"));
  EXPECT_NE(desc.find("refused:"), std::string::npos);

  ASSERT_OK(cat.Append("base", Dataset(Rows(s, {{I(0), I(0), F(7.0)}}))));
  RefreshInfo info;
  ExpectRefreshMatchesFull(&reg, "sorted", *plan, cat, &info);
  EXPECT_FALSE(info.incremental);
  EXPECT_FALSE(info.refusal.empty());
}

TEST(ViewRegistryTest, TableReplacedUnderViewForcesRebuild) {
  InMemoryCatalog cat;
  SchemaPtr s = BaseSchema();
  ASSERT_OK(cat.Put("base", Dataset(Rows(s, {{I(1), I(0), F(5.0)}}))));
  PlanPtr plan = Plan::Select(Plan::Scan("base"), Gt(Col("v"), Lit(0.0)));
  ViewRegistry reg(&cat);
  ASSERT_OK(reg.Register("hot", plan));
  ASSERT_OK(reg.Refresh("hot").status());

  // Put (not Append) bumps the generation: retained state is unusable.
  ASSERT_OK(cat.Put("base", Dataset(Rows(s, {{I(8), I(3), F(1.0)},
                                             {I(9), I(4), F(2.0)}}))));
  RefreshInfo info;
  ExpectRefreshMatchesFull(&reg, "hot", *plan, cat, &info);
  EXPECT_TRUE(info.fell_back);
  EXPECT_NE(info.refusal.find("generation"), std::string::npos);
  // The rebuild re-seated the watermarks: the next refresh is incremental.
  ASSERT_OK(cat.Append("base", Dataset(Rows(s, {{I(10), I(3), F(3.0)}}))));
  ExpectRefreshMatchesFull(&reg, "hot", *plan, cat, &info);
  EXPECT_TRUE(info.incremental);
  EXPECT_FALSE(info.fell_back);
}

TEST(ViewRegistryTest, OutOfOrderFloatFoldRefusesAndFallsBack) {
  // Union tags keys by branch, so an append to the *left* branch after the
  // right branch contributed rows lands out of order at an order-sensitive
  // float ⊕-fold — the runtime refusal, answered by a full rebuild.
  InMemoryCatalog cat;
  SchemaPtr s = BaseSchema();
  ASSERT_OK(cat.Put("a", Dataset(Rows(s, {{I(1), I(0), F(0.1)}}))));
  ASSERT_OK(cat.Put("b", Dataset(Rows(s, {{I(2), I(0), F(0.2)}}))));
  AggSpec sum{AggFunc::kSum, Col("v"), "total"};
  PlanPtr plan = Plan::Aggregate(
      Plan::Union(Plan::Scan("a"), Plan::Scan("b")), {"g"}, {sum});
  ViewRegistry reg(&cat);
  ASSERT_OK(reg.Register("u", plan));
  ExpectRefreshMatchesFull(&reg, "u", *plan, cat);

  ASSERT_OK(cat.Append("a", Dataset(Rows(s, {{I(3), I(0), F(0.3)}}))));
  RefreshInfo info;
  ExpectRefreshMatchesFull(&reg, "u", *plan, cat, &info);
  EXPECT_TRUE(info.fell_back);
  EXPECT_NE(info.refusal.find("order"), std::string::npos);

  // An int-only fold over the same shape is order-insensitive: no refusal.
  AggSpec isum{AggFunc::kSum, Col("k"), "ik"};
  PlanPtr iplan = Plan::Aggregate(
      Plan::Union(Plan::Scan("a"), Plan::Scan("b")), {"g"}, {isum});
  ASSERT_OK(reg.Register("iu", iplan));
  ASSERT_OK(cat.Append("a", Dataset(Rows(s, {{I(5), I(0), F(0.5)}}))));
  ExpectRefreshMatchesFull(&reg, "iu", *iplan, cat, &info);
  EXPECT_TRUE(info.incremental);
  EXPECT_FALSE(info.fell_back);
}

TEST(ViewRegistryTest, StateIsChargedAndSheddable) {
  InMemoryCatalog cat;
  SchemaPtr s = BaseSchema();
  SchemaPtr side = MakeSchema({Field::Attr("k", DataType::kInt64),
                               Field::Attr("name", DataType::kString)});
  TableBuilder bb(s), sb(side);
  for (int64_t i = 0; i < 200; ++i) {
    ASSERT_OK(bb.AppendRow({I(i % 16), I(i % 4), F(static_cast<double>(i))}));
    ASSERT_OK(sb.AppendRow({I(i % 16), S(StrCat("n", i))}));
  }
  ASSERT_OK(cat.Put("base", Dataset(bb.Finish().ValueOrDie())));
  ASSERT_OK(cat.Put("side", Dataset(sb.Finish().ValueOrDie())));
  PlanPtr plan = Plan::Join(Plan::Scan("base"), Plan::Scan("side"),
                            JoinType::kInner, {"k"}, {"k"});
  ViewRegistry reg(&cat);
  ASSERT_OK(reg.Register("j", plan));
  int64_t resident = reg.state_bytes();
  EXPECT_GT(resident, 0);

  // Shed everything: join build sides park on disk...
  ASSERT_OK(reg.ShedState(0));
  EXPECT_LT(reg.state_bytes(), resident);
  // ...and the next refresh reloads them and still matches a full recompute.
  ASSERT_OK(cat.Append("base", Dataset(Rows(s, {{I(3), I(1), F(999.0)}}))));
  RefreshInfo info;
  ExpectRefreshMatchesFull(&reg, "j", *plan, cat, &info);
  EXPECT_TRUE(info.incremental);
  ASSERT_OK(reg.Unregister("j"));
  EXPECT_EQ(reg.state_bytes(), 0);
}

// ---------------------------------------------------------------------------
// Delta binding wire + provider sticky bindings.
// ---------------------------------------------------------------------------

TEST(DeltaBindingTest, WireRoundTrips) {
  std::string wire = BuildDeltaBindingWire(42, 7, "TAILBYTES");
  ASSERT_TRUE(IsDeltaBindingWire(wire));
  EXPECT_FALSE(IsDeltaBindingWire("(scan base)"));
  ASSERT_OK_AND_ASSIGN(DeltaBindingView v, ParseDeltaBindingWire(wire));
  EXPECT_EQ(v.base_rows, 42);
  EXPECT_EQ(v.chain_fp, 7u);
  EXPECT_EQ(v.tail_wire, "TAILBYTES");
  EXPECT_FALSE(ParseDeltaBindingWire("%NXB1-DELTA x\n").ok());
  // The chain fingerprint is order-sensitive and never 0.
  uint64_t c1 = ChainFingerprint(0, "a");
  uint64_t c2 = ChainFingerprint(c1, "b");
  EXPECT_NE(c1, 0u);
  EXPECT_NE(c2, c1);
  EXPECT_NE(ChainFingerprint(ChainFingerprint(0, "b"), "a"), c2);
}

TEST(DeltaBindingTest, ProviderMissesWithoutABase) {
  // A delta binding against a provider that holds no base must come back as
  // NotFound carrying the miss marker — the coordinator's re-ship trigger.
  incremental::SetIncrementalOverride(true);
  struct Cleaner {
    ~Cleaner() { incremental::ClearIncrementalOverride(); }
  } cleanup;
  ProviderPtr p = MakeRelationalProvider();
  SchemaPtr s = MakeSchema({Field::Attr("v", DataType::kInt64)});
  std::string tail =
      SerializeDatasetWire(Dataset(Rows(s, {{I(1)}})), WireFormat::kText);
  std::string plan_wire = SerializePlan(*Plan::Scan("b0"));
  std::string wire = BuildWireEnvelope(
      WireEnvelope::Kind::kPlanStore, FingerprintWire(plan_wire),
      {{"b0", BuildDeltaBindingWire(3, 99, tail)}}, plan_wire);
  auto r = p->ExecuteWire(wire);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_NE(r.status().message().find(kDeltaBindingMissMarker),
            std::string::npos);

  // Ship the full value once; the same delta (correct chain) now lands.
  std::string full =
      SerializeDatasetWire(Dataset(Rows(s, {{I(7)}, {I(8)}, {I(9)}})),
                           WireFormat::kText);
  std::string store = BuildWireEnvelope(WireEnvelope::Kind::kPlanStore,
                                        FingerprintWire(plan_wire) + 1,
                                        {{"b0", full}}, plan_wire);
  ASSERT_OK(p->ExecuteWire(store).status());
  std::string delta = BuildWireEnvelope(
      WireEnvelope::Kind::kPlanStore, FingerprintWire(plan_wire) + 2,
      {{"b0", BuildDeltaBindingWire(3, ChainFingerprint(0, full), tail)}},
      plan_wire);
  ASSERT_OK_AND_ASSIGN(Dataset got, p->ExecuteWire(delta));
  EXPECT_EQ(got.num_rows(), 4);  // 3 base rows + the 1-row tail
  EXPECT_EQ(got.table()->At(3, 0), I(1));
}

// ---------------------------------------------------------------------------
// Delta-driven Iterate over the wire.
// ---------------------------------------------------------------------------

/// An accumulating client-driven loop: each round appends one Values row to
/// the loop state, so every round's binding prefix-extends the last.
PlanPtr GrowingLoop(const SchemaPtr& s, int64_t rounds) {
  IterateOp op;
  op.body = Plan::Union(Plan::LoopVar(),
                        Plan::Values(Dataset(MakeTable(s, {{I(-1)}}))));
  op.max_iters = rounds;
  return Plan::Iterate(Plan::Scan("state0"), op);
}

class DeltaIterateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>();
    ASSERT_OK(cluster_->AddServer("relstore", MakeRelationalProvider()));
    s_ = MakeSchema({Field::Attr("v", DataType::kInt64)});
    TableBuilder b(s_);
    for (int64_t i = 0; i < 64; ++i) ASSERT_OK(b.AppendRow({I(i)}));
    ASSERT_OK(cluster_->PutData("relstore", "state0",
                                Dataset(b.Finish().ValueOrDie())));
  }
  std::unique_ptr<Cluster> cluster_;
  SchemaPtr s_;
};

TEST_F(DeltaIterateTest, ShipsOnlyPerRoundDeltas) {
  PlanPtr loop = GrowingLoop(s_, 8);
  CoordinatorOptions opts;
  opts.provider_side_iteration = false;  // force the client-driven loop

  incremental::ClearIncrementalOverride();
  incremental::SetIncrementalOverride(false);
  Coordinator off(cluster_.get(), opts);
  ExecutionMetrics m_off;
  ASSERT_OK_AND_ASSIGN(Dataset want, off.Execute(loop, &m_off));
  EXPECT_EQ(m_off.delta_bindings, 0);

  incremental::SetIncrementalOverride(true);
  struct Cleaner {
    ~Cleaner() { incremental::ClearIncrementalOverride(); }
  } cleanup;
  Coordinator on(cluster_.get(), opts);
  ExecutionMetrics m_on;
  ASSERT_OK_AND_ASSIGN(Dataset got, on.Execute(loop, &m_on));

  // Byte-identical result, measurably fewer wire bytes, same message count.
  EXPECT_TRUE(got.table()->Equals(*want.table()));
  EXPECT_GE(m_on.delta_bindings, 7);  // every round after the first
  EXPECT_GT(m_on.delta_bytes_saved, 0);
  EXPECT_LT(m_on.data_bytes + m_on.plan_bytes,
            m_off.data_bytes + m_off.plan_bytes);
  EXPECT_EQ(m_on.messages, m_off.messages);
  EXPECT_EQ(m_on.client_loop_iterations, m_off.client_loop_iterations);
}

TEST_F(DeltaIterateTest, ExplainAnalyzeReportsIncrementalLine) {
  incremental::SetIncrementalOverride(true);
  struct Cleaner {
    ~Cleaner() { incremental::ClearIncrementalOverride(); }
  } cleanup;
  CoordinatorOptions opts;
  opts.provider_side_iteration = false;
  Coordinator coord(cluster_.get(), opts);
  ASSERT_OK_AND_ASSIGN(std::string report,
                       coord.ExplainAnalyze(GrowingLoop(s_, 6)));
  EXPECT_NE(report.find("incremental: "), std::string::npos);
  EXPECT_NE(report.find("delta bindings"), std::string::npos);
}

}  // namespace
}  // namespace nexus
