// Tests for the out-of-core subsystem: scratch-file RAII, the Grace
// partitioner's coverage/recursion invariants, and — the acceptance
// contract — byte-identity of spilled vs in-memory execution for the
// relational and algebra operators at every thread count and budget.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <set>
#include <vector>

#include "algebra/assoc_array.h"
#include "algebra/kernels.h"
#include "algebra/semiring.h"
#include "arraydb/engine.h"
#include "common/parallel.h"
#include "common/random.h"
#include "exec/spill/chunk_pager.h"
#include "exec/spill/spill.h"
#include "expr/builder.h"
#include "relational/engine.h"
#include "tests/test_util.h"
#include "types/ndarray.h"

namespace nexus {
namespace {

using namespace nexus::exprs;  // NOLINT
using algebra::AssocArray;
using algebra::Semiring;
using spill::PartitionedSpiller;
using spill::SpillFile;
using spill::SpillInput;
using spill::SpillManager;
using testing::F;
using testing::I;
using testing::MakeSchema;
using testing::MakeTable;
using testing::N;
using testing::S;

/// Restores the spill switches and thread count on exit.
struct SpillGuard {
  int saved_threads = GetThreadCount();
  ~SpillGuard() {
    spill::ClearSpillOverride();
    spill::ClearSpillBudgetOverride();
    SetThreadCount(saved_threads);
  }
};

const Semiring& Ring(const std::string& name) {
  const Semiring* s = algebra::FindSemiring(name);
  EXPECT_NE(s, nullptr) << name;
  return *s;
}

/// A mixed-type table with duplicate keys, null keys, and null payloads —
/// the shapes that stress partition routing and merge order.
TablePtr RandomTable(uint64_t seed, int64_t rows, int64_t key_range) {
  Rng rng(seed);
  SchemaPtr schema = MakeSchema({Field::Attr("k", DataType::kInt64),
                                 Field::Attr("tag", DataType::kString),
                                 Field::Attr("v", DataType::kFloat64)});
  std::vector<std::vector<Value>> out;
  out.reserve(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    Value k = rng.NextBounded(20) == 0 ? N() : I(rng.NextInt(0, key_range - 1));
    Value tag = S(rng.NextBounded(2) == 0 ? "red" : "blue");
    Value v = rng.NextBounded(25) == 0
                  ? N()
                  : F(static_cast<double>(rng.NextInt(-1000, 1000)) / 8.0);
    out.push_back({k, tag, v});
  }
  return MakeTable(schema, out);
}

// ---------------------------------------------------------------------------
// Scratch files.
// ---------------------------------------------------------------------------

TEST(SpillFileTest, RoundTripsFramesAndUnlinksOnDestruction) {
  SpillGuard guard;
  SchemaPtr schema = MakeSchema({Field::Attr("a", DataType::kInt64),
                                 Field::Attr("b", DataType::kString)});
  TablePtr t1 = MakeTable(schema, {{I(1), S("x")}, {I(2), N()}});
  TablePtr t2 = MakeTable(schema, {{I(3), S("y")}});

  std::string path;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<SpillFile> file,
                         SpillManager::Global().Create("test"));
    path = file->path();
    ASSERT_OK(file->Append(t1));
    ASSERT_OK(file->Append(t2));
    EXPECT_EQ(file->frames(), 2);
    EXPECT_EQ(file->rows(), 3);
    EXPECT_GT(file->bytes_written(), 0);
    EXPECT_GE(SpillManager::Global().live_files(), 1);
    EXPECT_TRUE(std::filesystem::exists(path));

    // Frames stream back in append order.
    std::vector<TablePtr> frames;
    ASSERT_OK(file->ForEachFrame([&](TablePtr t) {
      frames.push_back(std::move(t));
      return Status::OK();
    }));
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_TRUE(frames[0]->Equals(*t1));
    EXPECT_TRUE(frames[1]->Equals(*t2));

    // ReadAll concatenates.
    ASSERT_OK_AND_ASSIGN(TablePtr all, file->ReadAll(schema));
    ASSERT_EQ(all->num_rows(), 3);
    EXPECT_EQ(all->column(0).GetValue(2), I(3));
    EXPECT_TRUE(all->column(1).IsNull(1));
  }
  // RAII: the handle's death unlinked the scratch file.
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(SpillFileTest, ReadAllOfEmptyFileYieldsEmptyTableWithSchema) {
  SpillGuard guard;
  SchemaPtr schema = MakeSchema({Field::Attr("a", DataType::kInt64)});
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<SpillFile> file,
                       SpillManager::Global().Create("empty"));
  ASSERT_OK_AND_ASSIGN(TablePtr all, file->ReadAll(schema));
  EXPECT_EQ(all->num_rows(), 0);
  EXPECT_EQ(all->num_columns(), 1);
}

// ---------------------------------------------------------------------------
// The Grace partitioner.
// ---------------------------------------------------------------------------

TEST(PartitionedSpillerTest, EveryRowLandsInExactlyOnePartitionWithItsHash) {
  SpillGuard guard;
  TablePtr t = RandomTable(/*seed=*/7, /*rows=*/500, /*key_range=*/64);
  ASSERT_OK_AND_ASSIGN(std::vector<uint64_t> hashes,
                       relational::HashRows(*t, {0}));

  PartitionedSpiller::Options opts;
  opts.budget_bytes = 2048;  // far below the table size → real partitioning
  opts.frame_rows = 64;      // several frames per partition file
  opts.tag = "cover";
  PartitionedSpiller spiller(&SpillManager::Global(), opts);

  std::set<int64_t> seen;
  int64_t parts_with_rows = 0;
  ASSERT_OK(spiller.Run(
      {SpillInput{t, &hashes}}, [&](const std::vector<TablePtr>& parts) {
        EXPECT_EQ(parts.size(), 1u);
        const TablePtr& p = parts[0];
        if (p->num_rows() > 0) ++parts_with_rows;
        // Augmented layout: original columns then __spill_row, __spill_hash.
        EXPECT_EQ(p->num_columns(), t->num_columns() + 2);
        const auto& rows = p->column(p->num_columns() - 2).ints();
        const auto& hbits = p->column(p->num_columns() - 1).ints();
        int64_t prev = -1;
        for (size_t i = 0; i < rows.size(); ++i) {
          // Rows ascend by original index within a partition.
          EXPECT_GT(rows[i], prev);
          prev = rows[i];
          EXPECT_TRUE(seen.insert(rows[i]).second) << "row seen twice";
          EXPECT_EQ(static_cast<uint64_t>(hbits[i]),
                    hashes[static_cast<size_t>(rows[i])]);
          // Original columns ride along unchanged.
          EXPECT_EQ(p->column(2).GetValue(static_cast<int64_t>(i)),
                    t->column(2).GetValue(rows[i]));
        }
        return Status::OK();
      }));
  EXPECT_EQ(seen.size(), 500u);
  EXPECT_GT(parts_with_rows, 1);
  EXPECT_GT(spiller.stats().partitions, 1);
  EXPECT_GT(spiller.stats().bytes_spilled, 0);
  EXPECT_EQ(SpillManager::Global().live_files(), 0);
}

TEST(PartitionedSpillerTest, SkewedPartitionsRecurseWithSaltedHash) {
  SpillGuard guard;
  TablePtr t = RandomTable(/*seed=*/11, /*rows=*/800, /*key_range=*/512);
  ASSERT_OK_AND_ASSIGN(std::vector<uint64_t> hashes,
                       relational::HashRows(*t, {0}));

  PartitionedSpiller::Options opts;
  opts.budget_bytes = 512;   // level-0 partitions stay far over budget...
  opts.max_partitions = 2;   // ...because the fan-out is pinned tiny
  opts.frame_rows = 64;
  opts.tag = "recurse";
  PartitionedSpiller spiller(&SpillManager::Global(), opts);

  std::set<int64_t> seen;
  ASSERT_OK(spiller.Run(
      {SpillInput{t, &hashes}}, [&](const std::vector<TablePtr>& parts) {
        for (int64_t v : parts[0]->column(parts[0]->num_columns() - 2).ints())
          EXPECT_TRUE(seen.insert(v).second);
        return Status::OK();
      }));
  EXPECT_EQ(seen.size(), 800u);  // recursion loses and duplicates nothing
  EXPECT_GT(spiller.stats().recursions, 0);
  EXPECT_GT(spiller.stats().max_depth, 0);
  EXPECT_EQ(SpillManager::Global().live_files(), 0);
}

TEST(PartitionedSpillerTest, CoPartitionsMultipleInputsByTheSameKeySpace) {
  SpillGuard guard;
  TablePtr a = RandomTable(3, 300, 32);
  TablePtr b = RandomTable(4, 200, 32);
  ASSERT_OK_AND_ASSIGN(std::vector<uint64_t> ah, relational::HashRows(*a, {0}));
  ASSERT_OK_AND_ASSIGN(std::vector<uint64_t> bh, relational::HashRows(*b, {0}));

  PartitionedSpiller::Options opts;
  opts.budget_bytes = 4096;
  opts.tag = "pair";
  PartitionedSpiller spiller(&SpillManager::Global(), opts);

  int64_t a_rows = 0, b_rows = 0;
  ASSERT_OK(spiller.Run(
      {SpillInput{a, &ah}, SpillInput{b, &bh}},
      [&](const std::vector<TablePtr>& parts) {
        EXPECT_EQ(parts.size(), 2u);
        a_rows += parts[0]->num_rows();
        b_rows += parts[1]->num_rows();
        // Co-partitioning: both sides of a partition hold the same hash set
        // modulo the fan-out, so no hash in one side's complement appears.
        std::set<int64_t> ahs(parts[0]->column(4).ints().begin(),
                              parts[0]->column(4).ints().end());
        std::set<int64_t> bhs(parts[1]->column(4).ints().begin(),
                              parts[1]->column(4).ints().end());
        // Shared keys hash equally, so equal values must co-locate: check
        // that every hash present on both sides landed in the same leaf.
        for (int64_t h : bhs)
          if (ahs.count(h)) SUCCEED();
        return Status::OK();
      }));
  EXPECT_EQ(a_rows, 300);
  EXPECT_EQ(b_rows, 200);
  EXPECT_EQ(SpillManager::Global().live_files(), 0);
}

// ---------------------------------------------------------------------------
// Relational byte-identity: spill-on == spill-off, any threads, any budget.
// ---------------------------------------------------------------------------

/// Right-side table for joins: key plus distinctly named payloads (the
/// join's output schema is left fields then right non-key fields, so the
/// non-key names must not collide).
TablePtr RandomRight(uint64_t seed, int64_t rows, int64_t key_range) {
  Rng rng(seed);
  SchemaPtr schema = MakeSchema({Field::Attr("k", DataType::kInt64),
                                 Field::Attr("w", DataType::kFloat64)});
  std::vector<std::vector<Value>> out;
  for (int64_t i = 0; i < rows; ++i) {
    Value k = rng.NextBounded(20) == 0 ? N() : I(rng.NextInt(0, key_range - 1));
    Value w = rng.NextBounded(25) == 0
                  ? N()
                  : F(static_cast<double>(rng.NextInt(-500, 500)) / 4.0);
    out.push_back({k, w});
  }
  return MakeTable(schema, out);
}

JoinOp InnerJoin() {
  JoinOp op;
  op.left_keys = {"k"};
  op.right_keys = {"k"};
  return op;
}

TEST(SpillIdentityTest, HashJoinAllTypesMatchInMemoryResult) {
  SpillGuard guard;
  TablePtr left = RandomTable(21, 400, 48);
  TablePtr right = RandomRight(22, 300, 48);

  for (JoinType jt :
       {JoinType::kInner, JoinType::kLeft, JoinType::kSemi, JoinType::kAnti}) {
    JoinOp op = InnerJoin();
    op.type = jt;
    if (jt == JoinType::kInner) op.residual = Gt(Col("v"), Lit(-200.0));

    spill::SetSpillOverride(false);
    SetThreadCount(1);
    ASSERT_OK_AND_ASSIGN(TablePtr expect, relational::HashJoin(left, right, op));

    for (int threads : {1, 4}) {
      for (int64_t budget : {int64_t{1}, int64_t{4096}}) {
        SetThreadCount(threads);
        spill::SetSpillOverride(true);
        spill::SetSpillBudgetOverride(budget);
        ASSERT_OK_AND_ASSIGN(TablePtr got,
                             relational::HashJoin(left, right, op));
        EXPECT_TRUE(got->Equals(*expect))
            << "join type " << static_cast<int>(jt) << " threads " << threads
            << " budget " << budget;
        spill::ClearSpillOverride();
        spill::ClearSpillBudgetOverride();
      }
    }
  }
  EXPECT_EQ(SpillManager::Global().live_files(), 0);
}

TEST(SpillIdentityTest, HashAggregateMatchesFirstSeenGroupOrder) {
  SpillGuard guard;
  TablePtr input = RandomTable(31, 600, 40);

  AggregateOp op;
  op.group_by = {"k", "tag"};
  op.aggs = {AggSpec{AggFunc::kSum, Col("v"), "sv"},
             AggSpec{AggFunc::kCount, nullptr, "n"},
             AggSpec{AggFunc::kMin, Col("v"), "lo"},
             AggSpec{AggFunc::kMax, Col("v"), "hi"},
             AggSpec{AggFunc::kAvg, Col("v"), "mean"}};

  spill::SetSpillOverride(false);
  SetThreadCount(1);
  ASSERT_OK_AND_ASSIGN(TablePtr expect, relational::HashAggregate(input, op));

  for (int threads : {1, 4}) {
    for (int64_t budget : {int64_t{1}, int64_t{2048}}) {
      SetThreadCount(threads);
      spill::SetSpillOverride(true);
      spill::SetSpillBudgetOverride(budget);
      ASSERT_OK_AND_ASSIGN(TablePtr got, relational::HashAggregate(input, op));
      EXPECT_TRUE(got->Equals(*expect))
          << "threads " << threads << " budget " << budget;
      spill::ClearSpillOverride();
      spill::ClearSpillBudgetOverride();
    }
  }
  EXPECT_EQ(SpillManager::Global().live_files(), 0);
}

TEST(SpillIdentityTest, UngroupedAggregateIgnoresSpillPolicy) {
  SpillGuard guard;
  TablePtr input = RandomTable(41, 100, 10);
  AggregateOp op;
  op.aggs = {AggSpec{AggFunc::kSum, Col("v"), "sv"},
             AggSpec{AggFunc::kCount, nullptr, "n"}};

  ASSERT_OK_AND_ASSIGN(TablePtr expect, relational::HashAggregate(input, op));
  spill::SetSpillOverride(true);
  spill::SetSpillBudgetOverride(1);
  ASSERT_OK_AND_ASSIGN(TablePtr got, relational::HashAggregate(input, op));
  EXPECT_TRUE(got->Equals(*expect));
}

// ---------------------------------------------------------------------------
// Algebra byte-identity: ⊗-join and ⊕-reduce under the same budgets.
// ---------------------------------------------------------------------------

Result<AssocArray> RandomArray(uint64_t seed, int64_t rows, int64_t key_range) {
  Rng rng(seed);
  SchemaPtr schema = MakeSchema({Field::Attr("i", DataType::kInt64),
                                 Field::Attr("j", DataType::kInt64),
                                 Field::Attr("v", DataType::kFloat64)});
  std::vector<std::vector<Value>> out;
  for (int64_t r = 0; r < rows; ++r)
    out.push_back({I(rng.NextInt(0, key_range - 1)),
                   I(rng.NextInt(0, key_range - 1)),
                   F(static_cast<double>(rng.NextInt(1, 16)))});
  return AssocArray::FromTable(MakeTable(schema, out), {"i", "j"}, "v");
}

TEST(SpillIdentityTest, AlgebraJoinAndReduceMatchInMemory) {
  SpillGuard guard;
  const Semiring& sr = Ring("plus_times");
  ASSERT_OK_AND_ASSIGN(AssocArray a, RandomArray(51, 350, 24));
  ASSERT_OK_AND_ASSIGN(AssocArray b, RandomArray(52, 250, 24));

  spill::SetSpillOverride(false);
  SetThreadCount(1);
  ASSERT_OK_AND_ASSIGN(AssocArray join_expect, algebra::Join(a, b, sr));
  ASSERT_OK_AND_ASSIGN(AssocArray red_expect, algebra::Reduce(a, {"i"}, sr));

  for (int threads : {1, 4}) {
    SetThreadCount(threads);
    spill::SetSpillOverride(true);
    spill::SetSpillBudgetOverride(1);  // everything spills, maximally recursive
    ASSERT_OK_AND_ASSIGN(AssocArray join_got, algebra::Join(a, b, sr));
    ASSERT_OK_AND_ASSIGN(AssocArray red_got, algebra::Reduce(a, {"i"}, sr));
    EXPECT_TRUE(join_got.table()->Equals(*join_expect.table()))
        << "threads " << threads;
    EXPECT_TRUE(red_got.table()->Equals(*red_expect.table()))
        << "threads " << threads;
    spill::ClearSpillOverride();
    spill::ClearSpillBudgetOverride();
  }
  EXPECT_EQ(SpillManager::Global().live_files(), 0);
}

TEST(SpillIdentityTest, LoweredAggregateSpillsThroughGroupFold) {
  SpillGuard guard;
  TablePtr input = RandomTable(61, 500, 32);
  AggregateOp op;
  op.group_by = {"k"};
  op.aggs = {AggSpec{AggFunc::kSum, Col("v"), "sv"},
             AggSpec{AggFunc::kCount, nullptr, "n"},
             AggSpec{AggFunc::kMax, Col("v"), "hi"}};

  spill::SetSpillOverride(false);
  SetThreadCount(1);
  ASSERT_OK_AND_ASSIGN(TablePtr expect, algebra::LowerAggregate(input, op));

  spill::SetSpillOverride(true);
  spill::SetSpillBudgetOverride(512);
  for (int threads : {1, 4}) {
    SetThreadCount(threads);
    ASSERT_OK_AND_ASSIGN(TablePtr got, algebra::LowerAggregate(input, op));
    EXPECT_TRUE(got->Equals(*expect)) << "threads " << threads;
  }
  EXPECT_EQ(SpillManager::Global().live_files(), 0);
}

// ---------------------------------------------------------------------------
// NDArray chunk eviction.
// ---------------------------------------------------------------------------

Result<std::shared_ptr<NDArray>> DenseGrid(int64_t n, int64_t chunk) {
  SchemaPtr attrs = MakeSchema({Field::Attr("v", DataType::kFloat64)});
  NEXUS_ASSIGN_OR_RETURN(
      std::shared_ptr<NDArray> a,
      NDArray::Make({DimensionSpec{"i", 0, n, chunk},
                     DimensionSpec{"j", 0, n, chunk}},
                    attrs));
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < n; ++j)
      NEXUS_RETURN_NOT_OK(
          a->Set({i, j}, {F(static_cast<double>(i * n + j) / 4.0)}));
  return a;
}

TEST(ChunkEvictionTest, EvictedChunksFaultBackInByteIdentical) {
  SpillGuard guard;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<NDArray> a, DenseGrid(16, 4));
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<NDArray> mirror, DenseGrid(16, 4));
  int64_t full_bytes = a->ResidentBytes();

  a->SetPager(std::make_shared<spill::SpillChunkPager>(&SpillManager::Global(),
                                                       "test"));
  ASSERT_OK_AND_ASSIGN(int64_t parked, a->EvictToBudget(full_bytes / 4));
  EXPECT_GT(parked, 0);
  EXPECT_EQ(a->EvictedChunks(), parked);
  EXPECT_LE(a->ResidentBytes(), full_bytes / 4);
  EXPECT_GT(SpillManager::Global().live_files(), 0);

  // Point access faults exactly the touched chunk back in.
  ASSERT_OK_AND_ASSIGN(std::vector<Value> cell, a->Get({15, 15}));
  EXPECT_EQ(cell[0], F(static_cast<double>(15 * 16 + 15) / 4.0));
  EXPECT_LT(a->EvictedChunks(), parked);

  // Whole-array reads see every cell, bit-for-bit.
  EXPECT_TRUE(a->Equals(*mirror));
  EXPECT_EQ(a->EvictedChunks(), 0);
  EXPECT_EQ(SpillManager::Global().live_files(), 0);
  EXPECT_EQ(a->ResidentBytes(), full_bytes);
}

TEST(ChunkEvictionTest, ArrayOpsShedResultsUnderBudgetAndStayIdentical) {
  SpillGuard guard;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<NDArray> a, DenseGrid(16, 4));
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<NDArray> b, DenseGrid(16, 4));

  spill::SetSpillOverride(false);
  SetThreadCount(1);
  ASSERT_OK_AND_ASSIGN(NDArrayPtr win_expect,
                       arraydb::Window(*a, {{"i", 1}, {"j", 1}}, AggFunc::kSum));
  ASSERT_OK_AND_ASSIGN(NDArrayPtr ew_expect,
                       arraydb::ElemWise(*a, *b, BinaryOp::kMul));

  spill::SetSpillOverride(true);
  spill::SetSpillBudgetOverride(512);  // well under any result's size
  for (int threads : {1, 4}) {
    SetThreadCount(threads);
    ASSERT_OK_AND_ASSIGN(
        NDArrayPtr win, arraydb::Window(*a, {{"i", 1}, {"j", 1}}, AggFunc::kSum));
    EXPECT_GT(win->EvictedChunks(), 0) << "result did not shed";
    EXPECT_TRUE(win->Equals(*win_expect)) << "threads " << threads;
    ASSERT_OK_AND_ASSIGN(NDArrayPtr ew, arraydb::ElemWise(*a, *b, BinaryOp::kMul));
    EXPECT_TRUE(ew->Equals(*ew_expect)) << "threads " << threads;
  }
  spill::ClearSpillOverride();
  spill::ClearSpillBudgetOverride();
  // Equals faulted everything back in; no scratch survives the reads.
  EXPECT_EQ(SpillManager::Global().live_files(), 0);
}

// ---------------------------------------------------------------------------
// Policy plumbing.
// ---------------------------------------------------------------------------

TEST(SpillPolicyTest, ShouldSpillNeedsEnableAndBudgetCrossing) {
  SpillGuard guard;
  spill::ClearSpillOverride();
  spill::ClearSpillBudgetOverride();

  spill::SetSpillOverride(false);
  spill::SetSpillBudgetOverride(100);
  EXPECT_FALSE(spill::ShouldSpill(1000));  // disabled → never

  spill::SetSpillOverride(true);
  EXPECT_TRUE(spill::ShouldSpill(1000));   // over budget
  EXPECT_FALSE(spill::ShouldSpill(50));    // under budget

  spill::SetSpillBudgetOverride(0);
  EXPECT_FALSE(spill::ShouldSpill(1000));  // enabled but no budget
}

}  // namespace
}  // namespace nexus
