// Unit tests for the fused data model: Value, Schema, Column, Table,
// NDArray, Dataset and the table<->array rebox round trip.
#include <gtest/gtest.h>

#include "common/random.h"
#include "common/timer.h"
#include "tests/test_util.h"
#include "types/column.h"
#include "types/dataset.h"
#include "types/ndarray.h"
#include "types/schema.h"
#include "types/table.h"
#include "types/value.h"

namespace nexus {
namespace {

using testing::B;
using testing::F;
using testing::I;
using testing::MakeSchema;
using testing::MakeTable;
using testing::N;
using testing::S;

TEST(DataTypeTest, NamesRoundTrip) {
  for (DataType t : {DataType::kBool, DataType::kInt64, DataType::kFloat64,
                     DataType::kString}) {
    ASSERT_OK_AND_ASSIGN(DataType back, DataTypeFromName(DataTypeName(t)));
    EXPECT_EQ(back, t);
  }
  EXPECT_FALSE(DataTypeFromName("decimal").ok());
}

TEST(DataTypeTest, NumericPromotion) {
  ASSERT_OK_AND_ASSIGN(DataType t1,
                       CommonNumericType(DataType::kInt64, DataType::kInt64));
  EXPECT_EQ(t1, DataType::kInt64);
  ASSERT_OK_AND_ASSIGN(DataType t2,
                       CommonNumericType(DataType::kInt64, DataType::kFloat64));
  EXPECT_EQ(t2, DataType::kFloat64);
  EXPECT_FALSE(CommonNumericType(DataType::kString, DataType::kInt64).ok());
}

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(N().is_null());
  EXPECT_EQ(I(42).AsInt64(), 42);
  EXPECT_EQ(F(1.5).AsFloat64(), 1.5);
  EXPECT_EQ(S("x").AsString(), "x");
  EXPECT_TRUE(B(true).AsBool());
  EXPECT_EQ(I(3).AsDouble(), 3.0);
}

TEST(ValueTest, CrossKindNumericEquality) {
  EXPECT_EQ(I(3), F(3.0));
  EXPECT_NE(I(3), F(3.5));
  EXPECT_EQ(I(3).Hash(), F(3.0).Hash());
}

TEST(ValueTest, TotalOrderNullsFirst) {
  EXPECT_LT(N(), B(false));
  EXPECT_LT(B(true), I(0));
  EXPECT_LT(I(-1), I(0));
  EXPECT_LT(F(0.5), I(1));
  EXPECT_LT(I(99), S("a"));
  EXPECT_LT(S("a"), S("b"));
}

TEST(ValueTest, Casts) {
  EXPECT_EQ(I(3).CastTo(DataType::kFloat64).ValueOrDie(), F(3.0));
  EXPECT_EQ(F(3.7).CastTo(DataType::kInt64).ValueOrDie(), I(3));
  EXPECT_EQ(S("42").CastTo(DataType::kInt64).ValueOrDie(), I(42));
  EXPECT_EQ(S("1.5").CastTo(DataType::kFloat64).ValueOrDie(), F(1.5));
  EXPECT_EQ(I(7).CastTo(DataType::kString).ValueOrDie(), S("7"));
  EXPECT_EQ(B(true).CastTo(DataType::kInt64).ValueOrDie(), I(1));
  EXPECT_FALSE(S("abc").CastTo(DataType::kInt64).ok());
  EXPECT_TRUE(N().CastTo(DataType::kInt64).ValueOrDie().is_null());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(N().ToString(), "null");
  EXPECT_EQ(B(false).ToString(), "false");
  EXPECT_EQ(I(-5).ToString(), "-5");
  EXPECT_EQ(F(2.5).ToString(), "2.5");
  EXPECT_EQ(S("a\"b").ToString(), "\"a\\\"b\"");
}

TEST(SchemaTest, MakeValidates) {
  EXPECT_FALSE(Schema::Make({Field::Attr("a", DataType::kInt64),
                             Field::Attr("a", DataType::kInt64)})
                   .ok());
  EXPECT_FALSE(Schema::Make({Field{"d", DataType::kFloat64, true}}).ok());
  EXPECT_FALSE(Schema::Make({Field::Attr("", DataType::kInt64)}).ok());
  EXPECT_OK(Schema::Make({Field::Dim("i"), Field::Attr("v", DataType::kFloat64)})
                .status());
}

TEST(SchemaTest, LookupAndDimensions) {
  SchemaPtr s = MakeSchema({Field::Dim("i"), Field::Dim("j"),
                            Field::Attr("v", DataType::kFloat64)});
  EXPECT_EQ(s->FindField("j"), 1);
  EXPECT_EQ(s->FindField("zz"), -1);
  EXPECT_FALSE(s->FindFieldOrError("zz").ok());
  EXPECT_EQ(s->DimensionIndices(), (std::vector<int>{0, 1}));
  EXPECT_EQ(s->AttributeIndices(), (std::vector<int>{2}));
  EXPECT_EQ(s->num_dimensions(), 2);
  EXPECT_EQ(s->ToString(), "{i:int64*, j:int64*, v:float64}");
}

TEST(SchemaTest, WithoutDimensions) {
  SchemaPtr s = MakeSchema({Field::Dim("i"), Field::Attr("v", DataType::kInt64)});
  SchemaPtr u = s->WithoutDimensions();
  EXPECT_TRUE(u->DimensionIndices().empty());
  EXPECT_EQ(u->field(0).name, "i");
  EXPECT_FALSE(s->Equals(*u));
}

TEST(ColumnTest, AppendAndGet) {
  Column c(DataType::kInt64);
  EXPECT_OK(c.Append(I(1)));
  c.AppendNull();
  EXPECT_OK(c.Append(I(3)));
  EXPECT_EQ(c.size(), 3);
  EXPECT_EQ(c.null_count(), 1);
  EXPECT_EQ(c.GetValue(0), I(1));
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_EQ(c.GetValue(2), I(3));
  EXPECT_FALSE(c.Append(S("x")).ok());
}

TEST(ColumnTest, FloatColumnCoercesInts) {
  Column c(DataType::kFloat64);
  EXPECT_OK(c.Append(I(2)));
  EXPECT_EQ(c.GetValue(0), F(2.0));
}

TEST(ColumnTest, SliceAndTake) {
  Column c = Column::FromInt64({10, 20, 30, 40});
  Column s = c.Slice(1, 2);
  EXPECT_EQ(s.size(), 2);
  EXPECT_EQ(s.GetValue(0), I(20));
  Column t = c.Take({3, 0, 3});
  EXPECT_EQ(t.size(), 3);
  EXPECT_EQ(t.GetValue(0), I(40));
  EXPECT_EQ(t.GetValue(2), I(40));
}

TEST(ColumnTest, TakePreservesNulls) {
  Column c(DataType::kString);
  EXPECT_OK(c.Append(S("a")));
  c.AppendNull();
  Column t = c.Take({1, 0});
  EXPECT_TRUE(t.IsNull(0));
  EXPECT_EQ(t.GetValue(1), S("a"));
}

TEST(ColumnTest, SetValueAndFilled) {
  Column c = Column::Filled(DataType::kFloat64, 3);
  EXPECT_EQ(c.size(), 3);
  EXPECT_EQ(c.GetValue(1), F(0.0));
  EXPECT_OK(c.SetValue(1, F(5.5)));
  EXPECT_EQ(c.GetValue(1), F(5.5));
  c.SetNull(2);
  EXPECT_TRUE(c.IsNull(2));
  EXPECT_OK(c.SetValue(2, F(1.0)));
  EXPECT_FALSE(c.IsNull(2));
}

TEST(ColumnTest, AppendColumnConcatenates) {
  Column a = Column::FromInt64({1, 2});
  Column b(DataType::kInt64);
  b.AppendNull();
  EXPECT_OK(a.AppendColumn(b));
  EXPECT_EQ(a.size(), 3);
  EXPECT_TRUE(a.IsNull(2));
  EXPECT_FALSE(a.IsNull(0));
  Column c(DataType::kString);
  EXPECT_FALSE(a.AppendColumn(c).ok());
}

TEST(ColumnTest, EqualsAndByteSize) {
  Column a = Column::FromFloat64({1.0, 2.0});
  Column b = Column::FromFloat64({1.0, 2.0});
  Column c = Column::FromFloat64({1.0, 2.5});
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
  EXPECT_EQ(a.ByteSize(), 16);
}

TEST(TableTest, MakeValidatesShape) {
  SchemaPtr s = MakeSchema({Field::Attr("a", DataType::kInt64),
                            Field::Attr("b", DataType::kFloat64)});
  std::vector<Column> cols;
  cols.push_back(Column::FromInt64({1, 2}));
  cols.push_back(Column::FromFloat64({1.0}));
  EXPECT_FALSE(Table::Make(s, cols).ok());  // ragged
  cols[1] = Column::FromFloat64({1.0, 2.0});
  EXPECT_OK(Table::Make(s, cols).status());
  cols[1] = Column::FromInt64({1, 2});
  EXPECT_FALSE(Table::Make(s, cols).ok());  // wrong type
}

TEST(TableTest, BuilderAndAccess) {
  SchemaPtr s = MakeSchema({Field::Attr("name", DataType::kString),
                            Field::Attr("age", DataType::kInt64)});
  TablePtr t = MakeTable(s, {{S("ann"), I(31)}, {S("bob"), N()}});
  EXPECT_EQ(t->num_rows(), 2);
  EXPECT_EQ(t->At(0, 0), S("ann"));
  EXPECT_TRUE(t->At(1, 1).is_null());
  EXPECT_EQ(t->Row(0), (std::vector<Value>{S("ann"), I(31)}));
  ASSERT_OK_AND_ASSIGN(const Column* c, t->ColumnByName("age"));
  EXPECT_EQ(c->GetValue(0), I(31));
}

TEST(TableTest, BuilderRejectsBadRows) {
  SchemaPtr s = MakeSchema({Field::Attr("a", DataType::kInt64)});
  TableBuilder b(s);
  EXPECT_FALSE(b.AppendRow({S("no")}).ok());
  EXPECT_FALSE(b.AppendRow({I(1), I(2)}).ok());
  EXPECT_OK(b.AppendRow({I(1)}));
  EXPECT_EQ(b.num_rows(), 1);
}

TEST(TableTest, SliceClampsBounds) {
  SchemaPtr s = MakeSchema({Field::Attr("a", DataType::kInt64)});
  TablePtr t = MakeTable(s, {{I(1)}, {I(2)}, {I(3)}});
  EXPECT_EQ(t->Slice(1, 10)->num_rows(), 2);
  EXPECT_EQ(t->Slice(5, 2)->num_rows(), 0);
  EXPECT_EQ(t->Slice(0, 2)->At(1, 0), I(2));
}

TEST(TableTest, EqualsOrderedAndUnordered) {
  SchemaPtr s = MakeSchema({Field::Attr("a", DataType::kInt64)});
  TablePtr t1 = MakeTable(s, {{I(1)}, {I(2)}});
  TablePtr t2 = MakeTable(s, {{I(2)}, {I(1)}});
  EXPECT_FALSE(t1->Equals(*t2));
  EXPECT_TRUE(t1->EqualsUnordered(*t2));
  TablePtr t3 = MakeTable(s, {{I(1)}, {I(1)}});
  EXPECT_FALSE(t1->EqualsUnordered(*t3));  // multiset counts matter
}

SchemaPtr CellSchema() {
  return MakeSchema({Field::Attr("v", DataType::kFloat64)});
}

TEST(NDArrayTest, MakeValidates) {
  EXPECT_FALSE(NDArray::Make({}, CellSchema()).ok());
  EXPECT_FALSE(
      NDArray::Make({DimensionSpec{"i", 0, 0, 4}}, CellSchema()).ok());
  EXPECT_FALSE(
      NDArray::Make({DimensionSpec{"i", 0, 10, 0}}, CellSchema()).ok());
  SchemaPtr with_dim = MakeSchema({Field::Dim("x")});
  EXPECT_FALSE(NDArray::Make({DimensionSpec{"i", 0, 10, 4}}, with_dim).ok());
  SchemaPtr collide = MakeSchema({Field::Attr("i", DataType::kFloat64)});
  EXPECT_FALSE(NDArray::Make({DimensionSpec{"i", 0, 10, 4}}, collide).ok());
}

TEST(NDArrayTest, SetGetAcrossChunks) {
  ASSERT_OK_AND_ASSIGN(
      auto arr, NDArray::Make({DimensionSpec{"i", 0, 10, 4},
                               DimensionSpec{"j", 0, 6, 4}},
                              CellSchema()));
  EXPECT_OK(arr->Set({0, 0}, {F(1.0)}));
  EXPECT_OK(arr->Set({9, 5}, {F(2.0)}));
  EXPECT_OK(arr->Set({4, 3}, {F(3.0)}));
  EXPECT_TRUE(arr->Has({0, 0}));
  EXPECT_FALSE(arr->Has({1, 1}));
  EXPECT_FALSE(arr->Has({20, 0}));
  ASSERT_OK_AND_ASSIGN(auto cell, arr->Get({4, 3}));
  EXPECT_EQ(cell[0], F(3.0));
  EXPECT_FALSE(arr->Get({1, 1}).ok());
  EXPECT_FALSE(arr->Get({-1, 0}).ok());
  EXPECT_EQ(arr->NumCellsOccupied(), 3);
  EXPECT_EQ(arr->NumCellsTotal(), 60);
  EXPECT_FALSE(arr->IsDense());
  // 10/4 x 6/4 grid => touched chunks: (0,0), (2,1), (1,0).
  EXPECT_EQ(arr->chunks().size(), 3u);
}

TEST(NDArrayTest, EdgeChunksAreClipped) {
  ASSERT_OK_AND_ASSIGN(auto arr,
                       NDArray::Make({DimensionSpec{"i", 0, 10, 4}}, CellSchema()));
  EXPECT_OK(arr->Set({9}, {F(1.0)}));
  const ArrayChunk* chunk = arr->chunks()[0];
  EXPECT_EQ(chunk->extent[0], 2);  // last chunk holds cells 8..9
  EXPECT_EQ(chunk->lo[0], 8);
}

TEST(NDArrayTest, NegativeStartCoordinates) {
  ASSERT_OK_AND_ASSIGN(
      auto arr, NDArray::Make({DimensionSpec{"i", -5, 10, 3}}, CellSchema()));
  EXPECT_OK(arr->Set({-5}, {F(1.0)}));
  EXPECT_OK(arr->Set({4}, {F(2.0)}));
  EXPECT_FALSE(arr->Set({5}, {F(9.0)}).ok());
  EXPECT_TRUE(arr->Has({-5}));
  ASSERT_OK_AND_ASSIGN(auto v, arr->Get({4}));
  EXPECT_EQ(v[0], F(2.0));
}

TEST(NDArrayTest, SetOverwrites) {
  ASSERT_OK_AND_ASSIGN(auto arr,
                       NDArray::Make({DimensionSpec{"i", 0, 4, 2}}, CellSchema()));
  EXPECT_OK(arr->Set({1}, {F(1.0)}));
  EXPECT_OK(arr->Set({1}, {F(7.0)}));
  EXPECT_EQ(arr->NumCellsOccupied(), 1);
  EXPECT_EQ(arr->Get({1}).ValueOrDie()[0], F(7.0));
}

TEST(NDArrayTest, ToTableEmitsDimsAndAttrs) {
  ASSERT_OK_AND_ASSIGN(auto arr,
                       NDArray::Make({DimensionSpec{"i", 0, 4, 2}}, CellSchema()));
  EXPECT_OK(arr->Set({2}, {F(5.0)}));
  EXPECT_OK(arr->Set({0}, {F(3.0)}));
  ASSERT_OK_AND_ASSIGN(TablePtr t, arr->ToTable());
  EXPECT_EQ(t->num_rows(), 2);
  EXPECT_EQ(t->schema()->ToString(), "{i:int64*, v:float64}");
}

TEST(NDArrayTest, FromTableRoundTrip) {
  SchemaPtr s = MakeSchema({Field::Attr("i", DataType::kInt64),
                            Field::Attr("j", DataType::kInt64),
                            Field::Attr("v", DataType::kFloat64)});
  TablePtr t = MakeTable(
      s, {{I(0), I(0), F(1.0)}, {I(3), I(2), F(2.0)}, {I(1), I(1), F(3.0)}});
  ASSERT_OK_AND_ASSIGN(auto arr, NDArray::FromTable(*t, {"i", "j"}, {2, 2}));
  EXPECT_EQ(arr->NumCellsOccupied(), 3);
  EXPECT_EQ(arr->dim(0).start, 0);
  EXPECT_EQ(arr->dim(0).length, 4);
  EXPECT_EQ(arr->dim(1).length, 3);
  ASSERT_OK_AND_ASSIGN(TablePtr back, arr->ToTable());
  // Round trip preserves the multiset of rows (dims become tagged).
  EXPECT_EQ(back->num_rows(), 3);
  ASSERT_OK_AND_ASSIGN(auto v, arr->Get({3, 2}));
  EXPECT_EQ(v[0], F(2.0));
}

TEST(NDArrayTest, FromTableRejectsDuplicatesAndNulls) {
  SchemaPtr s = MakeSchema({Field::Attr("i", DataType::kInt64),
                            Field::Attr("v", DataType::kFloat64)});
  TablePtr dup = MakeTable(s, {{I(1), F(1.0)}, {I(1), F(2.0)}});
  EXPECT_FALSE(NDArray::FromTable(*dup, {"i"}, {4}).ok());
  TablePtr with_null = MakeTable(s, {{N(), F(1.0)}});
  EXPECT_FALSE(NDArray::FromTable(*with_null, {"i"}, {4}).ok());
  TablePtr fine = MakeTable(s, {{I(1), F(1.0)}});
  EXPECT_FALSE(NDArray::FromTable(*fine, {"v"}, {4}).ok());  // non-int dim
  EXPECT_FALSE(NDArray::FromTable(*fine, {}, {}).ok());
}

TEST(NDArrayTest, Equals) {
  ASSERT_OK_AND_ASSIGN(auto a,
                       NDArray::Make({DimensionSpec{"i", 0, 4, 2}}, CellSchema()));
  ASSERT_OK_AND_ASSIGN(auto b,
                       NDArray::Make({DimensionSpec{"i", 0, 4, 2}}, CellSchema()));
  EXPECT_OK(a->Set({1}, {F(2.0)}));
  EXPECT_OK(b->Set({1}, {F(2.0)}));
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_OK(b->Set({2}, {F(1.0)}));
  EXPECT_FALSE(a->Equals(*b));
}

TEST(DatasetTest, TableToArrayAndBack) {
  SchemaPtr s = MakeSchema({Field::Dim("i"), Field::Attr("v", DataType::kFloat64)});
  TablePtr t = MakeTable(s, {{I(0), F(1.0)}, {I(5), F(2.0)}});
  Dataset d(t);
  EXPECT_TRUE(d.is_table());
  EXPECT_EQ(d.num_rows(), 2);
  ASSERT_OK_AND_ASSIGN(NDArrayPtr arr, d.AsArray(4));
  EXPECT_EQ(arr->NumCellsOccupied(), 2);
  Dataset da(arr);
  EXPECT_TRUE(da.is_array());
  EXPECT_TRUE(d.LogicallyEquals(da));
  EXPECT_EQ(da.schema()->num_dimensions(), 1);
}

TEST(DatasetTest, AsArrayRequiresDimensions) {
  SchemaPtr s = MakeSchema({Field::Attr("a", DataType::kInt64)});
  Dataset d(MakeTable(s, {{I(1)}}));
  EXPECT_FALSE(d.AsArray().ok());
}

TEST(ColumnTest, NullCountStaysConsistentUnderMutation) {
  // The cached count must agree with a brute-force validity recount after
  // any interleaving of appends, nulls, and overwrites.
  auto brute = [](const Column& col) {
    int64_t n = 0;
    for (int64_t i = 0; i < col.size(); ++i) n += col.IsNull(i) ? 1 : 0;
    return n;
  };
  Rng rng(3);
  Column c(DataType::kInt64);
  for (int step = 0; step < 500; ++step) {
    int64_t last = c.size() - 1;
    switch (rng.NextBounded(6)) {
      case 0:
        ASSERT_OK(c.Append(Value::Int64(rng.NextInt(0, 9))));
        break;
      case 1:
        c.AppendNull();
        break;
      case 2:
        if (last >= 0) c.SetNull(rng.NextInt(0, last));
        break;
      case 3:
        if (last >= 0) {
          ASSERT_OK(c.SetValue(rng.NextInt(0, last), Value::Int64(7)));
        }
        break;
      case 4:
        if (last >= 0) ASSERT_OK(c.SetValue(rng.NextInt(0, last), Value::Null()));
        break;
      default:
        c.AppendInt64(rng.NextInt(0, 9));
        break;
    }
    ASSERT_EQ(c.null_count(), brute(c)) << "after step " << step;
    ASSERT_EQ(c.has_nulls(), brute(c) > 0);
  }
  // Bulk constructions maintain the invariant too.
  Column sliced = c.Slice(2, c.size() / 2);
  EXPECT_EQ(sliced.null_count(), brute(sliced));
  std::vector<int64_t> idx;
  for (int64_t i = 0; i < c.size(); i += 3) idx.push_back(i);
  Column taken = c.Take(idx);
  EXPECT_EQ(taken.null_count(), brute(taken));
  ASSERT_OK(taken.AppendColumn(sliced));
  EXPECT_EQ(taken.null_count(), brute(taken));
  ASSERT_OK(taken.AppendColumn(Column::FromInt64({1, 2, 3})));  // no mask
  EXPECT_EQ(taken.null_count(), brute(taken));
}

TEST(ColumnTest, NullCountIsConstantTime) {
  // has_nulls() sits on kernel dispatch paths: repeated calls must not
  // rescan the validity mask. Ten million calls against a million-row
  // column finish in well under the (generous, CI-noise-proof) bound when
  // O(1); an O(n) rescan would need ~10^13 loads.
  Column c(DataType::kInt64);
  for (int64_t i = 0; i < 1000000; ++i) c.AppendInt64(i);
  c.SetNull(12345);
  WallTimer t;
  int64_t sum = 0;
  for (int i = 0; i < 10000000; ++i) sum += c.null_count();
  EXPECT_EQ(sum, 10000000);
  EXPECT_LT(t.ElapsedMillis(), 2000.0);
}

}  // namespace
}  // namespace nexus
