// Unit + property tests for the scalar expression language: type inference,
// row evaluation, vectorized evaluation, and row/vector agreement.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "expr/builder.h"
#include "expr/bytecode.h"
#include "expr/eval.h"
#include "expr/vm.h"
#include "tests/test_util.h"

namespace nexus {
namespace {

using namespace nexus::exprs;  // NOLINT
using testing::B;
using testing::F;
using testing::I;
using testing::MakeSchema;
using testing::MakeTable;
using testing::N;
using testing::S;

SchemaPtr TestSchema() {
  return MakeSchema({Field::Attr("a", DataType::kInt64),
                     Field::Attr("b", DataType::kFloat64),
                     Field::Attr("s", DataType::kString),
                     Field::Attr("flag", DataType::kBool)});
}

Value EvalOn(const ExprPtr& e, const std::vector<Value>& row) {
  auto r = EvalExprRow(*e, *TestSchema(), row);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ValueOrDie();
}

const std::vector<Value> kRow = {I(6), F(2.5), S("hi"), B(true)};

TEST(ExprTypeTest, Basics) {
  SchemaPtr s = TestSchema();
  EXPECT_EQ(InferExprType(*Add(Col("a"), Lit(1)), *s).ValueOrDie(),
            DataType::kInt64);
  EXPECT_EQ(InferExprType(*Add(Col("a"), Col("b")), *s).ValueOrDie(),
            DataType::kFloat64);
  EXPECT_EQ(InferExprType(*Div(Col("a"), Lit(2)), *s).ValueOrDie(),
            DataType::kFloat64);
  EXPECT_EQ(InferExprType(*Lt(Col("a"), Col("b")), *s).ValueOrDie(),
            DataType::kBool);
  EXPECT_EQ(InferExprType(*Add(Col("s"), Lit("!")), *s).ValueOrDie(),
            DataType::kString);
  EXPECT_EQ(InferExprType(*Cast(DataType::kString, Col("a")), *s).ValueOrDie(),
            DataType::kString);
}

TEST(ExprTypeTest, Errors) {
  SchemaPtr s = TestSchema();
  EXPECT_FALSE(InferExprType(*Add(Col("a"), Col("s")), *s).ok());
  EXPECT_FALSE(InferExprType(*Col("zz"), *s).ok());
  EXPECT_FALSE(InferExprType(*And(Col("a"), Col("flag")), *s).ok());
  EXPECT_FALSE(InferExprType(*Not(Col("a")), *s).ok());
  EXPECT_FALSE(InferExprType(*Mod(Col("b"), Lit(2)), *s).ok());
  EXPECT_FALSE(InferExprType(*Lt(Col("s"), Col("a")), *s).ok());
  EXPECT_FALSE(InferExprType(*Func("nope", {Col("a")}), *s).ok());
  EXPECT_FALSE(InferExprType(*Func("sqrt", {Col("s")}), *s).ok());
  EXPECT_FALSE(InferExprType(*Func("abs", {Col("a"), Col("a")}), *s).ok());
}

TEST(ExprEvalTest, Arithmetic) {
  EXPECT_EQ(EvalOn(Add(Col("a"), Lit(2)), kRow), I(8));
  EXPECT_EQ(EvalOn(Mul(Col("a"), Col("b")), kRow), F(15.0));
  EXPECT_EQ(EvalOn(Sub(Lit(10), Col("a")), kRow), I(4));
  EXPECT_EQ(EvalOn(Div(Col("a"), Lit(4)), kRow), F(1.5));
  EXPECT_EQ(EvalOn(Mod(Col("a"), Lit(4)), kRow), I(2));
  EXPECT_EQ(EvalOn(Neg(Col("b")), kRow), F(-2.5));
}

TEST(ExprEvalTest, DivisionByZeroYieldsNull) {
  EXPECT_TRUE(EvalOn(Div(Col("a"), Lit(0)), kRow).is_null());
  EXPECT_TRUE(EvalOn(Mod(Col("a"), Lit(0)), kRow).is_null());
}

TEST(ExprEvalTest, Comparisons) {
  EXPECT_EQ(EvalOn(Lt(Col("a"), Lit(7)), kRow), B(true));
  EXPECT_EQ(EvalOn(Ge(Col("b"), Lit(2.5)), kRow), B(true));
  EXPECT_EQ(EvalOn(Eq(Col("a"), Lit(6.0)), kRow), B(true));  // cross-kind
  EXPECT_EQ(EvalOn(Ne(Col("s"), Lit("hi")), kRow), B(false));
}

TEST(ExprEvalTest, StringOps) {
  EXPECT_EQ(EvalOn(Add(Col("s"), Lit("!")), kRow), S("hi!"));
  EXPECT_EQ(EvalOn(Func("length", {Col("s")}), kRow), I(2));
  EXPECT_EQ(EvalOn(Func("upper", {Col("s")}), kRow), S("HI"));
  EXPECT_EQ(EvalOn(Func("concat", {Col("s"), Lit("-"), Col("s")}), kRow),
            S("hi-hi"));
  EXPECT_EQ(EvalOn(Func("substr", {Lit("hello"), Lit(1), Lit(3)}), kRow),
            S("ell"));
}

TEST(ExprEvalTest, MathFunctions) {
  EXPECT_EQ(EvalOn(Func("abs", {Lit(-4)}), kRow), I(4));
  EXPECT_EQ(EvalOn(Func("sqrt", {Lit(9.0)}), kRow), F(3.0));
  EXPECT_TRUE(EvalOn(Func("sqrt", {Lit(-1.0)}), kRow).is_null());
  EXPECT_TRUE(EvalOn(Func("log", {Lit(0.0)}), kRow).is_null());
  EXPECT_EQ(EvalOn(Func("pow", {Lit(2.0), Lit(10.0)}), kRow), F(1024.0));
  EXPECT_EQ(EvalOn(Func("floor", {Lit(2.7)}), kRow), I(2));
  EXPECT_EQ(EvalOn(Func("ceil", {Lit(2.1)}), kRow), I(3));
  EXPECT_EQ(EvalOn(Func("round", {Lit(2.5)}), kRow), I(3));
  EXPECT_EQ(EvalOn(Func("min", {Lit(3), Lit(1), Lit(2)}), kRow), I(1));
  EXPECT_EQ(EvalOn(Func("max", {Col("a"), Col("b")}), kRow), I(6));
  EXPECT_EQ(EvalOn(Func("sign", {Lit(-3.5)}), kRow), F(-1.0));
}

TEST(ExprEvalTest, Conditionals) {
  EXPECT_EQ(EvalOn(Func("if", {Col("flag"), Lit(1), Lit(2)}), kRow), I(1));
  EXPECT_EQ(EvalOn(Func("if", {Not(Col("flag")), Lit(1), Lit(2)}), kRow), I(2));
  EXPECT_EQ(EvalOn(Func("coalesce", {NullLit(), Lit(5)}), kRow), I(5));
  EXPECT_EQ(EvalOn(Func("is_null", {NullLit()}), kRow), B(true));
  EXPECT_EQ(EvalOn(Func("is_null", {Col("a")}), kRow), B(false));
}

TEST(ExprEvalTest, ThreeValuedLogic) {
  // false AND null = false; true AND null = null.
  EXPECT_EQ(EvalOn(And(Lit(false), Cast(DataType::kBool, NullLit())), kRow),
            B(false));
  EXPECT_TRUE(EvalOn(And(Lit(true), Cast(DataType::kBool, NullLit())), kRow)
                  .is_null());
  // true OR null = true; false OR null = null.
  EXPECT_EQ(EvalOn(Or(Lit(true), Cast(DataType::kBool, NullLit())), kRow),
            B(true));
  EXPECT_TRUE(EvalOn(Or(Lit(false), Cast(DataType::kBool, NullLit())), kRow)
                  .is_null());
  // Comparisons with null are null.
  EXPECT_TRUE(EvalOn(Lt(NullLit(), Lit(1.0)), kRow).is_null());
}

TEST(ExprEvalTest, NullPropagatesThroughArithmetic) {
  EXPECT_TRUE(EvalOn(Add(NullLit(), Lit(1.0)), kRow).is_null());
  EXPECT_TRUE(EvalOn(Func("sqrt", {NullLit()}), kRow).is_null());
}

TEST(ExprStructureTest, EqualsAndHash) {
  ExprPtr a = Add(Col("x"), Lit(1));
  ExprPtr b = Add(Col("x"), Lit(1));
  ExprPtr c = Add(Col("x"), Lit(2));
  ExprPtr d = Add(Col("x"), Lit(1.0));  // different literal kind
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
  EXPECT_FALSE(a->Equals(*d));
  EXPECT_EQ(a->Hash(), b->Hash());
  EXPECT_NE(a->Hash(), c->Hash());
}

TEST(ExprStructureTest, ColumnRefsAndRename) {
  ExprPtr e = And(Gt(Col("x"), Col("y")), Lt(Col("x"), Lit(9)));
  EXPECT_EQ(e->ColumnRefs(), (std::vector<std::string>{"x", "y"}));
  ExprPtr r = e->RenameColumns({{"x", "z"}});
  EXPECT_EQ(r->ColumnRefs(), (std::vector<std::string>{"z", "y"}));
  EXPECT_EQ(r->ToString(), "((z > y) and (z < 9))");
}

TEST(ExprStructureTest, SubstituteInlinesDefinitions) {
  ExprPtr e = Gt(Col("total"), Lit(10));
  ExprPtr inlined = e->SubstituteColumns({{"total", Add(Col("a"), Col("b"))}});
  EXPECT_EQ(inlined->ToString(), "((a + b) > 10)");
}

TEST(ExprStructureTest, ToString) {
  EXPECT_EQ(Add(Col("a"), Mul(Col("b"), Lit(2)))->ToString(), "(a + (b * 2))");
  EXPECT_EQ(Func("abs", {Neg(Col("a"))})->ToString(), "abs(-a)");
  EXPECT_EQ(Cast(DataType::kInt64, Col("b"))->ToString(), "cast(b as int64)");
}

TEST(ExprVectorTest, MatchesRowEvaluation) {
  SchemaPtr s = TestSchema();
  TablePtr t = MakeTable(
      s, {{I(1), F(0.5), S("a"), B(true)},
          {I(-3), F(2.0), S("bb"), B(false)},
          {N(), F(-1.0), S(""), B(true)},
          {I(100), N(), S("ccc"), B(false)}});
  std::vector<ExprPtr> cases = {
      Add(Col("a"), Lit(1)),
      Mul(Col("b"), Col("b")),
      And(Gt(Col("a"), Lit(0)), Col("flag")),
      Func("coalesce", {Col("a"), Lit(0)}),
      Func("if", {Col("flag"), Col("b"), Neg(Col("b"))}),
      Add(Col("s"), Lit("!")),
      Div(Col("a"), Col("b")),
  };
  for (const ExprPtr& e : cases) {
    ASSERT_OK_AND_ASSIGN(Column vec, EvalExprVector(*e, *t));
    ASSERT_OK_AND_ASSIGN(DataType out_t, InferExprType(*e, *s));
    for (int64_t r = 0; r < t->num_rows(); ++r) {
      ASSERT_OK_AND_ASSIGN(Value row_v, EvalExprRow(*e, *s, t->Row(r)));
      if (row_v.is_null()) {
        EXPECT_TRUE(vec.GetValue(r).is_null()) << e->ToString() << " row " << r;
      } else {
        ASSERT_OK_AND_ASSIGN(Value want, row_v.CastTo(out_t));
        EXPECT_EQ(vec.GetValue(r), want) << e->ToString() << " row " << r;
      }
    }
  }
}

// Property sweep: random numeric expressions evaluated both ways must agree
// on a null-free numeric table (the vectorized fast path's home turf).
class ExprFuzzTest : public ::testing::TestWithParam<int> {};

ExprPtr RandomNumericExpr(Rng* rng, int depth) {
  if (depth == 0 || rng->NextBool(0.3)) {
    switch (rng->NextBounded(3)) {
      case 0:
        return Col("a");
      case 1:
        return Col("b");
      default:
        return rng->NextBool() ? Lit(rng->NextInt(-5, 5))
                               : Lit(rng->NextDouble(-2.0, 2.0));
    }
  }
  static const BinaryOp kOps[] = {BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul};
  return Expr::Binary(kOps[rng->NextBounded(3)], RandomNumericExpr(rng, depth - 1),
                      RandomNumericExpr(rng, depth - 1));
}

TEST_P(ExprFuzzTest, VectorAgreesWithRowInterpreter) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  SchemaPtr s = MakeSchema({Field::Attr("a", DataType::kInt64),
                            Field::Attr("b", DataType::kFloat64)});
  TableBuilder builder(s);
  for (int i = 0; i < 64; ++i) {
    ASSERT_OK(builder.AppendRow(
        {I(rng.NextInt(-1000, 1000)), F(rng.NextDouble(-10.0, 10.0))}));
  }
  ASSERT_OK_AND_ASSIGN(TablePtr t, builder.Finish());
  for (int trial = 0; trial < 20; ++trial) {
    ExprPtr e = RandomNumericExpr(&rng, 4);
    ASSERT_OK_AND_ASSIGN(Column vec, EvalExprVector(*e, *t));
    ASSERT_OK_AND_ASSIGN(DataType out_t, InferExprType(*e, *s));
    for (int64_t r = 0; r < t->num_rows(); ++r) {
      ASSERT_OK_AND_ASSIGN(Value row_v, EvalExprRow(*e, *s, t->Row(r)));
      ASSERT_OK_AND_ASSIGN(Value want, row_v.CastTo(out_t));
      if (out_t == DataType::kFloat64) {
        EXPECT_NEAR(vec.GetValue(r).AsDouble(), want.AsDouble(),
                    1e-9 * (1.0 + std::fabs(want.AsDouble())))
            << e->ToString();
      } else {
        EXPECT_EQ(vec.GetValue(r), want) << e->ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprFuzzTest, ::testing::Range(0, 8));

TEST(EvalPredicateTest, SelectsMatchingRows) {
  SchemaPtr s = MakeSchema({Field::Attr("a", DataType::kInt64)});
  TablePtr t = MakeTable(s, {{I(1)}, {N()}, {I(5)}, {I(3)}});
  ASSERT_OK_AND_ASSIGN(auto sel, EvalPredicate(*Ge(Col("a"), Lit(3)), *t));
  EXPECT_EQ(sel, (std::vector<int64_t>{2, 3}));  // null row excluded
  EXPECT_FALSE(EvalPredicate(*Add(Col("a"), Lit(1)), *t).ok());  // non-bool
}

TEST(BuiltinsTest, CatalogNonEmptyAndInferable) {
  std::vector<std::string> names = BuiltinFunctionNames();
  EXPECT_GE(names.size(), 20u);
  // Every builtin must have at least one valid signature we can infer.
  SchemaPtr s = TestSchema();
  int inferable = 0;
  for (const std::string& name : names) {
    for (const std::vector<DataType>& args :
         {std::vector<DataType>{DataType::kFloat64},
          std::vector<DataType>{DataType::kFloat64, DataType::kFloat64},
          std::vector<DataType>{DataType::kBool, DataType::kInt64, DataType::kInt64},
          std::vector<DataType>{DataType::kString},
          std::vector<DataType>{DataType::kString, DataType::kInt64, DataType::kInt64}}) {
      if (InferFuncType(name, args).ok()) {
        ++inferable;
        break;
      }
    }
  }
  EXPECT_EQ(inferable, static_cast<int>(names.size()));
}

// ---------------------------------------------------------------------------
// Register bytecode + VM (expr/bytecode.h, expr/vm.h).
// ---------------------------------------------------------------------------

Column RunCompiled(const ExprPtr& e, const TablePtr& t) {
  auto prog = CompileExpr(e, *t->schema());
  EXPECT_TRUE(prog.ok()) << prog.status() << " for " << e->ToString();
  const ExprProgram& p = prog.ValueOrDie();
  ExprVM vm(&p);
  vm.Bind(*t, t->num_rows());
  vm.Run(0, t->num_rows());
  Column out(p.out_types[0]);
  vm.AppendOutput(0, &out);
  return out;
}

TEST(BytecodeTest, CompiledProgramMatchesRowInterpreter) {
  SchemaPtr s = TestSchema();
  TablePtr t = MakeTable(
      s, {{I(1), F(0.5), S("a"), B(true)},
          {I(-3), F(2.0), S("bb"), B(false)},
          {N(), F(-1.0), S(""), B(true)},
          {I(100), N(), S("Ccc"), N()},
          {I(7), F(0.0), N(), B(false)}});
  std::vector<ExprPtr> cases = {
      Add(Col("a"), Lit(1)),
      Mul(Add(Col("a"), Lit(2)), Sub(Col("a"), Lit(2))),
      Add(Col("a"), Col("b")),
      Div(Col("a"), Col("b")),        // always double; /0 → null
      Div(Col("a"), Lit(0)),
      Mod(Col("a"), Lit(3)),
      Neg(Col("b")),
      Not(Col("flag")),
      And(Gt(Col("a"), Lit(0)), Col("flag")),  // Kleene
      Or(Func("is_null", {Col("a")}), Col("flag")),
      Eq(Col("a"), Lit(1)),
      Lt(Col("a"), Col("b")),         // mixed compare → double, like Compare
      Le(Col("s"), Lit("b")),
      Func("abs", {Col("a")}),
      Func("sign", {Col("b")}),
      Func("sqrt", {Col("b")}),       // sqrt(neg) → null
      Func("log", {Col("b")}),        // log(≤0) → null
      Func("floor", {Col("b")}),
      Func("round", {Col("b")}),
      Func("pow", {Col("b"), Lit(2.0)}),
      Func("min", {Col("a"), Lit(5)}),
      Func("max", {Col("b"), Lit(1.5)}),
      Func("coalesce", {Col("a"), Lit(0)}),
      Func("if", {Col("flag"), Col("b"), Neg(Col("b"))}),
      Func("length", {Col("s")}),
      Func("concat", {Col("s"), Lit("!"), Col("s")}),
      Func("lower", {Col("s")}),
      Func("upper", {Col("s")}),
      Func("substr", {Col("s"), Lit(0), Lit(2)}),
      Cast(DataType::kFloat64, Col("a")),
      Cast(DataType::kString, Col("a")),
      Cast(DataType::kBool, Col("a")),
  };
  for (const ExprPtr& e : cases) {
    Column got = RunCompiled(e, t);
    ASSERT_OK_AND_ASSIGN(DataType out_t, InferExprType(*e, *s));
    for (int64_t r = 0; r < t->num_rows(); ++r) {
      ASSERT_OK_AND_ASSIGN(Value row_v, EvalExprRow(*e, *s, t->Row(r)));
      if (row_v.is_null()) {
        EXPECT_TRUE(got.GetValue(r).is_null()) << e->ToString() << " row " << r;
      } else {
        ASSERT_OK_AND_ASSIGN(Value want, row_v.CastTo(out_t));
        EXPECT_EQ(got.GetValue(r), want) << e->ToString() << " row " << r;
      }
    }
  }
}

TEST(BytecodeTest, CommonSubtreesCompileOnce) {
  SchemaPtr s = TestSchema();
  ExprPtr shared = Mul(Add(Col("a"), Lit(1)), Lit(3));
  ASSERT_OK_AND_ASSIGN(
      ExprProgram p,
      CompileExprs({shared, Add(shared->Clone(), Lit(2)), Gt(shared->Clone(), Lit(0))},
                   *s));
  int muls = 0;
  for (const Instr& in : p.instrs) {
    if (in.op == OpCode::kMulInt) ++muls;
  }
  EXPECT_EQ(muls, 1) << p.ToString();  // the shared subtree lowered once
  EXPECT_EQ(p.outputs.size(), 3u);
}

TEST(BytecodeTest, RefusesWhatItCannotProveByteIdentical) {
  SchemaPtr s = TestSchema();
  // Runtime-fallible string parses.
  EXPECT_TRUE(CompileExpr(Cast(DataType::kInt64, Col("s")), *s).status()
                  .IsUnsupported());
  // Mixed int64/float64 min/if/coalesce pass values through with their
  // dynamic type in the interpreter — refused, not promoted.
  EXPECT_TRUE(CompileExpr(Func("min", {Col("a"), Col("b")}), *s).status()
                  .IsUnsupported());
  EXPECT_TRUE(
      CompileExpr(Func("if", {Col("flag"), Col("a"), Col("b")}), *s).status()
          .IsUnsupported());
  EXPECT_TRUE(CompileExpr(Func("coalesce", {Col("a"), Col("b")}), *s).status()
                  .IsUnsupported());
  // Plain type errors are kUnsupported too: the interpreter's own inference
  // reports them.
  EXPECT_TRUE(CompileExpr(Add(Col("a"), Col("s")), *s).status().IsUnsupported());
}

TEST(BytecodeTest, DisassemblyNamesEveryInstruction) {
  SchemaPtr s = TestSchema();
  ASSERT_OK_AND_ASSIGN(
      ExprProgram p,
      CompileExpr(And(Gt(Add(Col("a"), Lit(1)), Col("b")), Col("flag")), *s));
  std::string dis = p.ToString();
  EXPECT_NE(dis.find("load_col"), std::string::npos) << dis;
  EXPECT_NE(dis.find("add_i"), std::string::npos) << dis;
  EXPECT_NE(dis.find("and_b"), std::string::npos) << dis;
}

TEST(BytecodeTest, Int64ComparisonsAreExactBeyond2Pow53) {
  // 2^53 is the first integer double cannot distinguish from its successor;
  // both the compiled path and the legacy vectorized path must compare
  // statically-int64 operands exactly.
  constexpr int64_t kBig = int64_t{1} << 53;
  SchemaPtr s = MakeSchema({Field::Attr("x", DataType::kInt64),
                            Field::Attr("y", DataType::kInt64)});
  TablePtr t = MakeTable(s, {{I(kBig), I(kBig + 1)},
                             {I(kBig + 1), I(kBig)},
                             {I(-kBig - 1), I(-kBig)},
                             {I(kBig), I(kBig)}});
  struct Case {
    ExprPtr e;
    std::vector<bool> want;
  };
  std::vector<Case> cases;
  cases.push_back({Eq(Col("x"), Col("y")), {false, false, false, true}});
  cases.push_back({Ne(Col("x"), Col("y")), {true, true, true, false}});
  cases.push_back({Lt(Col("x"), Col("y")), {true, false, true, false}});
  cases.push_back({Ge(Col("x"), Col("y")), {false, true, false, true}});
  cases.push_back(
      {Eq(Add(Col("x"), Lit(1)), Col("y")), {true, false, true, false}});
  for (bool compile : {true, false}) {
    SetExprCompileOverride(compile);
    for (const Case& c : cases) {
      ASSERT_OK_AND_ASSIGN(Column got, EvalExprVector(*c.e, *t));
      for (int64_t r = 0; r < t->num_rows(); ++r) {
        EXPECT_EQ(got.GetValue(r), B(c.want[static_cast<size_t>(r)]))
            << c.e->ToString() << " row " << r << " compile=" << compile;
      }
    }
  }
  ClearExprCompileOverride();
}

TEST(BytecodeTest, ProgramCacheReturnsSameProgram) {
  ClearProgramCacheForTest();
  SchemaPtr s = TestSchema();
  ExprPtr e = Mul(Add(Col("a"), Lit(1)), Lit(7));
  ASSERT_OK_AND_ASSIGN(ExprProgramPtr p1, GetOrCompileProgram(*e, *s));
  ASSERT_OK_AND_ASSIGN(ExprProgramPtr p2, GetOrCompileProgram(*e, *s));
  EXPECT_EQ(p1.get(), p2.get());  // second lookup is a cache hit
  // Negative caching: an uncompilable tree is refused from cache as well.
  ExprPtr bad = Cast(DataType::kInt64, Col("s"));
  EXPECT_TRUE(GetOrCompileProgram(*bad, *s).status().IsUnsupported());
  EXPECT_TRUE(GetOrCompileProgram(*bad, *s).status().IsUnsupported());
}

TEST(BytecodeTest, CompileSwitchDisablesTheVM) {
  SetExprCompileOverride(false);
  EXPECT_FALSE(ExprCompileEnabled());
  SetExprCompileOverride(true);
  EXPECT_TRUE(ExprCompileEnabled());
  ClearExprCompileOverride();
}

}  // namespace
}  // namespace nexus
