// Tests for the semi-ring kernel subsystem: registry contracts, the
// associative-array bridge, the Ext/Join/Union kernels, and the lowering
// entry points' byte-identity to the engines they replace.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "algebra/assoc_array.h"
#include "algebra/kernels.h"
#include "algebra/semiring.h"
#include "common/parallel.h"
#include "common/random.h"
#include "expr/builder.h"
#include "graph/graph.h"
#include "linalg/sparse.h"
#include "optimizer/lower_semiring.h"
#include "relational/engine.h"
#include "tests/test_util.h"

namespace nexus {
namespace {

using namespace nexus::exprs;  // NOLINT
using algebra::AssocArray;
using algebra::Semiring;
using linalg::SparseMatrixCSR;
using linalg::Triplet;
using testing::F;
using testing::I;
using testing::MakeSchema;
using testing::MakeTable;
using testing::N;
using testing::S;

/// Restores the process-wide lowering switch (and thread count) on exit.
struct LoweringGuard {
  int saved_threads = GetThreadCount();
  ~LoweringGuard() {
    algebra::ClearSemiringLoweringOverride();
    SetThreadCount(saved_threads);
  }
};

const Semiring& Ring(const std::string& name) {
  const Semiring* s = algebra::FindSemiring(name);
  EXPECT_NE(s, nullptr) << name;
  return *s;
}

// ---------------------------------------------------------------------------
// Registry and contracts.
// ---------------------------------------------------------------------------

TEST(SemiringTest, RegistryShipsTheFiveRingsAndAllPassContracts) {
  const auto& rings = algebra::SemiringRegistry();
  ASSERT_EQ(rings.size(), 5u);
  for (const Semiring& s : rings) {
    EXPECT_OK(algebra::VerifyContracts(s));
    EXPECT_EQ(algebra::FindSemiring(s.name), &s);
  }
  EXPECT_EQ(algebra::FindSemiring("frobnicate"), nullptr);
}

TEST(SemiringTest, TropicalIdentities) {
  const Semiring& mp = Ring("min_plus");
  EXPECT_EQ(mp.zero_f, std::numeric_limits<double>::infinity());
  EXPECT_EQ(mp.one_f, 0.0);
  EXPECT_EQ(algebra::ApplyF(mp.plus, 3.0, 5.0), 3.0);
  EXPECT_EQ(algebra::ApplyF(mp.times, 3.0, 5.0), 8.0);
  const Semiring& mt = Ring("max_times");
  EXPECT_EQ(algebra::ApplyF(mt.plus, 0.25, 0.5), 0.5);
  EXPECT_EQ(algebra::ApplyF(mt.times, 0.25, 0.5), 0.125);
  const Semiring& oa = Ring("or_and");
  EXPECT_EQ(algebra::ApplyI(oa.plus, 0, 1), 1);
  EXPECT_EQ(algebra::ApplyI(oa.times, 1, 0), 0);
  EXPECT_TRUE(Ring("count").lift);
}

TEST(SemiringTest, BrokenRingFailsContracts) {
  // (−, ×) is not a semi-ring: ⊕ is neither associative nor commutative.
  Semiring bad;
  bad.name = "sub_times";
  bad.plus = algebra::MonoidOp::kMul;  // 1 is not a ⊕-identity with zero_f=0
  EXPECT_FALSE(algebra::VerifyContracts(bad).ok());
}

TEST(SemiringTest, OverrideSwitch) {
  LoweringGuard guard;
  algebra::SetSemiringLoweringOverride(false);
  EXPECT_FALSE(algebra::SemiringLoweringEnabled());
  algebra::SetSemiringLoweringOverride(true);
  EXPECT_TRUE(algebra::SemiringLoweringEnabled());
}

// ---------------------------------------------------------------------------
// Associative arrays.
// ---------------------------------------------------------------------------

TEST(AssocArrayTest, FromTableProjectsKeysAndValue) {
  SchemaPtr s = MakeSchema({Field::Attr("k", DataType::kInt64),
                            Field::Attr("junk", DataType::kString),
                            Field::Attr("v", DataType::kFloat64)});
  TablePtr t = MakeTable(s, {{I(7), S("x"), F(1.5)}, {I(3), S("y"), F(2.5)}});
  ASSERT_OK_AND_ASSIGN(AssocArray a, AssocArray::FromTable(t, {"k"}, "v"));
  EXPECT_EQ(a.num_keys(), 1);
  EXPECT_EQ(a.num_entries(), 2);
  EXPECT_EQ(a.key_name(0), "k");
  EXPECT_EQ(a.value_name(), "v");
  // Entry order is preserved from the table.
  EXPECT_EQ(a.key_column(0).ints()[0], 7);
  EXPECT_EQ(a.value_column().doubles()[1], 2.5);
}

TEST(AssocArrayTest, RejectsNullKeysAndNonNumericValues) {
  SchemaPtr s = MakeSchema({Field::Attr("k", DataType::kInt64),
                            Field::Attr("v", DataType::kFloat64)});
  TablePtr null_key = MakeTable(s, {{N(), F(1.0)}});
  EXPECT_FALSE(AssocArray::FromTable(null_key, {"k"}, "v").ok());
  SchemaPtr s2 = MakeSchema({Field::Attr("k", DataType::kInt64),
                             Field::Attr("v", DataType::kBool)});
  TablePtr bool_val = MakeTable(s2, {{I(1), testing::B(true)}});
  EXPECT_FALSE(AssocArray::FromTable(bool_val, {"k"}, "v").ok());
}

TEST(AssocArrayTest, TripletAndDenseVectorBridges) {
  std::vector<Triplet> trips = {{1, 0, 2.0}, {0, 2, 3.0}};
  ASSERT_OK_AND_ASSIGN(AssocArray a,
                       AssocArray::FromTriplets(trips, "i", "j", "v"));
  ASSERT_OK_AND_ASSIGN(std::vector<Triplet> back, a.ToTriplets());
  ASSERT_EQ(back.size(), 2u);
  // FromTriplets preserves the given order (unlike CSR construction).
  EXPECT_EQ(back[0].row, 1);
  EXPECT_EQ(back[1].col, 2);
  ASSERT_OK_AND_ASSIGN(AssocArray x,
                       AssocArray::FromDenseVector({0.5, 0.0, -2.0}, "k", "x"));
  EXPECT_EQ(x.num_entries(), 3);  // explicit zeros are entries
  EXPECT_EQ(x.key_column(0).ints()[2], 2);
  EXPECT_EQ(x.value_column().doubles()[2], -2.0);
}

// ---------------------------------------------------------------------------
// Kernels.
// ---------------------------------------------------------------------------

AssocArray Entries(const std::vector<std::pair<int64_t, double>>& kv,
                   const std::string& key = "k",
                   const std::string& val = "v") {
  SchemaPtr s = MakeSchema({Field::Attr(key, DataType::kInt64),
                            Field::Attr(val, DataType::kFloat64)});
  std::vector<std::vector<Value>> rows;
  for (const auto& [k, v] : kv) rows.push_back({I(k), F(v)});
  auto r = AssocArray::FromTable(MakeTable(s, rows), {key}, val);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.MoveValue();
}

TEST(KernelTest, ExtFlatmapsInEntryOrder) {
  AssocArray a = Entries({{1, 2.0}, {2, 3.0}});
  // Emit (k, v) and (k + 10, v * 2) per entry.
  ASSERT_OK_AND_ASSIGN(
      AssocArray out,
      algebra::Ext(a, {Field::Attr("k", DataType::kInt64)},
                   Field::Attr("v", DataType::kFloat64),
                   [](const std::vector<Value>& keys, const Value& v,
                      const std::function<void(std::vector<Value>, Value)>& emit)
                       -> Status {
                     emit({keys[0]}, v);
                     emit({Value::Int64(keys[0].AsInt64() + 10)},
                          Value::Float64(v.AsDouble() * 2));
                     return Status::OK();
                   }));
  ASSERT_EQ(out.num_entries(), 4);
  EXPECT_EQ(out.key_column(0).ints()[0], 1);
  EXPECT_EQ(out.key_column(0).ints()[1], 11);
  EXPECT_EQ(out.value_column().doubles()[1], 4.0);
  EXPECT_EQ(out.key_column(0).ints()[2], 2);
}

TEST(KernelTest, JoinCombinesWithTimesInProbeOrder) {
  AssocArray a = Entries({{1, 2.0}, {2, 3.0}, {1, 5.0}});
  AssocArray b = Entries({{1, 10.0}, {1, 100.0}}, "k", "w");
  ASSERT_OK_AND_ASSIGN(AssocArray j, algebra::Join(a, b, Ring("plus_times")));
  // a-entry order, with b-matches in b-entry order; value name is "v_w".
  ASSERT_EQ(j.num_entries(), 4);
  EXPECT_EQ(j.value_name(), "v_w");
  const auto& vals = j.value_column().doubles();
  EXPECT_EQ(vals[0], 20.0);
  EXPECT_EQ(vals[1], 200.0);
  EXPECT_EQ(vals[2], 50.0);
  EXPECT_EQ(vals[3], 500.0);
  // No shared key name at all is an error, not a cross product.
  AssocArray c = Entries({{1, 1.0}}, "other");
  EXPECT_FALSE(algebra::Join(a, c, Ring("plus_times")).ok());
}

TEST(KernelTest, JoinUnderLiftedRingCountsPairs) {
  AssocArray a = Entries({{1, 2.0}, {2, 3.0}});
  AssocArray b = Entries({{1, 9.0}, {1, 8.0}}, "k", "w");
  ASSERT_OK_AND_ASSIGN(AssocArray j, algebra::Join(a, b, Ring("count")));
  ASSERT_EQ(j.num_entries(), 2);
  for (double v : j.value_column().doubles()) EXPECT_EQ(v, 1.0);
}

TEST(KernelTest, UnionFoldsDuplicatesFirstSeenOrder) {
  AssocArray a = Entries({{5, 1.0}, {3, 2.0}});
  AssocArray b = Entries({{3, 10.0}, {9, 4.0}});
  ASSERT_OK_AND_ASSIGN(AssocArray u, algebra::Union(a, b, Ring("plus_times")));
  ASSERT_EQ(u.num_entries(), 3);
  // First-seen key order: 5, 3, 9; key 3 folds 2.0 ⊕ 10.0.
  EXPECT_EQ(u.key_column(0).ints()[0], 5);
  EXPECT_EQ(u.key_column(0).ints()[1], 3);
  EXPECT_EQ(u.key_column(0).ints()[2], 9);
  EXPECT_EQ(u.value_column().doubles()[1], 12.0);
  // min_plus ⊕ keeps the smaller value.
  ASSERT_OK_AND_ASSIGN(AssocArray m, algebra::Union(a, b, Ring("min_plus")));
  EXPECT_EQ(m.value_column().doubles()[1], 2.0);
  // Schema mismatches are type errors.
  AssocArray c = Entries({{1, 1.0}}, "other");
  EXPECT_FALSE(algebra::Union(a, c, Ring("plus_times")).ok());
}

TEST(KernelTest, ReduceProjectsThenFolds) {
  // Two-key array reduced to its first key: ⊕-sums across the dropped key.
  std::vector<Triplet> trips = {{0, 0, 1.0}, {0, 1, 2.0}, {1, 0, 4.0}};
  ASSERT_OK_AND_ASSIGN(AssocArray a,
                       AssocArray::FromTriplets(trips, "i", "j", "v"));
  ASSERT_OK_AND_ASSIGN(AssocArray r,
                       algebra::Reduce(a, {"i"}, Ring("plus_times")));
  ASSERT_EQ(r.num_entries(), 2);
  EXPECT_EQ(r.value_column().doubles()[0], 3.0);
  EXPECT_EQ(r.value_column().doubles()[1], 4.0);
  // A full scalar reduction must keep at least one key.
  EXPECT_FALSE(algebra::Reduce(a, {}, Ring("plus_times")).ok());
}

TEST(KernelTest, OrAndReachabilityStep) {
  // frontier ∨⊗∧ edges: one step of boolean reachability.
  AssocArray frontier = Entries({{0, 1.0}}, "u", "f");
  std::vector<Triplet> edges = {{0, 1, 1.0}, {0, 2, 1.0}, {2, 3, 1.0}};
  ASSERT_OK_AND_ASSIGN(AssocArray e,
                       AssocArray::FromTriplets(edges, "u", "w", "f"));
  ASSERT_OK_AND_ASSIGN(AssocArray step,
                       algebra::Join(frontier, e, Ring("or_and")));
  ASSERT_OK_AND_ASSIGN(AssocArray reached,
                       algebra::Reduce(step, {"w"}, Ring("or_and")));
  ASSERT_EQ(reached.num_entries(), 2);  // nodes 1 and 2, not 3
  for (double v : reached.value_column().doubles()) EXPECT_EQ(v, 1.0);
}

// ---------------------------------------------------------------------------
// LowerAggregate ≡ HashAggregate.
// ---------------------------------------------------------------------------

TablePtr RandomSales(int64_t n, uint64_t seed) {
  SchemaPtr s = MakeSchema({Field::Attr("g", DataType::kInt64),
                            Field::Attr("v", DataType::kFloat64),
                            Field::Attr("c", DataType::kInt64)});
  TableBuilder b(s);
  Rng rng(seed);
  for (int64_t i = 0; i < n; ++i) {
    Value v = rng.NextInt(0, 9) == 0 ? Value::Null()
                                     : F(rng.NextDouble(-100, 100));
    EXPECT_OK(b.AppendRow({I(rng.NextInt(0, 11)), v, I(rng.NextInt(-5, 5))}));
  }
  return b.Finish().ValueOrDie();
}

void ExpectLoweredMatchesEngine(const TablePtr& t, const AggregateOp& op) {
  ASSERT_TRUE(algebra::AggregateLowerable(op));
  ASSERT_OK_AND_ASSIGN(TablePtr want, relational::HashAggregate(t, op));
  LoweringGuard guard;
  for (int threads : {1, 4}) {
    SetThreadCount(threads);
    ASSERT_OK_AND_ASSIGN(TablePtr got, algebra::LowerAggregate(t, op));
    EXPECT_TRUE(got->Equals(*want)) << "threads=" << threads;
    EXPECT_TRUE(got->schema()->Equals(*want->schema()));
  }
}

TEST(LowerAggregateTest, GroupedFoldsMatchHashAggregate) {
  TablePtr t = RandomSales(40000, 17);  // multiple morsels
  AggregateOp op;
  op.group_by = {"g"};
  op.aggs = {AggSpec{AggFunc::kSum, Col("v"), "sv"},
             AggSpec{AggFunc::kSum, Col("c"), "sc"},
             AggSpec{AggFunc::kMin, Col("v"), "lo"},
             AggSpec{AggFunc::kMax, Col("c"), "hi"},
             AggSpec{AggFunc::kCount, Col("v"), "nv"},
             AggSpec{AggFunc::kCount, nullptr, "n"}};
  ExpectLoweredMatchesEngine(t, op);
}

TEST(LowerAggregateTest, GlobalAndEmptyInputsMatchHashAggregate) {
  AggregateOp global;
  global.aggs = {AggSpec{AggFunc::kSum, Col("v"), "sv"},
                 AggSpec{AggFunc::kMin, Col("v"), "lo"},
                 AggSpec{AggFunc::kCount, nullptr, "n"}};
  ExpectLoweredMatchesEngine(RandomSales(500, 3), global);
  // Empty input: global aggregates yield one all-null/zero row.
  ExpectLoweredMatchesEngine(RandomSales(0, 3), global);
  AggregateOp grouped = global;
  grouped.group_by = {"g"};
  ExpectLoweredMatchesEngine(RandomSales(0, 3), grouped);
}

TEST(LowerAggregateTest, AvgIsNotLowerable) {
  AggregateOp op;
  op.aggs = {AggSpec{AggFunc::kAvg, Col("v"), "m"}};
  EXPECT_FALSE(algebra::AggregateLowerable(op));
}

// ---------------------------------------------------------------------------
// Engine routing: byte-identity with lowering off vs on.
// ---------------------------------------------------------------------------

std::vector<Triplet> RandomTriplets(int64_t rows, int64_t cols, int n,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(Triplet{rng.NextInt(0, rows - 1), rng.NextInt(0, cols - 1),
                          rng.NextDouble(-1, 1)});
  }
  return out;
}

TEST(LoweringTest, SpMVOffOnBitIdentical) {
  ASSERT_OK_AND_ASSIGN(
      SparseMatrixCSR m,
      SparseMatrixCSR::FromTriplets(30, 20, RandomTriplets(30, 20, 150, 7)));
  Rng rng(11);
  std::vector<double> x(20);
  for (double& v : x) v = rng.NextDouble(-1, 1);
  LoweringGuard guard;
  algebra::SetSemiringLoweringOverride(false);
  ASSERT_OK_AND_ASSIGN(std::vector<double> off, m.SpMV(x));
  algebra::SetSemiringLoweringOverride(true);
  for (int threads : {1, 4}) {
    SetThreadCount(threads);
    ASSERT_OK_AND_ASSIGN(std::vector<double> on, m.SpMV(x));
    ASSERT_EQ(on.size(), off.size());
    for (size_t i = 0; i < on.size(); ++i) {
      EXPECT_EQ(on[i], off[i]) << "row " << i << " threads=" << threads;
    }
  }
}

TEST(LoweringTest, SpGEMMOffOnBitIdentical) {
  ASSERT_OK_AND_ASSIGN(
      SparseMatrixCSR a,
      SparseMatrixCSR::FromTriplets(12, 10, RandomTriplets(12, 10, 60, 5)));
  ASSERT_OK_AND_ASSIGN(
      SparseMatrixCSR b,
      SparseMatrixCSR::FromTriplets(10, 14, RandomTriplets(10, 14, 60, 9)));
  LoweringGuard guard;
  algebra::SetSemiringLoweringOverride(false);
  ASSERT_OK_AND_ASSIGN(SparseMatrixCSR off, a.SpGEMM(b));
  algebra::SetSemiringLoweringOverride(true);
  for (int threads : {1, 4}) {
    SetThreadCount(threads);
    ASSERT_OK_AND_ASSIGN(SparseMatrixCSR on, a.SpGEMM(b));
    std::vector<Triplet> to = off.ToTriplets(), tn = on.ToTriplets();
    ASSERT_EQ(to.size(), tn.size()) << "threads=" << threads;
    for (size_t i = 0; i < to.size(); ++i) {
      EXPECT_EQ(to[i].row, tn[i].row);
      EXPECT_EQ(to[i].col, tn[i].col);
      EXPECT_EQ(to[i].value, tn[i].value) << "entry " << i;
    }
  }
}

TEST(LoweringTest, BfsAndPageRankOffOnIdentical) {
  Rng rng(23);
  std::vector<int64_t> src, dst;
  for (int i = 0; i < 300; ++i) {
    src.push_back(rng.NextInt(0, 49));
    dst.push_back(rng.NextInt(0, 49));
  }
  graph::CsrGraph g = graph::CsrGraph::FromEdges(src, dst);
  LoweringGuard guard;
  algebra::SetSemiringLoweringOverride(false);
  std::vector<int64_t> bfs_off = graph::Bfs(g, 0);
  graph::PageRankOptions opts;
  opts.max_iters = 30;
  graph::PageRankResult pr_off = graph::PageRank(g, opts);
  algebra::SetSemiringLoweringOverride(true);
  for (int threads : {1, 4}) {
    SetThreadCount(threads);
    EXPECT_EQ(graph::Bfs(g, 0), bfs_off) << "threads=" << threads;
    graph::PageRankResult pr_on = graph::PageRank(g, opts);
    EXPECT_EQ(pr_on.iterations, pr_off.iterations);
    ASSERT_EQ(pr_on.rank.size(), pr_off.rank.size());
    for (size_t i = 0; i < pr_on.rank.size(); ++i) {
      EXPECT_EQ(pr_on.rank[i], pr_off.rank[i])
          << "node " << i << " threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Optimizer recognition.
// ---------------------------------------------------------------------------

TEST(LowerSemiringPassTest, CountsLowerableOps) {
  PlanPtr agg = Plan::Aggregate(Plan::Scan("t"), {"g"},
                                {AggSpec{AggFunc::kSum, Col("v"), "s"}});
  EXPECT_TRUE(SemiringLowerable(*agg));
  EXPECT_EQ(CountLowerableOps(*agg), 1);
  PlanPtr avg = Plan::Aggregate(Plan::Scan("t"), {"g"},
                                {AggSpec{AggFunc::kAvg, Col("v"), "m"}});
  EXPECT_FALSE(SemiringLowerable(*avg));
  PlanPtr mm = Plan::MatMul(Plan::Scan("a"), Plan::Scan("b"));
  EXPECT_TRUE(SemiringLowerable(*mm));
  // Nested: Aggregate over MatMul counts both.
  PlanPtr both = Plan::Aggregate(mm, {"i"},
                                 {AggSpec{AggFunc::kSum, Col("v"), "s"}});
  EXPECT_EQ(CountLowerableOps(*both), 2);
}

}  // namespace
}  // namespace nexus
