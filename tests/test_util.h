// Shared helpers for the nexus test suite.
#ifndef NEXUS_TESTS_TEST_UTIL_H_
#define NEXUS_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "types/table.h"

namespace nexus {
namespace testing {

/// Builds a schema from fields, aborting on invalid specs (tests only).
inline SchemaPtr MakeSchema(std::vector<Field> fields) {
  auto r = Schema::Make(std::move(fields));
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ValueOrDie();
}

/// Builds a table from rows of boxed values.
inline TablePtr MakeTable(SchemaPtr schema,
                          const std::vector<std::vector<Value>>& rows) {
  TableBuilder b(schema);
  for (const auto& row : rows) {
    auto st = b.AppendRow(row);
    EXPECT_TRUE(st.ok()) << st;
  }
  auto r = b.Finish();
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ValueOrDie();
}

/// Shorthand value constructors.
inline Value I(int64_t v) { return Value::Int64(v); }
inline Value F(double v) { return Value::Float64(v); }
inline Value S(std::string v) { return Value::String(std::move(v)); }
inline Value B(bool v) { return Value::Bool(v); }
inline Value N() { return Value::Null(); }

}  // namespace testing
}  // namespace nexus

#define ASSERT_OK(expr)                                \
  do {                                                 \
    auto _assert_status = (expr);                      \
    ASSERT_TRUE(_assert_status.ok()) << _assert_status; \
  } while (0)

#define EXPECT_OK(expr)                                \
  do {                                                 \
    auto _expect_status = (expr);                      \
    EXPECT_TRUE(_expect_status.ok()) << _expect_status; \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                 \
  auto NEXUS_CONCAT(_res_, __LINE__) = (expr);          \
  ASSERT_TRUE(NEXUS_CONCAT(_res_, __LINE__).ok())       \
      << NEXUS_CONCAT(_res_, __LINE__).status();        \
  lhs = NEXUS_CONCAT(_res_, __LINE__).MoveValue()

#endif  // NEXUS_TESTS_TEST_UTIL_H_
