// Front-end tests: the fluent builder and the BDL surface language must
// lower to identical algebra (and both must execute correctly).
#include <gtest/gtest.h>

#include "common/random.h"
#include "exec/reference_executor.h"
#include "core/serialize.h"
#include "frontend/bdl.h"
#include "frontend/query.h"
#include "tests/test_util.h"

namespace nexus {
namespace {

using namespace nexus::exprs;  // NOLINT
using testing::F;
using testing::I;
using testing::MakeSchema;
using testing::MakeTable;
using testing::S;

class FrontendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(3);
    SchemaPtr orders = MakeSchema({Field::Attr("oid", DataType::kInt64),
                                   Field::Attr("cid", DataType::kInt64),
                                   Field::Attr("amount", DataType::kFloat64),
                                   Field::Attr("region", DataType::kString)});
    TableBuilder b(orders);
    for (int64_t i = 0; i < 100; ++i) {
      ASSERT_OK(b.AppendRow(
          {I(i), I(rng.NextInt(0, 9)), F(rng.NextDouble(0, 100)),
           S(std::string(1, static_cast<char>('a' + rng.NextBounded(3))))}));
    }
    ASSERT_OK(catalog_.Put("orders", Dataset(b.Finish().ValueOrDie())));

    SchemaPtr cust = MakeSchema({Field::Attr("id", DataType::kInt64),
                                 Field::Attr("name", DataType::kString)});
    TableBuilder cb(cust);
    for (int64_t i = 0; i < 10; ++i) {
      ASSERT_OK(cb.AppendRow({I(i), S(rng.NextString(5))}));
    }
    ASSERT_OK(catalog_.Put("cust", Dataset(cb.Finish().ValueOrDie())));

    SchemaPtr grid = MakeSchema({Field::Dim("i"), Field::Dim("j"),
                                 Field::Attr("v", DataType::kFloat64)});
    TableBuilder gb(grid);
    for (int64_t i = 0; i < 8; ++i) {
      for (int64_t j = 0; j < 8; ++j) {
        ASSERT_OK(gb.AppendRow(
            {I(i), I(j), F(static_cast<double>(rng.NextInt(1, 9)))}));
      }
    }
    ASSERT_OK(catalog_.Put("grid", Dataset(gb.Finish().ValueOrDie())));
  }

  TablePtr Run(const PlanPtr& plan) {
    ReferenceExecutor exec(&catalog_);
    auto r = exec.Execute(*plan);
    EXPECT_OK(r.status());
    auto t = r.ValueOrDie().AsTable();
    EXPECT_OK(t.status());
    return t.ValueOrDie();
  }

  InMemoryCatalog catalog_;
};

TEST_F(FrontendTest, FluentBuildsExpectedAlgebra) {
  Query q = Query::From("orders")
                .Where(Gt(Col("amount"), Lit(50.0)))
                .Let("taxed", Mul(Col("amount"), Lit(1.1)))
                .GroupBy({"cid"}, {Sum(Col("taxed"), "total"), Count("n")})
                .OrderBy("total", false)
                .Take(5);
  PlanPtr manual = Plan::Limit(
      Plan::Sort(
          Plan::Aggregate(
              Plan::Extend(
                  Plan::Select(Plan::Scan("orders"), Gt(Col("amount"), Lit(50.0))),
                  {{"taxed", Mul(Col("amount"), Lit(1.1))}}),
              {"cid"},
              {AggSpec{AggFunc::kSum, Col("taxed"), "total"},
               AggSpec{AggFunc::kCount, nullptr, "n"}}),
          {{"total", false}}),
      5, 0);
  EXPECT_TRUE(q.plan()->Equals(*manual));
  TablePtr t = Run(q.plan());
  EXPECT_LE(t->num_rows(), 5);
}

TEST_F(FrontendTest, FluentJoinAndArrayVerbs) {
  Query q = Query::From("orders")
                .JoinWith(Query::From("cust"), {"cid"}, {"id"})
                .SelectCols({"oid", "name"});
  TablePtr t = Run(q.plan());
  EXPECT_EQ(t->num_columns(), 2);

  Query g = Query::From("grid")
                .Slice({{"i", 0, 4}})
                .Regrid({{"i", 2}, {"j", 2}}, AggFunc::kSum)
                .Transpose({"j", "i"});
  TablePtr gt = Run(g.plan());
  EXPECT_EQ(gt->schema()->field(0).name, "j");
}

TEST_F(FrontendTest, FluentIterate) {
  SchemaPtr s = MakeSchema({Field::Attr("v", DataType::kFloat64)});
  ASSERT_OK(catalog_.Put("st", Dataset(MakeTable(s, {{F(81.0)}}))));
  Query body = Query::Loop()
                   .Let("n", Func("sqrt", {Col("v")}))
                   .SelectCols({"n"})
                   .Rename({{"n", "v"}});
  Query q = Query::From("st").IterateUntil(body, 2);
  TablePtr t = Run(q.plan());
  EXPECT_EQ(t->At(0, 0), F(3.0));  // sqrt(sqrt(81))
}

TEST_F(FrontendTest, BdlExpressionParsing) {
  ASSERT_OK_AND_ASSIGN(ExprPtr e, ParseBdlExpr("a + b * 2 > 10 and not flag"));
  EXPECT_EQ(e->ToString(), "(((a + (b * 2)) > 10) and not flag)");
  ASSERT_OK_AND_ASSIGN(ExprPtr e2, ParseBdlExpr("abs(x - 1.5) <= eps or x == 0"));
  EXPECT_EQ(e2->ToString(), "((abs((x - 1.5)) <= eps) or (x == 0))");
  ASSERT_OK_AND_ASSIGN(ExprPtr e3, ParseBdlExpr("-x % 3"));
  EXPECT_EQ(e3->ToString(), "(-x % 3)");
  ASSERT_OK_AND_ASSIGN(ExprPtr e4, ParseBdlExpr("\"abc\" == region"));
  EXPECT_EQ(e4->ToString(), "(\"abc\" == region)");
  ASSERT_OK_AND_ASSIGN(ExprPtr e5, ParseBdlExpr("coalesce(x, 0) != null"));
  EXPECT_EQ(e5->ToString(), "(coalesce(x, 0) != null)");
}

TEST_F(FrontendTest, BdlExpressionErrors) {
  EXPECT_FALSE(ParseBdlExpr("a +").ok());
  EXPECT_FALSE(ParseBdlExpr("(a").ok());
  EXPECT_FALSE(ParseBdlExpr("a b").ok());  // trailing input
  EXPECT_FALSE(ParseBdlExpr("\"unterminated").ok());
  EXPECT_FALSE(ParseBdlExpr("*").ok());
}

TEST_F(FrontendTest, BdlPipelineMatchesFluent) {
  ASSERT_OK_AND_ASSIGN(PlanPtr p, ParseBdl(R"(
      from orders
      where amount > 50.0
      extend taxed := amount * 1.1
      group by cid aggregate sum(taxed) as total, count(*) as n
      sort by total desc
      limit 5
  )"));
  Query q = Query::From("orders")
                .Where(Gt(Col("amount"), Lit(50.0)))
                .Let("taxed", Mul(Col("amount"), Lit(1.1)))
                .GroupBy({"cid"}, {Sum(Col("taxed"), "total"), Count("n")})
                .OrderBy("total", false)
                .Take(5);
  EXPECT_TRUE(p->Equals(*q.plan()))
      << "BDL:\n" << p->ToString() << "fluent:\n" << q.plan()->ToString();
}

TEST_F(FrontendTest, BdlJoins) {
  ASSERT_OK_AND_ASSIGN(PlanPtr p, ParseBdl(
      "from orders | join cust on cid = id | select oid, name"));
  TablePtr t = Run(p);
  EXPECT_EQ(t->num_columns(), 2);

  ASSERT_OK_AND_ASSIGN(PlanPtr lj, ParseBdl(
      "from orders | left join cust on cid = id"));
  EXPECT_EQ(lj->As<JoinOp>().type, JoinType::kLeft);
  ASSERT_OK_AND_ASSIGN(PlanPtr aj, ParseBdl(
      "from orders | anti join cust on cid = id"));
  EXPECT_EQ(aj->As<JoinOp>().type, JoinType::kAnti);
  ASSERT_OK_AND_ASSIGN(PlanPtr rj, ParseBdl(
      "from orders | join cust on cid = id if amount > 10"));
  EXPECT_NE(rj->As<JoinOp>().residual, nullptr);
}

TEST_F(FrontendTest, BdlArrayStages) {
  ASSERT_OK_AND_ASSIGN(PlanPtr p, ParseBdl(R"(
      from grid
      slice i 0 4, j 0 4
      shift i 2
      regrid i/2, j/2 using sum
      transpose j, i
      unbox
  )"));
  TablePtr t = Run(p);
  EXPECT_EQ(t->schema()->field(0).name, "j");
  EXPECT_TRUE(t->schema()->DimensionIndices().empty());

  ASSERT_OK_AND_ASSIGN(PlanPtr w, ParseBdl("from grid | window i 1, j 1 using max"));
  EXPECT_EQ(w->kind(), OpKind::kWindow);

  ASSERT_OK_AND_ASSIGN(PlanPtr rb, ParseBdl(
      "from orders | rebox oid chunk 16"));
  EXPECT_EQ(rb->As<ReboxOp>().chunk_size, 16);
}

TEST_F(FrontendTest, BdlIntentStages) {
  ASSERT_OK_AND_ASSIGN(PlanPtr mm, ParseBdl("from grid | matmul grid as prod"));
  EXPECT_EQ(mm->kind(), OpKind::kMatMul);
  EXPECT_EQ(mm->As<MatMulOp>().result_attr, "prod");

  ASSERT_OK_AND_ASSIGN(PlanPtr pr, ParseBdl(
      "from orders | pagerank oid cid damping 0.9 iters 25 eps 1e-6"));
  EXPECT_EQ(pr->kind(), OpKind::kPageRank);
  EXPECT_EQ(pr->As<PageRankOp>().damping, 0.9);
  EXPECT_EQ(pr->As<PageRankOp>().max_iters, 25);
  EXPECT_EQ(pr->As<PageRankOp>().epsilon, 1e-6);

  ASSERT_OK_AND_ASSIGN(PlanPtr ew, ParseBdl("from grid | elemwise * grid"));
  EXPECT_EQ(ew->kind(), OpKind::kElemWise);
  EXPECT_EQ(ew->As<ElemWiseOpSpec>().op, BinaryOp::kMul);
}

TEST_F(FrontendTest, BdlMiscStages) {
  ASSERT_OK_AND_ASSIGN(PlanPtr p, ParseBdl(R"(
      from orders
      rename amount -> amt
      distinct
      union orders2
      limit 10 offset 2
  )"));
  EXPECT_EQ(p->kind(), OpKind::kLimit);
  EXPECT_EQ(p->As<LimitOp>().offset, 2);
  // Comments are skipped.
  ASSERT_OK_AND_ASSIGN(PlanPtr c, ParseBdl(
      "from orders  # the base table\nwhere amount > 1  # cheap ones out"));
  EXPECT_EQ(c->kind(), OpKind::kSelect);
}

TEST_F(FrontendTest, BdlErrors) {
  EXPECT_FALSE(ParseBdl("").ok());
  EXPECT_FALSE(ParseBdl("where x > 1").ok());          // no from
  EXPECT_FALSE(ParseBdl("from a | from b").ok());      // second from
  EXPECT_FALSE(ParseBdl("from a | frobnicate x").ok());
  EXPECT_FALSE(ParseBdl("from a | join b").ok());      // missing on
  EXPECT_FALSE(ParseBdl("from a | group by x").ok());  // missing aggregate
  EXPECT_FALSE(ParseBdl("from a | aggregate sum(x)").ok());  // missing as
  EXPECT_FALSE(ParseBdl("from a | aggregate avg(*) as m").ok());
  EXPECT_FALSE(ParseBdl("from a | extend x = 1").ok());  // needs :=
}

TEST_F(FrontendTest, BdlSerializeRoundTrip) {
  // BDL → algebra → wire → algebra: stable across the whole front stack.
  ASSERT_OK_AND_ASSIGN(PlanPtr p, ParseBdl(
      "from orders | where amount > 10 and region == \"a\" | "
      "group by cid aggregate avg(amount) as m | sort by m"));
  ASSERT_OK_AND_ASSIGN(PlanPtr back, ParsePlan(SerializePlan(*p)));
  EXPECT_TRUE(p->Equals(*back));
}

}  // namespace
}  // namespace nexus
