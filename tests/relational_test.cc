// Tests for the vectorized relational engine, including differential tests
// against the reference executor on randomized workloads.
#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/random.h"
#include "exec/reference_executor.h"
#include "expr/builder.h"
#include "optimizer/fusion.h"
#include "relational/engine.h"
#include "relational/fused.h"
#include "tests/test_util.h"

namespace nexus {
namespace {

using namespace nexus::exprs;  // NOLINT
using testing::B;
using testing::F;
using testing::I;
using testing::MakeSchema;
using testing::MakeTable;
using testing::N;
using testing::S;

TablePtr Employees() {
  SchemaPtr s = MakeSchema({Field::Attr("id", DataType::kInt64),
                            Field::Attr("dept", DataType::kInt64),
                            Field::Attr("salary", DataType::kFloat64)});
  return MakeTable(s, {{I(1), I(10), F(90)},
                       {I(2), I(10), F(70)},
                       {I(3), I(20), F(80)},
                       {I(4), N(), F(60)}});
}

TablePtr Departments() {
  SchemaPtr s = MakeSchema({Field::Attr("did", DataType::kInt64),
                            Field::Attr("dname", DataType::kString)});
  return MakeTable(s, {{I(10), S("eng")}, {I(30), S("hr")}});
}

TEST(RelationalFilterTest, Basic) {
  ASSERT_OK_AND_ASSIGN(TablePtr t,
                       relational::Filter(Employees(), *Gt(Col("salary"), Lit(65.0))));
  EXPECT_EQ(t->num_rows(), 3);
  ASSERT_OK_AND_ASSIGN(TablePtr none,
                       relational::Filter(Employees(), *Gt(Col("salary"), Lit(1e9))));
  EXPECT_EQ(none->num_rows(), 0);
}

TEST(RelationalProjectTest, SelectsAndErrors) {
  ASSERT_OK_AND_ASSIGN(TablePtr t, relational::Project(Employees(), {"salary", "id"}));
  EXPECT_EQ(t->schema()->field(0).name, "salary");
  EXPECT_FALSE(relational::Project(Employees(), {"zz"}).ok());
}

TEST(RelationalExtendTest, ChainedDefs) {
  ASSERT_OK_AND_ASSIGN(
      TablePtr t,
      relational::Extend(Employees(), {{"x", Mul(Col("salary"), Lit(2.0))},
                                       {"y", Add(Col("x"), Lit(1.0))}}));
  EXPECT_EQ(t->At(0, 3), F(180.0));
  EXPECT_EQ(t->At(0, 4), F(181.0));
}

TEST(RelationalJoinTest, InnerMatchesAndSkipsNullKeys) {
  JoinOp op;
  op.type = JoinType::kInner;
  op.left_keys = {"dept"};
  op.right_keys = {"did"};
  ASSERT_OK_AND_ASSIGN(TablePtr t,
                       relational::HashJoin(Employees(), Departments(), op));
  EXPECT_EQ(t->num_rows(), 2);  // id 1 and 2 join eng; null dept drops
  EXPECT_EQ(t->schema()->FindField("did"), -1);
}

TEST(RelationalJoinTest, LeftJoinNullExtends) {
  JoinOp op;
  op.type = JoinType::kLeft;
  op.left_keys = {"dept"};
  op.right_keys = {"did"};
  ASSERT_OK_AND_ASSIGN(TablePtr t,
                       relational::HashJoin(Employees(), Departments(), op));
  EXPECT_EQ(t->num_rows(), 4);
  int dname = t->schema()->FindField("dname");
  int64_t nulls = 0;
  for (int64_t r = 0; r < t->num_rows(); ++r) nulls += t->At(r, dname).is_null();
  EXPECT_EQ(nulls, 2);  // dept 20 and the null dept
}

TEST(RelationalJoinTest, SemiAntiAndResidual) {
  JoinOp semi;
  semi.type = JoinType::kSemi;
  semi.left_keys = {"dept"};
  semi.right_keys = {"did"};
  ASSERT_OK_AND_ASSIGN(TablePtr s,
                       relational::HashJoin(Employees(), Departments(), semi));
  EXPECT_EQ(s->num_rows(), 2);

  JoinOp anti = semi;
  anti.type = JoinType::kAnti;
  ASSERT_OK_AND_ASSIGN(TablePtr a,
                       relational::HashJoin(Employees(), Departments(), anti));
  EXPECT_EQ(a->num_rows(), 2);

  JoinOp resid = semi;
  resid.type = JoinType::kInner;
  resid.residual = Gt(Col("salary"), Lit(80.0));
  ASSERT_OK_AND_ASSIGN(TablePtr r,
                       relational::HashJoin(Employees(), Departments(), resid));
  EXPECT_EQ(r->num_rows(), 1);  // only id 1 (salary 90)
}

TEST(RelationalJoinTest, CrossJoinViaEmptyKeys) {
  JoinOp op;
  op.residual = Lit(true);
  ASSERT_OK_AND_ASSIGN(TablePtr t,
                       relational::HashJoin(Employees(), Departments(), op));
  EXPECT_EQ(t->num_rows(), 8);
}

TEST(RelationalAggregateTest, GroupedSums) {
  AggregateOp op;
  op.group_by = {"dept"};
  op.aggs = {AggSpec{AggFunc::kSum, Col("salary"), "total"},
             AggSpec{AggFunc::kCount, nullptr, "n"},
             AggSpec{AggFunc::kMin, Col("salary"), "lo"},
             AggSpec{AggFunc::kMax, Col("salary"), "hi"},
             AggSpec{AggFunc::kAvg, Col("salary"), "mean"}};
  ASSERT_OK_AND_ASSIGN(TablePtr t, relational::HashAggregate(Employees(), op));
  EXPECT_EQ(t->num_rows(), 3);  // 10, 20, null
  EXPECT_EQ(t->At(0, 0), I(10));
  EXPECT_EQ(t->At(0, 1), F(160.0));
  EXPECT_EQ(t->At(0, 2), I(2));
  EXPECT_EQ(t->At(0, 3), F(70.0));
  EXPECT_EQ(t->At(0, 4), F(90.0));
  EXPECT_EQ(t->At(0, 5), F(80.0));
}

TEST(RelationalAggregateTest, IntMinMaxStayExact) {
  SchemaPtr s = MakeSchema({Field::Attr("x", DataType::kInt64)});
  int64_t big = (int64_t{1} << 62) + 3;
  TablePtr t = MakeTable(s, {{I(big)}, {I(big - 1)}});
  AggregateOp op;
  op.aggs = {AggSpec{AggFunc::kMax, Col("x"), "hi"},
             AggSpec{AggFunc::kMin, Col("x"), "lo"}};
  ASSERT_OK_AND_ASSIGN(TablePtr out, relational::HashAggregate(t, op));
  EXPECT_EQ(out->At(0, 0), I(big));
  EXPECT_EQ(out->At(0, 1), I(big - 1));
}

TEST(RelationalSortTest, TypedComparatorsAndNulls) {
  ASSERT_OK_AND_ASSIGN(
      TablePtr t, relational::Sort(Employees(), {{"dept", true}, {"salary", false}}));
  EXPECT_TRUE(t->At(0, 1).is_null());  // null dept first
  EXPECT_EQ(t->At(1, 2), F(90.0));
  EXPECT_EQ(t->At(2, 2), F(70.0));
}

TEST(RelationalDistinctTest, RemovesDuplicates) {
  SchemaPtr s = MakeSchema({Field::Attr("a", DataType::kInt64),
                            Field::Attr("b", DataType::kString)});
  TablePtr t = MakeTable(s, {{I(1), S("x")}, {I(1), S("x")}, {I(1), S("y")},
                             {N(), S("x")}, {N(), S("x")}});
  ASSERT_OK_AND_ASSIGN(TablePtr d, relational::Distinct(t));
  EXPECT_EQ(d->num_rows(), 3);
}

TEST(RelationalUnionRenameLimitTest, Basics) {
  ASSERT_OK_AND_ASSIGN(TablePtr u, relational::Union(Employees(), Employees()));
  EXPECT_EQ(u->num_rows(), 8);
  ASSERT_OK_AND_ASSIGN(TablePtr r,
                       relational::Rename(Employees(), {{"salary", "pay"}}));
  EXPECT_GE(r->schema()->FindField("pay"), 0);
  ASSERT_OK_AND_ASSIGN(TablePtr l, relational::Limit(Employees(), 2, 1));
  EXPECT_EQ(l->num_rows(), 2);
  EXPECT_EQ(l->At(0, 0), I(2));
  EXPECT_FALSE(relational::Union(Employees(), Departments()).ok());
}

TEST(RelationalHashTest, EqualRowsHashEqual) {
  SchemaPtr s = MakeSchema({Field::Attr("a", DataType::kInt64),
                            Field::Attr("b", DataType::kString)});
  TablePtr t = MakeTable(s, {{I(1), S("x")}, {I(1), S("x")}, {I(2), S("x")}});
  ASSERT_OK_AND_ASSIGN(auto hashes, relational::HashRows(*t, {0, 1}));
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_NE(hashes[0], hashes[2]);
}

// ---------------------------------------------------------------------------
// Differential testing: the engine must agree with the reference executor on
// randomized tables across a grid of plan shapes.
// ---------------------------------------------------------------------------

class RelationalDifferentialTest : public ::testing::TestWithParam<int> {};

TablePtr RandomTable(Rng* rng, int64_t rows) {
  SchemaPtr s = MakeSchema({Field::Attr("k", DataType::kInt64),
                            Field::Attr("v", DataType::kFloat64),
                            Field::Attr("tag", DataType::kString)});
  TableBuilder b(s);
  for (int64_t i = 0; i < rows; ++i) {
    Value k = rng->NextBool(0.05) ? N() : I(rng->NextInt(0, 20));
    Value v = rng->NextBool(0.05) ? N() : F(rng->NextDouble(-100, 100));
    Value tag = S(std::string(1, static_cast<char>('a' + rng->NextBounded(4))));
    EXPECT_OK(b.AppendRow({k, v, tag}));
  }
  auto r = b.Finish();
  EXPECT_OK(r.status());
  return r.ValueOrDie();
}

TEST_P(RelationalDifferentialTest, AgreesWithReferenceExecutor) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 7);
  InMemoryCatalog catalog;
  TablePtr left = RandomTable(&rng, 200);
  TablePtr right = RandomTable(&rng, 150);
  ASSERT_OK(catalog.Put("L", Dataset(left)));
  ASSERT_OK(catalog.Put("R", Dataset(right)));
  ReferenceExecutor ref(&catalog);

  auto check = [&](const PlanPtr& plan, const TablePtr& engine_result) {
    ASSERT_OK_AND_ASSIGN(Dataset want, ref.Execute(*plan));
    ASSERT_OK_AND_ASSIGN(TablePtr want_table, want.AsTable());
    EXPECT_TRUE(engine_result->EqualsUnordered(*want_table))
        << plan->ToString() << "engine rows=" << engine_result->num_rows()
        << " reference rows=" << want_table->num_rows();
  };

  // Filter.
  ExprPtr pred = And(Gt(Col("v"), Lit(0.0)), Lt(Col("k"), Lit(15)));
  ASSERT_OK_AND_ASSIGN(TablePtr f, relational::Filter(left, *pred));
  check(Plan::Select(Plan::Scan("L"), pred), f);

  // Joins of every type.
  for (JoinType jt : {JoinType::kInner, JoinType::kLeft, JoinType::kSemi,
                      JoinType::kAnti}) {
    JoinOp op;
    op.type = jt;
    op.left_keys = {"k"};
    op.right_keys = {"k"};
    ASSERT_OK_AND_ASSIGN(
        TablePtr renamed,
        relational::Rename(right, {{"v", "rv"}, {"tag", "rtag"}}));
    ASSERT_OK_AND_ASSIGN(TablePtr j, relational::HashJoin(left, renamed, op));
    PlanPtr rplan = Plan::Rename(Plan::Scan("R"), {{"v", "rv"}, {"tag", "rtag"}});
    check(Plan::Join(Plan::Scan("L"), rplan, jt, {"k"}, {"k"}), j);
  }

  // Aggregation.
  AggregateOp agg;
  agg.group_by = {"k", "tag"};
  agg.aggs = {AggSpec{AggFunc::kSum, Col("v"), "sv"},
              AggSpec{AggFunc::kCount, nullptr, "n"},
              AggSpec{AggFunc::kAvg, Col("v"), "av"}};
  ASSERT_OK_AND_ASSIGN(TablePtr a, relational::HashAggregate(left, agg));
  // Compare sums with tolerance by sorting both sides identically instead of
  // exact row equality (float addition order differs).
  ASSERT_OK_AND_ASSIGN(Dataset want, ref.Execute(*Plan::Aggregate(
                                         Plan::Scan("L"), agg.group_by, agg.aggs)));
  ASSERT_OK_AND_ASSIGN(TablePtr want_t, want.AsTable());
  ASSERT_OK_AND_ASSIGN(TablePtr a_sorted,
                       relational::Sort(a, {{"k", true}, {"tag", true}}));
  ASSERT_OK_AND_ASSIGN(TablePtr w_sorted,
                       relational::Sort(want_t, {{"k", true}, {"tag", true}}));
  ASSERT_EQ(a_sorted->num_rows(), w_sorted->num_rows());
  for (int64_t r = 0; r < a_sorted->num_rows(); ++r) {
    EXPECT_EQ(a_sorted->At(r, 0), w_sorted->At(r, 0));
    EXPECT_EQ(a_sorted->At(r, 1), w_sorted->At(r, 1));
    if (!a_sorted->At(r, 2).is_null()) {
      EXPECT_NEAR(a_sorted->At(r, 2).AsDouble(), w_sorted->At(r, 2).AsDouble(), 1e-6);
    }
    EXPECT_EQ(a_sorted->At(r, 3), w_sorted->At(r, 3));
  }

  // Distinct.
  ASSERT_OK_AND_ASSIGN(TablePtr proj, relational::Project(left, {"k", "tag"}));
  ASSERT_OK_AND_ASSIGN(TablePtr d, relational::Distinct(proj));
  check(Plan::Distinct(Plan::Project(Plan::Scan("L"), {"k", "tag"})), d);

  // Sort: fully deterministic (ordered compare).
  ASSERT_OK_AND_ASSIGN(TablePtr sorted,
                       relational::Sort(left, {{"k", true}, {"v", false}}));
  ASSERT_OK_AND_ASSIGN(
      Dataset want_sorted,
      ref.Execute(*Plan::Sort(Plan::Scan("L"), {{"k", true}, {"v", false}})));
  ASSERT_OK_AND_ASSIGN(TablePtr ws, want_sorted.AsTable());
  EXPECT_TRUE(sorted->Equals(*ws));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelationalDifferentialTest, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// Fused morsel pipelines (optimizer/fusion.h + relational/fused.h).
// ---------------------------------------------------------------------------

TablePtr SalesTable(int64_t rows) {
  SchemaPtr s = MakeSchema({Field::Attr("k", DataType::kInt64),
                            Field::Attr("g", DataType::kInt64),
                            Field::Attr("v", DataType::kFloat64),
                            Field::Attr("tag", DataType::kString)});
  Rng rng(99);
  TableBuilder b(s);
  for (int64_t i = 0; i < rows; ++i) {
    std::vector<Value> row = {I(rng.NextInt(0, 1000)), I(rng.NextInt(0, 7)),
                              F(static_cast<double>(rng.NextInt(-50, 50))),
                              S(std::string(1, static_cast<char>('a' + rng.NextBounded(4))))};
    if (rng.NextBool(0.1)) row[rng.NextBounded(4)] = N();
    EXPECT_OK(b.AppendRow(row));
  }
  return b.Finish().ValueOrDie();
}

// Applies the matched chain one operator at a time — the baseline the fused
// loop must reproduce byte-for-byte.
Result<TablePtr> ApplyUnfused(const std::vector<const Plan*>& ops, TablePtr t) {
  for (const Plan* op : ops) {
    switch (op->kind()) {
      case OpKind::kSelect: {
        NEXUS_ASSIGN_OR_RETURN(
            t, relational::Filter(t, *op->As<SelectOp>().predicate));
        break;
      }
      case OpKind::kProject: {
        NEXUS_ASSIGN_OR_RETURN(
            t, relational::Project(t, op->As<ProjectOp>().columns));
        break;
      }
      case OpKind::kExtend: {
        NEXUS_ASSIGN_OR_RETURN(t,
                               relational::Extend(t, op->As<ExtendOp>().defs));
        break;
      }
      case OpKind::kAggregate: {
        NEXUS_ASSIGN_OR_RETURN(
            t, relational::HashAggregate(t, op->As<AggregateOp>()));
        break;
      }
      default:
        return Status::Internal("bad chain op");
    }
  }
  return t;
}

void ExpectFusedMatchesUnfused(const PlanPtr& root, const TablePtr& t,
                               size_t want_ops) {
  std::optional<FusedChain> chain = MatchFusedChain(*root);
  ASSERT_TRUE(chain.has_value());
  EXPECT_EQ(chain->ops.size(), want_ops);
  ASSERT_OK_AND_ASSIGN(
      relational::FusedPipeline fp,
      relational::CompileFusedPipeline(chain->ops, t->schema()));
  ASSERT_OK_AND_ASSIGN(TablePtr want, ApplyUnfused(chain->ops, t));
  struct Guard {
    int saved = GetThreadCount();
    ~Guard() { SetThreadCount(saved); }
  } guard;
  for (int threads : {1, 4}) {
    SetThreadCount(threads);
    ASSERT_OK_AND_ASSIGN(TablePtr fused, relational::ExecuteFused(fp, t));
    EXPECT_TRUE(fused->Equals(*want)) << "threads=" << threads;
    EXPECT_TRUE(fused->schema()->Equals(*want->schema()))
        << "threads=" << threads;
  }
}

TEST(FusedPipelineTest, FilterExtendProjectMatchesUnfused) {
  TablePtr t = SalesTable(40000);  // multiple morsels at kMorselRows = 16k
  PlanPtr root = Plan::Project(
      Plan::Extend(
          Plan::Select(Plan::Values(Dataset(t)), Gt(Col("k"), Lit(200))),
          {{"z", Add(Mul(Col("k"), Lit(3)), Col("g"))},
           {"w", Func("if", {Func("is_null", {Col("v")}), Lit(0.0), Col("v")})}}),
      {"z", "w", "tag"});
  ExpectFusedMatchesUnfused(root, t, 3);
}

TEST(FusedPipelineTest, ChainEndingInAggregateMatchesUnfused) {
  TablePtr t = SalesTable(40000);
  PlanPtr root = Plan::Aggregate(
      Plan::Extend(
          Plan::Select(Plan::Values(Dataset(t)),
                       And(Gt(Col("k"), Lit(100)), Lt(Col("k"), Lit(900)))),
          {{"v2", Mul(Col("v"), Col("v"))}}),
      {"g"},
      {AggSpec{AggFunc::kSum, Col("v2"), "ss"},
       AggSpec{AggFunc::kCount, nullptr, "n"},
       AggSpec{AggFunc::kMin, Col("k"), "lo"},
       AggSpec{AggFunc::kAvg, Col("v"), "mean"}});
  ExpectFusedMatchesUnfused(root, t, 3);
}

TEST(FusedPipelineTest, ExtendChainsSeeEarlierDefinitions) {
  TablePtr t = SalesTable(5000);
  // The second Extend references the first's output; lowering must inline
  // the definition, and projecting it away afterwards must not disturb it.
  PlanPtr root = Plan::Project(
      Plan::Extend(
          Plan::Extend(Plan::Values(Dataset(t)), {{"d", Add(Col("k"), Col("g"))}}),
          {{"d2", Mul(Col("d"), Col("d"))}}),
      {"d2", "k"});
  ExpectFusedMatchesUnfused(root, t, 3);
}

TEST(FusedPipelineTest, RefusesWhatTheProgramCannotCompile) {
  TablePtr t = SalesTable(64);
  // String→int parse cast is runtime-fallible: bytecode refuses, so fusion
  // must refuse too (the caller falls back to per-operator execution).
  PlanPtr root = Plan::Project(
      Plan::Extend(Plan::Select(Plan::Values(Dataset(t)), Gt(Col("k"), Lit(1))),
                   {{"p", Cast(DataType::kInt64, Col("tag"))}}),
      {"p"});
  std::optional<FusedChain> chain = MatchFusedChain(*root);
  ASSERT_TRUE(chain.has_value());
  EXPECT_TRUE(relational::CompileFusedPipeline(chain->ops, t->schema())
                  .status()
                  .IsUnsupported());
}

TEST(FusedPipelineTest, SingleOperatorDoesNotMatch) {
  TablePtr t = SalesTable(16);
  PlanPtr one = Plan::Select(Plan::Values(Dataset(t)), Gt(Col("k"), Lit(1)));
  EXPECT_FALSE(MatchFusedChain(*one).has_value());
  EXPECT_FALSE(MatchFusedChain(*Plan::Values(Dataset(t))).has_value());
}

TEST(FusedPipelineTest, FusionSwitchToggles) {
  SetPipelineFusionOverride(false);
  EXPECT_FALSE(PipelineFusionEnabled());
  SetPipelineFusionOverride(true);
  EXPECT_TRUE(PipelineFusionEnabled());
  ClearPipelineFusionOverride();
}

}  // namespace
}  // namespace nexus
