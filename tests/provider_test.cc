// Provider-level differential tests: every provider must produce the same
// logical result as the reference provider on any plan it claims —
// including intent ops claimed via expansion (relstore) and natively
// (linalg, graphd). This is desideratum 2's executable statement.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/expansion.h"
#include "core/schema_inference.h"
#include "expr/builder.h"
#include "core/serialize.h"
#include "core/wire_format.h"
#include "expr/bytecode.h"
#include "optimizer/fusion.h"
#include "provider/provider.h"
#include "telemetry/metrics.h"
#include "tests/test_util.h"

namespace nexus {
namespace {

using namespace nexus::exprs;  // NOLINT
using testing::F;
using testing::I;
using testing::MakeSchema;
using testing::MakeTable;

// Random sparse matrix as a dimension-tagged table.
TablePtr RandomMatrixTable(Rng* rng, int64_t rows, int64_t cols, double density,
                           const std::string& rname, const std::string& cname) {
  SchemaPtr s = MakeSchema({Field::Dim(rname), Field::Dim(cname),
                            Field::Attr("v", DataType::kFloat64)});
  TableBuilder b(s);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      if (rng->NextBool(density)) {
        // Integer-valued doubles keep sums exact across execution orders.
        EXPECT_OK(b.AppendRow(
            {I(r), I(c), F(static_cast<double>(rng->NextInt(1, 9)))}));
      }
    }
  }
  return b.Finish().ValueOrDie();
}

TablePtr RandomEdgeTable(Rng* rng, int64_t nodes, int64_t edges) {
  SchemaPtr s = MakeSchema({Field::Attr("src", DataType::kInt64),
                            Field::Attr("dst", DataType::kInt64)});
  TableBuilder b(s);
  for (int64_t e = 0; e < edges; ++e) {
    EXPECT_OK(b.AppendRow({I(rng->NextInt(0, nodes - 1)),
                           I(rng->NextInt(0, nodes - 1))}));
  }
  return b.Finish().ValueOrDie();
}

class ProviderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<Rng>(20260704);
    reference_ = MakeReferenceProvider();
    relstore_ = MakeRelationalProvider();
    arraydb_ = MakeArrayProvider();
    linalg_ = MakeLinalgProvider();
    graphd_ = MakeGraphProvider();
    all_ = {reference_, relstore_, arraydb_, linalg_, graphd_};

    TablePtr a = RandomMatrixTable(rng_.get(), 12, 9, 0.5, "i", "k");
    TablePtr b = RandomMatrixTable(rng_.get(), 9, 7, 0.5, "k", "j");
    TablePtr grid = RandomMatrixTable(rng_.get(), 10, 10, 0.6, "x", "y");
    TablePtr edges = RandomEdgeTable(rng_.get(), 30, 120);
    for (const ProviderPtr& p : all_) {
      ASSERT_OK(p->catalog()->Put("A", Dataset(a)));
      ASSERT_OK(p->catalog()->Put("B", Dataset(b)));
      ASSERT_OK(p->catalog()->Put("grid", Dataset(grid)));
      ASSERT_OK(p->catalog()->Put("edges", Dataset(edges)));
    }
  }

  // Runs `plan` on every provider claiming it and checks agreement with the
  // reference result.
  void CheckAgreement(const PlanPtr& plan) {
    ASSERT_OK(InferSchema(*plan, *reference_->catalog()).status());
    auto want = reference_->Execute(*plan);
    ASSERT_OK(want.status());
    int ran = 0;
    for (const ProviderPtr& p : all_) {
      if (p == reference_ || !p->ClaimsTree(*plan)) continue;
      auto got = p->Execute(*plan);
      ASSERT_TRUE(got.ok()) << p->name() << ": " << got.status() << "\n"
                            << plan->ToString();
      EXPECT_TRUE(got.ValueOrDie().LogicallyEquals(want.ValueOrDie()))
          << p->name() << " disagrees with reference on\n"
          << plan->ToString() << "reference rows: " << want.ValueOrDie().num_rows()
          << ", " << p->name() << " rows: " << got.ValueOrDie().num_rows();
      ++ran;
    }
    EXPECT_GE(ran, 1) << "no specialized provider claimed\n" << plan->ToString();
  }

  std::unique_ptr<Rng> rng_;
  ProviderPtr reference_, relstore_, arraydb_, linalg_, graphd_;
  std::vector<ProviderPtr> all_;
};

TEST_F(ProviderTest, ClaimSetsAreDistinct) {
  EXPECT_TRUE(reference_->Claims(OpKind::kWindow));
  EXPECT_FALSE(relstore_->Claims(OpKind::kWindow));
  EXPECT_TRUE(relstore_->Claims(OpKind::kMatMul));  // via expansion
  EXPECT_TRUE(arraydb_->Claims(OpKind::kWindow));
  EXPECT_FALSE(arraydb_->Claims(OpKind::kJoin));
  EXPECT_TRUE(linalg_->Claims(OpKind::kMatMul));
  EXPECT_FALSE(linalg_->Claims(OpKind::kSelect));
  EXPECT_TRUE(graphd_->Claims(OpKind::kPageRank));
  EXPECT_FALSE(graphd_->Claims(OpKind::kJoin));
}

TEST_F(ProviderTest, RelationalPipeline) {
  PlanPtr p = Plan::Scan("grid");
  p = Plan::Select(p, Gt(Col("v"), Lit(2.0)));
  p = Plan::Extend(p, {{"w", Mul(Col("v"), Col("v"))}});
  p = Plan::Aggregate(p, {"x"}, {AggSpec{AggFunc::kSum, Col("w"), "sw"},
                                 AggSpec{AggFunc::kCount, nullptr, "n"}});
  CheckAgreement(p);
}

TEST_F(ProviderTest, ArrayPipeline) {
  PlanPtr p = Plan::Scan("grid");
  p = Plan::Slice(p, {{"x", 1, 9}, {"y", 0, 8}});
  p = Plan::Shift(p, {{"x", 5}});
  p = Plan::Regrid(p, {{"x", 2}, {"y", 2}}, AggFunc::kSum);
  CheckAgreement(p);
}

TEST_F(ProviderTest, WindowOnlyOnArrayProviders) {
  PlanPtr p = Plan::Window(Plan::Scan("grid"), {{"x", 1}, {"y", 1}}, AggFunc::kMax);
  EXPECT_FALSE(relstore_->ClaimsTree(*p));
  EXPECT_TRUE(arraydb_->ClaimsTree(*p));
  CheckAgreement(p);
}

TEST_F(ProviderTest, TransposeEverywhere) {
  CheckAgreement(Plan::Transpose(Plan::Scan("grid"), {"y", "x"}));
}

TEST_F(ProviderTest, ElemWiseAcrossProviders) {
  // Same-shaped grids: intersect occupancy.
  PlanPtr a = Plan::Scan("grid");
  PlanPtr b = Plan::Shift(Plan::Scan("grid"), {{"x", 0}});  // identity shift
  for (BinaryOp op : {BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul}) {
    CheckAgreement(Plan::ElemWise(a, b, op));
  }
}

TEST_F(ProviderTest, MatMulNativeAndExpanded) {
  PlanPtr mm = Plan::MatMul(Plan::Scan("A"), Plan::Scan("B"), "prod");
  CheckAgreement(mm);  // linalg (native) and relstore (expansion) vs reference

  // The explicit expansion must also agree.
  ASSERT_OK_AND_ASSIGN(SchemaPtr ls, reference_->catalog()->GetSchema("A"));
  ASSERT_OK_AND_ASSIGN(SchemaPtr rs, reference_->catalog()->GetSchema("B"));
  ASSERT_OK_AND_ASSIGN(
      PlanPtr expanded,
      ExpandMatMul(Plan::Scan("A"), Plan::Scan("B"), MatMulOp{"prod"}, *ls, *rs));
  ASSERT_OK_AND_ASSIGN(SchemaPtr mm_schema,
                       InferSchema(*mm, *reference_->catalog()));
  ASSERT_OK_AND_ASSIGN(SchemaPtr ex_schema,
                       InferSchema(*expanded, *reference_->catalog()));
  EXPECT_TRUE(mm_schema->Equals(*ex_schema))
      << mm_schema->ToString() << " vs " << ex_schema->ToString();
  ASSERT_OK_AND_ASSIGN(Dataset want, reference_->Execute(*mm));
  ASSERT_OK_AND_ASSIGN(Dataset got, reference_->Execute(*expanded));
  EXPECT_TRUE(got.LogicallyEquals(want));
}

TEST_F(ProviderTest, MatMulDenseAndSparsePathsAgree) {
  // Dense occupancy triggers the blocked-GEMM path; sparse the SpGEMM path.
  TablePtr dense_a = RandomMatrixTable(rng_.get(), 20, 20, 0.95, "i", "k");
  TablePtr dense_b = RandomMatrixTable(rng_.get(), 20, 20, 0.95, "k", "j");
  TablePtr sparse_a = RandomMatrixTable(rng_.get(), 20, 20, 0.08, "i", "k");
  TablePtr sparse_b = RandomMatrixTable(rng_.get(), 20, 20, 0.08, "k", "j");
  for (const ProviderPtr& p : all_) {
    ASSERT_OK(p->catalog()->Put("DA", Dataset(dense_a)));
    ASSERT_OK(p->catalog()->Put("DB", Dataset(dense_b)));
    ASSERT_OK(p->catalog()->Put("SA", Dataset(sparse_a)));
    ASSERT_OK(p->catalog()->Put("SB", Dataset(sparse_b)));
  }
  CheckAgreement(Plan::MatMul(Plan::Scan("DA"), Plan::Scan("DB")));
  CheckAgreement(Plan::MatMul(Plan::Scan("SA"), Plan::Scan("SB")));
}

TEST_F(ProviderTest, PageRankNativeMatchesReference) {
  PageRankOp op;
  op.max_iters = 60;
  op.epsilon = 1e-12;
  PlanPtr pr = Plan::PageRank(Plan::Scan("edges"), op);
  ASSERT_OK_AND_ASSIGN(Dataset want, reference_->Execute(*pr));
  ASSERT_OK_AND_ASSIGN(Dataset got, graphd_->Execute(*pr));
  // Float comparison with tolerance: join on node order (both sorted).
  ASSERT_OK_AND_ASSIGN(TablePtr wt, want.AsTable());
  ASSERT_OK_AND_ASSIGN(TablePtr gt, got.AsTable());
  ASSERT_EQ(wt->num_rows(), gt->num_rows());
  for (int64_t r = 0; r < wt->num_rows(); ++r) {
    EXPECT_EQ(wt->At(r, 0), gt->At(r, 0));
    EXPECT_NEAR(wt->At(r, 1).AsDouble(), gt->At(r, 1).AsDouble(), 1e-9);
  }
}

TEST_F(ProviderTest, PageRankExpansionMatchesNative) {
  PageRankOp op;
  op.max_iters = 40;
  op.epsilon = 1e-10;
  // Small graph keeps the relational expansion fast.
  TablePtr edges = RandomEdgeTable(rng_.get(), 12, 40);
  for (const ProviderPtr& p : all_) {
    ASSERT_OK(p->catalog()->Put("small_edges", Dataset(edges)));
  }
  PlanPtr pr = Plan::PageRank(Plan::Scan("small_edges"), op);
  ASSERT_OK_AND_ASSIGN(SchemaPtr es,
                       reference_->catalog()->GetSchema("small_edges"));
  ASSERT_OK_AND_ASSIGN(PlanPtr expanded,
                       ExpandPageRank(Plan::Scan("small_edges"), op, *es));
  // The expansion type-checks to the same schema as the intent op.
  ASSERT_OK_AND_ASSIGN(SchemaPtr s1, InferSchema(*pr, *reference_->catalog()));
  ASSERT_OK_AND_ASSIGN(SchemaPtr s2,
                       InferSchema(*expanded, *reference_->catalog()));
  EXPECT_TRUE(s1->Equals(*s2)) << s1->ToString() << " vs " << s2->ToString();

  ASSERT_OK_AND_ASSIGN(Dataset native, graphd_->Execute(*pr));
  ASSERT_OK_AND_ASSIGN(Dataset expanded_result, reference_->Execute(*expanded));
  ASSERT_OK_AND_ASSIGN(Dataset relstore_result, relstore_->Execute(*pr));
  ASSERT_OK_AND_ASSIGN(TablePtr nt, native.AsTable());
  auto check_close = [&](const Dataset& d) {
    ASSERT_OK_AND_ASSIGN(TablePtr t, d.AsTable());
    ASSERT_EQ(t->num_rows(), nt->num_rows());
    // Both orderings are by node id (graphd emits sorted; expansion order
    // may differ), so sort via map.
    std::map<int64_t, double> got_ranks, want_ranks;
    for (int64_t r = 0; r < t->num_rows(); ++r) {
      got_ranks[t->At(r, 0).AsInt64()] = t->At(r, 1).AsDouble();
      want_ranks[nt->At(r, 0).AsInt64()] = nt->At(r, 1).AsDouble();
    }
    for (const auto& [node, rank] : want_ranks) {
      ASSERT_TRUE(got_ranks.count(node));
      EXPECT_NEAR(got_ranks[node], rank, 1e-8) << "node " << node;
    }
  };
  check_close(expanded_result);
  check_close(relstore_result);
}

TEST_F(ProviderTest, IterateOnRelationalAndArrayProviders) {
  SchemaPtr s = MakeSchema({Field::Dim("i"), Field::Attr("v", DataType::kFloat64)});
  TablePtr state0 = MakeTable(s, {{I(0), F(64.0)}, {I(1), F(16.0)}});
  for (const ProviderPtr& p : all_) {
    ASSERT_OK(p->catalog()->Put("state0", Dataset(state0)));
  }
  IterateOp op;
  op.body = Plan::Rename(
      Plan::Project(
          Plan::Extend(Plan::LoopVar(), {{"h", Div(Col("v"), Lit(2.0))}}),
          {"i", "h"}),
      {{"h", "v"}});
  op.body = Plan::Rebox(op.body, {"i"}, 64);
  op.max_iters = 3;
  PlanPtr it = Plan::Iterate(Plan::Scan("state0"), op);
  CheckAgreement(it);
  ASSERT_OK_AND_ASSIGN(Dataset d, relstore_->Execute(*it));
  ASSERT_OK_AND_ASSIGN(TablePtr t, d.AsTable());
  EXPECT_EQ(t->At(0, 1), F(8.0));
}

TEST_F(ProviderTest, UnclaimedPlanFailsCleanly) {
  PlanPtr join = Plan::Join(Plan::Scan("A"), Plan::Scan("B"), JoinType::kInner,
                            {"k"}, {"k"});
  EXPECT_FALSE(graphd_->ClaimsTree(*join));
  auto st = graphd_->Execute(*join);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.status().IsUnsupported()) << st.status();
}

// --- Plan-cache envelope protocol -----------------------------------------
//
// The coordinator ships %NXB1-PLAN (full plan, cache it) and later
// %NXB1-EXEC (fingerprint reference). These tests pin the provider half of
// that contract: store-then-exec equivalence, the miss marker for unknown
// fingerprints, binding registration hygiene, and FIFO eviction.

class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    provider_ = MakeReferenceProvider();
    SchemaPtr s = MakeSchema({Field::Attr("x", DataType::kInt64)});
    TablePtr t = MakeTable(s, {{I(1)}, {I(2)}, {I(3)}});
    ASSERT_OK(provider_->catalog()->Put("t", Dataset(t)));
  }

  ProviderPtr provider_;
};

TEST_F(PlanCacheTest, StoreThenExecByFingerprintMatchesDirectExecution) {
  PlanPtr plan = Plan::Limit(Plan::Scan("t"), 2);
  std::string wire = SerializePlanWire(*plan, WireFormat::kBinary);
  uint64_t fp = FingerprintWire(wire);
  ASSERT_NE(fp, 0u);

  ASSERT_OK_AND_ASSIGN(
      Dataset stored,
      provider_->ExecuteWire(
          BuildWireEnvelope(WireEnvelope::Kind::kPlanStore, fp, {}, wire)));
  ASSERT_OK_AND_ASSIGN(
      Dataset cached,
      provider_->ExecuteWire(
          BuildWireEnvelope(WireEnvelope::Kind::kExecCached, fp, {}, "")));
  ASSERT_OK_AND_ASSIGN(Dataset direct, provider_->Execute(*plan));
  EXPECT_TRUE(stored.LogicallyEquals(direct));
  EXPECT_TRUE(cached.LogicallyEquals(direct));
}

TEST_F(PlanCacheTest, UnknownFingerprintIsNotFoundWithMissMarker) {
  Result<Dataset> r = provider_->ExecuteWire(BuildWireEnvelope(
      WireEnvelope::Kind::kExecCached, 0xdeadbeefcafe, {}, ""));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_NE(r.status().message().find(kPlanCacheMissMarker),
            std::string::npos)
      << r.status().message();
}

TEST_F(PlanCacheTest, BindingsAreVisibleDuringExecutionAndDroppedAfter) {
  SchemaPtr s = MakeSchema({Field::Attr("v", DataType::kFloat64)});
  Dataset bound(MakeTable(s, {{F(64.0)}}));
  std::string bound_wire = SerializeDatasetWire(bound, WireFormat::kBinary);

  PlanPtr plan = Plan::Scan("__nxbind_state");
  std::string wire = SerializePlanWire(*plan, WireFormat::kBinary);
  uint64_t fp = FingerprintWire(wire);

  ASSERT_OK_AND_ASSIGN(
      Dataset out,
      provider_->ExecuteWire(BuildWireEnvelope(
          WireEnvelope::Kind::kPlanStore, fp,
          {{"__nxbind_state", bound_wire}}, wire)));
  EXPECT_TRUE(out.LogicallyEquals(bound));
  // The binding must not leak into the catalog after the call.
  EXPECT_FALSE(provider_->catalog()->Get("__nxbind_state").ok());

  // Re-exec by fingerprint with a different binding value: the cached plan
  // runs against the new binding, not a stale one.
  Dataset bound2(MakeTable(s, {{F(32.0)}}));
  ASSERT_OK_AND_ASSIGN(
      Dataset out2,
      provider_->ExecuteWire(BuildWireEnvelope(
          WireEnvelope::Kind::kExecCached, fp,
          {{"__nxbind_state",
            SerializeDatasetWire(bound2, WireFormat::kBinary)}},
          "")));
  EXPECT_TRUE(out2.LogicallyEquals(bound2));
}

TEST_F(PlanCacheTest, FifoEvictionForgetsOldestPlan) {
  // Cache the victim, then flood the cache with kPlanCacheCapacity distinct
  // plans so the victim is evicted; its fingerprint must then miss.
  PlanPtr victim = Plan::Scan("t");
  std::string victim_wire = SerializePlanWire(*victim, WireFormat::kBinary);
  uint64_t victim_fp = FingerprintWire(victim_wire);
  ASSERT_OK(provider_
                ->ExecuteWire(BuildWireEnvelope(WireEnvelope::Kind::kPlanStore,
                                                victim_fp, {}, victim_wire))
                .status());

  for (size_t i = 0; i < Provider::kPlanCacheCapacity; ++i) {
    PlanPtr filler =
        Plan::Limit(Plan::Scan("t"), static_cast<int64_t>(i + 1));
    std::string w = SerializePlanWire(*filler, WireFormat::kBinary);
    ASSERT_OK(provider_
                  ->ExecuteWire(BuildWireEnvelope(
                      WireEnvelope::Kind::kPlanStore, FingerprintWire(w), {},
                      w))
                  .status());
  }

  Result<Dataset> r = provider_->ExecuteWire(BuildWireEnvelope(
      WireEnvelope::Kind::kExecCached, victim_fp, {}, ""));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_NE(r.status().message().find(kPlanCacheMissMarker),
            std::string::npos);
}

TEST(ProviderWireTest, TextOnlyProviderRefusesNothingButAdvertisesText) {
  ProviderPtr legacy = MakeReferenceProvider(/*text_only=*/true);
  EXPECT_FALSE(legacy->AcceptsBinaryWire());
  SchemaPtr s = MakeSchema({Field::Attr("x", DataType::kInt64)});
  ASSERT_OK(legacy->catalog()->Put("t", Dataset(MakeTable(s, {{I(7)}}))));
  // A text plan wire still executes fine.
  std::string wire =
      SerializePlanWire(*Plan::Scan("t"), WireFormat::kText);
  ASSERT_OK_AND_ASSIGN(Dataset d, legacy->ExecuteWire(wire));
  EXPECT_EQ(d.table()->num_rows(), 1);
}

// ---------------------------------------------------------------------------
// Expression program cache across provider executions.
// ---------------------------------------------------------------------------

TEST(ExprProgramCacheTest, SecondExecuteCompilesNothing) {
  ClearProgramCacheForTest();
  ProviderPtr relstore = MakeRelationalProvider();
  SchemaPtr s = MakeSchema({Field::Attr("k", DataType::kInt64),
                            Field::Attr("v", DataType::kFloat64)});
  TableBuilder b(s);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_OK(b.AppendRow({I(i % 100), F(static_cast<double>(i % 7))}));
  }
  ASSERT_OK(relstore->catalog()->Put("t", Dataset(b.Finish().ValueOrDie())));
  PlanPtr plan = Plan::Aggregate(
      Plan::Extend(Plan::Select(Plan::Scan("t"), Gt(Col("k"), Lit(10))),
                   {{"v2", Mul(Col("v"), Col("v"))}}),
      {"k"}, {AggSpec{AggFunc::kSum, Col("v2"), "ss"}});

  auto& reg = telemetry::MetricsRegistry::Global();
  telemetry::Counter* compiles = reg.counter("expr.compile");
  telemetry::Counter* hits = reg.counter("expr.compile_cache_hit");

  const int64_t c0 = compiles->value();
  ASSERT_OK_AND_ASSIGN(Dataset first, relstore->Execute(*plan));
  const int64_t compiled_first = compiles->value() - c0;
  EXPECT_GT(compiled_first, 0);  // cold cache: the pipeline compiled

  const int64_t c1 = compiles->value();
  const int64_t h1 = hits->value();
  ASSERT_OK_AND_ASSIGN(Dataset second, relstore->Execute(*plan));
  EXPECT_EQ(compiles->value() - c1, 0);  // warm cache: nothing recompiled
  EXPECT_GT(hits->value() - h1, 0);
  EXPECT_TRUE(second.table()->Equals(*first.table()));
}

TEST(ExprProgramCacheTest, FusionAndCompileTogglesAreByteIdentical) {
  ClearProgramCacheForTest();
  ProviderPtr relstore = MakeRelationalProvider();
  SchemaPtr s = MakeSchema({Field::Attr("k", DataType::kInt64),
                            Field::Attr("v", DataType::kFloat64)});
  TableBuilder b(s);
  Rng rng(5);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_OK(b.AppendRow({I(rng.NextInt(0, 50)),
                           F(static_cast<double>(rng.NextInt(-9, 9)))}));
  }
  ASSERT_OK(relstore->catalog()->Put("t", Dataset(b.Finish().ValueOrDie())));
  PlanPtr plan = Plan::Project(
      Plan::Extend(Plan::Select(Plan::Scan("t"), Gt(Col("k"), Lit(7))),
                   {{"z", Add(Mul(Col("v"), Lit(2.0)), Col("v"))}}),
      {"z", "k"});

  struct Guard {
    ~Guard() {
      ClearExprCompileOverride();
      ClearPipelineFusionOverride();
    }
  } guard;
  TablePtr want;
  for (bool compile : {true, false}) {
    for (bool fuse : {true, false}) {
      SetExprCompileOverride(compile);
      SetPipelineFusionOverride(fuse);
      ASSERT_OK_AND_ASSIGN(Dataset got, relstore->Execute(*plan));
      if (want == nullptr) {
        want = got.table();
      } else {
        EXPECT_TRUE(got.table()->Equals(*want))
            << "compile=" << compile << " fuse=" << fuse;
      }
    }
  }
}

}  // namespace
}  // namespace nexus
