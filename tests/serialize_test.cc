// Round-trip tests for the s-expression wire format: expressions, datasets,
// and full plans (including nested Iterate bodies and inline Values data).
#include <gtest/gtest.h>

#include "core/serialize.h"
#include "expr/builder.h"
#include "tests/test_util.h"

namespace nexus {
namespace {

using namespace nexus::exprs;  // NOLINT
using testing::F;
using testing::I;
using testing::MakeSchema;
using testing::MakeTable;
using testing::N;
using testing::S;

void ExpectExprRoundTrip(const ExprPtr& e) {
  std::string wire = SerializeExpr(*e);
  ASSERT_OK_AND_ASSIGN(ExprPtr back, ParseExpr(wire));
  EXPECT_TRUE(e->Equals(*back)) << wire << " -> " << back->ToString();
}

TEST(ExprSerializeTest, Literals) {
  ExpectExprRoundTrip(Lit(42));
  ExpectExprRoundTrip(Lit(-7));
  ExpectExprRoundTrip(Lit(2.5));
  ExpectExprRoundTrip(Lit(1e-12));
  ExpectExprRoundTrip(Lit(3.0));  // float that prints like an int
  ExpectExprRoundTrip(Lit(true));
  ExpectExprRoundTrip(Lit(false));
  ExpectExprRoundTrip(NullLit());
  ExpectExprRoundTrip(Lit("hello world"));
  ExpectExprRoundTrip(Lit("quotes \" and \\ and \n"));
  ExpectExprRoundTrip(Lit(""));
}

TEST(ExprSerializeTest, Composites) {
  ExpectExprRoundTrip(Add(Col("a"), Mul(Col("b"), Lit(2))));
  ExpectExprRoundTrip(And(Ge(Col("x"), Lit(1.5)), Not(Col("flag"))));
  ExpectExprRoundTrip(Func("pow", {Col("a"), Lit(2.0)}));
  ExpectExprRoundTrip(Cast(DataType::kString, Col("a")));
  ExpectExprRoundTrip(Neg(Func("coalesce", {Col("a"), Lit(0)})));
  ExpectExprRoundTrip(Mod(Col("k"), Lit(16)));
}

TEST(ExprSerializeTest, FloatPrecisionSurvives) {
  double tricky = 0.1 + 0.2;  // not representable as a short decimal
  ASSERT_OK_AND_ASSIGN(ExprPtr back, ParseExpr(SerializeExpr(*Lit(tricky))));
  EXPECT_EQ(back->literal().AsFloat64(), tricky);
}

TEST(ExprSerializeTest, ParseErrors) {
  EXPECT_FALSE(ParseExpr("(col").ok());
  EXPECT_FALSE(ParseExpr("(bogus 1 2)").ok());
  EXPECT_FALSE(ParseExpr("(col \"a\") trailing").ok());
  EXPECT_FALSE(ParseExpr("(+ (col \"a\"))").ok());  // wrong arity
  EXPECT_FALSE(ParseExpr("(\"unterminated").ok());
  EXPECT_FALSE(ParseExpr("").ok());
}

TEST(DatasetSerializeTest, TableRoundTrip) {
  SchemaPtr s = MakeSchema({Field::Attr("name", DataType::kString),
                            Field::Attr("age", DataType::kInt64),
                            Field::Attr("score", DataType::kFloat64),
                            Field::Attr("ok", DataType::kBool)});
  TablePtr t = MakeTable(s, {{S("ann"), I(31), F(0.5), testing::B(true)},
                             {S("bob"), N(), F(-2.25), testing::B(false)},
                             {S(""), I(0), N(), N()}});
  Dataset d(t);
  ASSERT_OK_AND_ASSIGN(Dataset back, ParseDataset(SerializeDataset(d)));
  EXPECT_TRUE(back.is_table());
  EXPECT_TRUE(back.table()->Equals(*t));
}

TEST(DatasetSerializeTest, ArrayKeepsGeometry) {
  SchemaPtr s = MakeSchema({Field::Dim("i"), Field::Attr("v", DataType::kFloat64)});
  TablePtr t = MakeTable(s, {{I(0), F(1.0)}, {I(7), F(2.0)}});
  ASSERT_OK_AND_ASSIGN(NDArrayPtr arr, Dataset(t).AsArray(4));
  Dataset d(arr);
  ASSERT_OK_AND_ASSIGN(Dataset back, ParseDataset(SerializeDataset(d)));
  ASSERT_TRUE(back.is_array());
  EXPECT_EQ(back.array()->dim(0).chunk_size, 4);
  EXPECT_TRUE(back.array()->Equals(*arr));
}

TEST(DatasetSerializeTest, DimensionTagsSurvive) {
  SchemaPtr s = MakeSchema({Field::Dim("i"), Field::Attr("v", DataType::kInt64)});
  Dataset d(MakeTable(s, {{I(1), I(10)}}));
  ASSERT_OK_AND_ASSIGN(Dataset back, ParseDataset(SerializeDataset(d)));
  EXPECT_TRUE(back.schema()->field(0).is_dimension);
}

PlanPtr SamplePlanValues() {
  SchemaPtr s = MakeSchema({Field::Attr("k", DataType::kInt64),
                            Field::Attr("v", DataType::kFloat64)});
  return Plan::Values(Dataset(MakeTable(s, {{I(1), F(2.0)}, {I(2), F(4.0)}})));
}

void ExpectPlanRoundTrip(const PlanPtr& p) {
  std::string wire = SerializePlan(*p);
  ASSERT_OK_AND_ASSIGN(PlanPtr back, ParsePlan(wire));
  EXPECT_TRUE(p->Equals(*back)) << wire;
  // Serialization is deterministic.
  EXPECT_EQ(SerializePlan(*back), wire);
}

TEST(PlanSerializeTest, RelationalOperators) {
  PlanPtr scan = Plan::Scan("emp");
  ExpectPlanRoundTrip(scan);
  ExpectPlanRoundTrip(SamplePlanValues());
  ExpectPlanRoundTrip(Plan::Select(scan, Gt(Col("age"), Lit(30))));
  ExpectPlanRoundTrip(Plan::Project(scan, {"a", "b"}));
  ExpectPlanRoundTrip(Plan::Extend(scan, {{"x", Add(Col("a"), Lit(1))},
                                          {"y", Mul(Col("a"), Col("a"))}}));
  ExpectPlanRoundTrip(Plan::Join(scan, Plan::Scan("dept"), JoinType::kInner,
                                 {"dept_id"}, {"id"}));
  ExpectPlanRoundTrip(Plan::Join(scan, Plan::Scan("dept"), JoinType::kLeft,
                                 {"dept_id"}, {"id"},
                                 Gt(Col("salary"), Col("budget"))));
  ExpectPlanRoundTrip(Plan::Join(scan, Plan::Scan("dept"), JoinType::kAnti,
                                 {"dept_id"}, {"id"}));
  ExpectPlanRoundTrip(Plan::Aggregate(
      scan, {"dept"},
      {AggSpec{AggFunc::kSum, Col("salary"), "total"},
       AggSpec{AggFunc::kCount, nullptr, "n"},
       AggSpec{AggFunc::kAvg, Add(Col("a"), Col("b")), "mean"}}));
  ExpectPlanRoundTrip(Plan::Sort(scan, {{"a", true}, {"b", false}}));
  ExpectPlanRoundTrip(Plan::Limit(scan, 10, 5));
  ExpectPlanRoundTrip(Plan::Distinct(scan));
  ExpectPlanRoundTrip(Plan::Union(scan, Plan::Scan("emp2")));
  ExpectPlanRoundTrip(Plan::Rename(scan, {{"a", "b"}, {"c", "d"}}));
}

TEST(PlanSerializeTest, ArrayOperators) {
  PlanPtr scan = Plan::Scan("grid");
  ExpectPlanRoundTrip(Plan::Rebox(scan, {"i", "j"}, 32));
  ExpectPlanRoundTrip(Plan::Unbox(scan));
  ExpectPlanRoundTrip(Plan::Slice(scan, {{"i", 0, 10}, {"j", -5, 5}}));
  ExpectPlanRoundTrip(Plan::Shift(scan, {{"i", 3}, {"j", -2}}));
  ExpectPlanRoundTrip(Plan::Regrid(scan, {{"i", 4}, {"j", 4}}, AggFunc::kAvg));
  ExpectPlanRoundTrip(Plan::Transpose(scan, {"j", "i"}));
  ExpectPlanRoundTrip(Plan::Window(scan, {{"i", 1}, {"j", 2}}, AggFunc::kMax));
  ExpectPlanRoundTrip(Plan::ElemWise(scan, Plan::Scan("grid2"), BinaryOp::kMul));
}

TEST(PlanSerializeTest, IntentOperators) {
  ExpectPlanRoundTrip(Plan::MatMul(Plan::Scan("A"), Plan::Scan("B"), "prod"));
  PageRankOp pr;
  pr.src_col = "from";
  pr.dst_col = "to";
  pr.damping = 0.9;
  pr.max_iters = 25;
  pr.epsilon = 1e-6;
  ExpectPlanRoundTrip(Plan::PageRank(Plan::Scan("edges"), pr));
}

TEST(PlanSerializeTest, IterateWithNestedPlans) {
  IterateOp it;
  it.body = Plan::Extend(Plan::LoopVar(), {{"next", Mul(Col("v"), Lit(0.5))}});
  it.measure = Plan::Aggregate(
      Plan::LoopVar(true), {},
      {AggSpec{AggFunc::kSum, Col("v"), "delta"}});
  it.epsilon = 1e-3;
  it.max_iters = 40;
  ExpectPlanRoundTrip(Plan::Iterate(Plan::Scan("state0"), it));

  IterateOp no_measure;
  no_measure.body = Plan::Select(Plan::LoopVar(), Gt(Col("v"), Lit(0)));
  no_measure.max_iters = 3;
  ExpectPlanRoundTrip(Plan::Iterate(Plan::Scan("s"), no_measure));
}

TEST(PlanSerializeTest, Exchange) {
  ExpectPlanRoundTrip(
      Plan::Exchange(Plan::Scan("t"), "arraydb", TransferMode::kDirect));
  ExpectPlanRoundTrip(
      Plan::Exchange(Plan::Scan("t"), "client", TransferMode::kRelay));
}

TEST(PlanSerializeTest, DeepPipeline) {
  PlanPtr p = Plan::Scan("events");
  p = Plan::Select(p, Gt(Col("ts"), Lit(100)));
  p = Plan::Extend(p, {{"bucket", Mod(Col("ts"), Lit(60))}});
  p = Plan::Aggregate(p, {"bucket"}, {AggSpec{AggFunc::kCount, nullptr, "n"}});
  p = Plan::Sort(p, {{"n", false}});
  p = Plan::Limit(p, 10, 0);
  ExpectPlanRoundTrip(p);
  EXPECT_EQ(p->TreeSize(), 6);
}

TEST(PlanSerializeTest, ParseErrors) {
  EXPECT_FALSE(ParsePlan("(scan)").ok());
  EXPECT_FALSE(ParsePlan("(frobnicate (scan \"t\"))").ok());
  EXPECT_FALSE(ParsePlan("(select (scan \"t\"))").ok());  // missing predicate
  EXPECT_FALSE(ParsePlan("(join (scan \"a\") (scan \"b\"))").ok());
  EXPECT_FALSE(ParsePlan("not a sexpr").ok());
}

TEST(PlanSerializeTest, ValuesDataSurvives) {
  PlanPtr p = SamplePlanValues();
  ASSERT_OK_AND_ASSIGN(PlanPtr back, ParsePlan(SerializePlan(*p)));
  const Dataset& d = back->As<ValuesOp>().data;
  EXPECT_EQ(d.num_rows(), 2);
  EXPECT_EQ(d.schema()->field(1).type, DataType::kFloat64);
}

}  // namespace
}  // namespace nexus
