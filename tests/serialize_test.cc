// Round-trip tests for the s-expression wire format: expressions, datasets,
// and full plans (including nested Iterate bodies and inline Values data).
#include <gtest/gtest.h>

#include "common/random.h"
#include "common/str_util.h"
#include "core/serialize.h"
#include "core/wire_format.h"
#include "expr/builder.h"
#include "tests/test_util.h"

namespace nexus {
namespace {

using namespace nexus::exprs;  // NOLINT
using testing::F;
using testing::I;
using testing::MakeSchema;
using testing::MakeTable;
using testing::N;
using testing::S;

void ExpectExprRoundTrip(const ExprPtr& e) {
  std::string wire = SerializeExpr(*e);
  ASSERT_OK_AND_ASSIGN(ExprPtr back, ParseExpr(wire));
  EXPECT_TRUE(e->Equals(*back)) << wire << " -> " << back->ToString();
}

TEST(ExprSerializeTest, Literals) {
  ExpectExprRoundTrip(Lit(42));
  ExpectExprRoundTrip(Lit(-7));
  ExpectExprRoundTrip(Lit(2.5));
  ExpectExprRoundTrip(Lit(1e-12));
  ExpectExprRoundTrip(Lit(3.0));  // float that prints like an int
  ExpectExprRoundTrip(Lit(true));
  ExpectExprRoundTrip(Lit(false));
  ExpectExprRoundTrip(NullLit());
  ExpectExprRoundTrip(Lit("hello world"));
  ExpectExprRoundTrip(Lit("quotes \" and \\ and \n"));
  ExpectExprRoundTrip(Lit(""));
}

TEST(ExprSerializeTest, Composites) {
  ExpectExprRoundTrip(Add(Col("a"), Mul(Col("b"), Lit(2))));
  ExpectExprRoundTrip(And(Ge(Col("x"), Lit(1.5)), Not(Col("flag"))));
  ExpectExprRoundTrip(Func("pow", {Col("a"), Lit(2.0)}));
  ExpectExprRoundTrip(Cast(DataType::kString, Col("a")));
  ExpectExprRoundTrip(Neg(Func("coalesce", {Col("a"), Lit(0)})));
  ExpectExprRoundTrip(Mod(Col("k"), Lit(16)));
}

TEST(ExprSerializeTest, FloatPrecisionSurvives) {
  double tricky = 0.1 + 0.2;  // not representable as a short decimal
  ASSERT_OK_AND_ASSIGN(ExprPtr back, ParseExpr(SerializeExpr(*Lit(tricky))));
  EXPECT_EQ(back->literal().AsFloat64(), tricky);
}

TEST(ExprSerializeTest, ParseErrors) {
  EXPECT_FALSE(ParseExpr("(col").ok());
  EXPECT_FALSE(ParseExpr("(bogus 1 2)").ok());
  EXPECT_FALSE(ParseExpr("(col \"a\") trailing").ok());
  EXPECT_FALSE(ParseExpr("(+ (col \"a\"))").ok());  // wrong arity
  EXPECT_FALSE(ParseExpr("(\"unterminated").ok());
  EXPECT_FALSE(ParseExpr("").ok());
}

TEST(DatasetSerializeTest, TableRoundTrip) {
  SchemaPtr s = MakeSchema({Field::Attr("name", DataType::kString),
                            Field::Attr("age", DataType::kInt64),
                            Field::Attr("score", DataType::kFloat64),
                            Field::Attr("ok", DataType::kBool)});
  TablePtr t = MakeTable(s, {{S("ann"), I(31), F(0.5), testing::B(true)},
                             {S("bob"), N(), F(-2.25), testing::B(false)},
                             {S(""), I(0), N(), N()}});
  Dataset d(t);
  ASSERT_OK_AND_ASSIGN(Dataset back, ParseDataset(SerializeDataset(d)));
  EXPECT_TRUE(back.is_table());
  EXPECT_TRUE(back.table()->Equals(*t));
}

TEST(DatasetSerializeTest, ArrayKeepsGeometry) {
  SchemaPtr s = MakeSchema({Field::Dim("i"), Field::Attr("v", DataType::kFloat64)});
  TablePtr t = MakeTable(s, {{I(0), F(1.0)}, {I(7), F(2.0)}});
  ASSERT_OK_AND_ASSIGN(NDArrayPtr arr, Dataset(t).AsArray(4));
  Dataset d(arr);
  ASSERT_OK_AND_ASSIGN(Dataset back, ParseDataset(SerializeDataset(d)));
  ASSERT_TRUE(back.is_array());
  EXPECT_EQ(back.array()->dim(0).chunk_size, 4);
  EXPECT_TRUE(back.array()->Equals(*arr));
}

TEST(DatasetSerializeTest, DimensionTagsSurvive) {
  SchemaPtr s = MakeSchema({Field::Dim("i"), Field::Attr("v", DataType::kInt64)});
  Dataset d(MakeTable(s, {{I(1), I(10)}}));
  ASSERT_OK_AND_ASSIGN(Dataset back, ParseDataset(SerializeDataset(d)));
  EXPECT_TRUE(back.schema()->field(0).is_dimension);
}

PlanPtr SamplePlanValues() {
  SchemaPtr s = MakeSchema({Field::Attr("k", DataType::kInt64),
                            Field::Attr("v", DataType::kFloat64)});
  return Plan::Values(Dataset(MakeTable(s, {{I(1), F(2.0)}, {I(2), F(4.0)}})));
}

void ExpectPlanRoundTrip(const PlanPtr& p) {
  std::string wire = SerializePlan(*p);
  ASSERT_OK_AND_ASSIGN(PlanPtr back, ParsePlan(wire));
  EXPECT_TRUE(p->Equals(*back)) << wire;
  // Serialization is deterministic.
  EXPECT_EQ(SerializePlan(*back), wire);
}

TEST(PlanSerializeTest, RelationalOperators) {
  PlanPtr scan = Plan::Scan("emp");
  ExpectPlanRoundTrip(scan);
  ExpectPlanRoundTrip(SamplePlanValues());
  ExpectPlanRoundTrip(Plan::Select(scan, Gt(Col("age"), Lit(30))));
  ExpectPlanRoundTrip(Plan::Project(scan, {"a", "b"}));
  ExpectPlanRoundTrip(Plan::Extend(scan, {{"x", Add(Col("a"), Lit(1))},
                                          {"y", Mul(Col("a"), Col("a"))}}));
  ExpectPlanRoundTrip(Plan::Join(scan, Plan::Scan("dept"), JoinType::kInner,
                                 {"dept_id"}, {"id"}));
  ExpectPlanRoundTrip(Plan::Join(scan, Plan::Scan("dept"), JoinType::kLeft,
                                 {"dept_id"}, {"id"},
                                 Gt(Col("salary"), Col("budget"))));
  ExpectPlanRoundTrip(Plan::Join(scan, Plan::Scan("dept"), JoinType::kAnti,
                                 {"dept_id"}, {"id"}));
  ExpectPlanRoundTrip(Plan::Aggregate(
      scan, {"dept"},
      {AggSpec{AggFunc::kSum, Col("salary"), "total"},
       AggSpec{AggFunc::kCount, nullptr, "n"},
       AggSpec{AggFunc::kAvg, Add(Col("a"), Col("b")), "mean"}}));
  ExpectPlanRoundTrip(Plan::Sort(scan, {{"a", true}, {"b", false}}));
  ExpectPlanRoundTrip(Plan::Limit(scan, 10, 5));
  ExpectPlanRoundTrip(Plan::Distinct(scan));
  ExpectPlanRoundTrip(Plan::Union(scan, Plan::Scan("emp2")));
  ExpectPlanRoundTrip(Plan::Rename(scan, {{"a", "b"}, {"c", "d"}}));
}

TEST(PlanSerializeTest, ArrayOperators) {
  PlanPtr scan = Plan::Scan("grid");
  ExpectPlanRoundTrip(Plan::Rebox(scan, {"i", "j"}, 32));
  ExpectPlanRoundTrip(Plan::Unbox(scan));
  ExpectPlanRoundTrip(Plan::Slice(scan, {{"i", 0, 10}, {"j", -5, 5}}));
  ExpectPlanRoundTrip(Plan::Shift(scan, {{"i", 3}, {"j", -2}}));
  ExpectPlanRoundTrip(Plan::Regrid(scan, {{"i", 4}, {"j", 4}}, AggFunc::kAvg));
  ExpectPlanRoundTrip(Plan::Transpose(scan, {"j", "i"}));
  ExpectPlanRoundTrip(Plan::Window(scan, {{"i", 1}, {"j", 2}}, AggFunc::kMax));
  ExpectPlanRoundTrip(Plan::ElemWise(scan, Plan::Scan("grid2"), BinaryOp::kMul));
}

TEST(PlanSerializeTest, IntentOperators) {
  ExpectPlanRoundTrip(Plan::MatMul(Plan::Scan("A"), Plan::Scan("B"), "prod"));
  PageRankOp pr;
  pr.src_col = "from";
  pr.dst_col = "to";
  pr.damping = 0.9;
  pr.max_iters = 25;
  pr.epsilon = 1e-6;
  ExpectPlanRoundTrip(Plan::PageRank(Plan::Scan("edges"), pr));
}

TEST(PlanSerializeTest, IterateWithNestedPlans) {
  IterateOp it;
  it.body = Plan::Extend(Plan::LoopVar(), {{"next", Mul(Col("v"), Lit(0.5))}});
  it.measure = Plan::Aggregate(
      Plan::LoopVar(true), {},
      {AggSpec{AggFunc::kSum, Col("v"), "delta"}});
  it.epsilon = 1e-3;
  it.max_iters = 40;
  ExpectPlanRoundTrip(Plan::Iterate(Plan::Scan("state0"), it));

  IterateOp no_measure;
  no_measure.body = Plan::Select(Plan::LoopVar(), Gt(Col("v"), Lit(0)));
  no_measure.max_iters = 3;
  ExpectPlanRoundTrip(Plan::Iterate(Plan::Scan("s"), no_measure));
}

TEST(PlanSerializeTest, Exchange) {
  ExpectPlanRoundTrip(
      Plan::Exchange(Plan::Scan("t"), "arraydb", TransferMode::kDirect));
  ExpectPlanRoundTrip(
      Plan::Exchange(Plan::Scan("t"), "client", TransferMode::kRelay));
}

TEST(PlanSerializeTest, DeepPipeline) {
  PlanPtr p = Plan::Scan("events");
  p = Plan::Select(p, Gt(Col("ts"), Lit(100)));
  p = Plan::Extend(p, {{"bucket", Mod(Col("ts"), Lit(60))}});
  p = Plan::Aggregate(p, {"bucket"}, {AggSpec{AggFunc::kCount, nullptr, "n"}});
  p = Plan::Sort(p, {{"n", false}});
  p = Plan::Limit(p, 10, 0);
  ExpectPlanRoundTrip(p);
  EXPECT_EQ(p->TreeSize(), 6);
}

TEST(PlanSerializeTest, ParseErrors) {
  EXPECT_FALSE(ParsePlan("(scan)").ok());
  EXPECT_FALSE(ParsePlan("(frobnicate (scan \"t\"))").ok());
  EXPECT_FALSE(ParsePlan("(select (scan \"t\"))").ok());  // missing predicate
  EXPECT_FALSE(ParsePlan("(join (scan \"a\") (scan \"b\"))").ok());
  EXPECT_FALSE(ParsePlan("not a sexpr").ok());
}

TEST(PlanSerializeTest, ValuesDataSurvives) {
  PlanPtr p = SamplePlanValues();
  ASSERT_OK_AND_ASSIGN(PlanPtr back, ParsePlan(SerializePlan(*p)));
  const Dataset& d = back->As<ValuesOp>().data;
  EXPECT_EQ(d.num_rows(), 2);
  EXPECT_EQ(d.schema()->field(1).type, DataType::kFloat64);
}

// ---------------------------------------------------------------------------
// NXB1: the binary columnar wire format.
// ---------------------------------------------------------------------------

void ExpectNxb1RoundTrip(const Dataset& d) {
  std::string wire = SerializeDatasetWire(d, WireFormat::kBinary);
  ASSERT_GE(wire.size(), 4u);
  EXPECT_EQ(wire.substr(0, 4), "NXB1");
  ASSERT_OK_AND_ASSIGN(Dataset back, ParseDatasetWire(wire));
  EXPECT_TRUE(back.LogicallyEquals(d)) << "binary round trip changed values";
  // The binary and textual wires decode to the same logical dataset.
  ASSERT_OK_AND_ASSIGN(Dataset text_back, ParseDataset(SerializeDataset(d)));
  EXPECT_TRUE(back.LogicallyEquals(text_back));
  // Deterministic: equal datasets encode to equal bytes.
  EXPECT_EQ(SerializeDatasetWire(back, WireFormat::kBinary), wire);
}

TEST(Nxb1Test, AllColumnTypesWithNulls) {
  SchemaPtr s = MakeSchema({Field::Attr("name", DataType::kString),
                            Field::Attr("age", DataType::kInt64),
                            Field::Attr("score", DataType::kFloat64),
                            Field::Attr("ok", DataType::kBool)});
  TablePtr t = MakeTable(s, {{S("ann"), I(31), F(0.5), testing::B(true)},
                             {N(), N(), N(), N()},
                             {S(""), I(-9), F(-2.25), testing::B(false)},
                             {S("bob"), I(1L << 40), N(), testing::B(true)}});
  ExpectNxb1RoundTrip(Dataset(t));
  ASSERT_OK_AND_ASSIGN(
      Dataset back,
      ParseDatasetWire(SerializeDatasetWire(Dataset(t), WireFormat::kBinary)));
  const TablePtr& bt = back.table();
  EXPECT_TRUE(bt->column(0).IsNull(1));
  EXPECT_TRUE(bt->column(2).IsNull(3));
  EXPECT_FALSE(bt->column(0).IsNull(2));
}

TEST(Nxb1Test, EmptyTable) {
  SchemaPtr s = MakeSchema({Field::Attr("a", DataType::kInt64),
                            Field::Attr("b", DataType::kString)});
  ExpectNxb1RoundTrip(Dataset(MakeTable(s, {})));
}

TEST(Nxb1Test, NonAsciiAndHostileStrings) {
  SchemaPtr s = MakeSchema({Field::Attr("txt", DataType::kString)});
  std::string nul("with\0nul", 8);
  TablePtr t = MakeTable(
      s, {{S("héllo wörld")}, {S("日本語テキスト")}, {S(nul)},
          {S("quote\" paren) hash# newline\n")}, {S("#7:decoy")}, {S("")}});
  ExpectNxb1RoundTrip(Dataset(t));
  ASSERT_OK_AND_ASSIGN(
      Dataset back,
      ParseDatasetWire(SerializeDatasetWire(Dataset(t), WireFormat::kBinary)));
  EXPECT_EQ(back.table()->column(0).strings()[2], nul);
}

TEST(Nxb1Test, ArrayChunkGeometrySurvives) {
  SchemaPtr s = MakeSchema({Field::Dim("i"), Field::Attr("v", DataType::kFloat64)});
  TablePtr t = MakeTable(s, {{I(0), F(1.0)}, {I(7), F(2.0)}, {I(9), F(3.0)}});
  ASSERT_OK_AND_ASSIGN(NDArrayPtr arr, Dataset(t).AsArray(4));
  Dataset d(arr);
  ExpectNxb1RoundTrip(d);
  ASSERT_OK_AND_ASSIGN(
      Dataset back, ParseDatasetWire(SerializeDatasetWire(d, WireFormat::kBinary)));
  ASSERT_TRUE(back.is_array());
  EXPECT_EQ(back.array()->dim(0).chunk_size, 4);
  EXPECT_TRUE(back.array()->Equals(*arr));
}

TEST(Nxb1Test, EncodingFriendlyShapesRoundTripAndShrink) {
  // Sorted timestamps (frame-of-reference), a near-constant column (RLE),
  // and low-cardinality strings (dictionary): the shapes the block encoders
  // exist for. The encoded wire must beat the text form handily.
  SchemaPtr s = MakeSchema({Field::Attr("ts", DataType::kInt64),
                            Field::Attr("level", DataType::kInt64),
                            Field::Attr("host", DataType::kString),
                            Field::Attr("lat", DataType::kFloat64)});
  TableBuilder tb(s);
  Rng rng(99);
  int64_t ts = 1700000000000;
  for (int i = 0; i < 2000; ++i) {
    ts += rng.NextInt(1, 40);
    ASSERT_OK(tb.AppendRow({I(ts), I(i % 97 == 0 ? 2 : 0),
                            S(StrCat("host-", rng.NextInt(0, 7))),
                            F(rng.NextDouble(0.0, 1.0))}));
  }
  Dataset d(tb.Finish().ValueOrDie());
  ExpectNxb1RoundTrip(d);
  std::string binary = SerializeDatasetWire(d, WireFormat::kBinary);
  std::string text = SerializeDatasetWire(d, WireFormat::kText);
  // The raw float64 column bounds the ratio here (random doubles do not
  // compress); the E13 bench measures the full ≥5x claim on realistic logs.
  EXPECT_LT(binary.size() * 4, text.size())
      << "binary " << binary.size() << " vs text " << text.size();
}

TEST(Nxb1Test, SeededPropertyRoundTrip) {
  Rng rng(4242);
  for (int round = 0; round < 25; ++round) {
    SchemaPtr s = MakeSchema({Field::Attr("i", DataType::kInt64),
                              Field::Attr("f", DataType::kFloat64),
                              Field::Attr("s", DataType::kString),
                              Field::Attr("b", DataType::kBool)});
    TableBuilder tb(s);
    int rows = static_cast<int>(rng.NextInt(0, 120));
    double null_p = rng.NextDouble(0.0, 0.4);
    for (int r = 0; r < rows; ++r) {
      Value iv = rng.NextBool(null_p) ? N() : I(rng.NextInt(-1000000, 1000000));
      Value fv = rng.NextBool(null_p) ? N() : F(rng.NextDouble(-50, 50));
      Value sv = rng.NextBool(null_p)
                     ? N()
                     : S(StrCat("s", rng.NextInt(0, rng.NextBool(0.5) ? 3 : 500)));
      Value bv = rng.NextBool(null_p) ? N() : testing::B(rng.NextBool(0.5));
      ASSERT_OK(tb.AppendRow({iv, fv, sv, bv}));
    }
    ExpectNxb1RoundTrip(Dataset(tb.Finish().ValueOrDie()));
  }
}

TEST(Nxb1Test, EveryTruncationIsRejected) {
  SchemaPtr s = MakeSchema({Field::Attr("a", DataType::kInt64),
                            Field::Attr("t", DataType::kString)});
  TablePtr t = MakeTable(s, {{I(5), S("abc")}, {N(), S("defgh")}, {I(7), N()}});
  std::string wire = SerializeDatasetWire(Dataset(t), WireFormat::kBinary);
  for (size_t n = 0; n < wire.size(); ++n) {
    EXPECT_FALSE(ParseDatasetWire(std::string_view(wire).substr(0, n)).ok())
        << "prefix of " << n << " bytes parsed";
  }
  // Trailing garbage is rejected too — a frame is exactly its payload.
  EXPECT_FALSE(ParseDatasetWire(wire + "x").ok());
}

TEST(Nxb1Test, CorruptBytesNeverCrash) {
  SchemaPtr s = MakeSchema({Field::Attr("a", DataType::kInt64),
                            Field::Attr("t", DataType::kString)});
  TablePtr t = MakeTable(s, {{I(5), S("abcabcabc")}, {I(6), S("abcabcabc")}});
  std::string wire = SerializeDatasetWire(Dataset(t), WireFormat::kBinary);
  int rejected = 0;
  for (size_t pos = 0; pos < wire.size(); ++pos) {
    for (unsigned char flip : {0x01, 0x80, 0xFF}) {
      std::string bad = wire;
      bad[pos] = static_cast<char>(bad[pos] ^ flip);
      if (!ParseDatasetWire(bad).ok()) ++rejected;  // must not crash
    }
  }
  EXPECT_GT(rejected, 0);
  // Corrupting the magic always fails cleanly (falls through to the text
  // parser, which chokes on the binary tail).
  std::string bad_magic = wire;
  bad_magic[0] = 'X';
  EXPECT_FALSE(ParseDatasetWire(bad_magic).ok());
}

TEST(Nxb1Test, BinaryPlanWireRoundTrip) {
  SchemaPtr s = MakeSchema({Field::Attr("k", DataType::kInt64),
                            Field::Attr("v", DataType::kFloat64)});
  PlanPtr p = Plan::Select(
      Plan::Join(Plan::Scan("orders"),
                 Plan::Values(Dataset(MakeTable(s, {{I(1), F(2.0)},
                                                    {N(), F(-0.5)}}))),
                 JoinType::kInner, {"k"}, {"k"}),
      Gt(Col("v"), Lit(0.0)));
  std::string binary = SerializePlanWire(*p, WireFormat::kBinary);
  std::string text = SerializePlanWire(*p, WireFormat::kText);
  EXPECT_NE(binary, text);  // the Values payload rides as an NXB1 blob
  ASSERT_OK_AND_ASSIGN(PlanPtr from_binary, ParsePlan(binary));
  ASSERT_OK_AND_ASSIGN(PlanPtr from_text, ParsePlan(text));
  EXPECT_TRUE(from_binary->Equals(*p));
  EXPECT_TRUE(from_binary->Equals(*from_text));
}

TEST(Nxb1Test, FingerprintsAreStableAndDistinct) {
  PlanPtr p1 = Plan::Select(Plan::Scan("t"), Gt(Col("v"), Lit(1.0)));
  PlanPtr p2 = Plan::Select(Plan::Scan("t"), Gt(Col("v"), Lit(2.0)));
  std::string w1 = SerializePlanWire(*p1, WireFormat::kBinary);
  std::string w2 = SerializePlanWire(*p2, WireFormat::kBinary);
  EXPECT_NE(FingerprintWire(w1), 0u);  // 0 is reserved for "none"
  EXPECT_EQ(FingerprintWire(w1), FingerprintWire(w1));
  EXPECT_EQ(FingerprintWire(w1),
            FingerprintWire(SerializePlanWire(*p1, WireFormat::kBinary)));
  EXPECT_NE(FingerprintWire(w1), FingerprintWire(w2));
}

TEST(Nxb1Test, WireEnvelopeRoundTrip) {
  std::string plan_wire = "(scan \"t\")";
  std::string b1 = "NXB1-payload-one";
  std::string b2;  // empty payloads are legal
  std::string env = BuildWireEnvelope(WireEnvelope::Kind::kPlanStore, 77,
                                      {{"__nxbind_0_curr", b1},
                                       {"__nxbind_0_prev", b2}},
                                      plan_wire);
  ASSERT_OK_AND_ASSIGN(WireEnvelope e, ParseWireEnvelope(env));
  EXPECT_EQ(e.kind, WireEnvelope::Kind::kPlanStore);
  EXPECT_EQ(e.fingerprint, 77u);
  ASSERT_EQ(e.bindings.size(), 2u);
  EXPECT_EQ(e.bindings[0].first, "__nxbind_0_curr");
  EXPECT_EQ(e.bindings[0].second, b1);
  EXPECT_EQ(e.bindings[1].second, b2);
  EXPECT_EQ(e.plan_wire, plan_wire);

  std::string exec =
      BuildWireEnvelope(WireEnvelope::Kind::kExecCached, 77, {}, "");
  ASSERT_OK_AND_ASSIGN(WireEnvelope x, ParseWireEnvelope(exec));
  EXPECT_EQ(x.kind, WireEnvelope::Kind::kExecCached);
  EXPECT_TRUE(x.bindings.empty());
  // An exec reference is exactly its envelope: trailing bytes are an error.
  EXPECT_FALSE(ParseWireEnvelope(exec + "junk").ok());

  // A bare plan passes through untouched.
  ASSERT_OK_AND_ASSIGN(WireEnvelope bare, ParseWireEnvelope(plan_wire));
  EXPECT_EQ(bare.kind, WireEnvelope::Kind::kNone);
  EXPECT_EQ(bare.plan_wire, plan_wire);
}

}  // namespace
}  // namespace nexus
