// Edge-case suite: empty inputs, single rows, extreme values, and failure
// propagation through every layer. These paths are where production systems
// break first.
#include <gtest/gtest.h>

#include "core/schema_inference.h"
#include "exec/reference_executor.h"
#include "expr/builder.h"
#include "federation/coordinator.h"
#include "relational/engine.h"
#include "tests/test_util.h"

namespace nexus {
namespace {

using namespace nexus::exprs;  // NOLINT
using testing::F;
using testing::I;
using testing::MakeSchema;
using testing::MakeTable;
using testing::N;
using testing::S;

class EmptyInputTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SchemaPtr rel = MakeSchema({Field::Attr("k", DataType::kInt64),
                                Field::Attr("v", DataType::kFloat64)});
    ASSERT_OK(catalog_.Put("empty", Dataset(Table::Empty(rel))));
    ASSERT_OK(catalog_.Put("one", Dataset(MakeTable(rel, {{I(1), F(2.0)}}))));
    SchemaPtr grid = MakeSchema({Field::Dim("x"), Field::Attr("v", DataType::kFloat64)});
    ASSERT_OK(catalog_.Put("empty_grid", Dataset(Table::Empty(grid))));
  }

  TablePtr Run(const PlanPtr& p) {
    ReferenceExecutor exec(&catalog_);
    auto r = exec.Execute(*p);
    EXPECT_TRUE(r.ok()) << r.status() << "\n" << p->ToString();
    auto t = r.ValueOrDie().AsTable();
    EXPECT_OK(t.status());
    return t.ValueOrDie();
  }

  InMemoryCatalog catalog_;
};

TEST_F(EmptyInputTest, RelationalOperatorsOnEmptyTables) {
  PlanPtr e = Plan::Scan("empty");
  EXPECT_EQ(Run(Plan::Select(e, Gt(Col("v"), Lit(0.0))))->num_rows(), 0);
  EXPECT_EQ(Run(Plan::Project(e, {"v"}))->num_rows(), 0);
  EXPECT_EQ(Run(Plan::Extend(e, {{"w", Add(Col("v"), Lit(1.0))}}))->num_rows(), 0);
  EXPECT_EQ(Run(Plan::Sort(e, {{"v", true}}))->num_rows(), 0);
  EXPECT_EQ(Run(Plan::Distinct(e))->num_rows(), 0);
  EXPECT_EQ(Run(Plan::Limit(e, 10, 0))->num_rows(), 0);
  EXPECT_EQ(Run(Plan::Union(e, e))->num_rows(), 0);
  // Joins with an empty side.
  EXPECT_EQ(Run(Plan::Join(e, Plan::Rename(Plan::Scan("one"), {{"v", "rv"}}),
                           JoinType::kInner, {"k"}, {"k"}))
                ->num_rows(),
            0);
  EXPECT_EQ(Run(Plan::Join(Plan::Scan("one"),
                           Plan::Rename(e, {{"k", "k2"}, {"v", "v2"}}),
                           JoinType::kLeft, {"k"}, {"k2"}))->num_rows(), 1);
  EXPECT_EQ(Run(Plan::Join(Plan::Scan("one"),
                           Plan::Rename(e, {{"k", "k2"}, {"v", "v2"}}),
                           JoinType::kAnti, {"k"}, {"k2"}))->num_rows(), 1);
}

TEST_F(EmptyInputTest, GlobalAggregateOverEmptyYieldsOneRow) {
  TablePtr t = Run(Plan::Aggregate(Plan::Scan("empty"), {},
                                   {AggSpec{AggFunc::kCount, nullptr, "n"},
                                    AggSpec{AggFunc::kSum, Col("v"), "s"},
                                    AggSpec{AggFunc::kMin, Col("v"), "lo"}}));
  ASSERT_EQ(t->num_rows(), 1);
  EXPECT_EQ(t->At(0, 0), I(0));
  EXPECT_TRUE(t->At(0, 1).is_null());
  EXPECT_TRUE(t->At(0, 2).is_null());
  // Grouped aggregate over empty stays empty.
  EXPECT_EQ(Run(Plan::Aggregate(Plan::Scan("empty"), {"k"},
                                {AggSpec{AggFunc::kCount, nullptr, "n"}}))
                ->num_rows(),
            0);
  // The vectorized engine agrees.
  AggregateOp spec;
  spec.aggs = {AggSpec{AggFunc::kCount, nullptr, "n"},
               AggSpec{AggFunc::kSum, Col("v"), "s"}};
  ASSERT_OK_AND_ASSIGN(
      TablePtr vt, relational::HashAggregate(Table::Empty(MakeSchema(
                                                 {Field::Attr("k", DataType::kInt64),
                                                  Field::Attr("v", DataType::kFloat64)})),
                                             spec));
  ASSERT_EQ(vt->num_rows(), 1);
  EXPECT_EQ(vt->At(0, 0), I(0));
  EXPECT_TRUE(vt->At(0, 1).is_null());
}

TEST_F(EmptyInputTest, ArrayOperatorsOnEmptyDimensionedTables) {
  PlanPtr g = Plan::Scan("empty_grid");
  EXPECT_EQ(Run(Plan::Slice(g, {{"x", 0, 10}}))->num_rows(), 0);
  EXPECT_EQ(Run(Plan::Shift(g, {{"x", 5}}))->num_rows(), 0);
  EXPECT_EQ(Run(Plan::Regrid(g, {{"x", 2}}, AggFunc::kSum))->num_rows(), 0);
  EXPECT_EQ(Run(Plan::Window(g, {{"x", 1}}, AggFunc::kAvg))->num_rows(), 0);
  EXPECT_EQ(Run(Plan::Transpose(g, {"x"}))->num_rows(), 0);
  EXPECT_EQ(Run(Plan::Unbox(g))->num_rows(), 0);
}

TEST_F(EmptyInputTest, MatMulWithEmptySide) {
  SchemaPtr ms = MakeSchema({Field::Dim("i"), Field::Dim("k"),
                             Field::Attr("v", DataType::kFloat64)});
  ASSERT_OK(catalog_.Put("me", Dataset(Table::Empty(ms))));
  SchemaPtr ms2 = MakeSchema({Field::Dim("k"), Field::Dim("j"),
                              Field::Attr("w", DataType::kFloat64)});
  ASSERT_OK(catalog_.Put("mfull", Dataset(MakeTable(
                                      ms2, {{I(0), I(0), F(1.0)}}))));
  EXPECT_EQ(Run(Plan::MatMul(Plan::Scan("me"), Plan::Scan("mfull")))->num_rows(), 0);
}

TEST_F(EmptyInputTest, IterateOverEmptyState) {
  IterateOp op;
  op.body = Plan::Select(Plan::LoopVar(), Gt(Col("v"), Lit(0.0)));
  op.max_iters = 3;
  EXPECT_EQ(Run(Plan::Iterate(Plan::Scan("empty"), op))->num_rows(), 0);
}

TEST_F(EmptyInputTest, PageRankOnEmptyEdgeTable) {
  SchemaPtr es = MakeSchema({Field::Attr("src", DataType::kInt64),
                             Field::Attr("dst", DataType::kInt64)});
  ASSERT_OK(catalog_.Put("no_edges", Dataset(Table::Empty(es))));
  PageRankOp op;
  EXPECT_EQ(Run(Plan::PageRank(Plan::Scan("no_edges"), op))->num_rows(), 0);
}

TEST(ExtremeValueTest, Int64BoundarySurvivesPipeline) {
  InMemoryCatalog catalog;
  SchemaPtr s =
      Schema::Make({Field::Attr("x", DataType::kInt64)}).ValueOrDie();
  int64_t lo = std::numeric_limits<int64_t>::min() + 1;
  int64_t hi = std::numeric_limits<int64_t>::max();
  TableBuilder b(s);
  ASSERT_OK(b.AppendRow({I(lo)}));
  ASSERT_OK(b.AppendRow({I(hi)}));
  ASSERT_OK(b.AppendRow({I(0)}));
  ASSERT_OK(catalog.Put("t", Dataset(b.Finish().ValueOrDie())));
  ReferenceExecutor exec(&catalog);
  // min/max/sort keep the exact extremes.
  ASSERT_OK_AND_ASSIGN(
      Dataset d, exec.Execute(*Plan::Aggregate(
                     Plan::Scan("t"), {},
                     {AggSpec{AggFunc::kMin, Col("x"), "lo"},
                      AggSpec{AggFunc::kMax, Col("x"), "hi"}})));
  ASSERT_OK_AND_ASSIGN(TablePtr t, d.AsTable());
  EXPECT_EQ(t->At(0, 0), I(lo));
  EXPECT_EQ(t->At(0, 1), I(hi));
  ASSERT_OK_AND_ASSIGN(Dataset sorted,
                       exec.Execute(*Plan::Sort(Plan::Scan("t"), {{"x", true}})));
  ASSERT_OK_AND_ASSIGN(TablePtr st, sorted.AsTable());
  EXPECT_EQ(st->At(0, 0), I(lo));
  EXPECT_EQ(st->At(2, 0), I(hi));
}

TEST(FailurePropagationTest, ServerErrorsSurfaceWithContext) {
  Cluster cluster;
  ASSERT_OK(cluster.AddServer("relstore", MakeRelationalProvider()));
  Coordinator coord(&cluster);
  // Type error deep in a plan: surfaces as a Status, no crash, no temps.
  SchemaPtr s = testing::MakeSchema({Field::Attr("a", DataType::kString)});
  ASSERT_OK(cluster.PutData("relstore", "t",
                            Dataset(testing::MakeTable(s, {{S("x")}}))));
  auto r = coord.Execute(Plan::Select(Plan::Scan("t"), Gt(Col("a"), Lit(1))));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTypeError()) << r.status();
  for (const std::string& name : cluster.provider("relstore")->catalog()->Names()) {
    EXPECT_EQ(name.find("__frag_"), std::string::npos);
  }
}

TEST(FailurePropagationTest, MeasurelessIterateWithZeroIterationsRejected) {
  InMemoryCatalog catalog;
  SchemaPtr s = Schema::Make({Field::Attr("v", DataType::kFloat64)}).ValueOrDie();
  ASSERT_OK(catalog.Put("st", Dataset(Table::Empty(s))));
  IterateOp op;
  op.body = Plan::LoopVar();
  op.max_iters = 0;
  InferContext ctx;
  ctx.catalog = &catalog;
  EXPECT_FALSE(InferSchema(*Plan::Iterate(Plan::Scan("st"), op), &ctx).ok());
}

TEST(SingleRowTest, WindowAndRegridOnLoneCell) {
  InMemoryCatalog catalog;
  SchemaPtr s = Schema::Make({Field::Dim("x"), Field::Dim("y"),
                              Field::Attr("v", DataType::kFloat64)})
                    .ValueOrDie();
  TableBuilder b(s);
  ASSERT_OK(b.AppendRow({I(5), I(-3), F(42.0)}));
  ASSERT_OK(catalog.Put("cell", Dataset(b.Finish().ValueOrDie())));
  ReferenceExecutor exec(&catalog);
  ASSERT_OK_AND_ASSIGN(
      Dataset w, exec.Execute(*Plan::Window(Plan::Scan("cell"),
                                            {{"x", 2}, {"y", 2}}, AggFunc::kAvg)));
  ASSERT_OK_AND_ASSIGN(TablePtr wt, w.AsTable());
  ASSERT_EQ(wt->num_rows(), 1);
  EXPECT_EQ(wt->At(0, 2), F(42.0));
  ASSERT_OK_AND_ASSIGN(
      Dataset g, exec.Execute(*Plan::Regrid(Plan::Scan("cell"),
                                            {{"x", 10}, {"y", 10}}, AggFunc::kCount)));
  ASSERT_OK_AND_ASSIGN(TablePtr gt, g.AsTable());
  ASSERT_EQ(gt->num_rows(), 1);
  EXPECT_EQ(gt->At(0, 0), I(0));   // floor(5/10)
  EXPECT_EQ(gt->At(0, 1), I(-1));  // floor(-3/10)
}

}  // namespace
}  // namespace nexus
