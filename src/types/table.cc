#include "types/table.h"

#include <algorithm>
#include <map>

#include "common/memory.h"
#include "common/str_util.h"

namespace nexus {

Result<TablePtr> Table::Make(SchemaPtr schema, std::vector<Column> columns) {
  if (schema == nullptr) return Status::InvalidArgument("Table::Make: null schema");
  if (static_cast<int>(columns.size()) != schema->num_fields()) {
    return Status::InvalidArgument(
        StrCat("Table::Make: ", columns.size(), " columns for schema ",
               schema->ToString()));
  }
  int64_t rows = columns.empty() ? 0 : columns[0].size();
  for (int i = 0; i < schema->num_fields(); ++i) {
    const Column& c = columns[static_cast<size_t>(i)];
    if (c.type() != schema->field(i).type) {
      return Status::TypeError(
          StrCat("Table::Make: column ", i, " has type ", DataTypeName(c.type()),
                 ", schema expects ", DataTypeName(schema->field(i).type)));
    }
    if (c.size() != rows) {
      return Status::InvalidArgument(
          StrCat("Table::Make: column ", i, " length ", c.size(),
                 " != ", rows));
    }
  }
  TablePtr table(new Table(std::move(schema), std::move(columns), rows));
  // Metering hook: only a metered thread (service-managed query) pays for
  // the ByteSize walk, which is O(rows) for string columns.
  if (CurrentMemoryMeter() != nullptr) ChargeAllocation(table->ByteSize());
  return table;
}

TablePtr Table::Empty(SchemaPtr schema) {
  std::vector<Column> cols;
  cols.reserve(static_cast<size_t>(schema->num_fields()));
  for (const Field& f : schema->fields()) cols.emplace_back(f.type);
  return TablePtr(new Table(std::move(schema), std::move(cols), 0));
}

Result<const Column*> Table::ColumnByName(const std::string& name) const {
  NEXUS_ASSIGN_OR_RETURN(int i, schema_->FindFieldOrError(name));
  return &columns_[static_cast<size_t>(i)];
}

std::vector<Value> Table::Row(int64_t row) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const Column& c : columns_) out.push_back(c.GetValue(row));
  return out;
}

TablePtr Table::Slice(int64_t offset, int64_t length) const {
  offset = std::clamp<int64_t>(offset, 0, num_rows_);
  length = std::clamp<int64_t>(length, 0, num_rows_ - offset);
  std::vector<Column> cols;
  cols.reserve(columns_.size());
  for (const Column& c : columns_) cols.push_back(c.Slice(offset, length));
  return TablePtr(new Table(schema_, std::move(cols), length));
}

TablePtr Table::TakeRows(const std::vector<int64_t>& indices) const {
  std::vector<Column> cols;
  cols.reserve(columns_.size());
  for (const Column& c : columns_) cols.push_back(c.Take(indices));
  return TablePtr(
      new Table(schema_, std::move(cols), static_cast<int64_t>(indices.size())));
}

int64_t Table::ByteSize() const {
  int64_t bytes = 0;
  for (const Column& c : columns_) bytes += c.ByteSize();
  return bytes;
}

bool Table::Equals(const Table& other) const {
  if (!schema_->Equals(*other.schema_) || num_rows_ != other.num_rows_) {
    return false;
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (!columns_[i].Equals(other.columns_[i])) return false;
  }
  return true;
}

namespace {
std::string RowKey(const Table& t, int64_t row) {
  std::string key;
  for (int c = 0; c < t.num_columns(); ++c) {
    key += t.At(row, c).ToString();
    key += '\x1f';
  }
  return key;
}
}  // namespace

bool Table::EqualsUnordered(const Table& other) const {
  if (!schema_->Equals(*other.schema_) || num_rows_ != other.num_rows_) {
    return false;
  }
  std::map<std::string, int64_t> counts;
  for (int64_t r = 0; r < num_rows_; ++r) counts[RowKey(*this, r)]++;
  for (int64_t r = 0; r < num_rows_; ++r) {
    auto it = counts.find(RowKey(other, r));
    if (it == counts.end() || it->second == 0) return false;
    --it->second;
  }
  return true;
}

std::string Table::ToString(int64_t max_rows) const {
  std::string out = schema_->ToString();
  out += StrCat("  [", num_rows_, " rows]\n");
  int64_t shown = std::min(max_rows, num_rows_);
  for (int64_t r = 0; r < shown; ++r) {
    std::vector<std::string> cells;
    cells.reserve(columns_.size());
    for (const Column& c : columns_) cells.push_back(c.GetValue(r).ToString());
    out += "  ";
    out += Join(cells, " | ");
    out += "\n";
  }
  if (shown < num_rows_) out += StrCat("  ... ", num_rows_ - shown, " more\n");
  return out;
}

TableBuilder::TableBuilder(SchemaPtr schema) : schema_(std::move(schema)) {
  columns_.reserve(static_cast<size_t>(schema_->num_fields()));
  for (const Field& f : schema_->fields()) columns_.emplace_back(f.type);
}

Status TableBuilder::AppendRow(const std::vector<Value>& values) {
  if (static_cast<int>(values.size()) != schema_->num_fields()) {
    return Status::InvalidArgument(
        StrCat("AppendRow: ", values.size(), " values for ",
               schema_->num_fields(), " fields"));
  }
  // Validate the whole row first so a mid-row type error cannot leave the
  // builder with ragged columns.
  for (size_t i = 0; i < values.size(); ++i) {
    const Value& v = values[i];
    if (v.is_null()) continue;
    DataType want = schema_->field(static_cast<int>(i)).type;
    bool ok = v.type() == want ||
              (want == DataType::kFloat64 && v.is_numeric());
    if (!ok) {
      return Status::TypeError(
          StrCat("AppendRow: field ", schema_->field(static_cast<int>(i)).name,
                 " expects ", DataTypeName(want), ", got ", v.ToString()));
    }
  }
  for (size_t i = 0; i < values.size(); ++i) {
    NEXUS_RETURN_NOT_OK(columns_[i].Append(values[i]));
  }
  return Status::OK();
}

void TableBuilder::Reserve(int64_t n) {
  for (Column& c : columns_) c.Reserve(n);
}

Result<TablePtr> TableBuilder::Finish() {
  std::vector<Column> cols;
  cols.swap(columns_);
  for (const Field& f : schema_->fields()) columns_.emplace_back(f.type);
  return Table::Make(schema_, std::move(cols));
}

}  // namespace nexus
