#include "types/dataset.h"

namespace nexus {

SchemaPtr Dataset::schema() const {
  if (is_table()) return table()->schema();
  return array()->CombinedSchema();
}

int64_t Dataset::num_rows() const {
  if (is_table()) return table()->num_rows();
  return array()->NumCellsOccupied();
}

Result<TablePtr> Dataset::AsTable() const {
  if (is_table()) return table();
  return array()->ToTable();
}

Result<NDArrayPtr> Dataset::AsArray(int64_t chunk_size) const {
  if (is_array()) return array();
  const TablePtr& t = table();
  std::vector<std::string> dim_names;
  for (int i : t->schema()->DimensionIndices()) {
    dim_names.push_back(t->schema()->field(i).name);
  }
  if (dim_names.empty()) {
    return Status::InvalidArgument(
        "AsArray: schema tags no dimensions; use Rebox to assign them");
  }
  std::vector<int64_t> chunks(dim_names.size(), chunk_size);
  NEXUS_ASSIGN_OR_RETURN(std::shared_ptr<NDArray> arr,
                         NDArray::FromTable(*t, dim_names, chunks));
  return NDArrayPtr(std::move(arr));
}

int64_t Dataset::ByteSize() const {
  return is_table() ? table()->ByteSize() : array()->ByteSize();
}

bool Dataset::LogicallyEquals(const Dataset& other) const {
  auto mine = AsTable();
  auto theirs = other.AsTable();
  if (!mine.ok() || !theirs.ok()) return false;
  // Compare without dimension tags: representation must not affect value
  // identity, and ToTable() re-tags dimensions while plain tables may not.
  auto a = mine.ValueOrDie();
  auto b = theirs.ValueOrDie();
  auto untagged = [](const TablePtr& t) {
    return Table::Make(t->schema()->WithoutDimensions(), t->columns()).ValueOrDie();
  };
  return untagged(a)->EqualsUnordered(*untagged(b));
}

std::string Dataset::ToString() const {
  return is_table() ? table()->ToString() : array()->ToString();
}

}  // namespace nexus
