// Value: a dynamically typed scalar (possibly null) used at API boundaries,
// in literals, and in row-at-a-time evaluation. Bulk execution paths use
// typed Column buffers instead (column.h).
#ifndef NEXUS_TYPES_VALUE_H_
#define NEXUS_TYPES_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>

#include "common/hash.h"
#include "types/datatype.h"

namespace nexus {

/// A null-able scalar of one of the DataType kinds.
///
/// Ordering: SQL-unlike but convenient for deterministic sorts — null sorts
/// first, then by type lattice, then by value; int64/float64 compare
/// numerically across kinds.
class Value {
 public:
  /// Null value.
  Value() : repr_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Repr(v)); }
  static Value Int64(int64_t v) { return Value(Repr(v)); }
  static Value Float64(double v) { return Value(Repr(v)); }
  static Value String(std::string v) { return Value(Repr(std::move(v))); }

  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }
  bool is_bool() const { return std::holds_alternative<bool>(repr_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_float64() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }
  bool is_numeric() const { return is_int64() || is_float64(); }

  /// The DataType of a non-null value. Precondition: !is_null().
  DataType type() const;

  bool AsBool() const { return std::get<bool>(repr_); }
  int64_t AsInt64() const { return std::get<int64_t>(repr_); }
  double AsFloat64() const { return std::get<double>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }

  /// Numeric value widened to double. Precondition: is_numeric().
  double AsDouble() const {
    return is_int64() ? static_cast<double>(AsInt64()) : AsFloat64();
  }

  /// Lossless-where-possible coercion to the target type. Errors on
  /// incompatible kinds (e.g. string → int64 is parsed, "abc" fails).
  Result<Value> CastTo(DataType target) const;

  /// Total order described in the class comment. Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Hash consistent with operator== (numeric kinds hash by double value).
  uint64_t Hash() const;

  /// Render for display and for the s-expression wire format
  /// ("null", "true", "42", "1.5", "\"abc\"").
  std::string ToString() const;

 private:
  using Repr = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Repr r) : repr_(std::move(r)) {}
  Repr repr_;
};

inline std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace nexus

#endif  // NEXUS_TYPES_VALUE_H_
