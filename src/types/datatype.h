// Scalar type system of the Big Data Algebra.
//
// The algebra fuses tabular and array models (Maier, CIDR'15): a collection
// is a table whose schema may tag attributes as *dimensions*. Cell values are
// drawn from the small scalar lattice below.
#ifndef NEXUS_TYPES_DATATYPE_H_
#define NEXUS_TYPES_DATATYPE_H_

#include <string>

#include "common/result.h"

namespace nexus {

/// Scalar types storable in table columns and array cells.
enum class DataType : int {
  kBool = 0,
  kInt64 = 1,
  kFloat64 = 2,
  kString = 3,
};

/// Canonical lowercase name ("int64", "float64", ...).
const char* DataTypeName(DataType type);

/// Parses a name produced by DataTypeName.
Result<DataType> DataTypeFromName(const std::string& name);

inline bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kFloat64;
}

/// Numeric promotion: int64 ∨ float64 = float64. Errors when no common
/// supertype exists (e.g. string ∨ int64).
Result<DataType> CommonNumericType(DataType a, DataType b);

/// Width in bytes used for transfer-cost accounting. Strings are charged
/// per-value at their actual length plus this fixed overhead.
int FixedWidth(DataType t);

}  // namespace nexus

#endif  // NEXUS_TYPES_DATATYPE_H_
