// Table: the client-side collection type of the framework. Columnar,
// immutable once built; schemas may tag fields as dimensions (see schema.h).
//
// Per the paper's LINQ property, "the result of a query is a collection in
// the client environment" — Table is that collection.
#ifndef NEXUS_TYPES_TABLE_H_
#define NEXUS_TYPES_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/column.h"
#include "types/schema.h"

namespace nexus {

class Table;
using TablePtr = std::shared_ptr<const Table>;

/// Columnar table: one Column per schema field, all equal length.
class Table {
 public:
  /// Validates column count/types/lengths against the schema.
  static Result<TablePtr> Make(SchemaPtr schema, std::vector<Column> columns);

  /// An empty table of the given schema.
  static TablePtr Empty(SchemaPtr schema);

  const SchemaPtr& schema() const { return schema_; }
  int64_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  const Column& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Column by name; errors when absent.
  Result<const Column*> ColumnByName(const std::string& name) const;

  /// Boxed cell access.
  Value At(int64_t row, int col) const { return column(col).GetValue(row); }

  /// One row as boxed values.
  std::vector<Value> Row(int64_t row) const;

  /// Rows [offset, offset+length) as a new table.
  TablePtr Slice(int64_t offset, int64_t length) const;

  /// Rows gathered by `indices` as a new table.
  TablePtr TakeRows(const std::vector<int64_t>& indices) const;

  /// Approximate footprint in bytes (used by the transfer meter).
  int64_t ByteSize() const;

  /// Value-wise equality (schema + all cells, order-sensitive).
  bool Equals(const Table& other) const;

  /// Order-insensitive equality (multiset of rows) — handy in tests where
  /// providers legitimately differ in output order.
  bool EqualsUnordered(const Table& other) const;

  /// Pretty-prints up to `max_rows` rows with a header line.
  std::string ToString(int64_t max_rows = 20) const;

 private:
  Table(SchemaPtr schema, std::vector<Column> columns, int64_t num_rows)
      : schema_(std::move(schema)),
        columns_(std::move(columns)),
        num_rows_(num_rows) {}

  SchemaPtr schema_;
  std::vector<Column> columns_;
  int64_t num_rows_ = 0;
};

/// Row-at-a-time builder used by tests, examples, and workload generators.
class TableBuilder {
 public:
  explicit TableBuilder(SchemaPtr schema);

  /// Appends one row; value count must equal the field count, and each value
  /// must be appendable to its column (numeric coercion allowed).
  Status AppendRow(const std::vector<Value>& values);

  /// Typed column access for bulk generation (column i of the schema).
  Column* mutable_column(int i) { return &columns_[static_cast<size_t>(i)]; }

  void Reserve(int64_t n);

  int64_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }

  /// Finishes into an immutable table; the builder is left empty.
  Result<TablePtr> Finish();

 private:
  SchemaPtr schema_;
  std::vector<Column> columns_;
};

}  // namespace nexus

#endif  // NEXUS_TYPES_TABLE_H_
