#include "types/column.h"

#include "common/logging.h"
#include "common/str_util.h"

namespace nexus {

Column::Column(DataType type) : type_(type) {
  switch (type) {
    case DataType::kBool:
      data_ = std::vector<uint8_t>{};
      break;
    case DataType::kInt64:
      data_ = std::vector<int64_t>{};
      break;
    case DataType::kFloat64:
      data_ = std::vector<double>{};
      break;
    case DataType::kString:
      data_ = std::vector<std::string>{};
      break;
  }
}

Column Column::Filled(DataType type, int64_t n) {
  Column c(type);
  std::visit([n](auto& v) { v.resize(static_cast<size_t>(n)); }, c.data_);
  return c;
}

Column Column::FromInt64(std::vector<int64_t> data) {
  Column c(DataType::kInt64);
  c.data_ = std::move(data);
  return c;
}
Column Column::FromFloat64(std::vector<double> data) {
  Column c(DataType::kFloat64);
  c.data_ = std::move(data);
  return c;
}
Column Column::FromBool(std::vector<uint8_t> data) {
  Column c(DataType::kBool);
  c.data_ = std::move(data);
  return c;
}
Column Column::FromString(std::vector<std::string> data) {
  Column c(DataType::kString);
  c.data_ = std::move(data);
  return c;
}

int64_t Column::size() const {
  return std::visit([](const auto& v) { return static_cast<int64_t>(v.size()); },
                    data_);
}

Value Column::GetValue(int64_t i) const {
  if (IsNull(i)) return Value::Null();
  size_t idx = static_cast<size_t>(i);
  switch (type_) {
    case DataType::kBool:
      return Value::Bool(bools()[idx] != 0);
    case DataType::kInt64:
      return Value::Int64(ints()[idx]);
    case DataType::kFloat64:
      return Value::Float64(doubles()[idx]);
    case DataType::kString:
      return Value::String(strings()[idx]);
  }
  return Value::Null();
}

void Column::EnsureValidity() {
  if (validity_.empty()) validity_.assign(static_cast<size_t>(size()), 1);
}

Status Column::Append(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_) {
    case DataType::kBool:
      if (!v.is_bool()) break;
      AppendBool(v.AsBool());
      return Status::OK();
    case DataType::kInt64:
      if (v.is_int64()) {
        AppendInt64(v.AsInt64());
        return Status::OK();
      }
      break;
    case DataType::kFloat64:
      if (v.is_numeric()) {
        AppendFloat64(v.AsDouble());
        return Status::OK();
      }
      break;
    case DataType::kString:
      if (!v.is_string()) break;
      AppendString(v.AsString());
      return Status::OK();
  }
  return Status::TypeError(StrCat("cannot append ", v.ToString(), " to ",
                                  DataTypeName(type_), " column"));
}

void Column::AppendNull() {
  EnsureValidity();
  switch (type_) {
    case DataType::kBool:
      Bools().push_back(0);
      break;
    case DataType::kInt64:
      Ints().push_back(0);
      break;
    case DataType::kFloat64:
      Doubles().push_back(0.0);
      break;
    case DataType::kString:
      Strings().emplace_back();
      break;
  }
  validity_.push_back(0);
  ++null_count_;
}

Status Column::SetValue(int64_t i, const Value& v) {
  if (v.is_null()) {
    SetNull(i);
    return Status::OK();
  }
  switch (type_) {
    case DataType::kBool:
      if (!v.is_bool()) break;
      SetBool(i, v.AsBool());
      return Status::OK();
    case DataType::kInt64:
      if (!v.is_int64()) break;
      SetInt64(i, v.AsInt64());
      return Status::OK();
    case DataType::kFloat64:
      if (!v.is_numeric()) break;
      SetFloat64(i, v.AsDouble());
      return Status::OK();
    case DataType::kString:
      if (!v.is_string()) break;
      SetString(i, v.AsString());
      return Status::OK();
  }
  return Status::TypeError(StrCat("cannot store ", v.ToString(), " in ",
                                  DataTypeName(type_), " column"));
}

void Column::SetNull(int64_t i) {
  EnsureValidity();
  uint8_t& v = validity_[static_cast<size_t>(i)];
  null_count_ += (v != 0);
  v = 0;
}

void Column::Reserve(int64_t n) {
  std::visit([n](auto& v) { v.reserve(static_cast<size_t>(n)); }, data_);
}

double Column::NumericAt(int64_t i) const {
  size_t idx = static_cast<size_t>(i);
  if (type_ == DataType::kInt64) return static_cast<double>(ints()[idx]);
  NEXUS_CHECK(type_ == DataType::kFloat64) << "NumericAt on non-numeric column";
  return doubles()[idx];
}

Column Column::Slice(int64_t offset, int64_t length) const {
  Column out(type_);
  std::visit(
      [&](const auto& src) {
        auto& dst = std::get<std::decay_t<decltype(src)>>(out.data_);
        dst.assign(src.begin() + offset, src.begin() + offset + length);
      },
      data_);
  if (!validity_.empty()) {
    out.validity_.assign(validity_.begin() + offset,
                         validity_.begin() + offset + length);
    out.RecountNulls();
  }
  return out;
}

Column Column::Take(const std::vector<int64_t>& indices) const {
  Column out(type_);
  std::visit(
      [&](const auto& src) {
        auto& dst = std::get<std::decay_t<decltype(src)>>(out.data_);
        dst.reserve(indices.size());
        for (int64_t i : indices) dst.push_back(src[static_cast<size_t>(i)]);
      },
      data_);
  if (!validity_.empty()) {
    out.validity_.reserve(indices.size());
    for (int64_t i : indices) out.validity_.push_back(validity_[static_cast<size_t>(i)]);
    out.RecountNulls();
  }
  return out;
}

Status Column::AppendColumn(const Column& other) {
  if (other.type_ != type_) {
    return Status::TypeError(StrCat("append column type mismatch: ",
                                    DataTypeName(type_), " vs ",
                                    DataTypeName(other.type_)));
  }
  if (!other.validity_.empty() || !validity_.empty()) {
    EnsureValidity();
    if (other.validity_.empty()) {
      validity_.insert(validity_.end(), static_cast<size_t>(other.size()), 1);
    } else {
      validity_.insert(validity_.end(), other.validity_.begin(),
                       other.validity_.end());
      null_count_ += other.null_count_;
    }
  }
  std::visit(
      [&](auto& dst) {
        const auto& src = std::get<std::decay_t<decltype(dst)>>(other.data_);
        dst.insert(dst.end(), src.begin(), src.end());
      },
      data_);
  return Status::OK();
}

int64_t Column::ByteSize() const {
  int64_t bytes = static_cast<int64_t>(validity_.size());
  if (type_ == DataType::kString) {
    for (const std::string& s : strings()) {
      bytes += static_cast<int64_t>(s.size()) + FixedWidth(type_);
    }
    return bytes;
  }
  return bytes + size() * FixedWidth(type_);
}

bool Column::Equals(const Column& other) const {
  if (type_ != other.type_ || size() != other.size()) return false;
  for (int64_t i = 0; i < size(); ++i) {
    if (IsNull(i) != other.IsNull(i)) return false;
    if (!IsNull(i) && GetValue(i) != other.GetValue(i)) return false;
  }
  return true;
}

uint64_t Column::HashAt(int64_t i) const {
  if (IsNull(i)) return 0x6E756C6CULL;
  size_t idx = static_cast<size_t>(i);
  switch (type_) {
    case DataType::kBool:
      return bools()[idx] ? 0x74727565ULL : 0x66616C73ULL;
    case DataType::kInt64:
      return HashInt64(static_cast<uint64_t>(ints()[idx]));
    case DataType::kFloat64:
      return GetValue(i).Hash();
    case DataType::kString:
      return HashString(strings()[idx]);
  }
  return 0;
}

}  // namespace nexus
