// Column: a typed, null-able vector — the unit of columnar storage in the
// relational engine and of cell-attribute storage in array chunks.
#ifndef NEXUS_TYPES_COLUMN_H_
#define NEXUS_TYPES_COLUMN_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "types/value.h"

namespace nexus {

/// Dense typed vector with an optional validity mask.
///
/// Storage is one std::vector of the native representation; bools are stored
/// as uint8_t. The validity mask is allocated lazily on the first null, so
/// fully valid columns stay compact and branch-free to scan.
class Column {
 public:
  /// An empty column of the given type.
  explicit Column(DataType type);

  /// A column of `n` default-valued, valid entries (0 / 0.0 / false / "").
  /// Used by array chunks, which are dense and randomly written.
  static Column Filled(DataType type, int64_t n);

  /// Wrap existing data (no nulls).
  static Column FromInt64(std::vector<int64_t> data);
  static Column FromFloat64(std::vector<double> data);
  static Column FromBool(std::vector<uint8_t> data);
  static Column FromString(std::vector<std::string> data);

  DataType type() const { return type_; }
  int64_t size() const;
  bool empty() const { return size() == 0; }

  /// True when row i holds null.
  bool IsNull(int64_t i) const {
    return !validity_.empty() && validity_[static_cast<size_t>(i)] == 0;
  }
  /// Number of null entries. O(1): the count is maintained on every
  /// mutation rather than recounted from the validity mask — has_nulls()
  /// sits on hot kernel-dispatch paths.
  int64_t null_count() const { return null_count_; }
  bool has_nulls() const { return null_count_ > 0; }

  /// Boxed access; returns Value::Null() for null rows.
  Value GetValue(int64_t i) const;

  /// Appends a value, coercing numerics; a null of any kind appends null.
  /// Errors when the value's type cannot be coerced to the column type.
  Status Append(const Value& v);
  void AppendNull();

  /// Typed fast-path appends (no null, no coercion check).
  void AppendInt64(int64_t v) { Ints().push_back(v); NoteAppended(); }
  void AppendFloat64(double v) { Doubles().push_back(v); NoteAppended(); }
  void AppendBool(bool v) { Bools().push_back(v ? 1 : 0); NoteAppended(); }
  void AppendString(std::string v) {
    Strings().push_back(std::move(v));
    NoteAppended();
  }

  void Reserve(int64_t n);

  /// Overwrites row i, with the same coercion rules as Append.
  Status SetValue(int64_t i, const Value& v);
  void SetNull(int64_t i);

  /// Typed fast-path writes (row must exist; marks the row valid).
  void SetInt64(int64_t i, int64_t v) { Ints()[static_cast<size_t>(i)] = v; MarkValid(i); }
  void SetFloat64(int64_t i, double v) { Doubles()[static_cast<size_t>(i)] = v; MarkValid(i); }
  void SetBool(int64_t i, bool v) { Bools()[static_cast<size_t>(i)] = v ? 1 : 0; MarkValid(i); }
  void SetString(int64_t i, std::string v) {
    Strings()[static_cast<size_t>(i)] = std::move(v);
    MarkValid(i);
  }

  /// Typed read access. Precondition: type() matches.
  const std::vector<int64_t>& ints() const { return std::get<std::vector<int64_t>>(data_); }
  const std::vector<double>& doubles() const { return std::get<std::vector<double>>(data_); }
  const std::vector<uint8_t>& bools() const { return std::get<std::vector<uint8_t>>(data_); }
  const std::vector<std::string>& strings() const {
    return std::get<std::vector<std::string>>(data_);
  }

  /// Raw validity mask (empty == all valid; 1 marks a valid row). Exposed so
  /// the bytecode VM can take zero-copy null-bitmap views; check has_nulls()
  /// first — the mask may be allocated yet all-ones.
  const std::vector<uint8_t>& validity() const { return validity_; }

  /// Numeric read widened to double (works for int64 and float64 columns).
  double NumericAt(int64_t i) const;

  /// New column containing rows [offset, offset+length).
  Column Slice(int64_t offset, int64_t length) const;

  /// New column with rows gathered by `indices`.
  Column Take(const std::vector<int64_t>& indices) const;

  /// Appends all rows of `other` (same type required).
  Status AppendColumn(const Column& other);

  /// Approximate in-memory footprint, used for transfer-cost accounting.
  int64_t ByteSize() const;

  /// Row-wise equality including null handling.
  bool Equals(const Column& other) const;

  /// Hash of row i, consistent with Value::Hash.
  uint64_t HashAt(int64_t i) const;

 private:
  std::vector<int64_t>& Ints() { return std::get<std::vector<int64_t>>(data_); }
  std::vector<double>& Doubles() { return std::get<std::vector<double>>(data_); }
  std::vector<uint8_t>& Bools() { return std::get<std::vector<uint8_t>>(data_); }
  std::vector<std::string>& Strings() {
    return std::get<std::vector<std::string>>(data_);
  }
  // Keeps the lazily allocated validity mask aligned after a typed append.
  void NoteAppended() {
    if (!validity_.empty()) validity_.push_back(1);
  }
  void MarkValid(int64_t i) {
    if (validity_.empty()) return;
    uint8_t& v = validity_[static_cast<size_t>(i)];
    null_count_ -= (v == 0);
    v = 1;
  }
  void EnsureValidity();
  // Rebuilds null_count_ from validity_ (bulk constructions: Slice/Take).
  void RecountNulls() {
    null_count_ = 0;
    for (uint8_t v : validity_) null_count_ += (v == 0);
  }

  DataType type_;
  std::variant<std::vector<uint8_t>, std::vector<int64_t>, std::vector<double>,
               std::vector<std::string>>
      data_;
  std::vector<uint8_t> validity_;  // empty == all valid
  int64_t null_count_ = 0;         // invariant: zeros in validity_
};

}  // namespace nexus

#endif  // NEXUS_TYPES_COLUMN_H_
