#include "types/ndarray.h"

#include <algorithm>
#include <functional>

#include "common/memory.h"
#include "common/parallel.h"
#include "common/str_util.h"

namespace nexus {

std::string DimensionSpec::ToString() const {
  return StrCat(name, "[", start, ":", end(), ":", chunk_size, "]");
}

int64_t ArrayChunk::Volume() const {
  int64_t v = 1;
  for (int64_t e : extent) v *= e;
  return v;
}

namespace {

/// Charges a freshly materialized chunk to the calling thread's memory
/// meter, if one is installed (service-managed queries only).
void ChargeChunk(const ArrayChunk& chunk) {
  if (CurrentMemoryMeter() == nullptr) return;
  int64_t bytes = static_cast<int64_t>(chunk.occupied.size());
  for (const Column& c : chunk.attrs) bytes += c.ByteSize();
  ChargeAllocation(bytes);
}

int64_t ChunkBytes(const ArrayChunk& chunk) {
  int64_t bytes = static_cast<int64_t>(chunk.occupied.size());
  for (const Column& c : chunk.attrs) bytes += c.ByteSize();
  return bytes;
}

}  // namespace

int64_t ArrayChunk::LocalOffset(const std::vector<int64_t>& local) const {
  int64_t off = 0;
  for (size_t d = 0; d < extent.size(); ++d) {
    off = off * extent[d] + local[d];
  }
  return off;
}

std::vector<int64_t> ArrayChunk::LocalCoords(int64_t offset) const {
  std::vector<int64_t> local(extent.size());
  for (size_t d = extent.size(); d-- > 0;) {
    local[d] = offset % extent[d];
    offset /= extent[d];
  }
  return local;
}

int64_t ArrayChunk::OccupiedCount() const {
  int64_t n = 0;
  for (uint8_t o : occupied) n += (o != 0);
  return n;
}

NDArray::NDArray(std::vector<DimensionSpec> dims, SchemaPtr attr_schema)
    : dims_(std::move(dims)), attr_schema_(std::move(attr_schema)) {
  grid_extent_.reserve(dims_.size());
  for (const DimensionSpec& d : dims_) {
    grid_extent_.push_back((d.length + d.chunk_size - 1) / d.chunk_size);
  }
}

Result<std::shared_ptr<NDArray>> NDArray::Make(std::vector<DimensionSpec> dims,
                                               SchemaPtr attr_schema) {
  if (dims.empty()) return Status::InvalidArgument("NDArray needs >=1 dimension");
  for (const DimensionSpec& d : dims) {
    if (d.name.empty()) return Status::InvalidArgument("dimension with empty name");
    if (d.length <= 0 || d.chunk_size <= 0) {
      return Status::InvalidArgument(
          StrCat("dimension ", d.name, " must have positive length and chunk size"));
    }
  }
  if (attr_schema == nullptr) {
    return Status::InvalidArgument("NDArray needs an attribute schema");
  }
  for (const Field& f : attr_schema->fields()) {
    if (f.is_dimension) {
      return Status::InvalidArgument(
          StrCat("attribute schema may not contain dimension field ", f.name));
    }
    for (const DimensionSpec& d : dims) {
      if (d.name == f.name) {
        return Status::InvalidArgument(
            StrCat("attribute ", f.name, " collides with a dimension name"));
      }
    }
  }
  return std::shared_ptr<NDArray>(
      new NDArray(std::move(dims), std::move(attr_schema)));
}

int NDArray::DimIndex(const std::string& name) const {
  for (int i = 0; i < num_dims(); ++i) {
    if (dims_[static_cast<size_t>(i)].name == name) return i;
  }
  return -1;
}

SchemaPtr NDArray::CombinedSchema() const {
  std::vector<Field> fields;
  fields.reserve(dims_.size() + static_cast<size_t>(attr_schema_->num_fields()));
  for (const DimensionSpec& d : dims_) fields.push_back(Field::Dim(d.name));
  for (const Field& f : attr_schema_->fields()) fields.push_back(f);
  return std::make_shared<const Schema>(std::move(fields));
}

int64_t NDArray::NumCellsTotal() const {
  int64_t n = 1;
  for (const DimensionSpec& d : dims_) n *= d.length;
  return n;
}

int64_t NDArray::NumCellsOccupied() const {
  (void)EnsureAllResident();
  int64_t n = 0;
  for (const auto& [key, chunk] : chunks_) n += chunk.OccupiedCount();
  return n;
}

int64_t NDArray::GridKey(const std::vector<int64_t>& grid) const {
  int64_t key = 0;
  for (size_t d = 0; d < grid.size(); ++d) key = key * grid_extent_[d] + grid[d];
  return key;
}

Status NDArray::CheckBounds(const std::vector<int64_t>& coords) const {
  if (static_cast<int>(coords.size()) != num_dims()) {
    return Status::IndexError(StrCat("got ", coords.size(), " coordinates for ",
                                     num_dims(), "-d array"));
  }
  for (size_t d = 0; d < coords.size(); ++d) {
    const DimensionSpec& spec = dims_[d];
    if (coords[d] < spec.start || coords[d] >= spec.end()) {
      return Status::IndexError(StrCat("coordinate ", coords[d],
                                       " out of bounds for ", spec.ToString()));
    }
  }
  return Status::OK();
}

Status NDArray::EnsureResident(int64_t key) const {
  if (evicted_count_.load(std::memory_order_acquire) == 0) return Status::OK();
  std::lock_guard<std::mutex> lock(page_mu_);
  if (evicted_.count(key) == 0) return Status::OK();
  NEXUS_ASSIGN_OR_RETURN(ArrayChunk chunk, pager_->PageIn(key));
  ChargeChunk(chunk);  // faulting back in re-materializes the payload
  chunks_.emplace(key, std::move(chunk));
  evicted_.erase(key);
  evicted_count_.store(static_cast<int64_t>(evicted_.size()),
                       std::memory_order_release);
  pager_->Drop(key);
  return Status::OK();
}

Status NDArray::EnsureAllResident() const {
  while (evicted_count_.load(std::memory_order_acquire) > 0) {
    int64_t key;
    {
      std::lock_guard<std::mutex> lock(page_mu_);
      if (evicted_.empty()) break;
      key = *evicted_.begin();
    }
    NEXUS_RETURN_NOT_OK(EnsureResident(key));
  }
  return Status::OK();
}

Status NDArray::EvictKey(int64_t key) {
  if (pager_ == nullptr) {
    return Status::InvalidArgument("EvictChunk: no chunk pager installed");
  }
  auto it = chunks_.find(key);
  if (it == chunks_.end()) return Status::NotFound("chunk is not resident");
  int64_t bytes = ChunkBytes(it->second);
  NEXUS_RETURN_NOT_OK(pager_->PageOut(key, std::move(it->second)));
  chunks_.erase(it);
  {
    std::lock_guard<std::mutex> lock(page_mu_);
    evicted_.insert(key);
    evicted_count_.store(static_cast<int64_t>(evicted_.size()),
                         std::memory_order_release);
  }
  ReleaseAllocation(bytes);  // the payload is on disk, not resident
  return Status::OK();
}

Status NDArray::EvictChunk(const std::vector<int64_t>& grid) {
  if (static_cast<int>(grid.size()) != num_dims()) {
    return Status::InvalidArgument("EvictChunk: wrong dimensionality");
  }
  for (size_t d = 0; d < grid.size(); ++d) {
    if (grid[d] < 0 || grid[d] >= grid_extent_[d]) {
      return Status::IndexError("EvictChunk: grid position out of range");
    }
  }
  return EvictKey(GridKey(grid));
}

Result<int64_t> NDArray::EvictToBudget(int64_t budget_bytes) {
  if (pager_ == nullptr) {
    return Status::InvalidArgument("EvictToBudget: no chunk pager installed");
  }
  std::vector<int64_t> keys;
  keys.reserve(chunks_.size());
  for (const auto& [key, chunk] : chunks_) keys.push_back(key);
  int64_t resident = ResidentBytes();
  int64_t evicted = 0;
  // Highest grid key first: sequential consumers revisit low coordinates
  // soonest, so the tail of the grid is the coldest payload.
  for (auto rit = keys.rbegin(); rit != keys.rend(); ++rit) {
    if (resident <= budget_bytes) break;
    int64_t bytes = ChunkBytes(chunks_.at(*rit));
    NEXUS_RETURN_NOT_OK(EvictKey(*rit));
    resident -= bytes;
    ++evicted;
  }
  return evicted;
}

int64_t NDArray::ResidentBytes() const {
  int64_t bytes = 0;
  for (const auto& [key, chunk] : chunks_) bytes += ChunkBytes(chunk);
  return bytes;
}

Result<ArrayChunk*> NDArray::ChunkFor(const std::vector<int64_t>& coords,
                                      int64_t* local_offset) {
  NEXUS_RETURN_NOT_OK(CheckBounds(coords));
  std::vector<int64_t> grid(coords.size()), local(coords.size());
  for (size_t d = 0; d < coords.size(); ++d) {
    int64_t rel = coords[d] - dims_[d].start;
    grid[d] = rel / dims_[d].chunk_size;
    local[d] = rel % dims_[d].chunk_size;
  }
  int64_t key = GridKey(grid);
  NEXUS_RETURN_NOT_OK(EnsureResident(key));
  auto it = chunks_.find(key);
  if (it == chunks_.end()) {
    ArrayChunk chunk;
    chunk.grid = grid;
    chunk.lo.resize(coords.size());
    chunk.extent.resize(coords.size());
    for (size_t d = 0; d < coords.size(); ++d) {
      chunk.lo[d] = dims_[d].start + grid[d] * dims_[d].chunk_size;
      chunk.extent[d] =
          std::min(dims_[d].chunk_size, dims_[d].end() - chunk.lo[d]);
    }
    int64_t volume = chunk.Volume();
    chunk.attrs.reserve(static_cast<size_t>(attr_schema_->num_fields()));
    for (const Field& f : attr_schema_->fields()) {
      chunk.attrs.push_back(Column::Filled(f.type, volume));
    }
    chunk.occupied.assign(static_cast<size_t>(volume), 0);
    ChargeChunk(chunk);
    it = chunks_.emplace(key, std::move(chunk)).first;
  }
  *local_offset = it->second.LocalOffset(local);
  return &it->second;
}

Status NDArray::PutChunk(ArrayChunk chunk) {
  if (static_cast<int>(chunk.grid.size()) != num_dims()) {
    return Status::InvalidArgument("PutChunk: wrong dimensionality");
  }
  int64_t volume = chunk.Volume();
  for (size_t d = 0; d < chunk.grid.size(); ++d) {
    if (chunk.grid[d] < 0 || chunk.grid[d] >= grid_extent_[d]) {
      return Status::IndexError("PutChunk: grid position out of range");
    }
    int64_t want_lo = dims_[d].start + chunk.grid[d] * dims_[d].chunk_size;
    int64_t want_extent = std::min(dims_[d].chunk_size, dims_[d].end() - want_lo);
    if (chunk.lo[d] != want_lo || chunk.extent[d] != want_extent) {
      return Status::InvalidArgument("PutChunk: chunk geometry mismatch");
    }
  }
  if (static_cast<int>(chunk.attrs.size()) != attr_schema_->num_fields() ||
      static_cast<int64_t>(chunk.occupied.size()) != volume) {
    return Status::InvalidArgument("PutChunk: payload shape mismatch");
  }
  for (int a = 0; a < attr_schema_->num_fields(); ++a) {
    if (chunk.attrs[static_cast<size_t>(a)].type() != attr_schema_->field(a).type ||
        chunk.attrs[static_cast<size_t>(a)].size() != volume) {
      return Status::InvalidArgument("PutChunk: attribute column mismatch");
    }
  }
  ChargeChunk(chunk);
  int64_t key = GridKey(chunk.grid);
  if (evicted_count_.load(std::memory_order_acquire) > 0) {
    // Replacing a parked chunk: the new payload supersedes the disk copy.
    std::lock_guard<std::mutex> lock(page_mu_);
    if (evicted_.erase(key) > 0) {
      pager_->Drop(key);
      evicted_count_.store(static_cast<int64_t>(evicted_.size()),
                           std::memory_order_release);
    }
  }
  chunks_[key] = std::move(chunk);
  return Status::OK();
}

Status NDArray::Set(const std::vector<int64_t>& coords,
                    const std::vector<Value>& attr_values) {
  if (static_cast<int>(attr_values.size()) != attr_schema_->num_fields()) {
    return Status::InvalidArgument(
        StrCat("Set: ", attr_values.size(), " attribute values for schema ",
               attr_schema_->ToString()));
  }
  int64_t offset = 0;
  NEXUS_ASSIGN_OR_RETURN(ArrayChunk * chunk, ChunkFor(coords, &offset));
  for (size_t a = 0; a < attr_values.size(); ++a) {
    NEXUS_RETURN_NOT_OK(chunk->attrs[a].SetValue(offset, attr_values[a]));
  }
  chunk->occupied[static_cast<size_t>(offset)] = 1;
  return Status::OK();
}

bool NDArray::FindCell(const std::vector<int64_t>& coords,
                       const ArrayChunk** chunk, int64_t* offset) const {
  if (static_cast<int>(coords.size()) != num_dims()) return false;
  std::vector<int64_t> grid(coords.size()), local(coords.size());
  for (size_t d = 0; d < coords.size(); ++d) {
    const DimensionSpec& spec = dims_[d];
    if (coords[d] < spec.start || coords[d] >= spec.end()) return false;
    int64_t rel = coords[d] - spec.start;
    grid[d] = rel / spec.chunk_size;
    local[d] = rel % spec.chunk_size;
  }
  int64_t key = GridKey(grid);
  if (!EnsureResident(key).ok()) return false;
  auto it = chunks_.find(key);
  if (it == chunks_.end()) return false;
  int64_t off = it->second.LocalOffset(local);
  if (!it->second.occupied[static_cast<size_t>(off)]) return false;
  *chunk = &it->second;
  *offset = off;
  return true;
}

bool NDArray::Has(const std::vector<int64_t>& coords) const {
  if (!CheckBounds(coords).ok()) return false;
  std::vector<int64_t> grid(coords.size()), local(coords.size());
  for (size_t d = 0; d < coords.size(); ++d) {
    int64_t rel = coords[d] - dims_[d].start;
    grid[d] = rel / dims_[d].chunk_size;
    local[d] = rel % dims_[d].chunk_size;
  }
  int64_t key = GridKey(grid);
  if (!EnsureResident(key).ok()) return false;
  auto it = chunks_.find(key);
  if (it == chunks_.end()) return false;
  return it->second.occupied[static_cast<size_t>(it->second.LocalOffset(local))] != 0;
}

Result<std::vector<Value>> NDArray::Get(const std::vector<int64_t>& coords) const {
  NEXUS_RETURN_NOT_OK(CheckBounds(coords));
  std::vector<int64_t> grid(coords.size()), local(coords.size());
  for (size_t d = 0; d < coords.size(); ++d) {
    int64_t rel = coords[d] - dims_[d].start;
    grid[d] = rel / dims_[d].chunk_size;
    local[d] = rel % dims_[d].chunk_size;
  }
  int64_t key = GridKey(grid);
  NEXUS_RETURN_NOT_OK(EnsureResident(key));
  auto it = chunks_.find(key);
  if (it == chunks_.end()) {
    return Status::NotFound("cell is empty");
  }
  const ArrayChunk& chunk = it->second;
  int64_t off = chunk.LocalOffset(local);
  if (!chunk.occupied[static_cast<size_t>(off)]) {
    return Status::NotFound("cell is empty");
  }
  std::vector<Value> out;
  out.reserve(chunk.attrs.size());
  for (const Column& c : chunk.attrs) out.push_back(c.GetValue(off));
  return out;
}

std::vector<const ArrayChunk*> NDArray::chunks() const {
  (void)EnsureAllResident();
  std::vector<const ArrayChunk*> out;
  out.reserve(chunks_.size());
  for (const auto& [key, chunk] : chunks_) out.push_back(&chunk);
  return out;
}

const ArrayChunk* NDArray::FindChunk(const std::vector<int64_t>& grid) const {
  if (static_cast<int>(grid.size()) != num_dims()) return nullptr;
  for (size_t d = 0; d < grid.size(); ++d) {
    if (grid[d] < 0 || grid[d] >= grid_extent_[d]) return nullptr;
  }
  int64_t key = GridKey(grid);
  if (!EnsureResident(key).ok()) return nullptr;
  auto it = chunks_.find(key);
  return it == chunks_.end() ? nullptr : &it->second;
}

std::vector<ArrayChunk*> NDArray::mutable_chunks() {
  (void)EnsureAllResident();
  std::vector<ArrayChunk*> out;
  out.reserve(chunks_.size());
  for (auto& [key, chunk] : chunks_) out.push_back(&chunk);
  return out;
}

void NDArray::ForEachCell(
    const std::function<void(const std::vector<int64_t>&, std::vector<Value>)>& fn)
    const {
  (void)EnsureAllResident();
  for (const auto& [key, chunk] : chunks_) {
    int64_t volume = chunk.Volume();
    for (int64_t off = 0; off < volume; ++off) {
      if (!chunk.occupied[static_cast<size_t>(off)]) continue;
      std::vector<int64_t> local = chunk.LocalCoords(off);
      std::vector<int64_t> global(local.size());
      for (size_t d = 0; d < local.size(); ++d) global[d] = chunk.lo[d] + local[d];
      std::vector<Value> attrs;
      attrs.reserve(chunk.attrs.size());
      for (const Column& c : chunk.attrs) attrs.push_back(c.GetValue(off));
      fn(global, std::move(attrs));
    }
  }
}

Result<TablePtr> NDArray::ToTable() const {
  TableBuilder builder(CombinedSchema());
  builder.Reserve(NumCellsOccupied());
  Status st = Status::OK();
  ForEachCell([&](const std::vector<int64_t>& coords, std::vector<Value> attrs) {
    if (!st.ok()) return;
    std::vector<Value> row;
    row.reserve(coords.size() + attrs.size());
    for (int64_t c : coords) row.push_back(Value::Int64(c));
    for (Value& v : attrs) row.push_back(std::move(v));
    st = builder.AppendRow(row);
  });
  NEXUS_RETURN_NOT_OK(st);
  return builder.Finish();
}

Result<std::shared_ptr<NDArray>> NDArray::FromTable(
    const Table& table, const std::vector<std::string>& dim_names,
    const std::vector<int64_t>& chunk_sizes) {
  if (dim_names.empty()) {
    return Status::InvalidArgument("FromTable: need at least one dimension column");
  }
  if (chunk_sizes.size() != dim_names.size()) {
    return Status::InvalidArgument("FromTable: one chunk size per dimension required");
  }
  std::vector<int> dim_cols;
  for (const std::string& name : dim_names) {
    NEXUS_ASSIGN_OR_RETURN(int idx, table.schema()->FindFieldOrError(name));
    if (table.schema()->field(idx).type != DataType::kInt64) {
      return Status::TypeError(StrCat("dimension column ", name, " must be int64"));
    }
    dim_cols.push_back(idx);
  }
  // Infer bounds.
  std::vector<DimensionSpec> dims;
  for (size_t d = 0; d < dim_cols.size(); ++d) {
    const Column& c = table.column(dim_cols[d]);
    if (c.has_nulls()) {
      return Status::InvalidArgument(
          StrCat("dimension column ", dim_names[d], " contains nulls"));
    }
    int64_t lo = 0, hi = 0;
    if (table.num_rows() > 0) {
      // Morsel-parallel min/max: each morsel reduces its slot, the final
      // reduction is over the (order-insensitive) per-morsel extremes.
      const std::vector<int64_t>& vals = c.ints();
      const int64_t n = static_cast<int64_t>(vals.size());
      const size_t morsels =
          static_cast<size_t>((n + kMorselRows - 1) / kMorselRows);
      std::vector<int64_t> los(morsels), his(morsels);
      ParallelFor(n, kMorselRows, [&](int64_t b, int64_t e) {
        int64_t mlo = vals[static_cast<size_t>(b)], mhi = mlo;
        for (int64_t r = b + 1; r < e; ++r) {
          mlo = std::min(mlo, vals[static_cast<size_t>(r)]);
          mhi = std::max(mhi, vals[static_cast<size_t>(r)]);
        }
        los[static_cast<size_t>(b / kMorselRows)] = mlo;
        his[static_cast<size_t>(b / kMorselRows)] = mhi;
      });
      lo = los[0];
      hi = his[0];
      for (size_t m = 1; m < morsels; ++m) {
        lo = std::min(lo, los[m]);
        hi = std::max(hi, his[m]);
      }
    }
    DimensionSpec spec;
    spec.name = dim_names[d];
    spec.start = lo;
    spec.length = table.num_rows() > 0 ? hi - lo + 1 : 1;
    spec.chunk_size = chunk_sizes[d] > 0 ? chunk_sizes[d] : spec.length;
    dims.push_back(spec);
  }
  // Attribute schema = remaining fields, dimension tags stripped.
  std::vector<Field> attr_fields;
  std::vector<int> attr_cols;
  for (int i = 0; i < table.schema()->num_fields(); ++i) {
    if (std::find(dim_cols.begin(), dim_cols.end(), i) != dim_cols.end()) continue;
    Field f = table.schema()->field(i);
    f.is_dimension = false;
    attr_fields.push_back(f);
    attr_cols.push_back(i);
  }
  NEXUS_ASSIGN_OR_RETURN(SchemaPtr attr_schema, Schema::Make(std::move(attr_fields)));
  NEXUS_ASSIGN_OR_RETURN(std::shared_ptr<NDArray> array,
                         NDArray::Make(std::move(dims), std::move(attr_schema)));
  std::vector<int64_t> coords(dim_cols.size());
  std::vector<Value> attrs(attr_cols.size());
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (size_t d = 0; d < dim_cols.size(); ++d) {
      coords[d] = table.column(dim_cols[d]).ints()[static_cast<size_t>(r)];
    }
    if (array->Has(coords)) {
      return Status::InvalidArgument(
          StrCat("FromTable: duplicate coordinates at row ", r));
    }
    for (size_t a = 0; a < attr_cols.size(); ++a) {
      attrs[a] = table.At(r, attr_cols[a]);
    }
    NEXUS_RETURN_NOT_OK(array->Set(coords, attrs));
  }
  return array;
}

int64_t NDArray::ByteSize() const {
  int64_t bytes = ResidentBytes();
  if (pager_ != nullptr) bytes += pager_->paged_bytes();
  return bytes;
}

bool NDArray::Equals(const NDArray& other) const {
  if (dims_ != other.dims_ || !attr_schema_->Equals(*other.attr_schema_)) {
    return false;
  }
  if (NumCellsOccupied() != other.NumCellsOccupied()) return false;
  bool equal = true;
  ForEachCell([&](const std::vector<int64_t>& coords, std::vector<Value> attrs) {
    if (!equal) return;
    auto theirs = other.Get(coords);
    if (!theirs.ok()) {
      equal = false;
      return;
    }
    const std::vector<Value>& tv = theirs.ValueOrDie();
    for (size_t a = 0; a < attrs.size(); ++a) {
      if (attrs[a] != tv[a]) {
        equal = false;
        return;
      }
    }
  });
  return equal;
}

std::string NDArray::ToString() const {
  std::vector<std::string> dim_strs;
  dim_strs.reserve(dims_.size());
  for (const DimensionSpec& d : dims_) dim_strs.push_back(d.ToString());
  return StrCat("array<", Join(dim_strs, ", "), "> ", attr_schema_->ToString(),
                " [", NumCellsOccupied(), "/", NumCellsTotal(), " cells]");
}

}  // namespace nexus
