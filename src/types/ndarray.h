// NDArray: a chunked, sparse-capable n-dimensional array in the SciDB mould —
// the array half of the paper's fused tabular/array model.
//
// An NDArray has named integer dimensions (each with a start, length, and
// chunk size) and a columnar attribute payload per cell. Storage is a grid of
// dense chunks; cells may be absent (the `occupied` mask), which is how
// sparse arrays and table→array reboxing of partial data are represented.
#ifndef NEXUS_TYPES_NDARRAY_H_
#define NEXUS_TYPES_NDARRAY_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/column.h"
#include "types/schema.h"
#include "types/table.h"

namespace nexus {

/// Shape of one array dimension.
struct DimensionSpec {
  std::string name;
  int64_t start = 0;       ///< first valid coordinate (inclusive)
  int64_t length = 0;      ///< number of coordinates
  int64_t chunk_size = 0;  ///< chunk extent along this dimension

  int64_t end() const { return start + length; }  ///< exclusive upper bound

  bool operator==(const DimensionSpec& o) const {
    return name == o.name && start == o.start && length == o.length &&
           chunk_size == o.chunk_size;
  }

  /// "i[0:100:10]" — name[start : start+length : chunk_size].
  std::string ToString() const;
};

/// One dense chunk of an NDArray. Attribute columns and the occupancy mask
/// have length Volume() (the product of clipped extents), addressed in
/// row-major order of local coordinates.
struct ArrayChunk {
  std::vector<int64_t> grid;    ///< position in the chunk grid, per dim
  std::vector<int64_t> lo;      ///< global coordinate of local (0,…,0)
  std::vector<int64_t> extent;  ///< clipped extent per dim
  std::vector<Column> attrs;    ///< one column per attribute field
  std::vector<uint8_t> occupied;

  int64_t Volume() const;
  /// Row-major offset of a local coordinate within this chunk.
  int64_t LocalOffset(const std::vector<int64_t>& local) const;
  /// Inverse of LocalOffset.
  std::vector<int64_t> LocalCoords(int64_t offset) const;
  int64_t OccupiedCount() const;
};

/// Backing store for evicted chunks — the type layer's view of the spill
/// subsystem (the NXB1-backed implementation lives in src/exec/spill, which
/// this layer must not depend on). Implementations own the parked payloads;
/// keys are the array's linearized grid indices. Must be thread-safe.
class ChunkPager {
 public:
  virtual ~ChunkPager() = default;
  /// Parks a chunk's payload under `key`, taking ownership.
  virtual Status PageOut(int64_t key, ArrayChunk chunk) = 0;
  /// Restores the chunk parked under `key` (which stays parked until Drop).
  virtual Result<ArrayChunk> PageIn(int64_t key) = 0;
  /// Discards the parked payload for `key`, if any.
  virtual void Drop(int64_t key) = 0;
  /// Bytes currently parked (serialized size).
  virtual int64_t paged_bytes() const = 0;
};

class NDArray;
using NDArrayPtr = std::shared_ptr<const NDArray>;

/// Chunked n-d array. Build mutably via Make + Set, then share as const.
class NDArray {
 public:
  /// `attr_schema` must contain only non-dimension fields; every dimension
  /// must have positive length and chunk size.
  static Result<std::shared_ptr<NDArray>> Make(std::vector<DimensionSpec> dims,
                                               SchemaPtr attr_schema);

  int num_dims() const { return static_cast<int>(dims_.size()); }
  const DimensionSpec& dim(int i) const { return dims_[static_cast<size_t>(i)]; }
  const std::vector<DimensionSpec>& dims() const { return dims_; }
  int DimIndex(const std::string& name) const;

  const SchemaPtr& attr_schema() const { return attr_schema_; }

  /// Schema of the equivalent table: dimension fields (tagged) followed by
  /// attribute fields.
  SchemaPtr CombinedSchema() const;

  /// Total addressable cells (product of dimension lengths).
  int64_t NumCellsTotal() const;
  /// Occupied (present) cells.
  int64_t NumCellsOccupied() const;
  /// True when every addressable cell is occupied.
  bool IsDense() const { return NumCellsOccupied() == NumCellsTotal(); }

  /// Writes the attribute payload of the cell at `coords` (global
  /// coordinates, one per dimension). Creates the containing chunk on demand.
  Status Set(const std::vector<int64_t>& coords, const std::vector<Value>& attr_values);

  /// True when the cell exists and is occupied.
  bool Has(const std::vector<int64_t>& coords) const;

  /// Locates an occupied cell without boxing: on success sets `chunk` and
  /// the cell's local offset and returns true. False when out of bounds or
  /// the cell is empty. The fast path for neighborhood operators.
  bool FindCell(const std::vector<int64_t>& coords, const ArrayChunk** chunk,
                int64_t* offset) const;

  /// Attribute payload of an occupied cell; errors when out of bounds or
  /// the cell is empty.
  Result<std::vector<Value>> Get(const std::vector<int64_t>& coords) const;

  /// Chunks in deterministic (grid row-major) order.
  std::vector<const ArrayChunk*> chunks() const;

  /// The chunk at a grid position, or null when absent/out of range.
  const ArrayChunk* FindChunk(const std::vector<int64_t>& grid) const;
  std::vector<ArrayChunk*> mutable_chunks();

  /// The chunk containing `coords`, created on demand, plus the cell's local
  /// offset within it. Errors when out of bounds.
  Result<ArrayChunk*> ChunkFor(const std::vector<int64_t>& coords, int64_t* local_offset);

  /// Inserts a fully-formed chunk at its grid position, replacing any
  /// existing chunk there. The chunk's grid/lo/extent must agree with this
  /// array's geometry (checked); attribute columns must match the attribute
  /// schema in count and length. Engine-level bulk-construction path.
  Status PutChunk(ArrayChunk chunk);

  /// Calls `fn(global_coords, attr_values)` for every occupied cell in
  /// deterministic order.
  void ForEachCell(
      const std::function<void(const std::vector<int64_t>&, std::vector<Value>)>& fn) const;

  /// Flattens into a table: dimension columns (tagged) then attributes, one
  /// row per occupied cell, deterministic order.
  Result<TablePtr> ToTable() const;

  /// Reboxes a table into an array. `dim_names` selects the coordinate
  /// columns (must be int64, non-null); bounds are inferred from the data
  /// unless `dims` overrides them. Duplicate coordinates error.
  static Result<std::shared_ptr<NDArray>> FromTable(
      const Table& table, const std::vector<std::string>& dim_names,
      const std::vector<int64_t>& chunk_sizes);

  /// Resident bytes plus the serialized size of parked chunks — an
  /// approximation while chunks are evicted, exact otherwise. Never faults
  /// pages in (metering must not defeat eviction).
  int64_t ByteSize() const;
  bool Equals(const NDArray& other) const;
  std::string ToString() const;

  // -- Out-of-core chunk eviction (src/exec/spill supplies the pager) --

  /// Installs the backing store for evicted chunks. Must be set before the
  /// first EvictChunk; replacing the pager while chunks are parked is an
  /// error the caller must avoid.
  void SetPager(std::shared_ptr<ChunkPager> pager) { pager_ = std::move(pager); }
  const std::shared_ptr<ChunkPager>& pager() const { return pager_; }

  /// Parks the chunk at `grid` in the pager and releases its metered
  /// charge. The chunk faults back in transparently (and is re-charged) on
  /// the next access. Errors when no pager is installed.
  Status EvictChunk(const std::vector<int64_t>& grid);

  /// Evicts chunks (highest grid key first) until the resident payload is
  /// within `budget_bytes`. Returns the number of chunks parked.
  Result<int64_t> EvictToBudget(int64_t budget_bytes);

  /// Bytes of chunk payload currently in memory (evicted chunks excluded).
  int64_t ResidentBytes() const;
  /// Chunks currently parked in the pager.
  int64_t EvictedChunks() const {
    return evicted_count_.load(std::memory_order_acquire);
  }

  /// Faults every evicted chunk back in. Engines call this before reading
  /// an array from parallel morsels: the lazy fault path serializes on a
  /// mutex but concurrent readers must not race a mutating fault.
  Status EnsureAllResident() const;

 private:
  NDArray(std::vector<DimensionSpec> dims, SchemaPtr attr_schema);

  /// Linearized grid index of a chunk-grid coordinate.
  int64_t GridKey(const std::vector<int64_t>& grid) const;
  Status CheckBounds(const std::vector<int64_t>& coords) const;
  Status EvictKey(int64_t key);
  /// Faults `key` back in when it is parked; no-op otherwise.
  Status EnsureResident(int64_t key) const;

  std::vector<DimensionSpec> dims_;
  std::vector<int64_t> grid_extent_;  // chunks per dimension
  SchemaPtr attr_schema_;
  // Ordered => deterministic iteration. Mutable: evicted chunks fault back
  // in lazily from const accessors.
  mutable std::map<int64_t, ArrayChunk> chunks_;
  std::shared_ptr<ChunkPager> pager_;
  mutable std::mutex page_mu_;          // serializes fault-in
  mutable std::set<int64_t> evicted_;   // guarded by page_mu_
  mutable std::atomic<int64_t> evicted_count_{0};
};

}  // namespace nexus

#endif  // NEXUS_TYPES_NDARRAY_H_
