// Dataset: the value that flows along algebra edges and between servers.
//
// Logically every collection is "a table with 0+ dimension-tagged
// attributes" (the paper's fused model); physically a Dataset is either a
// columnar Table or a chunked NDArray, and Rebox converts between the two.
// Providers receive and produce Datasets and pick the representation native
// to their engine.
#ifndef NEXUS_TYPES_DATASET_H_
#define NEXUS_TYPES_DATASET_H_

#include <memory>
#include <string>
#include <variant>

#include "common/result.h"
#include "types/ndarray.h"
#include "types/table.h"

namespace nexus {

/// Physical representation of a collection.
enum class DatasetKind { kTable, kArray };

/// Tagged union of the two physical representations.
class Dataset {
 public:
  Dataset() : repr_(Table::Empty(std::make_shared<const Schema>(std::vector<Field>{}))) {}
  explicit Dataset(TablePtr table) : repr_(std::move(table)) {}
  explicit Dataset(NDArrayPtr array) : repr_(std::move(array)) {}

  DatasetKind kind() const {
    return std::holds_alternative<TablePtr>(repr_) ? DatasetKind::kTable
                                                   : DatasetKind::kArray;
  }
  bool is_table() const { return kind() == DatasetKind::kTable; }
  bool is_array() const { return kind() == DatasetKind::kArray; }

  /// Direct access; precondition: matching kind.
  const TablePtr& table() const { return std::get<TablePtr>(repr_); }
  const NDArrayPtr& array() const { return std::get<NDArrayPtr>(repr_); }

  /// The logical schema regardless of representation (dimensions tagged).
  SchemaPtr schema() const;

  /// Logical cardinality: table rows, or occupied array cells.
  int64_t num_rows() const;

  /// Converts to a table view (identity for tables).
  Result<TablePtr> AsTable() const;

  /// Converts to an array using the schema's dimension tags as coordinates;
  /// `chunk_size` applies to every inferred dimension. Errors when the
  /// schema tags no dimensions.
  Result<NDArrayPtr> AsArray(int64_t chunk_size = 64) const;

  /// Approximate serialized size, the transfer meter's unit of account.
  int64_t ByteSize() const;

  /// Value equality across representations (compares as tables, unordered).
  bool LogicallyEquals(const Dataset& other) const;

  std::string ToString() const;

 private:
  std::variant<TablePtr, NDArrayPtr> repr_;
};

}  // namespace nexus

#endif  // NEXUS_TYPES_DATASET_H_
