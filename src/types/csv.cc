#include "types/csv.h"

#include <cstdlib>

#include "common/str_util.h"

namespace nexus {

namespace {

// Splits CSV text into rows of raw (unquoted) fields, honouring quotes.
Result<std::vector<std::vector<std::string>>> Tokenize(const std::string& text,
                                                       char delimiter) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;
  size_t i = 0;
  auto end_field = [&]() {
    row.push_back(std::move(field));
    field.clear();
  };
  auto end_row = [&]() {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
    row_has_content = false;
  };
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field.push_back(c);
      ++i;
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      row_has_content = true;
      ++i;
      continue;
    }
    if (c == delimiter) {
      end_field();
      row_has_content = true;
      ++i;
      continue;
    }
    if (c == '\n' || c == '\r') {
      if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') ++i;
      ++i;
      if (row_has_content || !field.empty() || !row.empty()) end_row();
      continue;
    }
    field.push_back(c);
    row_has_content = true;
    ++i;
  }
  if (in_quotes) return Status::InvalidArgument("unterminated quote in CSV");
  if (row_has_content || !field.empty() || !row.empty()) end_row();
  return rows;
}

bool ParseInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseFloat(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

bool IsNull(const std::string& s, const CsvReadOptions& opts) {
  return s.empty() || (!opts.null_token.empty() && s == opts.null_token);
}

// Widening type lattice for inference: bool < int64 < float64 < string.
DataType InferFieldType(const std::string& s) {
  if (s == "true" || s == "false") return DataType::kBool;
  int64_t iv;
  if (ParseInt(s, &iv)) return DataType::kInt64;
  double fv;
  if (ParseFloat(s, &fv)) return DataType::kFloat64;
  return DataType::kString;
}

DataType Widen(DataType a, DataType b) {
  if (a == b) return a;
  if (a == DataType::kString || b == DataType::kString) return DataType::kString;
  if (a == DataType::kBool || b == DataType::kBool) return DataType::kString;
  return DataType::kFloat64;  // int64 ∨ float64
}

Result<Value> ParseCell(const std::string& s, DataType type,
                        const CsvReadOptions& opts) {
  if (IsNull(s, opts)) return Value::Null();
  switch (type) {
    case DataType::kBool:
      if (s == "true") return Value::Bool(true);
      if (s == "false") return Value::Bool(false);
      break;
    case DataType::kInt64: {
      int64_t v;
      if (ParseInt(s, &v)) return Value::Int64(v);
      break;
    }
    case DataType::kFloat64: {
      double v;
      if (ParseFloat(s, &v)) return Value::Float64(v);
      break;
    }
    case DataType::kString:
      return Value::String(s);
  }
  return Status::InvalidArgument(
      StrCat("cannot parse '", s, "' as ", DataTypeName(type)));
}

}  // namespace

Result<TablePtr> ReadCsv(const std::string& text, const CsvReadOptions& options) {
  NEXUS_ASSIGN_OR_RETURN(auto rows, Tokenize(text, options.delimiter));
  if (rows.empty()) return Status::InvalidArgument("CSV has no header row");
  const std::vector<std::string>& header = rows[0];
  size_t n_cols = header.size();
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != n_cols) {
      return Status::InvalidArgument(
          StrCat("CSV row ", r, " has ", rows[r].size(), " fields, expected ",
                 n_cols));
    }
  }
  SchemaPtr schema = options.schema;
  if (schema != nullptr) {
    if (static_cast<size_t>(schema->num_fields()) != n_cols) {
      return Status::InvalidArgument("CSV header does not match supplied schema");
    }
    for (size_t c = 0; c < n_cols; ++c) {
      if (schema->field(static_cast<int>(c)).name != header[c]) {
        return Status::InvalidArgument(
            StrCat("CSV header '", header[c], "' != schema field '",
                   schema->field(static_cast<int>(c)).name, "'"));
      }
    }
  } else {
    // Infer each column's type across all rows; all-null columns default
    // to string.
    std::vector<DataType> types(n_cols, DataType::kBool);
    std::vector<bool> seen(n_cols, false);
    for (size_t r = 1; r < rows.size(); ++r) {
      for (size_t c = 0; c < n_cols; ++c) {
        const std::string& s = rows[r][c];
        if (IsNull(s, options)) continue;
        DataType t = InferFieldType(s);
        types[c] = seen[c] ? Widen(types[c], t) : t;
        seen[c] = true;
      }
    }
    std::vector<Field> fields;
    for (size_t c = 0; c < n_cols; ++c) {
      fields.push_back(Field::Attr(header[c], seen[c] ? types[c] : DataType::kString));
    }
    NEXUS_ASSIGN_OR_RETURN(schema, Schema::Make(std::move(fields)));
  }
  TableBuilder builder(schema);
  builder.Reserve(static_cast<int64_t>(rows.size()) - 1);
  std::vector<Value> row(n_cols);
  for (size_t r = 1; r < rows.size(); ++r) {
    for (size_t c = 0; c < n_cols; ++c) {
      NEXUS_ASSIGN_OR_RETURN(
          row[c],
          ParseCell(rows[r][c], schema->field(static_cast<int>(c)).type, options));
    }
    NEXUS_RETURN_NOT_OK(builder.AppendRow(row));
  }
  return builder.Finish();
}

std::string WriteCsv(const Table& table, const CsvWriteOptions& options) {
  std::string out;
  auto needs_quoting = [&](const std::string& s) {
    return s.find(options.delimiter) != std::string::npos ||
           s.find('"') != std::string::npos || s.find('\n') != std::string::npos;
  };
  auto emit = [&](const std::string& s) {
    if (!needs_quoting(s)) {
      out += s;
      return;
    }
    out += '"';
    for (char c : s) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
  };
  for (int c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out += options.delimiter;
    emit(table.schema()->field(c).name);
  }
  out += '\n';
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += options.delimiter;
      Value v = table.At(r, c);
      if (v.is_null()) {
        emit(options.null_token);
      } else if (v.is_string()) {
        emit(v.AsString());
      } else if (v.is_bool()) {
        out += v.AsBool() ? "true" : "false";
      } else if (v.is_int64()) {
        out += StrCat(v.AsInt64());
      } else {
        out += FormatDouble(v.AsFloat64(), 17);
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace nexus
