// Schema with dimension-tagged fields — the heart of the fused
// tabular/array data model: "0 or more attributes in a table structure being
// tagged as dimensions, and operators being dimension-aware" (Maier, CIDR'15).
#ifndef NEXUS_TYPES_SCHEMA_H_
#define NEXUS_TYPES_SCHEMA_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "types/datatype.h"

namespace nexus {

/// One attribute of a collection. When `is_dimension` is true the attribute
/// participates in the array coordinate system: it must be int64-typed and
/// non-null, and dimension-aware operators (slice, regrid, shift, matmul)
/// key off it.
struct Field {
  std::string name;
  DataType type = DataType::kInt64;
  bool is_dimension = false;

  /// Convenience factory for a plain attribute.
  static Field Attr(std::string name, DataType type) {
    return Field{std::move(name), type, false};
  }
  /// Convenience factory for a dimension (always int64).
  static Field Dim(std::string name) {
    return Field{std::move(name), DataType::kInt64, true};
  }

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type &&
           is_dimension == other.is_dimension;
  }

  std::string ToString() const;
};

class Schema;
using SchemaPtr = std::shared_ptr<const Schema>;

/// Immutable ordered field list with by-name lookup.
class Schema {
 public:
  explicit Schema(std::vector<Field> fields);

  /// Validates (distinct names; dimensions are int64) and wraps in a
  /// shared_ptr. The usual way to build a schema.
  static Result<SchemaPtr> Make(std::vector<Field> fields);

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[static_cast<size_t>(i)]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the named field, or -1.
  int FindField(const std::string& name) const;

  /// Like FindField but errors with a helpful message.
  Result<int> FindFieldOrError(const std::string& name) const;

  /// Indices of dimension fields, in schema order.
  std::vector<int> DimensionIndices() const;
  /// Indices of non-dimension (attribute) fields, in schema order.
  std::vector<int> AttributeIndices() const;
  int num_dimensions() const { return static_cast<int>(DimensionIndices().size()); }

  bool Equals(const Schema& other) const;

  /// Schema with the same fields, none tagged as a dimension.
  SchemaPtr WithoutDimensions() const;

  /// Renders as "{d i:int64*, v:float64}" where '*' marks dimensions.
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace nexus

#endif  // NEXUS_TYPES_SCHEMA_H_
