#include "types/schema.h"

#include "common/str_util.h"

namespace nexus {

std::string Field::ToString() const {
  return StrCat(name, ":", DataTypeName(type), is_dimension ? "*" : "");
}

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    index_.emplace(fields_[i].name, static_cast<int>(i));
  }
}

Result<SchemaPtr> Schema::Make(std::vector<Field> fields) {
  std::unordered_map<std::string, int> seen;
  for (const Field& f : fields) {
    if (f.name.empty()) {
      return Status::InvalidArgument("schema field with empty name");
    }
    if (!seen.emplace(f.name, 0).second) {
      return Status::InvalidArgument(StrCat("duplicate field name: ", f.name));
    }
    if (f.is_dimension && f.type != DataType::kInt64) {
      return Status::InvalidArgument(
          StrCat("dimension field ", f.name, " must be int64, got ",
                 DataTypeName(f.type)));
    }
  }
  return std::make_shared<const Schema>(std::move(fields));
}

int Schema::FindField(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

Result<int> Schema::FindFieldOrError(const std::string& name) const {
  int i = FindField(name);
  if (i < 0) {
    return Status::NotFound(
        StrCat("no field named '", name, "' in schema ", ToString()));
  }
  return i;
}

std::vector<int> Schema::DimensionIndices() const {
  std::vector<int> out;
  for (int i = 0; i < num_fields(); ++i) {
    if (fields_[static_cast<size_t>(i)].is_dimension) out.push_back(i);
  }
  return out;
}

std::vector<int> Schema::AttributeIndices() const {
  std::vector<int> out;
  for (int i = 0; i < num_fields(); ++i) {
    if (!fields_[static_cast<size_t>(i)].is_dimension) out.push_back(i);
  }
  return out;
}

bool Schema::Equals(const Schema& other) const {
  return fields_ == other.fields_;
}

SchemaPtr Schema::WithoutDimensions() const {
  std::vector<Field> fields = fields_;
  for (Field& f : fields) f.is_dimension = false;
  return std::make_shared<const Schema>(std::move(fields));
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(fields_.size());
  for (const Field& f : fields_) parts.push_back(f.ToString());
  return StrCat("{", Join(parts, ", "), "}");
}

}  // namespace nexus
