// CSV import/export for tables — the practical on-ramp for getting data in
// and out of the framework.
//
// Dialect: comma-separated, double-quote quoting with "" escapes, first
// line is the header. On read, column types are inferred from the data
// (int64 ⊂ float64 ⊂ string; "true"/"false" → bool; empty field → null)
// unless an explicit schema is supplied.
#ifndef NEXUS_TYPES_CSV_H_
#define NEXUS_TYPES_CSV_H_

#include <string>

#include "common/result.h"
#include "types/table.h"

namespace nexus {

struct CsvReadOptions {
  /// When set, parsing coerces to this schema instead of inferring types
  /// (header names must match the schema's field names, in order).
  SchemaPtr schema;
  /// Treat this token (in addition to the empty string) as null.
  std::string null_token = "";
  char delimiter = ',';
};

struct CsvWriteOptions {
  char delimiter = ',';
  /// Written for null cells.
  std::string null_token = "";
};

/// Parses CSV text into a table.
Result<TablePtr> ReadCsv(const std::string& text, const CsvReadOptions& options = {});

/// Renders a table as CSV text (dimension tags are not representable and
/// are dropped; re-tag with Rebox after reading).
std::string WriteCsv(const Table& table, const CsvWriteOptions& options = {});

}  // namespace nexus

#endif  // NEXUS_TYPES_CSV_H_
