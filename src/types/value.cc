#include "types/value.h"

#include <cmath>
#include <cstdlib>

#include "common/str_util.h"

namespace nexus {

DataType Value::type() const {
  if (is_bool()) return DataType::kBool;
  if (is_int64()) return DataType::kInt64;
  if (is_float64()) return DataType::kFloat64;
  return DataType::kString;
}

Result<Value> Value::CastTo(DataType target) const {
  if (is_null()) return Value::Null();
  if (!is_null() && type() == target) return *this;
  switch (target) {
    case DataType::kBool:
      if (is_int64()) return Value::Bool(AsInt64() != 0);
      if (is_float64()) return Value::Bool(AsFloat64() != 0.0);
      if (is_string()) {
        if (AsString() == "true") return Value::Bool(true);
        if (AsString() == "false") return Value::Bool(false);
      }
      break;
    case DataType::kInt64:
      if (is_bool()) return Value::Int64(AsBool() ? 1 : 0);
      if (is_float64()) return Value::Int64(static_cast<int64_t>(AsFloat64()));
      if (is_string()) {
        char* end = nullptr;
        const std::string& s = AsString();
        long long v = std::strtoll(s.c_str(), &end, 10);
        if (end && *end == '\0' && !s.empty()) return Value::Int64(v);
      }
      break;
    case DataType::kFloat64:
      if (is_bool()) return Value::Float64(AsBool() ? 1.0 : 0.0);
      if (is_int64()) return Value::Float64(static_cast<double>(AsInt64()));
      if (is_string()) {
        char* end = nullptr;
        const std::string& s = AsString();
        double v = std::strtod(s.c_str(), &end);
        if (end && *end == '\0' && !s.empty()) return Value::Float64(v);
      }
      break;
    case DataType::kString:
      if (is_bool()) return Value::String(AsBool() ? "true" : "false");
      if (is_int64()) return Value::String(StrCat(AsInt64()));
      if (is_float64()) return Value::String(FormatDouble(AsFloat64()));
      break;
  }
  return Status::TypeError(
      StrCat("cannot cast ", ToString(), " to ", DataTypeName(target)));
}

namespace {
int TypeRank(const Value& v) {
  if (v.is_null()) return 0;
  if (v.is_bool()) return 1;
  if (v.is_numeric()) return 2;
  return 3;  // string
}
template <typename T>
int Cmp(T a, T b) {
  return a < b ? -1 : (a > b ? 1 : 0);
}
}  // namespace

int Value::Compare(const Value& other) const {
  int ra = TypeRank(*this), rb = TypeRank(other);
  if (ra != rb) return Cmp(ra, rb);
  switch (ra) {
    case 0:
      return 0;  // both null
    case 1:
      return Cmp<int>(AsBool(), other.AsBool());
    case 2:
      if (is_int64() && other.is_int64()) return Cmp(AsInt64(), other.AsInt64());
      return Cmp(AsDouble(), other.AsDouble());
    default:
      return Cmp<int>(AsString().compare(other.AsString()), 0);
  }
}

uint64_t Value::Hash() const {
  if (is_null()) return 0x6E756C6CULL;
  if (is_bool()) return AsBool() ? 0x74727565ULL : 0x66616C73ULL;
  if (is_numeric()) {
    // Hash numerically so Int64(3) and Float64(3.0) collide, matching ==.
    double d = AsDouble();
    if (is_int64() || d == std::floor(d)) {
      // Integral value: hash the integer bits.
      return HashInt64(static_cast<uint64_t>(
          is_int64() ? AsInt64() : static_cast<int64_t>(d)));
    }
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    return HashInt64(bits);
  }
  return HashString(AsString());
}

std::string Value::ToString() const {
  if (is_null()) return "null";
  if (is_bool()) return AsBool() ? "true" : "false";
  if (is_int64()) return StrCat(AsInt64());
  if (is_float64()) return FormatDouble(AsFloat64());
  return StrCat("\"", EscapeString(AsString()), "\"");
}

}  // namespace nexus
