#include "types/datatype.h"

#include "common/str_util.h"

namespace nexus {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kBool:
      return "bool";
    case DataType::kInt64:
      return "int64";
    case DataType::kFloat64:
      return "float64";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

Result<DataType> DataTypeFromName(const std::string& name) {
  if (name == "bool") return DataType::kBool;
  if (name == "int64") return DataType::kInt64;
  if (name == "float64") return DataType::kFloat64;
  if (name == "string") return DataType::kString;
  return Status::InvalidArgument(StrCat("unknown data type name: ", name));
}

Result<DataType> CommonNumericType(DataType a, DataType b) {
  if (!IsNumeric(a) || !IsNumeric(b)) {
    return Status::TypeError(StrCat("no common numeric type for ", DataTypeName(a),
                                    " and ", DataTypeName(b)));
  }
  if (a == DataType::kFloat64 || b == DataType::kFloat64) return DataType::kFloat64;
  return DataType::kInt64;
}

int FixedWidth(DataType t) {
  switch (t) {
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
    case DataType::kFloat64:
      return 8;
    case DataType::kString:
      return 16;  // pointer + length bookkeeping charged per value
  }
  return 8;
}

}  // namespace nexus
