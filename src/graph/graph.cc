#include "graph/graph.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <queue>
#include <set>
#include <unordered_map>

#include "common/str_util.h"
#include "telemetry/telemetry.h"

namespace nexus {
namespace graph {

CsrGraph CsrGraph::FromEdges(const std::vector<int64_t>& src,
                             const std::vector<int64_t>& dst) {
  CsrGraph g;
  // Compact ids: sort distinct originals so compact order is deterministic.
  std::set<int64_t> ids(src.begin(), src.end());
  ids.insert(dst.begin(), dst.end());
  g.original_id_.assign(ids.begin(), ids.end());
  std::unordered_map<int64_t, int64_t> compact;
  compact.reserve(g.original_id_.size());
  for (size_t i = 0; i < g.original_id_.size(); ++i) {
    compact[g.original_id_[i]] = static_cast<int64_t>(i);
  }
  int64_t n = g.num_nodes();
  g.offsets_.assign(static_cast<size_t>(n) + 1, 0);
  for (int64_t s : src) g.offsets_[static_cast<size_t>(compact[s]) + 1]++;
  for (size_t i = 1; i < g.offsets_.size(); ++i) g.offsets_[i] += g.offsets_[i - 1];
  g.adj_.resize(src.size());
  std::vector<int64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (size_t e = 0; e < src.size(); ++e) {
    int64_t u = compact[src[e]];
    g.adj_[static_cast<size_t>(cursor[static_cast<size_t>(u)]++)] = compact[dst[e]];
  }
  return g;
}

Result<CsrGraph> CsrGraph::FromTable(const Table& edges, const std::string& src_col,
                                     const std::string& dst_col) {
  NEXUS_ASSIGN_OR_RETURN(int sc, edges.schema()->FindFieldOrError(src_col));
  NEXUS_ASSIGN_OR_RETURN(int dc, edges.schema()->FindFieldOrError(dst_col));
  if (edges.schema()->field(sc).type != DataType::kInt64 ||
      edges.schema()->field(dc).type != DataType::kInt64) {
    return Status::TypeError("edge endpoints must be int64");
  }
  if (edges.column(sc).has_nulls() || edges.column(dc).has_nulls()) {
    return Status::InvalidArgument("edge endpoints may not be null");
  }
  return FromEdges(edges.column(sc).ints(), edges.column(dc).ints());
}

PageRankResult PageRank(const CsrGraph& g, const PageRankOptions& opts) {
  telemetry::SpanGuard span(telemetry::kCategoryEngine, "graph.PageRank");
  span.AddCounter("nodes", g.num_nodes());
  span.AddCounter("edges", g.num_edges());
  PageRankResult out;
  int64_t n = g.num_nodes();
  if (n == 0) return out;
  out.rank.assign(static_cast<size_t>(n), 1.0 / static_cast<double>(n));
  std::vector<double> next(static_cast<size_t>(n));
  for (int64_t iter = 0; iter < opts.max_iters; ++iter) {
    double dangling = 0.0;
    for (int64_t u = 0; u < n; ++u) {
      if (g.out_degree(u) == 0) dangling += out.rank[static_cast<size_t>(u)];
    }
    double base = (1.0 - opts.damping) / static_cast<double>(n) +
                  opts.damping * dangling / static_cast<double>(n);
    std::fill(next.begin(), next.end(), base);
    for (int64_t u = 0; u < n; ++u) {
      int64_t deg = g.out_degree(u);
      if (deg == 0) continue;
      double share = opts.damping * out.rank[static_cast<size_t>(u)] /
                     static_cast<double>(deg);
      for (const int64_t* v = g.neighbors_begin(u); v != g.neighbors_end(u); ++v) {
        next[static_cast<size_t>(*v)] += share;
      }
    }
    double delta = 0.0;
    for (int64_t u = 0; u < n; ++u) {
      delta += std::fabs(next[static_cast<size_t>(u)] - out.rank[static_cast<size_t>(u)]);
    }
    out.rank.swap(next);
    out.final_delta = delta;
    ++out.iterations;
    if (delta < opts.epsilon) break;
  }
  return out;
}

std::vector<int64_t> Bfs(const CsrGraph& g, int64_t source) {
  std::vector<int64_t> level(static_cast<size_t>(g.num_nodes()), -1);
  if (source < 0 || source >= g.num_nodes()) return level;
  std::queue<int64_t> frontier;
  level[static_cast<size_t>(source)] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    int64_t u = frontier.front();
    frontier.pop();
    for (const int64_t* v = g.neighbors_begin(u); v != g.neighbors_end(u); ++v) {
      if (level[static_cast<size_t>(*v)] < 0) {
        level[static_cast<size_t>(*v)] = level[static_cast<size_t>(u)] + 1;
        frontier.push(*v);
      }
    }
  }
  return level;
}

Result<std::vector<double>> ShortestPaths(const CsrGraph& g, int64_t source,
                                          const std::vector<double>& weights) {
  if (static_cast<int64_t>(weights.size()) != g.num_edges()) {
    return Status::InvalidArgument(
        StrCat("expected ", g.num_edges(), " edge weights, got ", weights.size()));
  }
  for (double w : weights) {
    if (w < 0) return Status::InvalidArgument("negative edge weight");
  }
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(static_cast<size_t>(g.num_nodes()), inf);
  if (source < 0 || source >= g.num_nodes()) return dist;
  using Item = std::pair<double, int64_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[static_cast<size_t>(source)] = 0.0;
  pq.emplace(0.0, source);
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<size_t>(u)]) continue;
    const int64_t* begin = g.neighbors_begin(u);
    for (const int64_t* v = begin; v != g.neighbors_end(u); ++v) {
      size_t edge_idx = static_cast<size_t>(
          (begin - g.neighbors_begin(0)) + (v - begin));
      double nd = d + weights[edge_idx];
      if (nd < dist[static_cast<size_t>(*v)]) {
        dist[static_cast<size_t>(*v)] = nd;
        pq.emplace(nd, *v);
      }
    }
  }
  return dist;
}

std::vector<int64_t> ConnectedComponents(const CsrGraph& g) {
  int64_t n = g.num_nodes();
  std::vector<int64_t> parent(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) parent[static_cast<size_t>(i)] = i;
  std::function<int64_t(int64_t)> find = [&](int64_t x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  auto unite = [&](int64_t a, int64_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);
    parent[static_cast<size_t>(b)] = a;  // smaller id wins → stable labels
  };
  for (int64_t u = 0; u < n; ++u) {
    for (const int64_t* v = g.neighbors_begin(u); v != g.neighbors_end(u); ++v) {
      unite(u, *v);
    }
  }
  std::vector<int64_t> label(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) label[static_cast<size_t>(i)] = find(i);
  return label;
}

int64_t CountTriangles(const CsrGraph& g) {
  int64_t n = g.num_nodes();
  // Undirected neighbor sets, deduplicated, self-loops dropped.
  std::vector<std::vector<int64_t>> nbrs(static_cast<size_t>(n));
  for (int64_t u = 0; u < n; ++u) {
    for (const int64_t* v = g.neighbors_begin(u); v != g.neighbors_end(u); ++v) {
      if (*v == u) continue;
      nbrs[static_cast<size_t>(u)].push_back(*v);
      nbrs[static_cast<size_t>(*v)].push_back(u);
    }
  }
  for (auto& list : nbrs) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  // Count each triangle once via the ordered-intersection method.
  int64_t triangles = 0;
  for (int64_t u = 0; u < n; ++u) {
    const auto& nu = nbrs[static_cast<size_t>(u)];
    for (int64_t v : nu) {
      if (v <= u) continue;
      const auto& nv = nbrs[static_cast<size_t>(v)];
      // Intersect neighbors greater than v.
      size_t i = 0, j = 0;
      while (i < nu.size() && j < nv.size()) {
        if (nu[i] < nv[j]) {
          ++i;
        } else if (nu[i] > nv[j]) {
          ++j;
        } else {
          if (nu[i] > v) ++triangles;
          ++i;
          ++j;
        }
      }
    }
  }
  return triangles;
}

}  // namespace graph
}  // namespace nexus
