#include "graph/graph.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <queue>
#include <set>
#include <unordered_map>

#include "algebra/kernels.h"
#include "algebra/semiring.h"
#include "common/str_util.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "types/schema.h"

namespace nexus {
namespace graph {

namespace {

void CountLowered(const char* op) {
  telemetry::MetricsRegistry::Global().counter(op)->Increment();
  telemetry::MetricsRegistry::Global().counter("algebra.ops_lowered")->Increment();
}

// The graph as an associative array: entry (u, v) → 1.0 per directed edge,
// in CSR adjacency order — Join matches preserve this order, which is what
// keeps the algebra-routed PageRank fold bit-identical to the native
// scatter loop (contributions land per target in (u-ascending, adjacency)
// order, exactly as the scatter visits them).
Result<algebra::AssocArray> EdgesAssoc(const CsrGraph& g) {
  std::vector<linalg::Triplet> trips;
  trips.reserve(static_cast<size_t>(g.num_edges()));
  for (int64_t u = 0; u < g.num_nodes(); ++u) {
    for (const int64_t* v = g.neighbors_begin(u); v != g.neighbors_end(u); ++v) {
      trips.push_back(linalg::Triplet{u, *v, 1.0});
    }
  }
  return algebra::AssocArray::FromTriplets(trips, "u", "v", "w");
}

// One PageRank power-iteration step on the semi-ring kernels: the rank
// propagation is an SpMV over plus_times — Join(shares, edges)⊗ multiplies
// each share by the edge's 1 and Union⊕ with the dense base vector folds
// base-first, then contributions — byte-identical to fill(next, base) plus
// the += scatter below.
Result<std::vector<double>> PageRankStepViaAlgebra(
    const CsrGraph& g, const algebra::AssocArray& edges,
    const std::vector<double>& rank, double base, double damping, int64_t n) {
  const algebra::Semiring* pt = algebra::FindSemiring("plus_times");
  std::vector<int64_t> us;
  std::vector<double> shares;
  for (int64_t u = 0; u < n; ++u) {
    int64_t deg = g.out_degree(u);
    if (deg == 0) continue;
    us.push_back(u);
    shares.push_back(damping * rank[static_cast<size_t>(u)] /
                     static_cast<double>(deg));
  }
  NEXUS_ASSIGN_OR_RETURN(
      SchemaPtr ss, Schema::Make({Field::Attr("u", DataType::kInt64),
                                  Field::Attr("r", DataType::kFloat64)}));
  NEXUS_ASSIGN_OR_RETURN(
      TablePtr st, Table::Make(ss, {Column::FromInt64(std::move(us)),
                                    Column::FromFloat64(std::move(shares))}));
  NEXUS_ASSIGN_OR_RETURN(algebra::AssocArray share_arr,
                         algebra::AssocArray::Wrap(std::move(st), 1));
  NEXUS_ASSIGN_OR_RETURN(algebra::AssocArray joined,
                         algebra::Join(share_arr, edges, *pt));
  NEXUS_ASSIGN_OR_RETURN(algebra::AssocArray contrib,
                         algebra::ExtProject(joined, {"v"}));
  NEXUS_ASSIGN_OR_RETURN(
      algebra::AssocArray base_arr,
      algebra::AssocArray::FromDenseVector(
          std::vector<double>(static_cast<size_t>(n), base), "v", "r"));
  NEXUS_ASSIGN_OR_RETURN(algebra::AssocArray merged,
                         algebra::Union(base_arr, contrib, *pt));
  std::vector<double> next(static_cast<size_t>(n), base);
  const auto& keys = merged.key_column(0).ints();
  const auto& vals = merged.value_column().doubles();
  for (int64_t e = 0; e < merged.num_entries(); ++e) {
    int64_t v = keys[static_cast<size_t>(e)];
    if (v < 0 || v >= n) return Status::IndexError("PageRank node out of range");
    next[static_cast<size_t>(v)] = vals[static_cast<size_t>(e)];
  }
  return next;
}

// BFS as iterated (min,+) relaxation: a frontier of levels Joins the edge
// array (level ⊗ 1 = level + 1 under min_plus) and Reduce⊕ keeps the min
// candidate per target; already-settled nodes are dropped. Levels are exact
// small integers, so the result is identical to the native queue BFS.
Result<std::vector<int64_t>> BfsViaAlgebra(const CsrGraph& g, int64_t source) {
  std::vector<int64_t> level(static_cast<size_t>(g.num_nodes()), -1);
  if (source < 0 || source >= g.num_nodes()) return level;
  CountLowered("algebra.bfs_lowered");
  const algebra::Semiring* mp = algebra::FindSemiring("min_plus");
  NEXUS_ASSIGN_OR_RETURN(algebra::AssocArray edges, EdgesAssoc(g));
  level[static_cast<size_t>(source)] = 0;
  std::vector<int64_t> frontier_nodes = {source};
  std::vector<double> frontier_levels = {0.0};
  while (!frontier_nodes.empty()) {
    NEXUS_ASSIGN_OR_RETURN(
        SchemaPtr fs, Schema::Make({Field::Attr("u", DataType::kInt64),
                                    Field::Attr("lvl", DataType::kFloat64)}));
    NEXUS_ASSIGN_OR_RETURN(
        TablePtr ft,
        Table::Make(fs, {Column::FromInt64(std::move(frontier_nodes)),
                         Column::FromFloat64(std::move(frontier_levels))}));
    NEXUS_ASSIGN_OR_RETURN(algebra::AssocArray frontier,
                           algebra::AssocArray::Wrap(std::move(ft), 1));
    NEXUS_ASSIGN_OR_RETURN(algebra::AssocArray joined,
                           algebra::Join(frontier, edges, *mp));
    frontier_nodes = {};
    frontier_levels = {};
    if (joined.num_entries() == 0) break;
    NEXUS_ASSIGN_OR_RETURN(algebra::AssocArray cand,
                           algebra::Reduce(joined, {"v"}, *mp));
    const auto& vs = cand.key_column(0).ints();
    const auto& lv = cand.value_column().doubles();
    for (int64_t e = 0; e < cand.num_entries(); ++e) {
      int64_t v = vs[static_cast<size_t>(e)];
      if (v < 0 || v >= g.num_nodes()) {
        return Status::IndexError("BFS node out of range");
      }
      if (level[static_cast<size_t>(v)] >= 0) continue;  // settled
      level[static_cast<size_t>(v)] =
          static_cast<int64_t>(lv[static_cast<size_t>(e)]);
      frontier_nodes.push_back(v);
      frontier_levels.push_back(lv[static_cast<size_t>(e)]);
    }
  }
  return level;
}

}  // namespace

CsrGraph CsrGraph::FromEdges(const std::vector<int64_t>& src,
                             const std::vector<int64_t>& dst) {
  CsrGraph g;
  // Compact ids: sort distinct originals so compact order is deterministic.
  std::set<int64_t> ids(src.begin(), src.end());
  ids.insert(dst.begin(), dst.end());
  g.original_id_.assign(ids.begin(), ids.end());
  std::unordered_map<int64_t, int64_t> compact;
  compact.reserve(g.original_id_.size());
  for (size_t i = 0; i < g.original_id_.size(); ++i) {
    compact[g.original_id_[i]] = static_cast<int64_t>(i);
  }
  int64_t n = g.num_nodes();
  g.offsets_.assign(static_cast<size_t>(n) + 1, 0);
  for (int64_t s : src) g.offsets_[static_cast<size_t>(compact[s]) + 1]++;
  for (size_t i = 1; i < g.offsets_.size(); ++i) g.offsets_[i] += g.offsets_[i - 1];
  g.adj_.resize(src.size());
  std::vector<int64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (size_t e = 0; e < src.size(); ++e) {
    int64_t u = compact[src[e]];
    g.adj_[static_cast<size_t>(cursor[static_cast<size_t>(u)]++)] = compact[dst[e]];
  }
  return g;
}

Result<CsrGraph> CsrGraph::FromTable(const Table& edges, const std::string& src_col,
                                     const std::string& dst_col) {
  NEXUS_ASSIGN_OR_RETURN(int sc, edges.schema()->FindFieldOrError(src_col));
  NEXUS_ASSIGN_OR_RETURN(int dc, edges.schema()->FindFieldOrError(dst_col));
  if (edges.schema()->field(sc).type != DataType::kInt64 ||
      edges.schema()->field(dc).type != DataType::kInt64) {
    return Status::TypeError("edge endpoints must be int64");
  }
  if (edges.column(sc).has_nulls() || edges.column(dc).has_nulls()) {
    return Status::InvalidArgument("edge endpoints may not be null");
  }
  return FromEdges(edges.column(sc).ints(), edges.column(dc).ints());
}

PageRankResult PageRank(const CsrGraph& g, const PageRankOptions& opts) {
  telemetry::SpanGuard span(telemetry::kCategoryEngine, "graph.PageRank");
  span.AddCounter("nodes", g.num_nodes());
  span.AddCounter("edges", g.num_edges());
  PageRankResult out;
  int64_t n = g.num_nodes();
  if (n == 0) return out;
  out.rank.assign(static_cast<size_t>(n), 1.0 / static_cast<double>(n));
  std::vector<double> next(static_cast<size_t>(n));
  // Algebra routing: build the edge associative array once; each iteration's
  // propagation runs as Join⊕/Union⊕ (falls back to the native scatter on
  // any kernel refusal — results are byte-identical either way).
  algebra::AssocArray edges_assoc;
  bool lowered = algebra::SemiringLoweringEnabled();
  if (lowered) {
    Result<algebra::AssocArray> ea = EdgesAssoc(g);
    lowered = ea.ok();
    if (lowered) {
      edges_assoc = ea.MoveValue();
      CountLowered("algebra.pagerank_lowered");
    }
  }
  for (int64_t iter = 0; iter < opts.max_iters; ++iter) {
    double dangling = 0.0;
    for (int64_t u = 0; u < n; ++u) {
      if (g.out_degree(u) == 0) dangling += out.rank[static_cast<size_t>(u)];
    }
    double base = (1.0 - opts.damping) / static_cast<double>(n) +
                  opts.damping * dangling / static_cast<double>(n);
    bool stepped = false;
    if (lowered) {
      Result<std::vector<double>> via = PageRankStepViaAlgebra(
          g, edges_assoc, out.rank, base, opts.damping, n);
      if (via.ok()) {
        next = via.MoveValue();
        stepped = true;
      }
    }
    if (!stepped) {
      std::fill(next.begin(), next.end(), base);
      for (int64_t u = 0; u < n; ++u) {
        int64_t deg = g.out_degree(u);
        if (deg == 0) continue;
        double share = opts.damping * out.rank[static_cast<size_t>(u)] /
                       static_cast<double>(deg);
        for (const int64_t* v = g.neighbors_begin(u); v != g.neighbors_end(u);
             ++v) {
          next[static_cast<size_t>(*v)] += share;
        }
      }
    }
    double delta = 0.0;
    for (int64_t u = 0; u < n; ++u) {
      delta += std::fabs(next[static_cast<size_t>(u)] - out.rank[static_cast<size_t>(u)]);
    }
    out.rank.swap(next);
    out.final_delta = delta;
    ++out.iterations;
    if (delta < opts.epsilon) break;
  }
  return out;
}

std::vector<int64_t> Bfs(const CsrGraph& g, int64_t source) {
  if (algebra::SemiringLoweringEnabled()) {
    Result<std::vector<int64_t>> via = BfsViaAlgebra(g, source);
    if (via.ok()) return via.MoveValue();
  }
  std::vector<int64_t> level(static_cast<size_t>(g.num_nodes()), -1);
  if (source < 0 || source >= g.num_nodes()) return level;
  std::queue<int64_t> frontier;
  level[static_cast<size_t>(source)] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    int64_t u = frontier.front();
    frontier.pop();
    for (const int64_t* v = g.neighbors_begin(u); v != g.neighbors_end(u); ++v) {
      if (level[static_cast<size_t>(*v)] < 0) {
        level[static_cast<size_t>(*v)] = level[static_cast<size_t>(u)] + 1;
        frontier.push(*v);
      }
    }
  }
  return level;
}

Result<std::vector<double>> ShortestPaths(const CsrGraph& g, int64_t source,
                                          const std::vector<double>& weights) {
  if (static_cast<int64_t>(weights.size()) != g.num_edges()) {
    return Status::InvalidArgument(
        StrCat("expected ", g.num_edges(), " edge weights, got ", weights.size()));
  }
  for (double w : weights) {
    if (w < 0) return Status::InvalidArgument("negative edge weight");
  }
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(static_cast<size_t>(g.num_nodes()), inf);
  if (source < 0 || source >= g.num_nodes()) return dist;
  using Item = std::pair<double, int64_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[static_cast<size_t>(source)] = 0.0;
  pq.emplace(0.0, source);
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<size_t>(u)]) continue;
    const int64_t* begin = g.neighbors_begin(u);
    for (const int64_t* v = begin; v != g.neighbors_end(u); ++v) {
      size_t edge_idx = static_cast<size_t>(
          (begin - g.neighbors_begin(0)) + (v - begin));
      double nd = d + weights[edge_idx];
      if (nd < dist[static_cast<size_t>(*v)]) {
        dist[static_cast<size_t>(*v)] = nd;
        pq.emplace(nd, *v);
      }
    }
  }
  return dist;
}

std::vector<int64_t> ConnectedComponents(const CsrGraph& g) {
  int64_t n = g.num_nodes();
  std::vector<int64_t> parent(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) parent[static_cast<size_t>(i)] = i;
  std::function<int64_t(int64_t)> find = [&](int64_t x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  auto unite = [&](int64_t a, int64_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);
    parent[static_cast<size_t>(b)] = a;  // smaller id wins → stable labels
  };
  for (int64_t u = 0; u < n; ++u) {
    for (const int64_t* v = g.neighbors_begin(u); v != g.neighbors_end(u); ++v) {
      unite(u, *v);
    }
  }
  std::vector<int64_t> label(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) label[static_cast<size_t>(i)] = find(i);
  return label;
}

int64_t CountTriangles(const CsrGraph& g) {
  int64_t n = g.num_nodes();
  // Undirected neighbor sets, deduplicated, self-loops dropped.
  std::vector<std::vector<int64_t>> nbrs(static_cast<size_t>(n));
  for (int64_t u = 0; u < n; ++u) {
    for (const int64_t* v = g.neighbors_begin(u); v != g.neighbors_end(u); ++v) {
      if (*v == u) continue;
      nbrs[static_cast<size_t>(u)].push_back(*v);
      nbrs[static_cast<size_t>(*v)].push_back(u);
    }
  }
  for (auto& list : nbrs) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  // Count each triangle once via the ordered-intersection method.
  int64_t triangles = 0;
  for (int64_t u = 0; u < n; ++u) {
    const auto& nu = nbrs[static_cast<size_t>(u)];
    for (int64_t v : nu) {
      if (v <= u) continue;
      const auto& nv = nbrs[static_cast<size_t>(v)];
      // Intersect neighbors greater than v.
      size_t i = 0, j = 0;
      while (i < nu.size() && j < nv.size()) {
        if (nu[i] < nv[j]) {
          ++i;
        } else if (nu[i] > nv[j]) {
          ++j;
        } else {
          if (nu[i] > v) ++triangles;
          ++i;
          ++j;
        }
      }
    }
  }
  return triangles;
}

}  // namespace graph
}  // namespace nexus
