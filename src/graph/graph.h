// Graph analytics engine — the framework's graph-processing substrate
// (exercising the paper's "graph analytics … require repeated execution
// until convergence" motivation for control iteration).
//
// CSR adjacency over compacted node ids, with the classic analytics kernels:
// PageRank, BFS, single-source shortest paths, connected components, and
// triangle counting.
#ifndef NEXUS_GRAPH_GRAPH_H_
#define NEXUS_GRAPH_GRAPH_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "types/table.h"

namespace nexus {
namespace graph {

/// Directed graph in CSR form. Node ids are compacted to [0, num_nodes);
/// original ids are kept for translation back to collections.
class CsrGraph {
 public:
  /// Builds from parallel src/dst vectors of original (sparse) node ids.
  static CsrGraph FromEdges(const std::vector<int64_t>& src,
                            const std::vector<int64_t>& dst);

  /// Builds from an edge table's two int64 columns.
  static Result<CsrGraph> FromTable(const Table& edges, const std::string& src_col,
                                    const std::string& dst_col);

  int64_t num_nodes() const { return static_cast<int64_t>(original_id_.size()); }
  int64_t num_edges() const { return static_cast<int64_t>(adj_.size()); }

  /// Out-neighbors of compact node u.
  const int64_t* neighbors_begin(int64_t u) const {
    return adj_.data() + offsets_[static_cast<size_t>(u)];
  }
  const int64_t* neighbors_end(int64_t u) const {
    return adj_.data() + offsets_[static_cast<size_t>(u) + 1];
  }
  int64_t out_degree(int64_t u) const {
    return offsets_[static_cast<size_t>(u) + 1] - offsets_[static_cast<size_t>(u)];
  }

  /// Original id of compact node u.
  int64_t original_id(int64_t u) const { return original_id_[static_cast<size_t>(u)]; }

 private:
  std::vector<int64_t> offsets_;      // size num_nodes + 1
  std::vector<int64_t> adj_;          // compact dst ids
  std::vector<int64_t> original_id_;  // compact id -> original id (sorted)
};

/// Options and result for PageRank.
struct PageRankOptions {
  double damping = 0.85;
  int64_t max_iters = 50;
  double epsilon = 1e-9;  ///< L1 convergence threshold
};
struct PageRankResult {
  std::vector<double> rank;  ///< per compact node id
  int64_t iterations = 0;
  double final_delta = 0.0;
};

/// Power iteration with uniform dangling-mass redistribution; ranks sum to 1.
PageRankResult PageRank(const CsrGraph& g, const PageRankOptions& opts);

/// BFS levels from `source` (compact id); unreachable nodes get -1.
std::vector<int64_t> Bfs(const CsrGraph& g, int64_t source);

/// Dijkstra over per-edge weights aligned with the CSR adjacency order
/// (weights.size() == num_edges). Unreachable nodes get +inf.
Result<std::vector<double>> ShortestPaths(const CsrGraph& g, int64_t source,
                                          const std::vector<double>& weights);

/// Weakly connected component label per node (labels are the smallest
/// compact node id in the component).
std::vector<int64_t> ConnectedComponents(const CsrGraph& g);

/// Triangle count treating edges as undirected (each triangle counted once).
int64_t CountTriangles(const CsrGraph& g);

}  // namespace graph
}  // namespace nexus

#endif  // NEXUS_GRAPH_GRAPH_H_
