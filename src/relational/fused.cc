#include "relational/fused.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/parallel.h"
#include "common/str_util.h"
#include "core/schema_inference.h"
#include "expr/vm.h"
#include "relational/engine.h"
#include "telemetry/telemetry.h"

namespace nexus {
namespace relational {

namespace {

constexpr char kFusedAggPrefix[] = "__fused_agg";

// Every lowering failure is a refusal: the per-operator fallback owns both
// execution and error reporting for chains we cannot prove byte-identical.
Status Refuse(const char* why) {
  return Status::Unsupported(StrCat("fusion: ", why));
}

// One working column tracked symbolically: its schema field plus the
// expression computing it over the SOURCE schema.
struct SymCol {
  Field field;
  ExprPtr expr;
};

}  // namespace

Result<FusedPipeline> CompileFusedPipeline(const std::vector<const Plan*>& ops,
                                           const SchemaPtr& source_schema) {
  std::vector<SymCol> cols;
  cols.reserve(static_cast<size_t>(source_schema->num_fields()));
  for (const Field& f : source_schema->fields()) {
    cols.push_back({f, Expr::ColumnRef(f.name)});
  }
  SchemaPtr work = source_schema;
  std::vector<ExprPtr> preds;
  FusedPipeline fp;

  auto mapping = [&cols] {
    std::vector<std::pair<std::string, ExprPtr>> m;
    m.reserve(cols.size());
    for (const SymCol& c : cols) m.emplace_back(c.field.name, c.expr);
    return m;
  };
  auto rebuild_work = [&]() -> Status {
    std::vector<Field> fields;
    fields.reserve(cols.size());
    for (const SymCol& c : cols) fields.push_back(c.field);
    Result<SchemaPtr> s = Schema::Make(std::move(fields));
    if (!s.ok()) return Refuse("working schema invalid");
    work = s.MoveValue();
    return Status::OK();
  };

  for (size_t oi = 0; oi < ops.size(); ++oi) {
    const Plan& op = *ops[oi];
    switch (op.kind()) {
      case OpKind::kSelect: {
        const ExprPtr& pred = op.As<SelectOp>().predicate;
        if (pred == nullptr) return Refuse("null predicate");
        Result<DataType> t = InferExprType(*pred, *work);
        if (!t.ok() || t.ValueOrDie() != DataType::kBool) {
          return Refuse("predicate not boolean");
        }
        ExprPtr subst = pred->SubstituteColumns(mapping());
        Result<DataType> ts = InferExprType(*subst, *source_schema);
        if (!ts.ok() || ts.ValueOrDie() != DataType::kBool) {
          return Refuse("predicate type drift");
        }
        preds.push_back(std::move(subst));
        break;
      }
      case OpKind::kExtend: {
        for (const auto& [name, def] : op.As<ExtendOp>().defs) {
          if (def == nullptr) return Refuse("null extend definition");
          Result<DataType> t = InferExprType(*def, *work);
          if (!t.ok()) return Refuse("extend inference failed");
          ExprPtr subst = def->SubstituteColumns(mapping());
          Result<DataType> ts = InferExprType(*subst, *source_schema);
          if (!ts.ok() || ts.ValueOrDie() != t.ValueOrDie()) {
            return Refuse("extend type drift");
          }
          cols.push_back({Field::Attr(name, t.ValueOrDie()), std::move(subst)});
          NEXUS_RETURN_NOT_OK(rebuild_work());
        }
        break;
      }
      case OpKind::kProject: {
        std::vector<SymCol> next;
        for (const std::string& name : op.As<ProjectOp>().columns) {
          int i = work->FindField(name);
          if (i < 0) return Refuse("project of unknown column");
          next.push_back(cols[static_cast<size_t>(i)]);
        }
        cols = std::move(next);
        NEXUS_RETURN_NOT_OK(rebuild_work());
        break;
      }
      case OpKind::kAggregate: {
        if (oi + 1 != ops.size()) return Refuse("aggregate mid-chain");
        const auto& agg = op.As<AggregateOp>();
        std::vector<SymCol> narrow;
        AggregateOp spec;
        spec.group_by = agg.group_by;
        for (const std::string& g : agg.group_by) {
          int i = work->FindField(g);
          if (i < 0) return Refuse("group key not visible");
          narrow.push_back(cols[static_cast<size_t>(i)]);
        }
        for (size_t a = 0; a < agg.aggs.size(); ++a) {
          const AggSpec& as = agg.aggs[a];
          AggSpec ns;
          ns.func = as.func;
          ns.output_name = as.output_name;
          if (as.input == nullptr) {
            if (as.func != AggFunc::kCount) {
              return Refuse("input-free non-count aggregate");
            }
          } else {
            Result<DataType> t = InferExprType(*as.input, *work);
            if (!t.ok()) return Refuse("aggregate input inference failed");
            if (!AggResultType(as.func, t.ValueOrDie()).ok()) {
              return Refuse("un-aggregatable input type");
            }
            ExprPtr subst = as.input->SubstituteColumns(mapping());
            Result<DataType> ts = InferExprType(*subst, *source_schema);
            if (!ts.ok() || ts.ValueOrDie() != t.ValueOrDie()) {
              return Refuse("aggregate input type drift");
            }
            std::string nm = StrCat(kFusedAggPrefix, a);
            narrow.push_back({Field::Attr(nm, t.ValueOrDie()), std::move(subst)});
            ns.input = Expr::ColumnRef(nm);
          }
          spec.aggs.push_back(std::move(ns));
        }
        if (narrow.empty()) {
          // A zero-column narrow table cannot carry a row count (pure
          // count(*) with no group keys); leave it to the normal path.
          return Refuse("aggregate with no narrow columns");
        }
        cols = std::move(narrow);
        NEXUS_RETURN_NOT_OK(rebuild_work());
        fp.has_agg = true;
        fp.agg_spec = std::move(spec);
        break;
      }
      default:
        return Refuse("unsupported operator kind");
    }
  }
  if (cols.empty()) return Refuse("empty output schema");

  // Compile predicates and outputs as one shared program: CSE runs across
  // the whole pipeline, and the program cache makes repeat executes free.
  std::vector<ExprPtr> exprs = preds;
  exprs.reserve(preds.size() + cols.size());
  for (const SymCol& c : cols) exprs.push_back(c.expr);
  NEXUS_ASSIGN_OR_RETURN(ExprProgramPtr prog,
                         GetOrCompileProgram(exprs, *source_schema));
  // Defensive: the program's inferred output types must be the schema the
  // chain materializes (they are — both derive from InferExprType).
  for (size_t j = 0; j < cols.size(); ++j) {
    if (prog->out_types[preds.size() + j] != cols[j].field.type) {
      return Refuse("compiled output type drift");
    }
  }
  fp.program = std::move(prog);
  fp.num_preds = static_cast<int>(preds.size());
  fp.out_schema = work;
  fp.fused_ops = static_cast<int>(ops.size());
  return fp;
}

namespace {

// Ascending lanes of the current morsel where every predicate output is
// valid and true (SQL WHERE: null is not true).
void SelectLanes(const ExprVM& vm, int num_preds, std::vector<int64_t>* lanes) {
  lanes->clear();
  const int64_t len = vm.len();
  for (int64_t i = 0; i < len; ++i) {
    bool pass = true;
    for (int p = 0; p < num_preds; ++p) {
      const VMReg& r = vm.out_reg(p);
      if (!r.LaneValid(i) || r.b[i] == 0) {
        pass = false;
        break;
      }
    }
    if (pass) lanes->push_back(i);
  }
}

}  // namespace

Result<TablePtr> ExecuteFused(const FusedPipeline& fp, const TablePtr& source) {
  telemetry::SpanGuard span(telemetry::kCategoryEngine, "rel.Fused");
  const int64_t n = source->num_rows();
  span.AddCounter("rows_in", n);
  span.AddCounter("fused_ops", fp.fused_ops);
  span.AddCounter("compiled", 1);
  const int nout = fp.out_schema->num_fields();
  const int64_t grain = kMorselRows;
  const int64_t morsels = n == 0 ? 0 : (n + grain - 1) / grain;
  std::vector<Column> cols;
  cols.reserve(static_cast<size_t>(nout));
  for (int j = 0; j < nout; ++j) cols.emplace_back(fp.out_schema->field(j).type);

  if (morsels <= 1 || GetThreadCount() == 1) {
    // One VM for the whole scan: constants materialize once, buffers are
    // reused across morsels.
    ExprVM vm(fp.program.get());
    vm.Bind(*source, std::min<int64_t>(n, grain));
    std::vector<int64_t> lanes;
    for (int64_t b = 0; b < n; b += grain) {
      vm.Run(b, std::min<int64_t>(b + grain, n));
      if (fp.num_preds == 0) {
        for (int j = 0; j < nout; ++j) {
          vm.AppendOutput(fp.num_preds + j, &cols[static_cast<size_t>(j)]);
        }
      } else {
        SelectLanes(vm, fp.num_preds, &lanes);
        for (int j = 0; j < nout; ++j) {
          vm.AppendOutputLanes(fp.num_preds + j, lanes,
                               &cols[static_cast<size_t>(j)]);
        }
      }
    }
  } else {
    // Morsel-local pieces stitched in morsel order reproduce the sequential
    // scan exactly (the PR 2 determinism contract).
    std::vector<std::vector<Column>> parts(static_cast<size_t>(morsels));
    ParallelFor(n, grain, [&](int64_t b, int64_t e) {
      ExprVM vm(fp.program.get());
      vm.Bind(*source, e - b);
      vm.Run(b, e);
      std::vector<Column>& piece = parts[static_cast<size_t>(b / grain)];
      piece.reserve(static_cast<size_t>(nout));
      for (int j = 0; j < nout; ++j) {
        piece.emplace_back(fp.out_schema->field(j).type);
      }
      if (fp.num_preds == 0) {
        for (int j = 0; j < nout; ++j) {
          vm.AppendOutput(fp.num_preds + j, &piece[static_cast<size_t>(j)]);
        }
      } else {
        std::vector<int64_t> lanes;
        SelectLanes(vm, fp.num_preds, &lanes);
        for (int j = 0; j < nout; ++j) {
          vm.AppendOutputLanes(fp.num_preds + j, lanes,
                               &piece[static_cast<size_t>(j)]);
        }
      }
    });
    for (const std::vector<Column>& piece : parts) {
      for (int j = 0; j < nout; ++j) {
        NEXUS_RETURN_NOT_OK(cols[static_cast<size_t>(j)].AppendColumn(
            piece[static_cast<size_t>(j)]));
      }
    }
  }
  NEXUS_ASSIGN_OR_RETURN(TablePtr pre,
                         Table::Make(fp.out_schema, std::move(cols)));
  span.AddCounter("rows", pre->num_rows());
  if (!fp.has_agg) return pre;
  // The narrow aggregate runs as a nested rel.HashAgg span.
  return HashAggregate(pre, fp.agg_spec);
}

}  // namespace relational
}  // namespace nexus
