// Columnar relational engine — the framework's stand-in for a SQL back end
// (the paper's SQLServer-class provider).
//
// Unlike the reference executor's boxed row-at-a-time interpretation, this
// engine works on typed column vectors: hashes are computed column-wise,
// join/aggregate keys take an int64 fast path, and filters produce selection
// vectors without materializing Values. The engine exposes plain functions
// over tables; plan translation lives in the provider layer.
#ifndef NEXUS_RELATIONAL_ENGINE_H_
#define NEXUS_RELATIONAL_ENGINE_H_

#include <vector>

#include "core/plan.h"
#include "expr/expr.h"
#include "types/table.h"

namespace nexus {
namespace relational {

/// Filters rows by a boolean predicate (vectorized evaluation; null → drop).
Result<TablePtr> Filter(const TablePtr& input, const Expr& predicate);

/// Keeps the named columns, in order.
Result<TablePtr> Project(const TablePtr& input,
                         const std::vector<std::string>& columns);

/// Appends computed columns.
Result<TablePtr> Extend(
    const TablePtr& input,
    const std::vector<std::pair<std::string, ExprPtr>>& defs);

/// Hash equi-join with optional residual predicate. Output layout matches
/// the algebra's join rule: left fields then right non-key fields.
Result<TablePtr> HashJoin(const TablePtr& left, const TablePtr& right,
                          const JoinOp& spec);

/// Grouped hash aggregation (first-seen group order).
Result<TablePtr> HashAggregate(const TablePtr& input, const AggregateOp& spec);

/// Multi-key stable sort.
Result<TablePtr> Sort(const TablePtr& input, const std::vector<SortKey>& keys);

/// Row range.
Result<TablePtr> Limit(const TablePtr& input, int64_t limit, int64_t offset);

/// Duplicate elimination over all columns (keeps first occurrence).
Result<TablePtr> Distinct(const TablePtr& input);

/// Concatenation (schemas must match exactly).
Result<TablePtr> Union(const TablePtr& left, const TablePtr& right);

/// Schema-only rename.
Result<TablePtr> Rename(
    const TablePtr& input,
    const std::vector<std::pair<std::string, std::string>>& mapping);

/// Per-row hash of the key columns (int64 fast path; generic otherwise).
/// Exposed for tests and the aggregate/join internals.
Result<std::vector<uint64_t>> HashRows(const Table& input,
                                       const std::vector<int>& key_cols);

}  // namespace relational
}  // namespace nexus

#endif  // NEXUS_RELATIONAL_ENGINE_H_
