// Fused morsel pipelines: executes a matched Filter→Extend/Project→Aggregate
// chain (optimizer/fusion.h) as ONE loop over the source table — per morsel,
// a single compiled expression program evaluates every predicate and output
// column, a selection register picks the surviving lanes, and survivors are
// gathered straight into the result columns. No intermediate table is
// materialized per operator.
//
// Lowering works symbolically: each working column is tracked as an
// expression over the SOURCE schema (Extend definitions are inlined via
// SubstituteColumns), so the whole chain becomes [predicates..., outputs...]
// compiled together — common subtrees between predicates and outputs compile
// once (bytecode.h CSE). An Aggregate at the top of the chain is lowered to
// a narrow table (group columns + precomputed aggregate inputs) fed to the
// regular relational::HashAggregate.
//
// Byte-identity with the per-operator path:
//   - expression values are row-local and the compiled program is
//     bit-identical to the interpreter (bytecode.h contract), so gathering
//     selected lanes of source-row evaluations equals evaluating over the
//     filtered intermediate tables;
//   - inlining an Extend definition is transparent because every compiled
//     subtree's runtime type equals its static type (same contract), which
//     is exactly the type Extend's materialized column would have;
//   - the narrow aggregate input sees the same row count, values, group
//     hashes, and first-seen order as the unfused HashAggregate, so its
//     sequential/parallel threshold and float accumulation order agree.
// Lowering REFUSES (kUnsupported) anything it cannot prove — the caller
// falls back to the per-operator path, which also owns error reporting for
// invalid plans.
//
// Compiled programs are cached by the process-wide expression program cache
// (bytecode.h), so a provider re-executing a cached plan fingerprint skips
// compilation entirely (ExplainAnalyze's compile stats line shows this).
#ifndef NEXUS_RELATIONAL_FUSED_H_
#define NEXUS_RELATIONAL_FUSED_H_

#include <vector>

#include "core/plan.h"
#include "expr/bytecode.h"
#include "types/table.h"

namespace nexus {
namespace relational {

/// A lowered chain, ready to execute against tables with the source schema.
struct FusedPipeline {
  /// [predicates..., output columns...] over the source schema.
  ExprProgramPtr program;
  int num_preds = 0;
  /// Schema of the pre-aggregate fused result (the narrow aggregate input
  /// when has_agg, else the chain's final schema).
  SchemaPtr out_schema;
  bool has_agg = false;
  /// Aggregate spec rewritten over `out_schema` (inputs are column refs to
  /// precomputed "__fused_agg<i>" columns).
  AggregateOp agg_spec;
  int fused_ops = 0;
};

/// Lowers `ops` (bottom-up, from optimizer/fusion.h matching) against the
/// source schema. Returns kUnsupported when the chain cannot be proven
/// byte-identical — callers fall back to per-operator execution.
Result<FusedPipeline> CompileFusedPipeline(const std::vector<const Plan*>& ops,
                                           const SchemaPtr& source_schema);

/// Runs the fused morsel loop over `source` (schema must equal the one the
/// pipeline was lowered against). Emits one "rel.Fused" engine span with
/// fused_ops/compiled counters instead of per-operator spans.
Result<TablePtr> ExecuteFused(const FusedPipeline& fp, const TablePtr& source);

}  // namespace relational
}  // namespace nexus

#endif  // NEXUS_RELATIONAL_FUSED_H_
