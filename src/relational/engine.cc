#include "relational/engine.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"
#include "common/str_util.h"
#include "core/schema_inference.h"
#include "expr/eval.h"

namespace nexus {
namespace relational {

namespace {

// Typed row equality on key columns; falls back to boxed comparison for
// mixed numeric types.
bool KeysEqual(const Table& a, int64_t ar, const std::vector<int>& ac,
               const Table& b, int64_t br, const std::vector<int>& bc) {
  for (size_t k = 0; k < ac.size(); ++k) {
    const Column& ca = a.column(ac[k]);
    const Column& cb = b.column(bc[k]);
    bool na = ca.IsNull(ar), nb = cb.IsNull(br);
    if (na || nb) return false;  // SQL: null keys never join/group-match...
    if (ca.type() == cb.type()) {
      switch (ca.type()) {
        case DataType::kInt64:
          if (ca.ints()[static_cast<size_t>(ar)] != cb.ints()[static_cast<size_t>(br)]) {
            return false;
          }
          break;
        case DataType::kFloat64:
          if (ca.doubles()[static_cast<size_t>(ar)] !=
              cb.doubles()[static_cast<size_t>(br)]) {
            return false;
          }
          break;
        case DataType::kBool:
          if (ca.bools()[static_cast<size_t>(ar)] != cb.bools()[static_cast<size_t>(br)]) {
            return false;
          }
          break;
        case DataType::kString:
          if (ca.strings()[static_cast<size_t>(ar)] !=
              cb.strings()[static_cast<size_t>(br)]) {
            return false;
          }
          break;
      }
    } else if (ca.GetValue(ar) != cb.GetValue(br)) {
      return false;
    }
  }
  return true;
}

// Group-key equality treats nulls as equal to each other (SQL GROUP BY).
bool GroupKeysEqual(const Table& t, int64_t ar, int64_t br,
                    const std::vector<int>& cols) {
  for (int c : cols) {
    const Column& col = t.column(c);
    bool na = col.IsNull(ar), nb = col.IsNull(br);
    if (na != nb) return false;
    if (na) continue;
    if (col.GetValue(ar) != col.GetValue(br)) return false;
  }
  return true;
}

constexpr uint64_t kNullHash = 0x6E756C6CULL;

}  // namespace

Result<std::vector<uint64_t>> HashRows(const Table& input,
                                       const std::vector<int>& key_cols) {
  std::vector<uint64_t> hashes(static_cast<size_t>(input.num_rows()),
                               0x9E3779B97F4A7C15ULL);
  for (int c : key_cols) {
    const Column& col = input.column(c);
    switch (col.type()) {
      case DataType::kInt64: {
        const auto& v = col.ints();
        for (size_t r = 0; r < v.size(); ++r) {
          uint64_t h = col.IsNull(static_cast<int64_t>(r))
                           ? kNullHash
                           : HashInt64(static_cast<uint64_t>(v[r]));
          hashes[r] = HashCombine(hashes[r], h);
        }
        break;
      }
      case DataType::kFloat64: {
        for (int64_t r = 0; r < col.size(); ++r) {
          hashes[static_cast<size_t>(r)] = HashCombine(
              hashes[static_cast<size_t>(r)],
              col.IsNull(r) ? kNullHash : col.GetValue(r).Hash());
        }
        break;
      }
      case DataType::kBool: {
        const auto& v = col.bools();
        for (size_t r = 0; r < v.size(); ++r) {
          uint64_t h = col.IsNull(static_cast<int64_t>(r))
                           ? kNullHash
                           : (v[r] ? 0x74727565ULL : 0x66616C73ULL);
          hashes[r] = HashCombine(hashes[r], h);
        }
        break;
      }
      case DataType::kString: {
        const auto& v = col.strings();
        for (size_t r = 0; r < v.size(); ++r) {
          uint64_t h = col.IsNull(static_cast<int64_t>(r)) ? kNullHash
                                                           : HashString(v[r]);
          hashes[r] = HashCombine(hashes[r], h);
        }
        break;
      }
    }
  }
  return hashes;
}

Result<TablePtr> Filter(const TablePtr& input, const Expr& predicate) {
  NEXUS_ASSIGN_OR_RETURN(std::vector<int64_t> sel,
                         EvalPredicate(predicate, *input));
  return input->TakeRows(sel);
}

Result<TablePtr> Project(const TablePtr& input,
                         const std::vector<std::string>& columns) {
  std::vector<Field> fields;
  std::vector<Column> cols;
  for (const std::string& name : columns) {
    NEXUS_ASSIGN_OR_RETURN(int i, input->schema()->FindFieldOrError(name));
    fields.push_back(input->schema()->field(i));
    cols.push_back(input->column(i));
  }
  NEXUS_ASSIGN_OR_RETURN(SchemaPtr schema, Schema::Make(std::move(fields)));
  return Table::Make(schema, std::move(cols));
}

Result<TablePtr> Extend(
    const TablePtr& input,
    const std::vector<std::pair<std::string, ExprPtr>>& defs) {
  std::vector<Field> fields = input->schema()->fields();
  std::vector<Column> cols = input->columns();
  TablePtr working = input;
  for (const auto& [name, expr] : defs) {
    NEXUS_ASSIGN_OR_RETURN(Column c, EvalExprVector(*expr, *working));
    fields.push_back(Field::Attr(name, c.type()));
    cols.push_back(std::move(c));
    NEXUS_ASSIGN_OR_RETURN(SchemaPtr s, Schema::Make(fields));
    NEXUS_ASSIGN_OR_RETURN(working, Table::Make(s, cols));
  }
  return working;
}

Result<TablePtr> HashJoin(const TablePtr& left, const TablePtr& right,
                          const JoinOp& spec) {
  std::vector<int> lk, rk;
  for (const std::string& k : spec.left_keys) {
    NEXUS_ASSIGN_OR_RETURN(int i, left->schema()->FindFieldOrError(k));
    lk.push_back(i);
  }
  for (const std::string& k : spec.right_keys) {
    NEXUS_ASSIGN_OR_RETURN(int i, right->schema()->FindFieldOrError(k));
    rk.push_back(i);
  }
  NEXUS_ASSIGN_OR_RETURN(std::vector<uint64_t> lh, HashRows(*left, lk));
  NEXUS_ASSIGN_OR_RETURN(std::vector<uint64_t> rh, HashRows(*right, rk));

  // Build side: hash → right row ids (chained buckets).
  std::unordered_map<uint64_t, std::vector<int64_t>> table;
  table.reserve(static_cast<size_t>(right->num_rows()));
  auto row_has_null_key = [](const Table& t, int64_t r, const std::vector<int>& cols) {
    for (int c : cols) {
      if (t.column(c).IsNull(r)) return true;
    }
    return false;
  };
  for (int64_t r = 0; r < right->num_rows(); ++r) {
    if (row_has_null_key(*right, r, rk)) continue;
    table[rh[static_cast<size_t>(r)]].push_back(r);
  }

  // Probe: collect surviving (left, right) row pairs.
  std::vector<int64_t> li, ri;
  bool cross = lk.empty();  // keys-free join (residual-only): cross product
  for (int64_t l = 0; l < left->num_rows(); ++l) {
    if (cross) {
      for (int64_t r = 0; r < right->num_rows(); ++r) {
        li.push_back(l);
        ri.push_back(r);
      }
      continue;
    }
    if (row_has_null_key(*left, l, lk)) continue;
    auto it = table.find(lh[static_cast<size_t>(l)]);
    if (it == table.end()) continue;
    for (int64_t r : it->second) {
      if (KeysEqual(*left, l, lk, *right, r, rk)) {
        li.push_back(l);
        ri.push_back(r);
      }
    }
  }

  // Residual filtering over the candidate pairs (vectorized).
  if (spec.residual != nullptr && !li.empty()) {
    std::vector<Field> combined_fields = left->schema()->fields();
    std::vector<Column> combined_cols;
    for (const Column& c : left->columns()) combined_cols.push_back(c.Take(li));
    for (int c = 0; c < right->num_columns(); ++c) {
      const Field& f = right->schema()->field(c);
      if (left->schema()->FindField(f.name) >= 0) continue;
      combined_fields.push_back(f);
      combined_cols.push_back(right->column(c).Take(ri));
    }
    NEXUS_ASSIGN_OR_RETURN(SchemaPtr cs, Schema::Make(std::move(combined_fields)));
    NEXUS_ASSIGN_OR_RETURN(TablePtr candidates,
                           Table::Make(cs, std::move(combined_cols)));
    NEXUS_ASSIGN_OR_RETURN(std::vector<int64_t> keep,
                           EvalPredicate(*spec.residual, *candidates));
    std::vector<int64_t> li2, ri2;
    li2.reserve(keep.size());
    ri2.reserve(keep.size());
    for (int64_t k : keep) {
      li2.push_back(li[static_cast<size_t>(k)]);
      ri2.push_back(ri[static_cast<size_t>(k)]);
    }
    li.swap(li2);
    ri.swap(ri2);
  }

  if (spec.type == JoinType::kSemi || spec.type == JoinType::kAnti) {
    std::vector<uint8_t> matched(static_cast<size_t>(left->num_rows()), 0);
    for (int64_t l : li) matched[static_cast<size_t>(l)] = 1;
    std::vector<int64_t> keep;
    bool want = spec.type == JoinType::kSemi;
    for (int64_t l = 0; l < left->num_rows(); ++l) {
      if ((matched[static_cast<size_t>(l)] != 0) == want) keep.push_back(l);
    }
    return left->TakeRows(keep);
  }

  // Output schema: left fields + right non-key fields (dimension tags drop).
  std::vector<Field> fields = left->schema()->fields();
  std::vector<int> right_out;
  for (int c = 0; c < right->num_columns(); ++c) {
    const std::string& n = right->schema()->field(c).name;
    if (std::find(spec.right_keys.begin(), spec.right_keys.end(), n) !=
        spec.right_keys.end()) {
      continue;
    }
    Field f = right->schema()->field(c);
    f.is_dimension = false;
    fields.push_back(f);
    right_out.push_back(c);
  }
  NEXUS_ASSIGN_OR_RETURN(SchemaPtr schema, Schema::Make(std::move(fields)));

  std::vector<Column> out_cols;
  for (const Column& c : left->columns()) out_cols.push_back(c.Take(li));
  for (int c : right_out) out_cols.push_back(right->column(c).Take(ri));

  if (spec.type == JoinType::kLeft) {
    std::vector<uint8_t> matched(static_cast<size_t>(left->num_rows()), 0);
    for (int64_t l : li) matched[static_cast<size_t>(l)] = 1;
    std::vector<int64_t> unmatched;
    for (int64_t l = 0; l < left->num_rows(); ++l) {
      if (!matched[static_cast<size_t>(l)]) unmatched.push_back(l);
    }
    if (!unmatched.empty()) {
      for (int c = 0; c < left->num_columns(); ++c) {
        NEXUS_RETURN_NOT_OK(
            out_cols[static_cast<size_t>(c)].AppendColumn(left->column(c).Take(unmatched)));
      }
      for (size_t c = 0; c < right_out.size(); ++c) {
        Column& col = out_cols[static_cast<size_t>(left->num_columns()) + c];
        for (size_t i = 0; i < unmatched.size(); ++i) col.AppendNull();
      }
    }
  }
  return Table::Make(schema, std::move(out_cols));
}

namespace {

// Typed accumulator mirroring the algebra's aggregate semantics.
struct TypedAggState {
  int64_t count = 0;
  int64_t isum = 0;
  double fsum = 0.0;
  bool has_extreme = false;
  double fmin = 0.0, fmax = 0.0;
  int64_t imin = 0, imax = 0;  // exact int64 extremes
  std::string smin, smax;

  void UpdateNumeric(double v, int64_t iv, bool is_int) {
    ++count;
    if (is_int) isum += iv;
    fsum += v;
    if (!has_extreme) {
      fmin = fmax = v;
      imin = imax = iv;
      has_extreme = true;
    } else {
      fmin = std::min(fmin, v);
      fmax = std::max(fmax, v);
      imin = std::min(imin, iv);
      imax = std::max(imax, iv);
    }
  }
  void UpdateString(const std::string& s) {
    ++count;
    if (!has_extreme) {
      smin = smax = s;
      has_extreme = true;
    } else {
      if (s < smin) smin = s;
      if (s > smax) smax = s;
    }
  }
};

Result<Value> FinishTyped(const TypedAggState& st, AggFunc func, DataType in) {
  switch (func) {
    case AggFunc::kCount:
      return Value::Int64(st.count);
    case AggFunc::kSum:
      if (st.count == 0) return Value::Null();
      return in == DataType::kInt64 ? Value::Int64(st.isum)
                                    : Value::Float64(st.fsum);
    case AggFunc::kAvg:
      if (st.count == 0) return Value::Null();
      return Value::Float64(st.fsum / static_cast<double>(st.count));
    case AggFunc::kMin:
      if (!st.has_extreme) return Value::Null();
      if (in == DataType::kString) return Value::String(st.smin);
      return in == DataType::kInt64 ? Value::Int64(st.imin)
                                    : Value::Float64(st.fmin);
    case AggFunc::kMax:
      if (!st.has_extreme) return Value::Null();
      if (in == DataType::kString) return Value::String(st.smax);
      return in == DataType::kInt64 ? Value::Int64(st.imax)
                                    : Value::Float64(st.fmax);
  }
  return Status::Internal("unhandled aggregate");
}

}  // namespace

Result<TablePtr> HashAggregate(const TablePtr& input, const AggregateOp& spec) {
  std::vector<int> group_cols;
  for (const std::string& g : spec.group_by) {
    NEXUS_ASSIGN_OR_RETURN(int i, input->schema()->FindFieldOrError(g));
    group_cols.push_back(i);
  }
  // Pre-evaluate aggregate inputs.
  std::vector<Column> agg_inputs;
  std::vector<DataType> agg_types;
  for (const AggSpec& a : spec.aggs) {
    if (a.input != nullptr) {
      NEXUS_ASSIGN_OR_RETURN(Column c, EvalExprVector(*a.input, *input));
      agg_types.push_back(c.type());
      agg_inputs.push_back(std::move(c));
    } else {
      if (a.func != AggFunc::kCount) {
        return Status::PlanError("only count may omit its input expression");
      }
      agg_types.push_back(DataType::kInt64);
      agg_inputs.emplace_back(DataType::kInt64);
    }
  }
  NEXUS_ASSIGN_OR_RETURN(std::vector<uint64_t> hashes, HashRows(*input, group_cols));
  std::unordered_map<uint64_t, std::vector<size_t>> buckets;
  std::vector<int64_t> rep_row;
  std::vector<std::vector<TypedAggState>> states;
  for (int64_t r = 0; r < input->num_rows(); ++r) {
    uint64_t h = hashes[static_cast<size_t>(r)];
    std::vector<size_t>& bucket = buckets[h];
    size_t group = SIZE_MAX;
    for (size_t g : bucket) {
      if (GroupKeysEqual(*input, rep_row[g], r, group_cols)) {
        group = g;
        break;
      }
    }
    if (group == SIZE_MAX) {
      group = states.size();
      bucket.push_back(group);
      rep_row.push_back(r);
      states.emplace_back(spec.aggs.size());
    }
    std::vector<TypedAggState>& gs = states[group];
    for (size_t a = 0; a < spec.aggs.size(); ++a) {
      if (spec.aggs[a].input == nullptr) {
        ++gs[a].count;
        continue;
      }
      const Column& c = agg_inputs[a];
      if (c.IsNull(r)) continue;
      switch (c.type()) {
        case DataType::kInt64:
          gs[a].UpdateNumeric(static_cast<double>(c.ints()[static_cast<size_t>(r)]),
                              c.ints()[static_cast<size_t>(r)], true);
          break;
        case DataType::kFloat64:
          gs[a].UpdateNumeric(c.doubles()[static_cast<size_t>(r)], 0, false);
          break;
        case DataType::kString:
          gs[a].UpdateString(c.strings()[static_cast<size_t>(r)]);
          break;
        case DataType::kBool:
          return Status::TypeError("cannot aggregate bool input");
      }
    }
  }
  // SQL semantics: a global aggregate over empty input yields one row.
  if (group_cols.empty() && states.empty()) {
    rep_row.push_back(0);  // unused: no group columns to gather
    states.emplace_back(spec.aggs.size());
  }
  // Output schema.
  std::vector<Field> fields;
  for (int c : group_cols) fields.push_back(input->schema()->field(c));
  for (size_t a = 0; a < spec.aggs.size(); ++a) {
    NEXUS_ASSIGN_OR_RETURN(DataType t,
                           AggResultType(spec.aggs[a].func, agg_types[a]));
    fields.push_back(Field::Attr(spec.aggs[a].output_name, t));
  }
  NEXUS_ASSIGN_OR_RETURN(SchemaPtr schema, Schema::Make(std::move(fields)));
  // Group key columns: gather representative rows.
  std::vector<Column> out_cols;
  for (int c : group_cols) out_cols.push_back(input->column(c).Take(rep_row));
  for (size_t a = 0; a < spec.aggs.size(); ++a) {
    Column col(schema->field(static_cast<int>(group_cols.size() + a)).type);
    col.Reserve(static_cast<int64_t>(states.size()));
    for (const auto& gs : states) {
      NEXUS_ASSIGN_OR_RETURN(Value v,
                             FinishTyped(gs[a], spec.aggs[a].func, agg_types[a]));
      NEXUS_RETURN_NOT_OK(col.Append(v));
    }
    out_cols.push_back(std::move(col));
  }
  return Table::Make(schema, std::move(out_cols));
}

Result<TablePtr> Sort(const TablePtr& input, const std::vector<SortKey>& keys) {
  std::vector<int> key_cols;
  for (const SortKey& k : keys) {
    NEXUS_ASSIGN_OR_RETURN(int i, input->schema()->FindFieldOrError(k.column));
    key_cols.push_back(i);
  }
  std::vector<int64_t> order(static_cast<size_t>(input->num_rows()));
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);
  // Typed comparators per key (nulls first, matching Value::Compare).
  std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    for (size_t k = 0; k < keys.size(); ++k) {
      const Column& c = input->column(key_cols[k]);
      bool na = c.IsNull(a), nb = c.IsNull(b);
      int cmp = 0;
      if (na || nb) {
        cmp = (na == nb) ? 0 : (na ? -1 : 1);
      } else {
        switch (c.type()) {
          case DataType::kInt64: {
            int64_t va = c.ints()[static_cast<size_t>(a)];
            int64_t vb = c.ints()[static_cast<size_t>(b)];
            cmp = va < vb ? -1 : (va > vb ? 1 : 0);
            break;
          }
          case DataType::kFloat64: {
            double va = c.doubles()[static_cast<size_t>(a)];
            double vb = c.doubles()[static_cast<size_t>(b)];
            cmp = va < vb ? -1 : (va > vb ? 1 : 0);
            break;
          }
          case DataType::kBool:
            cmp = static_cast<int>(c.bools()[static_cast<size_t>(a)]) -
                  static_cast<int>(c.bools()[static_cast<size_t>(b)]);
            break;
          case DataType::kString:
            cmp = c.strings()[static_cast<size_t>(a)].compare(
                c.strings()[static_cast<size_t>(b)]);
            cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
            break;
        }
      }
      if (cmp != 0) return keys[k].ascending ? cmp < 0 : cmp > 0;
    }
    return false;
  });
  return input->TakeRows(order);
}

Result<TablePtr> Limit(const TablePtr& input, int64_t limit, int64_t offset) {
  return input->Slice(offset, limit);
}

Result<TablePtr> Distinct(const TablePtr& input) {
  std::vector<int> all;
  for (int i = 0; i < input->num_columns(); ++i) all.push_back(i);
  NEXUS_ASSIGN_OR_RETURN(std::vector<uint64_t> hashes, HashRows(*input, all));
  std::unordered_map<uint64_t, std::vector<int64_t>> buckets;
  std::vector<int64_t> keep;
  for (int64_t r = 0; r < input->num_rows(); ++r) {
    std::vector<int64_t>& bucket = buckets[hashes[static_cast<size_t>(r)]];
    bool dup = false;
    for (int64_t prev : bucket) {
      if (GroupKeysEqual(*input, prev, r, all)) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      bucket.push_back(r);
      keep.push_back(r);
    }
  }
  return input->TakeRows(keep);
}

Result<TablePtr> Union(const TablePtr& left, const TablePtr& right) {
  if (!left->schema()->Equals(*right->schema())) {
    return Status::TypeError("union schema mismatch");
  }
  std::vector<Column> cols = left->columns();
  for (size_t c = 0; c < cols.size(); ++c) {
    NEXUS_RETURN_NOT_OK(cols[c].AppendColumn(right->column(static_cast<int>(c))));
  }
  return Table::Make(left->schema(), std::move(cols));
}

Result<TablePtr> Rename(
    const TablePtr& input,
    const std::vector<std::pair<std::string, std::string>>& mapping) {
  std::vector<Field> fields = input->schema()->fields();
  for (const auto& [from, to] : mapping) {
    NEXUS_ASSIGN_OR_RETURN(int i, input->schema()->FindFieldOrError(from));
    fields[static_cast<size_t>(i)].name = to;
  }
  NEXUS_ASSIGN_OR_RETURN(SchemaPtr schema, Schema::Make(std::move(fields)));
  return Table::Make(schema, input->columns());
}

}  // namespace relational
}  // namespace nexus
