#include "relational/engine.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"
#include "common/memory.h"
#include "common/parallel.h"
#include "common/str_util.h"
#include "core/schema_inference.h"
#include "exec/spill/spill.h"
#include "expr/eval.h"
#include "telemetry/telemetry.h"

namespace nexus {
namespace relational {

namespace {

// Typed row equality on key columns; falls back to boxed comparison for
// mixed numeric types.
bool KeysEqual(const Table& a, int64_t ar, const std::vector<int>& ac,
               const Table& b, int64_t br, const std::vector<int>& bc) {
  for (size_t k = 0; k < ac.size(); ++k) {
    const Column& ca = a.column(ac[k]);
    const Column& cb = b.column(bc[k]);
    bool na = ca.IsNull(ar), nb = cb.IsNull(br);
    if (na || nb) return false;  // SQL: null keys never join/group-match...
    if (ca.type() == cb.type()) {
      switch (ca.type()) {
        case DataType::kInt64:
          if (ca.ints()[static_cast<size_t>(ar)] != cb.ints()[static_cast<size_t>(br)]) {
            return false;
          }
          break;
        case DataType::kFloat64:
          if (ca.doubles()[static_cast<size_t>(ar)] !=
              cb.doubles()[static_cast<size_t>(br)]) {
            return false;
          }
          break;
        case DataType::kBool:
          if (ca.bools()[static_cast<size_t>(ar)] != cb.bools()[static_cast<size_t>(br)]) {
            return false;
          }
          break;
        case DataType::kString:
          if (ca.strings()[static_cast<size_t>(ar)] !=
              cb.strings()[static_cast<size_t>(br)]) {
            return false;
          }
          break;
      }
    } else if (ca.GetValue(ar) != cb.GetValue(br)) {
      return false;
    }
  }
  return true;
}

// Group-key equality treats nulls as equal to each other (SQL GROUP BY).
bool GroupKeysEqual(const Table& t, int64_t ar, int64_t br,
                    const std::vector<int>& cols) {
  for (int c : cols) {
    const Column& col = t.column(c);
    bool na = col.IsNull(ar), nb = col.IsNull(br);
    if (na != nb) return false;
    if (na) continue;
    if (col.GetValue(ar) != col.GetValue(br)) return false;
  }
  return true;
}

constexpr uint64_t kNullHash = 0x6E756C6CULL;

bool RowHasNullKey(const Table& t, int64_t r, const std::vector<int>& cols) {
  for (int c : cols) {
    if (t.column(c).IsNull(r)) return true;
  }
  return false;
}

// Approximate per-row cost of a chained hash-table build (map node + chain
// slot) and per-candidate cost of the (l, r) pair vectors — the operator
// working sets the type layer cannot meter on its own.
constexpr int64_t kBuildBytesPerRow = 48;
constexpr int64_t kBytesPerPair = 2 * static_cast<int64_t>(sizeof(int64_t));

// Out-of-core candidate-pair computation: Grace-partition both sides by
// their key hashes, build/probe each partition pair in memory, and emit
// pairs of ORIGINAL row indices. Identity argument: the in-memory probe
// emits pairs in lexicographic (l, r) order — left rows ascending, and each
// left row matches within exactly one bucket whose chain holds right rows
// ascending — and equal keys share a full hash, so every bucket lands
// intact in exactly one partition. Sorting the merged per-partition pairs
// by (l, r) therefore reproduces the in-memory pair order exactly, and the
// unchanged residual/semi/anti/left/gather tail does the rest.
Status SpillJoinPairs(const TablePtr& left, const TablePtr& right,
                      const std::vector<uint64_t>& lh,
                      const std::vector<uint64_t>& rh,
                      const std::vector<int>& lk, const std::vector<int>& rk,
                      std::vector<int64_t>* li, std::vector<int64_t>* ri,
                      telemetry::SpanGuard* span) {
  spill::PartitionedSpiller::Options opts;
  opts.budget_bytes = spill::SpillBudgetBytes();
  opts.tag = "join";
  spill::PartitionedSpiller spiller(&spill::SpillManager::Global(), opts);
  std::vector<std::pair<int64_t, int64_t>> pairs;
  ScopedCharge pair_charge;
  Status st = spiller.Run(
      {{left, &lh}, {right, &rh}},
      [&](const std::vector<TablePtr>& parts) -> Status {
        const Table& lp = *parts[0];
        const Table& rp = *parts[1];
        const auto& lrows = lp.column(lp.num_columns() - 2).ints();
        const auto& lhash = lp.column(lp.num_columns() - 1).ints();
        const auto& rrows = rp.column(rp.num_columns() - 2).ints();
        const auto& rhash = rp.column(rp.num_columns() - 1).ints();
        ScopedCharge build_charge;
        build_charge.Add(rp.num_rows() * kBuildBytesPerRow);
        std::unordered_map<uint64_t, std::vector<int64_t>> table;
        table.reserve(static_cast<size_t>(rp.num_rows()) + 1);
        for (int64_t r = 0; r < rp.num_rows(); ++r) {
          if (RowHasNullKey(rp, r, rk)) continue;
          table[static_cast<uint64_t>(rhash[static_cast<size_t>(r)])].push_back(r);
        }
        size_t before = pairs.size();
        for (int64_t l = 0; l < lp.num_rows(); ++l) {
          if (RowHasNullKey(lp, l, lk)) continue;
          auto it = table.find(static_cast<uint64_t>(lhash[static_cast<size_t>(l)]));
          if (it == table.end()) continue;
          for (int64_t r : it->second) {
            if (KeysEqual(lp, l, lk, rp, r, rk)) {
              pairs.emplace_back(lrows[static_cast<size_t>(l)],
                                 rrows[static_cast<size_t>(r)]);
            }
          }
        }
        pair_charge.Add(static_cast<int64_t>(pairs.size() - before) * kBytesPerPair);
        return Status::OK();
      });
  NEXUS_RETURN_NOT_OK(st);
  std::sort(pairs.begin(), pairs.end());
  li->reserve(pairs.size());
  ri->reserve(pairs.size());
  for (const auto& [l, r] : pairs) {
    li->push_back(l);
    ri->push_back(r);
  }
  span->AddCounter("spill_partitions", spiller.stats().partitions);
  span->AddCounter("spill_bytes", spiller.stats().bytes_spilled);
  return Status::OK();
}

}  // namespace

Result<std::vector<uint64_t>> HashRows(const Table& input,
                                       const std::vector<int>& key_cols) {
  const int64_t n = input.num_rows();
  std::vector<uint64_t> hashes(static_cast<size_t>(n), 0x9E3779B97F4A7C15ULL);
  // Each morsel owns a disjoint slot range of `hashes`, so the combine below
  // is race-free and the result is independent of the thread count.
  for (int c : key_cols) {
    const Column& col = input.column(c);
    switch (col.type()) {
      case DataType::kInt64: {
        const auto& v = col.ints();
        ParallelFor(n, kMorselRows, [&](int64_t b, int64_t e) {
          for (int64_t r = b; r < e; ++r) {
            uint64_t h =
                col.IsNull(r)
                    ? kNullHash
                    : HashInt64(static_cast<uint64_t>(v[static_cast<size_t>(r)]));
            hashes[static_cast<size_t>(r)] =
                HashCombine(hashes[static_cast<size_t>(r)], h);
          }
        });
        break;
      }
      case DataType::kFloat64: {
        ParallelFor(n, kMorselRows, [&](int64_t b, int64_t e) {
          for (int64_t r = b; r < e; ++r) {
            hashes[static_cast<size_t>(r)] = HashCombine(
                hashes[static_cast<size_t>(r)],
                col.IsNull(r) ? kNullHash : col.GetValue(r).Hash());
          }
        });
        break;
      }
      case DataType::kBool: {
        const auto& v = col.bools();
        ParallelFor(n, kMorselRows, [&](int64_t b, int64_t e) {
          for (int64_t r = b; r < e; ++r) {
            uint64_t h = col.IsNull(r)
                             ? kNullHash
                             : (v[static_cast<size_t>(r)] ? 0x74727565ULL
                                                          : 0x66616C73ULL);
            hashes[static_cast<size_t>(r)] =
                HashCombine(hashes[static_cast<size_t>(r)], h);
          }
        });
        break;
      }
      case DataType::kString: {
        const auto& v = col.strings();
        ParallelFor(n, kMorselRows, [&](int64_t b, int64_t e) {
          for (int64_t r = b; r < e; ++r) {
            uint64_t h = col.IsNull(r)
                             ? kNullHash
                             : HashString(v[static_cast<size_t>(r)]);
            hashes[static_cast<size_t>(r)] =
                HashCombine(hashes[static_cast<size_t>(r)], h);
          }
        });
        break;
      }
    }
  }
  return hashes;
}

Result<TablePtr> Filter(const TablePtr& input, const Expr& predicate) {
  // Kernel names stay short (SSO) so a disabled-tracing span costs only the
  // one atomic load inside SpanGuard — no allocation.
  telemetry::SpanGuard span(telemetry::kCategoryEngine, "rel.Filter");
  NEXUS_ASSIGN_OR_RETURN(std::vector<int64_t> sel,
                         EvalPredicate(predicate, *input));
  span.AddCounter("rows_in", input->num_rows());
  span.AddCounter("rows", static_cast<int64_t>(sel.size()));
  return input->TakeRows(sel);
}

Result<TablePtr> Project(const TablePtr& input,
                         const std::vector<std::string>& columns) {
  std::vector<Field> fields;
  std::vector<Column> cols;
  for (const std::string& name : columns) {
    NEXUS_ASSIGN_OR_RETURN(int i, input->schema()->FindFieldOrError(name));
    fields.push_back(input->schema()->field(i));
    cols.push_back(input->column(i));
  }
  NEXUS_ASSIGN_OR_RETURN(SchemaPtr schema, Schema::Make(std::move(fields)));
  return Table::Make(schema, std::move(cols));
}

Result<TablePtr> Extend(
    const TablePtr& input,
    const std::vector<std::pair<std::string, ExprPtr>>& defs) {
  std::vector<Field> fields = input->schema()->fields();
  std::vector<Column> cols = input->columns();
  TablePtr working = input;
  for (const auto& [name, expr] : defs) {
    NEXUS_ASSIGN_OR_RETURN(Column c, EvalExprVector(*expr, *working));
    fields.push_back(Field::Attr(name, c.type()));
    cols.push_back(std::move(c));
    NEXUS_ASSIGN_OR_RETURN(SchemaPtr s, Schema::Make(fields));
    NEXUS_ASSIGN_OR_RETURN(working, Table::Make(s, cols));
  }
  return working;
}

Result<TablePtr> HashJoin(const TablePtr& left, const TablePtr& right,
                          const JoinOp& spec) {
  telemetry::SpanGuard span(telemetry::kCategoryEngine, "rel.HashJoin");
  span.AddCounter("rows_left", left->num_rows());
  span.AddCounter("rows_right", right->num_rows());
  std::vector<int> lk, rk;
  for (const std::string& k : spec.left_keys) {
    NEXUS_ASSIGN_OR_RETURN(int i, left->schema()->FindFieldOrError(k));
    lk.push_back(i);
  }
  for (const std::string& k : spec.right_keys) {
    NEXUS_ASSIGN_OR_RETURN(int i, right->schema()->FindFieldOrError(k));
    rk.push_back(i);
  }
  NEXUS_ASSIGN_OR_RETURN(std::vector<uint64_t> lh, HashRows(*left, lk));
  NEXUS_ASSIGN_OR_RETURN(std::vector<uint64_t> rh, HashRows(*right, rk));

  const int64_t nl = left->num_rows();
  const int64_t nr = right->num_rows();

  std::vector<int64_t> li, ri;
  ScopedCharge working_set;  // released when the join returns
  bool cross = lk.empty();  // keys-free join (residual-only): cross product
  // Out-of-core path: when the estimated working set crosses the query's
  // budget (or the governor asked this query to shed memory), compute the
  // candidate pairs via Grace partitioning instead of one big build.
  bool spilled =
      !cross && nr > 0 &&
      spill::ShouldSpill(left->ByteSize() + right->ByteSize() +
                         nr * kBuildBytesPerRow);
  if (spilled) {
    NEXUS_RETURN_NOT_OK(
        SpillJoinPairs(left, right, lh, rh, lk, rk, &li, &ri, &span));
  } else if (cross) {
    // Pair (l, r) owns slot l*nr + r: exact-size allocation up front instead
    // of the old push_back assembly that reallocated O(log n) times on an
    // |L|·|R| output, and each left-row morsel fills disjoint slots.
    li.resize(static_cast<size_t>(nl * nr));
    ri.resize(static_cast<size_t>(nl * nr));
    int64_t rows_per_morsel =
        std::max<int64_t>(1, kMorselRows / std::max<int64_t>(1, nr));
    ParallelFor(nl, rows_per_morsel, [&](int64_t b, int64_t e) {
      for (int64_t l = b; l < e; ++l) {
        size_t base = static_cast<size_t>(l * nr);
        for (int64_t r = 0; r < nr; ++r) {
          li[base + static_cast<size_t>(r)] = l;
          ri[base + static_cast<size_t>(r)] = r;
        }
      }
    });
  } else {
    // Partitioned build: partition p owns every hash h with (h & mask) == p
    // and builds its chained-bucket table independently. A bucket lives in
    // exactly one partition and receives its rows in ascending row order, so
    // bucket chains are identical to the old single-threaded build.
    int parts = 1;
    while (parts < GetThreadCount() && parts < 64) parts *= 2;
    const uint64_t mask = static_cast<uint64_t>(parts - 1);
    working_set.Add(nr * kBuildBytesPerRow);
    std::vector<std::unordered_map<uint64_t, std::vector<int64_t>>> tables(
        static_cast<size_t>(parts));
    ParallelFor(parts, 1, [&](int64_t pb, int64_t pe) {
      for (int64_t p = pb; p < pe; ++p) {
        auto& table = tables[static_cast<size_t>(p)];
        table.reserve(static_cast<size_t>(nr / parts + 1));
        for (int64_t r = 0; r < nr; ++r) {
          uint64_t h = rh[static_cast<size_t>(r)];
          if ((h & mask) != static_cast<uint64_t>(p)) continue;
          if (RowHasNullKey(*right, r, rk)) continue;
          table[h].push_back(r);
        }
      }
    });

    // Probe: each morsel of left rows collects matches into its own pair
    // vectors; concatenating them in morsel order reproduces the sequential
    // (left-ascending, bucket-chain) pair order exactly.
    const int64_t grain = kMorselRows;
    const size_t morsels = static_cast<size_t>((nl + grain - 1) / grain);
    std::vector<std::vector<int64_t>> lparts(morsels), rparts(morsels);
    ParallelFor(nl, grain, [&](int64_t b, int64_t e) {
      std::vector<int64_t>& lo = lparts[static_cast<size_t>(b / grain)];
      std::vector<int64_t>& ro = rparts[static_cast<size_t>(b / grain)];
      for (int64_t l = b; l < e; ++l) {
        if (RowHasNullKey(*left, l, lk)) continue;
        uint64_t h = lh[static_cast<size_t>(l)];
        const auto& table = tables[static_cast<size_t>(h & mask)];
        auto it = table.find(h);
        if (it == table.end()) continue;
        for (int64_t r : it->second) {
          if (KeysEqual(*left, l, lk, *right, r, rk)) {
            lo.push_back(l);
            ro.push_back(r);
          }
        }
      }
    });
    size_t total = 0;
    for (const auto& p : lparts) total += p.size();
    working_set.Add(static_cast<int64_t>(total) * kBytesPerPair);
    li.reserve(total);
    ri.reserve(total);
    for (size_t m = 0; m < morsels; ++m) {
      li.insert(li.end(), lparts[m].begin(), lparts[m].end());
      ri.insert(ri.end(), rparts[m].begin(), rparts[m].end());
    }
  }

  // Residual filtering over the candidate pairs (vectorized).
  if (spec.residual != nullptr && !li.empty()) {
    std::vector<Field> combined_fields = left->schema()->fields();
    std::vector<Column> combined_cols;
    for (const Column& c : left->columns()) combined_cols.push_back(c.Take(li));
    for (int c = 0; c < right->num_columns(); ++c) {
      const Field& f = right->schema()->field(c);
      if (left->schema()->FindField(f.name) >= 0) continue;
      combined_fields.push_back(f);
      combined_cols.push_back(right->column(c).Take(ri));
    }
    NEXUS_ASSIGN_OR_RETURN(SchemaPtr cs, Schema::Make(std::move(combined_fields)));
    NEXUS_ASSIGN_OR_RETURN(TablePtr candidates,
                           Table::Make(cs, std::move(combined_cols)));
    NEXUS_ASSIGN_OR_RETURN(std::vector<int64_t> keep,
                           EvalPredicate(*spec.residual, *candidates));
    std::vector<int64_t> li2, ri2;
    li2.reserve(keep.size());
    ri2.reserve(keep.size());
    for (int64_t k : keep) {
      li2.push_back(li[static_cast<size_t>(k)]);
      ri2.push_back(ri[static_cast<size_t>(k)]);
    }
    li.swap(li2);
    ri.swap(ri2);
  }

  if (spec.type == JoinType::kSemi || spec.type == JoinType::kAnti) {
    std::vector<uint8_t> matched(static_cast<size_t>(nl), 0);
    for (int64_t l : li) matched[static_cast<size_t>(l)] = 1;
    std::vector<int64_t> keep;
    keep.reserve(static_cast<size_t>(nl));
    bool want = spec.type == JoinType::kSemi;
    for (int64_t l = 0; l < nl; ++l) {
      if ((matched[static_cast<size_t>(l)] != 0) == want) keep.push_back(l);
    }
    return left->TakeRows(keep);
  }

  // Output schema: left fields + right non-key fields (dimension tags drop).
  std::vector<Field> fields = left->schema()->fields();
  std::vector<int> right_out;
  for (int c = 0; c < right->num_columns(); ++c) {
    const std::string& n = right->schema()->field(c).name;
    if (std::find(spec.right_keys.begin(), spec.right_keys.end(), n) !=
        spec.right_keys.end()) {
      continue;
    }
    Field f = right->schema()->field(c);
    f.is_dimension = false;
    fields.push_back(f);
    right_out.push_back(c);
  }
  NEXUS_ASSIGN_OR_RETURN(SchemaPtr schema, Schema::Make(std::move(fields)));

  // Gather output columns in parallel: every task writes one pre-assigned
  // slot of out_cols, so completion order cannot reorder the result.
  const size_t ncols =
      static_cast<size_t>(left->num_columns()) + right_out.size();
  std::vector<Column> out_cols;
  out_cols.reserve(ncols);
  for (const Column& c : left->columns()) out_cols.emplace_back(c.type());
  for (int c : right_out) out_cols.emplace_back(right->column(c).type());
  std::vector<std::function<void()>> gathers;
  gathers.reserve(ncols);
  for (int c = 0; c < left->num_columns(); ++c) {
    gathers.push_back(
        [&, c] { out_cols[static_cast<size_t>(c)] = left->column(c).Take(li); });
  }
  for (size_t j = 0; j < right_out.size(); ++j) {
    gathers.push_back([&, j] {
      out_cols[static_cast<size_t>(left->num_columns()) + j] =
          right->column(right_out[j]).Take(ri);
    });
  }
  ParallelRun(gathers);

  if (spec.type == JoinType::kLeft) {
    std::vector<uint8_t> matched(static_cast<size_t>(nl), 0);
    for (int64_t l : li) matched[static_cast<size_t>(l)] = 1;
    std::vector<int64_t> unmatched;
    unmatched.reserve(static_cast<size_t>(nl));
    for (int64_t l = 0; l < nl; ++l) {
      if (!matched[static_cast<size_t>(l)]) unmatched.push_back(l);
    }
    if (!unmatched.empty()) {
      for (int c = 0; c < left->num_columns(); ++c) {
        NEXUS_RETURN_NOT_OK(
            out_cols[static_cast<size_t>(c)].AppendColumn(left->column(c).Take(unmatched)));
      }
      for (size_t c = 0; c < right_out.size(); ++c) {
        Column& col = out_cols[static_cast<size_t>(left->num_columns()) + c];
        col.Reserve(col.size() + static_cast<int64_t>(unmatched.size()));
        for (size_t i = 0; i < unmatched.size(); ++i) col.AppendNull();
      }
    }
  }
  return Table::Make(schema, std::move(out_cols));
}

namespace {

// Typed accumulator mirroring the algebra's aggregate semantics.
struct TypedAggState {
  int64_t count = 0;
  int64_t isum = 0;
  double fsum = 0.0;
  bool has_extreme = false;
  double fmin = 0.0, fmax = 0.0;
  int64_t imin = 0, imax = 0;  // exact int64 extremes
  std::string smin, smax;

  void UpdateNumeric(double v, int64_t iv, bool is_int) {
    ++count;
    if (is_int) isum += iv;
    fsum += v;
    if (!has_extreme) {
      fmin = fmax = v;
      imin = imax = iv;
      has_extreme = true;
    } else {
      fmin = std::min(fmin, v);
      fmax = std::max(fmax, v);
      imin = std::min(imin, iv);
      imax = std::max(imax, iv);
    }
  }
  void UpdateString(const std::string& s) {
    ++count;
    if (!has_extreme) {
      smin = smax = s;
      has_extreme = true;
    } else {
      if (s < smin) smin = s;
      if (s > smax) smax = s;
    }
  }
};

/// One hash partition's aggregation state (the sequential path uses a single
/// partition covering every hash).
struct AggPartition {
  std::unordered_map<uint64_t, std::vector<size_t>> buckets;
  std::vector<int64_t> rep_row;
  std::vector<std::vector<TypedAggState>> states;
};

/// Accumulates every row whose group hash satisfies (h & mask) == want into
/// `part`, scanning rows in ascending order. With mask == 0 this is exactly
/// the single-pass sequential aggregation. With a partition mask, a group —
/// whose rows all share one hash — is accumulated entirely by one partition
/// in the same ascending row order as the sequential pass, so per-group
/// state (including the order-sensitive float sums) is bit-identical for any
/// partition or thread count.
Status AccumulateGroups(const Table& input, const AggregateOp& spec,
                        const std::vector<int>& group_cols,
                        const std::vector<Column>& agg_inputs,
                        const std::vector<uint64_t>& hashes, uint64_t mask,
                        uint64_t want, AggPartition* part) {
  for (int64_t r = 0; r < input.num_rows(); ++r) {
    uint64_t h = hashes[static_cast<size_t>(r)];
    if ((h & mask) != want) continue;
    std::vector<size_t>& bucket = part->buckets[h];
    size_t group = SIZE_MAX;
    for (size_t g : bucket) {
      if (GroupKeysEqual(input, part->rep_row[g], r, group_cols)) {
        group = g;
        break;
      }
    }
    if (group == SIZE_MAX) {
      group = part->states.size();
      bucket.push_back(group);
      part->rep_row.push_back(r);
      part->states.emplace_back(spec.aggs.size());
    }
    std::vector<TypedAggState>& gs = part->states[group];
    for (size_t a = 0; a < spec.aggs.size(); ++a) {
      if (spec.aggs[a].input == nullptr) {
        ++gs[a].count;
        continue;
      }
      const Column& c = agg_inputs[a];
      if (c.IsNull(r)) continue;
      switch (c.type()) {
        case DataType::kInt64:
          gs[a].UpdateNumeric(static_cast<double>(c.ints()[static_cast<size_t>(r)]),
                              c.ints()[static_cast<size_t>(r)], true);
          break;
        case DataType::kFloat64:
          gs[a].UpdateNumeric(c.doubles()[static_cast<size_t>(r)], 0, false);
          break;
        case DataType::kString:
          gs[a].UpdateString(c.strings()[static_cast<size_t>(r)]);
          break;
        case DataType::kBool:
          return Status::TypeError("cannot aggregate bool input");
      }
    }
  }
  return Status::OK();
}

Result<Value> FinishTyped(const TypedAggState& st, AggFunc func, DataType in) {
  switch (func) {
    case AggFunc::kCount:
      return Value::Int64(st.count);
    case AggFunc::kSum:
      if (st.count == 0) return Value::Null();
      return in == DataType::kInt64 ? Value::Int64(st.isum)
                                    : Value::Float64(st.fsum);
    case AggFunc::kAvg:
      if (st.count == 0) return Value::Null();
      return Value::Float64(st.fsum / static_cast<double>(st.count));
    case AggFunc::kMin:
      if (!st.has_extreme) return Value::Null();
      if (in == DataType::kString) return Value::String(st.smin);
      return in == DataType::kInt64 ? Value::Int64(st.imin)
                                    : Value::Float64(st.fmin);
    case AggFunc::kMax:
      if (!st.has_extreme) return Value::Null();
      if (in == DataType::kString) return Value::String(st.smax);
      return in == DataType::kInt64 ? Value::Int64(st.imax)
                                    : Value::Float64(st.fmax);
  }
  return Status::Internal("unhandled aggregate");
}

/// First-seen group order plus its accumulated states, ready for the shared
/// finish tail of HashAggregate.
struct GroupedStates {
  std::vector<int64_t> rep_row;
  std::vector<std::vector<TypedAggState>> states;
};

// Out-of-core aggregation: materialize a working table of the group keys
// and evaluated aggregate inputs, Grace-partition it by group hash, and run
// the ordinary single-pass accumulation per loaded partition. Identity
// argument: all rows of one group share a hash, so a group lives entirely
// in one partition and is accumulated in ascending original-row order —
// exactly the sequential pass's per-group order (bit-identical float sums).
// Each group's rep row is its globally first row, so sorting the merged
// groups by rep row restores the first-seen group order of the in-memory
// path.
Result<GroupedStates> SpillAggregate(const TablePtr& input,
                                     const AggregateOp& spec,
                                     const std::vector<int>& group_cols,
                                     const std::vector<Column>& agg_inputs,
                                     const std::vector<uint64_t>& hashes,
                                     telemetry::SpanGuard* span) {
  // Working table: group keys, then the evaluated input of each aggregate
  // that has one (count-only aggregates carry no column; the leaf rebuilds
  // their placeholder). Dimension tags drop — this is a plain scratch table.
  std::vector<Field> wfields;
  std::vector<Column> wcols;
  std::vector<int> wgroup_cols;
  for (size_t g = 0; g < group_cols.size(); ++g) {
    Field f = input->schema()->field(group_cols[g]);
    f.is_dimension = false;
    wfields.push_back(std::move(f));
    wcols.push_back(input->column(group_cols[g]));
    wgroup_cols.push_back(static_cast<int>(g));
  }
  std::vector<int> agg_slot(spec.aggs.size(), -1);
  for (size_t a = 0; a < spec.aggs.size(); ++a) {
    if (spec.aggs[a].input == nullptr) continue;
    agg_slot[a] = static_cast<int>(wcols.size());
    wfields.push_back(Field::Attr(StrCat("__agg_", static_cast<int64_t>(a)),
                                  agg_inputs[a].type()));
    wcols.push_back(agg_inputs[a]);
  }
  NEXUS_ASSIGN_OR_RETURN(SchemaPtr wschema, Schema::Make(std::move(wfields)));
  NEXUS_ASSIGN_OR_RETURN(TablePtr working,
                         Table::Make(wschema, std::move(wcols)));

  spill::PartitionedSpiller::Options opts;
  opts.budget_bytes = spill::SpillBudgetBytes();
  opts.tag = "agg";
  // The working table exists solely to be partitioned; shed its charge the
  // moment level 0 is on disk.
  opts.release_inputs = true;
  spill::PartitionedSpiller spiller(&spill::SpillManager::Global(), opts);

  std::vector<std::pair<int64_t, std::vector<TypedAggState>>> groups;
  Status st = spiller.Run(
      {{working, &hashes}},
      [&](const std::vector<TablePtr>& parts) -> Status {
        const Table& wp = *parts[0];
        const auto& rows = wp.column(wp.num_columns() - 2).ints();
        const auto& hbits = wp.column(wp.num_columns() - 1).ints();
        std::vector<uint64_t> local_hashes;
        local_hashes.reserve(hbits.size());
        for (int64_t h : hbits) local_hashes.push_back(static_cast<uint64_t>(h));
        std::vector<Column> local_inputs;
        for (size_t a = 0; a < spec.aggs.size(); ++a) {
          local_inputs.push_back(agg_slot[a] < 0 ? Column(DataType::kInt64)
                                                 : wp.column(agg_slot[a]));
        }
        AggPartition part;
        NEXUS_RETURN_NOT_OK(AccumulateGroups(wp, spec, wgroup_cols,
                                             local_inputs, local_hashes, 0, 0,
                                             &part));
        for (size_t g = 0; g < part.states.size(); ++g) {
          groups.emplace_back(rows[static_cast<size_t>(part.rep_row[g])],
                              std::move(part.states[g]));
        }
        return Status::OK();
      });
  working.reset();
  NEXUS_RETURN_NOT_OK(st);
  std::sort(groups.begin(), groups.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  GroupedStates out;
  out.rep_row.reserve(groups.size());
  out.states.reserve(groups.size());
  for (auto& [row, gs] : groups) {
    out.rep_row.push_back(row);
    out.states.push_back(std::move(gs));
  }
  span->AddCounter("spill_partitions", spiller.stats().partitions);
  span->AddCounter("spill_bytes", spiller.stats().bytes_spilled);
  return out;
}

}  // namespace

Result<TablePtr> HashAggregate(const TablePtr& input, const AggregateOp& spec) {
  telemetry::SpanGuard span(telemetry::kCategoryEngine, "rel.HashAgg");
  span.AddCounter("rows_in", input->num_rows());
  std::vector<int> group_cols;
  for (const std::string& g : spec.group_by) {
    NEXUS_ASSIGN_OR_RETURN(int i, input->schema()->FindFieldOrError(g));
    group_cols.push_back(i);
  }
  // Pre-evaluate aggregate inputs.
  std::vector<Column> agg_inputs;
  std::vector<DataType> agg_types;
  for (const AggSpec& a : spec.aggs) {
    if (a.input != nullptr) {
      NEXUS_ASSIGN_OR_RETURN(Column c, EvalExprVector(*a.input, *input));
      agg_types.push_back(c.type());
      agg_inputs.push_back(std::move(c));
    } else {
      if (a.func != AggFunc::kCount) {
        return Status::PlanError("only count may omit its input expression");
      }
      agg_types.push_back(DataType::kInt64);
      agg_inputs.emplace_back(DataType::kInt64);
    }
  }
  NEXUS_ASSIGN_OR_RETURN(std::vector<uint64_t> hashes, HashRows(*input, group_cols));
  std::vector<int64_t> rep_row;
  std::vector<std::vector<TypedAggState>> states;
  ScopedCharge working_set;  // released when the aggregate returns
  const int64_t n = input->num_rows();
  // Out-of-core path: partition the (keys + aggregate inputs) working table
  // to disk when it would cross the query's budget; grouping a partition at
  // a time preserves the first-seen order and per-group accumulation order.
  bool spilled = false;
  if (!group_cols.empty() && n > 0) {
    int64_t working_bytes = 0;
    for (int c : group_cols) working_bytes += input->column(c).ByteSize();
    for (const Column& c : agg_inputs) working_bytes += c.ByteSize();
    if (spill::ShouldSpill(working_bytes)) {
      NEXUS_ASSIGN_OR_RETURN(
          GroupedStates grouped,
          SpillAggregate(input, spec, group_cols, agg_inputs, hashes, &span));
      rep_row = std::move(grouped.rep_row);
      states = std::move(grouped.states);
      spilled = true;
    }
  }
  if (spilled) {
    // Grouped out of core above.
  } else if (GetThreadCount() == 1 || group_cols.empty() || n < 2 * kMorselRows) {
    // Sequential single-pass aggregation (mask 0 admits every row).
    AggPartition all;
    NEXUS_RETURN_NOT_OK(AccumulateGroups(*input, spec, group_cols, agg_inputs,
                                         hashes, 0, 0, &all));
    rep_row = std::move(all.rep_row);
    states = std::move(all.states);
  } else {
    // Partition-by-hash: each partition accumulates its share of the groups
    // independently; the merge below restores first-occurrence order.
    int parts = 1;
    while (parts < GetThreadCount() && parts < 64) parts *= 2;
    const uint64_t mask = static_cast<uint64_t>(parts - 1);
    std::vector<AggPartition> partitions(static_cast<size_t>(parts));
    std::vector<Status> statuses(static_cast<size_t>(parts), Status::OK());
    ParallelFor(parts, 1, [&](int64_t pb, int64_t pe) {
      for (int64_t p = pb; p < pe; ++p) {
        statuses[static_cast<size_t>(p)] =
            AccumulateGroups(*input, spec, group_cols, agg_inputs, hashes,
                             mask, static_cast<uint64_t>(p),
                             &partitions[static_cast<size_t>(p)]);
      }
    });
    for (const Status& s : statuses) NEXUS_RETURN_NOT_OK(s);
    // A group's rep_row is its globally first occurrence (its partition saw
    // all of its rows, in order), so sorting by rep_row reproduces the
    // sequential first-seen group order exactly.
    struct GroupRef {
      int64_t row;
      int part;
      size_t idx;
    };
    std::vector<GroupRef> order;
    size_t total = 0;
    for (const AggPartition& p : partitions) total += p.states.size();
    order.reserve(total);
    for (int p = 0; p < parts; ++p) {
      const AggPartition& part = partitions[static_cast<size_t>(p)];
      for (size_t g = 0; g < part.states.size(); ++g) {
        order.push_back({part.rep_row[g], p, g});
      }
    }
    std::sort(order.begin(), order.end(),
              [](const GroupRef& a, const GroupRef& b) { return a.row < b.row; });
    rep_row.reserve(total);
    states.reserve(total);
    for (const GroupRef& gr : order) {
      rep_row.push_back(gr.row);
      states.push_back(
          std::move(partitions[static_cast<size_t>(gr.part)].states[gr.idx]));
    }
  }
  // The accumulated group states are an operator working set the type layer
  // cannot see; meter them while the finish loop runs.
  working_set.Add(static_cast<int64_t>(states.size()) *
                  static_cast<int64_t>(spec.aggs.size() * sizeof(TypedAggState) + 64));
  // SQL semantics: a global aggregate over empty input yields one row.
  if (group_cols.empty() && states.empty()) {
    rep_row.push_back(0);  // unused: no group columns to gather
    states.emplace_back(spec.aggs.size());
  }
  // Output schema.
  std::vector<Field> fields;
  for (int c : group_cols) fields.push_back(input->schema()->field(c));
  for (size_t a = 0; a < spec.aggs.size(); ++a) {
    NEXUS_ASSIGN_OR_RETURN(DataType t,
                           AggResultType(spec.aggs[a].func, agg_types[a]));
    fields.push_back(Field::Attr(spec.aggs[a].output_name, t));
  }
  NEXUS_ASSIGN_OR_RETURN(SchemaPtr schema, Schema::Make(std::move(fields)));
  // Group key columns: gather representative rows.
  std::vector<Column> out_cols;
  for (int c : group_cols) out_cols.push_back(input->column(c).Take(rep_row));
  for (size_t a = 0; a < spec.aggs.size(); ++a) {
    Column col(schema->field(static_cast<int>(group_cols.size() + a)).type);
    col.Reserve(static_cast<int64_t>(states.size()));
    for (const auto& gs : states) {
      NEXUS_ASSIGN_OR_RETURN(Value v,
                             FinishTyped(gs[a], spec.aggs[a].func, agg_types[a]));
      NEXUS_RETURN_NOT_OK(col.Append(v));
    }
    out_cols.push_back(std::move(col));
  }
  return Table::Make(schema, std::move(out_cols));
}

Result<TablePtr> Sort(const TablePtr& input, const std::vector<SortKey>& keys) {
  telemetry::SpanGuard span(telemetry::kCategoryEngine, "rel.Sort");
  span.AddCounter("rows_in", input->num_rows());
  std::vector<int> key_cols;
  for (const SortKey& k : keys) {
    NEXUS_ASSIGN_OR_RETURN(int i, input->schema()->FindFieldOrError(k.column));
    key_cols.push_back(i);
  }
  std::vector<int64_t> order(static_cast<size_t>(input->num_rows()));
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);
  // Typed comparators per key (nulls first, matching Value::Compare).
  std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    for (size_t k = 0; k < keys.size(); ++k) {
      const Column& c = input->column(key_cols[k]);
      bool na = c.IsNull(a), nb = c.IsNull(b);
      int cmp = 0;
      if (na || nb) {
        cmp = (na == nb) ? 0 : (na ? -1 : 1);
      } else {
        switch (c.type()) {
          case DataType::kInt64: {
            int64_t va = c.ints()[static_cast<size_t>(a)];
            int64_t vb = c.ints()[static_cast<size_t>(b)];
            cmp = va < vb ? -1 : (va > vb ? 1 : 0);
            break;
          }
          case DataType::kFloat64: {
            double va = c.doubles()[static_cast<size_t>(a)];
            double vb = c.doubles()[static_cast<size_t>(b)];
            cmp = va < vb ? -1 : (va > vb ? 1 : 0);
            break;
          }
          case DataType::kBool:
            cmp = static_cast<int>(c.bools()[static_cast<size_t>(a)]) -
                  static_cast<int>(c.bools()[static_cast<size_t>(b)]);
            break;
          case DataType::kString:
            cmp = c.strings()[static_cast<size_t>(a)].compare(
                c.strings()[static_cast<size_t>(b)]);
            cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
            break;
        }
      }
      if (cmp != 0) return keys[k].ascending ? cmp < 0 : cmp > 0;
    }
    return false;
  });
  return input->TakeRows(order);
}

Result<TablePtr> Limit(const TablePtr& input, int64_t limit, int64_t offset) {
  return input->Slice(offset, limit);
}

Result<TablePtr> Distinct(const TablePtr& input) {
  std::vector<int> all;
  for (int i = 0; i < input->num_columns(); ++i) all.push_back(i);
  NEXUS_ASSIGN_OR_RETURN(std::vector<uint64_t> hashes, HashRows(*input, all));
  std::unordered_map<uint64_t, std::vector<int64_t>> buckets;
  std::vector<int64_t> keep;
  for (int64_t r = 0; r < input->num_rows(); ++r) {
    std::vector<int64_t>& bucket = buckets[hashes[static_cast<size_t>(r)]];
    bool dup = false;
    for (int64_t prev : bucket) {
      if (GroupKeysEqual(*input, prev, r, all)) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      bucket.push_back(r);
      keep.push_back(r);
    }
  }
  return input->TakeRows(keep);
}

Result<TablePtr> Union(const TablePtr& left, const TablePtr& right) {
  if (!left->schema()->Equals(*right->schema())) {
    return Status::TypeError("union schema mismatch");
  }
  std::vector<Column> cols = left->columns();
  for (size_t c = 0; c < cols.size(); ++c) {
    NEXUS_RETURN_NOT_OK(cols[c].AppendColumn(right->column(static_cast<int>(c))));
  }
  return Table::Make(left->schema(), std::move(cols));
}

Result<TablePtr> Rename(
    const TablePtr& input,
    const std::vector<std::pair<std::string, std::string>>& mapping) {
  std::vector<Field> fields = input->schema()->fields();
  for (const auto& [from, to] : mapping) {
    NEXUS_ASSIGN_OR_RETURN(int i, input->schema()->FindFieldOrError(from));
    fields[static_cast<size_t>(i)].name = to;
  }
  NEXUS_ASSIGN_OR_RETURN(SchemaPtr schema, Schema::Make(std::move(fields)));
  return Table::Make(schema, input->columns());
}

}  // namespace relational
}  // namespace nexus
