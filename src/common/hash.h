// Hashing primitives shared by the relational engine's hash join/aggregate
// and by plan fingerprinting.
#ifndef NEXUS_COMMON_HASH_H_
#define NEXUS_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace nexus {

/// 64-bit finalizer (murmur3 fmix64); good avalanche for integer keys.
inline uint64_t HashInt64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

/// FNV-1a over arbitrary bytes.
inline uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

inline uint64_t HashString(std::string_view s) { return HashBytes(s.data(), s.size()); }

/// Combines two hashes (boost-style with 64-bit constant).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (value + 0x9E3779B97F4A7C15ULL + (seed << 12) + (seed >> 4));
}

}  // namespace nexus

#endif  // NEXUS_COMMON_HASH_H_
