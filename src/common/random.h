// Deterministic pseudo-random generation for workload synthesis.
//
// All generators are seeded explicitly so every experiment in bench/ is
// reproducible bit-for-bit across runs.
#ifndef NEXUS_COMMON_RANDOM_H_
#define NEXUS_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace nexus {

/// xoshiro256** — fast, high-quality, deterministic PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound). Precondition: bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal via Box–Muller.
  double NextGaussian();

  /// Bernoulli with probability p.
  bool NextBool(double p = 0.5);

  /// Random lowercase ASCII string of the given length.
  std::string NextString(size_t length);

 private:
  uint64_t s_[4];
  bool have_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

/// Zipf-distributed values in [0, n), exponent `theta` (0 = uniform).
/// Uses the Gray et al. rejection-inversion-free incremental method with a
/// precomputed normalization constant; suitable for skewed key workloads.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 42);

  uint64_t Next();

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Rng rng_;
};

}  // namespace nexus

#endif  // NEXUS_COMMON_RANDOM_H_
