// CancelToken: the cooperative-cancellation currency of the query service.
//
// A token is shared between the party that may cancel (the service's
// memory governor, a deadline watchdog, the client) and the code doing the
// work (coordinator fragment loops, engine morsel loops via the parallel
// pool's TaskContext). Work checks `cancelled()` — one relaxed atomic load
// — at natural yield points and unwinds with `status()` when it fires; the
// existing RAII cleanup (Coordinator::TempGuard, slot guards) then releases
// temps and pool slots promptly.
//
// The first Cancel wins: a token records exactly one (code, reason) pair,
// so a query killed by the governor reports kResourceExhausted even if a
// deadline also expires while it unwinds.
#ifndef NEXUS_COMMON_CANCEL_H_
#define NEXUS_COMMON_CANCEL_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"

namespace nexus {

class CancelToken {
 public:
  /// Requests cancellation with the status the unwinding work should
  /// surface. Thread-safe; only the first call takes effect.
  void Cancel(StatusCode code, std::string reason) {
    std::lock_guard<std::mutex> lock(mu_);
    if (cancelled_.load(std::memory_order_relaxed)) return;
    code_ = code;
    reason_ = std::move(reason);
    cancelled_.store(true, std::memory_order_release);
  }

  /// One atomic load; safe to call from any thread at any frequency.
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// OK until cancelled; afterwards the (code, reason) given to Cancel.
  Status status() const {
    if (!cancelled()) return Status::OK();
    std::lock_guard<std::mutex> lock(mu_);
    return Status(code_, reason_);
  }

 private:
  std::atomic<bool> cancelled_{false};
  mutable std::mutex mu_;
  StatusCode code_ = StatusCode::kCancelled;
  std::string reason_;
};

using CancelTokenPtr = std::shared_ptr<CancelToken>;

}  // namespace nexus

#endif  // NEXUS_COMMON_CANCEL_H_
