// Result<T>: value-or-Status, the return type of fallible value-producing
// functions (Arrow idiom). Use NEXUS_ASSIGN_OR_RETURN to unwrap.
#ifndef NEXUS_COMMON_RESULT_H_
#define NEXUS_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace nexus {

/// \brief Holds either a T or a non-OK Status.
///
/// Construction from a T yields an OK result; construction from a Status
/// must use a non-OK status (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit so `return value;` works in functions returning Result<T>.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(repr_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Status of the result; OK() when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Access the held value. Precondition: ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// Alias mirroring Arrow's spelling.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Moves the value out. Precondition: ok().
  T MoveValue() {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// Returns the value, or `fallback` when this result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace nexus

/// Evaluates an expression returning Result<T>; on error propagates the
/// Status, otherwise assigns the value to `lhs` (which may be a declaration).
#define NEXUS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)      \
  auto tmp = (expr);                                     \
  if (NEXUS_PREDICT_FALSE(!tmp.ok())) return tmp.status(); \
  lhs = tmp.MoveValue()

#define NEXUS_ASSIGN_OR_RETURN(lhs, expr) \
  NEXUS_ASSIGN_OR_RETURN_IMPL(NEXUS_CONCAT(_result_, __LINE__), lhs, expr)

#endif  // NEXUS_COMMON_RESULT_H_
