#include "common/str_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace nexus {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string FormatDouble(double v, int precision) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string EscapeString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace nexus
