#include "common/status.h"

namespace nexus {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kTypeError:
      return "Type error";
    case StatusCode::kIndexError:
      return "Index error";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kCapacityError:
      return "Capacity error";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kPlanError:
      return "Plan error";
    case StatusCode::kSerializationError:
      return "Serialization error";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(state_->code);
  out += ": ";
  out += state_->message;
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(state_->code, context + ": " + state_->message);
}

}  // namespace nexus
