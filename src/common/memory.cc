#include "common/memory.h"

#include "common/parallel.h"

namespace nexus {

MemoryMeter* CurrentMemoryMeter() {
  const TaskContext* ctx = CurrentTaskContext();
  return ctx != nullptr ? ctx->meter : nullptr;
}

void ChargeAllocation(int64_t bytes) {
  if (bytes <= 0) return;
  if (MemoryMeter* meter = CurrentMemoryMeter()) meter->Charge(bytes);
}

void ReleaseAllocation(int64_t bytes) {
  if (bytes <= 0) return;
  if (MemoryMeter* meter = CurrentMemoryMeter()) meter->Release(bytes);
}

}  // namespace nexus
