#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <iostream>

namespace nexus {

namespace {
std::atomic<int> g_log_level{-1};  // -1 = not yet initialized

/// NEXUS_LOG_LEVEL seeds the threshold (SetLogLevel still overrides), so
/// benches and CI can turn logging up without touching code — same contract
/// as NEXUS_THREADS in common/parallel. Accepts a level name
/// (debug/info/warning/error/fatal, case-insensitive) or its integer 0–4.
int InitialLogLevel() {
  const char* env = std::getenv("NEXUS_LOG_LEVEL");
  if (env == nullptr || *env == '\0') {
    return static_cast<int>(LogLevel::kWarning);
  }
  if (std::isdigit(static_cast<unsigned char>(env[0]))) {
    int n = std::atoi(env);
    if (n >= 0 && n <= static_cast<int>(LogLevel::kFatal)) return n;
    return static_cast<int>(LogLevel::kWarning);
  }
  std::string name;
  for (const char* p = env; *p; ++p) {
    name.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (name == "debug") return static_cast<int>(LogLevel::kDebug);
  if (name == "info") return static_cast<int>(LogLevel::kInfo);
  if (name == "warning" || name == "warn") return static_cast<int>(LogLevel::kWarning);
  if (name == "error") return static_cast<int>(LogLevel::kError);
  if (name == "fatal") return static_cast<int>(LogLevel::kFatal);
  return static_cast<int>(LogLevel::kWarning);
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() {
  int n = g_log_level.load();
  if (n < 0) {
    n = InitialLogLevel();
    g_log_level.store(n);
  }
  return static_cast<LogLevel>(n);
}
void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

namespace internal {

LogLevel LogLevelFromEnv() { return static_cast<LogLevel>(InitialLogLevel()); }

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel() || level_ == LogLevel::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace nexus
