// Small string helpers (concatenation, splitting, formatting) used instead
// of std::format, which libstdc++ 12 does not ship.
#ifndef NEXUS_COMMON_STR_UTIL_H_
#define NEXUS_COMMON_STR_UTIL_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace nexus {

namespace internal {
inline void StrAppend(std::ostringstream&) {}
template <typename T, typename... Rest>
void StrAppend(std::ostringstream& os, const T& head, const Rest&... rest) {
  os << head;
  StrAppend(os, rest...);
}
}  // namespace internal

/// Concatenates all arguments with operator<< into one string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  internal::StrAppend(os, args...);
  return os.str();
}

/// Splits `input` on `delim`; empty tokens are preserved.
std::vector<std::string> Split(std::string_view input, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strips ASCII whitespace from both ends.
std::string Trim(std::string_view s);

/// Lower-cases ASCII letters.
std::string ToLower(std::string_view s);

/// Formats a double with up to `precision` significant digits, trimming
/// trailing zeros ("1.5", "3", "0.125").
std::string FormatDouble(double v, int precision = 12);

/// Formats a byte count with binary units ("1.5 KiB", "3.2 MiB").
std::string FormatBytes(uint64_t bytes);

/// Escapes a string for embedding in a double-quoted literal.
std::string EscapeString(std::string_view s);

}  // namespace nexus

#endif  // NEXUS_COMMON_STR_UTIL_H_
