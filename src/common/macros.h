// Common preprocessor macros used across the nexus codebase.
#ifndef NEXUS_COMMON_MACROS_H_
#define NEXUS_COMMON_MACROS_H_

/// Deletes copy construction/assignment for a class.
#define NEXUS_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;            \
  TypeName& operator=(const TypeName&) = delete

#define NEXUS_CONCAT_IMPL(x, y) x##y
#define NEXUS_CONCAT(x, y) NEXUS_CONCAT_IMPL(x, y)

#if defined(__GNUC__) || defined(__clang__)
#define NEXUS_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))
#define NEXUS_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))
#else
#define NEXUS_PREDICT_FALSE(x) (x)
#define NEXUS_PREDICT_TRUE(x) (x)
#endif

#endif  // NEXUS_COMMON_MACROS_H_
