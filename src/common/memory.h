// Memory metering: how collection allocations are attributed to tenants.
//
// The type layer (Table::Make, NDArray chunk creation) reports the bytes of
// every collection it materializes to the calling thread's installed
// MemoryMeter — a thread-local pointer carried across worker threads by the
// parallel pool's TaskContext, so morsels executing on pool workers charge
// the query that submitted them. With no meter installed (every standalone
// use of the library) the hook is one thread-local load and a branch.
//
// Charges are deliberately gross, not net: a meter sees what a query
// *materialized*, including short-lived intermediates and zero-copy views,
// and the service's MemoryGovernor releases the whole charge when the query
// finishes. That over-approximation is exactly the conservative signal an
// admission governor wants — a query that churns intermediates is expensive
// even when its peak resident set is small.
#ifndef NEXUS_COMMON_MEMORY_H_
#define NEXUS_COMMON_MEMORY_H_

#include <cstdint>

namespace nexus {

/// Receiver of allocation charges. Implementations must be thread-safe:
/// morsels of one query charge concurrently from many pool workers.
class MemoryMeter {
 public:
  virtual ~MemoryMeter() = default;
  /// Reports `bytes` of newly materialized collection data. May react by
  /// cancelling work (flip a CancelToken) but must not throw or block for
  /// long — it runs inside engine hot loops.
  virtual void Charge(int64_t bytes) = 0;
};

/// The calling thread's meter, or nullptr. Installed via the parallel
/// pool's TaskContext (see common/parallel.h), never directly.
MemoryMeter* CurrentMemoryMeter();

/// Charges the current thread's meter, if any.
void ChargeAllocation(int64_t bytes);

}  // namespace nexus

#endif  // NEXUS_COMMON_MEMORY_H_
