// Memory metering: how collection allocations are attributed to tenants.
//
// The type layer (Table::Make, NDArray chunk creation) reports the bytes of
// every collection it materializes to the calling thread's installed
// MemoryMeter — a thread-local pointer carried across worker threads by the
// parallel pool's TaskContext, so morsels executing on pool workers charge
// the query that submitted them. With no meter installed (every standalone
// use of the library) the hook is one thread-local load and a branch.
//
// Charges are deliberately gross, not net: a meter sees what a query
// *materialized*, including short-lived intermediates and zero-copy views,
// and the service's MemoryGovernor releases the whole charge when the query
// finishes. That over-approximation is exactly the conservative signal an
// admission governor wants — a query that churns intermediates is expensive
// even when its peak resident set is small.
//
// The one exception to gross accounting is the out-of-core path: the spill
// subsystem (src/exec/spill) explicitly Release()s the bytes it parks on
// disk and the transient working sets it frees, so a query that cooperates
// by spilling sheds its charge instead of accumulating it. Release is a
// no-op on the base class — only governed QueryMeters net it out.
#ifndef NEXUS_COMMON_MEMORY_H_
#define NEXUS_COMMON_MEMORY_H_

#include <cstdint>

namespace nexus {

/// Receiver of allocation charges. Implementations must be thread-safe:
/// morsels of one query charge concurrently from many pool workers.
class MemoryMeter {
 public:
  virtual ~MemoryMeter() = default;
  /// Reports `bytes` of newly materialized collection data. May react by
  /// cancelling work (flip a CancelToken) but must not throw or block for
  /// long — it runs inside engine hot loops.
  virtual void Charge(int64_t bytes) = 0;

  /// Reports `bytes` previously Charge()d that are no longer resident —
  /// either written to a spill file or a freed operator working set. The
  /// default ignores the report (gross accounting); governed meters net it
  /// out of the tenant's usage. Implementations must clamp: cumulative
  /// releases never exceed cumulative charges.
  virtual void Release(int64_t bytes) { (void)bytes; }

  /// Bytes an operator may keep resident before it should partition to
  /// disk; <= 0 means "no budget" (never spill preemptively). Governed
  /// meters report their tenant's budget here.
  virtual int64_t SpillBudget() const { return 0; }

  /// True once the governor has asked this query to shed memory (the
  /// ask-to-spill alternative to being killed). Operators poll this at
  /// partition boundaries and spill even under their budget when set.
  virtual bool SpillRequested() const { return false; }
};

/// The calling thread's meter, or nullptr. Installed via the parallel
/// pool's TaskContext (see common/parallel.h), never directly.
MemoryMeter* CurrentMemoryMeter();

/// Charges the current thread's meter, if any.
void ChargeAllocation(int64_t bytes);

/// Releases previously charged bytes on the current thread's meter, if any.
void ReleaseAllocation(int64_t bytes);

/// RAII working-set charge: operators that build transient structures the
/// type layer cannot see (hash-table chains, pair vectors) Add() their
/// estimated bytes while the structure lives; destruction releases the
/// whole sum, so cooperative operators show the governor their true
/// resident working set rather than an ever-growing gross total.
class ScopedCharge {
 public:
  ScopedCharge() = default;
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;
  ~ScopedCharge() { ReleaseAllocation(bytes_); }

  void Add(int64_t bytes) {
    if (bytes <= 0) return;
    ChargeAllocation(bytes);
    bytes_ += bytes;
  }
  int64_t bytes() const { return bytes_; }

 private:
  int64_t bytes_ = 0;
};

}  // namespace nexus

#endif  // NEXUS_COMMON_MEMORY_H_
