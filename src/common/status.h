// Status: the error-reporting currency of the nexus codebase.
//
// Following the Arrow/RocksDB idiom, no exception ever crosses a public API
// boundary. Fallible functions return Status (or Result<T>, see result.h),
// and callers propagate with NEXUS_RETURN_NOT_OK.
#ifndef NEXUS_COMMON_STATUS_H_
#define NEXUS_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

#include "common/macros.h"

namespace nexus {

/// Machine-readable classification of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotImplemented = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kTypeError = 5,
  kIndexError = 6,
  kIOError = 7,
  kInternal = 8,
  kCapacityError = 9,
  kUnsupported = 10,
  kPlanError = 11,
  kSerializationError = 12,
  kUnavailable = 13,
  kTimeout = 14,
  kResourceExhausted = 15,
  kCancelled = 16,
};

/// \brief Returns a human-readable name for a StatusCode ("Invalid argument"...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: OK, or a code plus message.
///
/// The OK state stores no heap allocation; error states carry a small
/// heap-allocated payload so Status stays one pointer wide.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_shared<State>(State{code, std::move(message)})) {}

  /// Factory for the OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status IndexError(std::string msg) {
    return Status(StatusCode::kIndexError, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status CapacityError(std::string msg) {
    return Status(StatusCode::kCapacityError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status PlanError(std::string msg) {
    return Status(StatusCode::kPlanError, std::move(msg));
  }
  static Status SerializationError(std::string msg) {
    return Status(StatusCode::kSerializationError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// Error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->message;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsUnsupported() const { return code() == StatusCode::kUnsupported; }
  bool IsPlanError() const { return code() == StatusCode::kPlanError; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsTimeout() const { return code() == StatusCode::kTimeout; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Returns this status with extra context prepended to the message.
  Status WithContext(const std::string& context) const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // shared_ptr (not unique_ptr) so Status is copyable; error paths are cold.
  std::shared_ptr<const State> state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// True for transient failures that a caller may reasonably retry or route
/// around: lost message, dead link, server-down window, or a resource limit
/// (admission queue full, tenant memory budget) that frees up as other work
/// drains. Every other code is deterministic: retrying would fail
/// identically. kCancelled is deliberately NOT retryable — a cancellation
/// was requested and retrying would override that request.
inline bool IsRetryable(const Status& s) {
  return s.code() == StatusCode::kUnavailable ||
         s.code() == StatusCode::kTimeout ||
         s.code() == StatusCode::kResourceExhausted;
}

}  // namespace nexus

/// Propagates a non-OK Status to the caller.
#define NEXUS_RETURN_NOT_OK(expr)                        \
  do {                                                   \
    ::nexus::Status _st = (expr);                        \
    if (NEXUS_PREDICT_FALSE(!_st.ok())) return _st;      \
  } while (0)

#endif  // NEXUS_COMMON_STATUS_H_
