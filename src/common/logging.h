// Minimal leveled logging with stream syntax:
//   NEXUS_LOG(INFO) << "planned " << n << " fragments";
// Fatal logs abort after flushing.
#ifndef NEXUS_COMMON_LOGGING_H_
#define NEXUS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace nexus {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global log threshold; messages below it are dropped. Default kWarning so
/// library users get quiet benches/tests unless they opt in. The initial
/// threshold can be seeded with the NEXUS_LOG_LEVEL environment variable
/// (a level name like "debug"/"info", or its integer 0–4); SetLogLevel
/// overrides it at any time.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Re-reads NEXUS_LOG_LEVEL from the environment (testing seam for the
/// env-var parsing; production code relies on the lazy first-use read).
LogLevel LogLevelFromEnv();

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace nexus

#define NEXUS_LOG(level)                                                  \
  ::nexus::internal::LogMessage(::nexus::LogLevel::k##level, __FILE__, \
                                __LINE__)                                 \
      .stream()

/// Internal-invariant check: logs and aborts when `cond` is false. Active in
/// all build types (cheap, and a broken invariant must never limp onward).
#define NEXUS_CHECK(cond)                                      \
  if (NEXUS_PREDICT_TRUE(cond)) {                              \
  } else /* NOLINT */                                          \
    NEXUS_LOG(Fatal) << "Check failed: " #cond " "

#include "common/macros.h"

#endif  // NEXUS_COMMON_LOGGING_H_
