// Wall-clock timing helper for benches and the federation metrics.
#ifndef NEXUS_COMMON_TIMER_H_
#define NEXUS_COMMON_TIMER_H_

#include <chrono>

namespace nexus {

/// Monotonic stopwatch; starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace nexus

#endif  // NEXUS_COMMON_TIMER_H_
