#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace nexus {

namespace {

std::atomic<int64_t> g_morsels{0};
std::atomic<int64_t> g_regions{0};
std::atomic<const ParallelHooks*> g_hooks{nullptr};

thread_local const TaskContext* t_task_context = nullptr;

/// RAII region observation: captures the hook table once so a region sees
/// a consistent table even if telemetry flips mid-flight.
struct RegionScope {
  RegionScope() : hooks(g_hooks.load(std::memory_order_acquire)) {
    if (hooks != nullptr) token = hooks->region_begin();
  }
  ~RegionScope() {
    if (hooks != nullptr) hooks->region_end(token);
  }
  RegionScope(const RegionScope&) = delete;
  RegionScope& operator=(const RegionScope&) = delete;

  template <typename Fn>
  void RunMorsel(int64_t index, Fn&& body) const {
    if (hooks == nullptr) {
      body();
      return;
    }
    uint64_t handle = hooks->morsel_begin(token, index);
    body();
    hooks->morsel_end(handle);
  }

  const ParallelHooks* hooks;
  uint64_t token = 0;
};

int ClampThreads(int n) { return std::clamp(n, 1, kMaxThreads); }

/// True when the calling thread's installed context has a fired cancel
/// token — the inline (budget 1) paths use this to skip remaining morsels,
/// mirroring the pooled claim-and-skip drain.
bool CallerCancelled() {
  return t_task_context != nullptr && t_task_context->cancel != nullptr &&
         t_task_context->cancel->cancelled();
}

int InitialThreadCount() {
  // NEXUS_THREADS overrides the hardware default, so benches and CI can pin
  // the budget without touching code.
  if (const char* env = std::getenv("NEXUS_THREADS")) {
    int n = std::atoi(env);
    if (n > 0) return ClampThreads(n);
  }
  return HardwareThreads();
}

std::atomic<int> g_thread_count{0};  // 0 = not yet initialized

/// One parallel region in flight. Workers claim task indices off `next`;
/// the region is finished when `done` reaches `total`.
struct TaskGroup {
  explicit TaskGroup(int64_t n, const std::function<void(int64_t)>& f)
      : total(n), run(&f) {
    if (t_task_context != nullptr) ctx = *t_task_context;
  }
  const int64_t total;
  const std::function<void(int64_t)>* run;
  /// Submitter's scheduling/attribution context, by value: the pointers
  /// inside outlive the region (the submitter blocks until it drains).
  TaskContext ctx;
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> done{0};
  int refs = 1;  // caller + workers inside ExecuteFrom; guarded by pool mutex
  std::exception_ptr error;  // first failure; guarded by the pool mutex

  bool Cancelled() const {
    return ctx.cancel != nullptr && ctx.cancel->cancelled();
  }
};

/// Lazy global worker pool. Workers are spawned on demand (up to the
/// requested budget) and then parked on a condition variable; they scan the
/// active-group list and self-schedule morsels. The submitting thread always
/// participates in its own group and only its own group, which makes nested
/// parallel regions deadlock-free: a region's caller can always drain it
/// alone even when every worker is busy elsewhere.
class Pool {
 public:
  static Pool& Get() {
    static Pool* pool = new Pool();  // leaked: workers outlive static dtors
    return *pool;
  }

  void Run(int64_t tasks, const std::function<void(int64_t)>& fn, int helpers) {
    TaskGroup group(tasks, fn);
    {
      std::lock_guard<std::mutex> lock(mu_);
      EnsureWorkers(helpers);
      active_.push_back(&group);
    }
    work_cv_.notify_all();
    // The caller is worker zero.
    ExecuteFrom(&group);
    {
      // Wait until every task ran AND no worker still holds a reference —
      // a worker that claimed the group may otherwise probe its cursor
      // after this frame (and the group with it) is gone.
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&] {
        return group.done.load() == group.total && group.refs == 1;
      });
      active_.erase(std::find(active_.begin(), active_.end(), &group));
      if (group.error) std::rethrow_exception(group.error);
    }
  }

 private:
  Pool() = default;

  void EnsureWorkers(int target) {  // caller holds mu_
    target = std::min(target, kMaxThreads - 1);
    while (static_cast<int>(workers_.size()) < target) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  /// Claims and executes tasks of `group` until its cursor is exhausted.
  /// The group's TaskContext is installed for the duration, so morsel
  /// bodies see the submitting query's cancel token and memory meter even
  /// on pool workers. A cancelled group's remaining morsels are claimed
  /// and skipped — the region drains at memory speed and the submitter's
  /// own token check surfaces the cancellation.
  void ExecuteFrom(TaskGroup* group) {
    const TaskContext* saved = t_task_context;
    t_task_context = &group->ctx;
    for (;;) {
      int64_t i = group->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= group->total) break;
      if (!group->Cancelled()) {
        try {
          (*group->run)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mu_);
          if (!group->error) group->error = std::current_exception();
        }
        g_morsels.fetch_add(1, std::memory_order_relaxed);
      }
      if (group->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          group->total) {
        { std::lock_guard<std::mutex> lock(mu_); }  // pair with done_cv_ wait
        done_cv_.notify_all();
      }
    }
    t_task_context = saved;
  }

  /// Weighted-deficit region pick (caller holds mu_): among regions with
  /// unclaimed morsels, take the one with the lowest claimed/weight ratio.
  /// With equal weights (the default) and one region this degrades to the
  /// legacy first-active pick; with mixed weights, heavier classes claim
  /// proportionally more workers, so a flood of weight-1 batch regions
  /// cannot starve a weight-8 interactive region.
  TaskGroup* PickGroup() {
    TaskGroup* best = nullptr;
    double best_key = 0.0;
    for (TaskGroup* g : active_) {
      int64_t claimed = g->next.load(std::memory_order_relaxed);
      if (claimed >= g->total) continue;
      double key = static_cast<double>(claimed) /
                   static_cast<double>(g->ctx.weight < 1 ? 1 : g->ctx.weight);
      if (best == nullptr || key < best_key) {
        best = g;
        best_key = key;
      }
    }
    return best;
  }

  void WorkerLoop() {
    for (;;) {
      TaskGroup* group = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [&] {
          for (TaskGroup* g : active_) {
            if (g->next.load(std::memory_order_relaxed) < g->total) return true;
          }
          return false;
        });
        group = PickGroup();
        if (group != nullptr) ++group->refs;
      }
      if (group != nullptr) {
        ExecuteFrom(group);
        {
          std::lock_guard<std::mutex> lock(mu_);
          --group->refs;
        }
        done_cv_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  std::vector<TaskGroup*> active_;
};

}  // namespace

int HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return ClampThreads(hw == 0 ? 1 : static_cast<int>(hw));
}

void SetThreadCount(int threads) {
  g_thread_count.store(threads <= 0 ? InitialThreadCount()
                                    : ClampThreads(threads));
}

int GetThreadCount() {
  int n = g_thread_count.load();
  if (n == 0) {
    n = InitialThreadCount();
    g_thread_count.store(n);
  }
  return n;
}

ParallelStats GetParallelStats() {
  ParallelStats s;
  s.morsels = g_morsels.load(std::memory_order_relaxed);
  s.regions = g_regions.load(std::memory_order_relaxed);
  return s;
}

void SetParallelHooks(const ParallelHooks* hooks) {
  g_hooks.store(hooks, std::memory_order_release);
}

const TaskContext* CurrentTaskContext() { return t_task_context; }

ScopedTaskContext::ScopedTaskContext(const TaskContext* ctx)
    : saved_(t_task_context) {
  t_task_context = ctx;
}

ScopedTaskContext::~ScopedTaskContext() { t_task_context = saved_; }

void ParallelFor(int64_t n, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body,
                 int threads) {
  if (n <= 0) return;
  if (grain <= 0) grain = kMorselRows;
  int64_t morsels = (n + grain - 1) / grain;
  int budget = threads > 0 ? ClampThreads(threads) : GetThreadCount();
  RegionScope region;
  if (budget == 1 || morsels == 1) {
    if (!CallerCancelled()) {
      region.RunMorsel(0, [&] { body(0, n); });
      g_morsels.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  g_regions.fetch_add(1, std::memory_order_relaxed);
  std::function<void(int64_t)> run = [&](int64_t m) {
    region.RunMorsel(m, [&] {
      int64_t begin = m * grain;
      body(begin, std::min(n, begin + grain));
    });
  };
  Pool::Get().Run(morsels, run, budget - 1);
}

void ParallelRun(const std::vector<std::function<void()>>& tasks,
                 int threads) {
  if (tasks.empty()) return;
  int budget = threads > 0 ? ClampThreads(threads) : GetThreadCount();
  RegionScope region;
  if (budget == 1 || tasks.size() == 1) {
    for (size_t i = 0; i < tasks.size(); ++i) {
      if (CallerCancelled()) return;
      region.RunMorsel(static_cast<int64_t>(i), [&] { tasks[i](); });
      g_morsels.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  g_regions.fetch_add(1, std::memory_order_relaxed);
  std::function<void(int64_t)> run = [&](int64_t i) {
    region.RunMorsel(i, [&] { tasks[static_cast<size_t>(i)](); });
  };
  Pool::Get().Run(static_cast<int64_t>(tasks.size()), run, budget - 1);
}

}  // namespace nexus
