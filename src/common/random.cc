#include "common/random.h"

#include <cmath>

namespace nexus {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the single seed into xoshiro state.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's multiply-shift rejection method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (have_gaussian_) {
    have_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * mul;
  have_gaussian_ = true;
  return u * mul;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

std::string Rng::NextString(size_t length) {
  std::string out(length, 'a');
  for (char& c : out) c = static_cast<char>('a' + NextBounded(26));
  return out;
}

namespace {
double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}
}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  zetan_ = Zeta(n, theta);
  double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t ZipfGenerator::Next() {
  if (theta_ == 0.0) return rng_.NextBounded(n_);
  double u = rng_.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  return static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
}

}  // namespace nexus
