// Morsel-driven parallel execution primitives shared by every engine.
//
// The unit of scheduling is a *morsel*: a contiguous index range carved out
// of a larger job (rows of a table, chunks of an array, row-blocks of a
// matrix, sibling plan fragments). Workers self-schedule morsels off a
// shared atomic cursor — a work-stealing discipline in the morsel-driven
// style of Leis et al.: whichever thread is free next takes the next morsel,
// so skew in morsel cost balances itself without a static partition.
//
// Determinism contract (relied on by the property tests): the *decomposition*
// of a job into morsels depends only on the job size and the grain, never on
// the thread count, and every algorithm built on these primitives writes
// results into pre-assigned slots (or merges partial results in morsel
// order). Consequently results are byte-identical for any thread count,
// and `SetThreadCount(1)` executes the exact sequential code path.
//
// The pool is process-global and lazy: no threads are created until the
// first parallel region that wants helpers, and a thread count of 1 never
// touches the pool at all.
#ifndef NEXUS_COMMON_PARALLEL_H_
#define NEXUS_COMMON_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/cancel.h"

namespace nexus {

class MemoryMeter;  // common/memory.h

/// Hard ceiling on pool workers (a safety valve, not a tuning knob).
inline constexpr int kMaxThreads = 64;

/// Default rows per morsel for row-oriented loops: large enough that the
/// scheduling overhead vanishes, small enough to balance skewed work.
inline constexpr int64_t kMorselRows = 16 * 1024;

/// Sets the process-wide thread budget for parallel regions. 1 = strictly
/// sequential (legacy behavior); 0 resets to the hardware default.
void SetThreadCount(int threads);

/// Current process-wide thread budget (>= 1).
int GetThreadCount();

/// std::thread::hardware_concurrency, clamped to [1, kMaxThreads].
int HardwareThreads();

/// Cumulative process-wide counters, snapshot-and-delta'd by callers that
/// want per-operation accounting (e.g. the federation ExecutionMetrics).
struct ParallelStats {
  int64_t morsels = 0;  ///< morsels executed (1 per serial region)
  int64_t regions = 0;  ///< parallel regions that actually used helpers
};
ParallelStats GetParallelStats();

/// Runs body(begin, end) over morsels of [0, n) with the given grain.
/// Morsel boundaries are i*grain .. min(n, (i+1)*grain) regardless of the
/// thread budget. `threads` <= 0 uses GetThreadCount(). With an effective
/// budget of 1 (or a single morsel) the body runs inline on the caller.
/// The body must not throw status errors across the boundary — engines
/// collect per-morsel Statuses into pre-sized slots instead.
void ParallelFor(int64_t n, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body,
                 int threads = 0);

/// Runs heterogeneous tasks concurrently (the federation's sibling-fragment
/// fan-out). The caller participates; with an effective budget of 1 the
/// tasks run inline in index order, exactly like a for loop.
void ParallelRun(const std::vector<std::function<void()>>& tasks,
                 int threads = 0);

/// Per-task scheduling and attribution context — the multi-tenant service's
/// handle into the shared pool. A TaskContext is installed thread-locally
/// (ScopedTaskContext) by whoever owns the work, snapshot by value into
/// every parallel region the thread submits, and re-installed around each
/// morsel on whichever worker executes it, so:
///   - `cancel`: morsel loops are cooperatively cancellable — once the token
///     fires, remaining morsels of the region are claimed-and-skipped (the
///     region still completes, fast, and the caller observes the token);
///   - `weight`: when several regions are in flight, idle workers pick the
///     region with the lowest claimed-morsels/weight ratio, a deficit
///     discipline that keeps one heavy tenant from starving light ones;
///   - `meter`: collection allocations on worker threads charge the
///     submitting query's memory meter (see common/memory.h).
/// With no context installed (all single-query uses) behavior is exactly
/// the legacy pool: FIFO region pick, weight 1, no cancellation, no meter.
struct TaskContext {
  const CancelToken* cancel = nullptr;  ///< not owned; may be null
  int weight = 1;                       ///< scheduling-class weight (>= 1)
  MemoryMeter* meter = nullptr;         ///< not owned; may be null
};

/// The calling thread's context, or nullptr.
const TaskContext* CurrentTaskContext();

/// RAII install/restore of the thread's TaskContext. The context must
/// outlive every parallel region submitted within the scope.
class ScopedTaskContext {
 public:
  explicit ScopedTaskContext(const TaskContext* ctx);
  ~ScopedTaskContext();
  ScopedTaskContext(const ScopedTaskContext&) = delete;
  ScopedTaskContext& operator=(const ScopedTaskContext&) = delete;

 private:
  const TaskContext* saved_;
};

/// Observer hooks for per-morsel telemetry. The pool stays telemetry-
/// agnostic: a hook table is installed by the telemetry layer (while
/// tracing is enabled) and every callback is gated on one atomic pointer
/// load, so the uninstrumented path costs a single branch per region.
///
/// Lifecycle per parallel region: `region_begin` runs on the submitting
/// thread before any morsel and returns an opaque token (0 = don't
/// observe); each morsel is bracketed by `morsel_begin`/`morsel_end` on
/// the thread that executes it (the handle returned by begin is passed to
/// end); `region_end` runs on the submitting thread after every morsel
/// finished. Both the inline (budget 1) and pooled paths fire the hooks,
/// so morsel decomposition reported by telemetry matches the determinism
/// contract above.
struct ParallelHooks {
  uint64_t (*region_begin)();
  void (*region_end)(uint64_t token);
  uint64_t (*morsel_begin)(uint64_t token, int64_t index);
  void (*morsel_end)(uint64_t handle);
};

/// Atomically installs (or, with nullptr, removes) the hook table. The
/// table must outlive its installation; regions in flight during a switch
/// finish with the table they started with.
void SetParallelHooks(const ParallelHooks* hooks);

}  // namespace nexus

#endif  // NEXUS_COMMON_PARALLEL_H_
