// Terse construction helpers for scalar expressions, used by tests, the
// fluent front end, and the examples:
//
//   using namespace nexus::exprs;
//   ExprPtr pred = Gt(Col("temp"), Lit(30.0));
#ifndef NEXUS_EXPR_BUILDER_H_
#define NEXUS_EXPR_BUILDER_H_

#include <string>
#include <vector>

#include "expr/expr.h"

namespace nexus {
namespace exprs {

inline ExprPtr Lit(int64_t v) { return Expr::Literal(Value::Int64(v)); }
inline ExprPtr Lit(int v) { return Expr::Literal(Value::Int64(v)); }
inline ExprPtr Lit(double v) { return Expr::Literal(Value::Float64(v)); }
inline ExprPtr Lit(bool v) { return Expr::Literal(Value::Bool(v)); }
inline ExprPtr Lit(const char* v) { return Expr::Literal(Value::String(v)); }
inline ExprPtr Lit(std::string v) {
  return Expr::Literal(Value::String(std::move(v)));
}
inline ExprPtr NullLit() { return Expr::Literal(Value::Null()); }

inline ExprPtr Col(std::string name) { return Expr::ColumnRef(std::move(name)); }

inline ExprPtr Neg(ExprPtr e) { return Expr::Unary(UnaryOp::kNeg, std::move(e)); }
inline ExprPtr Not(ExprPtr e) { return Expr::Unary(UnaryOp::kNot, std::move(e)); }

inline ExprPtr Add(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kAdd, std::move(a), std::move(b));
}
inline ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kSub, std::move(a), std::move(b));
}
inline ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kMul, std::move(a), std::move(b));
}
inline ExprPtr Div(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kDiv, std::move(a), std::move(b));
}
inline ExprPtr Mod(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kMod, std::move(a), std::move(b));
}
inline ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kEq, std::move(a), std::move(b));
}
inline ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kNe, std::move(a), std::move(b));
}
inline ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kLt, std::move(a), std::move(b));
}
inline ExprPtr Le(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kLe, std::move(a), std::move(b));
}
inline ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kGt, std::move(a), std::move(b));
}
inline ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kGe, std::move(a), std::move(b));
}
inline ExprPtr And(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kAnd, std::move(a), std::move(b));
}
inline ExprPtr Or(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kOr, std::move(a), std::move(b));
}

inline ExprPtr Func(std::string name, std::vector<ExprPtr> args) {
  return Expr::FuncCall(std::move(name), std::move(args));
}
inline ExprPtr Cast(DataType target, ExprPtr e) {
  return Expr::Cast(target, std::move(e));
}

/// Conjunction of a predicate list; empty list yields literal true.
inline ExprPtr AndAll(std::vector<ExprPtr> preds) {
  if (preds.empty()) return Lit(true);
  ExprPtr out = preds[0];
  for (size_t i = 1; i < preds.size(); ++i) out = And(out, preds[i]);
  return out;
}

}  // namespace exprs
}  // namespace nexus

#endif  // NEXUS_EXPR_BUILDER_H_
