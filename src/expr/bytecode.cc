#include "expr/bytecode.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/hash.h"
#include "common/str_util.h"
#include "telemetry/metrics.h"

namespace nexus {

const char* OpCodeName(OpCode op) {
  switch (op) {
    case OpCode::kLoadConst: return "load_const";
    case OpCode::kLoadNull: return "load_null";
    case OpCode::kLoadCol: return "load_col";
    case OpCode::kCastIntToDouble: return "cast_i2d";
    case OpCode::kCastDoubleToInt: return "cast_d2i";
    case OpCode::kCastBoolToInt: return "cast_b2i";
    case OpCode::kCastBoolToDouble: return "cast_b2d";
    case OpCode::kCastIntToBool: return "cast_i2b";
    case OpCode::kCastDoubleToBool: return "cast_d2b";
    case OpCode::kCastIntToString: return "cast_i2s";
    case OpCode::kCastDoubleToString: return "cast_d2s";
    case OpCode::kCastBoolToString: return "cast_b2s";
    case OpCode::kNegInt: return "neg_i";
    case OpCode::kNegDouble: return "neg_d";
    case OpCode::kNotBool: return "not_b";
    case OpCode::kAddInt: return "add_i";
    case OpCode::kSubInt: return "sub_i";
    case OpCode::kMulInt: return "mul_i";
    case OpCode::kModInt: return "mod_i";
    case OpCode::kAddDouble: return "add_d";
    case OpCode::kSubDouble: return "sub_d";
    case OpCode::kMulDouble: return "mul_d";
    case OpCode::kDivDouble: return "div_d";
    case OpCode::kConcatStr: return "concat_s";
    case OpCode::kCmpInt: return "cmp_i";
    case OpCode::kCmpDouble: return "cmp_d";
    case OpCode::kCmpBool: return "cmp_b";
    case OpCode::kCmpString: return "cmp_s";
    case OpCode::kAndBool: return "and_b";
    case OpCode::kOrBool: return "or_b";
    case OpCode::kAbsInt: return "abs_i";
    case OpCode::kAbsDouble: return "abs_d";
    case OpCode::kSignInt: return "sign_i";
    case OpCode::kSignDouble: return "sign_d";
    case OpCode::kSqrt: return "sqrt";
    case OpCode::kExp: return "exp";
    case OpCode::kLog: return "log";
    case OpCode::kSin: return "sin";
    case OpCode::kCos: return "cos";
    case OpCode::kPow: return "pow";
    case OpCode::kFloor: return "floor";
    case OpCode::kCeil: return "ceil";
    case OpCode::kRound: return "round";
    case OpCode::kMinInt: return "min_i";
    case OpCode::kMaxInt: return "max_i";
    case OpCode::kMinDouble: return "min_d";
    case OpCode::kMaxDouble: return "max_d";
    case OpCode::kMinString: return "min_s";
    case OpCode::kMaxString: return "max_s";
    case OpCode::kIf: return "if";
    case OpCode::kCoalesce: return "coalesce";
    case OpCode::kIsNull: return "is_null";
    case OpCode::kLength: return "length";
    case OpCode::kConcat: return "concat";
    case OpCode::kLower: return "lower";
    case OpCode::kUpper: return "upper";
    case OpCode::kSubstr: return "substr";
  }
  return "?";
}

std::string ExprProgram::ToString() const {
  std::string out;
  for (const Instr& in : instrs) {
    out += StrCat("r", in.dst, " = ", OpCodeName(in.op));
    switch (in.op) {
      case OpCode::kLoadConst:
        out += StrCat(" ", const_pool[in.aux].ToString());
        break;
      case OpCode::kLoadNull:
        break;
      case OpCode::kLoadCol:
        out += StrCat(" col", in.aux);
        break;
      default: {
        if (!in.args.empty()) {
          for (uint16_t r : in.args) out += StrCat(" r", r);
        } else {
          out += StrCat(" r", in.a);
          if (in.op == OpCode::kIf || in.op == OpCode::kSubstr) {
            out += StrCat(" r", in.b, " r", in.c);
          } else if (in.op == OpCode::kPow) {
            out += StrCat(" r", in.b);
          } else if (in.op >= OpCode::kAddInt && in.op <= OpCode::kOrBool) {
            out += StrCat(" r", in.b);
            if (in.op >= OpCode::kCmpInt && in.op <= OpCode::kCmpString) {
              static const char* kPred[] = {"==", "!=", "<", "<=", ">", ">="};
              out += StrCat(" ", kPred[in.aux]);
            }
          }
        }
        break;
      }
    }
    out += "\n";
  }
  for (size_t i = 0; i < outputs.size(); ++i) {
    out += StrCat("out", i, " = r", outputs[i], " : ",
                  DataTypeName(out_types[i]), "\n");
  }
  return out;
}

namespace {

Status Uncompilable(const char* why) {
  return Status::Unsupported(StrCat("expression not compilable: ", why));
}

/// Bottom-up single-pass compiler. Assumes the input already type-checks
/// under InferExprType (callers infer first); anything suspicious returns
/// kUnsupported rather than guessing, and the caller falls back to the
/// interpreter which reports the real error.
class Compiler {
 public:
  explicit Compiler(const Schema& schema) : schema_(schema) {}

  Result<ExprProgram> Compile(const std::vector<ExprPtr>& exprs) {
    for (const ExprPtr& e : exprs) {
      if (e == nullptr) return Uncompilable("null expression");
      NEXUS_ASSIGN_OR_RETURN(RegInfo out, CompileNode(*e));
      prog_.outputs.push_back(out.reg);
      prog_.out_types.push_back(out.type);
    }
    return std::move(prog_);
  }

 private:
  struct RegInfo {
    uint16_t reg;
    DataType type;
  };

  Result<uint16_t> Alloc(DataType t) {
    if (prog_.reg_types.size() >= 65500) return Uncompilable("register limit");
    prog_.reg_types.push_back(t);
    return static_cast<uint16_t>(prog_.reg_types.size() - 1);
  }

  Result<RegInfo> Emit(OpCode op, DataType out, uint16_t a = 0, uint16_t b = 0,
                       uint16_t c = 0, uint16_t aux = 0,
                       std::vector<uint16_t> args = {}) {
    NEXUS_ASSIGN_OR_RETURN(uint16_t dst, Alloc(out));
    prog_.instrs.push_back(Instr{op, dst, a, b, c, aux, std::move(args)});
    return RegInfo{dst, out};
  }

  /// Numeric/bool promotion; identity when from == to. String-parsing casts
  /// are refused (the one runtime-fallible operation; see bytecode.h).
  Result<RegInfo> Coerce(RegInfo in, DataType to) {
    if (in.type == to) return in;
    uint32_t key = (static_cast<uint32_t>(in.reg) << 2) | static_cast<uint32_t>(to);
    auto it = cast_memo_.find(key);
    if (it != cast_memo_.end()) return RegInfo{it->second, to};
    OpCode op;
    switch (in.type) {
      case DataType::kInt64:
        op = to == DataType::kFloat64 ? OpCode::kCastIntToDouble
             : to == DataType::kBool  ? OpCode::kCastIntToBool
                                      : OpCode::kCastIntToString;
        break;
      case DataType::kFloat64:
        op = to == DataType::kInt64 ? OpCode::kCastDoubleToInt
             : to == DataType::kBool ? OpCode::kCastDoubleToBool
                                     : OpCode::kCastDoubleToString;
        break;
      case DataType::kBool:
        op = to == DataType::kInt64    ? OpCode::kCastBoolToInt
             : to == DataType::kFloat64 ? OpCode::kCastBoolToDouble
                                        : OpCode::kCastBoolToString;
        break;
      case DataType::kString:
      default:
        return Uncompilable("string parse cast is runtime-fallible");
    }
    NEXUS_ASSIGN_OR_RETURN(RegInfo out, Emit(op, to, in.reg));
    cast_memo_[key] = out.reg;
    return out;
  }

  Result<RegInfo> CompileNode(const Expr& expr) {
    // CSE: structurally identical subtrees (within this program) share one
    // register. Hash bucket entries are verified with Equals, so collisions
    // only cost the lookup.
    uint64_t h = expr.Hash();
    auto bucket = cse_.find(h);
    if (bucket != cse_.end()) {
      for (const auto& [node, info] : bucket->second) {
        if (node->Equals(expr)) return info;
      }
    }
    NEXUS_ASSIGN_OR_RETURN(RegInfo info, CompileNodeUncached(expr));
    cse_[h].emplace_back(&expr, info);
    return info;
  }

  Result<RegInfo> CompileNodeUncached(const Expr& expr) {
    switch (expr.kind()) {
      case ExprKind::kLiteral: {
        const Value& v = expr.literal();
        if (v.is_null()) {
          // Untyped null infers as float64 (see InferExprType).
          return Emit(OpCode::kLoadNull, DataType::kFloat64);
        }
        uint16_t slot = 0;
        bool found = false;
        for (size_t i = 0; i < prog_.const_pool.size(); ++i) {
          const Value& p = prog_.const_pool[i];
          if (p.type() == v.type() && p.Compare(v) == 0) {
            slot = static_cast<uint16_t>(i);
            found = true;
            break;
          }
        }
        if (!found) {
          if (prog_.const_pool.size() >= 65500) {
            return Uncompilable("constant pool limit");
          }
          slot = static_cast<uint16_t>(prog_.const_pool.size());
          prog_.const_pool.push_back(v);
        }
        return Emit(OpCode::kLoadConst, v.type(), 0, 0, 0, slot);
      }
      case ExprKind::kColumnRef: {
        int i = schema_.FindField(expr.column_name());
        if (i < 0) return Uncompilable("unknown column");
        return Emit(OpCode::kLoadCol, schema_.field(i).type, 0, 0, 0,
                    static_cast<uint16_t>(i));
      }
      case ExprKind::kUnary: {
        NEXUS_ASSIGN_OR_RETURN(RegInfo a, CompileNode(*expr.child(0)));
        if (expr.unary_op() == UnaryOp::kNeg) {
          if (a.type == DataType::kInt64) {
            return Emit(OpCode::kNegInt, DataType::kInt64, a.reg);
          }
          if (a.type == DataType::kFloat64) {
            return Emit(OpCode::kNegDouble, DataType::kFloat64, a.reg);
          }
          return Uncompilable("neg of non-numeric");
        }
        if (a.type != DataType::kBool) return Uncompilable("not of non-bool");
        return Emit(OpCode::kNotBool, DataType::kBool, a.reg);
      }
      case ExprKind::kBinary:
        return CompileBinary(expr);
      case ExprKind::kFuncCall:
        return CompileFunc(expr);
      case ExprKind::kCast: {
        NEXUS_ASSIGN_OR_RETURN(RegInfo a, CompileNode(*expr.child(0)));
        return Coerce(a, expr.cast_target());
      }
    }
    return Uncompilable("unhandled expr kind");
  }

  Result<RegInfo> CompileBinary(const Expr& expr) {
    BinaryOp op = expr.binary_op();
    NEXUS_ASSIGN_OR_RETURN(RegInfo l, CompileNode(*expr.child(0)));
    NEXUS_ASSIGN_OR_RETURN(RegInfo r, CompileNode(*expr.child(1)));
    if (IsLogical(op)) {
      if (l.type != DataType::kBool || r.type != DataType::kBool) {
        return Uncompilable("logical op on non-bool");
      }
      return Emit(op == BinaryOp::kAnd ? OpCode::kAndBool : OpCode::kOrBool,
                  DataType::kBool, l.reg, r.reg);
    }
    if (IsComparison(op)) {
      uint16_t pred = static_cast<uint16_t>(static_cast<int>(op) -
                                            static_cast<int>(BinaryOp::kEq));
      if (l.type == r.type) {
        OpCode oc;
        switch (l.type) {
          case DataType::kInt64: oc = OpCode::kCmpInt; break;
          case DataType::kFloat64: oc = OpCode::kCmpDouble; break;
          case DataType::kBool: oc = OpCode::kCmpBool; break;
          case DataType::kString: oc = OpCode::kCmpString; break;
          default: return Uncompilable("uncomparable type");
        }
        return Emit(oc, DataType::kBool, l.reg, r.reg, 0, pred);
      }
      if (IsNumeric(l.type) && IsNumeric(r.type)) {
        // Mixed int64/float64: Value::Compare compares in double.
        NEXUS_ASSIGN_OR_RETURN(l, Coerce(l, DataType::kFloat64));
        NEXUS_ASSIGN_OR_RETURN(r, Coerce(r, DataType::kFloat64));
        return Emit(OpCode::kCmpDouble, DataType::kBool, l.reg, r.reg, 0, pred);
      }
      return Uncompilable("mixed-type comparison");
    }
    // Arithmetic.
    if (op == BinaryOp::kAdd && l.type == DataType::kString &&
        r.type == DataType::kString) {
      return Emit(OpCode::kConcatStr, DataType::kString, l.reg, r.reg);
    }
    if (!IsNumeric(l.type) || !IsNumeric(r.type)) {
      return Uncompilable("arithmetic on non-numeric");
    }
    bool int_math =
        l.type == DataType::kInt64 && r.type == DataType::kInt64;
    switch (op) {
      case BinaryOp::kDiv: {
        NEXUS_ASSIGN_OR_RETURN(l, Coerce(l, DataType::kFloat64));
        NEXUS_ASSIGN_OR_RETURN(r, Coerce(r, DataType::kFloat64));
        return Emit(OpCode::kDivDouble, DataType::kFloat64, l.reg, r.reg);
      }
      case BinaryOp::kMod:
        if (!int_math) return Uncompilable("mod of non-int64");
        return Emit(OpCode::kModInt, DataType::kInt64, l.reg, r.reg);
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul: {
        OpCode oc;
        if (int_math) {
          oc = op == BinaryOp::kAdd   ? OpCode::kAddInt
               : op == BinaryOp::kSub ? OpCode::kSubInt
                                      : OpCode::kMulInt;
          return Emit(oc, DataType::kInt64, l.reg, r.reg);
        }
        NEXUS_ASSIGN_OR_RETURN(l, Coerce(l, DataType::kFloat64));
        NEXUS_ASSIGN_OR_RETURN(r, Coerce(r, DataType::kFloat64));
        oc = op == BinaryOp::kAdd   ? OpCode::kAddDouble
             : op == BinaryOp::kSub ? OpCode::kSubDouble
                                    : OpCode::kMulDouble;
        return Emit(oc, DataType::kFloat64, l.reg, r.reg);
      }
      default:
        return Uncompilable("unhandled binary op");
    }
  }

  Result<RegInfo> CompileFunc(const Expr& expr) {
    const std::string& f = expr.func_name();
    std::vector<RegInfo> args;
    args.reserve(expr.children().size());
    for (const ExprPtr& c : expr.children()) {
      NEXUS_ASSIGN_OR_RETURN(RegInfo a, CompileNode(*c));
      args.push_back(a);
    }
    auto arity = [&](size_t lo, size_t hi) {
      return args.size() >= lo && args.size() <= hi;
    };
    auto all_numeric = [&] {
      for (const RegInfo& a : args) {
        if (!IsNumeric(a.type)) return false;
      }
      return true;
    };
    if (f == "is_null") {
      if (!arity(1, 1)) return Uncompilable("is_null arity");
      return Emit(OpCode::kIsNull, DataType::kBool, args[0].reg);
    }
    if (f == "coalesce") {
      // Mixed int64/float64 arguments are refused (like min/max): the
      // interpreter hands the chosen argument through with its dynamic type,
      // so downstream integer arithmetic would run exact where the promoted
      // double register rounds above 2^53.
      if (args.empty()) return Uncompilable("coalesce arity");
      DataType t = args[0].type;
      std::vector<uint16_t> regs;
      for (const RegInfo& a : args) {
        if (a.type != t) return Uncompilable("coalesce type mix");
        regs.push_back(a.reg);
      }
      return Emit(OpCode::kCoalesce, t, 0, 0, 0, 0, std::move(regs));
    }
    if (f == "if") {
      // Branches must agree exactly, for the same reason as coalesce.
      if (!arity(3, 3) || args[0].type != DataType::kBool) {
        return Uncompilable("if signature");
      }
      if (args[1].type != args[2].type) {
        return Uncompilable("if branch type mix");
      }
      return Emit(OpCode::kIf, args[1].type, args[0].reg, args[1].reg,
                  args[2].reg);
    }
    if (f == "abs" || f == "sign") {
      if (!arity(1, 1) || !all_numeric()) return Uncompilable("abs/sign");
      bool is_int = args[0].type == DataType::kInt64;
      if (f == "abs") {
        return Emit(is_int ? OpCode::kAbsInt : OpCode::kAbsDouble,
                    args[0].type, args[0].reg);
      }
      return Emit(is_int ? OpCode::kSignInt : OpCode::kSignDouble,
                  args[0].type, args[0].reg);
    }
    if (f == "sqrt" || f == "exp" || f == "log" || f == "sin" || f == "cos") {
      if (!arity(1, 1) || !all_numeric()) return Uncompilable("unary math");
      NEXUS_ASSIGN_OR_RETURN(RegInfo a, Coerce(args[0], DataType::kFloat64));
      OpCode oc = f == "sqrt"  ? OpCode::kSqrt
                  : f == "exp" ? OpCode::kExp
                  : f == "log" ? OpCode::kLog
                  : f == "sin" ? OpCode::kSin
                               : OpCode::kCos;
      return Emit(oc, DataType::kFloat64, a.reg);
    }
    if (f == "pow") {
      if (!arity(2, 2) || !all_numeric()) return Uncompilable("pow");
      NEXUS_ASSIGN_OR_RETURN(RegInfo a, Coerce(args[0], DataType::kFloat64));
      NEXUS_ASSIGN_OR_RETURN(RegInfo b, Coerce(args[1], DataType::kFloat64));
      return Emit(OpCode::kPow, DataType::kFloat64, a.reg, b.reg);
    }
    if (f == "floor" || f == "ceil" || f == "round") {
      if (!arity(1, 1) || !all_numeric()) return Uncompilable("floor/ceil/round");
      // The interpreter widens to double before rounding (AsDouble), so the
      // compiled form does the same even for int64 inputs.
      NEXUS_ASSIGN_OR_RETURN(RegInfo a, Coerce(args[0], DataType::kFloat64));
      OpCode oc = f == "floor"  ? OpCode::kFloor
                  : f == "ceil" ? OpCode::kCeil
                                : OpCode::kRound;
      return Emit(oc, DataType::kInt64, a.reg);
    }
    if (f == "min" || f == "max") {
      if (args.size() < 2) return Uncompilable("min/max arity");
      bool all_int = true, all_dbl = true, all_str = true;
      for (const RegInfo& a : args) {
        all_int &= a.type == DataType::kInt64;
        all_dbl &= a.type == DataType::kFloat64;
        all_str &= a.type == DataType::kString;
      }
      // Mixed int64/float64 is refused: the interpreter's pairwise fold
      // compares int64 pairs exactly, which a promoted double fold cannot
      // reproduce above 2^53 (see the byte-identity contract in bytecode.h).
      OpCode oc;
      if (all_int) {
        oc = f == "min" ? OpCode::kMinInt : OpCode::kMaxInt;
      } else if (all_dbl) {
        oc = f == "min" ? OpCode::kMinDouble : OpCode::kMaxDouble;
      } else if (all_str) {
        oc = f == "min" ? OpCode::kMinString : OpCode::kMaxString;
      } else {
        return Uncompilable("min/max over mixed types");
      }
      std::vector<uint16_t> regs;
      for (const RegInfo& a : args) regs.push_back(a.reg);
      return Emit(oc, args[0].type, 0, 0, 0, 0, std::move(regs));
    }
    if (f == "length") {
      if (!arity(1, 1) || args[0].type != DataType::kString) {
        return Uncompilable("length");
      }
      return Emit(OpCode::kLength, DataType::kInt64, args[0].reg);
    }
    if (f == "concat") {
      if (args.empty()) return Uncompilable("concat arity");
      std::vector<uint16_t> regs;
      for (const RegInfo& a : args) {
        if (a.type != DataType::kString) return Uncompilable("concat non-string");
        regs.push_back(a.reg);
      }
      return Emit(OpCode::kConcat, DataType::kString, 0, 0, 0, 0,
                  std::move(regs));
    }
    if (f == "lower" || f == "upper") {
      if (!arity(1, 1) || args[0].type != DataType::kString) {
        return Uncompilable("lower/upper");
      }
      return Emit(f == "lower" ? OpCode::kLower : OpCode::kUpper,
                  DataType::kString, args[0].reg);
    }
    if (f == "substr") {
      if (!arity(3, 3) || args[0].type != DataType::kString ||
          args[1].type != DataType::kInt64 || args[2].type != DataType::kInt64) {
        return Uncompilable("substr signature");
      }
      return Emit(OpCode::kSubstr, DataType::kString, args[0].reg, args[1].reg,
                  args[2].reg);
    }
    return Uncompilable("unknown function");
  }

  const Schema& schema_;
  ExprProgram prog_;
  std::unordered_map<uint64_t, std::vector<std::pair<const Expr*, RegInfo>>>
      cse_;
  std::unordered_map<uint32_t, uint16_t> cast_memo_;
};

}  // namespace

Result<ExprProgram> CompileExprs(const std::vector<ExprPtr>& exprs,
                                 const Schema& input) {
  Compiler c(input);
  return c.Compile(exprs);
}

Result<ExprProgram> CompileExpr(const ExprPtr& expr, const Schema& input) {
  return CompileExprs({expr}, input);
}

// ---------------------------------------------------------------------------
// Compile switch.
// ---------------------------------------------------------------------------

namespace {

// -1 = no override; 0 = off; 1 = on.
std::atomic<int> g_compile_override{-1};

bool EnvExprCompile() {
  static const bool from_env = [] {
    const char* env = std::getenv("NEXUS_EXPR_COMPILE");
    if (env != nullptr &&
        (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0)) {
      return false;
    }
    return true;
  }();
  return from_env;
}

}  // namespace

bool ExprCompileEnabled() {
  int o = g_compile_override.load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  return EnvExprCompile();
}

void SetExprCompileOverride(bool on) {
  g_compile_override.store(on ? 1 : 0, std::memory_order_relaxed);
}

void ClearExprCompileOverride() {
  g_compile_override.store(-1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Program cache.
// ---------------------------------------------------------------------------

namespace {

constexpr size_t kProgramCacheCapacity = 256;

struct CacheEntry {
  std::vector<ExprPtr> exprs;
  std::vector<Field> fields;
  ExprProgramPtr program;  ///< null = negatively cached (uncompilable)
};

struct ProgramCache {
  std::mutex mu;
  std::unordered_map<uint64_t, CacheEntry> entries;
  std::deque<uint64_t> fifo;
};

ProgramCache& Cache() {
  static ProgramCache* c = new ProgramCache();
  return *c;
}

uint64_t CacheKey(const std::vector<ExprPtr>& exprs, const Schema& input) {
  uint64_t h = HashInt64(exprs.size());
  for (const ExprPtr& e : exprs) h = HashCombine(h, e == nullptr ? 0 : e->Hash());
  for (const Field& f : input.fields()) {
    h = HashCombine(h, HashString(f.name));
    h = HashCombine(h, HashInt64(static_cast<uint64_t>(f.type) * 2 +
                                 (f.is_dimension ? 1 : 0)));
  }
  return h;
}

bool EntryMatches(const CacheEntry& e, const std::vector<ExprPtr>& exprs,
                  const Schema& input) {
  if (e.exprs.size() != exprs.size()) return false;
  if (e.fields.size() != static_cast<size_t>(input.num_fields())) return false;
  for (size_t i = 0; i < e.fields.size(); ++i) {
    if (!(e.fields[i] == input.field(static_cast<int>(i)))) return false;
  }
  for (size_t i = 0; i < exprs.size(); ++i) {
    if ((e.exprs[i] == nullptr) != (exprs[i] == nullptr)) return false;
    if (exprs[i] != nullptr && !e.exprs[i]->Equals(*exprs[i])) return false;
  }
  return true;
}

}  // namespace

Result<ExprProgramPtr> GetOrCompileProgram(const std::vector<ExprPtr>& exprs,
                                           const Schema& input) {
  auto& reg = telemetry::MetricsRegistry::Global();
  static telemetry::Counter* hits = reg.counter("expr.compile_cache_hit");
  static telemetry::Counter* compiles = reg.counter("expr.compile");
  static telemetry::Counter* refused = reg.counter("expr.compile_unsupported");
  uint64_t key = CacheKey(exprs, input);
  ProgramCache& cache = Cache();
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    auto it = cache.entries.find(key);
    if (it != cache.entries.end() && EntryMatches(it->second, exprs, input)) {
      hits->Increment();
      if (it->second.program == nullptr) {
        return Status::Unsupported("expression not compilable (cached)");
      }
      return it->second.program;
    }
  }
  // Compile outside the lock; concurrent first-compiles of the same program
  // are rare and at worst redundant, never wrong.
  Result<ExprProgram> compiled = CompileExprs(exprs, input);
  CacheEntry entry;
  entry.exprs = exprs;
  entry.fields = input.fields();
  Status refusal = Status::OK();
  if (compiled.ok()) {
    compiles->Increment();
    entry.program =
        std::make_shared<const ExprProgram>(compiled.MoveValue());
  } else if (compiled.status().IsUnsupported()) {
    refused->Increment();
    refusal = compiled.status();
  } else {
    return compiled.status();  // real error: do not cache
  }
  ExprProgramPtr program = entry.program;
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    if (cache.entries.find(key) == cache.entries.end()) {
      while (cache.fifo.size() >= kProgramCacheCapacity) {
        cache.entries.erase(cache.fifo.front());
        cache.fifo.pop_front();
      }
      cache.fifo.push_back(key);
    }
    cache.entries[key] = std::move(entry);
  }
  if (program == nullptr) return refusal;
  return program;
}

Result<ExprProgramPtr> GetOrCompileProgram(const Expr& expr,
                                           const Schema& input) {
  return GetOrCompileProgram(std::vector<ExprPtr>{expr.Clone()}, input);
}

void ClearProgramCacheForTest() {
  ProgramCache& cache = Cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  cache.entries.clear();
  cache.fifo.clear();
}

}  // namespace nexus
