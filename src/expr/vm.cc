#include "expr/vm.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <type_traits>

#include "common/str_util.h"

namespace nexus {

namespace {

// Three-way compare matching Value::Compare's Cmp template, including its
// NaN behavior (NaN compares "equal" to everything because both a<b and a>b
// are false). Comparison opcodes must reproduce this exactly.
template <typename T>
inline int Cmp3(const T& a, const T& b) {
  return a < b ? -1 : (a > b ? 1 : 0);
}

inline bool ApplyPred(CmpPred p, int c) {
  switch (p) {
    case CmpPred::kEq: return c == 0;
    case CmpPred::kNe: return c != 0;
    case CmpPred::kLt: return c < 0;
    case CmpPred::kLe: return c <= 0;
    case CmpPred::kGt: return c > 0;
    case CmpPred::kGe: return c >= 0;
  }
  return false;
}

// Strict unary op: null in → null out; computes valid lanes only and writes
// the type default into null lanes.
template <typename TA, typename TO, typename F>
inline void Strict1(const VMReg& a, const TA* av, VMReg* out, TO* ov,
                    int64_t n, F f) {
  if (a.valid == nullptr) {
    for (int64_t i = 0; i < n; ++i) ov[i] = f(av[i]);
    out->ClearValid();
    return;
  }
  uint8_t* v = out->OwnValid(n);
  for (int64_t i = 0; i < n; ++i) {
    if (a.valid[i]) {
      ov[i] = f(av[i]);
    } else {
      ov[i] = TO();
      v[i] = 0;
    }
  }
}

// Strict binary op.
template <typename TA, typename TB, typename TO, typename F>
inline void Strict2(const VMReg& a, const TA* av, const VMReg& b,
                    const TB* bv, VMReg* out, TO* ov, int64_t n, F f) {
  if (a.valid == nullptr && b.valid == nullptr) {
    for (int64_t i = 0; i < n; ++i) ov[i] = f(av[i], bv[i]);
    out->ClearValid();
    return;
  }
  uint8_t* v = out->OwnValid(n);
  for (int64_t i = 0; i < n; ++i) {
    if (a.LaneValid(i) && b.LaneValid(i)) {
      ov[i] = f(av[i], bv[i]);
    } else {
      ov[i] = TO();
      v[i] = 0;
    }
  }
}

// Null-producing unary op: `f` stores into *out and reports lane validity
// (sqrt of negative → null, log of non-positive → null).
template <typename TA, typename TO, typename F>
inline void Fallible1(const VMReg& a, const TA* av, VMReg* out, TO* ov,
                      int64_t n, F f) {
  uint8_t* v = out->OwnValid(n);
  for (int64_t i = 0; i < n; ++i) {
    bool ok = a.LaneValid(i) && f(av[i], &ov[i]);
    if (!ok) {
      ov[i] = TO();
      v[i] = 0;
    }
  }
}

// Null-producing binary op (div/mod by zero → null).
template <typename TA, typename TB, typename TO, typename F>
inline void Fallible2(const VMReg& a, const TA* av, const VMReg& b,
                      const TB* bv, VMReg* out, TO* ov, int64_t n, F f) {
  uint8_t* v = out->OwnValid(n);
  for (int64_t i = 0; i < n; ++i) {
    bool ok = a.LaneValid(i) && b.LaneValid(i) && f(av[i], bv[i], &ov[i]);
    if (!ok) {
      ov[i] = TO();
      v[i] = 0;
    }
  }
}

// Variadic strict fold (min/max): all args valid → fold; else null.
// `take(candidate, best)` mirrors the interpreter's Compare(best) < / > 0.
template <typename T, typename F>
inline void FoldMinMax(const std::vector<VMReg>& regs,
                       const std::vector<uint16_t>& args, const T* const* ptrs,
                       VMReg* out, T* ov, int64_t n, F take) {
  bool any_null = false;
  for (uint16_t r : args) any_null |= regs[r].valid != nullptr;
  if (!any_null) {
    for (int64_t i = 0; i < n; ++i) {
      T best = ptrs[0][i];
      for (size_t k = 1; k < args.size(); ++k) {
        if (take(ptrs[k][i], best)) best = ptrs[k][i];
      }
      ov[i] = best;
    }
    out->ClearValid();
    return;
  }
  uint8_t* v = out->OwnValid(n);
  for (int64_t i = 0; i < n; ++i) {
    bool ok = true;
    for (uint16_t r : args) ok &= regs[r].LaneValid(i);
    if (!ok) {
      ov[i] = T();
      v[i] = 0;
      continue;
    }
    T best = ptrs[0][i];
    for (size_t k = 1; k < args.size(); ++k) {
      if (take(ptrs[k][i], best)) best = ptrs[k][i];
    }
    ov[i] = best;
  }
}

}  // namespace

void ExprVM::Bind(const Table& table, int64_t capacity) {
  table_ = &table;
  regs_.clear();
  regs_.resize(static_cast<size_t>(prog_->num_regs()));
  for (int r = 0; r < prog_->num_regs(); ++r) {
    regs_[static_cast<size_t>(r)].type =
        prog_->reg_types[static_cast<size_t>(r)];
  }
  body_.clear();
  for (const Instr& in : prog_->instrs) {
    switch (in.op) {
      case OpCode::kLoadConst: {
        VMReg& o = regs_[in.dst];
        const Value& v = prog_->const_pool[in.aux];
        switch (o.type) {
          case DataType::kInt64:
            o.vi.assign(static_cast<size_t>(capacity), v.AsInt64());
            o.i = o.vi.data();
            break;
          case DataType::kFloat64:
            o.vd.assign(static_cast<size_t>(capacity), v.AsFloat64());
            o.d = o.vd.data();
            break;
          case DataType::kBool:
            o.vb.assign(static_cast<size_t>(capacity), v.AsBool() ? 1 : 0);
            o.b = o.vb.data();
            break;
          case DataType::kString:
            o.vs.assign(static_cast<size_t>(capacity), v.AsString());
            o.s = o.vs.data();
            break;
        }
        o.ClearValid();
        break;
      }
      case OpCode::kLoadNull: {
        VMReg& o = regs_[in.dst];
        o.vd.assign(static_cast<size_t>(capacity), 0.0);
        o.d = o.vd.data();
        o.vvalid.assign(static_cast<size_t>(capacity), 0);
        o.valid = o.vvalid.data();
        break;
      }
      default:
        body_.push_back(&in);
        break;
    }
  }
  len_ = 0;
}

void ExprVM::Run(int64_t begin, int64_t end) {
  len_ = end - begin;
  for (const Instr* in : body_) Exec(*in, begin, len_);
}

void ExprVM::Exec(const Instr& in, int64_t begin, int64_t n) {
  VMReg& o = regs_[in.dst];
  const VMReg& A = regs_[in.a];
  const VMReg& B = regs_[in.b];
  switch (in.op) {
    case OpCode::kLoadConst:
    case OpCode::kLoadNull:
      break;  // prologue; handled in Bind
    case OpCode::kLoadCol: {
      const Column& col = table_->column(in.aux);
      switch (col.type()) {
        case DataType::kInt64: o.i = col.ints().data() + begin; break;
        case DataType::kFloat64: o.d = col.doubles().data() + begin; break;
        case DataType::kBool: o.b = col.bools().data() + begin; break;
        case DataType::kString: o.s = col.strings().data() + begin; break;
      }
      o.valid =
          col.has_nulls() ? col.validity().data() + begin : nullptr;
      break;
    }
    case OpCode::kCastIntToDouble:
      Strict1(A, A.i, &o, o.OwnD(n), n,
              [](int64_t x) { return static_cast<double>(x); });
      break;
    case OpCode::kCastDoubleToInt:
      Strict1(A, A.d, &o, o.OwnI(n), n,
              [](double x) { return static_cast<int64_t>(x); });
      break;
    case OpCode::kCastBoolToInt:
      Strict1(A, A.b, &o, o.OwnI(n), n,
              [](uint8_t x) { return static_cast<int64_t>(x ? 1 : 0); });
      break;
    case OpCode::kCastBoolToDouble:
      Strict1(A, A.b, &o, o.OwnD(n), n,
              [](uint8_t x) { return x ? 1.0 : 0.0; });
      break;
    case OpCode::kCastIntToBool:
      Strict1(A, A.i, &o, o.OwnB(n), n,
              [](int64_t x) { return static_cast<uint8_t>(x != 0); });
      break;
    case OpCode::kCastDoubleToBool:
      Strict1(A, A.d, &o, o.OwnB(n), n,
              [](double x) { return static_cast<uint8_t>(x != 0.0); });
      break;
    case OpCode::kCastIntToString:
      Strict1(A, A.i, &o, o.OwnS(n), n,
              [](int64_t x) { return StrCat(x); });
      break;
    case OpCode::kCastDoubleToString:
      Strict1(A, A.d, &o, o.OwnS(n), n,
              [](double x) { return FormatDouble(x); });
      break;
    case OpCode::kCastBoolToString:
      Strict1(A, A.b, &o, o.OwnS(n), n, [](uint8_t x) {
        return std::string(x ? "true" : "false");
      });
      break;
    case OpCode::kNegInt:
      Strict1(A, A.i, &o, o.OwnI(n), n, [](int64_t x) { return -x; });
      break;
    case OpCode::kNegDouble:
      Strict1(A, A.d, &o, o.OwnD(n), n, [](double x) { return -x; });
      break;
    case OpCode::kNotBool:
      Strict1(A, A.b, &o, o.OwnB(n), n,
              [](uint8_t x) { return static_cast<uint8_t>(x ? 0 : 1); });
      break;
    case OpCode::kAddInt:
      Strict2(A, A.i, B, B.i, &o, o.OwnI(n), n,
              [](int64_t x, int64_t y) { return x + y; });
      break;
    case OpCode::kSubInt:
      Strict2(A, A.i, B, B.i, &o, o.OwnI(n), n,
              [](int64_t x, int64_t y) { return x - y; });
      break;
    case OpCode::kMulInt:
      Strict2(A, A.i, B, B.i, &o, o.OwnI(n), n,
              [](int64_t x, int64_t y) { return x * y; });
      break;
    case OpCode::kModInt:
      Fallible2(A, A.i, B, B.i, &o, o.OwnI(n), n,
                [](int64_t x, int64_t y, int64_t* out) {
                  if (y == 0) return false;
                  *out = x % y;
                  return true;
                });
      break;
    case OpCode::kAddDouble:
      Strict2(A, A.d, B, B.d, &o, o.OwnD(n), n,
              [](double x, double y) { return x + y; });
      break;
    case OpCode::kSubDouble:
      Strict2(A, A.d, B, B.d, &o, o.OwnD(n), n,
              [](double x, double y) { return x - y; });
      break;
    case OpCode::kMulDouble:
      Strict2(A, A.d, B, B.d, &o, o.OwnD(n), n,
              [](double x, double y) { return x * y; });
      break;
    case OpCode::kDivDouble:
      Fallible2(A, A.d, B, B.d, &o, o.OwnD(n), n,
                [](double x, double y, double* out) {
                  if (y == 0.0) return false;
                  *out = x / y;
                  return true;
                });
      break;
    case OpCode::kConcatStr:
      Strict2(A, A.s, B, B.s, &o, o.OwnS(n), n,
              [](const std::string& x, const std::string& y) { return x + y; });
      break;
    case OpCode::kCmpInt: {
      CmpPred p = static_cast<CmpPred>(in.aux);
      Strict2(A, A.i, B, B.i, &o, o.OwnB(n), n, [p](int64_t x, int64_t y) {
        return static_cast<uint8_t>(ApplyPred(p, Cmp3(x, y)));
      });
      break;
    }
    case OpCode::kCmpDouble: {
      CmpPred p = static_cast<CmpPred>(in.aux);
      Strict2(A, A.d, B, B.d, &o, o.OwnB(n), n, [p](double x, double y) {
        return static_cast<uint8_t>(ApplyPred(p, Cmp3(x, y)));
      });
      break;
    }
    case OpCode::kCmpBool: {
      CmpPred p = static_cast<CmpPred>(in.aux);
      Strict2(A, A.b, B, B.b, &o, o.OwnB(n), n, [p](uint8_t x, uint8_t y) {
        return static_cast<uint8_t>(
            ApplyPred(p, Cmp3<int>(x ? 1 : 0, y ? 1 : 0)));
      });
      break;
    }
    case OpCode::kCmpString: {
      CmpPred p = static_cast<CmpPred>(in.aux);
      Strict2(A, A.s, B, B.s, &o, o.OwnB(n), n,
              [p](const std::string& x, const std::string& y) {
                int c = x.compare(y);
                return static_cast<uint8_t>(
                    ApplyPred(p, c < 0 ? -1 : (c > 0 ? 1 : 0)));
              });
      break;
    }
    case OpCode::kAndBool: {
      uint8_t* ov = o.OwnB(n);
      if (A.valid == nullptr && B.valid == nullptr) {
        for (int64_t i = 0; i < n; ++i) {
          ov[i] = static_cast<uint8_t>(A.b[i] && B.b[i]);
        }
        o.ClearValid();
        break;
      }
      uint8_t* v = o.OwnValid(n);
      for (int64_t i = 0; i < n; ++i) {
        bool avalid = A.LaneValid(i), bvalid = B.LaneValid(i);
        // Kleene: false dominates null.
        if ((avalid && !A.b[i]) || (bvalid && !B.b[i])) {
          ov[i] = 0;
        } else if (!avalid || !bvalid) {
          ov[i] = 0;
          v[i] = 0;
        } else {
          ov[i] = 1;
        }
      }
      break;
    }
    case OpCode::kOrBool: {
      uint8_t* ov = o.OwnB(n);
      if (A.valid == nullptr && B.valid == nullptr) {
        for (int64_t i = 0; i < n; ++i) {
          ov[i] = static_cast<uint8_t>(A.b[i] || B.b[i]);
        }
        o.ClearValid();
        break;
      }
      uint8_t* v = o.OwnValid(n);
      for (int64_t i = 0; i < n; ++i) {
        bool avalid = A.LaneValid(i), bvalid = B.LaneValid(i);
        // Kleene: true dominates null.
        if ((avalid && A.b[i]) || (bvalid && B.b[i])) {
          ov[i] = 1;
        } else if (!avalid || !bvalid) {
          ov[i] = 0;
          v[i] = 0;
        } else {
          ov[i] = 0;
        }
      }
      break;
    }
    case OpCode::kAbsInt:
      Strict1(A, A.i, &o, o.OwnI(n), n,
              [](int64_t x) { return static_cast<int64_t>(std::llabs(x)); });
      break;
    case OpCode::kAbsDouble:
      Strict1(A, A.d, &o, o.OwnD(n), n, [](double x) { return std::fabs(x); });
      break;
    case OpCode::kSignInt:
      // Interpreter computes sign on AsDouble; for int64 the double's sign
      // always matches the int's, so compare the int directly (exact).
      Strict1(A, A.i, &o, o.OwnI(n), n, [](int64_t x) {
        return static_cast<int64_t>(x > 0 ? 1 : (x < 0 ? -1 : 0));
      });
      break;
    case OpCode::kSignDouble:
      Strict1(A, A.d, &o, o.OwnD(n), n, [](double x) {
        return static_cast<double>(x > 0 ? 1 : (x < 0 ? -1 : 0));
      });
      break;
    case OpCode::kSqrt:
      Fallible1(A, A.d, &o, o.OwnD(n), n, [](double x, double* out) {
        if (x < 0) return false;
        *out = std::sqrt(x);
        return true;
      });
      break;
    case OpCode::kExp:
      Strict1(A, A.d, &o, o.OwnD(n), n, [](double x) { return std::exp(x); });
      break;
    case OpCode::kLog:
      Fallible1(A, A.d, &o, o.OwnD(n), n, [](double x, double* out) {
        if (x <= 0) return false;
        *out = std::log(x);
        return true;
      });
      break;
    case OpCode::kSin:
      Strict1(A, A.d, &o, o.OwnD(n), n, [](double x) { return std::sin(x); });
      break;
    case OpCode::kCos:
      Strict1(A, A.d, &o, o.OwnD(n), n, [](double x) { return std::cos(x); });
      break;
    case OpCode::kPow:
      Strict2(A, A.d, B, B.d, &o, o.OwnD(n), n,
              [](double x, double y) { return std::pow(x, y); });
      break;
    case OpCode::kFloor:
      Strict1(A, A.d, &o, o.OwnI(n), n, [](double x) {
        return static_cast<int64_t>(std::floor(x));
      });
      break;
    case OpCode::kCeil:
      Strict1(A, A.d, &o, o.OwnI(n), n, [](double x) {
        return static_cast<int64_t>(std::ceil(x));
      });
      break;
    case OpCode::kRound:
      Strict1(A, A.d, &o, o.OwnI(n), n, [](double x) {
        return static_cast<int64_t>(std::llround(x));
      });
      break;
    case OpCode::kMinInt:
    case OpCode::kMaxInt: {
      std::vector<const int64_t*> ptrs;
      for (uint16_t r : in.args) ptrs.push_back(regs_[r].i);
      bool is_min = in.op == OpCode::kMinInt;
      FoldMinMax(regs_, in.args, ptrs.data(), &o, o.OwnI(n), n,
                 [is_min](int64_t cand, int64_t best) {
                   return is_min ? cand < best : cand > best;
                 });
      break;
    }
    case OpCode::kMinDouble:
    case OpCode::kMaxDouble: {
      std::vector<const double*> ptrs;
      for (uint16_t r : in.args) ptrs.push_back(regs_[r].d);
      bool is_min = in.op == OpCode::kMinDouble;
      // `cand < best` / `cand > best` matches the interpreter's
      // Compare(best) < 0 / > 0 fold, including NaN never being taken.
      FoldMinMax(regs_, in.args, ptrs.data(), &o, o.OwnD(n), n,
                 [is_min](double cand, double best) {
                   return is_min ? cand < best : cand > best;
                 });
      break;
    }
    case OpCode::kMinString:
    case OpCode::kMaxString: {
      std::vector<const std::string*> ptrs;
      for (uint16_t r : in.args) ptrs.push_back(regs_[r].s);
      bool is_min = in.op == OpCode::kMinString;
      FoldMinMax(regs_, in.args, ptrs.data(), &o, o.OwnS(n), n,
                 [is_min](const std::string& cand, const std::string& best) {
                   int c = cand.compare(best);
                   return is_min ? c < 0 : c > 0;
                 });
      break;
    }
    case OpCode::kIf: {
      const VMReg& C = regs_[in.c];
      uint8_t* v = o.OwnValid(n);
      auto pick = [&](auto* ov, auto sel) {
        for (int64_t i = 0; i < n; ++i) {
          if (!A.LaneValid(i)) {
            ov[i] = std::remove_reference_t<decltype(ov[0])>();
            v[i] = 0;
            continue;
          }
          const VMReg& src = A.b[i] ? B : C;
          if (!src.LaneValid(i)) {
            ov[i] = std::remove_reference_t<decltype(ov[0])>();
            v[i] = 0;
            continue;
          }
          ov[i] = sel(src, i);
        }
      };
      switch (o.type) {
        case DataType::kInt64:
          pick(o.OwnI(n), [](const VMReg& r, int64_t i) { return r.i[i]; });
          break;
        case DataType::kFloat64:
          pick(o.OwnD(n), [](const VMReg& r, int64_t i) { return r.d[i]; });
          break;
        case DataType::kBool:
          pick(o.OwnB(n), [](const VMReg& r, int64_t i) { return r.b[i]; });
          break;
        case DataType::kString:
          pick(o.OwnS(n), [](const VMReg& r, int64_t i) { return r.s[i]; });
          break;
      }
      break;
    }
    case OpCode::kCoalesce: {
      uint8_t* v = o.OwnValid(n);
      auto fill = [&](auto* ov, auto sel) {
        for (int64_t i = 0; i < n; ++i) {
          bool found = false;
          for (uint16_t r : in.args) {
            if (regs_[r].LaneValid(i)) {
              ov[i] = sel(regs_[r], i);
              found = true;
              break;
            }
          }
          if (!found) {
            ov[i] = std::remove_reference_t<decltype(ov[0])>();
            v[i] = 0;
          }
        }
      };
      switch (o.type) {
        case DataType::kInt64:
          fill(o.OwnI(n), [](const VMReg& r, int64_t i) { return r.i[i]; });
          break;
        case DataType::kFloat64:
          fill(o.OwnD(n), [](const VMReg& r, int64_t i) { return r.d[i]; });
          break;
        case DataType::kBool:
          fill(o.OwnB(n), [](const VMReg& r, int64_t i) { return r.b[i]; });
          break;
        case DataType::kString:
          fill(o.OwnS(n), [](const VMReg& r, int64_t i) { return r.s[i]; });
          break;
      }
      break;
    }
    case OpCode::kIsNull: {
      uint8_t* ov = o.OwnB(n);
      for (int64_t i = 0; i < n; ++i) {
        ov[i] = static_cast<uint8_t>(!A.LaneValid(i));
      }
      o.ClearValid();
      break;
    }
    case OpCode::kLength:
      Strict1(A, A.s, &o, o.OwnI(n), n, [](const std::string& x) {
        return static_cast<int64_t>(x.size());
      });
      break;
    case OpCode::kConcat: {
      std::string* ov = o.OwnS(n);
      bool any_null = false;
      for (uint16_t r : in.args) any_null |= regs_[r].valid != nullptr;
      if (any_null) {
        uint8_t* v = o.OwnValid(n);
        for (int64_t i = 0; i < n; ++i) {
          bool ok = true;
          for (uint16_t r : in.args) ok &= regs_[r].LaneValid(i);
          if (!ok) {
            ov[i].clear();
            v[i] = 0;
            continue;
          }
          ov[i].clear();
          for (uint16_t r : in.args) ov[i] += regs_[r].s[i];
        }
      } else {
        for (int64_t i = 0; i < n; ++i) {
          ov[i].clear();
          for (uint16_t r : in.args) ov[i] += regs_[r].s[i];
        }
        o.ClearValid();
      }
      break;
    }
    case OpCode::kLower:
      Strict1(A, A.s, &o, o.OwnS(n), n, [](const std::string& x) {
        std::string s = x;
        for (char& c : s) {
          c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        }
        return s;
      });
      break;
    case OpCode::kUpper:
      Strict1(A, A.s, &o, o.OwnS(n), n, [](const std::string& x) {
        std::string s = x;
        for (char& c : s) {
          c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
        }
        return s;
      });
      break;
    case OpCode::kSubstr: {
      const VMReg& C = regs_[in.c];
      std::string* ov = o.OwnS(n);
      if (A.valid == nullptr && B.valid == nullptr && C.valid == nullptr) {
        for (int64_t i = 0; i < n; ++i) {
          const std::string& s = A.s[i];
          int64_t pos = std::clamp<int64_t>(B.i[i], 0,
                                            static_cast<int64_t>(s.size()));
          int64_t len = std::max<int64_t>(0, C.i[i]);
          ov[i] = s.substr(static_cast<size_t>(pos), static_cast<size_t>(len));
        }
        o.ClearValid();
        break;
      }
      uint8_t* v = o.OwnValid(n);
      for (int64_t i = 0; i < n; ++i) {
        if (!A.LaneValid(i) || !B.LaneValid(i) || !C.LaneValid(i)) {
          ov[i].clear();
          v[i] = 0;
          continue;
        }
        const std::string& s = A.s[i];
        int64_t pos = std::clamp<int64_t>(B.i[i], 0,
                                          static_cast<int64_t>(s.size()));
        int64_t len = std::max<int64_t>(0, C.i[i]);
        ov[i] = s.substr(static_cast<size_t>(pos), static_cast<size_t>(len));
      }
      break;
    }
  }
}

void AppendRegister(const VMReg& r, int64_t n, Column* out) {
  switch (r.type) {
    case DataType::kInt64:
      for (int64_t i = 0; i < n; ++i) {
        if (r.LaneValid(i)) {
          out->AppendInt64(r.i[i]);
        } else {
          out->AppendNull();
        }
      }
      break;
    case DataType::kFloat64:
      for (int64_t i = 0; i < n; ++i) {
        if (r.LaneValid(i)) {
          out->AppendFloat64(r.d[i]);
        } else {
          out->AppendNull();
        }
      }
      break;
    case DataType::kBool:
      for (int64_t i = 0; i < n; ++i) {
        if (r.LaneValid(i)) {
          out->AppendBool(r.b[i] != 0);
        } else {
          out->AppendNull();
        }
      }
      break;
    case DataType::kString:
      for (int64_t i = 0; i < n; ++i) {
        if (r.LaneValid(i)) {
          out->AppendString(r.s[i]);
        } else {
          out->AppendNull();
        }
      }
      break;
  }
}

void AppendRegisterLanes(const VMReg& r, const std::vector<int64_t>& lanes,
                         Column* out) {
  switch (r.type) {
    case DataType::kInt64:
      for (int64_t i : lanes) {
        if (r.LaneValid(i)) {
          out->AppendInt64(r.i[i]);
        } else {
          out->AppendNull();
        }
      }
      break;
    case DataType::kFloat64:
      for (int64_t i : lanes) {
        if (r.LaneValid(i)) {
          out->AppendFloat64(r.d[i]);
        } else {
          out->AppendNull();
        }
      }
      break;
    case DataType::kBool:
      for (int64_t i : lanes) {
        if (r.LaneValid(i)) {
          out->AppendBool(r.b[i] != 0);
        } else {
          out->AppendNull();
        }
      }
      break;
    case DataType::kString:
      for (int64_t i : lanes) {
        if (r.LaneValid(i)) {
          out->AppendString(r.s[i]);
        } else {
          out->AppendNull();
        }
      }
      break;
  }
}

void ExprVM::AppendOutput(int k, Column* out) const {
  AppendRegister(out_reg(k), len_, out);
}

void ExprVM::AppendOutputLanes(int k, const std::vector<int64_t>& lanes,
                               Column* out) const {
  AppendRegisterLanes(out_reg(k), lanes, out);
}

}  // namespace nexus
