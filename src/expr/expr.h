// Scalar expression trees: the "small" language embedded inside algebra
// operators (filter predicates, map formulas, join conditions, aggregate
// inputs, convergence criteria of Iterate).
//
// Expressions are immutable and shared; build them with the helpers in
// expr/builder.h or the fluent front end.
#ifndef NEXUS_EXPR_EXPR_H_
#define NEXUS_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/schema.h"
#include "types/value.h"

namespace nexus {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Node discriminator.
enum class ExprKind : int {
  kLiteral,    ///< constant Value
  kColumnRef,  ///< named field of the input schema
  kUnary,      ///< neg, not
  kBinary,     ///< arithmetic / comparison / logical
  kFuncCall,   ///< built-in scalar function
  kCast,       ///< explicit type conversion
};

enum class UnaryOp : int { kNeg, kNot };

enum class BinaryOp : int {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

const char* UnaryOpName(UnaryOp op);
const char* BinaryOpName(BinaryOp op);
Result<UnaryOp> UnaryOpFromName(const std::string& name);
Result<BinaryOp> BinaryOpFromName(const std::string& name);

inline bool IsComparison(BinaryOp op) {
  return op >= BinaryOp::kEq && op <= BinaryOp::kGe;
}
inline bool IsLogical(BinaryOp op) {
  return op == BinaryOp::kAnd || op == BinaryOp::kOr;
}
inline bool IsArithmetic(BinaryOp op) {
  return op >= BinaryOp::kAdd && op <= BinaryOp::kMod;
}

/// Immutable scalar expression node.
class Expr {
 public:
  static ExprPtr Literal(Value v);
  static ExprPtr ColumnRef(std::string name);
  static ExprPtr Unary(UnaryOp op, ExprPtr child);
  static ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr FuncCall(std::string func, std::vector<ExprPtr> args);
  static ExprPtr Cast(DataType target, ExprPtr child);

  ExprKind kind() const { return kind_; }

  // Accessors; preconditions: matching kind.
  const Value& literal() const { return literal_; }
  const std::string& column_name() const { return name_; }
  UnaryOp unary_op() const { return unary_op_; }
  BinaryOp binary_op() const { return binary_op_; }
  const std::string& func_name() const { return name_; }
  DataType cast_target() const { return cast_target_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  const ExprPtr& child(int i) const { return children_[static_cast<size_t>(i)]; }

  /// Infix rendering ("(a + 1) >= b").
  std::string ToString() const;

  /// Structural equality.
  bool Equals(const Expr& other) const;

  /// Structural hash consistent with Equals.
  uint64_t Hash() const;

  /// Names of all column references in the tree (deduplicated, in first-use
  /// order).
  std::vector<std::string> ColumnRefs() const;

  /// New tree with column refs renamed per `mapping` (absent names kept).
  ExprPtr RenameColumns(
      const std::vector<std::pair<std::string, std::string>>& mapping) const;

  /// New tree with each column ref replaced by the mapped expression
  /// (absent names kept). Used to inline Extend definitions during pushdown.
  ExprPtr SubstituteColumns(
      const std::vector<std::pair<std::string, ExprPtr>>& mapping) const;

  /// Deep copy. Used by callers holding only a reference that need shared
  /// ownership (e.g. the bytecode program cache retains its key exprs).
  ExprPtr Clone() const;

 private:
  explicit Expr(ExprKind kind) : kind_(kind) {}

  ExprKind kind_;
  Value literal_;
  std::string name_;  // column name or function name
  UnaryOp unary_op_ = UnaryOp::kNeg;
  BinaryOp binary_op_ = BinaryOp::kAdd;
  DataType cast_target_ = DataType::kInt64;
  std::vector<ExprPtr> children_;
};

/// Result type of `expr` against `input`, or a TypeError. This is the
/// algebra's static type checker for scalar expressions.
Result<DataType> InferExprType(const Expr& expr, const Schema& input);

/// Signature of a built-in scalar function: validates arity/types and
/// returns the result type. Registered in expr.cc; see kBuiltinFunctions.
Result<DataType> InferFuncType(const std::string& func,
                               const std::vector<DataType>& args);

/// Names of all built-in scalar functions (for coverage reporting).
std::vector<std::string> BuiltinFunctionNames();

}  // namespace nexus

#endif  // NEXUS_EXPR_EXPR_H_
