#include "expr/eval.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "common/str_util.h"
#include "expr/bytecode.h"
#include "expr/vm.h"

namespace nexus {

namespace {

Result<Value> EvalUnary(UnaryOp op, const Value& v) {
  if (v.is_null()) return Value::Null();
  if (op == UnaryOp::kNeg) {
    if (v.is_int64()) return Value::Int64(-v.AsInt64());
    if (v.is_float64()) return Value::Float64(-v.AsFloat64());
    return Status::TypeError("neg expects numeric");
  }
  if (!v.is_bool()) return Status::TypeError("not expects bool");
  return Value::Bool(!v.AsBool());
}

Result<Value> EvalArithmetic(BinaryOp op, const Value& l, const Value& r) {
  if (op == BinaryOp::kAdd && l.is_string() && r.is_string()) {
    return Value::String(l.AsString() + r.AsString());
  }
  if (!l.is_numeric() || !r.is_numeric()) {
    return Status::TypeError(StrCat("arithmetic on non-numeric values: ",
                                    l.ToString(), " ", BinaryOpName(op), " ",
                                    r.ToString()));
  }
  bool int_math = l.is_int64() && r.is_int64();
  switch (op) {
    case BinaryOp::kAdd:
      return int_math ? Value::Int64(l.AsInt64() + r.AsInt64())
                      : Value::Float64(l.AsDouble() + r.AsDouble());
    case BinaryOp::kSub:
      return int_math ? Value::Int64(l.AsInt64() - r.AsInt64())
                      : Value::Float64(l.AsDouble() - r.AsDouble());
    case BinaryOp::kMul:
      return int_math ? Value::Int64(l.AsInt64() * r.AsInt64())
                      : Value::Float64(l.AsDouble() * r.AsDouble());
    case BinaryOp::kDiv: {
      double d = r.AsDouble();
      if (d == 0.0) return Value::Null();  // division by zero yields null
      return Value::Float64(l.AsDouble() / d);
    }
    case BinaryOp::kMod: {
      if (!int_math) return Status::TypeError("% expects int64 operands");
      if (r.AsInt64() == 0) return Value::Null();
      return Value::Int64(l.AsInt64() % r.AsInt64());
    }
    default:
      return Status::Internal("not an arithmetic op");
  }
}

Result<Value> EvalFunc(const std::string& func, std::vector<Value> args) {
  // Null-aware functions first.
  if (func == "is_null") return Value::Bool(args[0].is_null());
  if (func == "coalesce") {
    for (Value& a : args) {
      if (!a.is_null()) return std::move(a);
    }
    return Value::Null();
  }
  if (func == "if") {
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_bool()) return Status::TypeError("if: condition must be bool");
    return args[0].AsBool() ? std::move(args[1]) : std::move(args[2]);
  }
  // Everything else is strict in nulls.
  for (const Value& a : args) {
    if (a.is_null()) return Value::Null();
  }
  auto need_numeric = [&](size_t i) -> Status {
    if (!args[i].is_numeric()) {
      return Status::TypeError(StrCat(func, ": argument ", i, " must be numeric"));
    }
    return Status::OK();
  };
  if (func == "abs") {
    NEXUS_RETURN_NOT_OK(need_numeric(0));
    if (args[0].is_int64()) return Value::Int64(std::llabs(args[0].AsInt64()));
    return Value::Float64(std::fabs(args[0].AsFloat64()));
  }
  if (func == "sign") {
    NEXUS_RETURN_NOT_OK(need_numeric(0));
    double d = args[0].AsDouble();
    int64_t s = d > 0 ? 1 : (d < 0 ? -1 : 0);
    return args[0].is_int64() ? Value::Int64(s) : Value::Float64(static_cast<double>(s));
  }
  if (func == "sqrt" || func == "exp" || func == "log" || func == "sin" ||
      func == "cos") {
    NEXUS_RETURN_NOT_OK(need_numeric(0));
    double d = args[0].AsDouble();
    if (func == "sqrt") return d < 0 ? Value::Null() : Value::Float64(std::sqrt(d));
    if (func == "exp") return Value::Float64(std::exp(d));
    if (func == "log") return d <= 0 ? Value::Null() : Value::Float64(std::log(d));
    if (func == "sin") return Value::Float64(std::sin(d));
    return Value::Float64(std::cos(d));
  }
  if (func == "pow") {
    NEXUS_RETURN_NOT_OK(need_numeric(0));
    NEXUS_RETURN_NOT_OK(need_numeric(1));
    return Value::Float64(std::pow(args[0].AsDouble(), args[1].AsDouble()));
  }
  if (func == "floor" || func == "ceil" || func == "round") {
    NEXUS_RETURN_NOT_OK(need_numeric(0));
    double d = args[0].AsDouble();
    if (func == "floor") return Value::Int64(static_cast<int64_t>(std::floor(d)));
    if (func == "ceil") return Value::Int64(static_cast<int64_t>(std::ceil(d)));
    return Value::Int64(static_cast<int64_t>(std::llround(d)));
  }
  if (func == "min" || func == "max") {
    Value best = args[0];
    for (size_t i = 1; i < args.size(); ++i) {
      bool take = func == "min" ? args[i].Compare(best) < 0
                                : args[i].Compare(best) > 0;
      if (take) best = args[i];
    }
    return best;
  }
  if (func == "length") {
    if (!args[0].is_string()) return Status::TypeError("length expects string");
    return Value::Int64(static_cast<int64_t>(args[0].AsString().size()));
  }
  if (func == "concat") {
    std::string out;
    for (const Value& a : args) {
      if (!a.is_string()) return Status::TypeError("concat expects strings");
      out += a.AsString();
    }
    return Value::String(std::move(out));
  }
  if (func == "lower" || func == "upper") {
    if (!args[0].is_string()) return Status::TypeError(StrCat(func, " expects string"));
    std::string s = args[0].AsString();
    for (char& c : s) {
      c = func == "lower" ? static_cast<char>(std::tolower(static_cast<unsigned char>(c)))
                          : static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    return Value::String(std::move(s));
  }
  if (func == "substr") {
    if (!args[0].is_string() || !args[1].is_int64() || !args[2].is_int64()) {
      return Status::TypeError("substr expects (string, int64, int64)");
    }
    const std::string& s = args[0].AsString();
    int64_t pos = std::clamp<int64_t>(args[1].AsInt64(), 0,
                                      static_cast<int64_t>(s.size()));
    int64_t len = std::max<int64_t>(0, args[2].AsInt64());
    return Value::String(s.substr(static_cast<size_t>(pos),
                                  static_cast<size_t>(len)));
  }
  return Status::TypeError(StrCat("unknown function: ", func));
}

}  // namespace

Result<Value> EvalExprRow(const Expr& expr, const Schema& schema,
                          const std::vector<Value>& row) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return expr.literal();
    case ExprKind::kColumnRef: {
      NEXUS_ASSIGN_OR_RETURN(int i, schema.FindFieldOrError(expr.column_name()));
      return row[static_cast<size_t>(i)];
    }
    case ExprKind::kUnary: {
      NEXUS_ASSIGN_OR_RETURN(Value v, EvalExprRow(*expr.child(0), schema, row));
      return EvalUnary(expr.unary_op(), v);
    }
    case ExprKind::kBinary: {
      BinaryOp op = expr.binary_op();
      NEXUS_ASSIGN_OR_RETURN(Value l, EvalExprRow(*expr.child(0), schema, row));
      if (IsLogical(op)) {
        // Short-circuit with 3-valued logic.
        if (op == BinaryOp::kAnd && !l.is_null() && !l.AsBool()) {
          return Value::Bool(false);
        }
        if (op == BinaryOp::kOr && !l.is_null() && l.AsBool()) {
          return Value::Bool(true);
        }
        NEXUS_ASSIGN_OR_RETURN(Value r, EvalExprRow(*expr.child(1), schema, row));
        if (op == BinaryOp::kAnd) {
          if (!r.is_null() && !r.AsBool()) return Value::Bool(false);
          if (l.is_null() || r.is_null()) return Value::Null();
          return Value::Bool(true);
        }
        if (!r.is_null() && r.AsBool()) return Value::Bool(true);
        if (l.is_null() || r.is_null()) return Value::Null();
        return Value::Bool(false);
      }
      NEXUS_ASSIGN_OR_RETURN(Value r, EvalExprRow(*expr.child(1), schema, row));
      if (l.is_null() || r.is_null()) return Value::Null();
      if (IsComparison(op)) {
        int c = l.Compare(r);
        switch (op) {
          case BinaryOp::kEq:
            return Value::Bool(c == 0);
          case BinaryOp::kNe:
            return Value::Bool(c != 0);
          case BinaryOp::kLt:
            return Value::Bool(c < 0);
          case BinaryOp::kLe:
            return Value::Bool(c <= 0);
          case BinaryOp::kGt:
            return Value::Bool(c > 0);
          default:
            return Value::Bool(c >= 0);
        }
      }
      return EvalArithmetic(op, l, r);
    }
    case ExprKind::kFuncCall: {
      std::vector<Value> args;
      args.reserve(expr.children().size());
      for (const ExprPtr& c : expr.children()) {
        NEXUS_ASSIGN_OR_RETURN(Value v, EvalExprRow(*c, schema, row));
        args.push_back(std::move(v));
      }
      return EvalFunc(expr.func_name(), std::move(args));
    }
    case ExprKind::kCast: {
      NEXUS_ASSIGN_OR_RETURN(Value v, EvalExprRow(*expr.child(0), schema, row));
      return v.CastTo(expr.cast_target());
    }
  }
  return Status::Internal("unhandled expr kind");
}

namespace {

// True when `expr` is exact integer arithmetic over null-free int64 data:
// int64 literals/columns combined with neg/add/sub/mul. Comparisons between
// two such subtrees run in exact int64 loops instead of the double fast path
// (doubles lose integer precision above 2^53). Callers must already have
// checked FastPathEligible on the tree.
bool Int64Pure(const Expr& expr, const Table& table) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return expr.literal().is_int64();
    case ExprKind::kColumnRef: {
      int i = table.schema()->FindField(expr.column_name());
      return i >= 0 && table.column(i).type() == DataType::kInt64;
    }
    case ExprKind::kUnary:
      return expr.unary_op() == UnaryOp::kNeg &&
             Int64Pure(*expr.child(0), table);
    case ExprKind::kBinary: {
      BinaryOp op = expr.binary_op();
      if (op != BinaryOp::kAdd && op != BinaryOp::kSub &&
          op != BinaryOp::kMul) {
        return false;
      }
      return Int64Pure(*expr.child(0), table) &&
             Int64Pure(*expr.child(1), table);
    }
    default:
      return false;
  }
}

// Evaluates an Int64Pure expression over rows [begin, end) into `out`.
void EvalFastInt(const Expr& expr, const Table& table, int64_t begin,
                 int64_t end, int64_t* out) {
  size_t len = static_cast<size_t>(end - begin);
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      std::fill(out, out + len, expr.literal().AsInt64());
      return;
    case ExprKind::kColumnRef: {
      const auto& src =
          table.column(table.schema()->FindField(expr.column_name())).ints();
      std::copy(src.begin() + begin, src.begin() + end, out);
      return;
    }
    case ExprKind::kUnary:
      EvalFastInt(*expr.child(0), table, begin, end, out);
      for (size_t i = 0; i < len; ++i) out[i] = -out[i];
      return;
    case ExprKind::kBinary: {
      std::vector<int64_t> rhs(len);
      EvalFastInt(*expr.child(0), table, begin, end, out);
      EvalFastInt(*expr.child(1), table, begin, end, rhs.data());
      switch (expr.binary_op()) {
        case BinaryOp::kAdd:
          for (size_t i = 0; i < len; ++i) out[i] += rhs[i];
          return;
        case BinaryOp::kSub:
          for (size_t i = 0; i < len; ++i) out[i] -= rhs[i];
          return;
        default:
          for (size_t i = 0; i < len; ++i) out[i] *= rhs[i];
          return;
      }
    }
    default:
      return;  // excluded by Int64Pure
  }
}

// True when `expr` only touches null-free numeric/bool columns, so the typed
// double-based fast path is exact. String ops, casts, and functions beyond
// simple math are excluded.
bool FastPathEligible(const Expr& expr, const Table& table) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return expr.literal().is_numeric() || expr.literal().is_bool();
    case ExprKind::kColumnRef: {
      int i = table.schema()->FindField(expr.column_name());
      if (i < 0) return false;
      const Column& c = table.column(i);
      return (IsNumeric(c.type()) || c.type() == DataType::kBool) && !c.has_nulls();
    }
    case ExprKind::kUnary:
      return FastPathEligible(*expr.child(0), table);
    case ExprKind::kBinary: {
      if (expr.binary_op() == BinaryOp::kDiv || expr.binary_op() == BinaryOp::kMod) {
        return false;  // null-on-zero semantics need the boxed path
      }
      return FastPathEligible(*expr.child(0), table) &&
             FastPathEligible(*expr.child(1), table);
    }
    default:
      return false;
  }
}

// Evaluates eligible expressions over rows [begin, end) into `out`, where
// out[i] holds row begin+i (bools as 0/1). Range-oriented so morsels of one
// table can evaluate concurrently; each output slot depends only on its own
// row, so any morsel decomposition yields byte-identical results.
void EvalFast(const Expr& expr, const Table& table, int64_t begin, int64_t end,
              double* out) {
  size_t len = static_cast<size_t>(end - begin);
  switch (expr.kind()) {
    case ExprKind::kLiteral: {
      double v = expr.literal().is_bool() ? (expr.literal().AsBool() ? 1.0 : 0.0)
                                          : expr.literal().AsDouble();
      std::fill(out, out + len, v);
      return;
    }
    case ExprKind::kColumnRef: {
      const Column& c =
          table.column(table.schema()->FindField(expr.column_name()));
      if (c.type() == DataType::kInt64) {
        const auto& src = c.ints();
        for (size_t i = 0; i < len; ++i) {
          out[i] = static_cast<double>(src[static_cast<size_t>(begin) + i]);
        }
      } else if (c.type() == DataType::kFloat64) {
        const auto& src = c.doubles();
        std::copy(src.begin() + begin, src.begin() + end, out);
      } else {
        const auto& src = c.bools();
        for (size_t i = 0; i < len; ++i) {
          out[i] = src[static_cast<size_t>(begin) + i] ? 1.0 : 0.0;
        }
      }
      return;
    }
    case ExprKind::kUnary: {
      EvalFast(*expr.child(0), table, begin, end, out);
      if (expr.unary_op() == UnaryOp::kNeg) {
        for (size_t i = 0; i < len; ++i) out[i] = -out[i];
      } else {
        for (size_t i = 0; i < len; ++i) out[i] = (out[i] != 0.0) ? 0.0 : 1.0;
      }
      return;
    }
    case ExprKind::kBinary: {
      if (IsComparison(expr.binary_op()) && Int64Pure(*expr.child(0), table) &&
          Int64Pure(*expr.child(1), table)) {
        // Exact int64 comparison loop: the double loops below would collapse
        // distinct integers above 2^53.
        std::vector<int64_t> li(len), ri(len);
        EvalFastInt(*expr.child(0), table, begin, end, li.data());
        EvalFastInt(*expr.child(1), table, begin, end, ri.data());
        switch (expr.binary_op()) {
          case BinaryOp::kEq:
            for (size_t i = 0; i < len; ++i) out[i] = li[i] == ri[i] ? 1.0 : 0.0;
            return;
          case BinaryOp::kNe:
            for (size_t i = 0; i < len; ++i) out[i] = li[i] != ri[i] ? 1.0 : 0.0;
            return;
          case BinaryOp::kLt:
            for (size_t i = 0; i < len; ++i) out[i] = li[i] < ri[i] ? 1.0 : 0.0;
            return;
          case BinaryOp::kLe:
            for (size_t i = 0; i < len; ++i) out[i] = li[i] <= ri[i] ? 1.0 : 0.0;
            return;
          case BinaryOp::kGt:
            for (size_t i = 0; i < len; ++i) out[i] = li[i] > ri[i] ? 1.0 : 0.0;
            return;
          default:
            for (size_t i = 0; i < len; ++i) out[i] = li[i] >= ri[i] ? 1.0 : 0.0;
            return;
        }
      }
      std::vector<double> rhs(len);
      EvalFast(*expr.child(0), table, begin, end, out);
      EvalFast(*expr.child(1), table, begin, end, rhs.data());
      double* a = out;
      const double* b = rhs.data();
      size_t sz = len;
      switch (expr.binary_op()) {
        case BinaryOp::kAdd:
          for (size_t i = 0; i < sz; ++i) a[i] += b[i];
          return;
        case BinaryOp::kSub:
          for (size_t i = 0; i < sz; ++i) a[i] -= b[i];
          return;
        case BinaryOp::kMul:
          for (size_t i = 0; i < sz; ++i) a[i] *= b[i];
          return;
        case BinaryOp::kEq:
          for (size_t i = 0; i < sz; ++i) a[i] = a[i] == b[i] ? 1.0 : 0.0;
          return;
        case BinaryOp::kNe:
          for (size_t i = 0; i < sz; ++i) a[i] = a[i] != b[i] ? 1.0 : 0.0;
          return;
        case BinaryOp::kLt:
          for (size_t i = 0; i < sz; ++i) a[i] = a[i] < b[i] ? 1.0 : 0.0;
          return;
        case BinaryOp::kLe:
          for (size_t i = 0; i < sz; ++i) a[i] = a[i] <= b[i] ? 1.0 : 0.0;
          return;
        case BinaryOp::kGt:
          for (size_t i = 0; i < sz; ++i) a[i] = a[i] > b[i] ? 1.0 : 0.0;
          return;
        case BinaryOp::kGe:
          for (size_t i = 0; i < sz; ++i) a[i] = a[i] >= b[i] ? 1.0 : 0.0;
          return;
        case BinaryOp::kAnd:
          for (size_t i = 0; i < sz; ++i) {
            a[i] = (a[i] != 0.0 && b[i] != 0.0) ? 1.0 : 0.0;
          }
          return;
        case BinaryOp::kOr:
          for (size_t i = 0; i < sz; ++i) {
            a[i] = (a[i] != 0.0 || b[i] != 0.0) ? 1.0 : 0.0;
          }
          return;
        default:
          return;  // excluded by FastPathEligible
      }
    }
    default:
      return;  // excluded by FastPathEligible
  }
}

}  // namespace

namespace {

// Compiled evaluation: runs the cached bytecode program morsel-at-a-time.
// Sequential executions reuse one VM (constants materialize once); parallel
// executions evaluate per-morsel pieces stitched in morsel order, which is
// byte-identical to the sequential pass because every output lane depends
// only on its own row.
Result<Column> EvalCompiled(const ExprProgramPtr& prog, const Table& table,
                            DataType out_type) {
  int64_t n = table.num_rows();
  const int64_t grain = kMorselRows;
  int64_t morsels = n == 0 ? 0 : (n + grain - 1) / grain;
  if (morsels <= 1 || GetThreadCount() == 1) {
    Column out(out_type);
    out.Reserve(n);
    ExprVM vm(prog.get());
    vm.Bind(table, std::min<int64_t>(n, grain));
    for (int64_t begin = 0; begin < n; begin += grain) {
      vm.Run(begin, std::min<int64_t>(begin + grain, n));
      vm.AppendOutput(0, &out);
    }
    return out;
  }
  std::vector<Column> parts(static_cast<size_t>(morsels), Column(out_type));
  ParallelFor(n, grain, [&](int64_t begin, int64_t end) {
    ExprVM vm(prog.get());
    vm.Bind(table, end - begin);
    vm.Run(begin, end);
    Column& piece = parts[static_cast<size_t>(begin / grain)];
    piece.Reserve(end - begin);
    vm.AppendOutput(0, &piece);
  });
  Column out(out_type);
  out.Reserve(n);
  for (Column& part : parts) {
    NEXUS_RETURN_NOT_OK(out.AppendColumn(part));
  }
  return out;
}

// Boxed evaluation of rows [begin, end) into a fresh column piece; the
// parallel driver concatenates pieces in morsel order.
Result<Column> EvalBoxedRange(const Expr& expr, const Table& table,
                              DataType out_type, int64_t begin, int64_t end) {
  Column out(out_type);
  out.Reserve(end - begin);
  for (int64_t r = begin; r < end; ++r) {
    NEXUS_ASSIGN_OR_RETURN(Value v, EvalExprRow(expr, *table.schema(), table.Row(r)));
    if (v.is_null()) {
      out.AppendNull();
      continue;
    }
    // Coerce ints produced by numeric promotion into float64 outputs etc.
    NEXUS_ASSIGN_OR_RETURN(Value cast, v.CastTo(out_type));
    NEXUS_RETURN_NOT_OK(out.Append(cast));
  }
  return out;
}

}  // namespace

Result<Column> EvalExprVector(const Expr& expr, const Table& table) {
  NEXUS_ASSIGN_OR_RETURN(DataType out_type,
                         InferExprType(expr, *table.schema()));
  int64_t n = table.num_rows();
  // Compiled path: lower to register bytecode (cached process-wide) and run
  // the vectorized VM. Falls through to the interpreter paths when the
  // expression does not fit the ISA (bytecode.h documents the contract: a
  // program that compiles is byte-identical to the interpreter).
  if (ExprCompileEnabled()) {
    Result<ExprProgramPtr> prog = GetOrCompileProgram(expr, *table.schema());
    if (prog.ok()) {
      const ExprProgramPtr& p = prog.ValueOrDie();
      if (p->out_types[0] == out_type) {
        return EvalCompiled(p, table, out_type);
      }
    } else if (!prog.status().IsUnsupported()) {
      return prog.status();
    }
  }
  // The fast path computes in double; int64 outputs take the boxed path so
  // integer arithmetic stays exact beyond 2^53.
  if (out_type != DataType::kInt64 && FastPathEligible(expr, table)) {
    std::vector<double> buf(static_cast<size_t>(n));
    ParallelFor(n, kMorselRows, [&](int64_t begin, int64_t end) {
      EvalFast(expr, table, begin, end, buf.data() + begin);
    });
    if (out_type == DataType::kFloat64) {
      return Column::FromFloat64(std::move(buf));
    }
    if (out_type == DataType::kBool) {
      std::vector<uint8_t> bools(buf.size());
      for (size_t i = 0; i < buf.size(); ++i) bools[i] = buf[i] != 0.0 ? 1 : 0;
      return Column::FromBool(std::move(bools));
    }
  }
  // Boxed path: evaluate morsels into per-morsel column pieces, then stitch
  // them back together in morsel order (identical to one sequential pass).
  const int64_t grain = kMorselRows;
  int64_t morsels = n == 0 ? 0 : (n + grain - 1) / grain;
  if (morsels <= 1 || GetThreadCount() == 1) {
    return EvalBoxedRange(expr, table, out_type, 0, n);
  }
  std::vector<Result<Column>> parts(static_cast<size_t>(morsels),
                                    Status::Internal("morsel not evaluated"));
  ParallelFor(n, grain, [&](int64_t begin, int64_t end) {
    parts[static_cast<size_t>(begin / grain)] =
        EvalBoxedRange(expr, table, out_type, begin, end);
  });
  Column out(out_type);
  out.Reserve(n);
  for (Result<Column>& part : parts) {
    NEXUS_RETURN_NOT_OK(part.status());
    NEXUS_RETURN_NOT_OK(out.AppendColumn(part.ValueOrDie()));
  }
  return out;
}

Result<std::vector<int64_t>> EvalPredicate(const Expr& expr, const Table& table) {
  NEXUS_ASSIGN_OR_RETURN(DataType t, InferExprType(expr, *table.schema()));
  if (t != DataType::kBool) {
    return Status::TypeError(
        StrCat("predicate must be boolean, got ", DataTypeName(t), ": ",
               expr.ToString()));
  }
  NEXUS_ASSIGN_OR_RETURN(Column mask, EvalExprVector(expr, table));
  const auto& bits = mask.bools();
  int64_t n = mask.size();
  // Morsel-local selection vectors concatenated in morsel order reproduce
  // the ascending row order of the sequential scan exactly.
  const int64_t grain = kMorselRows;
  int64_t morsels = n == 0 ? 0 : (n + grain - 1) / grain;
  std::vector<std::vector<int64_t>> local(
      static_cast<size_t>(std::max<int64_t>(morsels, 1)));
  ParallelFor(n, grain, [&](int64_t begin, int64_t end) {
    std::vector<int64_t>& sel = local[static_cast<size_t>(begin / grain)];
    for (int64_t i = begin; i < end; ++i) {
      if (!mask.IsNull(i) && bits[static_cast<size_t>(i)]) sel.push_back(i);
    }
  });
  size_t total = 0;
  for (const auto& sel : local) total += sel.size();
  std::vector<int64_t> selection;
  selection.reserve(total);
  for (const auto& sel : local) {
    selection.insert(selection.end(), sel.begin(), sel.end());
  }
  return selection;
}

}  // namespace nexus
