// Vectorized virtual machine for compiled expression programs: one
// instruction dispatch processes a whole morsel, reading and writing typed
// register vectors instead of boxed Values.
//
// Lifecycle: construct over a program, Bind to an input table with the
// largest morsel length Run will see (constants materialize once here),
// then Run per morsel. Column-load instructions bind zero-copy views into
// the input columns each Run, so re-running over successive morsels costs
// no per-column copies; computed registers own reusable buffers.
//
// Null representation matches Column: a register with `valid == nullptr`
// has no null lanes; otherwise `valid[i] == 0` marks lane i null and the
// payload of a null lane is the type's default (0 / 0.0 / false / ""), the
// same normalization Column::AppendNull performs. Null-bitmap-aware
// instruction variants compute only valid lanes, so garbage payloads can
// never feed arithmetic (and the tight no-null loops stay branch-free).
//
// Programs are infallible by construction (bytecode.h refuses the only
// runtime-fallible ops), so Run returns void: division/modulo by zero,
// sqrt of negatives and log of non-positives yield null lanes exactly like
// the row interpreter.
#ifndef NEXUS_EXPR_VM_H_
#define NEXUS_EXPR_VM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "expr/bytecode.h"
#include "types/column.h"
#include "types/table.h"

namespace nexus {

/// One virtual register: typed read views (into an input column or into the
/// register's own storage) plus lazily used owned buffers.
struct VMReg {
  DataType type = DataType::kInt64;
  // Read views; only the pointer matching `type` is meaningful.
  const int64_t* i = nullptr;
  const double* d = nullptr;
  const uint8_t* b = nullptr;  // bools as 0/1
  const std::string* s = nullptr;
  const uint8_t* valid = nullptr;  ///< nullptr = all lanes valid (1 = valid)

  // Owned storage for computed registers.
  std::vector<int64_t> vi;
  std::vector<double> vd;
  std::vector<uint8_t> vb;
  std::vector<std::string> vs;
  std::vector<uint8_t> vvalid;

  bool LaneValid(int64_t lane) const {
    return valid == nullptr || valid[lane] != 0;
  }

  // Buffer claims: size the owned vector, point the read view at it, and
  // return the mutable pointer.
  int64_t* OwnI(int64_t n) {
    vi.resize(static_cast<size_t>(n));
    i = vi.data();
    return vi.data();
  }
  double* OwnD(int64_t n) {
    vd.resize(static_cast<size_t>(n));
    d = vd.data();
    return vd.data();
  }
  uint8_t* OwnB(int64_t n) {
    vb.resize(static_cast<size_t>(n));
    b = vb.data();
    return vb.data();
  }
  std::string* OwnS(int64_t n) {
    vs.resize(static_cast<size_t>(n));
    s = vs.data();
    return vs.data();
  }
  uint8_t* OwnValid(int64_t n) {
    vvalid.assign(static_cast<size_t>(n), 1);
    valid = vvalid.data();
    return vvalid.data();
  }
  void ClearValid() { valid = nullptr; }
};

/// Executes one ExprProgram morsel-at-a-time. Not thread-safe: parallel
/// drivers use one VM per morsel (or per worker).
class ExprVM {
 public:
  explicit ExprVM(const ExprProgram* prog) : prog_(prog) {}

  /// Prepares registers for `table`. `capacity` must be >= the largest
  /// (end - begin) later passed to Run; constants materialize here once.
  void Bind(const Table& table, int64_t capacity);

  /// Executes the program over rows [begin, end) of the bound table.
  void Run(int64_t begin, int64_t end);

  /// Rows evaluated by the last Run.
  int64_t len() const { return len_; }

  /// Register holding compiled output `k`, lanes [0, len()).
  const VMReg& out_reg(int k) const {
    return regs_[prog_->outputs[static_cast<size_t>(k)]];
  }

  /// Appends lanes [0, len()) of output `k` to `*out` (null lanes append
  /// null). The column's type must equal the output's type.
  void AppendOutput(int k, Column* out) const;

  /// Appends only the given lanes of output `k`, in order.
  void AppendOutputLanes(int k, const std::vector<int64_t>& lanes,
                         Column* out) const;

 private:
  void Exec(const Instr& in, int64_t begin, int64_t n);

  const ExprProgram* prog_;
  const Table* table_ = nullptr;
  std::vector<VMReg> regs_;
  std::vector<const Instr*> body_;  ///< non-prologue instructions
  int64_t len_ = 0;
};

/// Appends lanes [0, n) of `r` to `*out` — the free-function core of
/// ExprVM::AppendOutput, shared with the fused-pipeline executor.
void AppendRegister(const VMReg& r, int64_t n, Column* out);
/// Appends the given lanes of `r`, in order.
void AppendRegisterLanes(const VMReg& r, const std::vector<int64_t>& lanes,
                         Column* out);

}  // namespace nexus

#endif  // NEXUS_EXPR_VM_H_
