// Register bytecode for scalar expressions — the compile-once/run-many half
// of the engine's hot path (the paper's Performance desideratum: "as fast as
// the hardware allows").
//
// CompileExprs lowers one or more Expr trees over a fixed input schema into
// a single ExprProgram: a flat sequence of typed instructions over virtual
// registers, with a constant pool and common-subexpression elimination (a
// subtree appearing in several expressions of one program compiles once and
// its register is reused). The vectorized VM in expr/vm.h executes a whole
// morsel per instruction dispatch instead of a tree node per value.
//
// Type discipline: instruction selection is driven by the same static types
// InferExprType assigns, with explicit promotion casts inserted where the
// row interpreter promotes dynamically (int64 ∨ float64 → float64). Mixed
// int64/float64 comparisons compare in double — exactly Value::Compare's
// rule — while comparisons whose operands are statically int64 use exact
// int64 opcodes, closing the legacy fast path's 2^53 precision hole.
//
// Byte-identity contract: a program either compiles and then produces
// bit-identical results to the row interpreter for every input, or
// compilation refuses with StatusCode::kUnsupported and the caller falls
// back to the interpreter. The refusals that guarantee this:
//   - string → int64/float64/bool casts (the only runtime-fallible ops;
//     refusing them makes every compiled program infallible, so the VM can
//     also evaluate both sides of and/or where the interpreter
//     short-circuits without observable difference),
//   - min/max, if, and coalesce over mixed int64/float64 arguments (the
//     interpreter hands values through with their dynamic type, so an int64
//     flowing on into integer arithmetic stays exact where a promoted
//     double register would round above 2^53).
// With those refused, every compiled subtree's runtime value type equals its
// static type, so the compiler's instruction selection agrees with the
// interpreter's dynamic dispatch everywhere — by induction, bit-identical.
// Anything else that does not fit the ISA (unknown functions, type errors —
// reported properly by the interpreter's own inference) also returns
// kUnsupported rather than guessing.
#ifndef NEXUS_EXPR_BYTECODE_H_
#define NEXUS_EXPR_BYTECODE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"

namespace nexus {

/// Typed opcodes. Naming: operand type suffix; `aux` carries the comparison
/// predicate, constant-pool slot, or input column index.
enum class OpCode : uint8_t {
  // Register loads. kLoadConst/kLoadNull are prologue instructions: the VM
  // materializes them once per binding, not once per morsel. kLoadCol binds
  // a zero-copy view of the input column window each morsel.
  kLoadConst,
  kLoadNull,
  kLoadCol,
  // Numeric promotion / explicit casts (string-parsing casts are refused).
  kCastIntToDouble,
  kCastDoubleToInt,
  kCastBoolToInt,
  kCastBoolToDouble,
  kCastIntToBool,
  kCastDoubleToBool,
  kCastIntToString,
  kCastDoubleToString,
  kCastBoolToString,
  // Unary.
  kNegInt,
  kNegDouble,
  kNotBool,
  // Arithmetic (strict nulls; div/mod by zero yield null).
  kAddInt,
  kSubInt,
  kMulInt,
  kModInt,
  kAddDouble,
  kSubDouble,
  kMulDouble,
  kDivDouble,
  kConcatStr,  ///< string + string
  // Comparison; aux holds CmpPred.
  kCmpInt,
  kCmpDouble,
  kCmpBool,
  kCmpString,
  // Three-valued logic (non-short-circuit; safe because programs are
  // infallible by construction).
  kAndBool,
  kOrBool,
  // Builtin functions.
  kAbsInt,
  kAbsDouble,
  kSignInt,
  kSignDouble,
  kSqrt,
  kExp,
  kLog,
  kSin,
  kCos,
  kPow,
  kFloor,
  kCeil,
  kRound,
  kMinInt,
  kMaxInt,
  kMinDouble,
  kMaxDouble,
  kMinString,
  kMaxString,
  kIf,
  kCoalesce,
  kIsNull,
  kLength,
  kConcat,
  kLower,
  kUpper,
  kSubstr,
};

const char* OpCodeName(OpCode op);

/// Comparison predicates carried in Instr::aux (mirror BinaryOp kEq..kGe).
enum class CmpPred : uint16_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// One instruction: dst ← op(a, b, c) with up to three fixed operands plus a
/// variadic tail for min/max/coalesce/concat.
struct Instr {
  OpCode op;
  uint16_t dst = 0;
  uint16_t a = 0;
  uint16_t b = 0;
  uint16_t c = 0;
  uint16_t aux = 0;
  std::vector<uint16_t> args;  ///< variadic operands (empty for fixed-arity)
};

/// A compiled multi-output program: straight-line code in SSA-like form
/// (every register written exactly once, inputs before uses).
struct ExprProgram {
  std::vector<Instr> instrs;
  std::vector<Value> const_pool;
  std::vector<DataType> reg_types;  ///< indexed by register id
  std::vector<uint16_t> outputs;    ///< result register per compiled expr
  std::vector<DataType> out_types;  ///< inferred type per compiled expr

  int num_regs() const { return static_cast<int>(reg_types.size()); }
  /// Disassembly, one instruction per line (tests and EXPLAIN debugging).
  std::string ToString() const;
};

using ExprProgramPtr = std::shared_ptr<const ExprProgram>;

/// Compiles every expression against `input`, sharing registers across
/// common subtrees. Returns kUnsupported when any tree does not fit the ISA
/// (callers fall back to the interpreter; see the contract above).
Result<ExprProgram> CompileExprs(const std::vector<ExprPtr>& exprs,
                                 const Schema& input);
Result<ExprProgram> CompileExpr(const ExprPtr& expr, const Schema& input);

// ---------------------------------------------------------------------------
// Process-wide compile switch (mirrors NEXUS_WIRE in core/wire_format.h).
// ---------------------------------------------------------------------------

/// True when expression compilation is enabled: the programmatic override if
/// set, else NEXUS_EXPR_COMPILE ("off"/"0" disables; default on).
bool ExprCompileEnabled();
/// Overrides ExprCompileEnabled for this process (benches run
/// compiled-vs-interpreter ablations through this).
void SetExprCompileOverride(bool on);
void ClearExprCompileOverride();

// ---------------------------------------------------------------------------
// Program cache: compile once per (expression list, schema) process-wide.
// ---------------------------------------------------------------------------
//
// The cache is the expression-level analogue of the provider plan-fingerprint
// cache (NXB1 %NXB1-PLAN envelopes): a provider that re-executes a cached
// plan re-encounters structurally identical expressions and skips
// compilation entirely. Keys are structural (Expr::Hash + schema fields) and
// entries are verified with Expr::Equals on hit, so a hash collision can
// only cost a recompile, never a wrong program. Uncompilable entries are
// negatively cached so hot interpreter fallbacks don't re-attempt
// compilation every morsel batch.
//
// Metrics (telemetry::MetricsRegistry):
//   expr.compile            programs actually compiled
//   expr.compile_cache_hit  lookups served from cache
//   expr.compile_unsupported  compilations refused (negative entries)

/// Returns the cached (or freshly compiled) program for `exprs` over
/// `input`; kUnsupported when the expressions cannot be compiled (this
/// outcome is cached too).
Result<ExprProgramPtr> GetOrCompileProgram(const std::vector<ExprPtr>& exprs,
                                           const Schema& input);
/// Single-expression convenience for callers holding only a reference (the
/// cache clones the tree so its key outlives the caller's expr).
Result<ExprProgramPtr> GetOrCompileProgram(const Expr& expr,
                                           const Schema& input);

/// Drops every cached program (tests).
void ClearProgramCacheForTest();

}  // namespace nexus

#endif  // NEXUS_EXPR_BYTECODE_H_
