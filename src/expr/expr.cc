#include "expr/expr.h"

#include <algorithm>

#include "common/hash.h"
#include "common/str_util.h"

namespace nexus {

const char* UnaryOpName(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNeg:
      return "neg";
    case UnaryOp::kNot:
      return "not";
  }
  return "?";
}

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "==";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "and";
    case BinaryOp::kOr:
      return "or";
  }
  return "?";
}

Result<UnaryOp> UnaryOpFromName(const std::string& name) {
  if (name == "neg") return UnaryOp::kNeg;
  if (name == "not") return UnaryOp::kNot;
  return Status::SerializationError(StrCat("unknown unary op: ", name));
}

Result<BinaryOp> BinaryOpFromName(const std::string& name) {
  static const std::pair<const char*, BinaryOp> kOps[] = {
      {"+", BinaryOp::kAdd},  {"-", BinaryOp::kSub},  {"*", BinaryOp::kMul},
      {"/", BinaryOp::kDiv},  {"%", BinaryOp::kMod},  {"==", BinaryOp::kEq},
      {"!=", BinaryOp::kNe},  {"<", BinaryOp::kLt},   {"<=", BinaryOp::kLe},
      {">", BinaryOp::kGt},   {">=", BinaryOp::kGe},  {"and", BinaryOp::kAnd},
      {"or", BinaryOp::kOr},
  };
  for (const auto& [n, op] : kOps) {
    if (name == n) return op;
  }
  return Status::SerializationError(StrCat("unknown binary op: ", name));
}

ExprPtr Expr::Literal(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kLiteral));
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::ColumnRef(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kColumnRef));
  e->name_ = std::move(name);
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr child) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kUnary));
  e->unary_op_ = op;
  e->children_ = {std::move(child)};
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kBinary));
  e->binary_op_ = op;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::FuncCall(std::string func, std::vector<ExprPtr> args) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kFuncCall));
  e->name_ = std::move(func);
  e->children_ = std::move(args);
  return e;
}

ExprPtr Expr::Cast(DataType target, ExprPtr child) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kCast));
  e->cast_target_ = target;
  e->children_ = {std::move(child)};
  return e;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kLiteral:
      return literal_.ToString();
    case ExprKind::kColumnRef:
      return name_;
    case ExprKind::kUnary:
      return StrCat(unary_op_ == UnaryOp::kNeg ? "-" : "not ",
                    child(0)->ToString());
    case ExprKind::kBinary:
      return StrCat("(", child(0)->ToString(), " ", BinaryOpName(binary_op_),
                    " ", child(1)->ToString(), ")");
    case ExprKind::kFuncCall: {
      std::vector<std::string> parts;
      parts.reserve(children_.size());
      for (const ExprPtr& c : children_) parts.push_back(c->ToString());
      return StrCat(name_, "(", Join(parts, ", "), ")");
    }
    case ExprKind::kCast:
      return StrCat("cast(", child(0)->ToString(), " as ",
                    DataTypeName(cast_target_), ")");
  }
  return "?";
}

bool Expr::Equals(const Expr& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case ExprKind::kLiteral:
      if (literal_.is_null() != other.literal_.is_null()) return false;
      if (!literal_.is_null() &&
          (literal_.type() != other.literal_.type() || literal_ != other.literal_)) {
        return false;
      }
      break;
    case ExprKind::kColumnRef:
      if (name_ != other.name_) return false;
      break;
    case ExprKind::kUnary:
      if (unary_op_ != other.unary_op_) return false;
      break;
    case ExprKind::kBinary:
      if (binary_op_ != other.binary_op_) return false;
      break;
    case ExprKind::kFuncCall:
      if (name_ != other.name_) return false;
      break;
    case ExprKind::kCast:
      if (cast_target_ != other.cast_target_) return false;
      break;
  }
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

uint64_t Expr::Hash() const {
  uint64_t h = HashInt64(static_cast<uint64_t>(kind_));
  switch (kind_) {
    case ExprKind::kLiteral:
      h = HashCombine(h, literal_.Hash());
      break;
    case ExprKind::kColumnRef:
    case ExprKind::kFuncCall:
      h = HashCombine(h, HashString(name_));
      break;
    case ExprKind::kUnary:
      h = HashCombine(h, static_cast<uint64_t>(unary_op_));
      break;
    case ExprKind::kBinary:
      h = HashCombine(h, static_cast<uint64_t>(binary_op_));
      break;
    case ExprKind::kCast:
      h = HashCombine(h, static_cast<uint64_t>(cast_target_));
      break;
  }
  for (const ExprPtr& c : children_) h = HashCombine(h, c->Hash());
  return h;
}

namespace {
void CollectRefs(const Expr& e, std::vector<std::string>* out) {
  if (e.kind() == ExprKind::kColumnRef) {
    if (std::find(out->begin(), out->end(), e.column_name()) == out->end()) {
      out->push_back(e.column_name());
    }
    return;
  }
  for (const ExprPtr& c : e.children()) CollectRefs(*c, out);
}
}  // namespace

std::vector<std::string> Expr::ColumnRefs() const {
  std::vector<std::string> out;
  CollectRefs(*this, &out);
  return out;
}

ExprPtr Expr::RenameColumns(
    const std::vector<std::pair<std::string, std::string>>& mapping) const {
  std::vector<std::pair<std::string, ExprPtr>> subst;
  subst.reserve(mapping.size());
  for (const auto& [from, to] : mapping) {
    subst.emplace_back(from, Expr::ColumnRef(to));
  }
  return SubstituteColumns(subst);
}

ExprPtr Expr::SubstituteColumns(
    const std::vector<std::pair<std::string, ExprPtr>>& mapping) const {
  if (kind_ == ExprKind::kColumnRef) {
    for (const auto& [from, to] : mapping) {
      if (from == name_) return to;
    }
    return Expr::ColumnRef(name_);
  }
  std::vector<ExprPtr> new_children;
  new_children.reserve(children_.size());
  for (const ExprPtr& c : children_) {
    new_children.push_back(c->SubstituteColumns(mapping));
  }
  switch (kind_) {
    case ExprKind::kLiteral:
      return Expr::Literal(literal_);
    case ExprKind::kUnary:
      return Expr::Unary(unary_op_, std::move(new_children[0]));
    case ExprKind::kBinary:
      return Expr::Binary(binary_op_, std::move(new_children[0]),
                          std::move(new_children[1]));
    case ExprKind::kFuncCall:
      return Expr::FuncCall(name_, std::move(new_children));
    case ExprKind::kCast:
      return Expr::Cast(cast_target_, std::move(new_children[0]));
    case ExprKind::kColumnRef:
      break;  // handled above
  }
  return nullptr;
}

ExprPtr Expr::Clone() const { return SubstituteColumns({}); }

namespace {
struct FuncSig {
  const char* name;
  int min_arity;
  int max_arity;  // -1 == variadic
};
// All built-in scalar functions; type rules are in InferFuncType.
constexpr FuncSig kBuiltinFunctions[] = {
    {"abs", 1, 1},    {"sqrt", 1, 1},   {"exp", 1, 1},     {"log", 1, 1},
    {"pow", 2, 2},    {"floor", 1, 1},  {"ceil", 1, 1},    {"round", 1, 1},
    {"min", 2, -1},   {"max", 2, -1},   {"if", 3, 3},      {"coalesce", 1, -1},
    {"length", 1, 1}, {"concat", 1, -1}, {"lower", 1, 1},  {"upper", 1, 1},
    {"substr", 3, 3}, {"sin", 1, 1},    {"cos", 1, 1},     {"sign", 1, 1},
    {"is_null", 1, 1},
};
}  // namespace

std::vector<std::string> BuiltinFunctionNames() {
  std::vector<std::string> out;
  for (const FuncSig& f : kBuiltinFunctions) out.push_back(f.name);
  return out;
}

Result<DataType> InferFuncType(const std::string& func,
                               const std::vector<DataType>& args) {
  const FuncSig* sig = nullptr;
  for (const FuncSig& f : kBuiltinFunctions) {
    if (func == f.name) {
      sig = &f;
      break;
    }
  }
  if (sig == nullptr) {
    return Status::TypeError(StrCat("unknown function: ", func));
  }
  int n = static_cast<int>(args.size());
  if (n < sig->min_arity || (sig->max_arity >= 0 && n > sig->max_arity)) {
    return Status::TypeError(StrCat(func, ": wrong arity ", n));
  }
  auto all_numeric = [&]() {
    return std::all_of(args.begin(), args.end(), IsNumeric);
  };
  if (func == "abs" || func == "sign") {
    if (!all_numeric()) return Status::TypeError(StrCat(func, " expects numeric"));
    return args[0];
  }
  if (func == "sqrt" || func == "exp" || func == "log" || func == "pow" ||
      func == "sin" || func == "cos") {
    if (!all_numeric()) return Status::TypeError(StrCat(func, " expects numeric"));
    return DataType::kFloat64;
  }
  if (func == "floor" || func == "ceil" || func == "round") {
    if (!all_numeric()) return Status::TypeError(StrCat(func, " expects numeric"));
    return DataType::kInt64;
  }
  if (func == "min" || func == "max") {
    if (all_numeric()) {
      DataType t = args[0];
      for (DataType a : args) {
        NEXUS_ASSIGN_OR_RETURN(t, CommonNumericType(t, a));
      }
      return t;
    }
    bool all_string = std::all_of(args.begin(), args.end(), [](DataType t) {
      return t == DataType::kString;
    });
    if (all_string) return DataType::kString;
    return Status::TypeError(StrCat(func, " expects all-numeric or all-string"));
  }
  if (func == "if") {
    if (args[0] != DataType::kBool) {
      return Status::TypeError("if: condition must be bool");
    }
    if (args[1] == args[2]) return args[1];
    return CommonNumericType(args[1], args[2]);
  }
  if (func == "coalesce") {
    DataType t = args[0];
    for (DataType a : args) {
      if (a == t) continue;
      NEXUS_ASSIGN_OR_RETURN(t, CommonNumericType(t, a));
    }
    return t;
  }
  if (func == "length") {
    if (args[0] != DataType::kString) return Status::TypeError("length expects string");
    return DataType::kInt64;
  }
  if (func == "concat" || func == "lower" || func == "upper") {
    for (DataType a : args) {
      if (a != DataType::kString) {
        return Status::TypeError(StrCat(func, " expects string arguments"));
      }
    }
    return DataType::kString;
  }
  if (func == "substr") {
    if (args[0] != DataType::kString || args[1] != DataType::kInt64 ||
        args[2] != DataType::kInt64) {
      return Status::TypeError("substr expects (string, int64, int64)");
    }
    return DataType::kString;
  }
  if (func == "is_null") return DataType::kBool;
  return Status::Internal(StrCat("unhandled builtin: ", func));
}

Result<DataType> InferExprType(const Expr& expr, const Schema& input) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      if (expr.literal().is_null()) {
        // Untyped null: treated as float64 for inference purposes.
        return DataType::kFloat64;
      }
      return expr.literal().type();
    case ExprKind::kColumnRef: {
      NEXUS_ASSIGN_OR_RETURN(int i, input.FindFieldOrError(expr.column_name()));
      return input.field(i).type;
    }
    case ExprKind::kUnary: {
      NEXUS_ASSIGN_OR_RETURN(DataType t, InferExprType(*expr.child(0), input));
      if (expr.unary_op() == UnaryOp::kNeg) {
        if (!IsNumeric(t)) return Status::TypeError("neg expects numeric");
        return t;
      }
      if (t != DataType::kBool) return Status::TypeError("not expects bool");
      return DataType::kBool;
    }
    case ExprKind::kBinary: {
      NEXUS_ASSIGN_OR_RETURN(DataType lt, InferExprType(*expr.child(0), input));
      NEXUS_ASSIGN_OR_RETURN(DataType rt, InferExprType(*expr.child(1), input));
      BinaryOp op = expr.binary_op();
      if (IsArithmetic(op)) {
        if (op == BinaryOp::kAdd && lt == DataType::kString &&
            rt == DataType::kString) {
          return DataType::kString;  // string concatenation sugar
        }
        NEXUS_ASSIGN_OR_RETURN(DataType t, CommonNumericType(lt, rt));
        if (op == BinaryOp::kDiv) return DataType::kFloat64;
        if (op == BinaryOp::kMod) {
          if (t != DataType::kInt64) return Status::TypeError("% expects int64");
        }
        return t;
      }
      if (IsComparison(op)) {
        bool comparable = lt == rt || (IsNumeric(lt) && IsNumeric(rt));
        if (!comparable) {
          return Status::TypeError(
              StrCat("cannot compare ", DataTypeName(lt), " with ",
                     DataTypeName(rt)));
        }
        return DataType::kBool;
      }
      // logical
      if (lt != DataType::kBool || rt != DataType::kBool) {
        return Status::TypeError(StrCat(BinaryOpName(op), " expects bool"));
      }
      return DataType::kBool;
    }
    case ExprKind::kFuncCall: {
      std::vector<DataType> arg_types;
      arg_types.reserve(expr.children().size());
      for (const ExprPtr& c : expr.children()) {
        NEXUS_ASSIGN_OR_RETURN(DataType t, InferExprType(*c, input));
        arg_types.push_back(t);
      }
      return InferFuncType(expr.func_name(), arg_types);
    }
    case ExprKind::kCast: {
      NEXUS_RETURN_NOT_OK(InferExprType(*expr.child(0), input).status());
      return expr.cast_target();
    }
  }
  return Status::Internal("unhandled expr kind");
}

}  // namespace nexus
