// Expression evaluation: a definitional row-at-a-time interpreter plus a
// vectorized evaluator with typed fast paths for null-free numeric data.
//
// Null semantics are SQL-like: any null operand yields null, except the
// three-valued logical connectives and the null-aware functions coalesce,
// is_null, and if().
#ifndef NEXUS_EXPR_EVAL_H_
#define NEXUS_EXPR_EVAL_H_

#include <vector>

#include "expr/expr.h"
#include "types/column.h"
#include "types/table.h"

namespace nexus {

/// Evaluates `expr` on one row (values aligned with `schema`).
Result<Value> EvalExprRow(const Expr& expr, const Schema& schema,
                          const std::vector<Value>& row);

/// Evaluates `expr` over every row of `table`, producing a column of the
/// inferred type. Prefers the compiled bytecode VM (expr/bytecode.h; exact
/// typed opcodes, byte-identical to the interpreter, switchable via
/// NEXUS_EXPR_COMPILE); expressions outside the ISA use typed double loops
/// when all referenced columns are null-free numerics, else the row
/// interpreter. Comparisons whose operands are pure int64 arithmetic run in
/// exact int64 loops on every path, so they stay exact beyond 2^53;
/// int64-valued outputs never round-trip through double.
Result<Column> EvalExprVector(const Expr& expr, const Table& table);

/// Convenience: evaluates a boolean predicate to a selection vector of row
/// indices where it holds (nulls are treated as false, as in SQL WHERE).
Result<std::vector<int64_t>> EvalPredicate(const Expr& expr, const Table& table);

}  // namespace nexus

#endif  // NEXUS_EXPR_EVAL_H_
