#include "optimizer/join_order.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "core/schema_inference.h"
#include "optimizer/cardinality.h"

namespace nexus {

namespace {

// A join is fair game for reordering only when commuting it cannot change
// the result set: inner, equi-only (no residual to re-scope).
bool IsReorderableJoin(const Plan& p) {
  return p.kind() == OpKind::kJoin &&
         p.As<JoinOp>().type == JoinType::kInner &&
         p.As<JoinOp>().residual == nullptr;
}

// A column of one base relation of a cluster.
struct ColRef {
  int rel = -1;
  std::string col;
};

struct Rel {
  PlanPtr plan;
  SchemaPtr schema;
  PlanStats stats;
};

// Union-find over (rel, col) ids: join equality edges merge key columns
// into equivalence classes, so any surviving member can stand in for the
// class when two subsets are joined.
class UnionFind {
 public:
  int Id(int rel, const std::string& col) {
    auto [it, inserted] = ids_.emplace(std::make_pair(rel, col),
                                       static_cast<int>(parent_.size()));
    if (inserted) parent_.push_back(it->second);
    return it->second;
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::map<std::pair<int, std::string>, int> ids_;
  std::vector<int> parent_;
};

// One enumerated subset: its best plan so far, the Cout cost, the estimated
// output stats, and which original column each visible output name carries.
struct Entry {
  bool valid = false;
  double cost = 0.0;
  PlanStats stats;
  PlanPtr plan;
  std::map<std::string, ColRef> visible;
};

class Reorderer {
 public:
  Reorderer(const Catalog& catalog, int64_t* reordered, int max_dp)
      : est_(&catalog), reordered_(reordered), max_dp_(max_dp) {
    ctx_.catalog = &catalog;
  }

  Result<PlanPtr> Rewrite(const PlanPtr& plan) {
    if (plan->kind() == OpKind::kIterate) {
      IterateOp op = plan->As<IterateOp>();
      NEXUS_ASSIGN_OR_RETURN(PlanPtr init, Rewrite(plan->child(0)));
      NEXUS_ASSIGN_OR_RETURN(SchemaPtr init_schema, InferSchema(*init, &ctx_));
      auto init_stats = est_.Estimate(*init);
      ctx_.loop_stack.push_back(init_schema);
      est_.PushLoop(init_stats.ok() ? init_stats.ValueOrDie() : PlanStats{});
      auto body = Rewrite(op.body);
      Result<PlanPtr> measure = PlanPtr(nullptr);
      if (body.ok() && op.measure != nullptr) measure = Rewrite(op.measure);
      est_.PopLoop();
      ctx_.loop_stack.pop_back();
      NEXUS_ASSIGN_OR_RETURN(op.body, body);
      if (op.measure != nullptr) {
        NEXUS_ASSIGN_OR_RETURN(op.measure, measure);
      }
      return Plan::Iterate(init, std::move(op));
    }
    if (IsReorderableJoin(*plan)) {
      NEXUS_ASSIGN_OR_RETURN(PlanPtr r, TryReorderCluster(plan));
      if (r != nullptr) return r;
    }
    std::vector<PlanPtr> children;
    children.reserve(plan->children().size());
    for (const PlanPtr& c : plan->children()) {
      NEXUS_ASSIGN_OR_RETURN(PlanPtr nc, Rewrite(c));
      children.push_back(std::move(nc));
    }
    return plan->WithChildren(std::move(children));
  }

 private:
  // Flattened cluster state, built bottom-up over the original join tree.
  struct Flat {
    bool ok = true;  // false: cluster not reorderable, fall back
    std::vector<int> rels;  // indices into rels_ under this subtree
    std::map<std::string, ColRef> visible;
    PlanStats stats;   // estimate of the subtree as originally written
    double cost = 0.0; // Cout of the subtree as originally written
  };

  Result<Flat> Flatten(const PlanPtr& node,
                       std::vector<Rel>* rels,
                       std::vector<std::pair<ColRef, ColRef>>* edges) {
    Flat out;
    if (!IsReorderableJoin(*node)) {
      // Base relation: reorder anything nested inside it first.
      NEXUS_ASSIGN_OR_RETURN(PlanPtr rewritten, Rewrite(node));
      auto schema = InferSchema(*rewritten, &ctx_);
      if (!schema.ok()) {
        out.ok = false;
        return out;
      }
      for (const Field& f : schema.ValueOrDie()->fields()) {
        if (f.is_dimension) {
          // Join drops right-side dimension tags; commuting sides would
          // change which tags survive. Leave such clusters alone.
          out.ok = false;
          return out;
        }
      }
      auto stats = est_.Estimate(*rewritten);
      if (!stats.ok()) {
        out.ok = false;
        return out;
      }
      int idx = static_cast<int>(rels->size());
      rels->push_back(Rel{rewritten, schema.ValueOrDie(), stats.ValueOrDie()});
      out.rels.push_back(idx);
      for (const Field& f : (*rels)[idx].schema->fields()) {
        out.visible[f.name] = ColRef{idx, f.name};
      }
      out.stats = (*rels)[idx].stats;
      return out;
    }
    const auto& op = node->As<JoinOp>();
    NEXUS_ASSIGN_OR_RETURN(Flat l, Flatten(node->child(0), rels, edges));
    if (!l.ok) return l;
    NEXUS_ASSIGN_OR_RETURN(Flat r, Flatten(node->child(1), rels, edges));
    if (!r.ok) return r;
    for (size_t i = 0; i < op.left_keys.size(); ++i) {
      auto lit = l.visible.find(op.left_keys[i]);
      auto rit = r.visible.find(op.right_keys[i]);
      if (lit == l.visible.end() || rit == r.visible.end()) {
        out.ok = false;
        return out;
      }
      const ColRef& a = lit->second;
      const ColRef& b = rit->second;
      DataType ta = (*rels)[a.rel].schema->field(
          (*rels)[a.rel].schema->FindField(a.col)).type;
      DataType tb = (*rels)[b.rel].schema->field(
          (*rels)[b.rel].schema->FindField(b.col)).type;
      if (ta != tb) {
        out.ok = false;  // coercing keys: equality classes would be lossy
        return out;
      }
      edges->push_back({a, b});
    }
    out.rels = l.rels;
    out.rels.insert(out.rels.end(), r.rels.begin(), r.rels.end());
    out.visible = l.visible;
    for (const auto& [name, ref] : r.visible) {
      if (std::find(op.right_keys.begin(), op.right_keys.end(), name) !=
          op.right_keys.end()) {
        continue;  // the algebra drops right key columns
      }
      if (!out.visible.emplace(name, ref).second) {
        out.ok = false;  // would not have type-checked; be safe
        return out;
      }
    }
    out.stats = EstimateJoinStats(l.stats, r.stats, op.left_keys, op.right_keys);
    out.cost = l.cost + r.cost + out.stats.rows;
    return out;
  }

  // Output name in `visible` whose column is join-equivalent to `ref`.
  static const std::string* FindEquivalent(
      const std::map<std::string, ColRef>& visible, const ColRef& ref,
      UnionFind* uf) {
    int want = uf->Find(uf->Id(ref.rel, ref.col));
    for (const auto& [name, r] : visible) {
      if (uf->Find(uf->Id(r.rel, r.col)) == want) return &name;
    }
    return nullptr;
  }

  // Joins two enumerated subsets along every crossing edge. Returns an
  // invalid Entry when no edge crosses (cross product) or names collide.
  Entry JoinEntries(const Entry& a, const Entry& b,
                    const std::vector<std::pair<ColRef, ColRef>>& edges,
                    const std::vector<uint64_t>& rel_bit, uint64_t mask_a,
                    uint64_t mask_b, UnionFind* uf) {
    Entry out;
    std::vector<std::string> lkeys, rkeys;
    for (const auto& [x, y] : edges) {
      const ColRef* l = nullptr;
      const ColRef* r = nullptr;
      if ((rel_bit[x.rel] & mask_a) && (rel_bit[y.rel] & mask_b)) {
        l = &x;
        r = &y;
      } else if ((rel_bit[y.rel] & mask_a) && (rel_bit[x.rel] & mask_b)) {
        l = &y;
        r = &x;
      } else {
        continue;
      }
      const std::string* lname = FindEquivalent(a.visible, *l, uf);
      const std::string* rname = FindEquivalent(b.visible, *r, uf);
      if (lname == nullptr || rname == nullptr) continue;
      bool dup = false;
      for (size_t i = 0; i < lkeys.size(); ++i) {
        if (lkeys[i] == *lname && rkeys[i] == *rname) dup = true;
      }
      if (dup) continue;
      lkeys.push_back(*lname);
      rkeys.push_back(*rname);
    }
    if (lkeys.empty()) return out;  // avoid cross products
    out.visible = a.visible;
    for (const auto& [name, ref] : b.visible) {
      if (std::find(rkeys.begin(), rkeys.end(), name) != rkeys.end()) continue;
      if (!out.visible.emplace(name, ref).second) return Entry{};
    }
    out.stats = EstimateJoinStats(a.stats, b.stats, lkeys, rkeys);
    out.cost = a.cost + b.cost + out.stats.rows;
    out.plan = Plan::Join(a.plan, b.plan, JoinType::kInner, std::move(lkeys),
                          std::move(rkeys), nullptr);
    out.valid = true;
    return out;
  }

  // Returns the reordered cluster, nullptr to keep the original, or an
  // error only for malformed plans.
  Result<PlanPtr> TryReorderCluster(const PlanPtr& root) {
    std::vector<Rel> rels;
    std::vector<std::pair<ColRef, ColRef>> edges;
    NEXUS_ASSIGN_OR_RETURN(Flat flat, Flatten(root, &rels, &edges));
    int n = static_cast<int>(rels.size());
    if (!flat.ok || n < 3 || n > 62 || edges.empty()) return PlanPtr(nullptr);

    UnionFind uf;
    for (int i = 0; i < n; ++i) {
      for (const Field& f : rels[i].schema->fields()) uf.Id(i, f.name);
    }
    for (const auto& [a, b] : edges) {
      uf.Union(uf.Id(a.rel, a.col), uf.Id(b.rel, b.col));
    }
    std::vector<uint64_t> rel_bit(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) rel_bit[static_cast<size_t>(i)] = 1ULL << i;

    auto leaf_entry = [&](int i) {
      Entry e;
      e.valid = true;
      e.cost = 0.0;
      e.stats = rels[static_cast<size_t>(i)].stats;
      e.plan = rels[static_cast<size_t>(i)].plan;
      for (const Field& f : rels[static_cast<size_t>(i)].schema->fields()) {
        e.visible[f.name] = ColRef{i, f.name};
      }
      return e;
    };

    Entry best;
    if (n <= max_dp_) {
      // DPsize over connected subsets; invalid entries (cross products)
      // simply never seed larger masks.
      std::vector<Entry> dp(static_cast<size_t>(1) << n);
      for (int i = 0; i < n; ++i) dp[rel_bit[static_cast<size_t>(i)]] = leaf_entry(i);
      uint64_t full = (static_cast<uint64_t>(1) << n) - 1;
      for (uint64_t mask = 1; mask <= full; ++mask) {
        if ((mask & (mask - 1)) == 0) continue;  // singletons seeded above
        Entry& slot = dp[mask];
        for (uint64_t sub = (mask - 1) & mask; sub != 0; sub = (sub - 1) & mask) {
          uint64_t other = mask ^ sub;
          if (sub > other) continue;  // each split once; both orientations below
          const Entry& a = dp[sub];
          const Entry& b = dp[other];
          if (!a.valid || !b.valid) continue;
          for (int orient = 0; orient < 2; ++orient) {
            Entry cand = orient == 0
                             ? JoinEntries(a, b, edges, rel_bit, sub, other, &uf)
                             : JoinEntries(b, a, edges, rel_bit, other, sub, &uf);
            if (cand.valid && (!slot.valid || cand.cost < slot.cost - 1e-9)) {
              slot = std::move(cand);
            }
          }
        }
      }
      best = dp[full];
    } else {
      // Left-deep greedy: start from the cheapest connected pair, then keep
      // absorbing the relation that yields the smallest join.
      std::vector<bool> used(static_cast<size_t>(n), false);
      Entry seed;
      int si = -1, sj = -1;
      for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
          Entry cand = JoinEntries(leaf_entry(i), leaf_entry(j), edges, rel_bit,
                                   rel_bit[static_cast<size_t>(i)],
                                   rel_bit[static_cast<size_t>(j)], &uf);
          if (cand.valid && (!seed.valid || cand.cost < seed.cost)) {
            seed = std::move(cand);
            si = i;
            sj = j;
          }
        }
      }
      if (!seed.valid) return PlanPtr(nullptr);
      used[static_cast<size_t>(si)] = used[static_cast<size_t>(sj)] = true;
      uint64_t mask = rel_bit[static_cast<size_t>(si)] | rel_bit[static_cast<size_t>(sj)];
      best = std::move(seed);
      for (int step = 2; step < n; ++step) {
        Entry next;
        int pick = -1;
        for (int i = 0; i < n; ++i) {
          if (used[static_cast<size_t>(i)]) continue;
          Entry cand = JoinEntries(best, leaf_entry(i), edges, rel_bit, mask,
                                   rel_bit[static_cast<size_t>(i)], &uf);
          if (cand.valid && (!next.valid || cand.cost < next.cost)) {
            next = std::move(cand);
            pick = i;
          }
        }
        if (pick < 0) return PlanPtr(nullptr);  // disconnected remainder
        used[static_cast<size_t>(pick)] = true;
        mask |= rel_bit[static_cast<size_t>(pick)];
        best = std::move(next);
      }
    }
    if (!best.valid) return PlanPtr(nullptr);
    // Strict improvement required: ties keep the written order (stability —
    // a replan with identical stats must produce the identical plan).
    if (best.cost >= flat.cost * 0.999) return PlanPtr(nullptr);

    // Restore the original output schema: rename each surviving class
    // representative back to the original name, then project the original
    // column order.
    NEXUS_ASSIGN_OR_RETURN(SchemaPtr target, InferSchema(*root, &ctx_));
    std::vector<std::pair<std::string, std::string>> renames;
    std::vector<std::string> order;
    for (const Field& f : target->fields()) {
      auto oit = flat.visible.find(f.name);
      if (oit == flat.visible.end()) return PlanPtr(nullptr);
      const std::string* have = FindEquivalent(best.visible, oit->second, &uf);
      if (have == nullptr) return PlanPtr(nullptr);
      if (*have != f.name) {
        // A rename target colliding with a surviving column, or two targets
        // sharing one source, would shadow columns; valid original schemas
        // make both impossible, but the guards are cheap.
        if (best.visible.count(f.name) != 0) return PlanPtr(nullptr);
        for (const auto& [from, to] : renames) {
          if (from == *have) return PlanPtr(nullptr);
        }
        renames.emplace_back(*have, f.name);
      }
      order.push_back(f.name);
    }
    PlanPtr out = best.plan;
    if (out->Equals(*root)) return PlanPtr(nullptr);  // same order found
    if (!renames.empty()) out = Plan::Rename(out, std::move(renames));
    out = Plan::Project(out, std::move(order));
    if (reordered_ != nullptr) ++*reordered_;
    return out;
  }

  InferContext ctx_;
  CardinalityEstimator est_;
  int64_t* reordered_;
  int max_dp_;
};

}  // namespace

Result<PlanPtr> ReorderJoins(const PlanPtr& plan, const Catalog& catalog,
                             int64_t* joins_reordered, int max_dp_relations) {
  Reorderer r(catalog, joins_reordered, max_dp_relations);
  return r.Rewrite(plan);
}

}  // namespace nexus
