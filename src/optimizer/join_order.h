// Cost-based join reordering (Selinger-style).
//
// Clusters of adjacent inner equi-joins (no residuals, no dimension-tagged
// inputs) are flattened into a relation set + equality-edge graph and
// re-enumerated: DPsize over connected subsets for up to `max_dp_relations`
// relations, a left-deep greedy heuristic past that. Cross products are
// never considered. The cost model is Cout (sum of estimated intermediate
// cardinalities, optimizer/cardinality.h). The winning order is wrapped in
// Rename+Project so the output schema — names, order, types — is exactly
// the original plan's; on ties (or estimation failure) the written order is
// kept untouched.
#ifndef NEXUS_OPTIMIZER_JOIN_ORDER_H_
#define NEXUS_OPTIMIZER_JOIN_ORDER_H_

#include <cstdint>

#include "core/catalog.h"
#include "core/plan.h"

namespace nexus {

/// Default DP width: 2^10 subsets is where enumeration cost starts to rival
/// small-query execution, the classic switchover point.
inline constexpr int kMaxDpRelations = 10;

/// Rewrites every reorderable join cluster in `plan` into its cheapest
/// estimated order. `joins_reordered` (may be null) is incremented once per
/// cluster whose order actually changed.
Result<PlanPtr> ReorderJoins(const PlanPtr& plan, const Catalog& catalog,
                             int64_t* joins_reordered,
                             int max_dp_relations = kMaxDpRelations);

}  // namespace nexus

#endif  // NEXUS_OPTIMIZER_JOIN_ORDER_H_
