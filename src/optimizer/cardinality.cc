#include "optimizer/cardinality.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"
#include "core/schema_inference.h"

namespace nexus {

namespace {

constexpr double kDefaultRows = 1000.0;  // scan with schema but no stats
constexpr double kDefaultNdv = 100.0;
constexpr double kUnknownComparisonSel = 1.0 / 3.0;
constexpr double kUnknownPredicateSel = 0.5;

double Clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

double ColumnNdv(const PlanStats& in, const std::string& name) {
  auto it = in.columns.find(name);
  if (it == in.columns.end() || it->second.distinct <= 0.0) {
    return std::max(1.0, in.rows);  // unknown: assume all-distinct (no overlap)
  }
  return std::max(1.0, it->second.distinct);
}

double NonNullFraction(const PlanStats& in, const std::string& name) {
  auto it = in.columns.find(name);
  if (it == in.columns.end() || in.rows <= 0.0) return 1.0;
  return Clamp01(1.0 - static_cast<double>(it->second.null_count) / in.rows);
}

BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt: return BinaryOp::kGt;
    case BinaryOp::kLe: return BinaryOp::kGe;
    case BinaryOp::kGt: return BinaryOp::kLt;
    case BinaryOp::kGe: return BinaryOp::kLe;
    default: return op;  // eq/ne are symmetric
  }
}

// col `op` literal, with the column on the left.
double ColumnLiteralSelectivity(BinaryOp op, const std::string& col,
                                const Value& lit, const PlanStats& in) {
  double nonnull = NonNullFraction(in, col);
  double ndv = ColumnNdv(in, col);
  if (op == BinaryOp::kEq) return Clamp01(nonnull / ndv);
  if (op == BinaryOp::kNe) return Clamp01(nonnull * (1.0 - 1.0 / ndv));
  auto it = in.columns.find(col);
  if (it == in.columns.end() || !it->second.has_minmax || !lit.is_numeric()) {
    return Clamp01(nonnull * kUnknownComparisonSel);
  }
  double v = lit.AsDouble();
  double lo = it->second.min, hi = it->second.max;
  if (hi <= lo) {
    // Single-point range: the comparison is decidable.
    bool holds = (op == BinaryOp::kLt && lo < v) ||
                 (op == BinaryOp::kLe && lo <= v) ||
                 (op == BinaryOp::kGt && lo > v) ||
                 (op == BinaryOp::kGe && lo >= v);
    return holds ? nonnull : 0.0;
  }
  double frac = Clamp01((v - lo) / (hi - lo));
  double point = 1.0 / ndv;  // width of one distinct value
  switch (op) {
    case BinaryOp::kLt: return Clamp01(nonnull * frac);
    case BinaryOp::kLe: return Clamp01(nonnull * (frac + point));
    case BinaryOp::kGt: return Clamp01(nonnull * (1.0 - frac - point));
    case BinaryOp::kGe: return Clamp01(nonnull * (1.0 - frac));
    default: return Clamp01(nonnull * kUnknownComparisonSel);
  }
}

// Narrows per-column ranges/NDVs for conjuncts of the form col cmp literal,
// so stacked filters and join keys downstream see the filtered domain.
void NarrowByPredicate(const Expr& pred, PlanStats* out) {
  if (pred.kind() == ExprKind::kBinary && pred.binary_op() == BinaryOp::kAnd) {
    NarrowByPredicate(*pred.child(0), out);
    NarrowByPredicate(*pred.child(1), out);
    return;
  }
  if (pred.kind() != ExprKind::kBinary || !IsComparison(pred.binary_op())) return;
  BinaryOp op = pred.binary_op();
  const Expr* cref = pred.child(0).get();
  const Expr* lref = pred.child(1).get();
  if (cref->kind() != ExprKind::kColumnRef || lref->kind() != ExprKind::kLiteral) {
    if (lref->kind() == ExprKind::kColumnRef &&
        cref->kind() == ExprKind::kLiteral) {
      std::swap(cref, lref);
      op = FlipComparison(op);
    } else {
      return;
    }
  }
  if (!lref->literal().is_numeric()) return;
  auto it = out->columns.find(cref->column_name());
  if (it == out->columns.end() || !it->second.has_minmax) return;
  double v = lref->literal().AsDouble();
  ColumnStats& c = it->second;
  switch (op) {
    case BinaryOp::kEq:
      c.min = c.max = v;
      c.distinct = 1.0;
      break;
    case BinaryOp::kLt:
    case BinaryOp::kLe:
      c.max = std::min(c.max, v);
      break;
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      c.min = std::max(c.min, v);
      break;
    default:
      break;
  }
  if (c.min > c.max) c.min = c.max;
}

// Caps per-column NDVs and null counts at the (new) output cardinality.
void CapToRows(PlanStats* s) {
  for (auto& [name, c] : s->columns) {
    c.distinct = std::min(c.distinct, std::max(1.0, s->rows));
    c.null_count = std::min<int64_t>(
        c.null_count, static_cast<int64_t>(std::ceil(s->rows)));
  }
}

PlanStats FromTableStats(const TableStats& t) {
  PlanStats s;
  s.rows = static_cast<double>(t.row_count);
  s.columns = t.columns;
  return s;
}

}  // namespace

double PlanStats::RowWidth() const {
  if (columns.empty()) return 8.0;
  double w = 0.0;
  for (const auto& [name, c] : columns) w += c.avg_width + 0.125;
  return w;
}

double PlanStats::Bytes() const { return std::max(0.0, rows) * RowWidth(); }

double EstimateSelectivity(const Expr& pred, const PlanStats& input) {
  switch (pred.kind()) {
    case ExprKind::kLiteral: {
      const Value& v = pred.literal();
      if (v.is_null()) return 0.0;
      if (v.is_bool()) return v.AsBool() ? 1.0 : 0.0;
      return 1.0;
    }
    case ExprKind::kColumnRef:
      return kUnknownPredicateSel;  // bare bool column
    case ExprKind::kUnary:
      if (pred.unary_op() == UnaryOp::kNot) {
        return Clamp01(1.0 - EstimateSelectivity(*pred.child(0), input));
      }
      return kUnknownPredicateSel;
    case ExprKind::kBinary: {
      BinaryOp op = pred.binary_op();
      if (op == BinaryOp::kAnd) {
        return Clamp01(EstimateSelectivity(*pred.child(0), input) *
                       EstimateSelectivity(*pred.child(1), input));
      }
      if (op == BinaryOp::kOr) {
        double a = EstimateSelectivity(*pred.child(0), input);
        double b = EstimateSelectivity(*pred.child(1), input);
        return Clamp01(a + b - a * b);
      }
      if (!IsComparison(op)) return kUnknownPredicateSel;
      const Expr& l = *pred.child(0);
      const Expr& r = *pred.child(1);
      if (l.kind() == ExprKind::kColumnRef && r.kind() == ExprKind::kLiteral) {
        return ColumnLiteralSelectivity(op, l.column_name(), r.literal(), input);
      }
      if (r.kind() == ExprKind::kColumnRef && l.kind() == ExprKind::kLiteral) {
        return ColumnLiteralSelectivity(FlipComparison(op), r.column_name(),
                                        l.literal(), input);
      }
      if (l.kind() == ExprKind::kColumnRef && r.kind() == ExprKind::kColumnRef) {
        if (op == BinaryOp::kEq) {
          return Clamp01(1.0 / std::max(ColumnNdv(input, l.column_name()),
                                        ColumnNdv(input, r.column_name())));
        }
        return kUnknownComparisonSel;
      }
      // ne over an opaque expression (mod, function, …): most rows survive.
      if (op == BinaryOp::kNe) return 1.0 - kUnknownComparisonSel;
      return kUnknownComparisonSel;
    }
    default:
      return kUnknownPredicateSel;
  }
}

PlanStats EstimateJoinStats(const PlanStats& left, const PlanStats& right,
                            const std::vector<std::string>& left_keys,
                            const std::vector<std::string>& right_keys) {
  PlanStats out;
  // Containment assumption per key pair: matching values are the smaller
  // distinct set, spread uniformly over the larger.
  double sel = 1.0;
  for (size_t i = 0; i < left_keys.size() && i < right_keys.size(); ++i) {
    sel /= std::max(ColumnNdv(left, left_keys[i]),
                    ColumnNdv(right, right_keys[i]));
  }
  out.rows = std::max(0.0, left.rows) * std::max(0.0, right.rows) * sel;
  // Output columns: all of the left, then the right minus its key columns
  // (the algebra drops them — they are redundant with the left keys).
  out.columns = left.columns;
  for (const auto& [name, c] : right.columns) {
    if (std::find(right_keys.begin(), right_keys.end(), name) !=
        right_keys.end()) {
      continue;
    }
    out.columns.emplace(name, c);  // keeps left's entry on (invalid) clashes
  }
  // Surviving key columns take the overlap of both sides' domains — chained
  // joins on the same key then see the already-restricted range.
  for (size_t i = 0; i < left_keys.size() && i < right_keys.size(); ++i) {
    auto lit = out.columns.find(left_keys[i]);
    if (lit == out.columns.end()) continue;
    auto rit = right.columns.find(right_keys[i]);
    if (rit == right.columns.end()) continue;
    lit->second.distinct =
        std::min(std::max(1.0, lit->second.distinct),
                 std::max(1.0, rit->second.distinct));
    if (lit->second.has_minmax && rit->second.has_minmax) {
      lit->second.min = std::max(lit->second.min, rit->second.min);
      lit->second.max = std::min(lit->second.max, rit->second.max);
      if (lit->second.min > lit->second.max) {
        lit->second.min = lit->second.max;
      }
    }
  }
  CapToRows(&out);
  return out;
}

Result<PlanStats> CardinalityEstimator::Estimate(const Plan& plan) {
  auto it = memo_.find(&plan);
  if (it != memo_.end()) return it->second;
  NEXUS_ASSIGN_OR_RETURN(PlanStats s, Compute(plan));
  memo_[&plan] = s;
  return s;
}

Result<PlanStats> CardinalityEstimator::Compute(const Plan& plan) {
  switch (plan.kind()) {
    case OpKind::kScan: {
      const std::string& table = plan.As<ScanOp>().table;
      auto stats = catalog_->GetStats(table);
      if (stats.ok()) return FromTableStats(stats.ValueOrDie());
      // Schema known but never profiled (a catalog that only answers
      // schemas): textbook defaults beat refusing to plan.
      NEXUS_ASSIGN_OR_RETURN(SchemaPtr schema, catalog_->GetSchema(table));
      PlanStats s;
      s.rows = kDefaultRows;
      for (const Field& f : schema->fields()) {
        ColumnStats c;
        c.distinct = kDefaultNdv;
        c.avg_width = EstimatedWireWidth(f.type, 8.0);
        s.columns[f.name] = c;
      }
      return s;
    }
    case OpKind::kValues:
      return FromTableStats(ComputeStats(plan.As<ValuesOp>().data, 4096));
    case OpKind::kLoopVar: {
      if (loop_stack_.empty()) {
        return Status::PlanError("loop variable outside an iterate scope");
      }
      return loop_stack_.back();
    }
    default:
      break;
  }

  std::vector<PlanStats> in;
  in.reserve(plan.children().size());
  for (const PlanPtr& c : plan.children()) {
    NEXUS_ASSIGN_OR_RETURN(PlanStats cs, Estimate(*c));
    in.push_back(std::move(cs));
  }

  switch (plan.kind()) {
    case OpKind::kSelect: {
      const ExprPtr& pred = plan.As<SelectOp>().predicate;
      PlanStats out = in[0];
      out.rows = in[0].rows * EstimateSelectivity(*pred, in[0]);
      NarrowByPredicate(*pred, &out);
      CapToRows(&out);
      return out;
    }
    case OpKind::kProject: {
      PlanStats out;
      out.rows = in[0].rows;
      for (const std::string& col : plan.As<ProjectOp>().columns) {
        auto cit = in[0].columns.find(col);
        if (cit != in[0].columns.end()) out.columns[col] = cit->second;
      }
      return out;
    }
    case OpKind::kExtend: {
      PlanStats out = in[0];
      for (const auto& [name, e] : plan.As<ExtendOp>().defs) {
        ColumnStats c;
        c.distinct = std::max(1.0, out.rows);
        out.columns[name] = c;
      }
      return out;
    }
    case OpKind::kJoin: {
      const auto& op = plan.As<JoinOp>();
      PlanStats out;
      switch (op.type) {
        case JoinType::kInner:
          out = EstimateJoinStats(in[0], in[1], op.left_keys, op.right_keys);
          break;
        case JoinType::kLeft: {
          out = EstimateJoinStats(in[0], in[1], op.left_keys, op.right_keys);
          out.rows = std::max(out.rows, in[0].rows);  // unmatched rows survive
          break;
        }
        case JoinType::kSemi:
        case JoinType::kAnti: {
          // Fraction of left keys with a match, per containment.
          double frac = 1.0;
          for (size_t i = 0;
               i < op.left_keys.size() && i < op.right_keys.size(); ++i) {
            double l = ColumnNdv(in[0], op.left_keys[i]);
            double r = ColumnNdv(in[1], op.right_keys[i]);
            frac *= std::min(l, r) / std::max(1.0, l);
          }
          out = in[0];
          out.rows = in[0].rows *
                     (op.type == JoinType::kSemi ? frac : 1.0 - frac);
          break;
        }
      }
      if (op.residual != nullptr && op.type == JoinType::kInner) {
        out.rows *= EstimateSelectivity(*op.residual, out);
      }
      CapToRows(&out);
      return out;
    }
    case OpKind::kAggregate: {
      const auto& op = plan.As<AggregateOp>();
      PlanStats out;
      if (op.group_by.empty()) {
        out.rows = in[0].rows > 0.0 ? 1.0 : 0.0;
      } else {
        double groups = 1.0;
        for (const std::string& g : op.group_by) {
          groups *= ColumnNdv(in[0], g);
        }
        out.rows = std::min(groups, std::max(in[0].rows, 0.0));
        for (const std::string& g : op.group_by) {
          auto cit = in[0].columns.find(g);
          if (cit != in[0].columns.end()) out.columns[g] = cit->second;
        }
      }
      for (const AggSpec& a : op.aggs) {
        ColumnStats c;
        c.distinct = std::max(1.0, out.rows);
        out.columns[a.output_name] = c;
      }
      CapToRows(&out);
      return out;
    }
    case OpKind::kSort:
      return in[0];
    case OpKind::kLimit: {
      const auto& op = plan.As<LimitOp>();
      PlanStats out = in[0];
      double avail = std::max(0.0, in[0].rows - static_cast<double>(op.offset));
      out.rows = std::min(static_cast<double>(op.limit), avail);
      CapToRows(&out);
      return out;
    }
    case OpKind::kDistinct: {
      PlanStats out = in[0];
      double combos = 1.0;
      for (const auto& [name, c] : in[0].columns) {
        combos *= std::max(1.0, c.distinct);
        if (combos >= in[0].rows) break;  // saturated
      }
      out.rows = in[0].columns.empty() ? in[0].rows
                                       : std::min(combos, in[0].rows);
      CapToRows(&out);
      return out;
    }
    case OpKind::kUnion: {
      PlanStats out = in[0];
      out.rows = in[0].rows + in[1].rows;
      for (auto& [name, c] : out.columns) {
        auto rit = in[1].columns.find(name);
        if (rit == in[1].columns.end()) continue;
        c.distinct += rit->second.distinct;  // upper bound; capped below
        c.null_count += rit->second.null_count;
        if (c.has_minmax && rit->second.has_minmax) {
          c.min = std::min(c.min, rit->second.min);
          c.max = std::max(c.max, rit->second.max);
        }
      }
      CapToRows(&out);
      return out;
    }
    case OpKind::kRename: {
      PlanStats out;
      out.rows = in[0].rows;
      const auto& mapping = plan.As<RenameOp>().mapping;
      for (const auto& [name, c] : in[0].columns) {
        std::string renamed = name;
        for (const auto& [from, to] : mapping) {
          if (from == name) renamed = to;
        }
        out.columns[renamed] = c;
      }
      return out;
    }
    case OpKind::kRebox:
    case OpKind::kUnbox:
    case OpKind::kTranspose:
    case OpKind::kWindow:
    case OpKind::kExchange:
      return in[0];  // representation/order changes, cardinality preserved
    case OpKind::kSlice: {
      PlanStats out = in[0];
      for (const DimRange& r : plan.As<SliceOp>().ranges) {
        double frac = kUnknownPredicateSel;
        auto cit = out.columns.find(r.dim);
        if (cit != out.columns.end() && cit->second.has_minmax &&
            cit->second.max >= cit->second.min) {
          double extent = cit->second.max - cit->second.min + 1.0;
          double kept =
              std::min(cit->second.max + 1.0, static_cast<double>(r.hi)) -
              std::max(cit->second.min, static_cast<double>(r.lo));
          frac = Clamp01(kept / extent);
          cit->second.min = std::max(cit->second.min, static_cast<double>(r.lo));
          cit->second.max =
              std::min(cit->second.max, static_cast<double>(r.hi) - 1.0);
          if (cit->second.min > cit->second.max) cit->second.max = cit->second.min;
        }
        out.rows *= frac;
      }
      CapToRows(&out);
      return out;
    }
    case OpKind::kShift: {
      PlanStats out = in[0];
      for (const auto& [dim, delta] : plan.As<ShiftOp>().offsets) {
        auto cit = out.columns.find(dim);
        if (cit != out.columns.end() && cit->second.has_minmax) {
          cit->second.min += static_cast<double>(delta);
          cit->second.max += static_cast<double>(delta);
        }
      }
      return out;
    }
    case OpKind::kRegrid: {
      PlanStats out = in[0];
      for (const auto& [dim, factor] : plan.As<RegridOp>().factors) {
        double f = std::max<double>(1.0, static_cast<double>(factor));
        out.rows /= f;
        auto cit = out.columns.find(dim);
        if (cit != out.columns.end()) {
          cit->second.distinct = std::max(1.0, cit->second.distinct / f);
          if (cit->second.has_minmax) {
            cit->second.min = std::floor(cit->second.min / f);
            cit->second.max = std::floor(cit->second.max / f);
          }
        }
      }
      CapToRows(&out);
      return out;
    }
    case OpKind::kElemWise: {
      PlanStats out = in[0];
      out.rows = std::min(in[0].rows, in[1].rows);  // cells must align
      CapToRows(&out);
      return out;
    }
    case OpKind::kMatMul: {
      PlanStats out;
      // The relational reading: join on the contracted dimension, then
      // aggregate by (row dim, col dim) — so the estimate is the join
      // estimate capped at the output grid size.
      auto schema = InferSchema(plan, *catalog_);
      double contracted = 1.0;
      for (const auto& [name, c] : in[0].columns) {
        if (in[1].columns.count(name) != 0) {
          contracted = std::max(
              contracted, std::max(c.distinct, in[1].columns.at(name).distinct));
        }
      }
      double join_rows = in[0].rows * in[1].rows / contracted;
      if (schema.ok() && schema.ValueOrDie()->num_fields() == 3) {
        const Schema& s = *schema.ValueOrDie();
        double grid = 1.0;
        for (int i = 0; i < 2; ++i) {
          const std::string& dim = s.field(i).name;
          ColumnStats c;
          auto lit = in[0].columns.find(dim);
          auto rit = in[1].columns.find(dim);
          if (lit != in[0].columns.end()) c = lit->second;
          else if (rit != in[1].columns.end()) c = rit->second;
          else c.distinct = std::sqrt(std::max(1.0, join_rows));
          out.columns[dim] = c;
          grid *= std::max(1.0, c.distinct);
        }
        ColumnStats val;
        val.distinct = std::max(1.0, std::min(join_rows, grid));
        out.columns[s.field(2).name] = val;
        out.rows = std::min(join_rows, grid);
      } else {
        out.rows = std::max(in[0].rows, in[1].rows);
      }
      CapToRows(&out);
      return out;
    }
    case OpKind::kPageRank: {
      const auto& op = plan.As<PageRankOp>();
      PlanStats out;
      double nodes = std::max(ColumnNdv(in[0], op.src_col),
                              ColumnNdv(in[0], op.dst_col));
      out.rows = std::min(nodes, std::max(1.0, in[0].rows));
      ColumnStats node;
      auto sit = in[0].columns.find(op.src_col);
      if (sit != in[0].columns.end()) node = sit->second;
      node.distinct = out.rows;
      out.columns["node"] = node;
      ColumnStats rank;
      rank.distinct = out.rows;
      out.columns["rank"] = rank;
      return out;
    }
    case OpKind::kIterate:
      // Schema-preserving fixpoint: the loop state stays the shape of its
      // initializer (the feedback loop refines this with observed actuals
      // once the first round's temps are registered).
      return in[0];
    default:
      break;
  }
  // Anything new defaults to cardinality-preserving.
  PlanStats out = in.empty() ? PlanStats{} : in[0];
  return out;
}

Result<double> EstimateCardinality(const Plan& plan, const Catalog& catalog) {
  CardinalityEstimator est(&catalog);
  NEXUS_ASSIGN_OR_RETURN(PlanStats s, est.Estimate(plan));
  return std::max(0.0, s.rows);
}

Result<int64_t> EstimateWireBytes(const Plan& plan, const Catalog& catalog) {
  CardinalityEstimator est(&catalog);
  NEXUS_ASSIGN_OR_RETURN(PlanStats s, est.Estimate(plan));
  return static_cast<int64_t>(s.Bytes());
}

}  // namespace nexus
