#include "optimizer/stats.h"

#include <algorithm>
#include <set>

#include "common/hash.h"
#include "common/str_util.h"
#include "types/table.h"

namespace nexus {

void KmvSketch::Add(uint64_t hash) {
  if (keep_.size() < kK) {
    keep_.insert(hash);
    return;
  }
  auto largest = std::prev(keep_.end());
  if (hash < *largest && keep_.insert(hash).second) keep_.erase(largest);
}

void KmvSketch::Merge(const KmvSketch& other) {
  // Union the kept sets, then trim back to the k smallest. Identical to
  // having Add-ed other's whole stream: any hash small enough to survive in
  // the union's bottom k was kept by whichever sketch saw it.
  for (uint64_t h : other.keep_) keep_.insert(h);
  while (keep_.size() > kK) keep_.erase(std::prev(keep_.end()));
}

double KmvSketch::Estimate() const {
  if (keep_.size() < kK) return static_cast<double>(keep_.size());
  // kth minimum at normalized position p estimates (k-1)/p values.
  double kth = static_cast<double>(*std::prev(keep_.end()));
  double p = kth / 18446744073709551616.0;  // 2^64
  if (p <= 0.0) return static_cast<double>(kK);
  return static_cast<double>(kK - 1) / p;
}

namespace {

ColumnStats ComputeColumnStats(const Column& col, int64_t sample_limit,
                               int64_t* sampled_rows) {
  ColumnStats s;
  const int64_t n = col.size();
  s.null_count = col.null_count();

  // min/max and average width: full single pass, numeric types only track
  // ranges (string ordering does not drive our selectivity math).
  if (col.type() == DataType::kInt64 || col.type() == DataType::kFloat64) {
    for (int64_t i = 0; i < n; ++i) {
      if (col.IsNull(i)) continue;
      double v = col.NumericAt(i);
      if (!s.has_minmax || v < s.min) s.min = v;
      if (!s.has_minmax || v > s.max) s.max = v;
      s.has_minmax = true;
    }
    s.avg_width = EstimatedWireWidth(col.type(), 0.0);
  } else if (col.type() == DataType::kString) {
    int64_t total_len = 0;
    for (const std::string& v : col.strings()) {
      total_len += static_cast<int64_t>(v.size());
    }
    double avg_len = n > 0 ? static_cast<double>(total_len) / n : 0.0;
    s.avg_width = EstimatedWireWidth(col.type(), avg_len);
  } else {
    s.avg_width = EstimatedWireWidth(col.type(), 0.0);
  }

  // NDV: sketch over an evenly strided sample, scaled back up only when the
  // sample looks mostly-unique (the classic "distinct values are either
  // proportional to size or saturated" heuristic).
  KmvSketch sketch;
  int64_t stride = sample_limit > 0 && n > sample_limit
                       ? (n + sample_limit - 1) / sample_limit
                       : 1;
  int64_t seen = 0, seen_nonnull = 0;
  for (int64_t i = 0; i < n; i += stride) {
    ++seen;
    if (col.IsNull(i)) continue;
    ++seen_nonnull;
    sketch.Add(col.HashAt(i));
  }
  double ndv = sketch.Estimate();
  if (stride > 1 && seen_nonnull > 0 && ndv > 0.8 * seen_nonnull) {
    ndv *= static_cast<double>(n) / (seen * 1.0);
  }
  s.distinct = std::min(ndv, static_cast<double>(std::max<int64_t>(n - s.null_count, 0)));
  if (s.distinct < 1.0 && n > s.null_count) s.distinct = 1.0;
  *sampled_rows = std::min(*sampled_rows, seen);
  return s;
}

}  // namespace

double TableStats::RowWidth() const {
  if (columns.empty()) return 8.0;
  double w = 0.0;
  for (const auto& [name, c] : columns) w += c.avg_width + 0.125;
  return w;
}

std::string TableStats::ToString() const {
  std::string out = StrCat("rows=", row_count);
  for (const auto& [name, c] : columns) {
    out += StrCat("  ", name, "{ndv=", FormatDouble(c.distinct, 0),
                  " nulls=", c.null_count);
    if (c.has_minmax) {
      out += StrCat(" range=[", FormatDouble(c.min, 2), ",",
                    FormatDouble(c.max, 2), "]");
    }
    out += "}";
  }
  return out;
}

double EstimatedWireWidth(DataType type, double avg_value_bytes) {
  switch (type) {
    case DataType::kString:
      // NXB1 string frame: (n+1) u32 cumulative offsets plus the blob.
      return avg_value_bytes + 4.0;
    default:
      return static_cast<double>(FixedWidth(type));
  }
}

TableStatsAccumulator::TableStatsAccumulator(SchemaPtr schema)
    : schema_(std::move(schema)),
      cols_(static_cast<size_t>(schema_->num_fields())) {}

void TableStatsAccumulator::AddTable(const Table& batch) {
  const int64_t n = batch.num_rows();
  for (int i = 0; i < batch.schema()->num_fields(); ++i) {
    ColumnAcc& acc = cols_[static_cast<size_t>(i)];
    const Column& col = batch.column(i);
    acc.null_count += col.null_count();
    if (col.type() == DataType::kInt64 || col.type() == DataType::kFloat64) {
      for (int64_t r = 0; r < n; ++r) {
        if (col.IsNull(r)) continue;
        double v = col.NumericAt(r);
        if (!acc.has_minmax || v < acc.min) acc.min = v;
        if (!acc.has_minmax || v > acc.max) acc.max = v;
        acc.has_minmax = true;
      }
    } else if (col.type() == DataType::kString) {
      for (const std::string& v : col.strings()) {
        acc.string_bytes += static_cast<int64_t>(v.size());
      }
    }
    for (int64_t r = 0; r < n; ++r) {
      if (col.IsNull(r)) continue;
      acc.sketch.Add(col.HashAt(r));
    }
  }
  rows_ += n;
}

TableStats TableStatsAccumulator::Snapshot() const {
  TableStats stats;
  stats.row_count = rows_;
  stats.sampled_rows = rows_;  // every row passed through the sketches
  for (int i = 0; i < schema_->num_fields(); ++i) {
    const ColumnAcc& acc = cols_[static_cast<size_t>(i)];
    const Field& f = schema_->field(i);
    ColumnStats s;
    s.null_count = acc.null_count;
    s.has_minmax = acc.has_minmax;
    s.min = acc.min;
    s.max = acc.max;
    if (f.type == DataType::kString) {
      double avg_len =
          rows_ > 0 ? static_cast<double>(acc.string_bytes) / rows_ : 0.0;
      s.avg_width = EstimatedWireWidth(f.type, avg_len);
    } else {
      s.avg_width = EstimatedWireWidth(f.type, 0.0);
    }
    double ndv = acc.sketch.Estimate();
    s.distinct = std::min(
        ndv, static_cast<double>(std::max<int64_t>(rows_ - s.null_count, 0)));
    if (s.distinct < 1.0 && rows_ > s.null_count) s.distinct = 1.0;
    stats.columns[f.name] = s;
  }
  return stats;
}

TableStats ComputeStats(const Dataset& data, int64_t sample_limit) {
  TableStats stats;
  stats.row_count = data.num_rows();
  stats.sampled_rows = stats.row_count;
  if (!data.is_table()) return stats;  // arrays: cardinality only
  const Table& t = *data.table();
  for (int i = 0; i < t.schema()->num_fields(); ++i) {
    int64_t sampled = stats.row_count;
    stats.columns[t.schema()->field(i).name] =
        ComputeColumnStats(t.column(i), sample_limit, &sampled);
    stats.sampled_rows = std::min(stats.sampled_rows, sampled);
  }
  return stats;
}

}  // namespace nexus
