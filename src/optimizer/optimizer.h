// Rule-based logical optimizer for the Big Data Algebra.
//
// Passes (each individually switchable for ablation benches, E7):
//   1. constant folding of embedded scalar expressions,
//   2. selection pushdown (through project/extend/rename/union/sort/
//      distinct/rebox/unbox/slice and into inner-join sides),
//   3. intent recognition — the inverse of core/expansion.h: a relational
//      join+multiply+sum-aggregate pipeline over dimension-tagged inputs is
//      rewritten back into a MatMul node so providers with native matrix
//      multiply can claim it (desideratum 3),
//   4. column pruning — narrows scans to the columns the plan actually uses.
#ifndef NEXUS_OPTIMIZER_OPTIMIZER_H_
#define NEXUS_OPTIMIZER_OPTIMIZER_H_

#include "core/catalog.h"
#include "core/plan.h"

namespace nexus {

struct OptimizerOptions {
  bool fold_constants = true;
  bool push_selections = true;
  bool recognize_intent = true;
  bool prune_columns = true;
  /// Fixpoint bound for the pushdown pass.
  int max_passes = 10;
};

/// Statistics for bench reporting.
struct OptimizerStats {
  int64_t selections_pushed = 0;
  int64_t intents_recognized = 0;
  int64_t projects_inserted = 0;
  int64_t expressions_folded = 0;
};

/// Rewrites `plan` under the given options. The result type-checks to the
/// same schema and is value-equivalent. `stats` may be null.
Result<PlanPtr> Optimize(const PlanPtr& plan, const Catalog& catalog,
                         const OptimizerOptions& options = {},
                         OptimizerStats* stats = nullptr);

}  // namespace nexus

#endif  // NEXUS_OPTIMIZER_OPTIMIZER_H_
