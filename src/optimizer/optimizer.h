// Logical optimizer for the Big Data Algebra: rule passes plus a
// statistics-driven join reordering pass.
//
// Passes (each individually switchable for ablation benches, E7/E14):
//   1. constant folding of embedded scalar expressions,
//   2. selection pushdown (through project/extend/rename/union/sort/
//      distinct/rebox/unbox/slice and into inner-join sides),
//   3. cost-based join reordering — DPsize over inner equi-join clusters
//      driven by catalog statistics (optimizer/join_order.h); runs after
//      pushdown so filtered cardinalities are visible to the cost model,
//   4. intent recognition — the inverse of core/expansion.h: a relational
//      join+multiply+sum-aggregate pipeline over dimension-tagged inputs is
//      rewritten back into a MatMul node so providers with native matrix
//      multiply can claim it (desideratum 3),
//   5. column pruning — narrows scans to the columns the plan actually uses.
#ifndef NEXUS_OPTIMIZER_OPTIMIZER_H_
#define NEXUS_OPTIMIZER_OPTIMIZER_H_

#include "core/catalog.h"
#include "core/plan.h"

namespace nexus {

struct OptimizerOptions {
  bool fold_constants = true;
  bool push_selections = true;
  /// Cost-based join reordering over catalog statistics (E14's knob).
  bool reorder_joins = true;
  bool recognize_intent = true;
  /// Recognition of semi-ring-lowerable operators (optimizer/lower_semiring.h).
  /// Also gated process-wide by algebra::SemiringLoweringEnabled().
  bool lower_semiring = true;
  bool prune_columns = true;
  /// Fixpoint bound for the pushdown pass.
  int max_passes = 10;
};

/// Statistics for bench reporting.
struct OptimizerStats {
  int64_t selections_pushed = 0;
  int64_t intents_recognized = 0;
  int64_t projects_inserted = 0;
  int64_t expressions_folded = 0;
  /// Join clusters whose order the DP enumerator actually changed.
  int64_t joins_reordered = 0;
  /// Estimated root cardinality of the optimized plan (-1: inestimable).
  int64_t estimated_rows_root = 0;
  /// Operators the engines will route through the semi-ring kernels
  /// (aggregate ⊕-folds, sparse multiplies, PageRank steps).
  int64_t ops_lowered = 0;
};

/// Rewrites `plan` under the given options. The result type-checks to the
/// same schema and is value-equivalent. `stats` may be null.
Result<PlanPtr> Optimize(const PlanPtr& plan, const Catalog& catalog,
                         const OptimizerOptions& options = {},
                         OptimizerStats* stats = nullptr);

}  // namespace nexus

#endif  // NEXUS_OPTIMIZER_OPTIMIZER_H_
