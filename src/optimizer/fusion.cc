#include "optimizer/fusion.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace nexus {

namespace {

bool IsRowLocal(OpKind k) {
  return k == OpKind::kSelect || k == OpKind::kProject || k == OpKind::kExtend;
}

// -1 = no override; 0 = off; 1 = on.
std::atomic<int> g_fusion_override{-1};

bool EnvFusion() {
  static const bool from_env = [] {
    const char* env = std::getenv("NEXUS_FUSION");
    if (env != nullptr &&
        (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0)) {
      return false;
    }
    return true;
  }();
  return from_env;
}

}  // namespace

std::optional<FusedChain> MatchFusedChain(const Plan& root) {
  if (!IsRowLocal(root.kind()) && root.kind() != OpKind::kAggregate) {
    return std::nullopt;
  }
  // Collect top-down, then reverse into application order.
  std::vector<const Plan*> down;
  down.push_back(&root);
  const Plan* cur = root.child(0).get();
  while (IsRowLocal(cur->kind())) {
    down.push_back(cur);
    cur = cur->child(0).get();
  }
  if (down.size() < 2) return std::nullopt;
  FusedChain chain;
  chain.source = cur;
  chain.ops.assign(down.rbegin(), down.rend());
  return chain;
}

bool PipelineFusionEnabled() {
  int o = g_fusion_override.load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  return EnvFusion();
}

void SetPipelineFusionOverride(bool on) {
  g_fusion_override.store(on ? 1 : 0, std::memory_order_relaxed);
}

void ClearPipelineFusionOverride() {
  g_fusion_override.store(-1, std::memory_order_relaxed);
}

}  // namespace nexus
