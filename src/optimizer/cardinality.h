// Cardinality estimation over algebra plans.
//
// Every OpKind gets a rule: filters use min/max interpolation and 1/NDV
// equality selectivity, joins use the containment assumption
// |L ⋈ R| = |L|·|R| / max(ndv_L, ndv_R) per key, aggregates use the product
// of group-key NDVs. Estimates carry per-column stats forward (ranges narrow
// under filters, NDVs cap at the output cardinality) so chained operators
// compound sensibly. The numbers feed the DP join enumerator
// (optimizer/join_order.h), the coordinator's byte-minimizing placement, and
// EXPLAIN ANALYZE's estimated-vs-actual q-error report.
#ifndef NEXUS_OPTIMIZER_CARDINALITY_H_
#define NEXUS_OPTIMIZER_CARDINALITY_H_

#include <map>
#include <string>
#include <vector>

#include "core/catalog.h"
#include "core/plan.h"
#include "expr/expr.h"
#include "optimizer/stats.h"

namespace nexus {

/// Estimated shape of a plan node's output: cardinality plus per-column
/// stats (by output column name) for the columns we can still track.
struct PlanStats {
  double rows = 0.0;
  std::map<std::string, ColumnStats> columns;

  /// Estimated NXB1 bytes per output row (8 per column when untracked).
  double RowWidth() const;
  /// rows × RowWidth(), floored at 0.
  double Bytes() const;
};

/// Selectivity of `pred` against an input described by `input` — in [0, 1].
/// Unknown shapes fall back to the classic 1/3 (comparisons) and 1/2
/// (everything else) guesses.
double EstimateSelectivity(const Expr& pred, const PlanStats& input);

/// Output stats of an inner equi-join given both input estimates — shared
/// between the per-node estimator and the DP join enumerator, which scores
/// candidate joins without materializing plan nodes. Column names follow the
/// algebra's join schema: left columns, then right columns minus the right
/// keys.
PlanStats EstimateJoinStats(const PlanStats& left, const PlanStats& right,
                            const std::vector<std::string>& left_keys,
                            const std::vector<std::string>& right_keys);

/// Memoizing estimator. Memoization is by node identity, so estimating a
/// DAG-shaped search space (DP subsets sharing subtrees) stays linear.
class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(const Catalog* catalog) : catalog_(catalog) {}

  /// Estimated output stats of `plan`. Errors when a leaf resolves against
  /// neither stats nor schema (e.g. a loop-binding scan only the remote end
  /// knows) — callers treat that as "don't cost this one".
  Result<PlanStats> Estimate(const Plan& plan);

  /// Loop-variable scope for estimating inside Iterate bodies.
  void PushLoop(PlanStats stats) { loop_stack_.push_back(std::move(stats)); }
  void PopLoop() { loop_stack_.pop_back(); }

 private:
  Result<PlanStats> Compute(const Plan& plan);

  const Catalog* catalog_;
  std::map<const Plan*, PlanStats> memo_;
  std::vector<PlanStats> loop_stack_;
};

/// One-shot conveniences over a fresh estimator.
Result<double> EstimateCardinality(const Plan& plan, const Catalog& catalog);
Result<int64_t> EstimateWireBytes(const Plan& plan, const Catalog& catalog);

}  // namespace nexus

#endif  // NEXUS_OPTIMIZER_CARDINALITY_H_
