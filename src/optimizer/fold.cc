#include "optimizer/fold.h"

#include "expr/eval.h"

namespace nexus {

namespace {

bool IsLiteralBool(const Expr& e, bool value) {
  return e.kind() == ExprKind::kLiteral && e.literal().is_bool() &&
         e.literal().AsBool() == value;
}

bool IsConstant(const Expr& e) {
  if (e.kind() == ExprKind::kColumnRef) return false;
  for (const ExprPtr& c : e.children()) {
    if (!IsConstant(*c)) return false;
  }
  return true;
}

}  // namespace

ExprPtr FoldConstants(const ExprPtr& expr) {
  // Fold children first.
  std::vector<ExprPtr> folded;
  folded.reserve(expr->children().size());
  bool changed = false;
  for (const ExprPtr& c : expr->children()) {
    ExprPtr f = FoldConstants(c);
    changed = changed || f.get() != c.get();
    folded.push_back(std::move(f));
  }
  ExprPtr node = expr;
  if (changed) {
    switch (expr->kind()) {
      case ExprKind::kUnary:
        node = Expr::Unary(expr->unary_op(), folded[0]);
        break;
      case ExprKind::kBinary:
        node = Expr::Binary(expr->binary_op(), folded[0], folded[1]);
        break;
      case ExprKind::kFuncCall:
        node = Expr::FuncCall(expr->func_name(), folded);
        break;
      case ExprKind::kCast:
        node = Expr::Cast(expr->cast_target(), folded[0]);
        break;
      default:
        break;
    }
  }
  // Boolean identities.
  if (node->kind() == ExprKind::kBinary && IsLogical(node->binary_op())) {
    const ExprPtr& l = node->child(0);
    const ExprPtr& r = node->child(1);
    if (node->binary_op() == BinaryOp::kAnd) {
      if (IsLiteralBool(*l, true)) return r;
      if (IsLiteralBool(*r, true)) return l;
      if (IsLiteralBool(*l, false) || IsLiteralBool(*r, false)) {
        return Expr::Literal(Value::Bool(false));
      }
    } else {
      if (IsLiteralBool(*l, false)) return r;
      if (IsLiteralBool(*r, false)) return l;
      if (IsLiteralBool(*l, true) || IsLiteralBool(*r, true)) {
        return Expr::Literal(Value::Bool(true));
      }
    }
  }
  if (node->kind() == ExprKind::kUnary && node->unary_op() == UnaryOp::kNot) {
    const ExprPtr& c = node->child(0);
    if (c->kind() == ExprKind::kUnary && c->unary_op() == UnaryOp::kNot) {
      return c->child(0);  // not not x
    }
    if (IsLiteralBool(*c, true)) return Expr::Literal(Value::Bool(false));
    if (IsLiteralBool(*c, false)) return Expr::Literal(Value::Bool(true));
  }
  // Evaluate fully constant subtrees. Division by zero etc. yields null,
  // which is itself a valid literal; only hard errors abort folding.
  if (node->kind() != ExprKind::kLiteral && IsConstant(*node)) {
    Schema empty({});
    auto v = EvalExprRow(*node, empty, {});
    if (v.ok()) return Expr::Literal(v.MoveValue());
  }
  return node;
}

}  // namespace nexus
