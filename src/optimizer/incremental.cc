#include "optimizer/incremental.h"

#include <utility>

#include "common/str_util.h"

namespace nexus {
namespace incremental {

namespace {

/// Builds the delta node for `plan`, or sets *refusal and returns null.
/// `at_root` is true only along the spine where an aggregate may sit (the
/// root itself): anywhere else its output would change by update rather
/// than by append, which insert-only deltas cannot express.
std::unique_ptr<DeltaNode> Rewrite(const PlanPtr& plan, bool at_root,
                                   std::string* refusal) {
  auto make = [&](DeltaKind kind) {
    auto node = std::make_unique<DeltaNode>();
    node->kind = kind;
    node->plan = plan.get();
    return node;
  };
  auto child = [&](size_t i) {
    return Rewrite(plan->children()[i], false, refusal);
  };
  switch (plan->kind()) {
    case OpKind::kScan:
      return make(DeltaKind::kScan);
    case OpKind::kValues: {
      if (!plan->As<ValuesOp>().data.is_table()) {
        *refusal = "inline array Values have no row-delta form";
        return nullptr;
      }
      return make(DeltaKind::kConst);
    }
    case OpKind::kSelect: {
      auto c = child(0);
      if (c == nullptr) return nullptr;
      auto node = make(DeltaKind::kFilter);
      node->children.push_back(std::move(c));
      return node;
    }
    case OpKind::kProject: {
      auto c = child(0);
      if (c == nullptr) return nullptr;
      auto node = make(DeltaKind::kProject);
      node->children.push_back(std::move(c));
      return node;
    }
    case OpKind::kExtend: {
      auto c = child(0);
      if (c == nullptr) return nullptr;
      auto node = make(DeltaKind::kExtend);
      node->children.push_back(std::move(c));
      return node;
    }
    case OpKind::kRename: {
      auto c = child(0);
      if (c == nullptr) return nullptr;
      auto node = make(DeltaKind::kRename);
      node->children.push_back(std::move(c));
      return node;
    }
    case OpKind::kJoin: {
      const auto& op = plan->As<JoinOp>();
      if (op.type != JoinType::kInner) {
        *refusal = StrCat(
            "non-inner join needs retractions: an append can match a row "
            "already emitted as unmatched");
        return nullptr;
      }
      if (op.left_keys.empty()) {
        *refusal = "keys-free (cross) join: delta is not proportional to |Δ|";
        return nullptr;
      }
      auto l = child(0);
      if (l == nullptr) return nullptr;
      auto r = child(1);
      if (r == nullptr) return nullptr;
      auto node = make(DeltaKind::kJoin);
      node->children.push_back(std::move(l));
      node->children.push_back(std::move(r));
      return node;
    }
    case OpKind::kUnion: {
      auto l = child(0);
      if (l == nullptr) return nullptr;
      auto r = child(1);
      if (r == nullptr) return nullptr;
      auto node = make(DeltaKind::kUnion);
      node->children.push_back(std::move(l));
      node->children.push_back(std::move(r));
      return node;
    }
    case OpKind::kAggregate: {
      if (!at_root) {
        *refusal =
            "aggregate below the root: its output changes by update, not by "
            "append";
        return nullptr;
      }
      const auto& op = plan->As<AggregateOp>();
      for (const AggSpec& a : op.aggs) {
        if (a.func == AggFunc::kAvg) {
          *refusal =
              "AVG is not a single ⊕-fold (mirrors algebra::"
              "AggregateLowerable)";
          return nullptr;
        }
      }
      auto c = child(0);
      if (c == nullptr) return nullptr;
      auto node = make(DeltaKind::kAggregate);
      node->children.push_back(std::move(c));
      return node;
    }
    default:
      *refusal = StrCat(OpKindName(plan->kind()),
                        " has no insert-only delta rule");
      return nullptr;
  }
}

void Describe(const DeltaNode& node, int indent, std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  *out += StrCat(DeltaKindName(node.kind), " ", OpKindName(node.plan->kind()),
                 "\n");
  for (const auto& c : node.children) Describe(*c, indent + 1, out);
}

}  // namespace

const char* DeltaKindName(DeltaKind kind) {
  switch (kind) {
    case DeltaKind::kScan:
      return "Δscan";
    case DeltaKind::kConst:
      return "Δconst";
    case DeltaKind::kFilter:
      return "Δfilter";
    case DeltaKind::kProject:
      return "Δproject";
    case DeltaKind::kExtend:
      return "Δextend";
    case DeltaKind::kRename:
      return "Δrename";
    case DeltaKind::kJoin:
      return "Δjoin";
    case DeltaKind::kUnion:
      return "Δunion";
    case DeltaKind::kAggregate:
      return "Δreduce⊕";
  }
  return "?";
}

DeltaForm RewriteToDelta(const PlanPtr& plan) {
  DeltaForm form;
  form.root = Rewrite(plan, /*at_root=*/true, &form.refusal);
  return form;
}

std::string DescribeDeltaForm(const DeltaForm& form) {
  if (!form.supported()) return StrCat("refused: ", form.refusal, "\n");
  std::string out;
  Describe(*form.root, 0, &out);
  return out;
}

}  // namespace incremental
}  // namespace nexus
