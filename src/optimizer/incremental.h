// The delta-form rewrite: the optimizer pass that turns a registered view's
// plan into its incremental (insert-only) form, or refuses with a reason.
//
// Delta rules for appends (no retractions — catalog tables only grow):
//   Δ(σ_P(R))        = σ_P(ΔR)
//   Δ(π_A(R))        = π_A(ΔR)                    (also Extend / Rename)
//   Δ(R ⋈ S)         = ΔR ⋈ S_old  ∪  R_new ⋈ ΔS  (build-side state retained)
//   Δ(R ∪ S)         = ΔR ∪ ΔS
//   Reduce⊕ at root  = fold Δ into retained per-group accumulators
//
// Refusal table (mirrors the PR 7 byte-identity-or-refuse contract — a plan
// that cannot be maintained bit-exactly is not maintained at all):
//   outer/semi/anti join   unmatched rows need retraction when a match lands
//   keys-free (cross) join delta of |L|·|R| is not proportional to |Δ|
//   AVG                    not a single ⊕-fold (algebra::AggregateLowerable)
//   aggregate below root   its output changes by update, not by append
//   Sort/Limit/Distinct/…  appends land mid-order: output is not append-only
#ifndef NEXUS_OPTIMIZER_INCREMENTAL_H_
#define NEXUS_OPTIMIZER_INCREMENTAL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/plan.h"

namespace nexus {
namespace incremental {

/// How each node of a supported view plan is maintained.
enum class DeltaKind {
  kScan,       ///< catalog tail: DeltaSince(watermark)
  kConst,      ///< inline Values: delta is empty after the initial build
  kFilter,     ///< predicate over the delta
  kProject,    ///< projection of the delta
  kExtend,     ///< extension of the delta
  kRename,     ///< rename of the delta
  kJoin,       ///< inner join: retained build state both sides, probe deltas
  kUnion,      ///< concatenation of child deltas
  kAggregate,  ///< root ⊕-fold into retained per-group accumulators
};

const char* DeltaKindName(DeltaKind kind);

/// One node of the delta form, mirroring the view plan's shape.
struct DeltaNode {
  DeltaKind kind;
  const Plan* plan = nullptr;  ///< the view plan node this maintains
  std::vector<std::unique_ptr<DeltaNode>> children;
};

/// Result of the rewrite: a delta tree, or the refusal that stopped it.
struct DeltaForm {
  std::unique_ptr<DeltaNode> root;
  std::string refusal;  ///< why root is null; empty when supported
  bool supported() const { return root != nullptr; }
};

/// Rewrites `plan` into its insert-only delta form. Purely structural — no
/// catalog access; runtime conditions (a table replaced under the view, an
/// order-sensitive float fold receiving an out-of-order delta row) are
/// refused at refresh time instead, with a full-recompute fallback.
DeltaForm RewriteToDelta(const PlanPtr& plan);

/// One line per node: "kind op" for supported plans, or the refusal.
std::string DescribeDeltaForm(const DeltaForm& form);

}  // namespace incremental
}  // namespace nexus

#endif  // NEXUS_OPTIMIZER_INCREMENTAL_H_
