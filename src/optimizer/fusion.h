// Operator fusion: recognizes Filter→Extend/Project→Aggregate chains that a
// provider can execute as one fused morsel loop over the chain's source —
// a selection register plus compiled expression outputs instead of an
// intermediate materialized table per operator (ROADMAP item 2; the
// compile-once/run-many half of the paper's Performance desideratum).
//
// This header only MATCHES chains; lowering and execution live in
// relational/fused.h. The pass is switchable like the optimizer's
// `reorder_joins`: programmatically via SetPipelineFusionOverride, or with
// NEXUS_FUSION=off in the environment. Fusion never changes results — the
// fused executor is byte-identical to running the operators one-by-one
// (relational/fused.h documents why) and falls back to the per-operator
// path whenever lowering refuses.
#ifndef NEXUS_OPTIMIZER_FUSION_H_
#define NEXUS_OPTIMIZER_FUSION_H_

#include <optional>
#include <vector>

#include "core/plan.h"

namespace nexus {

/// A maximal fusable chain rooted at some plan node: `ops` lists the chain
/// bottom-up (ops[0] applies to the source first), each a kSelect, kProject,
/// or kExtend node — except the last, which may additionally be a
/// kAggregate. `source` is the subtree below the chain; pointers borrow from
/// the matched plan.
struct FusedChain {
  const Plan* source = nullptr;
  std::vector<const Plan*> ops;
};

/// Matches the longest fusable chain rooted at `root` (kAggregate allowed at
/// the root only). Returns nullopt when fewer than two operators would fuse
/// — a single operator gains nothing over the normal path.
std::optional<FusedChain> MatchFusedChain(const Plan& root);

/// True when pipeline fusion is enabled: the programmatic override if set,
/// else NEXUS_FUSION ("off"/"0" disables; default on).
bool PipelineFusionEnabled();
void SetPipelineFusionOverride(bool on);
void ClearPipelineFusionOverride();

}  // namespace nexus

#endif  // NEXUS_OPTIMIZER_FUSION_H_
