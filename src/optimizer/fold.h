// Constant folding and boolean simplification of scalar expressions.
#ifndef NEXUS_OPTIMIZER_FOLD_H_
#define NEXUS_OPTIMIZER_FOLD_H_

#include "expr/expr.h"

namespace nexus {

/// Evaluates constant subtrees (no column references) to literals and
/// simplifies boolean identities (true AND x → x, false OR x → x, NOT NOT x
/// → x, …). Total: never fails; a subtree whose folding would error (e.g.
/// 1/0) is left intact for runtime null semantics to handle.
ExprPtr FoldConstants(const ExprPtr& expr);

}  // namespace nexus

#endif  // NEXUS_OPTIMIZER_FOLD_H_
