#include "optimizer/lower_semiring.h"

#include "algebra/kernels.h"

namespace nexus {

bool SemiringLowerable(const Plan& node) {
  switch (node.kind()) {
    case OpKind::kAggregate:
      return algebra::AggregateLowerable(node.As<AggregateOp>());
    case OpKind::kMatMul:
    case OpKind::kPageRank:
      return true;
    default:
      return false;
  }
}

int64_t CountLowerableOps(const Plan& plan) {
  int64_t n = SemiringLowerable(plan) ? 1 : 0;
  for (const PlanPtr& c : plan.children()) n += CountLowerableOps(*c);
  return n;
}

}  // namespace nexus
