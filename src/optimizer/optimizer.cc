#include "optimizer/optimizer.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <optional>
#include <set>

#include "common/str_util.h"
#include "core/schema_inference.h"
#include "expr/builder.h"
#include "optimizer/cardinality.h"
#include "algebra/semiring.h"
#include "optimizer/fold.h"
#include "optimizer/join_order.h"
#include "optimizer/lower_semiring.h"

namespace nexus {

namespace {

using namespace nexus::exprs;  // NOLINT

// Flattens an AND tree into conjuncts.
void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e->kind() == ExprKind::kBinary && e->binary_op() == BinaryOp::kAnd) {
    SplitConjuncts(e->child(0), out);
    SplitConjuncts(e->child(1), out);
    return;
  }
  out->push_back(e);
}

bool RefsSubsetOf(const Expr& e, const Schema& schema) {
  for (const std::string& r : e.ColumnRefs()) {
    if (schema.FindField(r) < 0) return false;
  }
  return true;
}

class Optimizer {
 public:
  Optimizer(const Catalog& catalog, const OptimizerOptions& options,
            OptimizerStats* stats)
      : options_(options), stats_(stats) {
    ctx_.catalog = &catalog;
  }

  Result<PlanPtr> Run(const PlanPtr& plan) {
    PlanPtr p = plan;
    if (options_.fold_constants) {
      NEXUS_ASSIGN_OR_RETURN(p, FoldPass(p));
    }
    if (options_.push_selections) {
      for (int pass = 0; pass < options_.max_passes; ++pass) {
        bool changed = false;
        NEXUS_ASSIGN_OR_RETURN(p, PushdownPass(p, &changed));
        if (!changed) break;
      }
    }
    if (options_.reorder_joins) {
      // After pushdown: filters sit on the join inputs, so the cost model
      // sees post-filter cardinalities when scoring orders.
      NEXUS_ASSIGN_OR_RETURN(
          p, ReorderJoins(p, *ctx_.catalog,
                          stats_ != nullptr ? &stats_->joins_reordered : nullptr));
    }
    if (options_.recognize_intent) {
      NEXUS_ASSIGN_OR_RETURN(p, RecognizePass(p));
    }
    if (options_.lower_semiring && algebra::SemiringLoweringEnabled() &&
        stats_ != nullptr) {
      // After intent recognition, so recovered MatMul/PageRank nodes count.
      // Recognition only: the engines do the actual routing at execution.
      stats_->ops_lowered = CountLowerableOps(*p);
    }
    if (options_.prune_columns) {
      NEXUS_ASSIGN_OR_RETURN(p, Prune(p, std::nullopt));
    }
    return p;
  }

 private:
  Result<SchemaPtr> SchemaOf(const PlanPtr& p) { return InferSchema(*p, &ctx_); }

  void CountFold(const ExprPtr& before, const ExprPtr& after) {
    if (stats_ != nullptr && !before->Equals(*after)) {
      ++stats_->expressions_folded;
    }
  }

  ExprPtr Fold(const ExprPtr& e) {
    ExprPtr f = FoldConstants(e);
    CountFold(e, f);
    return f;
  }

  // --- pass 1: fold every embedded expression --------------------------------
  Result<PlanPtr> FoldPass(const PlanPtr& plan) {
    std::vector<PlanPtr> children;
    children.reserve(plan->children().size());
    for (const PlanPtr& c : plan->children()) {
      NEXUS_ASSIGN_OR_RETURN(PlanPtr nc, FoldPass(c));
      children.push_back(std::move(nc));
    }
    switch (plan->kind()) {
      case OpKind::kSelect:
        return Plan::Select(children[0], Fold(plan->As<SelectOp>().predicate));
      case OpKind::kExtend: {
        std::vector<std::pair<std::string, ExprPtr>> defs;
        for (const auto& [name, e] : plan->As<ExtendOp>().defs) {
          defs.emplace_back(name, Fold(e));
        }
        return Plan::Extend(children[0], std::move(defs));
      }
      case OpKind::kJoin: {
        JoinOp op = plan->As<JoinOp>();
        if (op.residual != nullptr) op.residual = Fold(op.residual);
        return Plan::Join(children[0], children[1], op.type, op.left_keys,
                          op.right_keys, op.residual);
      }
      case OpKind::kAggregate: {
        AggregateOp op = plan->As<AggregateOp>();
        for (AggSpec& a : op.aggs) {
          if (a.input != nullptr) a.input = Fold(a.input);
        }
        return Plan::Aggregate(children[0], op.group_by, op.aggs);
      }
      case OpKind::kIterate: {
        IterateOp op = plan->As<IterateOp>();
        NEXUS_ASSIGN_OR_RETURN(op.body, FoldPass(op.body));
        if (op.measure != nullptr) {
          NEXUS_ASSIGN_OR_RETURN(op.measure, FoldPass(op.measure));
        }
        return Plan::Iterate(children[0], std::move(op));
      }
      default:
        return plan->WithChildren(std::move(children));
    }
  }

  // --- pass 2: selection pushdown --------------------------------------------
  Result<PlanPtr> PushdownPass(const PlanPtr& plan, bool* changed) {
    // Rebuild children first (bottom-up), handling Iterate scopes.
    std::vector<PlanPtr> children;
    children.reserve(plan->children().size());
    for (const PlanPtr& c : plan->children()) {
      NEXUS_ASSIGN_OR_RETURN(PlanPtr nc, PushdownPass(c, changed));
      children.push_back(std::move(nc));
    }
    PlanPtr node = plan->WithChildren(children);
    if (plan->kind() == OpKind::kIterate) {
      IterateOp op = plan->As<IterateOp>();
      NEXUS_ASSIGN_OR_RETURN(SchemaPtr init_schema, SchemaOf(children[0]));
      ctx_.loop_stack.push_back(init_schema);
      auto body = PushdownPass(op.body, changed);
      Result<PlanPtr> measure = PlanPtr(nullptr);
      if (body.ok() && op.measure != nullptr) {
        measure = PushdownPass(op.measure, changed);
      }
      ctx_.loop_stack.pop_back();
      NEXUS_ASSIGN_OR_RETURN(op.body, body);
      if (op.measure != nullptr) {
        NEXUS_ASSIGN_OR_RETURN(op.measure, measure);
      }
      return Plan::Iterate(children[0], std::move(op));
    }
    // Limit pushdown: Limit commutes with row-preserving 1:1 operators
    // (project/extend/rename/rebox/unbox), shrinking their input. Adjacent
    // limits compose.
    if (node->kind() == OpKind::kLimit) {
      const auto& op = node->As<LimitOp>();
      const PlanPtr& input = node->child(0);
      auto moved = [&](PlanPtr result) {
        *changed = true;
        if (stats_ != nullptr) ++stats_->selections_pushed;
        return result;
      };
      switch (input->kind()) {
        case OpKind::kProject:
          return moved(Plan::Project(
              Plan::Limit(input->child(0), op.limit, op.offset),
              input->As<ProjectOp>().columns));
        case OpKind::kExtend:
          return moved(Plan::Extend(
              Plan::Limit(input->child(0), op.limit, op.offset),
              input->As<ExtendOp>().defs));
        case OpKind::kRename:
          return moved(Plan::Rename(
              Plan::Limit(input->child(0), op.limit, op.offset),
              input->As<RenameOp>().mapping));
        case OpKind::kUnbox:
          return moved(
              Plan::Unbox(Plan::Limit(input->child(0), op.limit, op.offset)));
        case OpKind::kRebox: {
          const auto& rb = input->As<ReboxOp>();
          return moved(Plan::Rebox(
              Plan::Limit(input->child(0), op.limit, op.offset), rb.dims,
              rb.chunk_size));
        }
        case OpKind::kLimit: {
          // limit[n1 offset o1] over limit[n2 offset o2]: the outer window
          // applies within the inner one.
          const auto& inner = input->As<LimitOp>();
          int64_t offset = inner.offset + op.offset;
          int64_t remaining = std::max<int64_t>(0, inner.limit - op.offset);
          int64_t limit = std::min(op.limit, remaining);
          return moved(Plan::Limit(input->child(0), limit, offset));
        }
        default:
          return node;
      }
    }
    if (node->kind() != OpKind::kSelect) return node;

    const ExprPtr& pred = node->As<SelectOp>().predicate;
    const PlanPtr& input = node->child(0);
    auto pushed = [&](PlanPtr result) {
      *changed = true;
      if (stats_ != nullptr) ++stats_->selections_pushed;
      return result;
    };
    switch (input->kind()) {
      case OpKind::kSelect: {
        // Merge adjacent selections.
        return pushed(Plan::Select(input->child(0),
                                   And(input->As<SelectOp>().predicate, pred)));
      }
      case OpKind::kProject:
        return pushed(Plan::Project(Plan::Select(input->child(0), pred),
                                    input->As<ProjectOp>().columns));
      case OpKind::kExtend: {
        const auto& defs = input->As<ExtendOp>().defs;
        // Inline definitions into the predicate, then push below. Later defs
        // may reference earlier ones, so substitute to fixpoint and verify
        // every remaining reference resolves against the extend's input.
        ExprPtr inlined = pred;
        for (size_t i = 0; i <= defs.size(); ++i) {
          inlined = inlined->SubstituteColumns(defs);
        }
        NEXUS_ASSIGN_OR_RETURN(SchemaPtr below, SchemaOf(input->child(0)));
        if (!RefsSubsetOf(*inlined, *below)) return node;
        return pushed(Plan::Extend(Plan::Select(input->child(0), inlined), defs));
      }
      case OpKind::kRename: {
        std::vector<std::pair<std::string, std::string>> reverse;
        for (const auto& [from, to] : input->As<RenameOp>().mapping) {
          reverse.emplace_back(to, from);
        }
        return pushed(Plan::Rename(
            Plan::Select(input->child(0), pred->RenameColumns(reverse)),
            input->As<RenameOp>().mapping));
      }
      case OpKind::kSort:
        return pushed(Plan::Sort(Plan::Select(input->child(0), pred),
                                 input->As<SortOp>().keys));
      case OpKind::kDistinct:
        return pushed(Plan::Distinct(Plan::Select(input->child(0), pred)));
      case OpKind::kRebox: {
        const auto& op = input->As<ReboxOp>();
        return pushed(Plan::Rebox(Plan::Select(input->child(0), pred), op.dims,
                                  op.chunk_size));
      }
      case OpKind::kUnbox:
        return pushed(Plan::Unbox(Plan::Select(input->child(0), pred)));
      case OpKind::kSlice:
        return pushed(Plan::Slice(Plan::Select(input->child(0), pred),
                                  input->As<SliceOp>().ranges));
      case OpKind::kUnion:
        return pushed(Plan::Union(Plan::Select(input->child(0), pred),
                                  Plan::Select(input->child(1), pred)));
      case OpKind::kJoin: {
        const auto& op = input->As<JoinOp>();
        NEXUS_ASSIGN_OR_RETURN(SchemaPtr left_schema, SchemaOf(input->child(0)));
        NEXUS_ASSIGN_OR_RETURN(SchemaPtr right_schema, SchemaOf(input->child(1)));
        std::vector<ExprPtr> conjuncts;
        SplitConjuncts(pred, &conjuncts);
        std::vector<ExprPtr> to_left, to_right, keep;
        bool right_pushable = op.type == JoinType::kInner;
        for (const ExprPtr& c : conjuncts) {
          if (RefsSubsetOf(*c, *left_schema)) {
            to_left.push_back(c);
          } else if (right_pushable && RefsSubsetOf(*c, *right_schema)) {
            to_right.push_back(c);
          } else {
            keep.push_back(c);
          }
        }
        if (to_left.empty() && to_right.empty()) return node;
        PlanPtr l = input->child(0);
        PlanPtr r = input->child(1);
        if (!to_left.empty()) l = Plan::Select(l, AndAll(to_left));
        if (!to_right.empty()) r = Plan::Select(r, AndAll(to_right));
        PlanPtr j = Plan::Join(l, r, op.type, op.left_keys, op.right_keys,
                               op.residual);
        if (!keep.empty()) j = Plan::Select(j, AndAll(keep));
        *changed = true;
        if (stats_ != nullptr) {
          stats_->selections_pushed +=
              static_cast<int64_t>(to_left.size() + to_right.size());
        }
        return j;
      }
      default:
        return node;
    }
  }

  // --- pass 3: intent recognition --------------------------------------------

  // Matches Select(sum != 0, Aggregate(sum(p) by [g1, g2],
  //   Extend(p := u * v, Join(left, right, inner, single key)))) where the
  // join inputs are 2-d, single-attribute, dimension-tagged collections and
  // the group keys are the non-contracted dimensions. Such a pipeline *is*
  // matrix multiplication; rewrite it back into the intent node.
  Result<PlanPtr> TryRecognizeMatMul(const PlanPtr& select_node) {
    const ExprPtr& pred = select_node->As<SelectOp>().predicate;
    if (pred->kind() != ExprKind::kBinary || pred->binary_op() != BinaryOp::kNe) {
      return PlanPtr(nullptr);
    }
    const ExprPtr& pl = pred->child(0);
    const ExprPtr& pr = pred->child(1);
    if (pl->kind() != ExprKind::kColumnRef || pr->kind() != ExprKind::kLiteral ||
        !pr->literal().is_numeric() || pr->literal().AsDouble() != 0.0) {
      return PlanPtr(nullptr);
    }
    const std::string& sum_name = pl->column_name();

    const PlanPtr& agg_node = select_node->child(0);
    if (agg_node->kind() != OpKind::kAggregate) return PlanPtr(nullptr);
    const auto& agg = agg_node->As<AggregateOp>();
    if (agg.group_by.size() != 2 || agg.aggs.size() != 1 ||
        agg.aggs[0].func != AggFunc::kSum ||
        agg.aggs[0].output_name != sum_name || agg.aggs[0].input == nullptr ||
        agg.aggs[0].input->kind() != ExprKind::kColumnRef) {
      return PlanPtr(nullptr);
    }
    const std::string& prod_name = agg.aggs[0].input->column_name();

    const PlanPtr& ext_node = agg_node->child(0);
    if (ext_node->kind() != OpKind::kExtend) return PlanPtr(nullptr);
    const auto& defs = ext_node->As<ExtendOp>().defs;
    if (defs.size() != 1 || defs[0].first != prod_name) return PlanPtr(nullptr);
    const ExprPtr& mul = defs[0].second;
    if (mul->kind() != ExprKind::kBinary || mul->binary_op() != BinaryOp::kMul ||
        mul->child(0)->kind() != ExprKind::kColumnRef ||
        mul->child(1)->kind() != ExprKind::kColumnRef) {
      return PlanPtr(nullptr);
    }

    const PlanPtr& join_node = ext_node->child(0);
    if (join_node->kind() != OpKind::kJoin) return PlanPtr(nullptr);
    const auto& join = join_node->As<JoinOp>();
    if (join.type != JoinType::kInner || join.left_keys.size() != 1 ||
        join.residual != nullptr) {
      return PlanPtr(nullptr);
    }

    NEXUS_ASSIGN_OR_RETURN(SchemaPtr ls, SchemaOf(join_node->child(0)));
    NEXUS_ASSIGN_OR_RETURN(SchemaPtr rs, SchemaOf(join_node->child(1)));
    std::vector<int> ld = ls->DimensionIndices(), la = ls->AttributeIndices();
    std::vector<int> rd = rs->DimensionIndices(), ra = rs->AttributeIndices();
    if (ld.size() != 2 || la.size() != 1 || rd.size() != 2 || ra.size() != 1) {
      return PlanPtr(nullptr);
    }
    if (!IsNumeric(ls->field(la[0]).type) || !IsNumeric(rs->field(ra[0]).type)) {
      return PlanPtr(nullptr);
    }
    const std::string g1 = ls->field(ld[0]).name;       // output row dim
    const std::string contract = ls->field(ld[1]).name;  // contracted dim
    const std::string k2 = rs->field(rd[0]).name;
    const std::string g2 = rs->field(rd[1]).name;       // output col dim
    const std::string u = ls->field(la[0]).name;
    const std::string v = rs->field(ra[0]).name;
    if (join.left_keys[0] != contract || join.right_keys[0] != k2) {
      return PlanPtr(nullptr);
    }
    if (agg.group_by[0] != g1 || agg.group_by[1] != g2) return PlanPtr(nullptr);
    const std::string& m0 = mul->child(0)->column_name();
    const std::string& m1 = mul->child(1)->column_name();
    if (!((m0 == u && m1 == v) || (m0 == v && m1 == u))) return PlanPtr(nullptr);

    if (stats_ != nullptr) ++stats_->intents_recognized;
    // MatMul tags both output dims; the aggregate only kept the left tag, so
    // re-tag to the original shape.
    PlanPtr mm = Plan::MatMul(join_node->child(0), join_node->child(1), sum_name);
    return Plan::Rebox(mm, {g1}, 64);
  }

  Result<PlanPtr> RecognizePass(const PlanPtr& plan) {
    std::vector<PlanPtr> children;
    children.reserve(plan->children().size());
    for (const PlanPtr& c : plan->children()) {
      NEXUS_ASSIGN_OR_RETURN(PlanPtr nc, RecognizePass(c));
      children.push_back(std::move(nc));
    }
    PlanPtr node = plan->WithChildren(std::move(children));
    if (plan->kind() == OpKind::kIterate) {
      IterateOp op = plan->As<IterateOp>();
      NEXUS_ASSIGN_OR_RETURN(SchemaPtr init_schema, SchemaOf(node->child(0)));
      ctx_.loop_stack.push_back(init_schema);
      auto body = RecognizePass(op.body);
      Result<PlanPtr> measure = PlanPtr(nullptr);
      if (body.ok() && op.measure != nullptr) measure = RecognizePass(op.measure);
      ctx_.loop_stack.pop_back();
      NEXUS_ASSIGN_OR_RETURN(op.body, body);
      if (op.measure != nullptr) {
        NEXUS_ASSIGN_OR_RETURN(op.measure, measure);
      }
      return Plan::Iterate(node->child(0), std::move(op));
    }
    if (node->kind() == OpKind::kSelect) {
      NEXUS_ASSIGN_OR_RETURN(PlanPtr recognized, TryRecognizeMatMul(node));
      if (recognized != nullptr) return recognized;
    }
    return node;
  }

  // --- pass 4: column pruning -------------------------------------------------

  using Needed = std::optional<std::vector<std::string>>;  // nullopt == all

  static Needed Union2(const Needed& a, const std::vector<std::string>& extra) {
    if (!a.has_value()) return std::nullopt;
    std::vector<std::string> out = *a;
    for (const std::string& e : extra) {
      if (std::find(out.begin(), out.end(), e) == out.end()) out.push_back(e);
    }
    return out;
  }

  Result<PlanPtr> Prune(const PlanPtr& plan, const Needed& needed) {
    switch (plan->kind()) {
      case OpKind::kScan:
      case OpKind::kValues:
      case OpKind::kLoopVar: {
        if (!needed.has_value()) return plan;
        NEXUS_ASSIGN_OR_RETURN(SchemaPtr schema, SchemaOf(plan));
        // Keep schema order; only narrow when strictly fewer columns.
        std::vector<std::string> cols;
        for (const Field& f : schema->fields()) {
          if (std::find(needed->begin(), needed->end(), f.name) != needed->end()) {
            cols.push_back(f.name);
          }
        }
        if (static_cast<int>(cols.size()) >= schema->num_fields() || cols.empty()) {
          return plan;
        }
        if (stats_ != nullptr) ++stats_->projects_inserted;
        return Plan::Project(plan, std::move(cols));
      }
      case OpKind::kSelect: {
        Needed child = Union2(needed, plan->As<SelectOp>().predicate->ColumnRefs());
        NEXUS_ASSIGN_OR_RETURN(PlanPtr c, Prune(plan->child(0), child));
        return Plan::Select(c, plan->As<SelectOp>().predicate);
      }
      case OpKind::kProject: {
        Needed child = plan->As<ProjectOp>().columns;
        NEXUS_ASSIGN_OR_RETURN(PlanPtr c, Prune(plan->child(0), child));
        return Plan::Project(c, plan->As<ProjectOp>().columns);
      }
      case OpKind::kExtend: {
        Needed child = needed;
        if (child.has_value()) {
          // Drop def names, add every def's references (conservative).
          std::vector<std::string> base;
          for (const std::string& n : *child) {
            bool is_def = false;
            for (const auto& [name, e] : plan->As<ExtendOp>().defs) {
              if (name == n) is_def = true;
            }
            if (!is_def) base.push_back(n);
          }
          child = base;
          for (const auto& [name, e] : plan->As<ExtendOp>().defs) {
            child = Union2(child, e->ColumnRefs());
          }
        }
        NEXUS_ASSIGN_OR_RETURN(PlanPtr c, Prune(plan->child(0), child));
        return Plan::Extend(c, plan->As<ExtendOp>().defs);
      }
      case OpKind::kJoin: {
        const auto& op = plan->As<JoinOp>();
        NEXUS_ASSIGN_OR_RETURN(SchemaPtr ls, SchemaOf(plan->child(0)));
        NEXUS_ASSIGN_OR_RETURN(SchemaPtr rs, SchemaOf(plan->child(1)));
        Needed ln = needed, rn = needed;
        if (needed.has_value()) {
          std::vector<std::string> l, r;
          for (const std::string& n : *needed) {
            if (ls->FindField(n) >= 0) l.push_back(n);
            if (rs->FindField(n) >= 0) r.push_back(n);
          }
          ln = l;
          rn = r;
          ln = Union2(ln, op.left_keys);
          rn = Union2(rn, op.right_keys);
          if (op.residual != nullptr) {
            for (const std::string& ref : op.residual->ColumnRefs()) {
              if (ls->FindField(ref) >= 0) ln = Union2(ln, {ref});
              if (rs->FindField(ref) >= 0) rn = Union2(rn, {ref});
            }
          }
          // Semi/anti joins expose the full left schema.
          if (op.type == JoinType::kSemi || op.type == JoinType::kAnti) {
            ln = std::nullopt;
          }
        }
        NEXUS_ASSIGN_OR_RETURN(PlanPtr l, Prune(plan->child(0), ln));
        NEXUS_ASSIGN_OR_RETURN(PlanPtr r, Prune(plan->child(1), rn));
        return Plan::Join(l, r, op.type, op.left_keys, op.right_keys, op.residual);
      }
      case OpKind::kAggregate: {
        const auto& op = plan->As<AggregateOp>();
        Needed child = op.group_by;
        for (const AggSpec& a : op.aggs) {
          if (a.input != nullptr) child = Union2(child, a.input->ColumnRefs());
        }
        NEXUS_ASSIGN_OR_RETURN(PlanPtr c, Prune(plan->child(0), child));
        return Plan::Aggregate(c, op.group_by, op.aggs);
      }
      case OpKind::kSort: {
        Needed child = needed;
        for (const SortKey& k : plan->As<SortOp>().keys) {
          child = Union2(child, {k.column});
        }
        NEXUS_ASSIGN_OR_RETURN(PlanPtr c, Prune(plan->child(0), child));
        return Plan::Sort(c, plan->As<SortOp>().keys);
      }
      case OpKind::kLimit: {
        NEXUS_ASSIGN_OR_RETURN(PlanPtr c, Prune(plan->child(0), needed));
        return Plan::Limit(c, plan->As<LimitOp>().limit, plan->As<LimitOp>().offset);
      }
      case OpKind::kRename: {
        Needed child = needed;
        if (child.has_value()) {
          std::vector<std::string> mapped;
          for (std::string n : *child) {
            for (const auto& [from, to] : plan->As<RenameOp>().mapping) {
              if (to == n) n = from;
            }
            mapped.push_back(n);
          }
          child = mapped;
        }
        NEXUS_ASSIGN_OR_RETURN(PlanPtr c, Prune(plan->child(0), child));
        return Plan::Rename(c, plan->As<RenameOp>().mapping);
      }
      case OpKind::kIterate: {
        const auto& op = plan->As<IterateOp>();
        NEXUS_ASSIGN_OR_RETURN(PlanPtr init, Prune(plan->child(0), std::nullopt));
        NEXUS_ASSIGN_OR_RETURN(SchemaPtr init_schema, SchemaOf(init));
        ctx_.loop_stack.push_back(init_schema);
        auto body = Prune(op.body, std::nullopt);
        Result<PlanPtr> measure = PlanPtr(nullptr);
        if (body.ok() && op.measure != nullptr) {
          measure = Prune(op.measure, std::nullopt);
        }
        ctx_.loop_stack.pop_back();
        IterateOp np = op;
        NEXUS_ASSIGN_OR_RETURN(np.body, body);
        if (op.measure != nullptr) {
          NEXUS_ASSIGN_OR_RETURN(np.measure, measure);
        }
        return Plan::Iterate(init, std::move(np));
      }
      default: {
        // Dimension-aware and intent operators need their full input.
        std::vector<PlanPtr> children;
        children.reserve(plan->children().size());
        for (const PlanPtr& c : plan->children()) {
          NEXUS_ASSIGN_OR_RETURN(PlanPtr nc, Prune(c, std::nullopt));
          children.push_back(std::move(nc));
        }
        return plan->WithChildren(std::move(children));
      }
    }
  }

  OptimizerOptions options_;
  OptimizerStats* stats_;
  InferContext ctx_;
};

}  // namespace

Result<PlanPtr> Optimize(const PlanPtr& plan, const Catalog& catalog,
                         const OptimizerOptions& options, OptimizerStats* stats) {
  Optimizer opt(catalog, options, stats);
  NEXUS_ASSIGN_OR_RETURN(PlanPtr p, opt.Run(plan));
  if (stats != nullptr) {
    auto est = EstimateCardinality(*p, catalog);
    stats->estimated_rows_root =
        est.ok() ? static_cast<int64_t>(std::llround(est.ValueOrDie())) : -1;
  }
  return p;
}

}  // namespace nexus
