// Table and column statistics — the raw material of cost-based planning.
//
// Stats are computed when a collection is registered in an InMemoryCatalog
// (one scan at Put time, NDV from a bounded sample) and are refreshable on
// demand. The cardinality estimator (optimizer/cardinality.h) consumes them
// to predict operator output sizes; the coordinator consumes the estimates
// to place fragments where the fewest estimated bytes cross the wire.
#ifndef NEXUS_OPTIMIZER_STATS_H_
#define NEXUS_OPTIMIZER_STATS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "types/dataset.h"
#include "types/table.h"

namespace nexus {

/// K-minimum-values distinct-count sketch: keep the k smallest distinct
/// hashes seen; with fewer than k values the count is exact, past that the
/// kth-smallest hash estimates the density of the hash space. Mergeable:
/// the union of two sketches' kept sets, trimmed back to k, is exactly the
/// sketch of the concatenated streams — which is what makes O(|Δ|)
/// append-time maintenance possible (sketch the delta, merge into the
/// running sketch).
class KmvSketch {
 public:
  static constexpr size_t kK = 256;

  void Add(uint64_t hash);
  /// Folds `other` in. Equivalent to having Add-ed every hash `other` saw.
  void Merge(const KmvSketch& other);
  double Estimate() const;
  /// Number of hashes currently kept (< kK means the estimate is exact).
  size_t kept() const { return keep_.size(); }

 private:
  std::set<uint64_t> keep_;  // ordered: the k smallest distinct hashes
};

/// Per-column summary: enough to estimate range/equality selectivity and
/// the column's width on the NXB1 wire.
struct ColumnStats {
  /// Estimated number of distinct non-null values (KMV sketch; exact for
  /// small columns).
  double distinct = 0.0;
  int64_t null_count = 0;
  /// Numeric min/max (ints widened to double). Meaningless unless
  /// has_minmax; string columns never set it.
  bool has_minmax = false;
  double min = 0.0;
  double max = 0.0;
  /// Estimated bytes per value on the NXB1 wire: the fixed width for
  /// numerics/bools, average length + 4 offset bytes for strings.
  double avg_width = 8.0;
};

/// Per-table summary keyed by column name.
struct TableStats {
  int64_t row_count = 0;
  /// Rows the NDV sketch actually saw (== row_count unless sampled).
  int64_t sampled_rows = 0;
  std::map<std::string, ColumnStats> columns;

  /// Estimated NXB1 bytes for one full row (sum of column widths, plus the
  /// per-column validity overhead). Columns without stats count 8 bytes.
  double RowWidth() const;

  std::string ToString() const;
};

/// Rows the NDV sketch scans at most; min/max and null counts always scan
/// the full column (they are branch-light single passes).
inline constexpr int64_t kStatsSampleLimit = 65536;

/// One-pass statistics over a dataset. Tables get full per-column stats;
/// array datasets get row_count only (their dimension geometry already
/// lives in the chunk index, and converting to a table just to sketch it
/// would dwarf the registration itself).
TableStats ComputeStats(const Dataset& data,
                        int64_t sample_limit = kStatsSampleLimit);

/// Estimated NXB1 wire bytes per value for a column of `type` whose average
/// in-memory payload is `avg_value_bytes` (only used for strings: their
/// frame stores (n+1) u32 offsets plus the byte blob).
double EstimatedWireWidth(DataType type, double avg_value_bytes);

/// Incremental table statistics: one KMV sketch plus running
/// min/max/null-count/width per column, foldable a batch at a time. Feeding
/// the seed table once and then each appended delta keeps Snapshot() current
/// at O(|Δ|) per append — the streaming counterpart of ComputeStats, which
/// rescans the whole table. Unlike the Put-time path it never samples: every
/// row passes through the sketch, so estimates stay stable as tables grow.
class TableStatsAccumulator {
 public:
  explicit TableStatsAccumulator(SchemaPtr schema);

  /// Folds one batch of rows in (schema must match the constructor's).
  void AddTable(const Table& batch);

  /// Current statistics for everything folded so far.
  TableStats Snapshot() const;

  int64_t rows() const { return rows_; }

 private:
  struct ColumnAcc {
    KmvSketch sketch;
    int64_t null_count = 0;
    bool has_minmax = false;
    double min = 0.0;
    double max = 0.0;
    int64_t string_bytes = 0;  // total payload of string columns
  };
  SchemaPtr schema_;
  std::vector<ColumnAcc> cols_;
  int64_t rows_ = 0;
};

}  // namespace nexus

#endif  // NEXUS_OPTIMIZER_STATS_H_
