// Table and column statistics — the raw material of cost-based planning.
//
// Stats are computed when a collection is registered in an InMemoryCatalog
// (one scan at Put time, NDV from a bounded sample) and are refreshable on
// demand. The cardinality estimator (optimizer/cardinality.h) consumes them
// to predict operator output sizes; the coordinator consumes the estimates
// to place fragments where the fewest estimated bytes cross the wire.
#ifndef NEXUS_OPTIMIZER_STATS_H_
#define NEXUS_OPTIMIZER_STATS_H_

#include <cstdint>
#include <map>
#include <string>

#include "types/dataset.h"

namespace nexus {

/// Per-column summary: enough to estimate range/equality selectivity and
/// the column's width on the NXB1 wire.
struct ColumnStats {
  /// Estimated number of distinct non-null values (KMV sketch; exact for
  /// small columns).
  double distinct = 0.0;
  int64_t null_count = 0;
  /// Numeric min/max (ints widened to double). Meaningless unless
  /// has_minmax; string columns never set it.
  bool has_minmax = false;
  double min = 0.0;
  double max = 0.0;
  /// Estimated bytes per value on the NXB1 wire: the fixed width for
  /// numerics/bools, average length + 4 offset bytes for strings.
  double avg_width = 8.0;
};

/// Per-table summary keyed by column name.
struct TableStats {
  int64_t row_count = 0;
  /// Rows the NDV sketch actually saw (== row_count unless sampled).
  int64_t sampled_rows = 0;
  std::map<std::string, ColumnStats> columns;

  /// Estimated NXB1 bytes for one full row (sum of column widths, plus the
  /// per-column validity overhead). Columns without stats count 8 bytes.
  double RowWidth() const;

  std::string ToString() const;
};

/// Rows the NDV sketch scans at most; min/max and null counts always scan
/// the full column (they are branch-light single passes).
inline constexpr int64_t kStatsSampleLimit = 65536;

/// One-pass statistics over a dataset. Tables get full per-column stats;
/// array datasets get row_count only (their dimension geometry already
/// lives in the chunk index, and converting to a table just to sketch it
/// would dwarf the registration itself).
TableStats ComputeStats(const Dataset& data,
                        int64_t sample_limit = kStatsSampleLimit);

/// Estimated NXB1 wire bytes per value for a column of `type` whose average
/// in-memory payload is `avg_value_bytes` (only used for strings: their
/// frame stores (n+1) u32 offsets plus the byte blob).
double EstimatedWireWidth(DataType type, double avg_value_bytes);

}  // namespace nexus

#endif  // NEXUS_OPTIMIZER_STATS_H_
