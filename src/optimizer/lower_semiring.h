// Semi-ring lowering pass: recognizes the plan operators whose execution
// can be routed to the one generic kernel implementation in src/algebra —
// SUM/MIN/MAX/COUNT aggregates (Union⊕ folds), sparse matrix multiply
// (Join⊕ over plus_times), and PageRank steps (SpMV over plus_times with a
// Union-normalize) — and counts them into OptimizerStats::ops_lowered.
//
// Like the fusion pass, this header only RECOGNIZES; the lowering itself
// happens engine-side (relational provider aggregates, sparse SpMV/SpGEMM,
// graph BFS/PageRank) where the runtime inputs are in hand, gated on the
// same algebra::SemiringLoweringEnabled() switch so the optimizer's count
// and the engines' routing always agree. Lowered execution is byte-identical
// to the native engine paths (algebra/kernels.h documents why), so the pass
// never changes results — it widens *placement*: any engine can claim a
// lowered op, which is what gives the cost-based planner more valid plans.
#ifndef NEXUS_OPTIMIZER_LOWER_SEMIRING_H_
#define NEXUS_OPTIMIZER_LOWER_SEMIRING_H_

#include "core/plan.h"

namespace nexus {

/// True when the operator at `node` is semi-ring lowerable: a kAggregate
/// whose aggregates are all monoid folds, a kMatMul, or a kPageRank.
bool SemiringLowerable(const Plan& node);

/// Counts lowerable operators in the plan tree (including Iterate bodies).
int64_t CountLowerableOps(const Plan& plan);

}  // namespace nexus

#endif  // NEXUS_OPTIMIZER_LOWER_SEMIRING_H_
