// BDL — a small declarative surface language over the Big Data Algebra.
//
// The paper notes that "client languages are free to provide syntactic sugar
// to provide a more declarative specification of queries"; BDL is that sugar.
// A query is a pipeline of stages, one per line (or separated by '|'):
//
//   from orders
//   where amount > 50 and region == "a"
//   extend taxed := amount * 1.1
//   group by sensor aggregate sum(taxed) as total, count(*) as n
//   sort by total desc
//   limit 10
//
// Dimension-aware and intent stages:
//   rebox i, j chunk 32        unbox
//   slice i 0 10, j -5 5       shift i 4
//   regrid i/4, j/4 using avg  window i 1, j 1 using max
//   transpose j, i             matmul B as prod
//   elemwise * B               pagerank src dst damping 0.85 iters 50 eps 1e-9
//
// Everything lowers to the same algebra the fluent API produces; the parser
// adds no semantics of its own. Control iteration (Iterate) has no surface
// syntax yet — build loops with the fluent API's Query::IterateUntil.
#ifndef NEXUS_FRONTEND_BDL_H_
#define NEXUS_FRONTEND_BDL_H_

#include <string>

#include "core/plan.h"

namespace nexus {

/// Parses a BDL pipeline into an algebra plan.
Result<PlanPtr> ParseBdl(const std::string& text);

/// Parses a standalone BDL scalar expression (exposed for tests).
Result<ExprPtr> ParseBdlExpr(const std::string& text);

}  // namespace nexus

#endif  // NEXUS_FRONTEND_BDL_H_
