#include "frontend/bdl.h"

#include <cctype>
#include <cstdlib>

#include "common/str_util.h"
#include "expr/builder.h"

namespace nexus {

namespace {

using namespace nexus::exprs;  // NOLINT

// ---------------------------------------------------------------------------
// Lexer.
// ---------------------------------------------------------------------------

enum class TokKind { kIdent, kInt, kFloat, kString, kPunct, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // ident / punct / string body
  int64_t ival = 0;   // kInt
  double fval = 0.0;  // kFloat
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipSpace();
      if (pos_ >= input_.size()) break;
      char c = input_[pos_];
      if (c == '#') {  // comment to end of line
        while (pos_ < input_.size() && input_[pos_] != '\n') ++pos_;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos_;
        while (pos_ < input_.size() &&
               (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
                input_[pos_] == '_')) {
          ++pos_;
        }
        out.push_back(Token{TokKind::kIdent, input_.substr(start, pos_ - start), 0, 0});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && pos_ + 1 < input_.size() &&
           std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
        NEXUS_ASSIGN_OR_RETURN(Token t, LexNumber());
        out.push_back(std::move(t));
        continue;
      }
      if (c == '"') {
        NEXUS_ASSIGN_OR_RETURN(Token t, LexString());
        out.push_back(std::move(t));
        continue;
      }
      NEXUS_ASSIGN_OR_RETURN(Token t, LexPunct());
      out.push_back(std::move(t));
    }
    out.push_back(Token{});
    return out;
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  Result<Token> LexNumber() {
    size_t start = pos_;
    bool is_float = false;
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E') {
        is_float = true;
        ++pos_;
        if ((c == 'e' || c == 'E') && pos_ < input_.size() &&
            (input_[pos_] == '+' || input_[pos_] == '-')) {
          ++pos_;
        }
      } else {
        break;
      }
    }
    std::string text = input_.substr(start, pos_ - start);
    Token t;
    char* end = nullptr;
    if (is_float) {
      t.kind = TokKind::kFloat;
      t.fval = std::strtod(text.c_str(), &end);
    } else {
      t.kind = TokKind::kInt;
      t.ival = std::strtoll(text.c_str(), &end, 10);
    }
    if (end == nullptr || *end != '\0') {
      return Status::InvalidArgument(StrCat("bad number literal: ", text));
    }
    return t;
  }

  Result<Token> LexString() {
    ++pos_;  // opening quote
    std::string body;
    while (pos_ < input_.size()) {
      char c = input_[pos_++];
      if (c == '"') {
        return Token{TokKind::kString, std::move(body), 0, 0};
      }
      if (c == '\\' && pos_ < input_.size()) {
        char e = input_[pos_++];
        body.push_back(e == 'n' ? '\n' : (e == 't' ? '\t' : e));
        continue;
      }
      body.push_back(c);
    }
    return Status::InvalidArgument("unterminated string literal");
  }

  Result<Token> LexPunct() {
    static const char* kTwoChar[] = {":=", "->", "==", "!=", "<=", ">="};
    for (const char* p : kTwoChar) {
      if (input_.compare(pos_, 2, p) == 0) {
        pos_ += 2;
        return Token{TokKind::kPunct, p, 0, 0};
      }
    }
    char c = input_[pos_];
    static const std::string kSingles = "()[],<>=+-*/%|";
    if (kSingles.find(c) == std::string::npos) {
      return Status::InvalidArgument(StrCat("unexpected character '", c, "'"));
    }
    ++pos_;
    return Token{TokKind::kPunct, std::string(1, c), 0, 0};
  }

  const std::string& input_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<PlanPtr> ParseQuery() {
    PlanPtr plan;
    while (!AtEnd()) {
      if (PeekPunct("|")) Advance();
      if (AtEnd()) break;
      NEXUS_ASSIGN_OR_RETURN(plan, ParseStage(plan));
    }
    if (plan == nullptr) return Status::InvalidArgument("empty BDL query");
    return plan;
  }

  Result<ExprPtr> ParseStandaloneExpr() {
    NEXUS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (!AtEnd()) return Status::InvalidArgument("trailing input after expression");
    return e;
  }

 private:
  // --- token helpers ---
  const Token& Peek() const { return tokens_[pos_]; }
  bool AtEnd() const { return Peek().kind == TokKind::kEnd; }
  Token Advance() { return tokens_[pos_++]; }
  bool PeekIdent(const char* kw) const {
    return Peek().kind == TokKind::kIdent && ToLower(Peek().text) == kw;
  }
  bool PeekPunct(const char* p) const {
    return Peek().kind == TokKind::kPunct && Peek().text == p;
  }
  bool EatIdent(const char* kw) {
    if (!PeekIdent(kw)) return false;
    Advance();
    return true;
  }
  bool EatPunct(const char* p) {
    if (!PeekPunct(p)) return false;
    Advance();
    return true;
  }
  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().kind != TokKind::kIdent) {
      return Status::InvalidArgument(StrCat("expected ", what));
    }
    return Advance().text;
  }
  Result<int64_t> ExpectInt(const char* what) {
    if (Peek().kind != TokKind::kInt) {
      return Status::InvalidArgument(StrCat("expected integer ", what));
    }
    return Advance().ival;
  }
  Result<double> ExpectNumber(const char* what) {
    bool neg = EatPunct("-");
    if (Peek().kind == TokKind::kInt) {
      return (neg ? -1.0 : 1.0) * static_cast<double>(Advance().ival);
    }
    if (Peek().kind == TokKind::kFloat) {
      return (neg ? -1.0 : 1.0) * Advance().fval;
    }
    return Status::InvalidArgument(StrCat("expected number ", what));
  }
  Status ExpectPunct(const char* p) {
    if (!EatPunct(p)) {
      return Status::InvalidArgument(StrCat("expected '", p, "'"));
    }
    return Status::OK();
  }

  // --- expressions (precedence climbing) ---
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    NEXUS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (PeekIdent("or")) {
      Advance();
      NEXUS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    NEXUS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (PeekIdent("and")) {
      Advance();
      NEXUS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (PeekIdent("not")) {
      Advance();
      NEXUS_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
      return Not(std::move(e));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    NEXUS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAddSub());
    static const std::pair<const char*, BinaryOp> kCmp[] = {
        {"==", BinaryOp::kEq}, {"!=", BinaryOp::kNe}, {"<=", BinaryOp::kLe},
        {">=", BinaryOp::kGe}, {"<", BinaryOp::kLt},  {">", BinaryOp::kGt},
    };
    for (const auto& [sym, op] : kCmp) {
      if (PeekPunct(sym)) {
        Advance();
        NEXUS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAddSub());
        return Expr::Binary(op, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseAddSub() {
    NEXUS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMulDiv());
    while (PeekPunct("+") || PeekPunct("-")) {
      BinaryOp op = Advance().text == "+" ? BinaryOp::kAdd : BinaryOp::kSub;
      NEXUS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMulDiv());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMulDiv() {
    NEXUS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (PeekPunct("*") || PeekPunct("/") || PeekPunct("%")) {
      std::string sym = Advance().text;
      BinaryOp op = sym == "*" ? BinaryOp::kMul
                               : (sym == "/" ? BinaryOp::kDiv : BinaryOp::kMod);
      NEXUS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (EatPunct("-")) {
      NEXUS_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      return Neg(std::move(e));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokKind::kInt:
        return Lit(Advance().ival);
      case TokKind::kFloat:
        return Lit(Advance().fval);
      case TokKind::kString:
        return Lit(Advance().text);
      case TokKind::kIdent: {
        std::string name = Advance().text;
        std::string lower = ToLower(name);
        if (lower == "true") return Lit(true);
        if (lower == "false") return Lit(false);
        if (lower == "null") return NullLit();
        if (EatPunct("(")) {
          std::vector<ExprPtr> args;
          if (!PeekPunct(")")) {
            while (true) {
              NEXUS_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
              args.push_back(std::move(a));
              if (!EatPunct(",")) break;
            }
          }
          NEXUS_RETURN_NOT_OK(ExpectPunct(")"));
          if (lower == "cast") {
            return Status::InvalidArgument("use 'cast(expr as type)' form");
          }
          return Func(lower, std::move(args));
        }
        return Col(std::move(name));
      }
      case TokKind::kPunct:
        if (t.text == "(") {
          Advance();
          NEXUS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          NEXUS_RETURN_NOT_OK(ExpectPunct(")"));
          return e;
        }
        if (t.text == "*") {
          // Bare '*' only valid inside count(*) — handled by the agg parser.
          return Status::InvalidArgument("unexpected '*' in expression");
        }
        break;
      case TokKind::kEnd:
        break;
    }
    return Status::InvalidArgument(StrCat("unexpected token in expression"));
  }

  // --- helpers for stage lists ---
  Result<std::vector<std::string>> ParseIdentList() {
    std::vector<std::string> out;
    while (true) {
      NEXUS_ASSIGN_OR_RETURN(std::string id, ExpectIdent("identifier"));
      out.push_back(std::move(id));
      if (!EatPunct(",")) break;
    }
    return out;
  }

  Result<std::vector<AggSpec>> ParseAggs() {
    std::vector<AggSpec> out;
    while (true) {
      NEXUS_ASSIGN_OR_RETURN(std::string fn, ExpectIdent("aggregate function"));
      NEXUS_ASSIGN_OR_RETURN(AggFunc func, AggFuncFromName(ToLower(fn)));
      NEXUS_RETURN_NOT_OK(ExpectPunct("("));
      ExprPtr input;
      if (EatPunct("*")) {
        if (func != AggFunc::kCount) {
          return Status::InvalidArgument("only count may take '*'");
        }
        input = nullptr;
      } else {
        NEXUS_ASSIGN_OR_RETURN(input, ParseExpr());
      }
      NEXUS_RETURN_NOT_OK(ExpectPunct(")"));
      if (!EatIdent("as")) {
        return Status::InvalidArgument("aggregate requires 'as <name>'");
      }
      NEXUS_ASSIGN_OR_RETURN(std::string name, ExpectIdent("aggregate name"));
      out.push_back(AggSpec{func, std::move(input), std::move(name)});
      if (!EatPunct(",")) break;
    }
    return out;
  }

  // --- stages ---
  Result<PlanPtr> ParseStage(PlanPtr plan) {
    auto need_input = [&]() -> Status {
      if (plan == nullptr) {
        return Status::InvalidArgument("pipeline must start with 'from <table>'");
      }
      return Status::OK();
    };
    if (EatIdent("from")) {
      if (plan != nullptr) {
        return Status::InvalidArgument("'from' must be the first stage");
      }
      NEXUS_ASSIGN_OR_RETURN(std::string table, ExpectIdent("table name"));
      return Plan::Scan(std::move(table));
    }
    if (EatIdent("where")) {
      NEXUS_RETURN_NOT_OK(need_input());
      NEXUS_ASSIGN_OR_RETURN(ExprPtr pred, ParseExpr());
      return Plan::Select(plan, std::move(pred));
    }
    if (EatIdent("select")) {
      NEXUS_RETURN_NOT_OK(need_input());
      NEXUS_ASSIGN_OR_RETURN(std::vector<std::string> cols, ParseIdentList());
      return Plan::Project(plan, std::move(cols));
    }
    if (EatIdent("extend")) {
      NEXUS_RETURN_NOT_OK(need_input());
      std::vector<std::pair<std::string, ExprPtr>> defs;
      while (true) {
        NEXUS_ASSIGN_OR_RETURN(std::string name, ExpectIdent("column name"));
        NEXUS_RETURN_NOT_OK(ExpectPunct(":="));
        NEXUS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        defs.emplace_back(std::move(name), std::move(e));
        if (!EatPunct(",")) break;
      }
      return Plan::Extend(plan, std::move(defs));
    }
    // join variants: "join", "left join", "semi join", "anti join".
    JoinType jt = JoinType::kInner;
    bool is_join = false;
    if (EatIdent("join")) {
      is_join = true;
    } else if (PeekIdent("left") || PeekIdent("semi") || PeekIdent("anti")) {
      std::string kw = ToLower(Peek().text);
      size_t save = pos_;
      Advance();
      if (EatIdent("join")) {
        is_join = true;
        jt = kw == "left" ? JoinType::kLeft
                          : (kw == "semi" ? JoinType::kSemi : JoinType::kAnti);
      } else {
        pos_ = save;
      }
    }
    if (is_join) {
      NEXUS_RETURN_NOT_OK(need_input());
      NEXUS_ASSIGN_OR_RETURN(std::string table, ExpectIdent("join table"));
      if (!EatIdent("on")) {
        return Status::InvalidArgument("join requires 'on a = b'");
      }
      std::vector<std::string> lk, rk;
      while (true) {
        NEXUS_ASSIGN_OR_RETURN(std::string l, ExpectIdent("left key"));
        NEXUS_RETURN_NOT_OK(ExpectPunct("="));
        NEXUS_ASSIGN_OR_RETURN(std::string r, ExpectIdent("right key"));
        lk.push_back(std::move(l));
        rk.push_back(std::move(r));
        if (!EatPunct(",")) break;
      }
      ExprPtr residual;
      if (EatIdent("if")) {
        NEXUS_ASSIGN_OR_RETURN(residual, ParseExpr());
      }
      return Plan::Join(plan, Plan::Scan(std::move(table)), jt, std::move(lk),
                        std::move(rk), std::move(residual));
    }
    if (EatIdent("group")) {
      NEXUS_RETURN_NOT_OK(need_input());
      if (!EatIdent("by")) return Status::InvalidArgument("expected 'group by'");
      NEXUS_ASSIGN_OR_RETURN(std::vector<std::string> keys, ParseIdentList());
      if (!EatIdent("aggregate")) {
        return Status::InvalidArgument("group by requires 'aggregate ...'");
      }
      NEXUS_ASSIGN_OR_RETURN(std::vector<AggSpec> aggs, ParseAggs());
      return Plan::Aggregate(plan, std::move(keys), std::move(aggs));
    }
    if (EatIdent("aggregate")) {
      NEXUS_RETURN_NOT_OK(need_input());
      NEXUS_ASSIGN_OR_RETURN(std::vector<AggSpec> aggs, ParseAggs());
      return Plan::Aggregate(plan, {}, std::move(aggs));
    }
    if (EatIdent("sort")) {
      NEXUS_RETURN_NOT_OK(need_input());
      if (!EatIdent("by")) return Status::InvalidArgument("expected 'sort by'");
      std::vector<SortKey> keys;
      while (true) {
        NEXUS_ASSIGN_OR_RETURN(std::string col, ExpectIdent("sort column"));
        bool asc = true;
        if (EatIdent("desc")) {
          asc = false;
        } else {
          EatIdent("asc");
        }
        keys.push_back(SortKey{std::move(col), asc});
        if (!EatPunct(",")) break;
      }
      return Plan::Sort(plan, std::move(keys));
    }
    if (EatIdent("limit")) {
      NEXUS_RETURN_NOT_OK(need_input());
      NEXUS_ASSIGN_OR_RETURN(int64_t n, ExpectInt("limit"));
      int64_t offset = 0;
      if (EatIdent("offset")) {
        NEXUS_ASSIGN_OR_RETURN(offset, ExpectInt("offset"));
      }
      return Plan::Limit(plan, n, offset);
    }
    if (EatIdent("distinct")) {
      NEXUS_RETURN_NOT_OK(need_input());
      return Plan::Distinct(plan);
    }
    if (EatIdent("union")) {
      NEXUS_RETURN_NOT_OK(need_input());
      NEXUS_ASSIGN_OR_RETURN(std::string table, ExpectIdent("union table"));
      return Plan::Union(plan, Plan::Scan(std::move(table)));
    }
    if (EatIdent("rename")) {
      NEXUS_RETURN_NOT_OK(need_input());
      std::vector<std::pair<std::string, std::string>> mapping;
      while (true) {
        NEXUS_ASSIGN_OR_RETURN(std::string from, ExpectIdent("old name"));
        NEXUS_RETURN_NOT_OK(ExpectPunct("->"));
        NEXUS_ASSIGN_OR_RETURN(std::string to, ExpectIdent("new name"));
        mapping.emplace_back(std::move(from), std::move(to));
        if (!EatPunct(",")) break;
      }
      return Plan::Rename(plan, std::move(mapping));
    }
    if (EatIdent("rebox")) {
      NEXUS_RETURN_NOT_OK(need_input());
      std::vector<std::string> dims;
      while (true) {
        NEXUS_ASSIGN_OR_RETURN(std::string d, ExpectIdent("dimension"));
        dims.push_back(std::move(d));
        if (!EatPunct(",")) break;
      }
      int64_t chunk = 64;
      if (EatIdent("chunk")) {
        NEXUS_ASSIGN_OR_RETURN(chunk, ExpectInt("chunk size"));
      }
      return Plan::Rebox(plan, std::move(dims), chunk);
    }
    if (EatIdent("unbox")) {
      NEXUS_RETURN_NOT_OK(need_input());
      return Plan::Unbox(plan);
    }
    if (EatIdent("slice")) {
      NEXUS_RETURN_NOT_OK(need_input());
      std::vector<DimRange> ranges;
      while (true) {
        DimRange r;
        NEXUS_ASSIGN_OR_RETURN(r.dim, ExpectIdent("dimension"));
        NEXUS_ASSIGN_OR_RETURN(double lo, ExpectNumber("range start"));
        NEXUS_ASSIGN_OR_RETURN(double hi, ExpectNumber("range end"));
        r.lo = static_cast<int64_t>(lo);
        r.hi = static_cast<int64_t>(hi);
        ranges.push_back(std::move(r));
        if (!EatPunct(",")) break;
      }
      return Plan::Slice(plan, std::move(ranges));
    }
    if (EatIdent("shift")) {
      NEXUS_RETURN_NOT_OK(need_input());
      std::vector<std::pair<std::string, int64_t>> offsets;
      while (true) {
        NEXUS_ASSIGN_OR_RETURN(std::string d, ExpectIdent("dimension"));
        NEXUS_ASSIGN_OR_RETURN(double delta, ExpectNumber("offset"));
        offsets.emplace_back(std::move(d), static_cast<int64_t>(delta));
        if (!EatPunct(",")) break;
      }
      return Plan::Shift(plan, std::move(offsets));
    }
    if (EatIdent("regrid")) {
      NEXUS_RETURN_NOT_OK(need_input());
      std::vector<std::pair<std::string, int64_t>> factors;
      while (true) {
        NEXUS_ASSIGN_OR_RETURN(std::string d, ExpectIdent("dimension"));
        NEXUS_RETURN_NOT_OK(ExpectPunct("/"));
        NEXUS_ASSIGN_OR_RETURN(int64_t f, ExpectInt("factor"));
        factors.emplace_back(std::move(d), f);
        if (!EatPunct(",")) break;
      }
      AggFunc func = AggFunc::kAvg;
      if (EatIdent("using")) {
        NEXUS_ASSIGN_OR_RETURN(std::string fn, ExpectIdent("aggregate"));
        NEXUS_ASSIGN_OR_RETURN(func, AggFuncFromName(ToLower(fn)));
      }
      return Plan::Regrid(plan, std::move(factors), func);
    }
    if (EatIdent("window")) {
      NEXUS_RETURN_NOT_OK(need_input());
      std::vector<std::pair<std::string, int64_t>> radii;
      while (true) {
        NEXUS_ASSIGN_OR_RETURN(std::string d, ExpectIdent("dimension"));
        NEXUS_ASSIGN_OR_RETURN(int64_t r, ExpectInt("radius"));
        radii.emplace_back(std::move(d), r);
        if (!EatPunct(",")) break;
      }
      AggFunc func = AggFunc::kAvg;
      if (EatIdent("using")) {
        NEXUS_ASSIGN_OR_RETURN(std::string fn, ExpectIdent("aggregate"));
        NEXUS_ASSIGN_OR_RETURN(func, AggFuncFromName(ToLower(fn)));
      }
      return Plan::Window(plan, std::move(radii), func);
    }
    if (EatIdent("transpose")) {
      NEXUS_RETURN_NOT_OK(need_input());
      NEXUS_ASSIGN_OR_RETURN(std::vector<std::string> order, ParseIdentList());
      return Plan::Transpose(plan, std::move(order));
    }
    if (EatIdent("matmul")) {
      NEXUS_RETURN_NOT_OK(need_input());
      NEXUS_ASSIGN_OR_RETURN(std::string table, ExpectIdent("matrix table"));
      std::string attr = "value";
      if (EatIdent("as")) {
        NEXUS_ASSIGN_OR_RETURN(attr, ExpectIdent("result attribute"));
      }
      return Plan::MatMul(plan, Plan::Scan(std::move(table)), std::move(attr));
    }
    if (EatIdent("elemwise")) {
      NEXUS_RETURN_NOT_OK(need_input());
      if (Peek().kind != TokKind::kPunct) {
        return Status::InvalidArgument("elemwise requires an operator (+ - * /)");
      }
      NEXUS_ASSIGN_OR_RETURN(BinaryOp op, BinaryOpFromName(Advance().text));
      NEXUS_ASSIGN_OR_RETURN(std::string table, ExpectIdent("array table"));
      return Plan::ElemWise(plan, Plan::Scan(std::move(table)), op);
    }
    if (EatIdent("pagerank")) {
      NEXUS_RETURN_NOT_OK(need_input());
      PageRankOp op;
      NEXUS_ASSIGN_OR_RETURN(op.src_col, ExpectIdent("source column"));
      NEXUS_ASSIGN_OR_RETURN(op.dst_col, ExpectIdent("destination column"));
      while (true) {
        if (EatIdent("damping")) {
          NEXUS_ASSIGN_OR_RETURN(op.damping, ExpectNumber("damping"));
        } else if (EatIdent("iters")) {
          NEXUS_ASSIGN_OR_RETURN(op.max_iters, ExpectInt("iterations"));
        } else if (EatIdent("eps")) {
          NEXUS_ASSIGN_OR_RETURN(op.epsilon, ExpectNumber("epsilon"));
        } else {
          break;
        }
      }
      return Plan::PageRank(plan, std::move(op));
    }
    return Status::InvalidArgument(
        StrCat("unknown stage starting at '", Peek().text, "'"));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<PlanPtr> ParseBdl(const std::string& text) {
  Lexer lexer(text);
  NEXUS_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

Result<ExprPtr> ParseBdlExpr(const std::string& text) {
  Lexer lexer(text);
  NEXUS_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseStandaloneExpr();
}

}  // namespace nexus
