// Fluent query builder: the LINQ-flavored C++ front end.
//
//   Query q = Query::From("orders")
//                 .Where(Gt(Col("amount"), Lit(50.0)))
//                 .GroupBy({"sensor"}, {Sum(Col("amount"), "total")})
//                 .OrderBy("total", /*ascending=*/false)
//                 .Take(10);
//   Dataset result = coordinator.Execute(q.plan()).ValueOrDie();
//
// Every method lowers straight to algebra nodes — the front end carries no
// semantics of its own (the paper: "it is algebra at the core", client
// languages add sugar).
#ifndef NEXUS_FRONTEND_QUERY_H_
#define NEXUS_FRONTEND_QUERY_H_

#include <string>
#include <vector>

#include "core/plan.h"
#include "expr/builder.h"

namespace nexus {

/// Aggregate shorthand constructors for GroupBy.
inline AggSpec Sum(ExprPtr e, std::string name) {
  return AggSpec{AggFunc::kSum, std::move(e), std::move(name)};
}
inline AggSpec Avg(ExprPtr e, std::string name) {
  return AggSpec{AggFunc::kAvg, std::move(e), std::move(name)};
}
inline AggSpec Min(ExprPtr e, std::string name) {
  return AggSpec{AggFunc::kMin, std::move(e), std::move(name)};
}
inline AggSpec Max(ExprPtr e, std::string name) {
  return AggSpec{AggFunc::kMax, std::move(e), std::move(name)};
}
inline AggSpec Count(std::string name) {
  return AggSpec{AggFunc::kCount, nullptr, std::move(name)};
}
inline AggSpec CountOf(ExprPtr e, std::string name) {
  return AggSpec{AggFunc::kCount, std::move(e), std::move(name)};
}

/// Immutable fluent wrapper around a PlanPtr; every call returns a new Query.
class Query {
 public:
  /// Starts from a named collection.
  static Query From(std::string table) { return Query(Plan::Scan(std::move(table))); }
  /// Starts from inline data.
  static Query FromData(Dataset data) { return Query(Plan::Values(std::move(data))); }
  /// Starts from the loop variable (inside IterateUntil bodies).
  static Query Loop(bool previous = false) { return Query(Plan::LoopVar(previous)); }
  /// Wraps an existing plan.
  explicit Query(PlanPtr plan) : plan_(std::move(plan)) {}

  const PlanPtr& plan() const { return plan_; }

  // Relational verbs.
  Query Where(ExprPtr predicate) const {
    return Query(Plan::Select(plan_, std::move(predicate)));
  }
  Query SelectCols(std::vector<std::string> columns) const {
    return Query(Plan::Project(plan_, std::move(columns)));
  }
  Query Let(std::string name, ExprPtr expr) const {
    return Query(Plan::Extend(plan_, {{std::move(name), std::move(expr)}}));
  }
  Query Extend(std::vector<std::pair<std::string, ExprPtr>> defs) const {
    return Query(Plan::Extend(plan_, std::move(defs)));
  }
  Query JoinWith(const Query& right, std::vector<std::string> left_keys,
                 std::vector<std::string> right_keys,
                 JoinType type = JoinType::kInner, ExprPtr residual = nullptr) const {
    return Query(Plan::Join(plan_, right.plan_, type, std::move(left_keys),
                            std::move(right_keys), std::move(residual)));
  }
  Query GroupBy(std::vector<std::string> keys, std::vector<AggSpec> aggs) const {
    return Query(Plan::Aggregate(plan_, std::move(keys), std::move(aggs)));
  }
  Query Aggregate(std::vector<AggSpec> aggs) const {
    return Query(Plan::Aggregate(plan_, {}, std::move(aggs)));
  }
  Query OrderBy(std::string column, bool ascending = true) const {
    return Query(Plan::Sort(plan_, {{std::move(column), ascending}}));
  }
  Query OrderByKeys(std::vector<SortKey> keys) const {
    return Query(Plan::Sort(plan_, std::move(keys)));
  }
  Query Take(int64_t n, int64_t offset = 0) const {
    return Query(Plan::Limit(plan_, n, offset));
  }
  Query Distinct() const { return Query(Plan::Distinct(plan_)); }
  Query UnionWith(const Query& other) const {
    return Query(Plan::Union(plan_, other.plan_));
  }
  Query Rename(std::vector<std::pair<std::string, std::string>> mapping) const {
    return Query(Plan::Rename(plan_, std::move(mapping)));
  }

  // Dimension-aware verbs.
  Query AsArray(std::vector<std::string> dims, int64_t chunk_size = 64) const {
    return Query(Plan::Rebox(plan_, std::move(dims), chunk_size));
  }
  Query AsPlainTable() const { return Query(Plan::Unbox(plan_)); }
  Query Slice(std::vector<DimRange> ranges) const {
    return Query(Plan::Slice(plan_, std::move(ranges)));
  }
  Query Shift(std::vector<std::pair<std::string, int64_t>> offsets) const {
    return Query(Plan::Shift(plan_, std::move(offsets)));
  }
  Query Regrid(std::vector<std::pair<std::string, int64_t>> factors,
               AggFunc func = AggFunc::kAvg) const {
    return Query(Plan::Regrid(plan_, std::move(factors), func));
  }
  Query Window(std::vector<std::pair<std::string, int64_t>> radii,
               AggFunc func = AggFunc::kAvg) const {
    return Query(Plan::Window(plan_, std::move(radii), func));
  }
  Query Transpose(std::vector<std::string> dim_order) const {
    return Query(Plan::Transpose(plan_, std::move(dim_order)));
  }
  Query ElemWise(const Query& other, BinaryOp op) const {
    return Query(Plan::ElemWise(plan_, other.plan_, op));
  }

  // Intent verbs.
  Query MatMul(const Query& right, std::string result_attr = "value") const {
    return Query(Plan::MatMul(plan_, right.plan_, std::move(result_attr)));
  }
  Query PageRank(PageRankOp options = {}) const {
    return Query(Plan::PageRank(plan_, std::move(options)));
  }

  /// Control iteration: repeats `body` (built from Query::Loop()) until
  /// `measure` (optional) drops below `epsilon`, at most `max_iters` times.
  Query IterateUntil(const Query& body, int64_t max_iters,
                     const Query* measure = nullptr, double epsilon = 0.0) const {
    IterateOp op;
    op.body = body.plan_;
    op.measure = measure == nullptr ? nullptr : measure->plan_;
    op.max_iters = max_iters;
    op.epsilon = epsilon;
    return Query(Plan::Iterate(plan_, std::move(op)));
  }

  /// Tree rendering (delegates to the plan).
  std::string ToString() const { return plan_->ToString(); }

 private:
  PlanPtr plan_;
};

}  // namespace nexus

#endif  // NEXUS_FRONTEND_QUERY_H_
