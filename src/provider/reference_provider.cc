// The reference provider: claims the entire algebra and interprets it with
// the reference executor. The federated planner's fallback target, making
// Translatability (desideratum 2) total by construction.
#include "exec/reference_executor.h"
#include "provider/provider.h"

namespace nexus {

namespace {

class ReferenceProvider : public Provider {
 public:
  std::string name() const override { return "reference"; }

  bool Claims(OpKind) const override { return true; }

  Result<Dataset> Execute(const Plan& plan) override {
    ReferenceExecutor exec(&catalog_);
    return exec.Execute(plan);
  }
};

}  // namespace

ProviderPtr MakeReferenceProvider() {
  return std::make_shared<ReferenceProvider>();
}

}  // namespace nexus
