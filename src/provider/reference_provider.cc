// The reference provider: claims the entire algebra and interprets it with
// the reference executor. The federated planner's fallback target, making
// Translatability (desideratum 2) total by construction.
#include "exec/reference_executor.h"
#include "provider/provider.h"

namespace nexus {

namespace {

class ReferenceProvider : public Provider {
 public:
  explicit ReferenceProvider(bool text_only) : text_only_(text_only) {}

  std::string name() const override { return "reference"; }

  bool Claims(OpKind) const override { return true; }

  // As the compatibility backstop, the reference provider can also stand in
  // for a legacy peer that predates NXB1: with text_only it advertises no
  // binary support and the transport keeps its links on the textual wire.
  bool AcceptsBinaryWire() const override { return !text_only_; }

  Result<Dataset> Execute(const Plan& plan) override {
    ReferenceExecutor exec(&catalog_);
    return exec.Execute(plan);
  }

 private:
  const bool text_only_;
};

}  // namespace

ProviderPtr MakeReferenceProvider(bool text_only) {
  return std::make_shared<ReferenceProvider>(text_only);
}

}  // namespace nexus
