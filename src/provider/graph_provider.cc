// The graph provider ("graphd"): claims PageRank natively via the CSR
// analytics engine — the provider with a "direct implementation" that
// Intent Preservation (desideratum 3) exists to reach.
#include "algebra/kernels.h"
#include "algebra/semiring.h"
#include "graph/graph.h"
#include "provider/provider.h"
#include "relational/engine.h"
#include "telemetry/telemetry.h"

namespace nexus {

namespace {

class GraphProvider : public Provider {
 public:
  std::string name() const override { return "graphd"; }

  // graphd speaks NXB1 natively: its operands live in the same
  // columnar vectors the wire blocks are lifted from.
  bool AcceptsBinaryWire() const override { return true; }

  bool Claims(OpKind kind) const override {
    switch (kind) {
      case OpKind::kScan:
      case OpKind::kValues:
      case OpKind::kPageRank:
      case OpKind::kExchange:
        return true;
      case OpKind::kAggregate:
        // Semi-ring lowering lets graphd run ⊕-fold aggregates through the
        // shared algebra kernels — byte-identical on every engine.
        return algebra::SemiringLoweringEnabled();
      default:
        return false;
    }
  }

  Result<Dataset> Execute(const Plan& plan) override { return Exec(plan); }

  /// Iterations the last PageRank execution needed (bench instrumentation).
  int64_t last_iterations() const { return last_iterations_; }

 private:
  /// Per-operator tracing shim around ExecNode; recursion re-enters here,
  /// so every plan node gets a span when tracing is on.
  Result<Dataset> Exec(const Plan& plan) {
    if (!telemetry::Enabled()) return ExecNode(plan);
    telemetry::SpanGuard span(telemetry::kCategoryOperator, plan.NodeLabel());
    auto result = ExecNode(plan);
    if (result.ok() && span.active()) {
      span.AddCounter("rows", result.ValueOrDie().num_rows());
      span.AddCounter("bytes", result.ValueOrDie().ByteSize());
    }
    return result;
  }

  Result<Dataset> ExecNode(const Plan& plan) {
    switch (plan.kind()) {
      case OpKind::kScan:
        return catalog_.Get(plan.As<ScanOp>().table);
      case OpKind::kValues:
        return plan.As<ValuesOp>().data;
      case OpKind::kExchange:
        return Exec(*plan.child(0));
      case OpKind::kAggregate: {
        NEXUS_ASSIGN_OR_RETURN(Dataset in_ds, Exec(*plan.child(0)));
        NEXUS_ASSIGN_OR_RETURN(TablePtr in, in_ds.AsTable());
        const auto& spec = plan.As<AggregateOp>();
        if (algebra::SemiringLoweringEnabled() &&
            algebra::AggregateLowerable(spec)) {
          NEXUS_ASSIGN_OR_RETURN(TablePtr out,
                                 algebra::LowerAggregate(in, spec));
          return Dataset(out);
        }
        NEXUS_ASSIGN_OR_RETURN(TablePtr out,
                               relational::HashAggregate(in, spec));
        return Dataset(out);
      }
      case OpKind::kPageRank: {
        NEXUS_ASSIGN_OR_RETURN(Dataset edges_ds, Exec(*plan.child(0)));
        NEXUS_ASSIGN_OR_RETURN(TablePtr edges, edges_ds.AsTable());
        const auto& op = plan.As<PageRankOp>();
        NEXUS_ASSIGN_OR_RETURN(
            graph::CsrGraph g,
            graph::CsrGraph::FromTable(*edges, op.src_col, op.dst_col));
        graph::PageRankOptions opts;
        opts.damping = op.damping;
        opts.max_iters = op.max_iters;
        opts.epsilon = op.epsilon;
        graph::PageRankResult r = graph::PageRank(g, opts);
        last_iterations_ = r.iterations;
        NEXUS_ASSIGN_OR_RETURN(
            SchemaPtr schema,
            Schema::Make({Field::Dim("node"),
                          Field::Attr("rank", DataType::kFloat64)}));
        TableBuilder builder(schema);
        builder.Reserve(g.num_nodes());
        for (int64_t u = 0; u < g.num_nodes(); ++u) {
          NEXUS_RETURN_NOT_OK(builder.AppendRow(
              {Value::Int64(g.original_id(u)),
               Value::Float64(r.rank[static_cast<size_t>(u)])}));
        }
        NEXUS_ASSIGN_OR_RETURN(TablePtr out, builder.Finish());
        return Dataset(out);
      }
      default:
        return Status::Unsupported(
            std::string("graphd does not implement ") + OpKindName(plan.kind()));
    }
  }

  int64_t last_iterations_ = 0;
};

}  // namespace

ProviderPtr MakeGraphProvider() { return std::make_shared<GraphProvider>(); }

}  // namespace nexus
