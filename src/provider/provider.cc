#include "provider/provider.h"

#include "core/serialize.h"
#include "telemetry/telemetry.h"

namespace nexus {

Result<Dataset> Provider::ExecuteWire(const std::string& wire) {
  // Trace context travels in-band: a wire built under tracing starts with a
  // %NEXUS-TRACE header naming the trace, the sender's span, and this
  // server. Adopting it stitches every span recorded here — operators,
  // kernels, morsels — under the coordinator's fragment span, so a
  // multi-server query renders as one tree. The header is recognized (and
  // stripped) even when tracing is off, so a cached wire stays parseable.
  telemetry::TraceContext ctx;
  size_t offset = telemetry::StripWireHeader(wire, &ctx);
  std::string stripped;
  if (offset != 0) stripped = wire.substr(offset);
  NEXUS_ASSIGN_OR_RETURN(PlanPtr plan, ParsePlan(offset == 0 ? wire : stripped));
  if (offset == 0 || !telemetry::Enabled()) return Execute(*plan);

  telemetry::ContextScope scope(ctx);
  telemetry::SpanGuard span(telemetry::kCategoryServer, name(), ctx.server);
  auto result = Execute(*plan);
  if (result.ok() && span.active()) {
    span.AddCounter("rows", result.ValueOrDie().num_rows());
    span.AddCounter("bytes", result.ValueOrDie().ByteSize());
  }
  return result;
}

bool Provider::ClaimsTree(const Plan& plan) const {
  if (!Claims(plan.kind())) return false;
  for (const PlanPtr& c : plan.children()) {
    if (!ClaimsTree(*c)) return false;
  }
  if (plan.kind() == OpKind::kIterate) {
    const auto& op = plan.As<IterateOp>();
    if (!ClaimsTree(*op.body)) return false;
    if (op.measure != nullptr && !ClaimsTree(*op.measure)) return false;
  }
  return true;
}

}  // namespace nexus
