#include "provider/provider.h"

#include "common/str_util.h"
#include "core/serialize.h"
#include "exec/incremental/policy.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace nexus {

namespace {

/// Registry instruments, resolved once (pointers are stable forever).
struct ProviderInstruments {
  telemetry::Counter* plan_cache_hit;
  telemetry::Counter* plan_cache_miss;
  telemetry::Counter* delta_binding_hit;
  telemetry::Counter* delta_binding_miss;

  static const ProviderInstruments& Get() {
    static const ProviderInstruments in{
        telemetry::MetricsRegistry::Global().counter("provider.plan_cache_hit"),
        telemetry::MetricsRegistry::Global().counter(
            "provider.plan_cache_miss"),
        telemetry::MetricsRegistry::Global().counter(
            "provider.delta_binding_hit"),
        telemetry::MetricsRegistry::Global().counter(
            "provider.delta_binding_miss"),
    };
    return in;
  }
};

}  // namespace

Result<Dataset> Provider::ExecuteWire(const std::string& wire) {
  // Trace context travels in-band: a wire built under tracing starts with a
  // %NEXUS-TRACE header naming the trace, the sender's span, and this
  // server. Adopting it stitches every span recorded here — operators,
  // kernels, morsels — under the coordinator's fragment span, so a
  // multi-server query renders as one tree. The header is recognized (and
  // stripped) even when tracing is off, so a cached wire stays parseable.
  telemetry::TraceContext ctx;
  size_t offset = telemetry::StripWireHeader(wire, &ctx);
  // Everything behind the header is consumed as a view; large payloads are
  // never copied on the receive path.
  std::string_view body(wire);
  body.remove_prefix(offset);
  if (offset == 0 || !telemetry::Enabled()) return ExecuteWireBody(body);

  telemetry::ContextScope scope(ctx);
  telemetry::SpanGuard span(telemetry::kCategoryServer, name(), ctx.server);
  auto result = ExecuteWireBody(body);
  if (result.ok() && span.active()) {
    span.AddCounter("rows", result.ValueOrDie().num_rows());
    span.AddCounter("bytes", result.ValueOrDie().ByteSize());
  }
  return result;
}

Result<Dataset> Provider::ExecuteWireBody(std::string_view body) {
  NEXUS_ASSIGN_OR_RETURN(WireEnvelope env, ParseWireEnvelope(body));
  const ProviderInstruments& in = ProviderInstruments::Get();
  PlanPtr plan;
  switch (env.kind) {
    case WireEnvelope::Kind::kNone: {
      NEXUS_ASSIGN_OR_RETURN(plan, ParsePlan(env.plan_wire));
      break;
    }
    case WireEnvelope::Kind::kPlanStore: {
      NEXUS_ASSIGN_OR_RETURN(plan, ParsePlan(env.plan_wire));
      CachePlan(env.fingerprint, plan);
      in.plan_cache_miss->Increment();
      break;
    }
    case WireEnvelope::Kind::kExecCached: {
      plan = LookupCachedPlan(env.fingerprint);
      if (plan == nullptr) {
        in.plan_cache_miss->Increment();
        return Status::NotFound(
            StrCat(kPlanCacheMissMarker, ": fingerprint ", env.fingerprint,
                   " not cached on ", name()));
      }
      in.plan_cache_hit->Increment();
      break;
    }
  }
  if (env.bindings.empty()) return Execute(*plan);
  return ExecuteBound(*plan, env.bindings);
}

Result<Dataset> Provider::ExecuteBound(
    const Plan& plan,
    const std::vector<std::pair<std::string_view, std::string_view>>&
        bindings) {
  std::vector<std::string> registered;
  registered.reserve(bindings.size());
  auto drop_all = [&] {
    for (const std::string& n : registered) (void)catalog_.Drop(n);
  };
  for (const auto& [bname, bwire] : bindings) {
    std::string key(bname);
    auto data = ResolveBinding(key, bwire);
    if (!data.ok()) {
      drop_all();
      return data.status();
    }
    Status st = catalog_.Put(key, std::move(data).ValueOrDie());
    if (!st.ok()) {
      drop_all();
      return st;
    }
    registered.push_back(std::move(key));
  }
  auto result = Execute(plan);
  drop_all();
  return result;
}

Result<Dataset> Provider::ResolveBinding(const std::string& name,
                                         std::string_view wire) {
  const ProviderInstruments& in = ProviderInstruments::Get();
  if (!IsDeltaBindingWire(wire)) {
    NEXUS_ASSIGN_OR_RETURN(Dataset data, ParseDatasetWire(wire));
    if (incremental::IncrementalEnabled() && data.is_table()) {
      CacheBinding(name, data.table(), ChainFingerprint(0, wire));
    }
    return data;
  }
  NEXUS_ASSIGN_OR_RETURN(DeltaBindingView view, ParseDeltaBindingWire(wire));
  TablePtr base;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = binding_cache_.find(name);
    if (it != binding_cache_.end() && it->second.chain_fp == view.chain_fp &&
        it->second.table->num_rows() == view.base_rows) {
      base = it->second.table;
    }
  }
  if (base == nullptr) {
    in.delta_binding_miss->Increment();
    return Status::NotFound(StrCat(kDeltaBindingMissMarker, ": no base for '",
                                   name, "' on ", this->name()));
  }
  NEXUS_ASSIGN_OR_RETURN(Dataset tail, ParseDatasetWire(view.tail_wire));
  if (!tail.is_table() || !tail.table()->schema()->Equals(*base->schema())) {
    in.delta_binding_miss->Increment();
    return Status::NotFound(StrCat(kDeltaBindingMissMarker,
                                   ": schema mismatch for '", name, "' on ",
                                   this->name()));
  }
  std::vector<Column> cols = base->columns();
  for (size_t c = 0; c < cols.size(); ++c) {
    NEXUS_RETURN_NOT_OK(
        cols[c].AppendColumn(tail.table()->column(static_cast<int>(c))));
  }
  NEXUS_ASSIGN_OR_RETURN(TablePtr full,
                         Table::Make(base->schema(), std::move(cols)));
  CacheBinding(name, full, ChainFingerprint(view.chain_fp, view.tail_wire));
  in.delta_binding_hit->Increment();
  return Dataset(std::move(full));
}

void Provider::CacheBinding(const std::string& name, TablePtr table,
                            uint64_t chain_fp) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = binding_cache_.find(name);
  if (it != binding_cache_.end()) {
    it->second = BindingEntry{std::move(table), chain_fp};
    return;
  }
  binding_cache_.emplace(name, BindingEntry{std::move(table), chain_fp});
  binding_cache_order_.push_back(name);
  if (binding_cache_order_.size() > kBindingCacheCapacity) {
    binding_cache_.erase(binding_cache_order_.front());
    binding_cache_order_.pop_front();
  }
}

PlanPtr Provider::LookupCachedPlan(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = plan_cache_.find(fingerprint);
  return it == plan_cache_.end() ? nullptr : it->second;
}

void Provider::CachePlan(uint64_t fingerprint, PlanPtr plan) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = plan_cache_.find(fingerprint);
  if (it != plan_cache_.end()) {
    it->second = std::move(plan);
    return;
  }
  plan_cache_.emplace(fingerprint, std::move(plan));
  plan_cache_order_.push_back(fingerprint);
  if (plan_cache_order_.size() > kPlanCacheCapacity) {
    plan_cache_.erase(plan_cache_order_.front());
    plan_cache_order_.pop_front();
  }
}

bool Provider::ClaimsTree(const Plan& plan) const {
  if (!Claims(plan.kind())) return false;
  for (const PlanPtr& c : plan.children()) {
    if (!ClaimsTree(*c)) return false;
  }
  if (plan.kind() == OpKind::kIterate) {
    const auto& op = plan.As<IterateOp>();
    if (!ClaimsTree(*op.body)) return false;
    if (op.measure != nullptr && !ClaimsTree(*op.measure)) return false;
  }
  return true;
}

}  // namespace nexus
