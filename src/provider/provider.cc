#include "provider/provider.h"

#include "core/serialize.h"

namespace nexus {

Result<Dataset> Provider::ExecuteWire(const std::string& wire) {
  NEXUS_ASSIGN_OR_RETURN(PlanPtr plan, ParsePlan(wire));
  return Execute(*plan);
}

bool Provider::ClaimsTree(const Plan& plan) const {
  if (!Claims(plan.kind())) return false;
  for (const PlanPtr& c : plan.children()) {
    if (!ClaimsTree(*c)) return false;
  }
  if (plan.kind() == OpKind::kIterate) {
    const auto& op = plan.As<IterateOp>();
    if (!ClaimsTree(*op.body)) return false;
    if (op.measure != nullptr && !ClaimsTree(*op.measure)) return false;
  }
  return true;
}

}  // namespace nexus
