// The relational provider ("relstore"): translates algebra trees onto the
// vectorized columnar engine. Dimension-aware operators are translated to
// relational equivalents (slice → filter, regrid → bin + group-by,
// transpose → column reorder, elemwise → join), and intent operators are
// claimed via their relational expansions — the "combination of systems"
// half of desideratum 2.
#include "algebra/kernels.h"
#include "algebra/semiring.h"
#include "common/str_util.h"
#include "core/expansion.h"
#include "exec/reference_executor.h"
#include "expr/builder.h"
#include "expr/bytecode.h"
#include "optimizer/fusion.h"
#include "provider/provider.h"
#include "relational/engine.h"
#include "relational/fused.h"
#include "telemetry/telemetry.h"

namespace nexus {

namespace {

using namespace nexus::exprs;  // NOLINT

class RelationalProvider : public Provider {
 public:
  std::string name() const override { return "relstore"; }

  // relstore speaks NXB1 natively: its operands live in the same
  // columnar vectors the wire blocks are lifted from.
  bool AcceptsBinaryWire() const override { return true; }

  bool Claims(OpKind kind) const override {
    // Window would need per-cell range self-joins; left to array providers
    // (the planner routes around it — "a combination of such systems").
    return kind != OpKind::kWindow;
  }

  Result<Dataset> Execute(const Plan& plan) override {
    // Non-owning alias: expansion only reads the tree.
    PlanPtr alias(&plan, [](const Plan*) {});
    NEXUS_ASSIGN_OR_RETURN(PlanPtr expanded, ExpandIntentOps(alias, catalog_));
    loop_stack_.clear();
    return Exec(*expanded);
  }

 private:
  /// Per-operator tracing shim around ExecNode; recursion re-enters here,
  /// so every plan node gets a span when tracing is on.
  Result<Dataset> Exec(const Plan& plan) {
    if (!telemetry::Enabled()) return ExecNode(plan);
    telemetry::SpanGuard span(telemetry::kCategoryOperator, plan.NodeLabel());
    auto result = ExecNode(plan);
    if (result.ok() && span.active()) {
      span.AddCounter("rows", result.ValueOrDie().num_rows());
      span.AddCounter("bytes", result.ValueOrDie().ByteSize());
    }
    return result;
  }
  Result<Dataset> ExecNode(const Plan& plan);
  Result<TablePtr> ExecT(const Plan& plan) {
    NEXUS_ASSIGN_OR_RETURN(Dataset d, Exec(plan));
    return d.AsTable();
  }

  std::vector<ExecLoopFrame> loop_stack_;
};

/// Applies a matched-but-refused chain with the per-operator kernels against
/// an already-executed source (avoids re-running the source subtree).
Result<TablePtr> ApplyChainUnfused(const std::vector<const Plan*>& ops,
                                   TablePtr t) {
  for (const Plan* op : ops) {
    switch (op->kind()) {
      case OpKind::kSelect: {
        NEXUS_ASSIGN_OR_RETURN(
            t, relational::Filter(t, *op->As<SelectOp>().predicate));
        break;
      }
      case OpKind::kProject: {
        NEXUS_ASSIGN_OR_RETURN(
            t, relational::Project(t, op->As<ProjectOp>().columns));
        break;
      }
      case OpKind::kExtend: {
        NEXUS_ASSIGN_OR_RETURN(t,
                               relational::Extend(t, op->As<ExtendOp>().defs));
        break;
      }
      case OpKind::kAggregate: {
        NEXUS_ASSIGN_OR_RETURN(
            t, relational::HashAggregate(t, op->As<AggregateOp>()));
        break;
      }
      default:
        return Status::Internal("non-fusable operator in matched chain");
    }
  }
  return t;
}

// Retags a table's schema (shared by rebox/unbox translation).
Result<TablePtr> Retag(const TablePtr& t, const std::vector<std::string>& dims) {
  std::vector<Field> fields = t->schema()->fields();
  for (Field& f : fields) f.is_dimension = false;
  for (const std::string& d : dims) {
    NEXUS_ASSIGN_OR_RETURN(int i, t->schema()->FindFieldOrError(d));
    if (fields[static_cast<size_t>(i)].type != DataType::kInt64) {
      return Status::TypeError(StrCat("rebox dimension ", d, " must be int64"));
    }
    if (t->column(i).has_nulls()) {
      return Status::InvalidArgument(StrCat("rebox dimension ", d, " has nulls"));
    }
    fields[static_cast<size_t>(i)].is_dimension = true;
  }
  NEXUS_ASSIGN_OR_RETURN(SchemaPtr schema, Schema::Make(std::move(fields)));
  return Table::Make(schema, t->columns());
}

Result<Dataset> RelationalProvider::ExecNode(const Plan& plan) {
  // Operator fusion: a Filter→Extend/Project(→Aggregate) chain rooted here
  // executes as one compiled morsel loop over the chain's source instead of
  // materializing a table per operator. Lowering refuses (kUnsupported)
  // whenever byte-identity cannot be proven; then the chain runs through the
  // regular per-operator kernels below on the already-executed source.
  if (PipelineFusionEnabled() && ExprCompileEnabled()) {
    std::optional<FusedChain> chain = MatchFusedChain(plan);
    if (chain.has_value()) {
      NEXUS_ASSIGN_OR_RETURN(TablePtr src, ExecT(*chain->source));
      Result<relational::FusedPipeline> fp =
          relational::CompileFusedPipeline(chain->ops, src->schema());
      if (fp.ok()) {
        NEXUS_ASSIGN_OR_RETURN(TablePtr out,
                               relational::ExecuteFused(fp.ValueOrDie(), src));
        return Dataset(out);
      }
      if (!fp.status().IsUnsupported()) return fp.status();
      NEXUS_ASSIGN_OR_RETURN(TablePtr out,
                             ApplyChainUnfused(chain->ops, std::move(src)));
      return Dataset(out);
    }
  }
  switch (plan.kind()) {
    case OpKind::kScan:
      return catalog_.Get(plan.As<ScanOp>().table);
    case OpKind::kValues:
      return plan.As<ValuesOp>().data;
    case OpKind::kLoopVar: {
      if (loop_stack_.empty()) {
        return Status::PlanError("loopvar outside iterate");
      }
      return plan.As<LoopVarOp>().previous ? loop_stack_.back().previous
                                           : loop_stack_.back().current;
    }
    case OpKind::kSelect: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, ExecT(*plan.child(0)));
      NEXUS_ASSIGN_OR_RETURN(
          TablePtr out, relational::Filter(in, *plan.As<SelectOp>().predicate));
      return Dataset(out);
    }
    case OpKind::kProject: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, ExecT(*plan.child(0)));
      NEXUS_ASSIGN_OR_RETURN(TablePtr out,
                             relational::Project(in, plan.As<ProjectOp>().columns));
      return Dataset(out);
    }
    case OpKind::kExtend: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, ExecT(*plan.child(0)));
      NEXUS_ASSIGN_OR_RETURN(TablePtr out,
                             relational::Extend(in, plan.As<ExtendOp>().defs));
      return Dataset(out);
    }
    case OpKind::kJoin: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr l, ExecT(*plan.child(0)));
      NEXUS_ASSIGN_OR_RETURN(TablePtr r, ExecT(*plan.child(1)));
      NEXUS_ASSIGN_OR_RETURN(TablePtr out,
                             relational::HashJoin(l, r, plan.As<JoinOp>()));
      return Dataset(out);
    }
    case OpKind::kAggregate: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, ExecT(*plan.child(0)));
      const auto& spec = plan.As<AggregateOp>();
      // Semi-ring routing: SUM/MIN/MAX/COUNT folds run on the shared
      // algebra kernel (byte-identical to HashAggregate); AVG and disabled
      // lowering take the native engine.
      if (algebra::SemiringLoweringEnabled() &&
          algebra::AggregateLowerable(spec)) {
        NEXUS_ASSIGN_OR_RETURN(TablePtr out, algebra::LowerAggregate(in, spec));
        return Dataset(out);
      }
      NEXUS_ASSIGN_OR_RETURN(TablePtr out, relational::HashAggregate(in, spec));
      return Dataset(out);
    }
    case OpKind::kSort: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, ExecT(*plan.child(0)));
      NEXUS_ASSIGN_OR_RETURN(TablePtr out,
                             relational::Sort(in, plan.As<SortOp>().keys));
      return Dataset(out);
    }
    case OpKind::kLimit: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, ExecT(*plan.child(0)));
      const auto& op = plan.As<LimitOp>();
      NEXUS_ASSIGN_OR_RETURN(TablePtr out,
                             relational::Limit(in, op.limit, op.offset));
      return Dataset(out);
    }
    case OpKind::kDistinct: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, ExecT(*plan.child(0)));
      NEXUS_ASSIGN_OR_RETURN(TablePtr out, relational::Distinct(in));
      return Dataset(out);
    }
    case OpKind::kUnion: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr l, ExecT(*plan.child(0)));
      NEXUS_ASSIGN_OR_RETURN(TablePtr r, ExecT(*plan.child(1)));
      NEXUS_ASSIGN_OR_RETURN(TablePtr out, relational::Union(l, r));
      return Dataset(out);
    }
    case OpKind::kRename: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, ExecT(*plan.child(0)));
      NEXUS_ASSIGN_OR_RETURN(TablePtr out,
                             relational::Rename(in, plan.As<RenameOp>().mapping));
      return Dataset(out);
    }
    case OpKind::kRebox: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, ExecT(*plan.child(0)));
      NEXUS_ASSIGN_OR_RETURN(TablePtr out, Retag(in, plan.As<ReboxOp>().dims));
      return Dataset(out);
    }
    case OpKind::kUnbox: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, ExecT(*plan.child(0)));
      NEXUS_ASSIGN_OR_RETURN(TablePtr out, Retag(in, {}));
      return Dataset(out);
    }
    case OpKind::kSlice: {
      // slice → conjunctive range filter on the dimension columns.
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, ExecT(*plan.child(0)));
      std::vector<ExprPtr> preds;
      for (const DimRange& r : plan.As<SliceOp>().ranges) {
        preds.push_back(Ge(Col(r.dim), Lit(r.lo)));
        preds.push_back(Lt(Col(r.dim), Lit(r.hi)));
      }
      NEXUS_ASSIGN_OR_RETURN(TablePtr out,
                             relational::Filter(in, *AndAll(std::move(preds))));
      return Dataset(out);
    }
    case OpKind::kShift: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, ExecT(*plan.child(0)));
      std::vector<Column> cols = in->columns();
      for (const auto& [dim, delta] : plan.As<ShiftOp>().offsets) {
        NEXUS_ASSIGN_OR_RETURN(int i, in->schema()->FindFieldOrError(dim));
        std::vector<int64_t> shifted = cols[static_cast<size_t>(i)].ints();
        for (int64_t& v : shifted) v += delta;
        cols[static_cast<size_t>(i)] = Column::FromInt64(std::move(shifted));
      }
      NEXUS_ASSIGN_OR_RETURN(TablePtr out,
                             Table::Make(in->schema(), std::move(cols)));
      return Dataset(out);
    }
    case OpKind::kRegrid: {
      // regrid → extend(binned dims) + group-by + rename + rebox.
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, ExecT(*plan.child(0)));
      const auto& op = plan.As<RegridOp>();
      std::vector<int> dim_cols = in->schema()->DimensionIndices();
      // Bin every dimension column (factor 1 when unlisted) via floor
      // division; floor(i / f) with float division matches FloorDiv for
      // positive factors.
      std::vector<std::pair<std::string, ExprPtr>> bins;
      std::vector<std::string> bin_names, dim_names;
      for (int c : dim_cols) {
        const std::string& dim = in->schema()->field(c).name;
        int64_t factor = 1;
        for (const auto& [d, f] : op.factors) {
          if (d == dim) factor = f;
        }
        std::string bin = "__rg_" + dim;
        bins.emplace_back(
            bin, Func("floor", {Div(Col(dim), Lit(factor))}));
        bin_names.push_back(bin);
        dim_names.push_back(dim);
      }
      NEXUS_ASSIGN_OR_RETURN(TablePtr binned, relational::Extend(in, bins));
      AggregateOp agg;
      agg.group_by = bin_names;
      for (int c : in->schema()->AttributeIndices()) {
        const Field& f = in->schema()->field(c);
        if (!IsNumeric(f.type)) continue;
        agg.aggs.push_back(AggSpec{op.func, Col(f.name), f.name});
      }
      NEXUS_ASSIGN_OR_RETURN(TablePtr grouped,
                             relational::HashAggregate(binned, agg));
      std::vector<std::pair<std::string, std::string>> back;
      for (size_t i = 0; i < bin_names.size(); ++i) {
        back.emplace_back(bin_names[i], dim_names[i]);
      }
      NEXUS_ASSIGN_OR_RETURN(TablePtr named, relational::Rename(grouped, back));
      NEXUS_ASSIGN_OR_RETURN(TablePtr out, Retag(named, dim_names));
      return Dataset(out);
    }
    case OpKind::kTranspose: {
      // transpose → column reorder.
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, ExecT(*plan.child(0)));
      std::vector<std::string> order = plan.As<TransposeOp>().dim_order;
      for (int c : in->schema()->AttributeIndices()) {
        order.push_back(in->schema()->field(c).name);
      }
      NEXUS_ASSIGN_OR_RETURN(TablePtr out, relational::Project(in, order));
      return Dataset(out);
    }
    case OpKind::kElemWise: {
      // elemwise → rename + equi-join on dimensions + extend + project.
      NEXUS_ASSIGN_OR_RETURN(TablePtr l, ExecT(*plan.child(0)));
      NEXUS_ASSIGN_OR_RETURN(TablePtr r, ExecT(*plan.child(1)));
      BinaryOp op = plan.As<ElemWiseOpSpec>().op;
      std::vector<int> ld = l->schema()->DimensionIndices();
      std::vector<int> rd = r->schema()->DimensionIndices();
      int la = l->schema()->AttributeIndices().at(0);
      int ra = r->schema()->AttributeIndices().at(0);
      std::vector<std::pair<std::string, std::string>> rmap;
      std::vector<std::string> lkeys, rkeys;
      for (size_t i = 0; i < rd.size(); ++i) {
        std::string tmp = StrCat("__ew_d", i);
        rmap.emplace_back(r->schema()->field(rd[i]).name, tmp);
        rkeys.push_back(tmp);
        lkeys.push_back(l->schema()->field(ld[i]).name);
      }
      rmap.emplace_back(r->schema()->field(ra).name, "__ew_b");
      NEXUS_ASSIGN_OR_RETURN(TablePtr rr, relational::Rename(r, rmap));
      JoinOp join;
      join.type = JoinType::kInner;
      join.left_keys = lkeys;
      join.right_keys = rkeys;
      NEXUS_ASSIGN_OR_RETURN(TablePtr joined, relational::HashJoin(l, rr, join));
      const std::string lattr = l->schema()->field(la).name;
      NEXUS_ASSIGN_OR_RETURN(
          TablePtr extended,
          relational::Extend(
              joined, {{"__ew_r", Expr::Binary(op, Col(lattr), Col("__ew_b"))}}));
      std::vector<std::string> keep = lkeys;
      keep.push_back("__ew_r");
      NEXUS_ASSIGN_OR_RETURN(TablePtr projected,
                             relational::Project(extended, keep));
      NEXUS_ASSIGN_OR_RETURN(TablePtr named,
                             relational::Rename(projected, {{"__ew_r", lattr}}));
      NEXUS_ASSIGN_OR_RETURN(TablePtr out, Retag(named, lkeys));
      return Dataset(out);
    }
    case OpKind::kIterate: {
      const auto& op = plan.As<IterateOp>();
      NEXUS_ASSIGN_OR_RETURN(Dataset state, Exec(*plan.child(0)));
      for (int64_t iter = 0; iter < op.max_iters; ++iter) {
        loop_stack_.push_back(ExecLoopFrame{state, state});
        auto next = Exec(*op.body);
        loop_stack_.pop_back();
        NEXUS_RETURN_NOT_OK(next.status());
        if (op.measure != nullptr) {
          loop_stack_.push_back(ExecLoopFrame{next.ValueOrDie(), state});
          auto measured = Exec(*op.measure);
          loop_stack_.pop_back();
          NEXUS_RETURN_NOT_OK(measured.status());
          NEXUS_ASSIGN_OR_RETURN(TablePtr mt, measured.ValueOrDie().AsTable());
          if (mt->num_rows() != 1 || mt->num_columns() != 1) {
            return Status::PlanError("iterate measure must yield one cell");
          }
          Value v = mt->At(0, 0);
          state = next.MoveValue();
          if (!v.is_null() && v.AsDouble() < op.epsilon) break;
        } else {
          state = next.MoveValue();
        }
      }
      return state;
    }
    case OpKind::kExchange:
      return Exec(*plan.child(0));
    case OpKind::kMatMul:
    case OpKind::kPageRank:
      return Status::Internal("intent op survived expansion in relstore");
    case OpKind::kWindow:
      return Status::Unsupported("relstore does not implement window");
  }
  return Status::Internal("unhandled operator in relstore");
}

}  // namespace

ProviderPtr MakeRelationalProvider() {
  return std::make_shared<RelationalProvider>();
}

}  // namespace nexus
