// The array provider ("arraydb"): executes dimension-aware operators
// chunk-natively. Purely relational operators (join, sort, aggregate, …)
// are not claimed — the planner combines this provider with relstore for
// mixed plans.
#include "algebra/kernels.h"
#include "algebra/semiring.h"
#include "arraydb/engine.h"
#include "exec/reference_executor.h"
#include "provider/provider.h"
#include "relational/engine.h"
#include "telemetry/telemetry.h"

namespace nexus {

namespace {

class ArrayProvider : public Provider {
 public:
  std::string name() const override { return "arraydb"; }

  // arraydb speaks NXB1 natively: its operands live in the same
  // columnar vectors the wire blocks are lifted from.
  bool AcceptsBinaryWire() const override { return true; }

  bool Claims(OpKind kind) const override {
    switch (kind) {
      case OpKind::kScan:
      case OpKind::kValues:
      case OpKind::kLoopVar:
      case OpKind::kSelect:
      case OpKind::kExtend:
      case OpKind::kRebox:
      case OpKind::kUnbox:
      case OpKind::kSlice:
      case OpKind::kShift:
      case OpKind::kRegrid:
      case OpKind::kTranspose:
      case OpKind::kWindow:
      case OpKind::kElemWise:
      case OpKind::kIterate:
      case OpKind::kExchange:
        return true;
      case OpKind::kAggregate:
        // Semi-ring lowering lets arraydb run ⊕-fold aggregates through the
        // shared algebra kernels — byte-identical on every engine.
        return algebra::SemiringLoweringEnabled();
      default:
        return false;
    }
  }

  Result<Dataset> Execute(const Plan& plan) override {
    loop_stack_.clear();
    return Exec(plan);
  }

 private:
  /// Per-operator tracing shim around ExecNode; recursion re-enters here,
  /// so every plan node gets a span when tracing is on.
  Result<Dataset> Exec(const Plan& plan) {
    if (!telemetry::Enabled()) return ExecNode(plan);
    telemetry::SpanGuard span(telemetry::kCategoryOperator, plan.NodeLabel());
    auto result = ExecNode(plan);
    if (result.ok() && span.active()) {
      span.AddCounter("rows", result.ValueOrDie().num_rows());
      span.AddCounter("bytes", result.ValueOrDie().ByteSize());
    }
    return result;
  }
  Result<Dataset> ExecNode(const Plan& plan);
  Result<NDArrayPtr> ExecA(const Plan& plan) {
    NEXUS_ASSIGN_OR_RETURN(Dataset d, Exec(plan));
    return d.AsArray();
  }

  std::vector<ExecLoopFrame> loop_stack_;
};

Result<Dataset> ArrayProvider::ExecNode(const Plan& plan) {
  switch (plan.kind()) {
    case OpKind::kScan:
      return catalog_.Get(plan.As<ScanOp>().table);
    case OpKind::kValues:
      return plan.As<ValuesOp>().data;
    case OpKind::kLoopVar: {
      if (loop_stack_.empty()) return Status::PlanError("loopvar outside iterate");
      return plan.As<LoopVarOp>().previous ? loop_stack_.back().previous
                                           : loop_stack_.back().current;
    }
    case OpKind::kSelect: {
      NEXUS_ASSIGN_OR_RETURN(NDArrayPtr in, ExecA(*plan.child(0)));
      NEXUS_ASSIGN_OR_RETURN(
          NDArrayPtr out, arraydb::FilterCells(*in, *plan.As<SelectOp>().predicate));
      return Dataset(out);
    }
    case OpKind::kExtend: {
      NEXUS_ASSIGN_OR_RETURN(NDArrayPtr in, ExecA(*plan.child(0)));
      NEXUS_ASSIGN_OR_RETURN(NDArrayPtr out,
                             arraydb::Apply(*in, plan.As<ExtendOp>().defs));
      return Dataset(out);
    }
    case OpKind::kAggregate: {
      NEXUS_ASSIGN_OR_RETURN(Dataset in_ds, Exec(*plan.child(0)));
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, in_ds.AsTable());
      const auto& spec = plan.As<AggregateOp>();
      if (algebra::SemiringLoweringEnabled() &&
          algebra::AggregateLowerable(spec)) {
        NEXUS_ASSIGN_OR_RETURN(TablePtr out, algebra::LowerAggregate(in, spec));
        return Dataset(out);
      }
      NEXUS_ASSIGN_OR_RETURN(TablePtr out, relational::HashAggregate(in, spec));
      return Dataset(out);
    }
    case OpKind::kRebox: {
      NEXUS_ASSIGN_OR_RETURN(Dataset in, Exec(*plan.child(0)));
      NEXUS_ASSIGN_OR_RETURN(TablePtr t, in.AsTable());
      const auto& op = plan.As<ReboxOp>();
      std::vector<int64_t> chunks(op.dims.size(), op.chunk_size);
      NEXUS_ASSIGN_OR_RETURN(std::shared_ptr<NDArray> arr,
                             NDArray::FromTable(*t, op.dims, chunks));
      return Dataset(NDArrayPtr(std::move(arr)));
    }
    case OpKind::kUnbox: {
      NEXUS_ASSIGN_OR_RETURN(Dataset in, Exec(*plan.child(0)));
      NEXUS_ASSIGN_OR_RETURN(TablePtr t, in.AsTable());
      NEXUS_ASSIGN_OR_RETURN(
          TablePtr out, Table::Make(t->schema()->WithoutDimensions(), t->columns()));
      return Dataset(out);
    }
    case OpKind::kSlice: {
      NEXUS_ASSIGN_OR_RETURN(NDArrayPtr in, ExecA(*plan.child(0)));
      NEXUS_ASSIGN_OR_RETURN(NDArrayPtr out,
                             arraydb::Slice(*in, plan.As<SliceOp>().ranges));
      return Dataset(out);
    }
    case OpKind::kShift: {
      NEXUS_ASSIGN_OR_RETURN(NDArrayPtr in, ExecA(*plan.child(0)));
      NEXUS_ASSIGN_OR_RETURN(NDArrayPtr out,
                             arraydb::Shift(*in, plan.As<ShiftOp>().offsets));
      return Dataset(out);
    }
    case OpKind::kRegrid: {
      NEXUS_ASSIGN_OR_RETURN(NDArrayPtr in, ExecA(*plan.child(0)));
      const auto& op = plan.As<RegridOp>();
      NEXUS_ASSIGN_OR_RETURN(NDArrayPtr out,
                             arraydb::Regrid(*in, op.factors, op.func));
      return Dataset(out);
    }
    case OpKind::kTranspose: {
      NEXUS_ASSIGN_OR_RETURN(NDArrayPtr in, ExecA(*plan.child(0)));
      NEXUS_ASSIGN_OR_RETURN(
          NDArrayPtr out, arraydb::Transpose(*in, plan.As<TransposeOp>().dim_order));
      return Dataset(out);
    }
    case OpKind::kWindow: {
      NEXUS_ASSIGN_OR_RETURN(NDArrayPtr in, ExecA(*plan.child(0)));
      const auto& op = plan.As<WindowOp>();
      NEXUS_ASSIGN_OR_RETURN(NDArrayPtr out,
                             arraydb::Window(*in, op.radii, op.func));
      return Dataset(out);
    }
    case OpKind::kElemWise: {
      NEXUS_ASSIGN_OR_RETURN(NDArrayPtr l, ExecA(*plan.child(0)));
      NEXUS_ASSIGN_OR_RETURN(NDArrayPtr r, ExecA(*plan.child(1)));
      NEXUS_ASSIGN_OR_RETURN(
          NDArrayPtr out, arraydb::ElemWise(*l, *r, plan.As<ElemWiseOpSpec>().op));
      return Dataset(out);
    }
    case OpKind::kIterate: {
      const auto& op = plan.As<IterateOp>();
      NEXUS_ASSIGN_OR_RETURN(Dataset state, Exec(*plan.child(0)));
      for (int64_t iter = 0; iter < op.max_iters; ++iter) {
        loop_stack_.push_back(ExecLoopFrame{state, state});
        auto next = Exec(*op.body);
        loop_stack_.pop_back();
        NEXUS_RETURN_NOT_OK(next.status());
        if (op.measure != nullptr) {
          loop_stack_.push_back(ExecLoopFrame{next.ValueOrDie(), state});
          auto measured = Exec(*op.measure);
          loop_stack_.pop_back();
          NEXUS_RETURN_NOT_OK(measured.status());
          NEXUS_ASSIGN_OR_RETURN(TablePtr mt, measured.ValueOrDie().AsTable());
          if (mt->num_rows() != 1 || mt->num_columns() != 1) {
            return Status::PlanError("iterate measure must yield one cell");
          }
          Value v = mt->At(0, 0);
          state = next.MoveValue();
          if (!v.is_null() && v.AsDouble() < op.epsilon) break;
        } else {
          state = next.MoveValue();
        }
      }
      return state;
    }
    case OpKind::kExchange:
      return Exec(*plan.child(0));
    default:
      return Status::Unsupported(
          std::string("arraydb does not implement ") + OpKindName(plan.kind()));
  }
}

}  // namespace

ProviderPtr MakeArrayProvider() { return std::make_shared<ArrayProvider>(); }

}  // namespace nexus
