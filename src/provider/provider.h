// Provider: the paper's server-side abstraction ("LINQ Providers accept SQO
// expressions as input"). A provider owns a storage catalog, advertises
// which algebra operators it can execute natively (its capability set), and
// accepts whole expression trees for execution.
//
// Five providers ship with the framework:
//   reference   — interprets everything (the translatability backstop)
//   relstore    — columnar relational engine; claims intent ops via expansion
//   arraydb     — chunked array engine (dimension-aware operators)
//   linalg      — dense/sparse linear algebra (MatMul, ElemWise, Transpose)
//   graphd      — graph analytics (PageRank)
#ifndef NEXUS_PROVIDER_PROVIDER_H_
#define NEXUS_PROVIDER_PROVIDER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/catalog.h"
#include "core/plan.h"

namespace nexus {

/// Abstract back-end service.
class Provider {
 public:
  /// Parsed + optimized plans kept per provider, keyed by the fingerprint of
  /// the shipped wire. Small and bounded: the cache exists for repeated
  /// shipments (Iterate rounds, re-executed queries), not as a plan store.
  static constexpr size_t kPlanCacheCapacity = 64;

  /// Sticky envelope bindings kept per provider so delta bindings
  /// (%NXB1-DELTA, see core/serialize.h) have a base to extend: the last
  /// full table shipped under each binding name, plus its fingerprint chain.
  /// Populated only while NEXUS_INCREMENTAL is on.
  static constexpr size_t kBindingCacheCapacity = 16;

  virtual ~Provider() = default;

  /// Stable identifier ("relstore", "arraydb", ...).
  virtual std::string name() const = 0;

  /// True when this provider can execute the operator kind natively (or via
  /// an internal translation it owns, e.g. relstore expanding MatMul).
  virtual bool Claims(OpKind kind) const = 0;

  /// True when every node of the tree (including Iterate bodies) is claimed.
  bool ClaimsTree(const Plan& plan) const;

  /// Executes a whole plan tree against this provider's catalog. All node
  /// kinds must be claimed; otherwise returns Unsupported.
  virtual Result<Dataset> Execute(const Plan& plan) = 0;

  /// Executes a serialized expression tree — the form plans arrive in over
  /// the wire ("Providers accept SQO expressions as input"). Deserialization
  /// happens here, on the provider side of the link. The wire may carry a
  /// plan-cache envelope (%NXB1-PLAN / %NXB1-EXEC, see core/serialize.h):
  /// %NXB1-PLAN caches the parsed plan under its fingerprint, %NXB1-EXEC
  /// executes a previously cached plan — or returns NotFound (containing
  /// kPlanCacheMissMarker) when the fingerprint was evicted, telling the
  /// coordinator to re-ship the full plan. Envelope bindings are registered
  /// in the catalog for the duration of the execution.
  Result<Dataset> ExecuteWire(const std::string& wire);

  /// True when this provider accepts NXB1 binary payloads. Legacy peers
  /// return false and the transport negotiates their links down to text.
  virtual bool AcceptsBinaryWire() const { return true; }

  /// Local storage (Scan resolves here; the federation layer registers
  /// shipped intermediates here too).
  InMemoryCatalog* catalog() { return &catalog_; }
  const InMemoryCatalog& catalog() const { return catalog_; }

 protected:
  InMemoryCatalog catalog_;

 private:
  Result<Dataset> ExecuteWireBody(std::string_view body);
  Result<Dataset> ExecuteBound(
      const Plan& plan,
      const std::vector<std::pair<std::string_view, std::string_view>>&
          bindings);
  PlanPtr LookupCachedPlan(uint64_t fingerprint);
  void CachePlan(uint64_t fingerprint, PlanPtr plan);

  /// Resolves one envelope binding value to a dataset: a delta binding wire
  /// is appended onto its sticky base (NotFound + kDeltaBindingMissMarker
  /// when the base is absent or the chain mismatches), a full value is
  /// parsed directly and — with NEXUS_INCREMENTAL on — becomes the new
  /// sticky base for its name.
  Result<Dataset> ResolveBinding(const std::string& name,
                                 std::string_view wire);
  void CacheBinding(const std::string& name, TablePtr table,
                    uint64_t chain_fp);

  std::mutex cache_mu_;
  std::map<uint64_t, PlanPtr> plan_cache_;
  std::deque<uint64_t> plan_cache_order_;  // insertion order, for eviction
  struct BindingEntry {
    TablePtr table;
    uint64_t chain_fp = 0;
  };
  std::map<std::string, BindingEntry> binding_cache_;
  std::deque<std::string> binding_cache_order_;
};

using ProviderPtr = std::shared_ptr<Provider>;

/// Factory helpers. `text_only` makes the reference provider behave like a
/// legacy peer that never learned NXB1 (negotiation-fallback tests).
ProviderPtr MakeReferenceProvider(bool text_only = false);
ProviderPtr MakeRelationalProvider();
ProviderPtr MakeArrayProvider();
ProviderPtr MakeLinalgProvider();
ProviderPtr MakeGraphProvider();

}  // namespace nexus

#endif  // NEXUS_PROVIDER_PROVIDER_H_
