// Provider: the paper's server-side abstraction ("LINQ Providers accept SQO
// expressions as input"). A provider owns a storage catalog, advertises
// which algebra operators it can execute natively (its capability set), and
// accepts whole expression trees for execution.
//
// Five providers ship with the framework:
//   reference   — interprets everything (the translatability backstop)
//   relstore    — columnar relational engine; claims intent ops via expansion
//   arraydb     — chunked array engine (dimension-aware operators)
//   linalg      — dense/sparse linear algebra (MatMul, ElemWise, Transpose)
//   graphd      — graph analytics (PageRank)
#ifndef NEXUS_PROVIDER_PROVIDER_H_
#define NEXUS_PROVIDER_PROVIDER_H_

#include <memory>
#include <string>

#include "core/catalog.h"
#include "core/plan.h"

namespace nexus {

/// Abstract back-end service.
class Provider {
 public:
  virtual ~Provider() = default;

  /// Stable identifier ("relstore", "arraydb", ...).
  virtual std::string name() const = 0;

  /// True when this provider can execute the operator kind natively (or via
  /// an internal translation it owns, e.g. relstore expanding MatMul).
  virtual bool Claims(OpKind kind) const = 0;

  /// True when every node of the tree (including Iterate bodies) is claimed.
  bool ClaimsTree(const Plan& plan) const;

  /// Executes a whole plan tree against this provider's catalog. All node
  /// kinds must be claimed; otherwise returns Unsupported.
  virtual Result<Dataset> Execute(const Plan& plan) = 0;

  /// Executes a serialized expression tree — the form plans arrive in over
  /// the wire ("Providers accept SQO expressions as input"). Deserialization
  /// happens here, on the provider side of the link.
  Result<Dataset> ExecuteWire(const std::string& wire);

  /// Local storage (Scan resolves here; the federation layer registers
  /// shipped intermediates here too).
  InMemoryCatalog* catalog() { return &catalog_; }
  const InMemoryCatalog& catalog() const { return catalog_; }

 protected:
  InMemoryCatalog catalog_;
};

using ProviderPtr = std::shared_ptr<Provider>;

/// Factory helpers.
ProviderPtr MakeReferenceProvider();
ProviderPtr MakeRelationalProvider();
ProviderPtr MakeArrayProvider();
ProviderPtr MakeLinalgProvider();
ProviderPtr MakeGraphProvider();

}  // namespace nexus

#endif  // NEXUS_PROVIDER_PROVIDER_H_
