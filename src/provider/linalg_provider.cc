// The linear-algebra provider ("linalg"): claims MatMul, ElemWise, and 2-d
// Transpose natively. MatMul picks a dense blocked GEMM or a sparse SpGEMM
// by occupancy — the choice a numeric package would make internally.
#include "algebra/kernels.h"
#include "algebra/semiring.h"
#include "linalg/dense.h"
#include "linalg/sparse.h"
#include "provider/provider.h"
#include "relational/engine.h"
#include "telemetry/telemetry.h"

namespace nexus {

namespace {

class LinalgProvider : public Provider {
 public:
  std::string name() const override { return "linalg"; }

  // linalg speaks NXB1 natively: its operands live in the same
  // columnar vectors the wire blocks are lifted from.
  bool AcceptsBinaryWire() const override { return true; }

  bool Claims(OpKind kind) const override {
    switch (kind) {
      case OpKind::kScan:
      case OpKind::kValues:
      case OpKind::kMatMul:
      case OpKind::kElemWise:
      case OpKind::kTranspose:
      case OpKind::kExchange:
        return true;
      case OpKind::kAggregate:
        // Semi-ring lowering lets linalg run ⊕-fold aggregates through the
        // shared algebra kernels — byte-identical on every engine.
        return algebra::SemiringLoweringEnabled();
      default:
        return false;
    }
  }

  Result<Dataset> Execute(const Plan& plan) override { return Exec(plan); }

 private:
  /// Per-operator tracing shim around ExecNode; recursion re-enters here,
  /// so every plan node gets a span when tracing is on.
  Result<Dataset> Exec(const Plan& plan) {
    if (!telemetry::Enabled()) return ExecNode(plan);
    telemetry::SpanGuard span(telemetry::kCategoryOperator, plan.NodeLabel());
    auto result = ExecNode(plan);
    if (result.ok() && span.active()) {
      span.AddCounter("rows", result.ValueOrDie().num_rows());
      span.AddCounter("bytes", result.ValueOrDie().ByteSize());
    }
    return result;
  }
  Result<Dataset> ExecNode(const Plan& plan);
  Result<NDArrayPtr> ExecA(const Plan& plan) {
    NEXUS_ASSIGN_OR_RETURN(Dataset d, Exec(plan));
    return d.AsArray();
  }
};

// Density of an array's occupied cells.
double Occupancy(const NDArray& a) {
  return static_cast<double>(a.NumCellsOccupied()) /
         static_cast<double>(a.NumCellsTotal());
}

// Extracts absolute-coordinate triplets from a 2-d single-attribute array.
Result<std::vector<linalg::Triplet>> ToTriplets(const NDArray& a,
                                                int64_t row_off, int64_t col_off) {
  std::vector<linalg::Triplet> out;
  out.reserve(static_cast<size_t>(a.NumCellsOccupied()));
  for (const ArrayChunk* chunk : a.chunks()) {
    int64_t volume = chunk->Volume();
    const Column& attr = chunk->attrs[0];
    for (int64_t off = 0; off < volume; ++off) {
      if (!chunk->occupied[static_cast<size_t>(off)] || attr.IsNull(off)) continue;
      std::vector<int64_t> local = chunk->LocalCoords(off);
      out.push_back(linalg::Triplet{chunk->lo[0] + local[0] - row_off,
                                    chunk->lo[1] + local[1] - col_off,
                                    attr.NumericAt(off)});
    }
  }
  return out;
}

Result<Dataset> LinalgProvider::ExecNode(const Plan& plan) {
  switch (plan.kind()) {
    case OpKind::kScan:
      return catalog_.Get(plan.As<ScanOp>().table);
    case OpKind::kValues:
      return plan.As<ValuesOp>().data;
    case OpKind::kExchange:
      return Exec(*plan.child(0));
    case OpKind::kTranspose: {
      NEXUS_ASSIGN_OR_RETURN(NDArrayPtr in, ExecA(*plan.child(0)));
      if (in->num_dims() != 2) {
        return Status::Unsupported("linalg transpose requires a 2-d array");
      }
      const auto& order = plan.As<TransposeOp>().dim_order;
      if (order.size() != 2 || order[0] != in->dim(1).name ||
          order[1] != in->dim(0).name) {
        return Status::Unsupported("linalg transpose only swaps the two dims");
      }
      // Swap coordinates cell-wise (sparse-safe).
      NEXUS_ASSIGN_OR_RETURN(
          std::shared_ptr<NDArray> out,
          NDArray::Make({in->dim(1), in->dim(0)}, in->attr_schema()));
      Status st = Status::OK();
      in->ForEachCell([&](const std::vector<int64_t>& c, std::vector<Value> attrs) {
        if (!st.ok()) return;
        st = out->Set({c[1], c[0]}, attrs);
      });
      NEXUS_RETURN_NOT_OK(st);
      return Dataset(NDArrayPtr(std::move(out)));
    }
    case OpKind::kMatMul: {
      NEXUS_ASSIGN_OR_RETURN(NDArrayPtr a, ExecA(*plan.child(0)));
      NEXUS_ASSIGN_OR_RETURN(NDArrayPtr b, ExecA(*plan.child(1)));
      if (a->num_dims() != 2 || b->num_dims() != 2 ||
          a->attr_schema()->num_fields() != 1 || b->attr_schema()->num_fields() != 1) {
        return Status::Unsupported("linalg matmul requires 2-d single-attr arrays");
      }
      const auto& op = plan.As<MatMulOp>();
      // Contraction coordinates join by value: align both sides on the
      // union of the k ranges.
      int64_t k_off = std::min(a->dim(1).start, b->dim(0).start);
      int64_t k_end = std::max(a->dim(1).end(), b->dim(0).end());
      int64_t k_len = k_end - k_off;
      int64_t rows = a->dim(0).length, cols = b->dim(1).length;
      int64_t row_off = a->dim(0).start, col_off = b->dim(1).start;
      std::string row_name = a->dim(0).name;
      std::string col_name = b->dim(1).name;
      if (col_name == row_name) col_name += "_2";

      double occ = std::min(Occupancy(*a), Occupancy(*b));
      linalg::SparseMatrixCSR product;
      if (occ > 0.5 && rows * k_len < (1 << 22) && k_len * cols < (1 << 22)) {
        // Dense blocked GEMM.
        linalg::DenseMatrix da(rows, k_len), db(k_len, cols);
        NEXUS_ASSIGN_OR_RETURN(auto ta, ToTriplets(*a, row_off, k_off));
        NEXUS_ASSIGN_OR_RETURN(auto tb, ToTriplets(*b, k_off, col_off));
        for (const auto& t : ta) da.Set(t.row, t.col, t.value);
        for (const auto& t : tb) db.Set(t.row, t.col, t.value);
        NEXUS_ASSIGN_OR_RETURN(linalg::DenseMatrix dc,
                               linalg::MatMulBlocked(da, db));
        NEXUS_ASSIGN_OR_RETURN(
            NDArrayPtr out,
            linalg::ToNDArray(dc, row_name, col_name, op.result_attr, row_off,
                              col_off, a->dim(0).chunk_size, /*drop_zeros=*/true));
        return Dataset(out);
      }
      // Sparse SpGEMM path.
      NEXUS_ASSIGN_OR_RETURN(auto ta, ToTriplets(*a, row_off, k_off));
      NEXUS_ASSIGN_OR_RETURN(auto tb, ToTriplets(*b, k_off, col_off));
      NEXUS_ASSIGN_OR_RETURN(linalg::SparseMatrixCSR sa,
                             linalg::SparseMatrixCSR::FromTriplets(rows, k_len, ta));
      NEXUS_ASSIGN_OR_RETURN(linalg::SparseMatrixCSR sb,
                             linalg::SparseMatrixCSR::FromTriplets(k_len, cols, tb));
      NEXUS_ASSIGN_OR_RETURN(linalg::SparseMatrixCSR sc, sa.SpGEMM(sb));
      NEXUS_ASSIGN_OR_RETURN(
          SchemaPtr attrs,
          Schema::Make({Field::Attr(op.result_attr, DataType::kFloat64)}));
      NEXUS_ASSIGN_OR_RETURN(
          std::shared_ptr<NDArray> out,
          NDArray::Make({DimensionSpec{row_name, row_off, rows,
                                       a->dim(0).chunk_size},
                         DimensionSpec{col_name, col_off, cols,
                                       b->dim(1).chunk_size}},
                        attrs));
      for (const linalg::Triplet& t : sc.ToTriplets()) {
        NEXUS_RETURN_NOT_OK(out->Set({t.row + row_off, t.col + col_off},
                                     {Value::Float64(t.value)}));
      }
      return Dataset(NDArrayPtr(std::move(out)));
    }
    case OpKind::kAggregate: {
      NEXUS_ASSIGN_OR_RETURN(Dataset in_ds, Exec(*plan.child(0)));
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, in_ds.AsTable());
      const auto& spec = plan.As<AggregateOp>();
      if (algebra::SemiringLoweringEnabled() &&
          algebra::AggregateLowerable(spec)) {
        NEXUS_ASSIGN_OR_RETURN(TablePtr out, algebra::LowerAggregate(in, spec));
        return Dataset(out);
      }
      NEXUS_ASSIGN_OR_RETURN(TablePtr out, relational::HashAggregate(in, spec));
      return Dataset(out);
    }
    case OpKind::kElemWise: {
      NEXUS_ASSIGN_OR_RETURN(NDArrayPtr a, ExecA(*plan.child(0)));
      NEXUS_ASSIGN_OR_RETURN(NDArrayPtr b, ExecA(*plan.child(1)));
      BinaryOp op = plan.As<ElemWiseOpSpec>().op;
      if (a->num_dims() != 2 || b->num_dims() != 2) {
        return Status::Unsupported("linalg elemwise requires 2-d arrays");
      }
      if (a->attr_schema()->field(0).type != DataType::kFloat64 ||
          b->attr_schema()->field(0).type != DataType::kFloat64) {
        // Integer arithmetic stays on the array/relational providers so the
        // result type matches the algebra's promotion rules exactly.
        return Status::Unsupported("linalg elemwise requires float64 attributes");
      }
      // Sparse-safe elementwise over the occupancy intersection, keyed by
      // absolute coordinates.
      NEXUS_ASSIGN_OR_RETURN(auto tb, ToTriplets(*b, 0, 0));
      std::map<std::pair<int64_t, int64_t>, double> rhs;
      for (const auto& t : tb) rhs[{t.row, t.col}] = t.value;
      NEXUS_ASSIGN_OR_RETURN(
          SchemaPtr attrs,
          Schema::Make({Field::Attr(a->attr_schema()->field(0).name,
                                    DataType::kFloat64)}));
      NEXUS_ASSIGN_OR_RETURN(std::shared_ptr<NDArray> out,
                             NDArray::Make(a->dims(), attrs));
      NEXUS_ASSIGN_OR_RETURN(auto ta, ToTriplets(*a, 0, 0));
      for (const auto& t : ta) {
        auto it = rhs.find({t.row, t.col});
        if (it == rhs.end()) continue;
        double v = 0;
        switch (op) {
          case BinaryOp::kAdd:
            v = t.value + it->second;
            break;
          case BinaryOp::kSub:
            v = t.value - it->second;
            break;
          case BinaryOp::kMul:
            v = t.value * it->second;
            break;
          case BinaryOp::kDiv:
            if (it->second == 0.0) {
              NEXUS_RETURN_NOT_OK(out->Set({t.row, t.col}, {Value::Null()}));
              continue;
            }
            v = t.value / it->second;
            break;
          default:
            return Status::Unsupported("linalg elemwise supports + - * /");
        }
        NEXUS_RETURN_NOT_OK(out->Set({t.row, t.col}, {Value::Float64(v)}));
      }
      return Dataset(NDArrayPtr(std::move(out)));
    }
    default:
      return Status::Unsupported(
          std::string("linalg does not implement ") + OpKindName(plan.kind()));
  }
}

}  // namespace

ProviderPtr MakeLinalgProvider() { return std::make_shared<LinalgProvider>(); }

}  // namespace nexus
