// Reference executor: a direct, row-at-a-time interpreter for every
// operator of the Big Data Algebra.
//
// Two roles:
//   1. Correctness oracle — engine-native implementations (relational,
//      array, linalg, graph providers) are differentially tested against it.
//   2. Translatability backstop (desideratum 2) — the federated planner
//      sends any fragment no specialized provider can claim here, so every
//      algebra expression is executable somewhere by construction.
//
// It evaluates on the tabular representation; dimension-aware operators key
// off the schema's dimension tags.
#ifndef NEXUS_EXEC_REFERENCE_EXECUTOR_H_
#define NEXUS_EXEC_REFERENCE_EXECUTOR_H_

#include <vector>

#include "core/catalog.h"
#include "core/plan.h"

namespace nexus {

/// Runtime bindings for Iterate loop variables.
struct ExecLoopFrame {
  Dataset current;
  Dataset previous;
};

/// Interprets algebra plans against a catalog.
class ReferenceExecutor {
 public:
  /// `catalog` may be null if the plan contains no Scan leaves.
  explicit ReferenceExecutor(const InMemoryCatalog* catalog)
      : catalog_(catalog) {}

  /// Executes `plan` and returns the resulting collection. The result of a
  /// dimension-tagged plan is still delivered as a table-backed Dataset;
  /// callers wanting the array form use Dataset::AsArray.
  Result<Dataset> Execute(const Plan& plan);

  /// Total Iterate loop iterations executed (across Execute calls) — used
  /// by benches to report convergence behaviour.
  int64_t iterations_run() const { return iterations_run_; }

 private:
  /// Per-operator tracing shim around ExecNode (one span per plan node
  /// while telemetry is enabled; recursion re-enters through here).
  Result<Dataset> Exec(const Plan& plan);
  Result<Dataset> ExecNode(const Plan& plan);
  Result<TablePtr> ExecTable(const Plan& plan);

  const InMemoryCatalog* catalog_;
  std::vector<ExecLoopFrame> loop_stack_;
  int64_t iterations_run_ = 0;
};

}  // namespace nexus

#endif  // NEXUS_EXEC_REFERENCE_EXECUTOR_H_
